"""Tests for the MM1..MM6 kernel schedules: functional correctness
against plain matmuls, and cycle-model structure."""

import numpy as np
import pytest

from repro.hw.kernels import (
    matmul_dims,
    mm1,
    mm1_cycles,
    mm2,
    mm2_cycles,
    mm3,
    mm3_cycles,
    mm4,
    mm4_cycles,
    mm5,
    mm5_cycles,
    mm6,
    mm6_cycles,
)

S = 16


@pytest.fixture()
def data(rng):
    return {
        "x": rng.standard_normal((S, 512)).astype(np.float32),
        "w_qkv": rng.standard_normal((512, 64)).astype(np.float32),
        "q": rng.standard_normal((S, 64)).astype(np.float32),
        "k": rng.standard_normal((S, 64)).astype(np.float32),
        "attn": rng.standard_normal((S, S)).astype(np.float32),
        "v": rng.standard_normal((S, 64)).astype(np.float32),
        "heads": [rng.standard_normal((S, 64)).astype(np.float32) for _ in range(8)],
        "wo": rng.standard_normal((512, 512)).astype(np.float32),
        "w1": rng.standard_normal((512, 2048)).astype(np.float32),
        "h": rng.standard_normal((S, 2048)).astype(np.float32),
        "w2": rng.standard_normal((2048, 512)).astype(np.float32),
    }


class TestTable42:
    def test_matmul_dims(self):
        dims = matmul_dims(32)
        assert dims["MM1"] == ((32, 512), (512, 64), (32, 64))
        assert dims["MM2"] == ((32, 64), (64, 32), (32, 32))
        assert dims["MM3"] == ((32, 32), (32, 64), (32, 64))
        assert dims["MM4"] == ((32, 512), (512, 512), (32, 512))
        assert dims["MM5"] == ((32, 512), (512, 2048), (32, 2048))
        assert dims["MM6"] == ((32, 2048), (2048, 512), (32, 512))

    def test_rejects_bad_s(self):
        with pytest.raises(ValueError):
            matmul_dims(0)


class TestFunctional:
    """Striped dataflow must agree with a plain matmul (fp32 tolerance)."""

    def test_mm1(self, fabric, data):
        res = mm1(fabric, data["x"], data["w_qkv"])
        np.testing.assert_allclose(
            res.output, data["x"] @ data["w_qkv"], rtol=2e-4, atol=1e-4
        )

    def test_mm1_concurrent_psas_same_result(self, fabric, data):
        a = mm1(fabric, data["x"], data["w_qkv"], concurrent_psas=1)
        b = mm1(fabric, data["x"], data["w_qkv"], concurrent_psas=4)
        np.testing.assert_array_equal(a.output, b.output)
        assert b.cycles < a.cycles

    def test_mm2(self, fabric, data):
        res = mm2(fabric, data["q"], data["k"])
        np.testing.assert_allclose(
            res.output, data["q"] @ data["k"].T, rtol=2e-4, atol=1e-4
        )

    def test_mm3(self, fabric, data):
        res = mm3(fabric, data["attn"], data["v"])
        np.testing.assert_allclose(
            res.output, data["attn"] @ data["v"], rtol=2e-4, atol=1e-4
        )

    def test_mm4(self, fabric, data):
        res = mm4(fabric, data["heads"], data["wo"])
        concat = np.concatenate(data["heads"], axis=1)
        np.testing.assert_allclose(
            res.output, concat @ data["wo"], rtol=2e-4, atol=2e-4
        )

    def test_mm5(self, fabric, data):
        res = mm5(fabric, data["x"], data["w1"])
        np.testing.assert_allclose(
            res.output, data["x"] @ data["w1"], rtol=2e-4, atol=2e-4
        )

    def test_mm6(self, fabric, data):
        res = mm6(fabric, data["h"], data["w2"])
        np.testing.assert_allclose(
            res.output, data["h"] @ data["w2"], rtol=2e-4, atol=4e-4
        )

    def test_shape_validation(self, fabric):
        with pytest.raises(ValueError):
            mm1(fabric, np.zeros((4, 500), dtype=np.float32), np.zeros((512, 64), dtype=np.float32))
        with pytest.raises(ValueError):
            mm4(fabric, [], np.zeros((512, 512), dtype=np.float32))
        with pytest.raises(ValueError):
            mm2(fabric, np.zeros((4, 64), dtype=np.float32), np.zeros((4, 32), dtype=np.float32))


class TestCycleStructure:
    def test_cycles_match_between_functional_and_pure(self, fabric, data):
        assert mm1(fabric, data["x"], data["w_qkv"]).cycles == mm1_cycles(
            fabric, S, 512, 64
        )
        assert mm2(fabric, data["q"], data["k"]).cycles == mm2_cycles(
            fabric, S, S, 64
        )
        assert mm3(fabric, data["attn"], data["v"]).cycles == mm3_cycles(
            fabric, S, S, 64
        )
        assert mm4(fabric, data["heads"], data["wo"]).cycles == mm4_cycles(
            fabric, S, 8, 64, 512
        )
        assert mm5(fabric, data["x"], data["w1"]).cycles == mm5_cycles(
            fabric, S, 512, 2048
        )
        assert mm6(fabric, data["h"], data["w2"]).cycles == mm6_cycles(
            fabric, S, 2048, 512
        )

    def test_mm1_cycles_grow_with_s(self, fabric):
        assert mm1_cycles(fabric, 32, 512, 64) > mm1_cycles(fabric, 4, 512, 64)

    def test_mm2_padding_floor(self, fabric):
        """Short sequences pad to the PSA tile: s=4 and s=32 keys cost
        the same because the output tile is 64 wide either way."""
        assert mm2_cycles(fabric, 4, 4, 64) == mm2_cycles(fabric, 4, 32, 64)
        assert mm2_cycles(fabric, 4, 128, 64) > mm2_cycles(fabric, 4, 32, 64)

    def test_concurrent_psa_speedup_saturates(self, fabric):
        c1 = mm1_cycles(fabric, 32, 512, 64, concurrent_psas=1)
        c8 = mm1_cycles(fabric, 32, 512, 64, concurrent_psas=8)
        c16 = mm1_cycles(fabric, 32, 512, 64, concurrent_psas=16)
        assert c8 < c1
        assert c16 == c8  # only 8 stripes exist

    def test_ffn_class_uses_ffn_ii(self, fabric):
        """MM5/MM6 carry the (larger) FFN initiation interval."""
        att = fabric.pass_cycles(16, 256, 512, ffn_class=False)
        ffn = fabric.pass_cycles(16, 256, 512, ffn_class=True)
        assert ffn > att

    def test_invocation_overhead_counted_once(self, fabric):
        base = mm1_cycles(fabric, 2, 512, 64)
        # 8 stripes, one invocation overhead, one adder fold.
        expected = (
            8 * fabric.pass_cycles(2, 64, 64)
            + fabric.invocation_overhead
            + fabric.adder.accumulate_cycles(8, 2, 64)
        )
        assert base == expected

    def test_mm1_rejects_bad_concurrency(self, fabric):
        with pytest.raises(ValueError):
            mm1_cycles(fabric, 4, 512, 64, concurrent_psas=0)

    def test_isc_transfer_cycles(self, fabric):
        assert fabric.isc_transfer_cycles(32, 512) == 32 * 512 // 16
