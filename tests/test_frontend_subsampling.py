"""Tests for the Conv2D + max-pool subsampling front block."""

import numpy as np
import pytest

from repro.frontend.subsampling import Conv2dSubsampling, conv2d, max_pool2d


class TestConv2d:
    def test_identity_kernel(self):
        rng = np.random.default_rng(0)
        img = rng.standard_normal((1, 5, 5))
        kernel = np.zeros((1, 1, 3, 3))
        kernel[0, 0, 1, 1] = 1.0
        out = conv2d(img, kernel)
        np.testing.assert_allclose(out[0], img[0, 1:-1, 1:-1])

    def test_matches_naive_convolution(self):
        rng = np.random.default_rng(1)
        img = rng.standard_normal((2, 6, 7))
        ker = rng.standard_normal((3, 2, 3, 3))
        out = conv2d(img, ker)
        # Naive reference
        expected = np.zeros_like(out)
        for o in range(3):
            for i in range(4):
                for j in range(5):
                    expected[o, i, j] = np.sum(
                        img[:, i : i + 3, j : j + 3] * ker[o]
                    )
        np.testing.assert_allclose(out, expected, atol=1e-10)

    def test_bias(self):
        img = np.zeros((1, 4, 4))
        ker = np.zeros((2, 1, 3, 3))
        out = conv2d(img, ker, bias=np.array([1.0, -2.0]))
        assert np.all(out[0] == 1.0)
        assert np.all(out[1] == -2.0)

    def test_channel_mismatch(self):
        with pytest.raises(ValueError):
            conv2d(np.zeros((2, 5, 5)), np.zeros((1, 3, 3, 3)))

    def test_kernel_larger_than_image(self):
        with pytest.raises(ValueError):
            conv2d(np.zeros((1, 2, 2)), np.zeros((1, 1, 3, 3)))


class TestMaxPool:
    def test_basic(self):
        img = np.arange(16, dtype=float).reshape(1, 4, 4)
        out = max_pool2d(img, 2)
        np.testing.assert_array_equal(out[0], [[5, 7], [13, 15]])

    def test_drops_incomplete_windows(self):
        img = np.arange(25, dtype=float).reshape(1, 5, 5)
        assert max_pool2d(img, 2).shape == (1, 2, 2)

    def test_too_small(self):
        with pytest.raises(ValueError):
            max_pool2d(np.zeros((1, 1, 4)), 2)


class TestConv2dSubsampling:
    def test_output_shape(self):
        sub = Conv2dSubsampling(80, 512)
        feats = np.random.default_rng(0).standard_normal((100, 80))
        out = sub(feats)
        assert out.shape == (sub.output_time_dim(100), 512)

    def test_time_reduction_about_4x(self):
        s = Conv2dSubsampling.output_time_dim(128)
        assert 128 // 5 <= s <= 128 // 4 + 1

    def test_min_input_frames(self):
        m = Conv2dSubsampling.min_input_frames()
        assert Conv2dSubsampling.output_time_dim(m) >= 1
        assert Conv2dSubsampling.output_time_dim(m - 1) == 0

    def test_deterministic_given_seed(self):
        a = Conv2dSubsampling(80, 64, rng=np.random.default_rng(3))
        b = Conv2dSubsampling(80, 64, rng=np.random.default_rng(3))
        feats = np.random.default_rng(0).standard_normal((50, 80))
        np.testing.assert_array_equal(a(feats), b(feats))

    def test_rejects_wrong_feature_dim(self):
        sub = Conv2dSubsampling(80, 64)
        with pytest.raises(ValueError):
            sub(np.zeros((50, 40)))

    def test_rejects_too_short(self):
        sub = Conv2dSubsampling(80, 64)
        with pytest.raises(ValueError):
            sub(np.zeros((5, 80)))

    def test_rejects_tiny_feature_dim(self):
        with pytest.raises(ValueError):
            Conv2dSubsampling(6, 64)

    def test_longer_audio_longer_sequence(self):
        s1 = Conv2dSubsampling.output_time_dim(60)
        s2 = Conv2dSubsampling.output_time_dim(120)
        assert s2 > s1
