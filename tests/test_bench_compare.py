"""Comparator edge cases: missing baselines, metric churn, zero-valued
baselines, non-finite wall samples, and the gating semantics."""

import json
import math

import pytest

from repro.bench.compare import ComparisonReport, Finding, compare_snapshots
from repro.bench.snapshot import (
    SNAPSHOT_SCHEMA,
    WallStats,
    load_snapshot,
)


def make_snapshot(
    cycles=None,
    wall=None,
    name="scn",
    schema=SNAPSHOT_SCHEMA,
    env=None,
):
    return {
        "schema": schema,
        "created_unix": 0.0,
        "env": env or {"python": "3.12.0"},
        "config": {},
        "scenarios": {
            name: {
                "kind": "arch_sweep",
                "params": {},
                "cycles": dict(cycles or {"total_cycles": 100.0}),
                "wall": dict(
                    wall
                    or {
                        "median_ms": 10.0,
                        "spread_ms": 0.1,
                        "samples_ms": [10.0, 10.1, 9.9],
                        "repeats": 3,
                        "invalid_samples": 0,
                    }
                ),
            }
        },
    }


class TestExactCycleGate:
    def test_identical_snapshots_pass(self):
        report = compare_snapshots(make_snapshot(), make_snapshot())
        assert report.passed
        assert report.findings == []

    def test_any_cycle_delta_fails(self):
        report = compare_snapshots(
            make_snapshot({"total_cycles": 100.0}),
            make_snapshot({"total_cycles": 100.0001}),
        )
        assert not report.passed
        assert "cycle count changed" in report.failures[0].message

    def test_zero_valued_baseline_cycle_change_fails_without_crash(self):
        report = compare_snapshots(
            make_snapshot({"stall_cycles": 0.0}),
            make_snapshot({"stall_cycles": 7.0}),
        )
        assert not report.passed
        assert "0 -> 7" in report.failures[0].message

    def test_zero_stays_zero_passes(self):
        report = compare_snapshots(
            make_snapshot({"stall_cycles": 0.0}),
            make_snapshot({"stall_cycles": 0.0}),
        )
        assert report.passed

    def test_removed_cycle_metric_fails(self):
        report = compare_snapshots(
            make_snapshot({"a": 1.0, "b": 2.0}), make_snapshot({"a": 1.0})
        )
        assert not report.passed
        assert report.failures[0].metric == "b"
        assert "removed" in report.failures[0].message

    def test_added_cycle_metric_warns_only(self):
        report = compare_snapshots(
            make_snapshot({"a": 1.0}), make_snapshot({"a": 1.0, "b": 2.0})
        )
        assert report.passed
        assert len(report.warnings) == 1
        assert "new cycle metric" in report.warnings[0].message


class TestScenarioChurn:
    def test_missing_scenario_fails(self):
        baseline = make_snapshot()
        current = make_snapshot()
        current["scenarios"] = {}
        report = compare_snapshots(baseline, current)
        assert not report.passed
        assert "missing from current" in report.failures[0].message

    def test_new_scenario_warns_only(self):
        baseline = make_snapshot()
        current = make_snapshot()
        current["scenarios"]["extra"] = current["scenarios"]["scn"]
        report = compare_snapshots(baseline, current)
        assert report.passed
        assert any("new scenario" in w.message for w in report.warnings)

    def test_schema_mismatch_fails_immediately(self):
        report = compare_snapshots(
            make_snapshot(schema="repro.bench/0"), make_snapshot()
        )
        assert not report.passed
        assert "schema mismatch" in report.failures[0].message
        # No per-scenario findings after a schema failure.
        assert len(report.findings) == 1


class TestWallClock:
    def test_within_noise_is_silent(self):
        report = compare_snapshots(
            make_snapshot(wall={"median_ms": 10.0, "spread_ms": 0.1}),
            make_snapshot(wall={"median_ms": 10.5, "spread_ms": 0.1}),
        )
        assert report.passed
        assert report.findings == []

    def test_regression_warns_by_default(self):
        report = compare_snapshots(
            make_snapshot(wall={"median_ms": 10.0, "spread_ms": 0.1}),
            make_snapshot(wall={"median_ms": 20.0, "spread_ms": 0.1}),
        )
        assert report.passed  # warning, not failure
        assert any("wall-clock regression" in w.message for w in report.warnings)

    def test_fail_on_wall_escalates(self):
        report = compare_snapshots(
            make_snapshot(wall={"median_ms": 10.0, "spread_ms": 0.1}),
            make_snapshot(wall={"median_ms": 20.0, "spread_ms": 0.1}),
            fail_on_wall=True,
        )
        assert not report.passed

    def test_improvement_is_informational(self):
        report = compare_snapshots(
            make_snapshot(wall={"median_ms": 20.0, "spread_ms": 0.1}),
            make_snapshot(wall={"median_ms": 10.0, "spread_ms": 0.1}),
        )
        assert report.passed
        assert any(
            f.severity == "info" and "improvement" in f.message
            for f in report.findings
        )

    def test_large_spread_raises_the_threshold(self):
        # A 50% drift that sits inside 4 sigma of a noisy baseline does
        # not warn.
        report = compare_snapshots(
            make_snapshot(wall={"median_ms": 10.0, "spread_ms": 2.0}),
            make_snapshot(wall={"median_ms": 15.0, "spread_ms": 2.0}),
        )
        assert report.findings == []

    def test_sub_millisecond_drift_is_ignored(self):
        report = compare_snapshots(
            make_snapshot(wall={"median_ms": 0.2, "spread_ms": 0.0}),
            make_snapshot(wall={"median_ms": 0.9, "spread_ms": 0.0}),
        )
        assert report.findings == []

    def test_zero_baseline_median_uses_absolute_floor(self):
        report = compare_snapshots(
            make_snapshot(wall={"median_ms": 0.0, "spread_ms": 0.0}),
            make_snapshot(wall={"median_ms": 5.0, "spread_ms": 0.0}),
        )
        assert any("wall-clock regression" in w.message for w in report.warnings)

    def test_nan_median_warns_without_crash(self):
        report = compare_snapshots(
            make_snapshot(wall={"median_ms": math.nan, "spread_ms": math.nan}),
            make_snapshot(wall={"median_ms": 10.0, "spread_ms": 0.1}),
        )
        assert report.passed
        assert any("not finite" in w.message for w in report.warnings)

    def test_invalid_samples_are_flagged(self):
        report = compare_snapshots(
            make_snapshot(
                wall={"median_ms": 10.0, "spread_ms": 0.1, "invalid_samples": 2}
            ),
            make_snapshot(wall={"median_ms": 10.0, "spread_ms": 0.1}),
        )
        assert any("non-finite wall sample" in w.message for w in report.warnings)

    def test_infinite_spread_falls_back_to_tolerance(self):
        report = compare_snapshots(
            make_snapshot(wall={"median_ms": 10.0, "spread_ms": math.inf}),
            make_snapshot(wall={"median_ms": 100.0, "spread_ms": 0.1}),
        )
        assert any("wall-clock regression" in w.message for w in report.warnings)


class TestWallStats:
    def test_nan_and_inf_samples_are_counted_not_aggregated(self):
        stats = WallStats.from_samples([10.0, math.nan, math.inf, 12.0])
        assert stats.invalid == 2
        assert stats.median == pytest.approx(11.0)
        assert math.isfinite(stats.spread)

    def test_all_invalid_yields_nan_median(self):
        stats = WallStats.from_samples([math.nan, math.inf])
        assert stats.invalid == 2
        assert math.isnan(stats.median)

    def test_robust_to_one_outlier(self):
        calm = WallStats.from_samples([10.0, 10.1, 9.9, 10.05, 9.95])
        spiky = WallStats.from_samples([10.0, 10.1, 9.9, 10.05, 500.0])
        assert spiky.median == pytest.approx(calm.median, rel=0.01)
        assert spiky.spread < 1.0


class TestSnapshotIo:
    def test_missing_baseline_raises_file_not_found(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            load_snapshot(tmp_path / "nope.json")

    def test_malformed_json_raises_value_error(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text("{not json")
        with pytest.raises(ValueError, match="not valid JSON"):
            load_snapshot(path)

    def test_schemaless_payload_raises_value_error(self, tmp_path):
        path = tmp_path / "noschema.json"
        path.write_text(json.dumps({"scenarios": {}}))
        with pytest.raises(ValueError, match="schema"):
            load_snapshot(path)


class TestReportRendering:
    def test_format_orders_failures_first_and_states_result(self):
        report = compare_snapshots(
            make_snapshot({"a": 1.0}, env={"python": "3.12"}),
            make_snapshot({"a": 2.0}, env={"python": "3.13"}),
        )
        text = report.format()
        assert "DIFFERS from baseline" in text
        assert "[FAIL]" in text
        assert text.strip().endswith("1 failure(s), 0 warning(s))")

    def test_finding_rejects_unknown_severity(self):
        with pytest.raises(ValueError):
            Finding("nope", "s", "m", "msg")

    def test_report_add_and_passed(self):
        report = ComparisonReport()
        report.add("warn", "s", "m", "w")
        assert report.passed
        report.add("fail", "s", "m", "f")
        assert not report.passed


class TestFailureAttribution:
    """A failed exact cycle gate self-explains when both snapshots
    embed the scenario's run profile: the comparator attaches the top
    (block, engine, cause) triples the cycles moved on."""

    @staticmethod
    def _with_profile(snap, makespan, busy, stall):
        from repro.obs.diffprof import PROFILE_SCHEMA

        scenario = next(iter(snap["scenarios"].values()))
        scenario["profile"] = {
            "schema": PROFILE_SCHEMA,
            "label": "seed",
            "architecture": "A3",
            "makespan_cycles": makespan,
            "lanes": {
                "mha.psa0": {
                    "busy": busy,
                    "stalls": {"load_starved": {"enc1": stall}},
                    "no_work": makespan - busy - stall,
                }
            },
            "block_work": {"enc1": {"load": 10, "compute": busy}},
            "channel_bytes": {"0": 1024},
            "meta": {},
        }
        return snap

    def test_seeded_failure_names_the_moved_triples(self):
        baseline = self._with_profile(
            make_snapshot({"total_cycles": 100.0}), 100, busy=60, stall=30
        )
        current = self._with_profile(
            make_snapshot({"total_cycles": 90.0}), 90, busy=55, stall=25
        )
        report = compare_snapshots(baseline, current)
        assert not report.passed
        (attribution,) = [
            f for f in report.findings if f.metric == "attribution"
        ]
        assert attribution.severity == "info"
        assert "cycle delta attribution" in attribution.message
        assert "Δmakespan -10 cycles" in attribution.message
        assert "(enc1, mha.psa0, load_starved) -5" in attribution.message
        assert "attribution" in report.format()

    def test_no_profiles_no_attribution(self):
        report = compare_snapshots(
            make_snapshot({"total_cycles": 100.0}),
            make_snapshot({"total_cycles": 90.0}),
        )
        assert not report.passed
        assert not [f for f in report.findings if f.metric == "attribution"]

    def test_identical_profiles_noted_when_other_metric_drifts(self):
        baseline = self._with_profile(
            make_snapshot({"total_cycles": 100.0, "flops": 5.0}),
            100, busy=60, stall=30,
        )
        current = self._with_profile(
            make_snapshot({"total_cycles": 100.0, "flops": 6.0}),
            100, busy=60, stall=30,
        )
        report = compare_snapshots(baseline, current)
        assert not report.passed
        (attribution,) = [
            f for f in report.findings if f.metric == "attribution"
        ]
        assert "cycle-identical" in attribution.message

    def test_undiffable_profiles_degrade_to_info(self):
        baseline = self._with_profile(
            make_snapshot({"total_cycles": 100.0}), 100, busy=60, stall=30
        )
        current = self._with_profile(
            make_snapshot({"total_cycles": 90.0}), 90, busy=55, stall=25
        )
        next(iter(current["scenarios"].values()))["profile"]["schema"] = "bad"
        report = compare_snapshots(baseline, current)
        assert not report.passed  # the gate itself still fails
        (attribution,) = [
            f for f in report.findings if f.metric == "attribution"
        ]
        assert "not diffable" in attribution.message

    def test_passing_compare_never_attaches_attribution(self):
        baseline = self._with_profile(
            make_snapshot({"total_cycles": 100.0}), 100, busy=60, stall=30
        )
        current = self._with_profile(
            make_snapshot({"total_cycles": 100.0}), 90, busy=55, stall=25
        )
        report = compare_snapshots(baseline, current)
        assert report.passed
        assert not [f for f in report.findings if f.metric == "attribution"]
