"""Tests for the retargetability study (Section 1.1 flexibility claim)."""

import numpy as np
import pytest

from repro.analysis.retarget import TARGET_CONFIGS, retarget_study
from repro.config import ModelConfig
from repro.hw.accelerator import TransformerAccelerator
from repro.model.params import init_transformer_params
from repro.model.transformer import Transformer


class TestRetargetStudy:
    @pytest.fixture(scope="class")
    def points(self):
        return {p.name: p for p in retarget_study(s=32)}

    def test_all_configs_schedule(self, points):
        assert set(points) == set(TARGET_CONFIGS)
        for p in points.values():
            assert p.latency_ms > 0
            assert p.gflops > 0

    def test_paper_config_is_the_baseline(self, points):
        base = points["espnet_base (paper)"]
        assert base.latency_ms == pytest.approx(86.99, rel=0.01)
        assert base.gflops == pytest.approx(4.08, rel=0.01)

    def test_smaller_model_is_faster(self, points):
        assert points["qi_2021 [29]"].latency_ms < points[
            "espnet_base (paper)"
        ].latency_ms / 5

    def test_bigger_model_is_slower(self, points):
        assert points["vaswani_big"].latency_ms > points[
            "espnet_base (paper)"
        ].latency_ms

    def test_sustained_rate_stays_in_band(self, points):
        """Retargeting keeps the fabric's sustained GFLOPs/s in the
        same order of magnitude — the fabric, not the model, sets it."""
        rates = [p.gflops_per_second for p in points.values()]
        assert min(rates) > 10
        assert max(rates) < 100

    def test_bigger_weights_later_crossover(self, points):
        """vaswani_big streams larger panels per layer, so its load
        stays dominant to longer sequence lengths."""
        assert points["vaswani_big"].crossover_s > points[
            "espnet_base (paper)"
        ].crossover_s


class TestNonDivisibleDimensions:
    """The kernels must be correct for dims that don't divide the PSA
    tile (the Qi et al. config has d_model=400, d_ff=200)."""

    @pytest.fixture(scope="class")
    def qi_params(self):
        return init_transformer_params(
            ModelConfig(
                d_model=400, num_heads=4, d_ff=200,
                num_encoders=2, num_decoders=1, vocab_size=12,
            ),
            seed=0,
        )

    def test_functional_equivalence(self, qi_params, rng):
        accel = TransformerAccelerator(qi_params, hw_seq_len=8)
        ref = Transformer(qi_params)
        feats = rng.standard_normal((5, 400)).astype(np.float32)
        toks = np.array([0, 3, 7])
        np.testing.assert_allclose(
            accel.forward(feats, toks).logits,
            ref.forward(feats, toks),
            rtol=2e-3,
            atol=2e-3,
        )

    def test_partial_stripe_costs_full_pass(self, fabric):
        """400 = 6 full 64-wide stripes + one 16-wide remainder, which
        still costs a full stripe pass."""
        from repro.hw.kernels import mm1_cycles

        c400 = mm1_cycles(fabric, 8, 400, 64)
        c384 = mm1_cycles(fabric, 8, 384, 64)
        c448 = mm1_cycles(fabric, 8, 448, 64)
        assert c384 < c400 == c448

    def test_odd_dims_through_mm5_mm6(self, fabric, rng):
        from repro.hw.kernels import mm5, mm6

        x = rng.standard_normal((5, 400)).astype(np.float32)
        w1 = rng.standard_normal((400, 200)).astype(np.float32)
        h = rng.standard_normal((5, 200)).astype(np.float32)
        w2 = rng.standard_normal((200, 400)).astype(np.float32)
        np.testing.assert_allclose(
            mm5(fabric, x, w1).output, x @ w1, rtol=2e-3, atol=2e-3
        )
        np.testing.assert_allclose(
            mm6(fabric, h, w2).output, h @ w2, rtol=2e-3, atol=2e-3
        )
