"""Shared fixtures: small model configs and parameter sets so the
functional tests stay fast while exercising every code path."""

from __future__ import annotations

import numpy as np
import pytest

from repro.config import CalibrationConfig, HardwareConfig, ModelConfig
from repro.hw.kernels import Fabric
from repro.model.params import TransformerParams, init_transformer_params


@pytest.fixture(scope="session")
def small_config() -> ModelConfig:
    """A shrunken model that still has multi-layer encoder/decoder."""
    return ModelConfig(num_encoders=2, num_decoders=2)


@pytest.fixture(scope="session")
def tiny_config() -> ModelConfig:
    """Very small dims for training / exhaustive tests."""
    return ModelConfig(
        d_model=32,
        num_heads=2,
        d_ff=64,
        num_encoders=1,
        num_decoders=1,
        vocab_size=31,
    )


@pytest.fixture(scope="session")
def small_params(small_config) -> TransformerParams:
    return init_transformer_params(small_config, seed=7)


@pytest.fixture(scope="session")
def paper_config() -> ModelConfig:
    """The full paper configuration (used for analytic tests only)."""
    return ModelConfig()


@pytest.fixture(scope="session")
def hardware() -> HardwareConfig:
    return HardwareConfig()


@pytest.fixture(scope="session")
def calibration() -> CalibrationConfig:
    return CalibrationConfig()


@pytest.fixture(scope="session")
def fabric(hardware, calibration) -> Fabric:
    return Fabric(hardware, calibration)


@pytest.fixture()
def rng() -> np.random.Generator:
    return np.random.default_rng(0)
