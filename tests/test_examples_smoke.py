"""Smoke tests: the runnable examples must execute cleanly.

The slow ones (training, full quickstart on paper-size weights) are
exercised by the benchmarks instead; here we run the quick analysis
examples end to end and sanity-check their stdout.
"""

import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).resolve().parent.parent / "examples"


def run_example(name: str, timeout: int = 240) -> str:
    result = subprocess.run(
        [sys.executable, str(EXAMPLES / name)],
        capture_output=True,
        text=True,
        timeout=timeout,
    )
    assert result.returncode == 0, result.stderr[-2000:]
    return result.stdout


class TestExampleScripts:
    def test_latency_exploration(self):
        out = run_example("latency_exploration.py")
        assert "Table 5.1" in out
        assert "crossover: compute exceeds load from s = 19" in out

    def test_design_space_exploration(self):
        out = run_example("design_space_exploration.py")
        assert "binding resource: LUT" in out
        assert "best feasible design: 2 x 64" in out

    def test_schedule_gallery(self):
        out = run_example("schedule_gallery.py")
        assert "Figs 4.8-4.10" in out
        assert "FFN / MHA latency ratio" in out

    def test_hls_pragma_study(self):
        out = run_example("hls_pragma_study.py")
        assert "ARRAY_PARTITION" in out

    def test_retargetability(self):
        out = run_example("retargetability.py")
        assert "qi_2021 [29]" in out
        assert "vaswani_big" in out

    def test_quantization_study(self):
        out = run_example("quantization_study.py")
        assert "int8" in out
        assert "future-work prediction" in out

    @pytest.mark.slow
    def test_quickstart(self):
        out = run_example("quickstart.py")
        assert "Recognized text" in out
        assert "end-to-end (modeled)" in out

    @pytest.mark.slow
    def test_batch_transcription(self):
        out = run_example("batch_transcription.py")
        assert "energy efficiency" in out

    @pytest.mark.slow
    def test_streaming_asr(self):
        out = run_example("streaming_asr.py")
        assert "real-time factor" in out
