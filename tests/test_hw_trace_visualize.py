"""Tests for trace events, timelines and the ASCII Gantt renderer."""

import pytest

from repro.hw.controller import LatencyModel
from repro.hw.trace import Timeline, TraceEvent
from repro.hw.visualize import render_comparison, render_gantt


class TestTraceEvent:
    def test_duration(self):
        e = TraceEvent("psa0", "mm1", 10, 25)
        assert e.duration == 15

    def test_rejects_negative_interval(self):
        with pytest.raises(ValueError):
            TraceEvent("psa0", "mm1", 10, 5)

    def test_rejects_unknown_kind(self):
        with pytest.raises(ValueError, match="unknown kind"):
            TraceEvent("psa0", "mm1", 0, 5, kind="bogus")

    def test_accepts_every_documented_kind(self):
        from repro.hw.trace import VALID_EVENT_KINDS

        assert VALID_EVENT_KINDS == {
            "load", "compute", "store", "overhead", "stream",
        }
        for kind in VALID_EVENT_KINDS:
            TraceEvent("psa0", "mm1", 0, 5, kind=kind)

    def test_overlap_detection(self):
        a = TraceEvent("e", "a", 0, 10)
        b = TraceEvent("e", "b", 5, 15)
        c = TraceEvent("e", "c", 10, 20)
        assert a.overlaps(b)
        assert not a.overlaps(c)  # half-open intervals touch, no overlap


class TestTimeline:
    def test_makespan(self):
        tl = Timeline()
        tl.add("a", "x", 0, 10)
        tl.add("b", "y", 5, 30)
        assert tl.makespan == 30

    def test_empty_makespan(self):
        assert Timeline().makespan == 0.0

    def test_engines_in_order(self):
        tl = Timeline()
        tl.add("z", "1", 0, 1)
        tl.add("a", "2", 0, 1)
        tl.add("z", "3", 2, 3)
        assert tl.engines() == ["z", "a"]

    def test_busy_time(self):
        tl = Timeline()
        tl.add("e", "a", 0, 10)
        tl.add("e", "b", 20, 25)
        assert tl.busy_time("e") == 15

    def test_busy_time_coalesces_overlap(self):
        # Overlapping events must not double-count the shared cycles.
        tl = Timeline()
        tl.add("e", "a", 0, 10)
        tl.add("e", "b", 5, 15)
        assert tl.busy_time("e") == 15
        assert tl.busy_intervals("e") == [(0, 15)]

    def test_busy_intervals_merge_touching(self):
        tl = Timeline()
        tl.add("e", "a", 0, 10)
        tl.add("e", "b", 10, 20)
        assert tl.busy_intervals("e") == [(0, 20)]

    def test_overlap_validation(self):
        tl = Timeline()
        tl.add("e", "a", 0, 10)
        tl.add("e", "b", 5, 15)
        with pytest.raises(ValueError):
            tl.validate_no_engine_overlap()

    def test_extend(self):
        a, b = Timeline(), Timeline()
        a.add("x", "1", 0, 1)
        b.add("y", "2", 0, 2)
        a.extend(b)
        assert len(a.events) == 2


class TestIdleGapsAndUtilization:
    def test_empty_timeline(self):
        tl = Timeline()
        assert tl.idle_gaps("e") == []
        assert tl.idle_gaps("e", until=10) == [(0.0, 10)]
        assert tl.utilization("e") == 0.0

    def test_single_event_with_lead_in_and_tail(self):
        tl = Timeline()
        tl.add("e", "a", 5, 10)
        assert tl.idle_gaps("e") == [(0.0, 5)]
        assert tl.idle_gaps("e", until=20) == [(0.0, 5), (10, 20)]

    def test_zero_duration_events_are_idle(self):
        tl = Timeline()
        tl.add("e", "a", 5, 5)
        assert tl.busy_time("e") == 0
        assert tl.idle_gaps("e", until=10) == [(0.0, 10)]

    def test_unsorted_insertion_order(self):
        tl = Timeline()
        tl.add("e", "late", 20, 30)
        tl.add("e", "early", 0, 10)
        assert tl.idle_gaps("e") == [(10, 20)]
        assert tl.busy_time("e") == 20

    def test_utilization_over_makespan(self):
        tl = Timeline()
        tl.add("e", "a", 0, 10)
        tl.add("other", "b", 0, 40)
        assert tl.utilization("e") == 0.25
        assert tl.utilization("other") == 1.0

    def test_gaps_and_busy_partition_makespan(self):
        tl = Timeline()
        tl.add("e", "a", 3, 7)
        tl.add("e", "b", 12, 18)
        tl.add("other", "c", 0, 25)
        span = tl.makespan
        gap_total = sum(e - s for s, e in tl.idle_gaps("e", until=span))
        assert tl.busy_time("e") + gap_total == span


class TestGantt:
    def test_renders_schedule(self):
        lm = LatencyModel()
        result = lm.latency_report(8, "A3").schedule
        art = render_gantt(result.timeline, width=80)
        assert "hbm0" in art
        assert "hbm1" in art
        assert "compute" in art
        assert "cycles" in art

    def test_empty_timeline(self):
        assert render_gantt(Timeline()) == "(empty timeline)"

    def test_width_validation(self):
        with pytest.raises(ValueError):
            render_gantt(Timeline(), width=5)

    def test_load_and_compute_chars_differ(self):
        tl = Timeline()
        tl.add("hbm", "LW", 0, 50, kind="load")
        tl.add("compute", "C", 50, 100, kind="compute")
        art = render_gantt(tl, width=40)
        assert "=" in art and "#" in art

    def test_stall_annotations_fill_idle_cells(self):
        from repro.hw.introspect import StallInterval

        tl = Timeline()
        tl.add("hbm", "LW", 0, 50, kind="load")
        tl.add("compute", "C", 50, 100, kind="compute")
        art = render_gantt(
            tl,
            width=40,
            annotations=[StallInterval("compute", 0, 50, "load_starved")],
        )
        compute_row = next(line for line in art.splitlines() if "compute" in line)
        assert "L" in compute_row
        assert "L=load_starved" in art  # legend

    def test_annotated_program_gantt(self):
        from repro.hw.visualize import render_program_gantt

        program = LatencyModel().full_pass_program(8)
        art = render_program_gantt(
            program, "A1", width=80, annotate_stalls=True
        )
        assert "L" in art and "L=load_starved" in art
        plain = render_program_gantt(program, "A1", width=80)
        assert "L=load_starved" not in plain

    def test_comparison_stacks_architectures(self):
        lm = LatencyModel()
        art = render_comparison(
            {
                a: lm.latency_report(8, a).schedule.timeline
                for a in ("A1", "A2", "A3")
            },
            width=60,
        )
        assert "--- A1 ---" in art and "--- A3 ---" in art


class TestPlatformDiagram:
    def test_renders_default_hardware(self):
        from repro.hw.visualize import render_platform_diagram

        art = render_platform_diagram()
        assert "SLR0" in art and "SLR1" in art
        assert "HBM2" in art and "PCIe" in art

    def test_scales_with_slr_count(self):
        from repro.config import HardwareConfig
        from repro.hw.visualize import render_platform_diagram

        art = render_platform_diagram(HardwareConfig(num_slrs=1))
        assert "SLR0" in art and "SLR1" not in art
