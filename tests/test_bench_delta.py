"""Offline snapshot diffing and the comparator's failure attribution.

Snapshots here are handcrafted with tiny embedded run profiles so the
expected deltas are exact by construction; the live capture path is
covered by ``test_obs_diffprof.py`` and ``test_bench_scenarios.py``.
"""

import pytest

from repro.bench.delta import (
    attribution_lines,
    diff_profile_dicts,
    diff_snapshots,
    render_snapshot_delta,
)
from repro.bench.snapshot import SNAPSHOT_SCHEMA
from repro.obs.diffprof import PROFILE_SCHEMA


def make_profile(makespan=100, busy=60, stall=30, label="p"):
    """A one-lane profile whose account conserves by construction."""
    return {
        "schema": PROFILE_SCHEMA,
        "label": label,
        "architecture": "A3",
        "makespan_cycles": makespan,
        "lanes": {
            "mha.psa0": {
                "busy": busy,
                "stalls": {"load_starved": {"enc1": stall}},
                "no_work": makespan - busy - stall,
            }
        },
        "block_work": {"enc1": {"load": 10, "compute": busy}},
        "channel_bytes": {"0": 4096},
        "meta": {},
    }


def make_snapshot(scenarios):
    return {
        "schema": SNAPSHOT_SCHEMA,
        "created_unix": 0.0,
        "env": {},
        "config": {},
        "scenarios": scenarios,
    }


def scenario(cycles, profile=None):
    entry = {"kind": "arch_sweep", "params": {}, "wall": {}, "cycles": cycles}
    if profile is not None:
        entry["profile"] = profile
    return entry


class TestDiffSnapshots:
    def test_schema_mismatch_raises(self):
        good = make_snapshot({})
        bad = dict(good, schema="repro.bench/0")
        with pytest.raises(ValueError, match="baseline snapshot schema"):
            diff_snapshots(bad, good)
        with pytest.raises(ValueError, match="current snapshot schema"):
            diff_snapshots(good, bad)

    def test_identical_snapshots_do_not_change(self):
        snap = make_snapshot({"a": scenario({"total": 100.0}, make_profile())})
        delta = diff_snapshots(snap, snap)
        assert not delta.changed
        assert delta.scenarios["a"].waterfall.is_zero
        assert render_snapshot_delta(delta) == (
            "no cycle-metric differences between the snapshots"
        )

    def test_metric_deltas_and_membership(self):
        base = make_snapshot({
            "a": scenario({"total": 100.0, "stall": 5.0}),
            "gone": scenario({"total": 1.0}),
        })
        cand = make_snapshot({
            "a": scenario({"total": 90.0, "stall": 5.0}),
            "new": scenario({"total": 2.0}),
        })
        delta = diff_snapshots(base, cand)
        assert delta.only_base == ["gone"]
        assert delta.only_cand == ["new"]
        (m,) = delta.scenarios["a"].metrics
        assert (m.metric, m.base, m.cand, m.delta) == ("total", 100.0, 90.0, -10.0)

    def test_waterfall_attached_only_when_both_sides_have_profiles(self):
        base = make_snapshot({
            "a": scenario({"total": 100.0}, make_profile(100)),
            "b": scenario({"total": 100.0}, make_profile(100)),
        })
        cand = make_snapshot({
            "a": scenario({"total": 90.0}, make_profile(90, busy=55, stall=25)),
            "b": scenario({"total": 90.0}),  # no profile on this side
        })
        delta = diff_snapshots(base, cand)
        wf = delta.scenarios["a"].waterfall
        assert wf is not None and wf.makespan_delta == -10
        assert delta.scenarios["b"].waterfall is None
        text = render_snapshot_delta(delta)
        assert "== a ==" in text and "== b ==" in text
        assert "differential profile" in text

    def test_corrupt_embedded_profile_propagates(self):
        broken = make_profile()
        broken["lanes"]["mha.psa0"]["busy"] += 1
        base = make_snapshot({"a": scenario({"total": 1.0}, make_profile())})
        cand = make_snapshot({"a": scenario({"total": 2.0}, broken)})
        with pytest.raises(ValueError, match="not conservative"):
            diff_snapshots(base, cand)


class TestAttributionLines:
    def test_triples_and_units_formatted(self):
        wf = diff_profile_dicts(
            make_profile(100, busy=60, stall=30),
            make_profile(90, busy=55, stall=25),
        )
        lines = attribution_lines(wf, top=3)
        assert lines[0] == "Δmakespan -10 cycles (100 -> 90)"
        assert "(enc1, mha.psa0, load_starved) -5" in lines
        assert "(-, mha.psa0, busy) -5" in lines
        assert any(line.startswith("unit enc1:") for line in lines)

    def test_leaf_lines_sum_to_makespan_delta(self):
        wf = diff_profile_dicts(
            make_profile(100, busy=60, stall=30),
            make_profile(70, busy=40, stall=20),
        )
        leaf_sum = sum(leaf.delta for leaf in wf.top_leaves(100))
        # One lane: the flat leaves ARE the lane account.
        assert leaf_sum == wf.makespan_delta == -30
