"""Tests for the autograd engine, including finite-difference checks."""

import numpy as np
import pytest

from repro.train.autograd import Tensor, no_grad


def finite_diff(fn, tensor: Tensor, index, eps: float = 1e-6) -> float:
    tensor.data[index] += eps
    up = fn().item()
    tensor.data[index] -= 2 * eps
    down = fn().item()
    tensor.data[index] += eps
    return (up - down) / (2 * eps)


def check_grad(fn, tensor: Tensor, indices, rtol=1e-5, atol=1e-7):
    tensor.zero_grad()
    out = fn()
    out.backward()
    for idx in indices:
        numeric = finite_diff(fn, tensor, idx)
        analytic = tensor.grad[idx]
        np.testing.assert_allclose(analytic, numeric, rtol=rtol, atol=atol)


@pytest.fixture()
def a(rng):
    return Tensor(rng.standard_normal((3, 4)), requires_grad=True)


@pytest.fixture()
def b(rng):
    return Tensor(rng.standard_normal((4, 5)), requires_grad=True)


class TestBasicOps:
    def test_add_grad(self, a):
        check_grad(lambda: (a + 2.0).sum(), a, [(0, 0), (2, 3)])

    def test_mul_grad(self, a, rng):
        c = Tensor(rng.standard_normal((3, 4)))
        check_grad(lambda: (a * c).sum(), a, [(1, 2)])

    def test_matmul_grads(self, a, b):
        check_grad(lambda: (a @ b).sum(), a, [(0, 1), (2, 2)])
        check_grad(lambda: (a @ b).sum(), b, [(3, 4)])

    def test_div_grad(self, a):
        check_grad(lambda: (1.0 / (a * a + 2.0)).sum(), a, [(0, 0)])

    def test_pow_grad(self, a):
        check_grad(lambda: (a**3).sum(), a, [(1, 1)])

    def test_sub_neg(self, a):
        check_grad(lambda: (2.0 - a).sum() + (-a).sum(), a, [(0, 2)])

    def test_broadcast_add_grad(self, a, rng):
        bias = Tensor(rng.standard_normal(4), requires_grad=True)
        check_grad(lambda: (a + bias).sum(), bias, [(1,), (3,)])

    def test_broadcast_mul_unbroadcast_shape(self, a, rng):
        bias = Tensor(rng.standard_normal(4), requires_grad=True)
        out = (a * bias).sum()
        out.backward()
        assert bias.grad.shape == (4,)


class TestElementwise:
    def test_exp_log_sqrt_tanh(self, rng):
        x = Tensor(rng.random((3, 3)) + 0.5, requires_grad=True)
        check_grad(lambda: x.exp().sum(), x, [(0, 0)])
        check_grad(lambda: x.log().sum(), x, [(1, 1)])
        check_grad(lambda: x.sqrt().sum(), x, [(2, 2)])
        check_grad(lambda: x.tanh().sum(), x, [(0, 2)])

    def test_relu_grad(self):
        x = Tensor(np.array([-1.0, 2.0, 3.0]), requires_grad=True)
        x.relu().sum().backward()
        np.testing.assert_array_equal(x.grad, [0.0, 1.0, 1.0])

    def test_masked_fill_grad_blocked(self):
        x = Tensor(np.ones((2, 2)), requires_grad=True)
        mask = np.array([[True, False], [True, True]])
        x.masked_fill(mask, -99.0).sum().backward()
        np.testing.assert_array_equal(x.grad, [[1, 0], [1, 1]])


class TestSoftmax:
    def test_softmax_grad(self, a):
        check_grad(lambda: (a.softmax(axis=-1) ** 2).sum(), a, [(0, 0), (2, 1)])

    def test_log_softmax_grad(self, a):
        check_grad(lambda: (a.log_softmax(axis=-1) * 0.3).sum(), a, [(1, 3)])

    def test_softmax_rows_sum_to_one(self, a):
        np.testing.assert_allclose(
            a.softmax(axis=-1).data.sum(axis=-1), 1.0, rtol=1e-12
        )


class TestStructure:
    def test_transpose_grad(self, a):
        check_grad(lambda: (a.T * a.T).sum(), a, [(0, 3)])

    def test_reshape_grad(self, a):
        check_grad(lambda: (a.reshape(12) ** 2).sum(), a, [(1, 1)])

    def test_getitem_grad(self, a):
        check_grad(lambda: (a[1] * a[1]).sum(), a, [(1, 0)])
        assert a.grad[0].sum() == 0  # untouched rows get zero grad

    def test_index_select_grad_accumulates_duplicates(self):
        emb = Tensor(np.ones((4, 3)), requires_grad=True)
        out = emb.index_select(np.array([1, 1, 2]))
        out.sum().backward()
        np.testing.assert_array_equal(emb.grad[1], [2, 2, 2])
        np.testing.assert_array_equal(emb.grad[2], [1, 1, 1])
        np.testing.assert_array_equal(emb.grad[0], [0, 0, 0])

    def test_concatenate_grad(self, rng):
        x = Tensor(rng.standard_normal((2, 3)), requires_grad=True)
        y = Tensor(rng.standard_normal((2, 2)), requires_grad=True)
        out = Tensor.concatenate([x, y], axis=-1)
        (out * out).sum().backward()
        np.testing.assert_allclose(x.grad, 2 * x.data)
        np.testing.assert_allclose(y.grad, 2 * y.data)

    def test_mean_grad(self, a):
        a.zero_grad()
        a.mean().backward()
        np.testing.assert_allclose(a.grad, np.full((3, 4), 1 / 12))


class TestGraphMechanics:
    def test_grad_accumulates_across_uses(self):
        x = Tensor(np.array([2.0]), requires_grad=True)
        y = x * x + x * 3.0  # dy/dx = 2x + 3 = 7
        y.sum().backward()
        np.testing.assert_allclose(x.grad, [7.0])

    def test_diamond_graph(self):
        x = Tensor(np.array([3.0]), requires_grad=True)
        u = x * 2.0
        v = x * 5.0
        ((u + v) * (u + v)).sum().backward()  # f = (7x)^2, f' = 98x
        np.testing.assert_allclose(x.grad, [98 * 3.0])

    def test_backward_requires_scalar(self, a):
        with pytest.raises(RuntimeError):
            (a * 2).backward()

    def test_backward_on_leaf_without_grad(self):
        x = Tensor(np.zeros(3))
        with pytest.raises(RuntimeError):
            x.backward()

    def test_no_grad_context(self):
        with no_grad():
            x = Tensor(np.ones(3), requires_grad=True)
            y = x * 2
            assert not x.requires_grad
            assert not y.requires_grad

    def test_no_grad_restores_state(self):
        with no_grad():
            pass
        x = Tensor(np.ones(1), requires_grad=True)
        assert x.requires_grad

    def test_constant_branches_skipped(self, rng):
        x = Tensor(rng.standard_normal(3), requires_grad=True)
        c = Tensor(rng.standard_normal(3))
        (x * c).sum().backward()
        assert c.grad is None
