"""Tests for the bandwidth/utilization analysis."""

import pytest

from repro.analysis.bandwidth import (
    architecture_utilization_table,
    utilization_report,
)
from repro.hw.controller import LatencyModel


@pytest.fixture(scope="module")
def lm():
    return LatencyModel()


class TestUtilizationReport:
    def test_fractions_bounded(self, lm):
        for arch in ("A1", "A2", "A3"):
            r = utilization_report(lm, 16, arch)
            for frac in r.busy_fraction.values():
                assert 0.0 <= frac <= 1.0
            assert 0.0 <= r.compute_stall_fraction <= 1.0

    def test_compute_bound_regime_no_stall(self, lm):
        """At s = 32 the overlap architectures eliminate stalls."""
        for arch in ("A2", "A3"):
            r = utilization_report(lm, 32, arch)
            assert r.compute_stall_fraction == pytest.approx(0.0, abs=1e-9)
            assert r.compute_busy_fraction > 0.9

    def test_a1_always_stalls(self, lm):
        r = utilization_report(lm, 32, "A1")
        assert r.compute_stall_fraction > 0.2

    def test_a3_reduces_stall_when_load_bound(self, lm):
        """s = 4: the paper's (LW - C)/2 stall halving shows up as a
        lower compute-stall fraction for A3 than A2."""
        a2 = utilization_report(lm, 4, "A2")
        a3 = utilization_report(lm, 4, "A3")
        assert a3.compute_stall_fraction < a2.compute_stall_fraction

    def test_a3_uses_both_channels(self, lm):
        r = utilization_report(lm, 4, "A3")
        assert "hbm0" in r.busy_fraction and "hbm1" in r.busy_fraction
        assert r.busy_fraction["hbm1"] > 0.5

    def test_sustained_gflops_match_related_work_table(self, lm):
        """The sustained rate here is the Table 5.6 'our work' column."""
        r = utilization_report(lm, 32, "A3")
        assert r.sustained_gflops == pytest.approx(46.9, rel=0.02)

    def test_effective_load_bandwidth_below_peak(self, lm):
        """Wall-clock streaming rate cannot exceed the channel peaks."""
        peak = (
            lm.hardware.num_slrs
            * lm.hardware.hbm_channels_per_slr
            * lm.hardware.hbm_channel_gbps
        )
        for arch in ("A1", "A2", "A3"):
            r = utilization_report(lm, 8, arch)
            assert r.effective_load_gbps < peak

    def test_table_covers_three_architectures(self, lm):
        table = architecture_utilization_table(lm, s=16)
        assert [r.architecture.value for r in table] == ["A1", "A2", "A3"]
