"""Program-IR optimizer passes: semantics preservation, cycle wins,
cache-key hygiene, and compatibility with fault injection and the
Gantt renderer on pass-transformed (op-id-remapped) programs."""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.hw.dse import a4_candidate_pipelines, synthesize_a4
from repro.hw.faults import FaultSpec, program_fault_hook
from repro.hw.passes import (
    PassError,
    PassPipeline,
    ReorderOpsPass,
    StageExposedLoadsPass,
    default_pipeline,
    lower_optimized_encoder_stack,
    lower_optimized_full_pass,
    semantic_op_counts,
    verify_semantics_preserved,
)
from repro.hw.program import (
    execute_program,
    lower_encoder_stack,
    lower_full_pass,
    program_load_bytes,
    schedule_program,
    trace_program_with_schedule,
)
from repro.hw.visualize import render_program_gantt


def _full_pass_inputs(config, s, rng):
    return {
        "x": rng.normal(size=(s, config.d_model)).astype(np.float32),
        "dec_in": rng.normal(size=(s, config.d_model)).astype(np.float32),
        "enc_mask": None,
        "dec_self_mask": None,
        "dec_memory_mask": None,
    }


def _overhead(fabric):
    return fabric.calibration.block_overhead_cycles


PIPELINES = {
    "default": lambda: default_pipeline(),
    "split_only": lambda: default_pipeline(
        split_limit=2, coalesce=False, reorder=False
    ),
    "reorder_only": lambda: default_pipeline(
        split_limit=0, coalesce=False, reorder=True
    ),
    "deep_prefetch": lambda: default_pipeline(
        split_limit=1, num_weight_buffers=4
    ),
}


class TestSemanticsPreservation:
    """Every pipeline must be provably semantics-preserving: bit-exact
    outputs, conserved load bytes and semantic op counts — across
    architectures and sequence lengths."""

    @pytest.mark.parametrize("s", [8, 18, 32])
    @pytest.mark.parametrize("name", sorted(PIPELINES))
    def test_full_pass_bit_identical(
        self, small_config, small_params, fabric, s, name
    ):
        rng = np.random.default_rng(s)
        base = lower_full_pass(small_config, fabric, s)
        optimized = PIPELINES[name]().apply_program(base)
        verify_semantics_preserved(
            base, optimized, small_params, _full_pass_inputs(small_config, s, rng)
        )

    def test_encoder_stack_bit_identical(self, small_config, small_params, fabric):
        rng = np.random.default_rng(0)
        base = lower_encoder_stack(small_config, fabric, 18)
        optimized = default_pipeline().apply_program(base)
        verify_semantics_preserved(
            base,
            optimized,
            small_params,
            {
                "x": rng.normal(size=(18, small_config.d_model)).astype(
                    np.float32
                ),
                "enc_mask": None,
            },
        )

    @pytest.mark.parametrize("arch", ["A1", "A2", "A3"])
    def test_load_bytes_and_op_counts_conserved(
        self, small_config, fabric, arch
    ):
        base = lower_full_pass(small_config, fabric, 18)
        optimized = default_pipeline(architecture=arch).apply_program(base)
        assert program_load_bytes(optimized) == program_load_bytes(base)
        assert semantic_op_counts(optimized) == semantic_op_counts(base)

    def test_verifier_catches_divergence(self, small_config, small_params, fabric):
        base = lower_full_pass(small_config, fabric, 8)
        # Dropping the final op breaks the semantic op counts.
        broken = lower_encoder_stack(small_config, fabric, 8)
        with pytest.raises(PassError):
            verify_semantics_preserved(
                base,
                broken,
                small_params,
                _full_pass_inputs(small_config, 8, np.random.default_rng(1)),
            )


class TestCycleEffects:
    @pytest.mark.parametrize("s", [8, 18, 32])
    def test_default_pipeline_strictly_improves_a3(self, small_config, fabric, s):
        base = lower_full_pass(small_config, fabric, s)
        optimized = default_pipeline().apply_program(base)
        oh = _overhead(fabric)
        before = schedule_program(base, "A3", oh).total_cycles
        after = schedule_program(optimized, "A3", oh).total_cycles
        assert after < before

    @pytest.mark.parametrize("arch", ["A1", "A2"])
    def test_split_pass_invariant_on_serial_architectures(
        self, small_config, fabric, arch
    ):
        """A1 serializes loads and computes and A2 has a single load
        channel, so staging a load across channels cannot help — the
        pass must leave the schedule total exactly unchanged."""
        base = lower_full_pass(small_config, fabric, 18)
        split = PassPipeline(
            passes=(StageExposedLoadsPass(limit=2, architecture=arch),),
            architecture=arch,
        ).apply_program(base)
        oh = _overhead(fabric)
        assert (
            schedule_program(split, arch, oh).total_cycles
            == schedule_program(base, arch, oh).total_cycles
        )

    def test_optimized_trace_is_consistent(self, small_config, fabric):
        """The transformed program still traces: the trace-executor
        timeline validates (no engine overlap) and its makespan matches
        the schedule total the pass optimized for."""
        base = lower_full_pass(small_config, fabric, 18)
        optimized = default_pipeline().apply_program(base)
        oh = _overhead(fabric)
        timeline, sched = trace_program_with_schedule(optimized, "A3", oh)
        timeline.validate_no_engine_overlap()
        assert int(timeline.makespan) == sched.total_cycles

    def test_pipeline_report_accounts_the_win(self, small_config, fabric):
        base = lower_full_pass(small_config, fabric, 18)
        program, report = default_pipeline().apply(base)
        oh = _overhead(fabric)
        assert report.cycles_before == schedule_program(base, "A3", oh).total_cycles
        assert report.cycles_after == schedule_program(program, "A3", oh).total_cycles
        assert report.cycles_saved > 0
        # Per-pass deltas chain: each pass starts where the last ended.
        for prev, cur in zip(report.passes, report.passes[1:]):
            assert cur.cycles_before == prev.cycles_after


class TestLoweringCacheKeys:
    """Satellite: the optimized lowerings key their lru_cache on the
    pipeline, so optimized programs never collide with the baseline or
    with other pipelines."""

    def test_pipeline_in_cache_key(self, small_config, fabric):
        base = lower_full_pass(small_config, fabric, 8)
        p1 = default_pipeline()
        p2 = default_pipeline(split_limit=1, coalesce=False)
        opt1 = lower_optimized_full_pass(small_config, fabric, 8, p1)
        opt2 = lower_optimized_full_pass(small_config, fabric, 8, p2)
        assert opt1 is not base
        assert opt2 is not opt1
        # Same pipeline value -> cache hit, even via a distinct object.
        assert lower_optimized_full_pass(
            small_config, fabric, 8, default_pipeline()
        ) is opt1
        # The baseline lowering is untouched by optimized lookups.
        assert lower_full_pass(small_config, fabric, 8) is base

    def test_encoder_stack_cache_distinct(self, small_config, fabric):
        base = lower_encoder_stack(small_config, fabric, 8)
        opt = lower_optimized_encoder_stack(
            small_config, fabric, 8, default_pipeline()
        )
        assert opt is not base
        assert lower_encoder_stack(small_config, fabric, 8) is base


class TestTransformedProgramCompat:
    """Satellite: fault injection and the Gantt renderer must keep
    working after passes remap op ids and reorder blocks."""

    def test_fault_hook_on_reordered_program(
        self, small_config, small_params, fabric
    ):
        rng = np.random.default_rng(2)
        inputs = _full_pass_inputs(small_config, 8, rng)
        base = lower_full_pass(small_config, fabric, 8)
        optimized = default_pipeline().apply_program(base)
        hook = program_fault_hook([FaultSpec("enc0.ffn.w1", index=7, bit=30)])
        faulty_base = execute_program(base, small_params, inputs, weight_hook=hook)
        faulty_opt = execute_program(
            optimized, small_params, inputs, weight_hook=hook
        )
        clean = execute_program(optimized, small_params, inputs)
        for name in faulty_base.outputs:
            np.testing.assert_array_equal(
                faulty_opt.outputs[name], faulty_base.outputs[name]
            )
        assert not np.array_equal(
            faulty_opt.outputs["encoder_output"], clean.outputs["encoder_output"]
        )

    def test_gantt_renders_transformed_program(self, small_config, fabric):
        optimized = default_pipeline().apply_program(
            lower_full_pass(small_config, fabric, 8)
        )
        art = render_program_gantt(optimized, "A3", width=60)
        assert "hbm0" in art and "hbm1" in art
        annotated = render_program_gantt(
            optimized, "A3", width=60, annotate_stalls=True
        )
        assert isinstance(annotated, str) and annotated


class TestA4Synthesis:
    def test_synthesize_a4_strictly_beats_a3(self, small_config):
        result = synthesize_a4(model=small_config, s=8)
        assert result.optimized_cycles < result.baseline_cycles
        assert result.cycles_saved == (
            result.baseline_cycles - result.optimized_cycles
        )
        assert result.candidates_tried == len(a4_candidate_pipelines())
        assert tuple(result.pipeline.names)
        # The win must be attributed: exposed-stall cycles go down and
        # no cause gets *worse*.
        before = result.psa_stalls_before
        after = result.psa_stalls_after
        assert sum(after.values()) < sum(before.values())
        reducible = before.get("load_starved", 0) + before.get(
            "channel_contention", 0
        )
        reduced = after.get("load_starved", 0) + after.get(
            "channel_contention", 0
        )
        assert reduced < reducible

    def test_synthesize_a4_cached_and_serializable(self, small_config):
        first = synthesize_a4(model=small_config, s=8)
        again = synthesize_a4(model=small_config, s=8)
        assert again is first
        payload = first.as_dict()
        text = json.dumps(payload)
        assert "program" not in payload
        assert json.loads(text)["cycles_saved"] == first.cycles_saved

    def test_winner_is_semantics_preserving(self, small_config, small_params):
        result = synthesize_a4(model=small_config, s=8)
        rng = np.random.default_rng(4)
        verify_semantics_preserved(
            result.baseline_program,
            result.program,
            small_params,
            _full_pass_inputs(small_config, 8, rng),
        )

    def test_reorder_pass_alone_is_valid(self, small_config, fabric):
        base = lower_full_pass(small_config, fabric, 8)
        reordered = PassPipeline(
            passes=(ReorderOpsPass(),), architecture="A3"
        ).apply_program(base)
        # Op ids stay index-dense and topologically ordered after the
        # remap (the rebuild validator would have raised otherwise).
        assert [op.op_id for op in reordered.ops] == list(
            range(reordered.num_ops)
        )
