"""Tests for the vocabulary, greedy/beam decoding and WER metrics."""

import numpy as np
import pytest

from repro.decoding.beam import beam_search
from repro.decoding.greedy import greedy_decode
from repro.decoding.vocab import CharVocabulary
from repro.decoding.wer import (
    character_error_rate,
    corpus_word_error_rate,
    edit_distance,
    word_error_rate,
)


class TestVocabulary:
    def test_default_size_matches_paper_model(self):
        # 3 specials + space + apostrophe + 26 letters = 31 tokens,
        # matching ModelConfig.vocab_size.
        assert len(CharVocabulary()) == 31

    def test_encode_decode_roundtrip(self):
        v = CharVocabulary()
        text = "hello world"
        assert v.decode(v.encode(text)) == text

    def test_encode_lowercases(self):
        v = CharVocabulary()
        np.testing.assert_array_equal(v.encode("AbC"), v.encode("abc"))

    def test_unknown_becomes_unk(self):
        v = CharVocabulary()
        ids = v.encode("a#b")
        assert ids[1] == v.unk_id

    def test_sos_eos_wrapping(self):
        v = CharVocabulary()
        ids = v.encode("hi", add_sos=True, add_eos=True)
        assert ids[0] == v.sos_id
        assert ids[-1] == v.eos_id
        assert v.decode(ids) == "hi"

    def test_decode_stops_at_eos(self):
        v = CharVocabulary()
        ids = list(v.encode("ab")) + [v.eos_id] + list(v.encode("cd"))
        assert v.decode(ids) == "ab"

    def test_espnet_style_output(self):
        v = CharVocabulary()
        ids = v.encode("the public")
        assert v.decode_espnet_style(ids) == "THE_PUBLIC"

    def test_duplicate_characters_rejected(self):
        with pytest.raises(ValueError):
            CharVocabulary("aab")

    def test_reserved_characters_rejected(self):
        with pytest.raises(ValueError):
            CharVocabulary("ab<")


def _table_step_fn(rows: list[np.ndarray]):
    """Step function replaying a fixed log-prob table."""

    def step(tokens: np.ndarray) -> np.ndarray:
        return rows[min(len(tokens) - 1, len(rows) - 1)]

    return step


class TestGreedyDecode:
    def test_follows_argmax(self):
        rows = [
            np.log(np.array([0.1, 0.1, 0.8])),  # pick 2
            np.log(np.array([0.7, 0.2, 0.1])),  # pick 0
            np.log(np.array([0.1, 0.8, 0.1])),  # pick 1 = eos -> stop
        ]
        out = greedy_decode(_table_step_fn(rows), sos_id=0, eos_id=1, max_len=10)
        np.testing.assert_array_equal(out, [2, 0])

    def test_max_len_cap(self):
        rows = [np.log(np.array([0.9, 0.05, 0.05]))]
        out = greedy_decode(_table_step_fn(rows), sos_id=2, eos_id=1, max_len=4)
        assert len(out) == 4

    def test_immediate_eos(self):
        rows = [np.log(np.array([0.1, 0.9]))]
        out = greedy_decode(_table_step_fn(rows), sos_id=0, eos_id=1, max_len=5)
        assert out.size == 0

    def test_rejects_bad_max_len(self):
        with pytest.raises(ValueError):
            greedy_decode(lambda t: np.zeros(3), 0, 1, max_len=0)

    def test_rejects_2d_step_output(self):
        with pytest.raises(ValueError):
            greedy_decode(lambda t: np.zeros((2, 3)), 0, 1, max_len=3)


class TestBeamSearch:
    def test_finds_higher_probability_path_than_greedy(self):
        # Greedy takes token 2 first (p=0.5) then is stuck with low-prob
        # continuations; the path through token 3 is jointly better.
        eos = 1

        def step(tokens: np.ndarray) -> np.ndarray:
            if len(tokens) == 1:
                return np.log(np.array([0.01, 0.01, 0.5, 0.48]))
            if tokens[-1] == 2:
                return np.log(np.array([0.69, 0.3, 0.005, 0.005]))
            return np.log(np.array([0.01, 0.97, 0.01, 0.01]))

        greedy = greedy_decode(step, sos_id=0, eos_id=eos, max_len=5)
        hyps = beam_search(step, sos_id=0, eos_id=eos, max_len=5, beam_size=3)
        best = hyps[0].tokens[1:]
        # Beam prefers 3 -> eos: log(0.48 * 0.97) > log(0.5 * 0.3).
        assert list(best) == [3]
        assert list(greedy)[0] == 2  # greedy committed to the 0.5 branch

    def test_beam_one_matches_greedy(self):
        rows = [
            np.log(np.array([0.2, 0.1, 0.7])),
            np.log(np.array([0.6, 0.3, 0.1])),
            np.log(np.array([0.1, 0.8, 0.1])),
        ]
        step = _table_step_fn(rows)
        greedy = greedy_decode(step, sos_id=0, eos_id=1, max_len=6)
        hyps = beam_search(step, sos_id=0, eos_id=1, max_len=6, beam_size=1)
        np.testing.assert_array_equal(hyps[0].tokens[1:], greedy)

    def test_returns_sorted_hypotheses(self):
        rows = [np.log(np.array([0.3, 0.4, 0.3]))]
        hyps = beam_search(
            _table_step_fn(rows), sos_id=0, eos_id=1, max_len=3, beam_size=3
        )
        scores = [h.score for h in hyps]
        assert scores == sorted(scores, reverse=True)

    def test_rejects_bad_beam(self):
        with pytest.raises(ValueError):
            beam_search(lambda t: np.zeros(3), 0, 1, max_len=3, beam_size=0)

    def test_early_stop_consistent_scale_with_length_penalty(self):
        """Regression: the early-stop used to compare raw live scores
        against *normalized* finished scores.  With length_penalty > 0
        a live beam whose raw score trails the best finished normalized
        score can still finish with a better normalized score; the old
        comparison truncated the search and returned the worse
        hypothesis ranked first."""
        eos = 0

        def step(tokens: np.ndarray) -> np.ndarray:
            suffix = list(tokens[1:])
            if not suffix:  # [sos]: finish now (-0.7) or start 'a'
                return np.array([-0.7, -0.9, -20.0])
            if suffix == [1]:  # 'a': finish (-0.95 at n=1) or extend
                return np.array([-0.05, -0.1, -20.0])
            if suffix == [1, 1]:  # 'aa': finishing normalizes to -0.505
                return np.array([-0.01, -0.5, -20.0])
            return np.array([-5.0, -5.0, -20.0])

        hyps = beam_search(
            step, sos_id=2, eos_id=eos, max_len=4, beam_size=2,
            length_penalty=1.0,
        )
        # Old logic breaks once two hypotheses have finished (raw live
        # -1.0 < normalized finished -0.7) and never sees 'aa', whose
        # normalized score -1.01/2 = -0.505 wins.
        assert list(hyps[0].tokens[1:]) == [1, 1]
        assert hyps[0].normalized_score(1.0) == pytest.approx(-0.505)

    def test_early_stop_unaffected_without_penalty(self):
        """With length_penalty == 0 the bound equals the raw score, so
        the fixed early stop behaves exactly as before."""
        rows = [
            np.log(np.array([0.2, 0.7, 0.1])),
            np.log(np.array([0.1, 0.9, 0.0001])),
        ]
        hyps = beam_search(
            _table_step_fn(rows), sos_id=0, eos_id=1, max_len=6, beam_size=2
        )
        scores = [h.normalized_score() for h in hyps]
        assert scores == sorted(scores, reverse=True)

    def test_length_penalty_prefers_longer(self):
        hyp_short = beam_search(
            _table_step_fn([np.log(np.array([0.45, 0.55]))]),
            sos_id=0,
            eos_id=1,
            max_len=2,
            beam_size=2,
            length_penalty=1.0,
        )
        assert hyp_short  # sanity: search terminates with penalty set


class TestEditDistance:
    def test_identical(self):
        assert edit_distance("abc", "abc") == 0

    def test_substitution(self):
        assert edit_distance("abc", "axc") == 1

    def test_insert_delete(self):
        assert edit_distance("abc", "abxc") == 1
        assert edit_distance("abc", "ac") == 1

    def test_empty_cases(self):
        assert edit_distance("", "abc") == 3
        assert edit_distance("abc", "") == 3
        assert edit_distance("", "") == 0

    def test_symmetric(self):
        assert edit_distance("kitten", "sitting") == edit_distance(
            "sitting", "kitten"
        )

    def test_known_value(self):
        assert edit_distance("kitten", "sitting") == 3

    def test_works_on_word_lists(self):
        assert edit_distance(["a", "b"], ["a", "c"]) == 1


class TestWer:
    def test_perfect(self):
        assert word_error_rate("the cat sat", "the cat sat") == 0.0

    def test_one_substitution(self):
        assert word_error_rate("the cat sat", "the dog sat") == pytest.approx(1 / 3)

    def test_can_exceed_one(self):
        assert word_error_rate("a", "x y z") > 1.0

    def test_empty_reference_rejected(self):
        with pytest.raises(ValueError):
            word_error_rate("", "something")

    def test_cer(self):
        assert character_error_rate("abc", "abd") == pytest.approx(1 / 3)

    def test_corpus_wer_weighted(self):
        wer = corpus_word_error_rate(
            ["a b c d", "x"], ["a b c d", "y"]
        )  # 1 error / 5 words
        assert wer == pytest.approx(0.2)

    def test_corpus_wer_alignment_check(self):
        with pytest.raises(ValueError):
            corpus_word_error_rate(["a"], ["a", "b"])
