"""Edge cases and failure injection across the stack: degenerate
inputs, non-finite values, boundary sequence lengths, minimal configs."""

import numpy as np
import pytest

from repro.config import ModelConfig
from repro.hw.accelerator import TransformerAccelerator
from repro.hw.controller import LatencyModel
from repro.hw.kernels import Fabric, mm1, mm2
from repro.hw.scheduler import BlockWork, schedule_a1, schedule_a2, schedule_a3
from repro.model.params import init_transformer_params
from repro.model.transformer import Transformer


class TestDegenerateSequences:
    def test_sequence_length_one(self, small_params, rng):
        """s = 1: a single feature vector through the whole stack."""
        accel = TransformerAccelerator(small_params, hw_seq_len=4)
        ref = Transformer(small_params)
        feats = rng.standard_normal((1, 512)).astype(np.float32)
        toks = np.array([0])
        np.testing.assert_allclose(
            accel.forward(feats, toks).logits,
            ref.forward(feats, toks),
            rtol=2e-3,
            atol=2e-3,
        )

    def test_hw_seq_len_one(self, small_params, rng):
        accel = TransformerAccelerator(small_params, hw_seq_len=1)
        feats = rng.standard_normal((1, 512)).astype(np.float32)
        out = accel.forward(feats, np.array([0]))
        assert out.logits.shape == (1, small_params.config.vocab_size)

    def test_latency_model_s_equals_one(self):
        lm = LatencyModel()
        assert lm.latency_ms(1, "A3") > 0

    def test_full_hw_length_no_padding(self, small_params, rng):
        accel = TransformerAccelerator(small_params, hw_seq_len=8)
        feats = rng.standard_normal((8, 512)).astype(np.float32)
        ref = Transformer(small_params)
        np.testing.assert_allclose(
            accel.forward(feats, np.array([0, 1])).logits,
            ref.forward(feats, np.array([0, 1])),
            rtol=2e-3,
            atol=2e-3,
        )


class TestNonFiniteInjection:
    """NaN/Inf corruption must propagate visibly, never silently
    produce plausible-looking numbers."""

    def test_nan_features_poison_logits(self, small_params):
        accel = TransformerAccelerator(small_params, hw_seq_len=8)
        feats = np.zeros((4, 512), dtype=np.float32)
        feats[2, 100] = np.nan
        with np.errstate(invalid="ignore"):
            out = accel.forward(feats, np.array([0]))
        assert not np.all(np.isfinite(out.logits))

    def test_nan_weight_detected_in_kernel(self, fabric, rng):
        x = rng.standard_normal((4, 512)).astype(np.float32)
        w = rng.standard_normal((512, 64)).astype(np.float32)
        w[128, 3] = np.inf
        with np.errstate(invalid="ignore"):
            res = mm1(fabric, x, w)
        assert not np.all(np.isfinite(res.output))

    def test_softmax_survives_large_scores(self, fabric, rng):
        """Saturated (but finite) attention scores must not overflow."""
        q = np.full((4, 64), 50.0, dtype=np.float32)
        k = np.full((4, 64), 50.0, dtype=np.float32)
        scores = mm2(fabric, q, k)
        from repro.hw.nonlinear import scale_scores, softmax_unit

        weights = softmax_unit(scale_scores(scores.output, 64))
        assert np.all(np.isfinite(weights))
        np.testing.assert_allclose(weights.sum(axis=-1), 1.0, rtol=1e-5)


class TestMinimalConfigs:
    def test_single_head_model(self, rng):
        cfg = ModelConfig(
            d_model=64, num_heads=1, d_ff=128, num_encoders=1,
            num_decoders=1, vocab_size=5,
        )
        params = init_transformer_params(cfg, seed=0)
        accel = TransformerAccelerator(params, hw_seq_len=4)
        ref = Transformer(params)
        feats = rng.standard_normal((3, 64)).astype(np.float32)
        toks = np.array([0, 2])
        np.testing.assert_allclose(
            accel.forward(feats, toks).logits,
            ref.forward(feats, toks),
            rtol=2e-3,
            atol=2e-3,
        )

    def test_encoder_only_model(self):
        lm = LatencyModel(model=ModelConfig(num_decoders=0))
        assert len(lm.build_blocks(8, "A3")) == 12
        assert lm.latency_ms(8, "A3") > 0

    def test_decoder_only_model(self):
        lm = LatencyModel(model=ModelConfig(num_encoders=0))
        blocks = lm.build_blocks(8, "A3")
        assert len(blocks) == 12  # 6 decoders x (m, f)
        assert lm.latency_ms(8, "A3") > 0

    def test_zero_layer_model_rejected_by_scheduler(self):
        lm = LatencyModel(
            model=ModelConfig(num_encoders=0, num_decoders=0)
        )
        with pytest.raises(ValueError):
            lm.latency_report(8, "A3")


class TestSchedulerEdges:
    def test_single_block(self):
        blocks = [BlockWork("only", 100, 50)]
        for fn in (schedule_a1, schedule_a2, schedule_a3):
            assert fn(blocks).total_cycles == 150

    def test_zero_load_blocks(self):
        blocks = [BlockWork(f"b{i}", 0, 50) for i in range(4)]
        assert schedule_a3(blocks).total_cycles == 200

    def test_zero_compute_blocks(self):
        blocks = [BlockWork(f"b{i}", 50, 0) for i in range(4)]
        # A3 with two channels: loads pair up.
        assert schedule_a3(blocks).total_cycles < schedule_a1(
            blocks
        ).total_cycles

    def test_wildly_heterogeneous_blocks(self):
        blocks = [
            BlockWork("tiny", 1, 1),
            BlockWork("huge_load", 10**9, 1),
            BlockWork("huge_compute", 1, 10**9),
        ]
        for fn in (schedule_a1, schedule_a2, schedule_a3):
            result = fn(blocks)
            result.timeline.validate_no_engine_overlap()
            assert result.total_cycles >= 10**9


class TestFrontendEdges:
    def test_silence_produces_floor_energies(self):
        from repro.frontend.features import LogMelFrontend

        fe = LogMelFrontend()
        feats = fe(np.zeros(16000))
        assert np.all(feats <= np.log(1e-10) + 1e-6)

    def test_full_scale_square_wave(self):
        from repro.frontend.features import LogMelFrontend

        fe = LogMelFrontend()
        t = np.arange(8000)
        wav = np.sign(np.sin(2 * np.pi * 440 * t / 16000))
        feats = fe(wav)
        assert np.all(np.isfinite(feats))

    def test_vocab_single_char_transcripts(self):
        from repro.decoding.vocab import CharVocabulary

        v = CharVocabulary()
        assert v.decode(v.encode("a")) == "a"
        assert v.decode([]) == ""
