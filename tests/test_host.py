"""Tests for the simulated OpenCL runtime and the host process flow."""

import pytest

from repro.host.flow import run_inference_flow
from repro.host.opencl import (
    Buffer,
    CommandQueue,
    Context,
    Device,
    Kernel,
    Program,
)
from repro.hw.controller import LatencyModel


@pytest.fixture()
def context():
    return Context(Device())


class TestContextAndBuffers:
    def test_alloc_tracks_memory(self, context):
        buf = context.alloc(1024, "x")
        assert context.allocated_bytes == 1024
        context.free(buf)
        assert context.allocated_bytes == 0

    def test_out_of_memory(self, context):
        with pytest.raises(MemoryError):
            context.alloc(context.device.global_memory_bytes + 1, "huge")

    def test_double_free_rejected(self, context):
        buf = context.alloc(64, "x")
        context.free(buf)
        with pytest.raises(ValueError):
            context.free(buf)

    def test_zero_alloc_rejected(self, context):
        with pytest.raises(ValueError):
            context.alloc(0, "empty")


class TestCommandQueue:
    def test_in_order_serialization(self, context):
        q = CommandQueue(context, "q")
        buf = context.alloc(1 << 20, "b")
        e1 = q.enqueue_write_buffer(buf)
        e2 = q.enqueue_write_buffer(buf)
        assert e2.start_s >= e1.end_s

    def test_event_dependency_across_queues(self, context):
        q1 = CommandQueue(context, "q1")
        q2 = CommandQueue(context, "q2")
        buf = context.alloc(1 << 20, "b")
        write = q1.enqueue_write_buffer(buf)
        kernel = q2.enqueue_kernel(Kernel("k", 0), 3_000_000, wait_for=[write])
        assert kernel.start_s >= write.end_s

    def test_no_dependency_means_overlap(self, context):
        q1 = CommandQueue(context, "q1")
        q2 = CommandQueue(context, "q2")
        buf = context.alloc(100 << 20, "b")
        write = q1.enqueue_write_buffer(buf)
        kernel = q2.enqueue_kernel(Kernel("k", 0), 30_000_000)
        assert kernel.start_s == 0.0
        assert write.start_s == 0.0

    def test_kernel_duration_in_cycles(self, context):
        q = CommandQueue(context, "q")
        ev = q.enqueue_kernel(Kernel("k", 0), 300_000)  # 1 ms @ 300 MHz
        assert ev.duration_s == pytest.approx(1e-3)

    def test_pcie_transfer_time(self, context):
        q = CommandQueue(context, "q")
        buf = context.alloc(12_000_000, "b")  # 12 MB at 12 GB/s -> 1 ms
        ev = q.enqueue_write_buffer(buf)
        assert ev.duration_s == pytest.approx(1e-3)

    def test_released_buffer_rejected(self, context):
        q = CommandQueue(context, "q")
        buf = context.alloc(64, "b")
        context.free(buf)
        with pytest.raises(ValueError):
            q.enqueue_write_buffer(buf)

    def test_foreign_buffer_rejected(self, context):
        other = Context(Device())
        buf = other.alloc(64, "b")
        q = CommandQueue(context, "q")
        with pytest.raises(ValueError):
            q.enqueue_read_buffer(buf)

    def test_partial_transfer_bounds(self, context):
        q = CommandQueue(context, "q")
        buf = context.alloc(100, "b")
        with pytest.raises(ValueError):
            q.enqueue_write_buffer(buf, num_bytes=200)

    def test_timeline_has_no_queue_overlap(self, context):
        q = CommandQueue(context, "q")
        buf = context.alloc(1 << 20, "b")
        q.enqueue_write_buffer(buf)
        q.enqueue_kernel(Kernel("k", 0), 1000)
        context.timeline.validate_no_engine_overlap()


class TestProgram:
    def test_kernel_lookup(self):
        prog = Program(kernels=(Kernel("a", 0), Kernel("b", 1)))
        assert prog.kernel("b").slr == 1
        with pytest.raises(KeyError):
            prog.kernel("missing")


class TestInferenceFlow:
    @pytest.fixture(scope="class")
    def lm(self):
        return LatencyModel()

    def test_first_inference_matches_cycle_model(self, lm):
        report = run_inference_flow(lm, s=32)
        cycle_ms = lm.latency_report(32, "A3").latency_ms
        assert report.first_inference_s * 1e3 == pytest.approx(
            cycle_ms, rel=0.02
        )

    def test_setup_costs_once(self, lm):
        one = run_inference_flow(lm, s=32, num_inferences=1)
        four = run_inference_flow(lm, s=32, num_inferences=4)
        assert one.setup_s == four.setup_s
        # Amortized: total grows by ~3 kernels, not 3 setups.
        assert four.total_s - one.total_s < 3.1 * one.first_inference_s

    def test_weight_upload_sized_by_model(self, lm):
        report = run_inference_flow(lm, s=32)
        # 252 MB over 12 GB/s PCIe ~ 21 ms.
        assert report.weight_upload_s == pytest.approx(0.021, rel=0.05)

    def test_device_memory_accounting(self, lm):
        report = run_inference_flow(lm, s=32, num_inferences=2)
        assert report.allocated_bytes > 252_000_000  # weights + IO bufs

    def test_input_dma_overlaps_previous_kernel(self, lm):
        report = run_inference_flow(lm, s=32, num_inferences=3)
        kernels = [
            e for e in report.timeline.events if e.label.startswith("kernel")
        ]
        writes = [
            e
            for e in report.timeline.events
            if e.label.startswith("write:input")
        ]
        # Input 1's DMA starts while kernel 0 runs.
        assert writes[1].start < kernels[0].end

    def test_validation(self, lm):
        with pytest.raises(ValueError):
            run_inference_flow(lm, s=0)
        with pytest.raises(ValueError):
            run_inference_flow(lm, s=8, num_inferences=0)
