"""Integration tests pinning the simulator to the paper's evaluation
(Tables 5.1-5.6, Fig 5.2, Section 5.1.6).  These are the reproduction
acceptance tests: shape must hold; absolute values within the tolerance
recorded in EXPERIMENTS.md."""

import pytest

from repro.baselines.cpu import CpuLatencyModel
from repro.baselines.energy import fpga_energy_model, gpu_energy_model
from repro.baselines.gpu import GPU_ANCHORS, GpuLatencyModel
from repro.baselines.related import comparison_table
from repro.hw.controller import LatencyModel
from repro.hw.dse import head_parallelism_sweep

#: Table 5.1 of the paper, in milliseconds.
TABLE_5_1 = {
    4: {"A1": 65.87, "A2": 53.45, "A3": 33.92},
    8: {"A1": 75.57, "A2": 54.5, "A3": 39.9},
    16: {"A1": 98.14, "A2": 56.27, "A3": 52.59},
    32: {"A1": 122.8, "A2": 84.15, "A3": 84.15},
}


@pytest.fixture(scope="module")
def lm():
    return LatencyModel()


class TestTable51:
    @pytest.mark.parametrize("s", sorted(TABLE_5_1))
    @pytest.mark.parametrize("arch", ["A1", "A2", "A3"])
    def test_latency_within_tolerance(self, lm, s, arch):
        paper = TABLE_5_1[s][arch]
        model = lm.latency_ms(s, arch)
        # A1 @ s=32 is internally inconsistent in the paper itself
        # (its A2/A3 rows imply sum(LW) + sum(C) ~ 133 ms); allow 15%
        # there, 8% everywhere else.
        tol = 0.15 if (s, arch) == (32, "A1") else 0.08
        assert model == pytest.approx(paper, rel=tol)

    @pytest.mark.parametrize("s", sorted(TABLE_5_1))
    def test_a3_improvement_factor(self, lm, s):
        """Paper: A3 improves on A1 by 1.46x-1.94x."""
        improvement = lm.latency_ms(s, "A1") / lm.latency_ms(s, "A3")
        paper = TABLE_5_1[s]["A1"] / TABLE_5_1[s]["A3"]
        assert improvement == pytest.approx(paper, rel=0.12)
        assert 1.4 < improvement < 2.2

    def test_improvement_shrinks_with_s(self, lm):
        """The overlap gain is biggest for short sequences."""
        gains = [
            lm.latency_ms(s, "A1") / lm.latency_ms(s, "A3")
            for s in (4, 8, 16, 32)
        ]
        assert gains[0] == max(gains)


class TestFig52:
    def test_crossover_at_18(self, lm):
        assert lm.crossover_sequence_length() == 19  # compute > load for s > 18

    def test_load_flat_compute_rising(self, lm):
        pairs = [lm.mha_ffn_load_compute(s) for s in range(2, 40, 2)]
        loads = [p[0] for p in pairs]
        computes = [p[1] for p in pairs]
        assert max(loads) - min(loads) < 1e-9
        assert computes == sorted(computes)


class TestTables54and55:
    """CPU/GPU speedups, including the headline 32x and 8.8x averages."""

    PAPER_SEQ = (4, 8, 16, 20, 24, 32)

    def _fpga_latency_s(self, lm, s):
        """The hardware is synthesized for a fixed s=32 and shorter
        inputs are padded up to it (Section 5.1.5), so the accelerator
        latency is the s=32 latency for every input length."""
        del s
        return lm.latency_report(32, "A3").latency_ms / 1e3

    def test_cpu_average_speedup_32x(self, lm):
        cpu = CpuLatencyModel()
        speedups = [
            cpu.speedup_over(s, self._fpga_latency_s(lm, s))
            for s in self.PAPER_SEQ
        ]
        average = sum(speedups) / len(speedups)
        assert average == pytest.approx(32.0, rel=0.15)

    def test_cpu_speedup_range(self, lm):
        """Paper: 4.75x at s=4 up to 53.5x at s=32."""
        cpu = CpuLatencyModel()
        low = cpu.speedup_over(4, self._fpga_latency_s(lm, 4))
        high = cpu.speedup_over(32, self._fpga_latency_s(lm, 32))
        assert low == pytest.approx(4.75, rel=0.15)
        assert high == pytest.approx(53.5, rel=0.15)

    def test_gpu_average_speedup_8_8x(self, lm):
        gpu = GpuLatencyModel()
        speedups = [
            gpu.speedup_over(s, self._fpga_latency_s(lm, s))
            for s in self.PAPER_SEQ
        ]
        average = sum(speedups) / len(speedups)
        assert average == pytest.approx(8.8, rel=0.15)

    def test_gpu_speedup_range(self, lm):
        """Paper: 4.01x at s=4 up to 15.5x at s=32."""
        gpu = GpuLatencyModel()
        low = gpu.speedup_over(4, self._fpga_latency_s(lm, 4))
        high = gpu.speedup_over(32, self._fpga_latency_s(lm, 32))
        assert low == pytest.approx(4.01, rel=0.15)
        assert high == pytest.approx(15.5, rel=0.15)

    def test_speedup_grows_with_s(self, lm):
        cpu = CpuLatencyModel()
        speedups = [
            cpu.speedup_over(s, self._fpga_latency_s(lm, s))
            for s in self.PAPER_SEQ
        ]
        assert speedups == sorted(speedups)


class TestTable53:
    def test_dse_shape(self):
        points = head_parallelism_sweep(s=32)
        latencies = [p.latency_ms for p in points]
        assert latencies == sorted(latencies)
        assert latencies[0] == pytest.approx(84.15, rel=0.10)


class TestTable56:
    def test_comparison_table(self):
        table = comparison_table(s=32)
        ours = table[-1]
        assert ours["gflops_per_s"] == pytest.approx(47.23, rel=0.10)
        assert ours["improvement"] == pytest.approx(90.8, rel=0.10)
        # vs GPU [29]: paper reports 6.31x; vs FPGA [29]: 3.26x.
        assert ours["gflops_per_s"] / table[1]["gflops_per_s"] == pytest.approx(
            6.31, rel=0.10
        )
        assert ours["gflops_per_s"] / table[2]["gflops_per_s"] == pytest.approx(
            3.26, rel=0.10
        )


class TestSection516:
    def test_e2e_latency_120ms(self, lm):
        """Host 36.3 ms + accelerator ~84 ms = 120.45 ms at s=32."""
        from repro.asr.pipeline import HostTimingModel

        host = HostTimingModel().host_ms(1.36)
        accel = lm.latency_ms(32, "A3")
        assert host + accel == pytest.approx(120.45, rel=0.05)

    def test_throughput_11_88_seq_per_s(self, lm):
        throughput = 1e3 / lm.latency_ms(32, "A3")
        assert throughput == pytest.approx(11.88, rel=0.08)

    def test_energy_efficiency(self, lm):
        fpga = fpga_energy_model()
        gpu = gpu_energy_model()
        fpga_eff = fpga.gflops_per_joule(32, lm.latency_ms(32, "A3") / 1e3)
        gpu_eff = gpu.gflops_per_joule(32, GPU_ANCHORS[32])
        assert fpga_eff == pytest.approx(1.38, rel=0.10)
        assert gpu_eff == pytest.approx(0.055, rel=0.10)
