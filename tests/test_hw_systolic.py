"""Tests for the systolic array model: exact emulation vs vectorized
functional model vs NumPy, and the structural cycle counts."""

import numpy as np
import pytest

from repro.hw.systolic import SystolicArray, ceil_div


class TestCeilDiv:
    def test_values(self):
        assert ceil_div(8, 2) == 4
        assert ceil_div(9, 2) == 5
        assert ceil_div(0, 3) == 0

    def test_rejects_bad(self):
        with pytest.raises(ValueError):
            ceil_div(1, 0)
        with pytest.raises(ValueError):
            ceil_div(-1, 2)


class TestExactEmulation:
    """The cycle-stepped PE wavefront must compute an exact matmul."""

    @pytest.mark.parametrize(
        "l,m,n", [(3, 3, 4), (2, 5, 2), (1, 1, 1), (4, 2, 7), (5, 6, 3)]
    )
    def test_matches_numpy(self, l, m, n, rng):
        psa = SystolicArray(rows=2, cols=3)
        a = rng.standard_normal((l, m))
        b = rng.standard_normal((m, n))
        np.testing.assert_allclose(psa.simulate_exact(a, b), a @ b, atol=1e-12)

    def test_paper_figure_dimensions(self, rng):
        # Fig 4.2: 3x3 by 3x4 on the standard structure.
        psa = SystolicArray(rows=2, cols=4)
        a = rng.standard_normal((3, 3))
        b = rng.standard_normal((3, 4))
        np.testing.assert_allclose(psa.simulate_exact(a, b), a @ b, atol=1e-12)

    def test_partial_tiles(self, rng):
        # Dimensions not divisible by the array shape.
        psa = SystolicArray(rows=2, cols=4)
        a = rng.standard_normal((5, 3))
        b = rng.standard_normal((3, 7))
        np.testing.assert_allclose(psa.simulate_exact(a, b), a @ b, atol=1e-12)

    def test_bad_shapes(self):
        psa = SystolicArray()
        with pytest.raises(ValueError):
            psa.simulate_exact(np.zeros((2, 3)), np.zeros((4, 2)))


class TestVectorizedModel:
    def test_matches_exact_emulation(self, rng):
        psa = SystolicArray(rows=2, cols=4)
        a = rng.standard_normal((4, 6)).astype(np.float32)
        b = rng.standard_normal((6, 8)).astype(np.float32)
        fast = psa.matmul(a, b)
        slow = psa.simulate_exact(a, b)
        np.testing.assert_allclose(fast, slow, rtol=1e-6)

    def test_fp32_output(self, rng):
        psa = SystolicArray()
        out = psa.matmul(rng.standard_normal((2, 3)), rng.standard_normal((3, 2)))
        assert out.dtype == np.float32

    def test_dimension_validation(self):
        psa = SystolicArray()
        with pytest.raises(ValueError):
            psa.matmul(np.zeros((2, 3)), np.zeros((4, 5)))
        with pytest.raises(ValueError):
            psa.matmul(np.zeros(3), np.zeros((3, 2)))


class TestCycles:
    def test_single_pass(self):
        psa = SystolicArray(rows=2, cols=64)
        # One row-pair, one column tile: m + fill.
        assert psa.pass_cycles(2, 64, 64) == 64 + 2 + 64

    def test_row_passes_scale(self):
        psa = SystolicArray(rows=2, cols=64)
        assert psa.pass_cycles(32, 64, 64) == 16 * (64 + 66)

    def test_column_tiles_scale(self):
        psa = SystolicArray(rows=2, cols=64)
        assert psa.pass_cycles(2, 64, 512) == 8 * (64 + 66)

    def test_partial_unroll_slowdown(self):
        """The paper quotes ~16x latency increase for the 2-row PSA vs a
        fully unrolled 32-row array."""
        partial = SystolicArray(rows=2, cols=64)
        full = SystolicArray(rows=32, cols=64)
        ratio = partial.pass_cycles(32, 64, 64) / full.pass_cycles(32, 64, 64)
        assert ratio == pytest.approx(16, rel=0.35)

    def test_rejects_nonpositive_dims(self):
        with pytest.raises(ValueError):
            SystolicArray().pass_cycles(0, 4, 4)

    def test_rejects_bad_grid(self):
        with pytest.raises(ValueError):
            SystolicArray(rows=0, cols=4)

    def test_num_pes(self):
        assert SystolicArray(rows=2, cols=64).num_pes == 128
