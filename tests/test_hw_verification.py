"""Tests for the self-verification battery."""

import pytest

from repro.config import CalibrationConfig, HardwareConfig
from repro.hw.verification import (
    EquivalenceCase,
    default_cases,
    verify_case,
    verify_equivalence,
)
from repro.config import ModelConfig


class TestVerification:
    def test_default_battery_passes(self):
        results = verify_equivalence()
        assert all(r.passed for r in results)
        assert len(results) == len(default_cases())

    def test_errors_are_fp32_scale(self):
        for r in verify_equivalence():
            assert r.max_abs_error < 1e-4

    def test_custom_case(self):
        case = EquivalenceCase(
            "custom",
            ModelConfig(
                d_model=128, num_heads=2, d_ff=256,
                num_encoders=1, num_decoders=1, vocab_size=6,
            ),
            hw_seq_len=6,
            input_len=4,
            token_len=2,
        )
        assert verify_case(case).passed

    def test_impossible_tolerance_fails(self):
        case = default_cases()[0]
        result = verify_case(case, rtol=0.0, atol=0.0)
        assert not result.passed  # fp32 reordering is never bit-exact

    def test_alternate_hardware_still_equivalent(self):
        """Changing PSA dims must not change functional results."""
        hw = HardwareConfig(psa_rows=4, psa_cols=32)
        results = verify_equivalence(hardware=hw)
        assert all(r.passed for r in results)

    def test_cli_verify_passes(self, capsys):
        from repro.cli import main

        assert main(["verify"]) == 0
        assert "5/5 cases passed" in capsys.readouterr().out

    def test_cli_utilization(self, capsys):
        from repro.cli import main

        assert main(["utilization", "--seq", "8"]) == 0
        out = capsys.readouterr().out
        assert "A3" in out and "GFLOPs/s" in out
