"""Tests for the repro-asr command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestCli:
    def test_latency(self, capsys):
        assert main(["latency", "--seq", "8", "--arch", "A3"]) == 0
        out = capsys.readouterr().out
        assert "A3" in out and "latency ms" in out

    def test_crossover(self, capsys):
        assert main(["crossover"]) == 0
        assert "compute exceeds load from s = 19" in capsys.readouterr().out

    def test_resources_fits(self, capsys):
        assert main(["resources"]) == 0
        out = capsys.readouterr().out
        assert "LUT" in out and "fits" in out

    def test_resources_overbudget_exit_code(self, capsys):
        assert main(["resources", "--psa-rows", "16"]) == 1
        assert "DOES NOT FIT" in capsys.readouterr().out

    def test_dse(self, capsys):
        assert main(["dse"]) == 0
        assert "parallel heads" in capsys.readouterr().out

    def test_precision(self, capsys):
        assert main(["precision"]) == 0
        out = capsys.readouterr().out
        assert "int8" in out and "fp32" in out

    def test_inventory(self, capsys):
        assert main(["inventory"]) == 0
        out = capsys.readouterr().out
        assert "W_Q/K/V" in out and "576" in out

    def test_program(self, capsys):
        assert main(["program", "--seq", "8", "--ops", "6", "--width", "80"]) == 0
        out = capsys.readouterr().out
        # Op table: header, a load op and an attention matmul.
        assert "block program:" in out
        assert "LW:enc1" in out and "h0:MM1(K)" in out
        assert "more ops" in out  # truncation notice past --ops
        # Gantt: both HBM channel lanes (A3 two-channel prefetch) plus
        # compute engine lanes.
        assert "hbm0" in out and "hbm1" in out
        assert "slr0.psa0" in out and "slr1" in out

    def test_program_a1(self, capsys):
        assert main(["program", "--seq", "4", "--arch", "A1", "--ops", "1"]) == 0
        out = capsys.readouterr().out
        assert "per-engine Gantt under A1" in out

    def test_transcribe_small(self, capsys):
        assert main(["transcribe", "--words", "1", "--seed", "3"]) == 0
        out = capsys.readouterr().out
        assert "recognized:" in out and "e2e" in out

    def test_transcribe_json(self, capsys):
        import json

        assert main(["transcribe", "--words", "1", "--seed", "3", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert set(payload) >= {
            "text", "tokens", "sequence_length", "latency_ms", "metrics",
            "reference",
        }
        assert payload["latency_ms"]["e2e"] > 0
        assert payload["metrics"]["repro.asr.utterances"] == 1
        assert payload["metrics"]["repro.e2e_ms"]["count"] == 1

    def test_profile_writes_artifacts(self, capsys, tmp_path):
        import json

        out_dir = tmp_path / "prof"
        assert main([
            "profile", "--out", str(out_dir), "--words", "1", "--seed", "3",
        ]) == 0
        stdout = capsys.readouterr().out
        assert "perfetto" in stdout.lower()
        trace = json.loads((out_dir / "trace.json").read_text())
        lanes = {
            e["args"]["name"]
            for e in trace["traceEvents"]
            if e.get("name") == "thread_name"
        }
        assert {"hbm0", "hbm1", "host"} <= lanes
        assert any(lane.startswith("slr0.psa") for lane in lanes)
        prom = (out_dir / "metrics.prom").read_text()
        for expected in (
            "repro_e2e_ms", "repro_hw_engine_busy_cycles", "repro_hw_hbm_bytes",
        ):
            assert expected in prom
        assert (out_dir / "events.jsonl").read_text().strip()
        # The exact-integer run profile rides along for `repro-asr diff`.
        from repro.obs.diffprof import RunProfile

        profile = RunProfile.from_dict(
            json.loads((out_dir / "runprofile.json").read_text())
        )
        assert profile.makespan > 0

    def test_metrics_exposition(self, capsys):
        assert main(["metrics", "--words", "1", "--seed", "3"]) == 0
        out = capsys.readouterr().out
        assert "# TYPE repro_e2e_ms histogram" in out
        assert "repro_asr_utterances 1" in out

    def test_unknown_command_rejected(self):
        with pytest.raises(SystemExit):
            main(["no-such-command"])

    def test_parser_program_name(self):
        assert build_parser().prog == "repro-asr"


class TestBenchCli:
    def test_run_writes_snapshot_and_self_compares_clean(self, capsys, tmp_path):
        out = tmp_path / "snaps"
        assert main(["bench", "run", "--out", str(out), "--quick"]) == 0
        stdout = capsys.readouterr().out
        assert "BENCH_1.json" in stdout
        assert (out / "BENCH_1.json").is_file()
        # A snapshot compared against itself passes with no findings.
        assert main(
            ["bench", "compare", str(out / "BENCH_1.json"), str(out)]
        ) == 0
        assert "result: PASS" in capsys.readouterr().out

    def test_compare_fails_on_injected_cycle_regression(self, capsys, tmp_path):
        import json

        out = tmp_path / "snaps"
        assert main(["bench", "run", "--out", str(out), "--quick"]) == 0
        capsys.readouterr()
        baseline = out / "BENCH_1.json"
        snapshot = json.loads(baseline.read_text())
        scenario = snapshot["scenarios"]["sweep_a3_s32"]
        scenario["cycles"]["total_cycles"] += 1000
        regressed = tmp_path / "regressed.json"
        regressed.write_text(json.dumps(snapshot))
        assert main(["bench", "compare", str(baseline), str(regressed)]) == 1
        stdout = capsys.readouterr().out
        assert "[FAIL]" in stdout
        assert "cycle count changed" in stdout

    def test_compare_missing_baseline_is_usage_error(self, capsys, tmp_path):
        missing = tmp_path / "nope.json"
        assert main(["bench", "compare", str(missing), str(missing)]) == 2
        assert "nope.json" in capsys.readouterr().out

    def test_compare_empty_snapshot_dir_is_usage_error(self, capsys, tmp_path):
        baseline = tmp_path / "b.json"
        baseline.write_text("{}")
        empty = tmp_path / "empty"
        empty.mkdir()
        assert main(["bench", "compare", str(baseline), str(empty)]) == 2

    def test_report_names_crossover_and_roofline(self, capsys):
        assert main(["bench", "report", "--seq", "32", "--arch", "A3"]) == 0
        out = capsys.readouterr().out
        assert "s = 19" in out
        assert "compute-bound" in out
        assert "MM6" in out


def _diff_profile_dict(makespan, busy, stall, label="p"):
    from repro.obs.diffprof import PROFILE_SCHEMA

    return {
        "schema": PROFILE_SCHEMA,
        "label": label,
        "architecture": "A3",
        "makespan_cycles": makespan,
        "lanes": {
            "mha.psa0": {
                "busy": busy,
                "stalls": {"load_starved": {"enc1": stall}},
                "no_work": makespan - busy - stall,
            }
        },
        "block_work": {"enc1": {"load": 10, "compute": busy}},
        "channel_bytes": {"0": 1024},
        "meta": {},
    }


class TestDiffCli:
    def test_live_diff_writes_waterfall_and_delta_trace(
        self, capsys, tmp_path
    ):
        import json

        out = tmp_path / "waterfall.json"
        trace = tmp_path / "delta_trace.json"
        assert main([
            "diff", "--base", "A1", "--cand", "A3", "--seq", "8",
            "--top", "3", "--out", str(out), "--trace", str(trace),
        ]) == 0
        stdout = capsys.readouterr().out
        assert "differential profile: A1 s=8 -> A3 s=8" in stdout
        assert "conservation" in stdout
        payload = json.loads(out.read_text())
        assert payload["makespan_delta"] < 0  # A3 is strictly faster
        assert payload["cand"]["makespan_cycles"] - payload["base"][
            "makespan_cycles"
        ] == payload["makespan_delta"]
        counters = {
            e["name"]
            for e in json.loads(trace.read_text())["traceEvents"]
            if e.get("ph") == "C"
        }
        assert any(n.startswith("delta:utilization:") for n in counters)
        assert any(n.startswith("delta:bandwidth:hbm") for n in counters)

    def test_saved_profiles_diff_offline(self, capsys, tmp_path):
        import json

        a = tmp_path / "a"
        b = tmp_path / "b"
        for d, makespan in ((a, 100), (b, 90)):
            d.mkdir()
            (d / "runprofile.json").write_text(json.dumps(
                _diff_profile_dict(makespan, busy=60, stall=makespan - 70)
            ))
        assert main(["diff", "--profiles", str(a), str(b), "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["makespan_delta"] == -10
        # Offline profiles carry no timeline: --trace is a usage error.
        assert main([
            "diff", "--profiles", str(a), str(b),
            "--trace", str(tmp_path / "t.json"),
        ]) == 2

    def test_missing_profile_is_usage_error(self, capsys, tmp_path):
        assert main([
            "diff", "--profiles", str(tmp_path / "x"), str(tmp_path / "y"),
        ]) == 2
        assert "error:" in capsys.readouterr().out

    def test_snapshot_diff_mode(self, capsys, tmp_path):
        import json

        from repro.bench.snapshot import SNAPSHOT_SCHEMA

        def snap(path, cycles, makespan):
            path.write_text(json.dumps({
                "schema": SNAPSHOT_SCHEMA,
                "created_unix": 0.0, "env": {}, "config": {},
                "scenarios": {
                    "scn": {
                        "kind": "arch_sweep", "params": {}, "wall": {},
                        "cycles": cycles,
                        "profile": _diff_profile_dict(
                            makespan, busy=60, stall=makespan - 70
                        ),
                    }
                },
            }))
            return path

        base = snap(tmp_path / "b.json", {"total": 100.0}, 100)
        cand = snap(tmp_path / "c.json", {"total": 90.0}, 90)
        assert main(["diff", "--snapshots", str(base), str(cand)]) == 0
        stdout = capsys.readouterr().out
        assert "== scn ==" in stdout
        assert "differential profile" in stdout
        assert main(["diff", "--snapshots", str(base), str(base)]) == 0
        assert "no cycle-metric differences" in capsys.readouterr().out

    def test_compare_failure_attributes_and_hints_artifact(
        self, capsys, tmp_path
    ):
        import json

        from repro.bench.snapshot import SNAPSHOT_SCHEMA

        def snap(path, total, makespan, stall):
            path.write_text(json.dumps({
                "schema": SNAPSHOT_SCHEMA,
                "created_unix": 0.0, "env": {}, "config": {},
                "scenarios": {
                    "scn": {
                        "kind": "arch_sweep", "params": {},
                        "wall": {"median_ms": 1.0, "spread_ms": 0.1},
                        "cycles": {"total_cycles": total},
                        "profile": _diff_profile_dict(
                            makespan, busy=60, stall=stall
                        ),
                    }
                },
            }))
            return path

        baseline = snap(tmp_path / "base.json", 100.0, 100, 30)
        current = snap(tmp_path / "cur.json", 90.0, 90, 20)
        assert main([
            "bench", "compare", str(baseline), str(current),
            "--artifact-hint", "profile_out/diff_waterfall.json",
        ]) == 1
        stdout = capsys.readouterr().out
        assert "cycle delta attribution" in stdout
        assert "(enc1, mha.psa0, load_starved) -10" in stdout
        assert (
            "differential waterfall artifact: "
            "profile_out/diff_waterfall.json" in stdout
        )

    def test_serve_diff_reports_knee_slo_and_tenant_deltas(
        self, capsys, tmp_path
    ):
        import json

        out = tmp_path / "serve_delta.json"
        assert main([
            "diff", "--serve", "--loads", "1,4,8", "--requests", "6",
            "--cand-max-batch", "2", "--out", str(out),
        ]) == 0
        stdout = capsys.readouterr().out
        assert "serving diff:" in stdout
        assert "saturation knee:" in stdout
        assert "SLO attainment" in stdout
        payload = json.loads(out.read_text())
        totals = payload["costs"]["totals"]
        assert (
            totals["attributed_cycles"] + totals["unattributed_cycles"]
            == totals["makespan_cycles"]
        )
        assert payload["sweep"]["points"][0]["offered_rps"] == 1.0


class TestServingObservabilityCli:
    def test_serve_sim_writes_trace_timeseries_and_slo_report(
        self, capsys, tmp_path
    ):
        import json

        trace = tmp_path / "serving_trace.json"
        series = tmp_path / "series.json"
        slo = tmp_path / "slo.json"
        assert main([
            "serve-sim", "--loads", "1,4,8", "--requests", "8",
            "--seed", "11",
            "--trace", str(trace),
            "--timeseries", str(series),
            "--slo-report", str(slo),
        ]) == 0
        stdout = capsys.readouterr().out
        assert "attainment" in stdout

        # one merged Perfetto trace: device lanes + request lanes on a
        # consistent clock
        payload = json.loads(trace.read_text())
        pids_by_name = {
            e["args"]["name"]: e["pid"]
            for e in payload["traceEvents"]
            if e.get("name") == "process_name"
        }
        assert "accelerator (simulated)" in pids_by_name
        assert "serving requests (virtual)" in pids_by_name
        request_pid = pids_by_name["serving requests (virtual)"]
        assert any(
            e["ph"] == "X" and e["pid"] == request_pid
            for e in payload["traceEvents"]
        )
        counters = {
            e["name"] for e in payload["traceEvents"] if e["ph"] == "C"
        }
        assert "serving:queue_depth" in counters
        assert any(name.startswith("serving:stall_rate:") for name in counters)

        # the JSONL event log rides next to the trace
        events_path = trace.with_suffix(".events.jsonl")
        lines = events_path.read_text().splitlines()
        header = json.loads(lines[0])
        assert header["type"] == "vtrace_header"
        assert header["events"] == len(lines) - 1

        ts = json.loads(series.read_text())
        assert ts["cadence_cycles"] == 100_000
        assert "batch_size" in ts["series"]

        report = json.loads(slo.read_text())
        assert 0.0 <= report["attainment"] <= 1.0
        assert report["objective"]["latency_ms"] == 1500.0

    def test_serve_sim_event_log_is_deterministic(self, capsys, tmp_path):
        paths = []
        for tag in ("a", "b"):
            trace = tmp_path / f"trace_{tag}.json"
            assert main([
                "serve-sim", "--loads", "1,2,4", "--requests", "6",
                "--seed", "7", "--trace", str(trace),
            ]) == 0
            paths.append(trace.with_suffix(".events.jsonl"))
        capsys.readouterr()
        assert paths[0].read_text() == paths[1].read_text()

    def test_slo_command_json(self, capsys):
        import json

        assert main([
            "slo", "--load", "8", "--requests", "8", "--seed", "11",
            "--slo-ms", "1e9", "--json",
        ]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["attainment"] == 1.0
        assert payload["violations"] == []
        assert payload["event_counts"]["complete"] == 8
        assert payload["offered_rps"] == 8.0

    def test_slo_command_dashboard_text(self, capsys):
        rc = main([
            "slo", "--load", "8", "--requests", "8", "--seed", "11",
            "--slo-ms", "900", "--slo-target", "0.5",
        ])
        out = capsys.readouterr().out
        assert "attainment" in out and "burn[" in out
        assert rc in (0, 1)  # 1 when burn-rate alerts fired

    def test_serve_sim_trace_contains_cost_flow_events(
        self, capsys, tmp_path
    ):
        """Acceptance criterion: the merged Perfetto trace carries flow
        arrows from at least one request lane to the device-lane slices
        it paid for."""
        import json

        trace = tmp_path / "trace.json"
        assert main([
            "serve-sim", "--loads", "1,4,8", "--requests", "6",
            "--seed", "11", "--trace", str(trace),
        ]) == 0
        capsys.readouterr()
        payload = json.loads(trace.read_text())
        events = payload["traceEvents"]
        starts = [e for e in events if e.get("ph") == "s"]
        finishes = [e for e in events if e.get("ph") == "f"]
        assert starts and finishes
        pids_by_name = {
            e["args"]["name"]: e["pid"]
            for e in events if e.get("name") == "process_name"
        }
        request_pid = pids_by_name["serving requests (virtual)"]
        accel_pid = pids_by_name["accelerator (simulated)"]
        flow = starts[0]
        assert flow["pid"] == request_pid
        mate = next(e for e in finishes if e["id"] == flow["id"])
        assert mate["pid"] == accel_pid
        assert mate["bp"] == "e"
        # the arrow endpoints land inside real slices on both lanes
        def covered(pid, tid, ts):
            return any(
                e["ph"] == "X" and e["pid"] == pid and e["tid"] == tid
                and e["ts"] <= ts <= e["ts"] + e["dur"]
                for e in events
            )
        assert covered(flow["pid"], flow["tid"], flow["ts"])
        assert covered(mate["pid"], mate["tid"], mate["ts"])

    def test_costs_command_json_conserves(self, capsys):
        import json

        assert main([
            "costs", "--load", "8", "--requests", "10", "--seed", "11",
            "--tenants", "2", "--json",
        ]) == 0
        payload = json.loads(capsys.readouterr().out)
        totals = payload["totals"]
        assert (
            totals["attributed_cycles"] + totals["unattributed_cycles"]
            == totals["makespan_cycles"]
        )
        assert payload["offered_rps"] == 8.0
        assert payload["capacity"]["cards_needed"] >= 1
        # per-tenant rows reproduce the global totals exactly
        assert sum(t["attributed_cycles"] for t in payload["tenants"]) == (
            totals["attributed_cycles"]
        )
        assert sum(t["hbm_load_bytes"] for t in payload["tenants"]) == (
            totals["hbm_load_bytes"]
        )
        assert sum(t["requests"] for t in payload["tenants"]) == len(
            payload["requests"]
        )

    def test_costs_command_by_tenant_dashboard(self, capsys):
        assert main([
            "costs", "--load", "8", "--requests", "10", "--seed", "11",
            "--tenants", "2", "--by-tenant",
        ]) == 0
        out = capsys.readouterr().out
        assert "cost attribution (exact integer conservation)" in out
        assert "jain fairness index" in out
        assert "capacity extrapolation" in out
        assert "dominant resource" in out

    def test_costs_single_tenant_still_conserves(self, capsys):
        import json

        assert main([
            "costs", "--load", "4", "--requests", "6", "--seed", "3",
            "--tenants", "1", "--json",
        ]) == 0
        payload = json.loads(capsys.readouterr().out)
        totals = payload["totals"]
        assert (
            totals["attributed_cycles"] + totals["unattributed_cycles"]
            == totals["makespan_cycles"]
        )
        assert [t["tenant"] for t in payload["tenants"]] == [0]
