"""Property-based tests on the HLS scheduling model."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.hls.designs import matmul_nest
from repro.hls.ir import Array, Loop, Op, Partition, Region
from repro.hls.schedule import schedule_loop, schedule_region


def _op(latency=1, dsp=0.0, copies=1, reads=(), writes=()):
    return Op(
        "op", latency=latency, dsp=dsp, copies=copies,
        reads=reads, writes=writes,
    )


class TestSchedulerProperties:
    @given(st.integers(1, 500), st.integers(1, 16))
    @settings(max_examples=50, deadline=None)
    def test_pipelined_beats_rolled(self, trip, depth):
        body = (_op(latency=depth),)
        rolled = schedule_loop(Loop("l", trip=trip, body_ops=body))
        piped = schedule_loop(
            Loop("l", trip=trip, body_ops=body, pipeline_ii=1)
        )
        assert piped.latency <= rolled.latency

    @given(st.integers(1, 256), st.integers(1, 8))
    @settings(max_examples=50, deadline=None)
    def test_unroll_never_slower_with_registers(self, trip, factor):
        rolled = schedule_loop(Loop("l", trip=trip, body_ops=(_op(),)))
        unrolled = schedule_loop(
            Loop("l", trip=trip, body_ops=(_op(),), unroll=factor)
        )
        assert unrolled.latency <= rolled.latency

    @given(st.integers(1, 100), st.integers(1, 100))
    @settings(max_examples=40, deadline=None)
    def test_latency_monotone_in_trip(self, trip_a, trip_b):
        lo, hi = sorted((trip_a, trip_b))
        get = lambda t: schedule_loop(  # noqa: E731
            Loop("l", trip=t, body_ops=(_op(latency=3),), pipeline_ii=1)
        ).latency
        assert get(lo) <= get(hi)

    @given(st.integers(1, 64), st.integers(1, 64))
    @settings(max_examples=40, deadline=None)
    def test_dataflow_bounded_by_sequential(self, trip_a, trip_b):
        a = Loop("a", trip=trip_a, body_ops=(_op(),), pipeline_ii=1)
        b = Loop("b", trip=trip_b, body_ops=(_op(),), pipeline_ii=1)
        seq = schedule_region(Region("seq", loops=(a, b)))
        par = schedule_region(Region("par", loops=(a, b), dataflow=True))
        assert par.latency <= seq.latency
        assert par.latency >= max(
            schedule_region(Region("a", loops=(a,))).latency,
            schedule_region(Region("b", loops=(b,))).latency,
        )

    @given(st.integers(1, 32), st.integers(1, 8))
    @settings(max_examples=40, deadline=None)
    def test_port_bound_never_below_requested_ii(self, copies, factor):
        arrays = (
            Array("buf", depth=256, partition=Partition.CYCLIC, factor=factor),
        )
        loop = Loop(
            "l", trip=50,
            body_ops=(_op(latency=2, copies=copies, reads=("buf",)),),
            pipeline_ii=1,
        )
        report = schedule_loop(loop, arrays)
        assert report.achieved_ii >= 1
        # Partitioning more can only lower (or keep) the achieved II.
        more = (
            Array("buf", depth=256, partition=Partition.CYCLIC, factor=factor * 2),
        )
        assert schedule_loop(loop, more).achieved_ii <= report.achieved_ii

    @given(st.integers(1, 8), st.integers(1, 6), st.integers(1, 6))
    @settings(max_examples=30, deadline=None)
    def test_algorithm1_resources_scale_with_grid(self, rows, l_小, n_小):
        del l_小, n_小  # exercised implicitly through fixed dims below
        region = matmul_nest(16, 32, 32, row_unroll=rows, col_unroll=8)
        report = schedule_region(region)
        assert report.resources.dsp == pytest.approx(rows * 8)

    @given(st.integers(2, 64), st.integers(2, 64), st.integers(2, 64))
    @settings(max_examples=30, deadline=None)
    def test_algorithm1_latency_tracks_analytic(self, l, m, n):
        from repro.hw.systolic import SystolicArray

        region = matmul_nest(l, m, n, row_unroll=2, col_unroll=8)
        hls = schedule_region(region).latency
        analytic = SystolicArray(rows=2, cols=8).pass_cycles(l, m, n)
        assert hls >= analytic
        # Per output tile the HLS view adds the MAC pipeline depth and a
        # cycle of loop control; nothing more.
        from repro.hls.designs import MAC_LATENCY
        from repro.hw.systolic import ceil_div

        tiles = ceil_div(l, 2) * ceil_div(n, 8)
        assert hls <= analytic + tiles * (MAC_LATENCY + 2)
