"""Tests for attention, FFN, encoder/decoder layers and the full model."""

import numpy as np
import pytest

from repro.config import ModelConfig
from repro.model.attention import (
    attention_head,
    multi_head_attention,
    scaled_dot_product_attention,
)
from repro.model.decoder import decoder_layer
from repro.model.encoder import encoder_layer
from repro.model.ffn import feed_forward
from repro.model.masks import causal_mask
from repro.model.params import init_transformer_params
from repro.model.transformer import Transformer

CFG = ModelConfig(
    d_model=32, num_heads=4, d_ff=64, num_encoders=2, num_decoders=2, vocab_size=11
)
PARAMS = init_transformer_params(CFG, seed=1)


class TestScaledDotProductAttention:
    def test_uniform_weights_when_scores_equal(self):
        q = np.zeros((2, 4))
        k = np.zeros((3, 4))
        v = np.arange(12, dtype=float).reshape(3, 4)
        out = scaled_dot_product_attention(q, k, v)
        np.testing.assert_allclose(out[0], v.mean(axis=0))

    def test_attends_to_matching_key(self):
        q = np.array([[10.0, 0.0]])
        k = np.array([[10.0, 0.0], [0.0, 10.0]])
        v = np.array([[1.0, 0.0], [0.0, 1.0]])
        out = scaled_dot_product_attention(q, k, v)
        assert out[0, 0] > 0.99

    def test_causal_mask_blocks_future(self):
        rng = np.random.default_rng(0)
        q = rng.standard_normal((3, 4))
        k = rng.standard_normal((3, 4))
        v = rng.standard_normal((3, 4))
        out = scaled_dot_product_attention(q, k, v, mask=causal_mask(3))
        # Row 0 can only attend to key 0.
        np.testing.assert_allclose(out[0], v[0], rtol=1e-5, atol=1e-6)

    def test_dim_validation(self):
        with pytest.raises(ValueError):
            scaled_dot_product_attention(
                np.zeros((2, 4)), np.zeros((3, 5)), np.zeros((3, 4))
            )
        with pytest.raises(ValueError):
            scaled_dot_product_attention(
                np.zeros((2, 4)), np.zeros((3, 4)), np.zeros((2, 4))
            )


class TestMultiHeadAttention:
    def test_output_shape(self, rng):
        x = rng.standard_normal((5, CFG.d_model)).astype(np.float32)
        out = multi_head_attention(x, x, PARAMS.encoders[0].mha)
        assert out.shape == (5, CFG.d_model)

    def test_cross_attention_shapes(self, rng):
        xq = rng.standard_normal((3, CFG.d_model)).astype(np.float32)
        xkv = rng.standard_normal((7, CFG.d_model)).astype(np.float32)
        out = multi_head_attention(xq, xkv, PARAMS.decoders[0].cross_mha)
        assert out.shape == (3, CFG.d_model)

    def test_equals_manual_head_concat(self, rng):
        x = rng.standard_normal((4, CFG.d_model)).astype(np.float32)
        p = PARAMS.encoders[0].mha
        heads = [attention_head(x, x, p, h) for h in range(p.num_heads)]
        manual = np.concatenate(heads, axis=-1) @ p.wo + p.bo
        np.testing.assert_allclose(
            multi_head_attention(x, x, p), manual, rtol=1e-5
        )

    def test_head_index_validation(self, rng):
        x = rng.standard_normal((4, CFG.d_model)).astype(np.float32)
        with pytest.raises(ValueError):
            attention_head(x, x, PARAMS.encoders[0].mha, head=99)

    def test_input_validation(self):
        with pytest.raises(ValueError):
            multi_head_attention(
                np.zeros((4, 8)), np.zeros((4, 8)), PARAMS.encoders[0].mha
            )


class TestLayers:
    def test_ffn_shape_and_nonlinearity(self, rng):
        x = rng.standard_normal((4, CFG.d_model)).astype(np.float32)
        p = PARAMS.encoders[0].ffn
        out = feed_forward(x, p)
        assert out.shape == x.shape
        # Negating the input does not negate the output (ReLU is not odd).
        out2 = feed_forward(-x, p)
        assert not np.allclose(out2, -out, rtol=1e-3)

    def test_ffn_input_validation(self):
        with pytest.raises(ValueError):
            feed_forward(np.zeros((4, 8)), PARAMS.encoders[0].ffn)

    def test_encoder_layer_shape(self, rng):
        x = rng.standard_normal((6, CFG.d_model)).astype(np.float32)
        out = encoder_layer(x, PARAMS.encoders[0])
        assert out.shape == x.shape
        # Output is layer-normalized (scale/bias are identity at init).
        np.testing.assert_allclose(out.mean(axis=-1), 0.0, atol=1e-6)

    def test_decoder_layer_causality(self, rng):
        """Changing a future decoder token must not change earlier rows."""
        memory = rng.standard_normal((5, CFG.d_model)).astype(np.float32)
        x1 = rng.standard_normal((4, CFG.d_model)).astype(np.float32)
        x2 = x1.copy()
        x2[3] += 1.0  # perturb the last position only
        out1 = decoder_layer(x1, memory, PARAMS.decoders[0])
        out2 = decoder_layer(x2, memory, PARAMS.decoders[0])
        np.testing.assert_allclose(out1[:3], out2[:3], rtol=1e-5, atol=1e-6)
        assert not np.allclose(out1[3], out2[3])


class TestTransformer:
    def test_forward_shapes(self, rng):
        tf = Transformer(PARAMS)
        feats = rng.standard_normal((6, CFG.d_model)).astype(np.float32)
        toks = np.array([0, 4, 5])
        logits = tf.forward(feats, toks)
        assert logits.shape == (3, CFG.vocab_size)

    def test_log_probs_normalized(self, rng):
        tf = Transformer(PARAMS)
        feats = rng.standard_normal((6, CFG.d_model)).astype(np.float32)
        lp = tf.log_probs(feats, np.array([0, 1]))
        np.testing.assert_allclose(np.exp(lp).sum(axis=-1), 1.0, rtol=1e-5)

    def test_token_range_validation(self, rng):
        tf = Transformer(PARAMS)
        feats = rng.standard_normal((6, CFG.d_model)).astype(np.float32)
        with pytest.raises(ValueError):
            tf.forward(feats, np.array([0, CFG.vocab_size]))

    def test_encoder_input_validation(self):
        tf = Transformer(PARAMS)
        with pytest.raises(ValueError):
            tf.encode(np.zeros((4, 16)))

    def test_decoder_depends_on_memory(self, rng):
        tf = Transformer(PARAMS)
        f1 = rng.standard_normal((6, CFG.d_model)).astype(np.float32)
        f2 = rng.standard_normal((6, CFG.d_model)).astype(np.float32)
        toks = np.array([0, 2])
        assert not np.allclose(tf.forward(f1, toks), tf.forward(f2, toks))

    def test_autoregressive_prefix_stability(self, rng):
        """Logits for a prefix don't change when the prefix is extended."""
        tf = Transformer(PARAMS)
        feats = rng.standard_normal((6, CFG.d_model)).astype(np.float32)
        short = tf.forward(feats, np.array([0, 3]))
        long = tf.forward(feats, np.array([0, 3, 7]))
        np.testing.assert_allclose(short, long[:2], rtol=1e-4, atol=1e-5)
