"""Tests for the latency model and the functional controller."""

import numpy as np
import pytest

from repro.config import CalibrationConfig, HardwareConfig, ModelConfig
from repro.hw.controller import AcceleratorController, LatencyModel
from repro.hw.scheduler import Architecture


@pytest.fixture(scope="module")
def lm():
    return LatencyModel()  # full paper config


class TestLatencyModel:
    def test_block_counts(self, lm):
        assert len(lm.build_blocks(32, "A1")) == 18  # 12 enc + 6 dec
        assert len(lm.build_blocks(32, "A2")) == 18
        assert len(lm.build_blocks(32, "A3")) == 24  # decoders split m/f

    def test_a3_decoder_channels(self, lm):
        blocks = lm.build_blocks(16, "A3")
        m_parts = [b for b in blocks if b.label.endswith("m")]
        f_parts = [b for b in blocks if b.label.endswith("f")]
        assert all(b.channel_hint == 0 for b in m_parts)
        assert all(b.channel_hint == 1 for b in f_parts)
        assert all(b.overhead_override == 0 for b in f_parts)

    def test_load_independent_of_s(self, lm):
        """Fig 5.2: load time stays constant as s grows."""
        loads = {s: lm.mha_ffn_load_compute(s)[0] for s in (4, 8, 16, 32)}
        assert len(set(loads.values())) == 1

    def test_compute_grows_with_s(self, lm):
        computes = [lm.mha_ffn_load_compute(s)[1] for s in (4, 8, 16, 32)]
        assert computes == sorted(computes)
        assert computes[-1] > computes[0]

    def test_crossover_after_18(self, lm):
        """Fig 5.2 / Section 5.1.2: compute exceeds load for s > 18."""
        assert lm.crossover_sequence_length() == 19
        load, compute = lm.mha_ffn_load_compute(18)
        assert compute <= load
        load, compute = lm.mha_ffn_load_compute(19)
        assert compute > load

    def test_architecture_ordering(self, lm):
        for s in (4, 8, 16, 32):
            t1 = lm.latency_ms(s, "A1")
            t2 = lm.latency_ms(s, "A2")
            t3 = lm.latency_ms(s, "A3")
            assert t3 <= t2 + 1e-9
            assert t2 < t1

    def test_a2_equals_a3_when_compute_bound(self, lm):
        """Table 5.1: A2 == A3 at s = 32."""
        assert lm.latency_ms(32, "A2") == pytest.approx(
            lm.latency_ms(32, "A3"), rel=1e-6
        )

    def test_report_totals(self, lm):
        report = lm.latency_report(32, "A3")
        assert report.total_cycles == (
            report.input_transfer_cycles
            + report.schedule_cycles
            + report.output_transfer_cycles
        )
        assert report.latency_ms == pytest.approx(
            report.total_cycles / 300e3, rel=1e-9
        )

    def test_rejects_bad_s(self, lm):
        with pytest.raises(ValueError):
            lm.latency_report(0)

    def test_smaller_model_faster(self):
        small = LatencyModel(model=ModelConfig(num_encoders=6, num_decoders=3))
        full = LatencyModel()
        assert small.latency_ms(32, "A3") < full.latency_ms(32, "A3")

    def test_higher_bandwidth_helps_when_load_bound(self):
        slow = LatencyModel(hardware=HardwareConfig(hbm_channel_gbps=1.0))
        fast = LatencyModel(hardware=HardwareConfig(hbm_channel_gbps=10.0))
        assert fast.latency_ms(4, "A2") < slow.latency_ms(4, "A2")

    def test_zero_overhead_calibration(self):
        cal = CalibrationConfig(
            invocation_overhead_cycles=0, block_overhead_cycles=0
        )
        lm0 = LatencyModel(calibration=cal)
        assert lm0.latency_ms(32, "A3") < LatencyModel().latency_ms(32, "A3")


class TestPerMemberCycleShares:
    """Per-member attribution of a batched decode iteration
    (`per_member_cycle_shares`, the cost-ledger companion of
    `decode_iteration_cycles`)."""

    LENGTHS = [3, 4, 5, 6]

    def test_shares_sum_exactly_to_iteration_total(self, lm):
        for share in (True, False):
            shares = lm.per_member_cycle_shares(
                self.LENGTHS, 32, share_weights=share
            )
            total = lm.decode_iteration_cycles(
                self.LENGTHS, 32, share_weights=share
            )
            assert len(shares) == len(self.LENGTHS)
            assert sum(shares) == total  # exact integers, no drift

    def test_amortization_holds_per_member(self, lm):
        """shared_i < unshared_i <= solo_i for EVERY member, not just in
        aggregate — the whole point of splitting the shared stream."""
        shared = lm.per_member_cycle_shares(self.LENGTHS, 32)
        unshared = lm.per_member_cycle_shares(
            self.LENGTHS, 32, share_weights=False
        )
        solo = [lm.decode_iteration_cycles([t], 32) for t in self.LENGTHS]
        for sh, un, so in zip(shared, unshared, solo):
            assert sh < un <= so

    def test_single_member_gets_whole_iteration(self, lm):
        shares = lm.per_member_cycle_shares([7], 32)
        assert shares == [lm.decode_iteration_cycles([7], 32)]

    def test_longer_prefix_pays_more(self, lm):
        shares = lm.per_member_cycle_shares(self.LENGTHS, 32)
        assert shares == sorted(shares)
        assert shares[-1] > shares[0]

    def test_architectures_agree_on_exactness(self, lm):
        for arch in (Architecture.A1, Architecture.A2, Architecture.A3):
            shares = lm.per_member_cycle_shares(self.LENGTHS, 32, arch)
            assert sum(shares) == lm.decode_iteration_cycles(
                self.LENGTHS, 32, arch
            )


class TestFunctionalController:
    def test_functional_cycles_match_latency_model(
        self, small_params, rng
    ):
        ctrl = AcceleratorController(small_params)
        s = 8
        x = rng.standard_normal((s, 512)).astype(np.float32)
        run = ctrl.run(x, x, architecture="A1")
        lm = ctrl.latency_model
        for label, cycles in run.block_compute_cycles.items():
            if label.startswith("enc"):
                assert cycles == lm.encoder_compute_cycles(s)
        m, f = lm.decoder_compute_cycles(s)
        assert run.block_compute_cycles["dec1m"] == m
        assert run.block_compute_cycles["dec1f"] == f

    def test_same_output_across_architectures(self, small_params, rng):
        ctrl = AcceleratorController(small_params)
        x = rng.standard_normal((8, 512)).astype(np.float32)
        outs = [
            ctrl.run(x, x, architecture=a).decoder_output
            for a in ("A1", "A2", "A3")
        ]
        np.testing.assert_array_equal(outs[0], outs[1])
        np.testing.assert_array_equal(outs[1], outs[2])

    def test_reports_differ_across_architectures(self, small_params, rng):
        ctrl = AcceleratorController(small_params)
        x = rng.standard_normal((4, 512)).astype(np.float32)
        r1 = ctrl.run(x, x, architecture="A1").report
        r3 = ctrl.run(x, x, architecture="A3").report
        assert r3.total_cycles < r1.total_cycles
        assert r1.architecture is Architecture.A1

    def test_input_validation(self, small_params):
        ctrl = AcceleratorController(small_params)
        with pytest.raises(ValueError):
            ctrl.run(np.zeros((4, 100)), np.zeros((4, 512)))
        with pytest.raises(ValueError):
            ctrl.run(np.zeros((4, 512)), np.zeros((4, 100)))
