"""Tests for the A1/A2/A3 load-compute overlap schedulers."""

import pytest

from repro.hw.scheduler import (
    Architecture,
    BlockWork,
    schedule,
    schedule_a1,
    schedule_a2,
    schedule_a3,
)


def uniform_blocks(n: int, load: int, compute: int) -> list[BlockWork]:
    return [BlockWork(f"b{i}", load, compute) for i in range(n)]


class TestA1:
    def test_total_is_sum(self):
        blocks = uniform_blocks(5, 100, 40)
        result = schedule_a1(blocks)
        assert result.total_cycles == 5 * (100 + 40)

    def test_overhead_added_per_block(self):
        blocks = uniform_blocks(3, 10, 10)
        assert schedule_a1(blocks, block_overhead=5).total_cycles == 3 * 25

    def test_stall_equals_loads_after_first(self):
        blocks = uniform_blocks(4, 100, 40)
        result = schedule_a1(blocks)
        # Compute engine idles during every load except before C1 starts.
        assert result.stall_cycles == 3 * 100


class TestA2:
    def test_load_bound_hides_compute(self):
        """When loads dominate, A2 ~ sum(loads) + last compute."""
        blocks = uniform_blocks(6, 100, 10)
        result = schedule_a2(blocks)
        assert result.total_cycles == 6 * 100 + 10

    def test_compute_bound_hides_loads(self):
        """When computes dominate, A2 ~ first load + sum(computes)."""
        blocks = uniform_blocks(6, 10, 100)
        result = schedule_a2(blocks)
        assert result.total_cycles == 10 + 6 * 100

    def test_never_slower_than_a1(self):
        for load, compute in [(100, 10), (10, 100), (50, 50), (0, 10), (10, 0)]:
            blocks = uniform_blocks(8, load, compute)
            assert (
                schedule_a2(blocks).total_cycles
                <= schedule_a1(blocks).total_cycles
            )

    def test_double_buffer_constraint(self):
        """Load i cannot start before compute i-2 released its buffer."""
        blocks = uniform_blocks(4, 10, 100)
        result = schedule_a2(blocks)
        loads = result.timeline.on_engine("hbm0")
        computes = result.timeline.on_engine("compute")
        # LW3 (index 2) must start at or after C1 (index 0) ends.
        assert loads[2].start >= computes[0].end


class TestA3:
    def test_load_bound_halves_stall(self):
        """Paper: stall drops from (LW - C) to ~(LW - C)/2."""
        lw, c, n = 100, 20, 12
        a2 = schedule_a2(uniform_blocks(n, lw, c))
        a3 = schedule_a3(uniform_blocks(n, lw, c))
        # Steady-state per block: A2 pays lw, A3 pays (lw + c) / 2.
        assert a3.total_cycles < a2.total_cycles
        a2_stall_per_block = (a2.total_cycles - n * c) / n
        a3_stall_per_block = (a3.total_cycles - n * c) / n
        assert a3_stall_per_block == pytest.approx(
            (a2_stall_per_block - 0) / 2, rel=0.25
        )

    def test_compute_bound_equals_a2(self):
        """Once compute > load (s > 18 in the paper) A2 and A3 tie."""
        blocks_a2 = uniform_blocks(10, 10, 100)
        blocks_a3 = uniform_blocks(10, 10, 100)
        assert (
            schedule_a2(blocks_a2).total_cycles
            == schedule_a3(blocks_a3).total_cycles
        )

    def test_two_channels_used(self):
        result = schedule_a3(uniform_blocks(4, 50, 10))
        engines = result.timeline.engines()
        assert "hbm0" in engines and "hbm1" in engines

    def test_channel_hint_respected(self):
        blocks = [
            BlockWork("m", 50, 10, channel_hint=0),
            BlockWork("f", 50, 10, channel_hint=1),
        ]
        result = schedule_a3(blocks)
        assert [e.label for e in result.timeline.on_engine("hbm0")] == ["LW:m"]
        assert [e.label for e in result.timeline.on_engine("hbm1")] == ["LW:f"]

    def test_prefetch_waits_for_buffer(self):
        """LW_{i+2} is initiated after C_i completes (Fig 4.10)."""
        blocks = uniform_blocks(6, 10, 100)
        result = schedule_a3(blocks)
        computes = result.timeline.on_engine("compute")
        for chan in ("hbm0", "hbm1"):
            loads = result.timeline.on_engine(chan)
            for j, load in enumerate(loads[1:], start=1):
                # This channel's j-th load is global block 2j; its
                # buffer frees when compute 2j-2 ends.
                assert load.start >= computes[2 * j - 2].end - 1e-9

    def test_invalid_channel_hint(self):
        with pytest.raises(ValueError):
            schedule_a3([BlockWork("x", 1, 1, channel_hint=2)])


class TestOrderingInvariants:
    @pytest.mark.parametrize("load,compute", [(100, 10), (10, 100), (77, 77)])
    def test_a3_fastest_a1_slowest(self, load, compute):
        n = 18
        t1 = schedule_a1(uniform_blocks(n, load, compute)).total_cycles
        t2 = schedule_a2(uniform_blocks(n, load, compute)).total_cycles
        t3 = schedule_a3(uniform_blocks(n, load, compute)).total_cycles
        assert t3 <= t2 <= t1

    def test_compute_never_before_its_load(self):
        for fn in (schedule_a1, schedule_a2, schedule_a3):
            result = fn(uniform_blocks(7, 31, 17))
            load_ends = {}
            for eng in result.timeline.engines():
                if eng.startswith("hbm"):
                    for e in result.timeline.on_engine(eng):
                        load_ends[e.label.removeprefix("LW:")] = e.end
            for e in result.timeline.on_engine("compute"):
                name = e.label.removeprefix("C:")
                assert e.start >= load_ends[name] - 1e-9

    def test_no_engine_overlap(self):
        for fn in (schedule_a1, schedule_a2, schedule_a3):
            result = fn(uniform_blocks(9, 13, 29))
            result.timeline.validate_no_engine_overlap()  # raises on bug


class TestDispatch:
    def test_schedule_by_name(self):
        blocks = uniform_blocks(3, 5, 5)
        assert schedule("A1", blocks).architecture is Architecture.A1
        assert schedule(Architecture.A3, blocks).architecture is Architecture.A3

    def test_unknown_architecture(self):
        with pytest.raises(ValueError):
            schedule("A4", uniform_blocks(1, 1, 1))

    def test_empty_blocks_rejected(self):
        with pytest.raises(ValueError):
            schedule_a1([])

    def test_negative_cycles_rejected(self):
        with pytest.raises(ValueError):
            BlockWork("x", -1, 0)

    def test_overhead_override(self):
        blocks = [
            BlockWork("a", 0, 10),
            BlockWork("b", 0, 10, overhead_override=0),
        ]
        result = schedule_a1(blocks, block_overhead=7)
        assert result.total_cycles == 10 + 7 + 10
        assert result.block_overhead_cycles == 7


class TestA3ChannelGeneralization:
    def test_more_channels_help_when_load_bound(self):
        blocks = uniform_blocks(12, 100, 10)
        t2 = schedule_a3(blocks, num_channels=2).total_cycles
        t4 = schedule_a3(blocks, num_channels=4).total_cycles
        assert t4 < t2

    def test_channels_useless_when_compute_bound(self):
        blocks = uniform_blocks(12, 10, 100)
        t2 = schedule_a3(blocks, num_channels=2).total_cycles
        t4 = schedule_a3(blocks, num_channels=4).total_cycles
        assert t4 == t2

    def test_four_channels_quarter_the_spacing(self):
        """Generalizing the paper's (LW+C)/2 steady state: with n
        channels the load-bound per-block spacing drops to (LW+C)/n
        (each channel delivers every n-th block, loads gated by the
        compute n blocks back)."""
        lw, c, n_blocks = 400, 40, 24
        blocks = uniform_blocks(n_blocks, lw, c)
        t4 = schedule_a3(blocks, num_channels=4).total_cycles
        steady = (lw + c) / 4  # per-block spacing, load-bound
        assert t4 / n_blocks == pytest.approx(steady, rel=0.1)

    def test_single_channel_equals_single_buffer_a2(self):
        """A3 keeps one weight buffer per channel, so one channel
        degrades to the single-buffered A2 (load-after-compute)."""
        blocks_a = uniform_blocks(10, 70, 30)
        blocks_b = uniform_blocks(10, 70, 30)
        assert (
            schedule_a3(blocks_a, num_channels=1).total_cycles
            == schedule_a2(blocks_b, num_weight_buffers=1).total_cycles
        )

    def test_channel_count_validation(self):
        with pytest.raises(ValueError):
            schedule_a3(uniform_blocks(2, 1, 1), num_channels=0)
        with pytest.raises(ValueError):
            schedule_a3(
                [BlockWork("x", 1, 1, channel_hint=3)], num_channels=2
            )
