"""Tests for the CPU/GPU baselines, energy, roofline and related work."""

import pytest

from repro.baselines.cpu import CPU_ANCHORS, CpuLatencyModel, MeasuredCpuBaseline
from repro.baselines.energy import (
    GPU_EFFECTIVE_POWER_W,
    fpga_energy_model,
    gpu_energy_model,
)
from repro.baselines.gpu import GPU_ANCHORS, GpuLatencyModel
from repro.baselines.related import REFERENCE_WORKS, comparison_table, our_entry
from repro.baselines.roofline import (
    RooflineModel,
    accelerator_roofline,
    model_intensity_profile,
)
from repro.config import ModelConfig
from repro.hw.controller import LatencyModel


class TestCpuModel:
    def test_reproduces_anchors_exactly(self):
        cpu = CpuLatencyModel()
        for s, latency in CPU_ANCHORS.items():
            assert cpu.latency_s(s) == pytest.approx(latency, rel=1e-9)

    def test_monotone_between_anchors(self):
        cpu = CpuLatencyModel()
        values = [cpu.latency_s(s) for s in range(4, 33)]
        assert values == sorted(values)

    def test_extrapolation_above(self):
        cpu = CpuLatencyModel()
        assert cpu.latency_s(40) > cpu.latency_s(32)

    def test_extrapolation_below(self):
        cpu = CpuLatencyModel()
        assert 0 < cpu.latency_s(2) < cpu.latency_s(4)

    def test_speedup_over(self):
        cpu = CpuLatencyModel()
        assert cpu.speedup_over(32, 0.08415) == pytest.approx(53.5, rel=0.01)

    def test_validation(self):
        with pytest.raises(ValueError):
            CpuLatencyModel({4: 1.0})  # single anchor
        with pytest.raises(ValueError):
            CpuLatencyModel({4: 2.0, 8: 1.0})  # non-monotone
        with pytest.raises(ValueError):
            CpuLatencyModel().latency_s(0)
        with pytest.raises(ValueError):
            CpuLatencyModel().speedup_over(4, 0.0)


class TestGpuModel:
    def test_reproduces_anchors(self):
        gpu = GpuLatencyModel()
        for s, latency in GPU_ANCHORS.items():
            assert gpu.latency_s(s) == pytest.approx(latency, rel=1e-9)

    def test_gpu_faster_than_cpu_everywhere(self):
        cpu, gpu = CpuLatencyModel(), GpuLatencyModel()
        for s in range(4, 33):
            assert gpu.latency_s(s) < cpu.latency_s(s)


class TestMeasuredBaseline:
    def test_returns_positive_time(self, small_config):
        baseline = MeasuredCpuBaseline(small_config)
        assert baseline.run_once(4) > 0

    def test_median(self, small_config):
        baseline = MeasuredCpuBaseline(small_config)
        assert baseline.median_latency_s(4, repeats=3) > 0

    def test_validation(self, small_config):
        baseline = MeasuredCpuBaseline(small_config)
        with pytest.raises(ValueError):
            baseline.run_once(0)
        with pytest.raises(ValueError):
            baseline.median_latency_s(4, repeats=0)


class TestEnergy:
    def test_fpga_efficiency_near_paper(self):
        """Section 5.1.6: 1.38 GFLOPs/J at s=32."""
        fpga = fpga_energy_model()
        lm = LatencyModel()
        latency_s = lm.latency_report(32, "A3").latency_ms / 1e3
        eff = fpga.gflops_per_joule(32, latency_s)
        assert eff == pytest.approx(1.38, rel=0.10)

    def test_gpu_efficiency_near_paper(self):
        """Section 5.1.6: ~0.055 GFLOPs/J for the GPU."""
        gpu = gpu_energy_model()
        eff = gpu.gflops_per_joule(32, GPU_ANCHORS[32])
        assert eff == pytest.approx(0.055, rel=0.10)

    def test_fpga_25x_more_efficient_than_gpu(self):
        fpga = fpga_energy_model()
        gpu = gpu_energy_model()
        lm = LatencyModel()
        f = fpga.gflops_per_joule(32, lm.latency_report(32, "A3").latency_ms / 1e3)
        g = gpu.gflops_per_joule(32, GPU_ANCHORS[32])
        assert f / g > 20

    def test_validation(self):
        with pytest.raises(ValueError):
            fpga_energy_model().gflops_per_second(32, 0.0)
        assert GPU_EFFECTIVE_POWER_W > 0


class TestRelatedWork:
    def test_reference_gflops_per_second(self):
        """Table 5.6 columns: 0.52, 7.48, 14.47 GFLOPs/s."""
        rates = [e.gflops_per_second for e in REFERENCE_WORKS]
        assert rates[0] == pytest.approx(0.52, rel=0.02)
        assert rates[1] == pytest.approx(7.48, rel=0.02)
        assert rates[2] == pytest.approx(14.47, rel=0.02)

    def test_our_entry_near_paper(self):
        """Table 5.6: our work at 47.23 GFLOPs/s, 90.8x over [34]."""
        table = comparison_table(s=32)
        ours = table[-1]
        assert ours["gflops_per_s"] == pytest.approx(47.23, rel=0.10)
        assert ours["improvement"] == pytest.approx(90.8, rel=0.10)

    def test_improvement_ordering(self):
        table = comparison_table(s=32)
        improvements = [row["improvement"] for row in table]
        assert improvements[0] == pytest.approx(1.0)
        assert improvements == sorted(improvements)

    def test_our_entry_standalone(self):
        e = our_entry(s=32)
        assert e.gflops == pytest.approx(4.08, rel=0.01)


class TestRoofline:
    def test_ridge_point(self):
        model = RooflineModel(peak_gflops=100, bandwidth_gbps=10)
        assert model.ridge_point == pytest.approx(10.0)

    def test_attainable_capped(self):
        model = RooflineModel(peak_gflops=100, bandwidth_gbps=10)
        assert model.attainable_gflops(5) == 50
        assert model.attainable_gflops(50) == 100

    def test_transformer_is_memory_bound(self):
        """Section 4.2: ~0.25 ops/B is deep in the memory-bound region."""
        roof = accelerator_roofline()
        assert roof.is_memory_bound(0.25)

    def test_accelerator_peak(self):
        # 1024 PEs x 2 FLOP x 300 MHz = 614.4 GFLOPs.
        roof = accelerator_roofline()
        assert roof.peak_gflops == pytest.approx(614.4)

    def test_intensity_profile(self):
        rows = model_intensity_profile(ModelConfig(), seq_lens=(1, 32))
        assert rows[0]["intensity_macs_per_byte"] == pytest.approx(0.25, rel=0.01)
        assert rows[1]["gflops"] == pytest.approx(4.08, rel=0.01)

    def test_validation(self):
        with pytest.raises(ValueError):
            RooflineModel(peak_gflops=0, bandwidth_gbps=1)
        with pytest.raises(ValueError):
            RooflineModel(1, 1).attainable_gflops(0)


class TestBatchedBaseline:
    def test_batched_latency_positive(self, small_config):
        baseline = MeasuredCpuBaseline(small_config)
        assert baseline.batched_latency_s(8, batch=2) > 0

    def test_batched_validation(self, small_config):
        baseline = MeasuredCpuBaseline(small_config)
        with pytest.raises(ValueError):
            baseline.batched_latency_s(0)
        with pytest.raises(ValueError):
            baseline.batched_latency_s(8, batch=0)
