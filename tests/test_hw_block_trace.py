"""Tests for the per-engine Fig 4.13 block trace."""

import pytest

from repro.config import ModelConfig
from repro.hw.block_trace import trace_encoder_block
from repro.hw.blocks import decoder_cycles, decoder_step_cycles, encoder_cycles
from repro.hw.program import (
    block_compute_cycles,
    lower_decode_step,
    lower_full_pass,
    schedule_program,
    trace_program,
)
from repro.hw.visualize import render_gantt


class TestBlockTrace:
    @pytest.mark.parametrize("parallel_heads", [8, 4, 2, 1])
    @pytest.mark.parametrize("s", [4, 32])
    def test_makespan_equals_cycle_estimator(self, fabric, s, parallel_heads):
        """The Gantt chart and the latency model are the same model."""
        timeline = trace_encoder_block(fabric, s, parallel_heads=parallel_heads)
        estimate = encoder_cycles(
            fabric, s, 8, 512, 2048, parallel_heads=parallel_heads
        )
        assert timeline.makespan == pytest.approx(estimate)

    def test_no_engine_double_booking(self, fabric):
        timeline = trace_encoder_block(fabric, 16)
        timeline.validate_no_engine_overlap()

    def test_all_psa_groups_busy(self, fabric):
        timeline = trace_encoder_block(fabric, 16, parallel_heads=8)
        psa_engines = [e for e in timeline.engines() if ".psa" in e]
        assert len(psa_engines) == 8
        # Both SLRs host four heads each (Fig 4.13).
        assert sum(e.startswith("slr0") for e in psa_engines) == 4
        assert sum(e.startswith("slr1") for e in psa_engines) == 4

    def test_sc_sm_overlaps_mm1v(self, fabric):
        timeline = trace_encoder_block(fabric, 16)
        sm_events = [e for e in timeline.events if "Sc+Sm" in e.label]
        mm1v_events = {
            e.label.split(":")[0]: e
            for e in timeline.events
            if "MM1(V)" in e.label
        }
        assert sm_events
        for sm in sm_events:
            head = sm.label.split(":")[0]
            mm1v = mm1v_events[head]
            assert sm.start == mm1v.start  # launched together
            assert sm.end <= mm1v.end  # hidden under MM1(V)

    def test_mm4_waits_for_all_heads(self, fabric):
        timeline = trace_encoder_block(fabric, 16)
        head_ends = max(e.end for e in timeline.events if "MM3" in e.label)
        mm4_start = min(e.start for e in timeline.events if e.label == "MM4")
        assert mm4_start >= head_ends

    def test_ffn_after_first_add_norm(self, fabric):
        timeline = trace_encoder_block(fabric, 16)
        norm1_end = next(
            e.end for e in timeline.events if e.label == "Add-Norm1"
        )
        mm5_start = min(e.start for e in timeline.events if e.label == "MM5")
        assert mm5_start >= norm1_end

    def test_renders(self, fabric):
        art = render_gantt(trace_encoder_block(fabric, 8), width=120)
        assert "psa" in art and "MM5" in art

    def test_parallel_heads_validation(self, fabric):
        with pytest.raises(ValueError):
            trace_encoder_block(fabric, 8, parallel_heads=99)


#: Small stack: the analytic numbers are per-layer, so two layers of
#: each kind exercise the chaining without slowing the sweep down.
_SWEEP_MODEL = ModelConfig(num_encoders=2, num_decoders=2)


class TestDriftLock:
    """The three executors may never drift apart: the trace-executor
    makespan must stay integer-identical to the cycle schedule, and the
    per-block compute cycles to the analytic estimators, across the
    full s x head-parallelism x architecture sweep."""

    @pytest.mark.parametrize("parallel_heads", [1, 2, 4, 8])
    @pytest.mark.parametrize("s", [8, 18, 32, 64])
    def test_block_cycles_match_analytic(self, fabric, s, parallel_heads):
        m = _SWEEP_MODEL
        program = lower_full_pass(m, fabric, s, parallel_heads=parallel_heads)
        enc = encoder_cycles(
            fabric, s, m.num_heads, m.d_model, m.d_ff, parallel_heads
        )
        mha_part, ffn_part = decoder_cycles(
            fabric, s, s, m.num_heads, m.d_model, m.d_ff, parallel_heads
        )
        for i in range(m.num_encoders):
            assert block_compute_cycles(program, f"enc{i + 1}") == enc
        for i in range(m.num_decoders):
            assert block_compute_cycles(program, f"dec{i + 1}m") == mha_part
            assert block_compute_cycles(program, f"dec{i + 1}f") == ffn_part

    @pytest.mark.parametrize("parallel_heads", [1, 2, 4, 8])
    @pytest.mark.parametrize("s", [8, 18, 32, 64])
    def test_step_block_cycles_match_analytic(self, fabric, s, parallel_heads):
        m = _SWEEP_MODEL
        t = max(s // 2, 1)
        program = lower_decode_step(m, fabric, t, s, parallel_heads)
        mha_part, ffn_part = decoder_step_cycles(
            fabric, t, s, m.num_heads, m.d_model, m.d_ff, parallel_heads
        )
        for i in range(m.num_decoders):
            assert block_compute_cycles(program, f"dec{i + 1}m") == mha_part
            assert block_compute_cycles(program, f"dec{i + 1}f") == ffn_part

    @pytest.mark.parametrize("architecture", ["A1", "A2", "A3"])
    @pytest.mark.parametrize("parallel_heads", [1, 2, 4, 8])
    @pytest.mark.parametrize("s", [8, 18, 32, 64])
    def test_trace_makespan_equals_schedule(
        self, fabric, s, parallel_heads, architecture
    ):
        program = lower_full_pass(
            _SWEEP_MODEL, fabric, s, parallel_heads=parallel_heads
        )
        overhead = fabric.calibration.block_overhead_cycles
        total = schedule_program(program, architecture, overhead).total_cycles
        timeline = trace_program(program, architecture, overhead)
        assert timeline.makespan == total
        timeline.validate_no_engine_overlap()

    @pytest.mark.parametrize("architecture", ["A1", "A2", "A3"])
    @pytest.mark.parametrize("s", [8, 32])
    def test_step_trace_makespan_equals_schedule(self, fabric, s, architecture):
        program = lower_decode_step(_SWEEP_MODEL, fabric, max(s // 2, 1), s)
        overhead = fabric.calibration.block_overhead_cycles
        total = schedule_program(program, architecture, overhead).total_cycles
        assert trace_program(program, architecture, overhead).makespan == total
