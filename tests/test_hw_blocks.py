"""Tests for block-level execution: MHA / FFN / encoder / decoder on
the fabric must agree numerically with the golden model."""

import numpy as np
import pytest

from repro.hw.blocks import (
    add_norm_block,
    attention_head_block,
    decoder_block,
    decoder_cycles,
    encoder_block,
    encoder_cycles,
    ffn_block,
    ffn_cycles,
    mha_block,
    mha_cycles,
)
from repro.model.attention import attention_head, multi_head_attention
from repro.model.decoder import decoder_layer
from repro.model.encoder import encoder_layer
from repro.model.ffn import feed_forward
from repro.model.masks import causal_mask
from repro.model.params import init_transformer_params

PARAMS = init_transformer_params(seed=11)  # full 512-dim paper config
ENC = PARAMS.encoders[0]
DEC = PARAMS.decoders[0]

S = 12
RTOL = 5e-4
ATOL = 5e-4


@pytest.fixture(scope="module")
def x():
    return np.random.default_rng(1).standard_normal((S, 512)).astype(np.float32)


@pytest.fixture(scope="module")
def memory():
    return np.random.default_rng(2).standard_normal((S, 512)).astype(np.float32)


class TestAttentionHead:
    def test_matches_reference(self, fabric, x):
        hw = attention_head_block(fabric, x, x, ENC.mha, head=3)
        ref = attention_head(x, x, ENC.mha, head=3)
        np.testing.assert_allclose(hw.output, ref, rtol=RTOL, atol=ATOL)

    def test_masked_head_matches_reference(self, fabric, x):
        mask = causal_mask(S)
        hw = attention_head_block(fabric, x, x, DEC.self_mha, 0, mask=mask)
        ref = attention_head(x, x, DEC.self_mha, 0, mask=mask)
        np.testing.assert_allclose(hw.output, ref, rtol=RTOL, atol=ATOL)

    def test_head_validation(self, fabric, x):
        with pytest.raises(ValueError):
            attention_head_block(fabric, x, x, ENC.mha, head=8)


class TestMhaBlock:
    def test_matches_reference(self, fabric, x):
        hw = mha_block(fabric, x, x, ENC.mha)
        ref = multi_head_attention(x, x, ENC.mha)
        np.testing.assert_allclose(hw.output, ref, rtol=RTOL, atol=ATOL)

    def test_cross_attention_matches(self, fabric, x, memory):
        hw = mha_block(fabric, x, memory, DEC.cross_mha)
        ref = multi_head_attention(x, memory, DEC.cross_mha)
        np.testing.assert_allclose(hw.output, ref, rtol=RTOL, atol=ATOL)

    def test_parallel_heads_same_output_different_cycles(self, fabric, x):
        full = mha_block(fabric, x, x, ENC.mha, parallel_heads=8)
        waves = mha_block(fabric, x, x, ENC.mha, parallel_heads=2)
        np.testing.assert_array_equal(full.output, waves.output)
        assert waves.cycles != full.cycles

    def test_parallel_heads_validation(self, fabric, x):
        with pytest.raises(ValueError):
            mha_block(fabric, x, x, ENC.mha, parallel_heads=16)


class TestFfnBlock:
    def test_matches_reference(self, fabric, x):
        hw = ffn_block(fabric, x, ENC.ffn)
        ref = feed_forward(x, ENC.ffn)
        np.testing.assert_allclose(hw.output, ref, rtol=RTOL, atol=2e-3)

    def test_cycles_match_estimator(self, fabric, x):
        hw = ffn_block(fabric, x, ENC.ffn)
        assert hw.cycles == ffn_cycles(fabric, S, 512, 2048)


class TestAddNormBlock:
    def test_matches_reference(self, fabric, x):
        from repro.model.layernorm import add_norm

        residual = (x * 0.5).astype(np.float32)
        hw = add_norm_block(fabric, x, residual, ENC.norm1.weight, ENC.norm1.bias)
        ref = add_norm(x, residual, ENC.norm1.weight, ENC.norm1.bias)
        np.testing.assert_allclose(hw.output, ref, rtol=RTOL, atol=ATOL)


class TestEncoderBlock:
    def test_matches_reference(self, fabric, x):
        hw = encoder_block(fabric, x, ENC)
        ref = encoder_layer(x, ENC)
        np.testing.assert_allclose(hw.output, ref, rtol=1e-3, atol=2e-3)

    def test_cycles_match_estimator(self, fabric, x):
        hw = encoder_block(fabric, x, ENC)
        assert hw.cycles == encoder_cycles(fabric, S, 8, 512, 2048)


class TestDecoderBlock:
    def test_matches_reference(self, fabric, x, memory):
        hw = decoder_block(fabric, x, memory, DEC, self_mask=causal_mask(S))
        ref = decoder_layer(x, memory, DEC)
        np.testing.assert_allclose(hw.output, ref, rtol=1e-3, atol=2e-3)

    def test_cycle_split_matches_estimator(self, fabric, x, memory):
        hw = decoder_block(fabric, x, memory, DEC, self_mask=causal_mask(S))
        m, f = decoder_cycles(fabric, S, S, 8, 512, 2048)
        assert hw.mha_cycles == m
        assert hw.ffn_cycles == f
        assert hw.cycles == m + f


class TestCycleEstimators:
    def test_ffn_roughly_double_mha(self, fabric):
        """Section 5.1.4: the FFN block consumes ~2x the MHA latency."""
        for s in (16, 32):
            mha = mha_cycles(fabric, s, s, 8, 512)
            ffn = ffn_cycles(fabric, s, 512, 2048)
            assert 1.5 < ffn / mha < 3.0

    def test_encoder_cycles_monotone_in_s(self, fabric):
        values = [encoder_cycles(fabric, s, 8, 512, 2048) for s in (4, 8, 16, 32)]
        assert values == sorted(values)

    def test_dse_latency_ordering(self, fabric):
        """Table 5.3: fewer parallel heads -> more latency."""
        lat = [
            mha_cycles(fabric, 32, 32, 8, 512, parallel_heads=p)
            for p in (8, 4, 2, 1)
        ]
        assert lat == sorted(lat)

    def test_decoder_mha_part_exceeds_encoder_mha(self, fabric):
        m, _ = decoder_cycles(fabric, 16, 16, 8, 512, 2048)
        assert m > mha_cycles(fabric, 16, 16, 8, 512)
