"""Tests for the multi-tenant serving simulator.

Covers the arrival models (deterministic seeding), the
continuous-batching scheduler (join/leave at step boundaries,
cache-pressure admission, priority preemption with functional rewind
equivalence), the hardware batching hooks, and the load-sweep
analysis."""

import numpy as np
import pytest

import repro.obs as obs
from repro.hw.accelerator import TransformerAccelerator, step_batch
from repro.hw.controller import LatencyModel
from repro.hw.kv_cache import modeled_resident_bytes
from repro.serving import (
    BurstyArrivals,
    ContinuousBatchingScheduler,
    DiurnalArrivals,
    FunctionalExecutor,
    LoadPoint,
    ModeledExecutor,
    PoissonArrivals,
    RequestState,
    ServingConfig,
    UtteranceRequest,
    diff_sweeps,
    find_saturation,
    make_arrival_model,
    render_sweep,
    render_sweep_delta,
    simulate,
    sweep_offered_load,
    synthesize_requests,
)


@pytest.fixture(scope="module")
def executor():
    """One shared modeled executor so iteration-cost caches warm once."""
    return ModeledExecutor(ServingConfig(s=32, max_batch=4))


def _cfg(**kw):
    defaults = dict(s=32, max_batch=4, slo_ms=1e9)
    defaults.update(kw)
    return ServingConfig(**defaults)


class TestArrivalModels:
    @pytest.mark.parametrize("model_cls", [
        PoissonArrivals,
        BurstyArrivals,
        DiurnalArrivals,
    ])
    def test_deterministic_and_monotone(self, model_cls):
        a = model_cls(2.0, seed=3).times(50)
        b = model_cls(2.0, seed=3).times(50)
        assert a == b
        assert all(t2 > t1 for t1, t2 in zip(a, a[1:]))
        assert a[0] > 0
        assert model_cls(2.0, seed=4).times(50) != a

    def test_poisson_rate_roughly_matches(self):
        times = PoissonArrivals(4.0, seed=0).times(400)
        realized = len(times) / times[-1]
        assert realized == pytest.approx(4.0, rel=0.3)

    def test_bursty_mean_rate_roughly_matches(self):
        times = BurstyArrivals(4.0, seed=0).times(800)
        realized = len(times) / times[-1]
        assert realized == pytest.approx(4.0, rel=0.4)

    def test_bursty_is_burstier_than_poisson(self):
        """Squared coefficient of variation of gaps: MMPP > Poisson."""
        def cv2(times):
            gaps = np.diff([0.0] + times)
            return float(np.var(gaps) / np.mean(gaps) ** 2)

        assert cv2(BurstyArrivals(4.0, seed=1).times(800)) > cv2(
            PoissonArrivals(4.0, seed=1).times(800)
        )

    def test_diurnal_rate_at(self):
        model = DiurnalArrivals(2.0, amplitude=0.5, period_s=10.0)
        assert model.rate_at(2.5) == pytest.approx(3.0)
        assert model.rate_at(7.5) == pytest.approx(1.0)

    def test_factory(self):
        assert isinstance(make_arrival_model("poisson", 1.0), PoissonArrivals)
        assert isinstance(make_arrival_model("bursty", 1.0), BurstyArrivals)
        assert isinstance(make_arrival_model("diurnal", 1.0), DiurnalArrivals)
        with pytest.raises(ValueError, match="unknown arrival model"):
            make_arrival_model("uniform", 1.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            PoissonArrivals(0.0)
        with pytest.raises(ValueError):
            BurstyArrivals(1.0, burst_factor=0.5)
        with pytest.raises(ValueError):
            BurstyArrivals(1.0, burst_fraction=1.0)
        with pytest.raises(ValueError):
            DiurnalArrivals(1.0, amplitude=1.0)
        with pytest.raises(ValueError):
            PoissonArrivals(1.0).times(-1)


class TestSynthesizeRequests:
    def test_deterministic_and_bounded(self):
        arrival = PoissonArrivals(2.0, seed=5)
        a = synthesize_requests(arrival, 20, seed=5)
        b = synthesize_requests(arrival, 20, seed=5)
        assert a == b
        assert [r.request_id for r in a] == list(range(20))
        assert all(4 <= r.decode_tokens <= 16 for r in a)
        assert all(r.priority in (0, 1) for r in a)
        assert any(r.priority == 1 for r in a)

    def test_default_tenant_is_zero(self):
        arrival = PoissonArrivals(2.0, seed=5)
        reqs = synthesize_requests(arrival, 10, seed=5)
        assert all(r.tenant == 0 for r in reqs)
        assert UtteranceRequest(0, 0.0, 4).tenant == 0

    def test_tenant_mix_deterministic_and_spread(self):
        arrival = PoissonArrivals(2.0, seed=5)
        a = synthesize_requests(arrival, 30, seed=5, tenant_classes=3)
        b = synthesize_requests(arrival, 30, seed=5, tenant_classes=3)
        assert a == b
        tenants = {r.tenant for r in a}
        assert tenants <= {0, 1, 2}
        assert len(tenants) > 1

    def test_tenant_weights_skew_the_mix(self):
        arrival = PoissonArrivals(2.0, seed=5)
        reqs = synthesize_requests(
            arrival, 40, seed=5, tenant_classes=2, tenant_weights=[9.0, 1.0]
        )
        heavy = sum(1 for r in reqs if r.tenant == 0)
        assert heavy > len(reqs) // 2

    def test_tenant_draws_do_not_perturb_existing_streams(self):
        """The tenant mix comes from a separate RNG stream: token and
        priority draws are bit-identical with and without tenants, so
        every pre-existing pinned cycle count is safe."""
        arrival = PoissonArrivals(2.0, seed=5)
        plain = synthesize_requests(arrival, 20, seed=5)
        mixed = synthesize_requests(arrival, 20, seed=5, tenant_classes=4)
        for p, m in zip(plain, mixed):
            assert p.decode_tokens == m.decode_tokens
            assert p.priority == m.priority
            assert p.arrival_s == m.arrival_s

    def test_validation(self):
        arrival = PoissonArrivals(1.0)
        with pytest.raises(ValueError):
            synthesize_requests(arrival, 0)
        with pytest.raises(ValueError):
            synthesize_requests(arrival, 2, min_tokens=8, max_tokens=4)
        with pytest.raises(ValueError):
            synthesize_requests(arrival, 2, tenant_classes=0)
        with pytest.raises(ValueError):
            synthesize_requests(arrival, 2, tenant_classes=2,
                                tenant_weights=[1.0])
        with pytest.raises(ValueError):
            UtteranceRequest(0, -1.0, 4)
        with pytest.raises(ValueError):
            UtteranceRequest(0, 0.0, 0)
        with pytest.raises(ValueError):
            UtteranceRequest(0, 0.0, 4, tenant=-1)


class TestSchedulerBasics:
    def test_all_requests_complete(self, executor):
        reqs = synthesize_requests(PoissonArrivals(2.0, seed=7), 10, seed=7)
        result = simulate(reqs, _cfg(), executor)
        assert len(result.completed) == 10
        for record in result.records:
            assert record.state is RequestState.COMPLETED
            assert record.decoded_tokens == record.request.decode_tokens
            assert record.finished_s > record.request.arrival_s
            assert record.e2e_ms > 0
            assert len(record.step_end_s) >= record.request.decode_tokens

    def test_deterministic_across_runs(self, executor):
        reqs = synthesize_requests(PoissonArrivals(3.0, seed=2), 8, seed=2)
        a = simulate(reqs, _cfg(), executor)
        b = simulate(reqs, _cfg(), executor)
        assert a.device_end_cycles == b.device_end_cycles
        assert [r.finished_s for r in a.records] == [
            r.finished_s for r in b.records
        ]

    def test_continuous_batch_join_at_step_boundary(self, executor):
        """A request arriving mid-decode joins the in-flight batch."""
        ex = executor
        clock = ex.clock_hz
        prefill_s = ex.prefill_cycles(None) / clock
        step_s = ex.iteration_cycles([1]) / clock
        # r1 arrives while r0 is several decode steps in.
        reqs = [
            UtteranceRequest(0, 0.0, 12),
            UtteranceRequest(1, prefill_s + 3 * step_s, 6),
        ]
        result = simulate(reqs, _cfg(), ex)
        assert result.peak_batch == 2
        r0, r1 = result.records
        # r0 keeps decoding while r1 is served: its steps bracket r1's.
        assert r0.step_end_s[0] < r1.prefill_done_s < r0.finished_s
        # Shared iterations: fewer than solo step sums.
        assert result.decode_iterations < 12 + 6

    def test_batching_beats_serial(self, executor):
        """max_batch=1 serializes decode; batching finishes sooner."""
        reqs = [
            UtteranceRequest(0, 0.0, 8),
            UtteranceRequest(1, 0.0, 8),
            UtteranceRequest(2, 0.0, 8),
        ]
        batched = simulate(reqs, _cfg(max_batch=4), executor)
        serial = simulate(reqs, _cfg(max_batch=1))
        assert batched.device_end_cycles < serial.device_end_cycles
        assert batched.peak_batch == 3
        assert serial.peak_batch == 1

    def test_idle_gap_attributed(self, executor):
        """A long quiet gap between arrivals shows up as idle cycles."""
        reqs = [
            UtteranceRequest(0, 0.0, 4),
            UtteranceRequest(1, 5.0, 4),
        ]
        result = simulate(reqs, _cfg(), executor)
        assert result.idle_cycles_total > 0
        assert result.idle_cycles_total < result.device_end_cycles

    def test_quantiles(self, executor):
        reqs = synthesize_requests(PoissonArrivals(2.0, seed=9), 10, seed=9)
        result = simulate(reqs, _cfg(), executor)
        p50 = result.latency_quantile(0.5)
        p99 = result.latency_quantile(0.99)
        assert 0 < p50 <= p99
        with pytest.raises(ValueError):
            result.latency_quantile(1.5)

    def test_validation(self, executor):
        with pytest.raises(ValueError, match="at least one request"):
            simulate([], _cfg(), executor)
        tiny = modeled_resident_bytes(executor.lm.model, 32, 0) // 2
        with pytest.raises(ValueError, match="cannot hold even one"):
            simulate(
                [UtteranceRequest(0, 0.0, 4)],
                _cfg(kv_budget_bytes=tiny),
                ModeledExecutor(_cfg(kv_budget_bytes=tiny)),
            )
        with pytest.raises(ValueError):
            ServingConfig(max_batch=0)
        with pytest.raises(ValueError):
            ServingConfig(slo_ms=0.0)
        with pytest.raises(ValueError):
            ServingConfig(architecture="A9")


class TestCachePressureAdmission:
    def test_budget_limits_concurrency(self, executor):
        """A budget sized for one worst-case cache serializes admission
        even though batch slots are free."""
        budget = modeled_resident_bytes(executor.lm.model, 32, 16)
        cfg = _cfg(kv_budget_bytes=budget)
        ex = ModeledExecutor(cfg, executor.lm)
        reqs = [
            UtteranceRequest(0, 0.0, 10),
            UtteranceRequest(1, 0.0, 10),
        ]
        result = simulate(reqs, cfg, ex)
        assert result.peak_batch == 1
        assert result.preemptions == 0  # equal priority: no eviction
        assert len(result.completed) == 2
        r1 = result.records[1]
        assert r1.queue_ms > 0  # waited for r0's cache to drain
        assert result.peak_kv_bytes <= budget

    def test_generous_budget_runs_concurrently(self, executor):
        reqs = [
            UtteranceRequest(0, 0.0, 10),
            UtteranceRequest(1, 0.0, 10),
        ]
        result = simulate(reqs, _cfg(), executor)
        assert result.peak_batch == 2

    def test_decode_iter_events_carry_batch_membership(self, executor):
        """Event schema v2: every decode_iter event names its batch
        members and their tenants, in batch order — what the cost
        ledger apportions by."""
        from repro.obs.vtrace import VTraceRecorder

        reqs = [
            UtteranceRequest(0, 0.0, 6, tenant=1),
            UtteranceRequest(1, 0.0, 6, tenant=0),
        ]
        vt = VTraceRecorder()
        simulate(reqs, _cfg(), executor, vtrace=vt)
        iters = [e for e in vt.events if e.kind == "decode_iter"]
        assert iters
        for ev in iters:
            rids = ev.attrs["request_ids"]
            tenants = ev.attrs["tenants"]
            assert len(rids) == len(tenants) == ev.attrs["batch"]
            assert len(rids) == len(ev.attrs["prefix_lengths"])
            assert set(rids) <= {0, 1}
            assert tenants == [1 if r == 0 else 0 for r in rids]
        # per-request lifecycle events carry the tenant label too
        completes = [e for e in vt.events if e.kind == "complete"]
        assert {(e.request_id, e.tenant) for e in completes} == {
            (0, 1), (1, 0)
        }

    def test_kv_gauge_tracks_modeled_bytes(self, executor):
        reqs = [UtteranceRequest(0, 0.0, 6)]
        with obs.telemetry() as tel:
            result = simulate(reqs, _cfg(), executor)
            gauge_names = tel.metrics.names()
        assert "repro.serving.kv_resident_bytes" in gauge_names
        assert result.peak_kv_bytes == modeled_resident_bytes(
            executor.lm.model, 32, 5
        )  # peak observed after the 5th of 6 steps (last step completes)


class TestPreemption:
    def _pressure_setup(self, executor, preemption=True):
        """One low-priority request in flight, budget for one cache,
        then a high-priority arrival forces the decision."""
        budget = modeled_resident_bytes(executor.lm.model, 32, 16)
        cfg = _cfg(kv_budget_bytes=budget, preemption=preemption)
        ex = ModeledExecutor(cfg, executor.lm)
        clock = ex.clock_hz
        mid_decode_s = (
            ex.prefill_cycles(None) + 3 * ex.iteration_cycles([1])
        ) / clock * 1.01
        reqs = [
            UtteranceRequest(0, 0.0, 12, priority=1),
            UtteranceRequest(1, mid_decode_s, 6, priority=0),
        ]
        return cfg, ex, reqs

    def test_high_priority_preempts_low(self, executor):
        cfg, ex, reqs = self._pressure_setup(executor)
        result = simulate(reqs, cfg, ex)
        low, high = result.records
        assert result.preemptions == 1
        assert low.preemptions == 1
        assert low.replayed_steps > 0
        assert result.replayed_steps == low.replayed_steps
        # The high-priority request jumps the line and finishes first.
        assert high.finished_s < low.finished_s
        # Both still complete in full.
        assert len(result.completed) == 2
        assert low.decoded_tokens == 12

    def test_preemption_disabled_waits_instead(self, executor):
        cfg, ex, reqs = self._pressure_setup(executor, preemption=False)
        result = simulate(reqs, cfg, ex)
        low, high = result.records
        assert result.preemptions == 0
        # Without eviction the high-priority request queues behind.
        assert high.finished_s > low.finished_s
        assert len(result.completed) == 2

    def test_preemption_costs_replay_cycles(self, executor):
        """The preempted run does strictly more device work."""
        cfg, ex, reqs = self._pressure_setup(executor)
        with_preempt = simulate(reqs, cfg, ex)
        cfg_off, ex_off, _ = self._pressure_setup(executor, preemption=False)
        without = simulate(reqs, cfg_off, ex_off)
        assert with_preempt.replay_cycles_total > 0
        assert (
            with_preempt.prefill_cycles_total + with_preempt.decode_cycles_total
            > without.prefill_cycles_total + without.decode_cycles_total
        )


class TestFunctionalEquivalence:
    """Preemption/rewind must be functionally invisible: the emitted
    token sequences match an unpreempted greedy decode exactly."""

    def test_preempted_tokens_identical_to_solo(self, small_params):
        accel = TransformerAccelerator(small_params, hw_seq_len=16)
        config = small_params.config
        rng = np.random.default_rng(3)
        feats = {
            i: rng.normal(size=(10, config.d_model)).astype(np.float32)
            for i in range(2)
        }
        budget = modeled_resident_bytes(config, 16, 8)
        scfg = ServingConfig(
            s=16, max_batch=4, kv_budget_bytes=budget, slo_ms=1e9
        )
        lm = accel.latency_model
        prefill_s = lm.latency_report(16).total_cycles / (
            lm.hardware.clock_mhz * 1e6
        )
        reqs = [
            UtteranceRequest(0, 0.0, 8, priority=1),
            UtteranceRequest(1, prefill_s * 2.0, 6, priority=0),
        ]
        ex = FunctionalExecutor(
            scfg, accel, lambda r: feats[r.request_id], start_token=1
        )
        result = ContinuousBatchingScheduler(scfg, ex).run(reqs)
        assert result.preemptions >= 1
        assert result.replayed_steps > 0
        for rid, n in [(0, 8), (1, 6)]:
            session = accel.decode_session(feats[rid])
            feed, reference = 1, []
            for _ in range(n):
                out = session.step(int(feed))
                feed = int(np.argmax(out))
                reference.append(feed)
            assert ex.emitted[rid] == reference


class TestHwBatchingHooks:
    def test_weight_sharing_amortizes_loads(self):
        lm = LatencyModel()
        lengths = [3, 4, 5, 6]
        shared = lm.decode_iteration_cycles(lengths, 32, share_weights=True)
        unshared = lm.decode_iteration_cycles(lengths, 32, share_weights=False)
        solo = sum(lm.decode_iteration_cycles([t], 32) for t in lengths)
        assert shared < unshared
        assert unshared <= solo  # chained members still pipeline a bit
        # The batch win is substantial, not marginal.
        assert shared < 0.6 * solo

    def test_single_member_matches_solo(self):
        lm = LatencyModel()
        assert lm.decode_iteration_cycles([5], 32) == lm.decode_iteration_cycles(
            [5], 32, share_weights=False
        )

    def test_validation(self):
        lm = LatencyModel()
        with pytest.raises(ValueError):
            lm.decode_iteration_cycles([], 32)
        with pytest.raises(ValueError):
            lm.decode_iteration_cycles([0], 32)

    def test_step_batch_matches_individual_steps(self, small_params):
        accel = TransformerAccelerator(small_params, hw_seq_len=8)
        config = small_params.config
        rng = np.random.default_rng(11)
        feats = [
            rng.normal(size=(6, config.d_model)).astype(np.float32)
            for _ in range(2)
        ]
        batch = [accel.decode_session(f) for f in feats]
        ref = [accel.decode_session(f) for f in feats]
        outs, cycles = step_batch(batch, [1, 2])
        expected = [s.step(t) for s, t in zip(ref, [1, 2])]
        for got, want in zip(outs, expected):
            np.testing.assert_array_equal(got, want)
        assert cycles == accel.latency_model.decode_iteration_cycles(
            [1, 1], accel.hw_seq_len, accel.architecture
        )

    def test_step_batch_validation(self, small_params):
        accel = TransformerAccelerator(small_params, hw_seq_len=8)
        other = TransformerAccelerator(small_params, hw_seq_len=8)
        config = small_params.config
        feats = np.zeros((4, config.d_model), dtype=np.float32)
        session = accel.decode_session(feats)
        with pytest.raises(ValueError, match="at least one session"):
            step_batch([], [])
        with pytest.raises(ValueError, match="one token per session"):
            step_batch([session], [1, 2])
        with pytest.raises(ValueError, match="share one accelerator"):
            step_batch([session, other.decode_session(feats)], [1, 2])

    def test_session_preempt_and_replay(self, small_params):
        accel = TransformerAccelerator(small_params, hw_seq_len=8)
        config = small_params.config
        rng = np.random.default_rng(4)
        feats = rng.normal(size=(6, config.d_model)).astype(np.float32)
        session = accel.decode_session(feats)
        outs = [session.step(t) for t in (1, 2, 3)]
        prefix = session.preempt()
        assert prefix == [1, 2, 3]
        assert session.tokens == []
        assert session.resident_bytes() == modeled_resident_bytes(
            config, session.cache.memory_len, 0
        )
        replayed = [session.step(t) for t in prefix]
        for got, want in zip(replayed, outs):
            np.testing.assert_array_equal(got, want)

    def test_modeled_resident_bytes_pins_live_cache(self, small_params):
        accel = TransformerAccelerator(small_params, hw_seq_len=8)
        config = small_params.config
        feats = np.zeros((5, config.d_model), dtype=np.float32)
        session = accel.decode_session(feats)
        for step, token in enumerate((1, 2, 3), start=1):
            session.step(token)
            assert session.resident_bytes() == modeled_resident_bytes(
                config, session.cache.memory_len, step
            )


class TestSweepAnalysis:
    @pytest.fixture(scope="class")
    def sweep(self, executor):
        return sweep_offered_load(
            [0.5, 2.0, 8.0],
            num_requests=10,
            config=_cfg(slo_ms=1500.0),
            seed=11,
            executor=executor,
        )

    def test_three_load_points(self, sweep):
        assert [p.offered_rps for p in sweep.points] == [0.5, 2.0, 8.0]
        for p in sweep.points:
            assert p.completed == 10
            assert 0 < p.p50_ms <= p.p95_ms <= p.p99_ms

    def test_latency_grows_with_load(self, sweep):
        assert sweep.points[-1].p95_ms > sweep.points[0].p95_ms

    def test_attribution_fields(self, sweep):
        att = sweep.attribution
        assert set(att) >= {
            "saturated", "bottleneck", "prefill_frac", "decode_frac",
            "idle_frac", "psa_dominant_cause", "stall_program",
        }
        assert att["psa_dominant_cause"] in (
            "load_starved", "dependency", "channel_contention",
            "overhead", "none",
        )
        total = att["prefill_frac"] + att["decode_frac"] + att["idle_frac"]
        assert total == pytest.approx(1.0, abs=0.02)

    def test_render(self, sweep):
        text = render_sweep(sweep)
        assert "p95 ms" in text
        assert "stall taxonomy" in text

    def test_find_saturation(self, sweep):
        def fake(offered, goodput):
            return LoadPoint(
                offered_rps=offered, completed=1, throughput_rps=goodput,
                goodput_rps=goodput, p50_ms=1, p95_ms=1, p99_ms=1,
                queue_p95_ms=0, preemptions=0, replayed_steps=0,
                peak_kv_bytes=0, peak_queue_depth=0, peak_batch=1,
                device_cycles=1, prefill_frac=0.5, decode_frac=0.5,
                idle_frac=0.0,
            )

        points = [fake(1.0, 1.0), fake(4.0, 3.2), fake(8.0, 3.5)]
        knee = find_saturation(points)
        assert knee is not None and knee.offered_rps == 4.0
        assert find_saturation([fake(1.0, 1.0)]) is None
        with pytest.raises(ValueError):
            find_saturation(points, goodput_ratio=0.0)

    def test_validation(self):
        with pytest.raises(ValueError, match="at least one"):
            sweep_offered_load([])
        with pytest.raises(ValueError, match="sorted ascending"):
            sweep_offered_load([2.0, 1.0])


class TestSweepDelta:
    """Serving-side differential profile: two sweeps over the same
    offered-load ladder, diffed point-for-point."""

    @pytest.fixture(scope="class")
    def base_sweep(self, executor):
        return sweep_offered_load(
            [0.5, 2.0, 8.0], num_requests=8,
            config=_cfg(slo_ms=1500.0), seed=11, executor=executor,
        )

    @pytest.fixture(scope="class")
    def cand_sweep(self):
        return sweep_offered_load(
            [0.5, 2.0, 8.0], num_requests=8,
            config=_cfg(slo_ms=1500.0, max_batch=2), seed=11,
        )

    def test_self_diff_is_zero_everywhere(self, base_sweep):
        delta = diff_sweeps(base_sweep, base_sweep)
        assert not delta.knee_moved
        for p in delta.points:
            assert all(v == 0 for k, v in p.items() if k != "offered_rps")

    def test_point_deltas_are_exact_differences(self, base_sweep, cand_sweep):
        delta = diff_sweeps(base_sweep, cand_sweep)
        assert [p["offered_rps"] for p in delta.points] == [0.5, 2.0, 8.0]
        for p, a, b in zip(delta.points, base_sweep.points, cand_sweep.points):
            assert p["d_device_cycles"] == b.device_cycles - a.device_cycles
            assert p["d_p95_ms"] == b.p95_ms - a.p95_ms
            assert p["d_goodput_rps"] == b.goodput_rps - a.goodput_rps

    def test_knee_comes_from_find_saturation(self, base_sweep, cand_sweep):
        delta = diff_sweeps(base_sweep, cand_sweep)
        base_knee = find_saturation(base_sweep.points)
        assert delta.base_saturation_rps == (
            base_knee.offered_rps if base_knee else None
        )
        assert delta.knee_moved == (
            delta.base_saturation_rps != delta.cand_saturation_rps
        )

    def test_mismatched_ladders_raise(self, base_sweep):
        other = sweep_offered_load(
            [0.5, 2.0, 4.0], num_requests=4, config=_cfg(slo_ms=1500.0),
            seed=11,
        )
        with pytest.raises(ValueError, match="different offered-load"):
            diff_sweeps(base_sweep, other)

    def test_render_and_as_dict(self, base_sweep, cand_sweep):
        delta = diff_sweeps(base_sweep, cand_sweep)
        text = render_sweep_delta(delta)
        assert "serving diff:" in text
        assert "saturation knee:" in text
        assert "bottleneck:" in text
        payload = delta.as_dict()
        assert set(payload) == {
            "base", "cand", "points", "saturation_rps", "bottleneck",
        }


class TestVtraceInstrumentation:
    """The tracing hooks must be free when disabled: a run with the
    null recorder/sampler is bit-identical to an instrumented one."""

    def _requests(self):
        return synthesize_requests(
            make_arrival_model("poisson", 8.0, seed=11), 12, seed=11
        )

    def test_disabled_run_is_bit_identical_to_traced_run(self, executor):
        from repro.obs.vtrace import VSampler, VTraceRecorder

        plain = ContinuousBatchingScheduler(_cfg(), executor).run(
            self._requests()
        )
        traced = ContinuousBatchingScheduler(
            _cfg(), executor,
            vtrace=VTraceRecorder(), sampler=VSampler(cadence_cycles=50_000),
        ).run(self._requests())
        assert plain.device_end_cycles == traced.device_end_cycles
        assert plain.preemptions == traced.preemptions
        assert [r.e2e_ms for r in plain.completed] == [
            r.e2e_ms for r in traced.completed
        ]

    def test_default_hooks_record_nothing(self, executor):
        from repro.obs.vtrace import NULL_SAMPLER, NULL_VTRACE

        sched = ContinuousBatchingScheduler(_cfg(), executor)
        assert sched.vtrace is NULL_VTRACE
        assert sched.sampler is NULL_SAMPLER
        sched.run(self._requests())
        assert NULL_VTRACE.events == []
        assert NULL_SAMPLER.series() == {}

    def test_traced_run_covers_lifecycle(self, executor):
        from repro.obs.vtrace import VTraceRecorder

        vt = VTraceRecorder()
        result = ContinuousBatchingScheduler(
            _cfg(), executor, vtrace=vt
        ).run(self._requests())
        counts = vt.counts()
        assert counts["arrive"] == 12
        assert counts["complete"] == len(result.completed) == 12
        # preempted victims re-enter the queue and are admitted again
        assert counts["admit"] == counts["queue_wait"]
        assert counts["admit"] == 12 + counts.get("preempt", 0)
        assert counts["prefill_start"] == counts["prefill_end"]
        assert counts["prefill_start"] == result.prefills
        assert counts["decode_iter"] == result.decode_iterations
        # every event is causally ordered per request: arrive first
        from repro.obs.vtrace import request_phases

        for rid, phases in request_phases(vt.events).items():
            assert phases[0][0] == "queued"
            for (_, _, end), (_, start, _) in zip(phases, phases[1:]):
                assert start == end
