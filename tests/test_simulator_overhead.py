"""Performance smoke test: simulating the fabric must stay cheap.

The striped functional path runs ~30 small matmuls where NumPy runs ~8
large ones; if a change makes the simulator orders of magnitude slower,
this catches it (pytest-benchmark tracks the precise numbers in
benchmarks/test_simulator_performance.py).
"""

import time

import numpy as np

from repro.config import ModelConfig
from repro.hw.blocks import encoder_block
from repro.hw.kernels import Fabric
from repro.model.encoder import encoder_layer
from repro.model.params import init_transformer_params


def test_simulation_overhead_is_bounded():
    params = init_transformer_params(
        ModelConfig(num_encoders=1, num_decoders=0), seed=0
    )
    layer = params.encoders[0]
    x = np.random.default_rng(0).standard_normal((32, 512)).astype(np.float32)
    fabric = Fabric()

    def time_it(fn, repeats=5):
        best = float("inf")
        for _ in range(repeats):
            start = time.perf_counter()
            fn()
            best = min(best, time.perf_counter() - start)
        return best

    fabric_t = time_it(lambda: encoder_block(fabric, x, layer))
    reference_t = time_it(lambda: encoder_layer(x, layer))
    assert fabric_t < 40 * reference_t
