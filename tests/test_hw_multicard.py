"""Tests for the multi-card scale-out model."""

import pytest

from repro.hw.controller import LatencyModel
from repro.hw.multicard import (
    multicard_throughput,
    saturation_point,
    scaling_sweep,
)


@pytest.fixture(scope="module")
def lm():
    return LatencyModel()


class TestMultiCard:
    def test_one_card_matches_single_throughput(self, lm):
        point = multicard_throughput(1, lm)
        assert point.throughput_seq_per_s == pytest.approx(
            lm.steady_state_throughput(32, "A3"), rel=1e-9
        )
        assert point.scaling_efficiency == pytest.approx(1.0)

    def test_small_fleets_scale_linearly(self, lm):
        for n in (2, 4, 8):
            point = multicard_throughput(n, lm)
            assert not point.pcie_bound
            assert point.scaling_efficiency == pytest.approx(1.0)

    def test_throughput_monotone_in_cards(self, lm):
        sweep = scaling_sweep(card_counts=(1, 2, 4, 8, 16, 32, 64), latency_model=lm)
        rates = [p.throughput_seq_per_s for p in sweep]
        assert rates == sorted(rates)

    def test_pcie_eventually_binds(self, lm):
        """With host DMA at 12 GB/s and 256 KB of IO per s=32 sequence,
        the link saturates around 45k seq/s — far above a sane fleet,
        but a constrained host (e.g. 0.05 GB/s) binds immediately."""
        knee = saturation_point(lm, host_pcie_gbps=0.05)
        assert 30 < knee < 40  # ~381 seq/s link / ~11.85 seq/s per card
        constrained = multicard_throughput(knee, lm, host_pcie_gbps=0.05)
        assert constrained.pcie_bound
        assert constrained.scaling_efficiency < 1.0

    def test_saturated_fleet_throughput_capped(self, lm):
        a = multicard_throughput(64, lm, host_pcie_gbps=0.01)
        b = multicard_throughput(128, lm, host_pcie_gbps=0.01)
        assert a.throughput_seq_per_s == pytest.approx(
            b.throughput_seq_per_s, rel=1e-9
        )

    def test_validation(self, lm):
        with pytest.raises(ValueError):
            multicard_throughput(0, lm)
        with pytest.raises(ValueError):
            multicard_throughput(2, lm, host_pcie_gbps=0.0)
        with pytest.raises(ValueError):
            saturation_point(lm, max_cards=2)  # never binds that early

    def test_saturation_bisection_returns_minimal_knee(self, lm):
        """The bisection must land exactly where the linear scan did:
        the smallest fleet that is PCIe-bound (knee bound, knee-1 not)."""
        for gbps in (0.02, 0.05, 0.1):
            knee = saturation_point(lm, host_pcie_gbps=gbps)
            assert multicard_throughput(knee, lm, host_pcie_gbps=gbps).pcie_bound
            if knee > 1:
                assert not multicard_throughput(
                    knee - 1, lm, host_pcie_gbps=gbps
                ).pcie_bound

    def test_scaling_sweep_rejects_bad_inputs(self, lm):
        """The sweep validates up front: empty ladders and non-positive
        fleet sizes are caller bugs, not partial results."""
        with pytest.raises(ValueError, match="must not be empty"):
            scaling_sweep(card_counts=(), latency_model=lm)
        with pytest.raises(ValueError, match=r"\[0\]"):
            scaling_sweep(card_counts=(1, 0, 4), latency_model=lm)
        with pytest.raises(ValueError, match=r"\[-2\]"):
            scaling_sweep(card_counts=(-2, 4), latency_model=lm)
        # Generators are materialized once, then validated.
        points = scaling_sweep(card_counts=iter((1, 2)), latency_model=lm)
        assert [p.num_cards for p in points] == [1, 2]

    def test_saturation_point_rejects_nonpositive_max_cards(self, lm):
        with pytest.raises(ValueError, match="max_cards"):
            saturation_point(lm, max_cards=0)
        with pytest.raises(ValueError, match="max_cards"):
            saturation_point(lm, max_cards=-8)
