"""Tests for the stall-attribution classifier, watchpoints and the
introspection surfacing (metrics, counters, dashboard, attribution)."""

import pytest

from repro.hw.controller import LatencyModel
from repro.hw.introspect import (
    STALL_CAUSES,
    FlightRecorder,
    StallInterval,
    Watchpoint,
    classify_stalls,
    counter_tracks,
    default_watchpoints,
    render_stall_dashboard,
    run_watchpoints,
    utilization_counters,
)
from repro.hw.trace import Timeline


@pytest.fixture(scope="module")
def lm():
    return LatencyModel()


def _program(lm, s):
    return lm.full_pass_program(s)


class TestConservation:
    """busy + sum(stall causes) + no_work == makespan, exactly."""

    @pytest.mark.parametrize("arch", ["A1", "A2", "A3"])
    @pytest.mark.parametrize("s", [8, 18, 32])
    def test_exact_per_engine_conservation(self, lm, arch, s):
        report = classify_stalls(_program(lm, s), arch)
        assert report.makespan > 0
        for engine, breakdown in report.engines.items():
            total = (
                breakdown.busy_cycles
                + sum(breakdown.stalls.values())
                + breakdown.no_work_cycles
            )
            assert total == report.makespan, engine
        report.verify_conservation()  # must not raise

    def test_intervals_match_breakdown_totals(self, lm):
        report = classify_stalls(_program(lm, 8), "A1")
        for engine, breakdown in report.engines.items():
            by_cause = {cause: 0.0 for cause in STALL_CAUSES}
            for iv in report.intervals_on(engine):
                by_cause[iv.cause] += iv.cycles
            for cause in breakdown.stalls:
                assert by_cause[cause] == breakdown.stalls[cause]
            assert by_cause["no_work"] == breakdown.no_work_cycles

    def test_verify_conservation_raises_on_corruption(self, lm):
        report = classify_stalls(_program(lm, 8), "A3")
        engine = next(iter(report.engines))
        bd = report.engines[engine]
        report.engines[engine] = type(bd)(
            engine=bd.engine,
            makespan=bd.makespan,
            busy_cycles=bd.busy_cycles + 1.0,
            stalls=bd.stalls,
            no_work_cycles=bd.no_work_cycles,
        )
        with pytest.raises(ValueError, match="not conservative"):
            report.verify_conservation()


class TestCauseAttribution:
    def test_a1_more_load_starved_than_a3_at_s8(self, lm):
        program = _program(lm, 8)
        a1 = classify_stalls(program, "A1").totals(".psa")["load_starved"]
        a3 = classify_stalls(program, "A3").totals(".psa")["load_starved"]
        assert a1 > a3  # strictly: prefetch hides load behind compute

    def test_a1_has_no_channel_contention(self, lm):
        # A1 never overlaps loads, so nothing serializes behind a LOAD.
        report = classify_stalls(_program(lm, 8), "A1")
        assert report.totals()["channel_contention"] == 0.0

    def test_a2_single_channel_contention_at_small_s(self, lm):
        # A2 prefetches every bundle on one channel: back-to-back LOADs
        # serialize, which is the paper's motivation for A3.
        report = classify_stalls(_program(lm, 8), "A2")
        assert report.totals()["channel_contention"] > 0.0

    def test_dominant_cause_on_psa_lanes(self, lm):
        report = classify_stalls(_program(lm, 8), "A1")
        assert report.dominant_cause(".psa") == "load_starved"

    def test_overhead_attributed_when_configured(self, lm):
        report = classify_stalls(
            _program(lm, 8), "A3",
            block_overhead=lm.calibration.block_overhead_cycles,
        )
        if lm.calibration.block_overhead_cycles > 0:
            assert report.totals()["overhead"] > 0.0

    def test_as_dict_round_trips(self, lm):
        import json

        payload = classify_stalls(_program(lm, 8), "A3").as_dict()
        parsed = json.loads(json.dumps(payload))
        assert parsed["architecture"] == "A3"
        assert set(parsed["totals"]) == set(STALL_CAUSES)
        assert parsed["engines"]


class TestWatchpoints:
    def _timeline(self):
        tl = Timeline()
        tl.add("hbm0", "LW:enc1", 0, 100, kind="load")
        tl.add("slr0.psa0", "h0:MM1", 100, 200)
        tl.add("slr0.psa0", "h0:MM4", 500, 600)
        return tl

    def test_idle_trigger_fires_with_context(self):
        hits = run_watchpoints(
            self._timeline(),
            [Watchpoint("psa-idle", "idle", engine=r"\.psa", threshold=200)],
        )
        assert len(hits) == 1
        hit = hits[0]
        assert hit.engine == "slr0.psa0"
        assert hit.cycle == 500
        assert "idle 300" in hit.detail
        assert any(e.label == "h0:MM1" for e in hit.window)

    def test_idle_trigger_counts_lead_in(self):
        hits = run_watchpoints(
            self._timeline(),
            [Watchpoint("first", "idle", engine=r"\.psa", threshold=100)],
        )
        assert any(h.cycle == 100 for h in hits)

    def test_label_trigger_matches_regex(self):
        hits = run_watchpoints(
            self._timeline(),
            [Watchpoint("mm4", "label", pattern=r"MM4.*")],
        )
        assert len(hits) == 1
        assert "h0:MM4" in hits[0].detail

    def test_bandwidth_trigger_fires_on_quiet_window(self):
        tl = Timeline()
        tl.add("hbm0", "LW:a", 0, 100, kind="load")
        tl.add("hbm0", "LW:b", 900, 1000, kind="load")
        hits = run_watchpoints(
            tl,
            [Watchpoint("bw", "bandwidth", engine=r"^hbm",
                        threshold=0.5, window=200)],
        )
        assert hits
        assert all(h.engine == "hbm0" for h in hits)

    def test_watchpoint_validation(self):
        with pytest.raises(ValueError, match="unknown watchpoint kind"):
            Watchpoint("w", "bogus")
        with pytest.raises(ValueError, match="positive threshold"):
            Watchpoint("w", "idle", threshold=0)
        with pytest.raises(ValueError, match="pattern"):
            Watchpoint("w", "label")
        with pytest.raises(ValueError, match="busy-fraction"):
            Watchpoint("w", "bandwidth", threshold=2.0, window=10)
        with pytest.raises(ValueError, match="positive window"):
            Watchpoint("w", "bandwidth", threshold=0.5)

    def test_flight_recorder_bounded(self):
        rec = FlightRecorder(capacity=2)
        tl = self._timeline()
        for event in tl.events:
            rec.record(event)
        assert len(rec) == 2
        assert rec.dropped == 1
        labels = [e.label for e in rec.snapshot()]
        assert labels == ["h0:MM1", "h0:MM4"]

    def test_flight_recorder_rejects_zero_capacity(self):
        with pytest.raises(ValueError):
            FlightRecorder(capacity=0)

    def test_default_watchpoints_on_real_program(self, lm):
        from repro.hw.program import trace_program

        timeline = trace_program(
            _program(lm, 8), "A1", lm.calibration.block_overhead_cycles
        )
        hits = run_watchpoints(
            timeline, default_watchpoints(timeline, idle_fraction=0.01)
        )
        assert hits  # A1 at s=8 is riddled with long PSA idles
        assert default_watchpoints(Timeline()) == []


class TestCounters:
    def test_bucketed_utilization(self):
        tl = Timeline()
        tl.add("e", "a", 0, 50)
        tl.add("e", "b", 150, 200)
        samples = utilization_counters(tl, bucket_cycles=100)["e"]
        assert samples == [(0.0, 0.5), (100.0, 0.5)]

    def test_counter_tracks_named_by_role(self):
        tl = Timeline()
        tl.add("hbm0", "LW", 0, 10, kind="load")
        tl.add("slr0.psa0", "C", 10, 20)
        tracks = counter_tracks(tl, bucket_cycles=10)
        assert "bandwidth:hbm0" in tracks
        assert "utilization:slr0.psa0" in tracks

    def test_empty_timeline_yields_no_tracks(self):
        assert utilization_counters(Timeline()) == {}

    def test_rejects_bad_bucket(self):
        tl = Timeline()
        tl.add("e", "a", 0, 10)
        with pytest.raises(ValueError):
            utilization_counters(tl, bucket_cycles=0)


class TestStallMetrics:
    """repro.hw.stall.cycles rides record_program_metrics, gated on
    telemetry being enabled."""

    def test_emitted_when_enabled(self, lm):
        from repro import obs
        from repro.obs.probe import record_program_metrics

        with obs.telemetry() as session:
            record_program_metrics(_program(lm, 8), architecture="A1")
            sampled = {
                key: value
                for key, value in session.metrics.as_dict().items()
                if key.startswith("repro.hw.stall.cycles{")
            }
        assert sampled
        assert any("cause=load_starved" in key for key in sampled)
        # the per-engine sums reproduce the classifier exactly
        report = classify_stalls(_program(lm, 8), "A1")
        psa0 = "slr0.psa0"
        for cause, cycles in report.engines[psa0].stalls.items():
            key = f"repro.hw.stall.cycles{{cause={cause},engine={psa0}}}"
            if cycles > 0:
                assert sampled[key] == cycles
            else:
                assert key not in sampled

    def test_null_registry_stays_free(self, lm):
        from repro.obs.metrics import NULL_REGISTRY
        from repro.obs.probe import record_program_metrics

        assert not NULL_REGISTRY.enabled
        result = record_program_metrics(
            _program(lm, 8), architecture="A1", registry=NULL_REGISTRY
        )
        assert result is None
        assert list(NULL_REGISTRY.collect()) == []


class TestDashboard:
    def test_renders_all_sections(self, lm):
        report = classify_stalls(_program(lm, 8), "A1")
        art = render_stall_dashboard(report, width=20)
        assert "stall attribution: A1" in art
        assert "slr0.psa0" in art
        for cause in STALL_CAUSES:
            assert cause in art
        assert "watchpoint hits: none" in art

    def test_renders_hits(self, lm):
        from repro.hw.introspect import WatchpointHit

        report = classify_stalls(_program(lm, 8), "A1")
        hit = WatchpointHit("psa-idle", 123.0, "slr0.psa0", "idle 99 cycles")
        art = render_stall_dashboard(report, hits=[hit])
        assert "watchpoint hits (1):" in art
        assert "psa-idle" in art


class TestAttributionStallSection:
    def test_report_carries_per_arch_summaries(self):
        from repro.bench.attribution import build_attribution_report

        report = build_attribution_report(s=8)
        archs = [summ.architecture for summ in report.stalls]
        assert archs == ["A1", "A2", "A3"]
        a1 = report.stall_summary("A1")
        a3 = report.stall_summary("A3")
        assert (
            a1.psa_stall_cycles("load_starved")
            > a3.psa_stall_cycles("load_starved")
        )
        text = report.format()
        assert "stall-cause attribution" in text
        assert "A1->A3 shift" in text

    def test_unknown_architecture_raises(self):
        from repro.bench.attribution import build_attribution_report

        with pytest.raises(KeyError):
            build_attribution_report(s=8).stall_summary("A9")


class TestInspectCli:
    def test_text_dashboard(self, capsys):
        from repro.cli import main

        assert main(["inspect", "--seq", "8", "--arch", "A1"]) == 0
        out = capsys.readouterr().out
        assert "stall attribution: A1" in out
        assert "Fig 5.2 context" in out

    def test_json_payload(self, capsys):
        import json

        from repro.cli import main

        assert main(["inspect", "--seq", "8", "--arch", "A3", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["architecture"] == "A3"
        assert payload["s"] == 8
        assert "watchpoint_hits" in payload
        assert set(payload["totals"]) == set(STALL_CAUSES)


class TestClassifierEdgeCases:
    def test_stall_interval_cycles(self):
        iv = StallInterval("e", 10, 25, "dependency")
        assert iv.cycles == 15

    def test_reuses_supplied_schedule(self, lm):
        from repro.hw.program import trace_program_with_schedule

        program = _program(lm, 8)
        overhead = lm.calibration.block_overhead_cycles
        timeline, sched = trace_program_with_schedule(program, "A2", overhead)
        report = classify_stalls(
            program, "A2", overhead, timeline=timeline, sched=sched
        )
        fresh = classify_stalls(program, "A2", overhead)
        assert report.totals() == fresh.totals()
