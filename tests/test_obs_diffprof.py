"""Differential profiler: conservation-checked cycle-delta attribution.

The load-bearing invariants, exercised as properties over the real
architectures and sequence lengths:

* capture — every :class:`RunProfile` lane account sums exactly to the
  makespan (inherited from the stall classifier, re-verified here);
* self-diff — ``diff(a, a)`` is identically zero;
* anti-symmetry — ``diff(a, b) == diff(b, a).negated()``;
* conservation — every lane's delta leaves sum exactly to the makespan
  delta, block-work leaves to the total-work delta, channel-byte
  leaves to the load-bytes delta — including cross-architecture diffs
  and the pass-transformed (A4) program.
"""

import json

import pytest

from repro.hw.controller import LatencyModel
from repro.obs.diffprof import (
    PROFILE_SCHEMA,
    LaneProfile,
    RunProfile,
    delta_counter_tracks,
    diff_profiles,
    diff_tenant_costs,
    load_profile,
    profile_run,
    render_waterfall,
)

ARCHES = ("A1", "A2", "A3")
SEQS = (8, 18, 32)


@pytest.fixture(scope="module")
def lm():
    return LatencyModel()


@pytest.fixture(scope="module")
def profiles(lm):
    """Real profiles over the full architecture × sequence grid, plus
    the optimizer's pass-transformed A4 program at s=32."""
    out = {}
    for arch in ARCHES:
        for s in SEQS:
            out[(arch, s)] = profile_run(
                lm.full_pass_program(s), arch, label=f"{arch} s={s}"
            )
    from repro.hw.dse import synthesize_a4

    result = synthesize_a4(s=32, architecture="A3")
    overhead = lm.calibration.block_overhead_cycles
    out[("A4", 32)] = profile_run(
        result.program, "A3", overhead, label="A4 s=32"
    )
    out["_a4_result"] = result
    return out


def _grid(profiles):
    return [(k, v) for k, v in profiles.items() if isinstance(k, tuple)]


class TestRunProfileCapture:
    def test_every_lane_conserves_exactly(self, profiles):
        for key, prof in _grid(profiles):
            prof.verify_conservation()
            for name, lane in prof.lanes.items():
                assert (
                    lane.busy + lane.stall_total + lane.no_work
                    == prof.makespan
                ), (key, name)

    def test_all_quantities_are_ints(self, profiles):
        for _, prof in _grid(profiles):
            assert isinstance(prof.makespan, int)
            for lane in prof.lanes.values():
                assert isinstance(lane.busy, int)
                assert isinstance(lane.no_work, int)
                for blocks in lane.stalls.values():
                    assert all(isinstance(c, int) for c in blocks.values())

    def test_stall_blocks_are_real_unit_labels(self, profiles):
        """The (cause, block) nesting carries the UnitSpan labels the
        work actually stalled on — not empty strings, not engine names."""
        prof = profiles[("A3", 32)]
        labeled = set()
        for lane in prof.lanes.values():
            for blocks in lane.stalls.values():
                labeled.update(blocks)
        labeled.discard("")
        assert labeled  # the A3 schedule does stall on real units
        assert labeled <= set(prof.block_work)

    def test_channel_bytes_sum_to_program_load_bytes(self, profiles, lm):
        from repro.hw.program import program_load_bytes

        for (arch, s), prof in _grid(profiles):
            if arch == "A4":
                continue
            assert prof.load_bytes == program_load_bytes(
                lm.full_pass_program(s)
            )

    def test_json_round_trip_is_lossless(self, profiles):
        prof = profiles[("A2", 18)]
        back = RunProfile.from_dict(json.loads(json.dumps(prof.as_dict())))
        assert back.as_dict() == prof.as_dict()
        assert diff_profiles(prof, back).is_zero

    def test_from_dict_rejects_wrong_schema(self, profiles):
        payload = profiles[("A1", 8)].as_dict()
        payload["schema"] = "repro.diffprof/0"
        with pytest.raises(ValueError, match="schema"):
            RunProfile.from_dict(payload)

    def test_from_dict_rejects_fractional_cycles(self, profiles):
        payload = profiles[("A1", 8)].as_dict()
        payload["makespan_cycles"] = payload["makespan_cycles"] + 0.5
        with pytest.raises(ValueError, match="not an exact integer"):
            RunProfile.from_dict(payload)

    def test_from_dict_rejects_nonconservative_account(self, profiles):
        payload = profiles[("A1", 8)].as_dict()
        lane = next(iter(payload["lanes"]))
        payload["lanes"][lane]["busy"] += 1
        with pytest.raises(ValueError, match="not conservative"):
            RunProfile.from_dict(payload)

    def test_load_profile_resolves_directories(self, profiles, tmp_path):
        (tmp_path / "runprofile.json").write_text(
            json.dumps(profiles[("A3", 8)].as_dict())
        )
        assert load_profile(tmp_path).makespan == profiles[("A3", 8)].makespan
        with pytest.raises(FileNotFoundError):
            load_profile(tmp_path / "nope")


class TestDeltaProperties:
    def test_self_diff_is_identically_zero(self, profiles):
        for key, prof in _grid(profiles):
            wf = diff_profiles(prof, prof)
            assert wf.is_zero, key
            assert wf.makespan_delta == 0
            assert wf.leaves() == []
            assert wf.cause_totals() == {}
            assert wf.dominant_cause(".psa") is None

    def test_antisymmetry(self, profiles):
        pairs = [
            (("A1", 8), ("A3", 8)),
            (("A2", 18), ("A3", 18)),
            (("A3", 8), ("A3", 32)),
            (("A3", 32), ("A4", 32)),
        ]
        for a_key, b_key in pairs:
            fwd = diff_profiles(profiles[a_key], profiles[b_key])
            rev = diff_profiles(profiles[b_key], profiles[a_key])
            assert fwd.negated().as_dict() == rev.as_dict(), (a_key, b_key)
            assert fwd.makespan_delta == -rev.makespan_delta

    def test_every_lane_leaf_sum_equals_makespan_delta(self, profiles):
        keys = [k for k, _ in _grid(profiles)]
        for a_key in keys:
            for b_key in keys:
                wf = diff_profiles(profiles[a_key], profiles[b_key])
                wf.verify_conservation()
                for name, lane in wf.lanes.items():
                    assert lane.total == wf.makespan_delta, (
                        a_key, b_key, name,
                    )

    def test_leaves_partition_each_lane(self, profiles):
        """Grouping the flat leaf list by engine must reproduce the
        per-lane account exactly — nothing dropped, nothing doubled."""
        wf = diff_profiles(profiles[("A1", 32)], profiles[("A3", 32)])
        by_engine: dict[str, int] = {}
        for leaf in wf.leaves():
            by_engine[leaf.engine] = by_engine.get(leaf.engine, 0) + leaf.delta
        for engine, total in by_engine.items():
            assert total == wf.makespan_delta, engine
        # Engines absent from the list moved nothing on any leaf.
        for name in set(wf.lanes) - set(by_engine):
            assert wf.lanes[name].total == wf.makespan_delta

    def test_work_and_byte_facets_conserve(self, profiles):
        wf = diff_profiles(profiles[("A1", 18)], profiles[("A3", 18)])
        work_leaves = sum(
            w.get("load", 0) + w.get("compute", 0)
            for w in wf.block_work.values()
        )
        assert work_leaves == wf.cand_work_cycles - wf.base_work_cycles
        assert sum(wf.channel_bytes.values()) == (
            wf.cand_load_bytes - wf.base_load_bytes
        )

    def test_missing_lane_treated_as_fully_idle(self):
        """A lane present in only one profile diffs as if the other run
        had observed it drained for its whole makespan, preserving the
        per-lane identity even across architectures with different
        engine inventories."""
        base = RunProfile(
            label="a", architecture="A1", makespan=100,
            lanes={"psa0": LaneProfile(busy=60, stalls={}, no_work=40)},
            block_work={}, channel_bytes={},
        )
        cand = RunProfile(
            label="b", architecture="A3", makespan=80,
            lanes={
                "psa0": LaneProfile(busy=60, stalls={}, no_work=20),
                "hbm1": LaneProfile(
                    busy=30,
                    stalls={"dependency": {"enc1": 10}},
                    no_work=40,
                ),
            },
            block_work={}, channel_bytes={},
        )
        wf = diff_profiles(base, cand)
        assert wf.makespan_delta == -20
        assert wf.lanes["hbm1"].busy == 30
        assert wf.lanes["hbm1"].stalls == {"dependency": {"enc1": 10}}
        assert wf.lanes["hbm1"].no_work == 40 - 100
        assert wf.lanes["hbm1"].total == wf.makespan_delta

    def test_diff_rejects_nonconservative_input(self):
        bad = RunProfile(
            label="bad", architecture="A3", makespan=100,
            lanes={"psa0": LaneProfile(busy=60, stalls={}, no_work=99)},
            block_work={}, channel_bytes={},
        )
        with pytest.raises(ValueError, match="not conservative"):
            diff_profiles(bad, bad)


class TestA4Waterfall:
    def test_rederives_the_optimizer_win_exactly(self, profiles, lm):
        """The A3→A4 waterfall must reproduce the optimizer's own
        accounting to the cycle: the makespan delta is the pinned
        −534,843 at s=32, and the dominant PSA cause is the
        load-starvation the prefetch passes removed."""
        result = profiles["_a4_result"]
        overhead = lm.calibration.block_overhead_cycles
        base = profile_run(
            result.baseline_program, "A3", overhead, label="A3 s=32"
        )
        wf = diff_profiles(base, profiles[("A4", 32)])
        assert wf.makespan_delta == (
            result.optimized_cycles - result.baseline_cycles
        )
        assert wf.makespan_delta == -534_843
        cause, delta = wf.dominant_cause(".psa")
        assert cause == "load_starved"
        assert delta == (
            int(result.psa_stalls_after.get("load_starved", 0))
            - int(result.psa_stalls_before.get("load_starved", 0))
        )
        assert delta < 0  # A4 exists to remove PSA load starvation

    def test_waterfall_renders_the_win(self, profiles, lm):
        result = profiles["_a4_result"]
        overhead = lm.calibration.block_overhead_cycles
        base = profile_run(
            result.baseline_program, "A3", overhead, label="A3 s=32"
        )
        text = render_waterfall(diff_profiles(base, profiles[("A4", 32)]))
        assert "-534,843" in text
        assert "load_starved" in text
        assert "conservation" in text


class TestDeltaCounterTracks:
    def test_shared_grid_and_naming(self, lm):
        from repro.hw.program import trace_program_with_schedule

        overhead = lm.calibration.block_overhead_cycles
        program = lm.full_pass_program(8)
        tl_a1, _ = trace_program_with_schedule(program, "A1", overhead)
        tl_a3, _ = trace_program_with_schedule(program, "A3", overhead)
        tracks = delta_counter_tracks(tl_a1, tl_a3)
        assert tracks
        for name, samples in tracks.items():
            assert name.startswith(("delta:utilization:", "delta:bandwidth:"))
            assert samples
        # Engine union: both runs' lanes appear even when one run
        # never used the engine.
        names = {n.split(":", 2)[2] for n in tracks}
        assert names == set(tl_a1.engines()) | set(tl_a3.engines())

    def test_self_diff_tracks_are_flat_zero(self, lm):
        from repro.hw.program import trace_program_with_schedule

        overhead = lm.calibration.block_overhead_cycles
        tl, _ = trace_program_with_schedule(
            lm.full_pass_program(8), "A3", overhead
        )
        for samples in delta_counter_tracks(tl, tl).values():
            assert all(value == 0.0 for _, value in samples)


class _FakeLedger:
    def __init__(self, totals, tenants):
        self._totals = totals
        self._tenants = tenants

    def totals(self):
        return dict(self._totals)

    def per_tenant(self):
        return list(self._tenants)


class TestTenantCostDiff:
    def _run_ledger(self, max_batch):
        from repro.obs.vtrace import VTraceRecorder
        from repro.serving import (
            ContinuousBatchingScheduler,
            ServingConfig,
            build_cost_ledger,
            make_arrival_model,
            synthesize_requests,
        )

        config = ServingConfig(s=32, architecture="A3", max_batch=max_batch)
        arrival = make_arrival_model("poisson", 4.0, seed=3)
        requests = synthesize_requests(
            arrival, 6, seed=3, tenant_classes=2
        )
        recorder = VTraceRecorder()
        result = ContinuousBatchingScheduler(config, vtrace=recorder).run(
            requests
        )
        return build_cost_ledger(result, recorder.events)

    def test_real_ledgers_diff_conservatively(self):
        base = self._run_ledger(max_batch=4)
        cand = self._run_ledger(max_batch=2)
        delta = diff_tenant_costs(base, cand)
        totals = delta["totals"]
        assert (
            totals["attributed_cycles"] + totals["unattributed_cycles"]
            == totals["makespan_cycles"]
        )
        assert sum(
            t["attributed_cycles"] for t in delta["tenants"].values()
        ) == totals["attributed_cycles"]
        assert diff_tenant_costs(base, base)["totals"][
            "makespan_cycles"
        ] == 0

    def test_broken_tenant_sum_raises(self):
        from types import SimpleNamespace

        totals = {
            "makespan_cycles": 100,
            "attributed_cycles": 90,
            "unattributed_cycles": 10,
        }
        tenant = SimpleNamespace(
            tenant=0, attributed_cycles=50, hbm_load_bytes=0,
            requests=1, good=1,
        )
        base = _FakeLedger(totals, [tenant])
        cand = _FakeLedger(
            {**totals, "attributed_cycles": 95, "unattributed_cycles": 5},
            [tenant],  # tenant delta 0 != Δattributed 5
        )
        with pytest.raises(ValueError, match="tenant cycle deltas"):
            diff_tenant_costs(base, cand)


class TestRendering:
    def test_self_diff_message(self, profiles):
        text = render_waterfall(
            diff_profiles(profiles[("A1", 8)], profiles[("A1", 8)])
        )
        assert "cycle-identical" in text

    def test_cross_arch_waterfall_structure(self, profiles):
        wf = diff_profiles(profiles[("A1", 8)], profiles[("A3", 8)])
        text = render_waterfall(wf, top=4)
        assert f"{wf.makespan_delta:+,}" in text
        assert "Δcycles by cause" in text
        assert "top 4 leaves" in text
        assert "PSA lanes dominated by" in text

    def test_as_dict_is_json_serializable(self, profiles):
        wf = diff_profiles(profiles[("A2", 8)], profiles[("A3", 32)])
        payload = json.loads(json.dumps(wf.as_dict()))
        assert payload["schema"] == PROFILE_SCHEMA
        assert payload["makespan_delta"] == wf.makespan_delta
        assert len(payload["top_leaves"]) <= 10
