"""Tests for the fixed-precision (quantization) extension."""

import numpy as np
import pytest

from repro.config import ModelConfig
from repro.model.params import init_transformer_params
from repro.model.transformer import Transformer
from repro.quant.analysis import accuracy_study, precision_sweep
from repro.quant.params import dequantize_params, quantize_params
from repro.quant.schemes import (
    FP16,
    FP32,
    INT8,
    INT16,
    dequantize,
    fake_quantize,
    int_matmul,
    quantize_symmetric,
)


class TestQuantizeSymmetric:
    def test_roundtrip_error_bounded_by_half_step(self, rng):
        x = rng.standard_normal((8, 8))
        q, scale = quantize_symmetric(x, INT8)
        err = np.abs(dequantize(q, scale) - x)
        assert err.max() <= float(scale) / 2 + 1e-12

    def test_range_respected(self, rng):
        x = 100.0 * rng.standard_normal((16, 16))
        q, _ = quantize_symmetric(x, INT8)
        assert q.max() <= 127 and q.min() >= -127

    def test_per_channel_scales_shape(self, rng):
        x = rng.standard_normal((8, 5))
        _, scale = quantize_symmetric(x, INT8, axis=1)
        assert scale.shape == (1, 5)

    def test_per_channel_beats_per_tensor(self, rng):
        # One huge column forces a coarse per-tensor grid.
        x = rng.standard_normal((32, 4))
        x[:, 0] *= 1000
        _, s_tensor = quantize_symmetric(x, INT8)
        q_ch, s_ch = quantize_symmetric(x, INT8, axis=1)
        err_tensor = np.abs(dequantize(*quantize_symmetric(x, INT8)) - x).mean()
        err_channel = np.abs(dequantize(q_ch, s_ch) - x).mean()
        assert err_channel < err_tensor

    def test_int16_finer_than_int8(self, rng):
        x = rng.standard_normal((8, 8))
        e8 = np.abs(dequantize(*quantize_symmetric(x, INT8)) - x).max()
        e16 = np.abs(dequantize(*quantize_symmetric(x, INT16)) - x).max()
        assert e16 < e8

    def test_rejects_float_precision(self):
        with pytest.raises(ValueError):
            quantize_symmetric(np.zeros(4), FP16)

    def test_dtype(self, rng):
        q, _ = quantize_symmetric(rng.standard_normal(8), INT8)
        assert q.dtype == np.int8


class TestFakeQuantize:
    def test_fp32_is_identity(self, rng):
        x = rng.standard_normal((4, 4)).astype(np.float32)
        np.testing.assert_array_equal(fake_quantize(x, FP32), x)

    def test_fp16_rounds(self):
        x = np.array([1.0 + 2**-13])
        out = fake_quantize(x, FP16)
        assert out[0] != x[0]

    def test_int8_idempotent(self, rng):
        x = rng.standard_normal((4, 4))
        once = fake_quantize(x, INT8)
        twice = fake_quantize(once, INT8)
        np.testing.assert_allclose(once, twice, atol=1e-10)


class TestIntMatmul:
    def test_matches_dequantized_product(self, rng):
        a = rng.standard_normal((4, 6))
        b = rng.standard_normal((6, 5))
        qa, sa = quantize_symmetric(a, INT8)
        qb, sb = quantize_symmetric(b, INT8, axis=1)
        out = int_matmul(qa, sa, qb, sb)
        expected = dequantize(qa, sa) @ dequantize(qb, sb)
        np.testing.assert_allclose(out, expected, rtol=1e-12)

    def test_shape_validation(self):
        with pytest.raises(ValueError):
            int_matmul(np.zeros((2, 3)), 1.0, np.zeros((4, 2)), 1.0)


class TestModelQuantization:
    @pytest.fixture(scope="class")
    def params(self):
        return init_transformer_params(
            ModelConfig(num_encoders=1, num_decoders=1), seed=5
        )

    def test_roundtrip_preserves_structure(self, params):
        q = quantize_params(params, INT8)
        restored = dequantize_params(q)
        assert restored.config == params.config
        assert len(restored.encoders) == 1

    def test_int8_shrinks_weights_4x(self, params):
        q = quantize_params(params, INT8)
        ratio = q.total_weight_bytes / (params.num_elements * 4)
        assert ratio == pytest.approx(0.25, abs=0.02)

    def test_quantized_inference_close_to_fp32(self, params, rng):
        restored = dequantize_params(quantize_params(params, INT8))
        feats = rng.standard_normal((6, 512)).astype(np.float32)
        toks = np.array([0, 3])
        ref = Transformer(params).forward(feats, toks)
        quant = Transformer(restored).forward(feats, toks)
        assert np.abs(quant - ref).max() < 0.5
        np.testing.assert_array_equal(
            np.argmax(quant, axis=-1), np.argmax(ref, axis=-1)
        )

    def test_rejects_float_precision(self, params):
        with pytest.raises(ValueError):
            quantize_params(params, FP16)


class TestPrecisionSweep:
    @pytest.fixture(scope="class")
    def points(self):
        return {p.precision.name: p for p in precision_sweep()}

    def test_narrower_loads_faster(self, points):
        assert (
            points["int8"].encoder_load_ms
            < points["fp16"].encoder_load_ms
            < points["fp32"].encoder_load_ms
        )

    def test_crossover_moves_left(self, points):
        """Cheaper loads turn the design compute-bound much earlier."""
        assert points["fp32"].crossover_s == 19
        assert points["int8"].crossover_s < points["fp16"].crossover_s < 19

    def test_lut_budget_frees_up(self, points):
        assert points["int8"].lut_utilization_base < 0.5
        assert points["fp32"].lut_utilization_base > 0.8

    def test_wider_unroll_becomes_feasible(self, points):
        """Section 6.2: fixed precision 'will enable accelerators with
        lower latency' — the freed LUTs buy wider PSAs."""
        assert points["fp32"].best_psa_rows == 2
        assert points["int8"].best_psa_rows >= 8
        assert points["int8"].latency_ms_best < points["fp32"].latency_ms_best / 2


class TestAccuracyStudy:
    def test_int8_preserves_top1(self):
        report = accuracy_study(INT8)
        assert report.top1_agreement == 1.0
        assert report.weight_bytes_ratio == pytest.approx(0.25, abs=0.02)

    def test_fp16_error_below_int8(self):
        fp16 = accuracy_study(FP16)
        int8 = accuracy_study(INT8)
        assert fp16.mean_abs_logit_error < int8.mean_abs_logit_error
