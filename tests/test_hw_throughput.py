"""Tests for back-to-back sequence pipelining (the 'LW+' prefetch)."""

import pytest

from repro.hw.controller import LatencyModel


@pytest.fixture(scope="module")
def lm():
    return LatencyModel()


class TestSteadyStateThroughput:
    def test_pipelining_never_hurts(self, lm):
        for s in (4, 16, 32):
            for arch in ("A1", "A2", "A3"):
                pipelined = lm.steady_state_throughput(s, arch)
                single = 1e3 / lm.latency_ms(s, arch)
                assert pipelined >= single * 0.999

    def test_a1_gains_nothing(self, lm):
        """A1 is strictly serial; back-to-back sequences just queue."""
        pipelined = lm.steady_state_throughput(32, "A1")
        single = 1e3 / lm.latency_ms(32, "A1")
        assert pipelined == pytest.approx(single, rel=0.01)

    def test_a3_near_paper_throughput(self, lm):
        """Section 5.1.6: 11.88 seq/s; the steady-state pipelined rate
        matches it even more closely than the single-shot 1/latency."""
        assert lm.steady_state_throughput(32, "A3") == pytest.approx(
            11.88, rel=0.05
        )

    def test_more_sequences_converges(self, lm):
        t4 = lm.steady_state_throughput(32, "A3", num_sequences=4)
        t12 = lm.steady_state_throughput(32, "A3", num_sequences=12)
        assert t4 == pytest.approx(t12, rel=0.02)

    def test_load_bound_gains_more(self, lm):
        """At small s the next sequence's loads hide under compute."""
        gain_small = lm.steady_state_throughput(4, "A3") / (
            1e3 / lm.latency_ms(4, "A3")
        )
        assert gain_small > 1.0

    def test_validation(self, lm):
        with pytest.raises(ValueError):
            lm.steady_state_throughput(32, "A3", num_sequences=1)
