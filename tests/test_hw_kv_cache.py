"""KV-cached hardware decode: equivalence against the legacy
full-prefix path and the host-side incremental reference, plus unit
tests for the cache itself and the autoregressive latency account."""

import numpy as np
import pytest

from repro.config import ModelConfig
from repro.decoding.greedy import greedy_decode
from repro.hw.accelerator import TransformerAccelerator
from repro.hw.kv_cache import LayerKVCache, kv_stream_cycles
from repro.model.incremental import IncrementalDecoder
from repro.model.params import init_transformer_params

SOS, EOS = 1, 2


@pytest.fixture(scope="module")
def eq_params():
    """Small but multi-layer/multi-head so every cache path is hit."""
    cfg = ModelConfig(
        d_model=64,
        num_heads=2,
        d_ff=128,
        num_encoders=1,
        num_decoders=2,
        vocab_size=31,
    )
    return init_transformer_params(cfg, seed=11)


def _features(hw_seq_len: int, padding: str, d_model: int) -> np.ndarray:
    s = hw_seq_len if padding == "exact" else hw_seq_len - 3
    rng = np.random.default_rng(100 + hw_seq_len)
    return (0.5 * rng.standard_normal((s, d_model))).astype(np.float32)


@pytest.mark.parametrize("padding", ["padded", "exact"])
@pytest.mark.parametrize("hw_seq_len", [8, 16, 32])
class TestEngineEquivalence:
    """Legacy full-prefix, KV-cached hw step and the incremental
    reference must agree token for token and log-prob for log-prob."""

    def test_step_log_probs_agree(self, eq_params, hw_seq_len, padding):
        accel = TransformerAccelerator(eq_params, hw_seq_len=hw_seq_len)
        features = _features(hw_seq_len, padding, eq_params.config.d_model)
        legacy = accel.step_fn(features, use_kv_cache=False)
        session = accel.decode_session(features)
        cached = session.step_fn()
        reference = IncrementalDecoder(eq_params, session.memory).step_fn()

        # A scripted prefix guarantees several multi-token steps even
        # if greedy decoding would stop immediately.
        script = [SOS, 4, 9, 17, 5, 26]
        limit = min(len(script), hw_seq_len - 1)
        for n in range(1, limit + 1):
            prefix = np.asarray(script[:n], dtype=np.int64)
            lp_legacy = legacy(prefix)
            lp_cached = cached(prefix)
            lp_reference = reference(prefix)
            np.testing.assert_allclose(
                lp_cached, lp_legacy, atol=1e-5, rtol=0
            )
            np.testing.assert_allclose(
                lp_reference, lp_legacy, atol=1e-5, rtol=0
            )

    def test_greedy_tokens_identical(self, eq_params, hw_seq_len, padding):
        accel = TransformerAccelerator(eq_params, hw_seq_len=hw_seq_len)
        features = _features(hw_seq_len, padding, eq_params.config.d_model)
        max_len = hw_seq_len - 1
        legacy_tokens = greedy_decode(
            accel.step_fn(features, use_kv_cache=False),
            sos_id=SOS, eos_id=EOS, max_len=max_len,
        )
        session = accel.decode_session(features)
        cached_tokens = greedy_decode(
            session.step_fn(), sos_id=SOS, eos_id=EOS, max_len=max_len
        )
        reference_tokens = greedy_decode(
            IncrementalDecoder(eq_params, session.memory).step_fn(),
            sos_id=SOS, eos_id=EOS, max_len=max_len,
        )
        np.testing.assert_array_equal(cached_tokens, legacy_tokens)
        np.testing.assert_array_equal(reference_tokens, legacy_tokens)


class TestKvStreamCycles:
    def test_one_flit_per_16_values(self):
        assert kv_stream_cycles(1, 64) == 4
        assert kv_stream_cycles(2, 64) == 8
        assert kv_stream_cycles(1, 17) == 2  # partial flit rounds up

    def test_zero_rows_free(self):
        assert kv_stream_cycles(0, 64) == 0

    def test_strictly_increasing_in_t(self):
        costs = [kv_stream_cycles(t, 64) for t in range(1, 33)]
        assert all(b > a for a, b in zip(costs, costs[1:]))

    def test_validation(self):
        with pytest.raises(ValueError):
            kv_stream_cycles(-1, 64)
        with pytest.raises(ValueError):
            kv_stream_cycles(1, 0)


class TestLayerCacheAppendValidation:
    """Regression: appends used to accept out-of-range head indices and
    mis-shaped rows silently (corrupting the banks or IndexError-ing
    later); they must fail fast with a clear message."""

    def test_out_of_order_head_rejected(self):
        cache = LayerKVCache()
        with pytest.raises(ValueError, match="appended in order"):
            cache.append_self_k(1, np.zeros((1, 4)))
        with pytest.raises(ValueError, match="appended in order"):
            cache.append_self_v(-1, np.zeros((1, 4)))

    def test_bad_row_shape_rejected(self):
        cache = LayerKVCache()
        with pytest.raises(ValueError, match=r"shape \(1, d_k\)"):
            cache.append_self_k(0, np.zeros(4))
        with pytest.raises(ValueError, match=r"shape \(1, d_k\)"):
            cache.append_self_v(0, np.zeros((2, 4)))

    def test_width_mismatch_rejected(self):
        cache = LayerKVCache()
        cache.append_self_k(0, np.zeros((1, 4)))
        with pytest.raises(ValueError, match="width"):
            cache.append_self_k(0, np.zeros((1, 5)))

    def test_valid_appends_accumulate(self):
        cache = LayerKVCache()
        cache.append_self(0, np.zeros((1, 4)), np.zeros((1, 4)))
        cache.append_self(0, np.ones((1, 4)), np.ones((1, 4)))
        cache.append_self(1, np.ones((1, 4)), np.ones((1, 4)))
        assert cache.self_k[0].shape == (2, 4)
        assert cache.self_v[1].shape == (1, 4)


class TestDecodeSession:
    @pytest.fixture(scope="class")
    def accel(self, eq_params):
        return TransformerAccelerator(eq_params, hw_seq_len=16)

    @pytest.fixture(scope="class")
    def features(self, eq_params):
        return _features(16, "padded", eq_params.config.d_model)

    def test_rewind_then_replay_is_exact(self, accel, features):
        session = accel.decode_session(features)
        first = [session.step(t).copy() for t in (SOS, 4, 9)]
        session.rewind(1)
        assert session.tokens == [SOS]
        assert session.cache.length == 1
        # Diverge, then come back: the replayed branch must reproduce
        # the original log-probs bit for bit (same kernels, same rows).
        session.step(7)
        session.rewind(1)
        replay = [session.step(t).copy() for t in (4, 9)]
        np.testing.assert_array_equal(replay[0], first[1])
        np.testing.assert_array_equal(replay[1], first[2])

    def test_step_fn_handles_repeated_prefix(self, accel, features):
        session = accel.decode_session(features)
        step = session.step_fn()
        prefix = np.array([SOS, 4, 9])
        out1 = step(prefix).copy()
        out2 = step(prefix)  # fully cached: must replay, not crash
        np.testing.assert_array_equal(out1, out2)

    def test_step_fn_rewinds_on_divergence(self, accel, features):
        session = accel.decode_session(features)
        step = session.step_fn()
        step(np.array([SOS, 4, 9]))
        out_branch = step(np.array([SOS, 4, 11])).copy()
        assert session.tokens == [SOS, 4, 11]
        fresh = accel.decode_session(features).step_fn()
        np.testing.assert_array_equal(
            out_branch, fresh(np.array([SOS, 4, 11]))
        )

    def test_step_compute_cycles_strictly_increase(self, accel, features):
        """Each extra cached row costs extra stream cycles, so per-step
        fabric compute grows strictly with the prefix length."""
        session = accel.decode_session(features)
        for t in [SOS, 4, 9, 17, 5]:
            session.step(t)
        cycles = session.step_compute_cycles
        assert len(cycles) == 5
        assert all(b > a for a, b in zip(cycles, cycles[1:]))

    def test_overflow_rejected(self, eq_params):
        accel = TransformerAccelerator(eq_params, hw_seq_len=8)
        session = accel.decode_session(
            _features(8, "padded", eq_params.config.d_model)
        )
        for t in range(8):
            session.step(3)
        with pytest.raises(ValueError, match="exceed"):
            session.step(3)

    def test_cache_rewind_validation(self, accel, features):
        session = accel.decode_session(features)
        session.step(SOS)
        with pytest.raises(ValueError):
            session.cache.rewind(5)
        with pytest.raises(ValueError):
            session.cache.rewind(-1)

    def test_decoder_step_shape_validation(self, accel, features):
        session = accel.decode_session(features)
        with pytest.raises(ValueError, match="must be"):
            accel.controller.run_decoder_step(
                np.zeros(3, dtype=np.float32), session.cache
            )


class TestAutoregressiveReport:
    @pytest.fixture(scope="class")
    def accel(self, eq_params):
        return TransformerAccelerator(eq_params, hw_seq_len=16)

    def test_details_round_trip(self, accel):
        report = accel.autoregressive_report(6)
        d = report.details
        assert d["decode_tokens"] == 6.0
        assert d["decode_total_cycles"] == report.total_cycles
        assert d["decode_per_token_cycles"] * 6 == pytest.approx(
            report.total_cycles
        )
        assert d["decode_first_step_cycles"] <= d["decode_last_step_cycles"]
        assert d["decode_steady_tokens_per_s"] > 0
        assert report.latency_ms > 0

    def test_later_steps_cost_more_compute(self, accel):
        lm = accel.latency_model
        per_step = [
            sum(lm.decoder_step_compute_cycles(t, accel.hw_seq_len))
            for t in range(1, accel.hw_seq_len + 1)
        ]
        assert all(b > a for a, b in zip(per_step, per_step[1:]))

    def test_total_grows_with_tokens(self, accel):
        totals = [
            accel.autoregressive_report(n).total_cycles for n in (1, 2, 4, 8)
        ]
        assert all(b > a for a, b in zip(totals, totals[1:]))

    def test_rejects_bad_token_count(self, accel):
        with pytest.raises(ValueError):
            accel.autoregressive_report(0)
