"""Tests for the trainable Transformer layers, losses and optimizer."""

import numpy as np
import pytest

from repro.config import ModelConfig
from repro.model.transformer import Transformer
from repro.train.autograd import Tensor
from repro.train.layers import LayerNorm, MultiHeadAttention, TrainableTransformer
from repro.train.losses import cross_entropy, label_smoothing_cross_entropy
from repro.train.optim import Adam

CFG = ModelConfig(
    d_model=16, num_heads=2, d_ff=32, num_encoders=1, num_decoders=1, vocab_size=9
)


class TestLayerNorm:
    def test_output_statistics(self, rng):
        ln = LayerNorm(8)
        x = Tensor(rng.standard_normal((4, 8)) * 5 + 3)
        out = ln(x)
        np.testing.assert_allclose(out.data.mean(axis=-1), 0.0, atol=1e-8)
        np.testing.assert_allclose(out.data.std(axis=-1), 1.0, atol=1e-5)

    def test_matches_inference_layernorm(self, rng):
        from repro.model.layernorm import layer_norm

        ln = LayerNorm(8)
        x = rng.standard_normal((3, 8))
        np.testing.assert_allclose(
            ln(Tensor(x)).data,
            layer_norm(x, ln.weight.data, ln.bias.data),
            rtol=1e-8,
        )


class TestMhaGradients:
    def test_gradients_flow_to_all_params(self, rng):
        mha = MultiHeadAttention(CFG, rng)
        x = Tensor(rng.standard_normal((5, CFG.d_model)))
        out = mha(x, x)
        (out * out).sum().backward()
        for p in mha.parameters():
            assert p.grad is not None
            assert np.any(p.grad != 0)

    def test_mask_respected(self, rng):
        from repro.model.masks import causal_mask

        mha = MultiHeadAttention(CFG, rng)
        x1 = rng.standard_normal((4, CFG.d_model))
        x2 = x1.copy()
        x2[3] += 10.0
        mask = causal_mask(4)
        out1 = mha(Tensor(x1), Tensor(x1), mask=mask).data
        out2 = mha(Tensor(x2), Tensor(x2), mask=mask).data
        np.testing.assert_allclose(out1[:3], out2[:3], atol=1e-10)


class TestExportRoundtrip:
    def test_trained_model_runs_on_inference_engine(self, rng):
        """export_params() must produce numerically identical inference."""
        model = TrainableTransformer(CFG, seed=4)
        feats = rng.standard_normal((6, CFG.d_model))
        toks = np.array([0, 4, 5])
        train_logits = model.forward(model_features := feats, toks).data

        params = model.export_params()
        ref = Transformer(params)
        projected = model.project_features(model_features)
        ref_logits = ref.forward(projected, toks)
        np.testing.assert_allclose(train_logits, ref_logits, rtol=1e-4, atol=1e-4)

    def test_exported_params_match_config(self):
        model = TrainableTransformer(CFG, seed=0)
        params = model.export_params()
        assert params.config == CFG
        assert len(params.encoders) == CFG.num_encoders


class TestLosses:
    def test_cross_entropy_perfect_prediction(self):
        logits = Tensor(np.array([[100.0, 0.0], [0.0, 100.0]]))
        loss = cross_entropy(logits, np.array([0, 1]))
        assert loss.item() == pytest.approx(0.0, abs=1e-6)

    def test_uniform_prediction_log_vocab(self):
        logits = Tensor(np.zeros((3, 7)))
        loss = cross_entropy(logits, np.array([0, 1, 2]))
        assert loss.item() == pytest.approx(np.log(7), rel=1e-9)

    def test_smoothing_increases_floor(self):
        logits = Tensor(np.array([[100.0, 0.0, 0.0]]))
        plain = cross_entropy(logits, np.array([0])).item()
        smooth = label_smoothing_cross_entropy(
            logits, np.array([0]), smoothing=0.1
        ).item()
        assert smooth > plain

    def test_gradient_direction(self):
        logits = Tensor(np.zeros((1, 3)), requires_grad=True)
        cross_entropy(logits, np.array([1])).backward()
        # Gradient should push logit 1 up (negative grad) and others down.
        assert logits.grad[0, 1] < 0
        assert logits.grad[0, 0] > 0

    def test_validation(self):
        with pytest.raises(ValueError):
            cross_entropy(Tensor(np.zeros((2, 3))), np.array([0]))
        with pytest.raises(ValueError):
            cross_entropy(Tensor(np.zeros((1, 3))), np.array([5]))
        with pytest.raises(ValueError):
            label_smoothing_cross_entropy(
                Tensor(np.zeros((1, 3))), np.array([0]), smoothing=1.0
            )


class TestAdam:
    def test_minimizes_quadratic(self):
        x = Tensor(np.array([5.0, -3.0]), requires_grad=True)
        opt = Adam([x], lr=0.1)
        for _ in range(200):
            opt.zero_grad()
            loss = (x * x).sum()
            loss.backward()
            opt.step()
        np.testing.assert_allclose(x.data, 0.0, atol=1e-2)

    def test_grad_clip_limits_step(self):
        x = Tensor(np.array([1.0]), requires_grad=True)
        opt = Adam([x], lr=1.0, grad_clip=0.001)
        opt.zero_grad()
        (x * 1e6).sum().backward()
        before = x.data.copy()
        opt.step()
        # Clipped: the update is bounded by ~lr regardless of the grad.
        assert abs(x.data[0] - before[0]) <= 1.0 + 1e-6

    def test_skips_params_without_grad(self, rng):
        x = Tensor(rng.standard_normal(3), requires_grad=True)
        y = Tensor(rng.standard_normal(3), requires_grad=True)
        opt = Adam([x, y], lr=0.1)
        opt.zero_grad()
        (x * x).sum().backward()
        y_before = y.data.copy()
        opt.step()
        np.testing.assert_array_equal(y.data, y_before)

    def test_validation(self):
        with pytest.raises(ValueError):
            Adam([], lr=0.1)
        x = Tensor(np.zeros(1), requires_grad=True)
        with pytest.raises(ValueError):
            Adam([x], lr=0.0)
        with pytest.raises(ValueError):
            Adam([x], grad_clip=-1.0)
