"""Tests for the synthetic audio source and PCM codec."""

import numpy as np
import pytest

from repro.frontend.audio import (
    SynthesisConfig,
    pcm16_decode,
    pcm16_encode,
    synthesize_utterance,
)


class TestSynthesisConfig:
    def test_samples_per_char(self):
        cfg = SynthesisConfig(sample_rate=16_000, char_duration_s=0.06)
        assert cfg.samples_per_char == 960

    def test_rejects_bad_sample_rate(self):
        with pytest.raises(ValueError):
            SynthesisConfig(sample_rate=0)

    def test_rejects_bad_noise(self):
        with pytest.raises(ValueError):
            SynthesisConfig(noise_level=1.0)

    def test_rejects_bad_amplitude(self):
        with pytest.raises(ValueError):
            SynthesisConfig(amplitude=0.0)


class TestSynthesizeUtterance:
    def test_length_is_chars_times_duration(self):
        cfg = SynthesisConfig()
        wav = synthesize_utterance([1, 2, 3], cfg)
        assert wav.shape == (3 * cfg.samples_per_char,)

    def test_output_in_unit_range(self):
        wav = synthesize_utterance(np.arange(10))
        assert np.max(np.abs(wav)) <= 1.0

    def test_empty_transcript(self):
        assert synthesize_utterance([]).size == 0

    def test_deterministic_given_rng(self):
        a = synthesize_utterance([3, 4], rng=np.random.default_rng(5))
        b = synthesize_utterance([3, 4], rng=np.random.default_rng(5))
        np.testing.assert_array_equal(a, b)

    def test_different_chars_differ(self):
        cfg = SynthesisConfig(noise_level=0.0)
        a = synthesize_utterance([1], cfg)
        b = synthesize_utterance([9], cfg)
        assert not np.allclose(a, b)

    def test_rejects_negative_indices(self):
        with pytest.raises(ValueError):
            synthesize_utterance([-1])

    def test_rejects_2d_input(self):
        with pytest.raises(ValueError):
            synthesize_utterance(np.zeros((2, 2), dtype=int))

    def test_noise_level_zero_is_clean(self):
        cfg = SynthesisConfig(noise_level=0.0)
        a = synthesize_utterance([2], cfg, rng=np.random.default_rng(1))
        b = synthesize_utterance([2], cfg, rng=np.random.default_rng(2))
        np.testing.assert_array_equal(a, b)


class TestPcmCodec:
    def test_roundtrip_accuracy(self):
        wav = np.linspace(-1, 1, 101)
        decoded = pcm16_decode(pcm16_encode(wav))
        assert np.max(np.abs(decoded - wav)) < 1.0 / 32767 + 1e-9

    def test_encode_dtype(self):
        assert pcm16_encode(np.zeros(4)).dtype == np.int16

    def test_full_scale_clipping(self):
        enc = pcm16_encode(np.array([1.0, -1.0]))
        assert enc[0] == 32767
        assert enc[1] == -32767

    def test_encode_rejects_out_of_range(self):
        with pytest.raises(ValueError):
            pcm16_encode(np.array([1.5]))

    def test_decode_rejects_wrong_dtype(self):
        with pytest.raises(ValueError):
            pcm16_decode(np.zeros(4, dtype=np.float32))

    def test_encode_rejects_2d(self):
        with pytest.raises(ValueError):
            pcm16_encode(np.zeros((2, 2)))
