"""Tests for the weight inventory (Table 4.1) and table formatting."""

import pytest

from repro.analysis.inventory import total_weight_elements, weight_inventory
from repro.analysis.report import format_table
from repro.config import ModelConfig
from repro.model.flops import weight_bytes


class TestTable41:
    """The inventory must reproduce Table 4.1 exactly."""

    def test_counts_and_dims(self):
        rows = {r.name: r for r in weight_inventory(ModelConfig())}
        assert (rows["W_Q/K/V"].count, rows["W_Q/K/V"].dims) == (576, "512 x 64")
        assert (rows["B_Q/K/V"].count, rows["B_Q/K/V"].dims) == (576, "1 x 64")
        assert (rows["W_A"].count, rows["W_A"].dims) == (24, "512 x 512")
        assert (rows["B_A"].count, rows["B_A"].dims) == (24, "1 x 512")
        assert (rows["L_N"].count, rows["L_N"].dims) == (84, "1 x 512")
        assert (rows["W_1F"].count, rows["W_1F"].dims) == (18, "512 x 2048")
        assert (rows["B_1F"].count, rows["B_1F"].dims) == (18, "1 x 2048")
        assert (rows["W_2F"].count, rows["W_2F"].dims) == (18, "2048 x 512")
        assert (rows["B_2F"].count, rows["B_2F"].dims) == (18, "1 x 512")

    def test_total_matches_flops_module(self):
        cfg = ModelConfig()
        assert total_weight_elements(cfg) * 4 == weight_bytes(cfg)

    def test_scales_with_depth(self):
        half = ModelConfig(num_encoders=6, num_decoders=3)
        rows = {r.name: r for r in weight_inventory(half)}
        assert rows["W_Q/K/V"].count == 288


class TestFormatTable:
    def test_alignment(self):
        out = format_table(["a", "bb"], [[1, 2.5], [10, 0.25]])
        lines = out.splitlines()
        assert len(lines) == 4
        assert all(len(line) == len(lines[0]) for line in lines)

    def test_float_formatting(self):
        out = format_table(["x"], [[3.14159]], float_fmt="{:.1f}")
        assert "3.1" in out

    def test_row_length_validation(self):
        with pytest.raises(ValueError):
            format_table(["a", "b"], [[1]])

    def test_empty_headers_rejected(self):
        with pytest.raises(ValueError):
            format_table([], [])

    def test_no_rows(self):
        out = format_table(["a"], [])
        assert "a" in out
