"""Tests: batched inference must equal per-sequence inference."""

import numpy as np
import pytest

from repro.model.batched import BatchedTransformer
from repro.model.transformer import Transformer

RTOL = 1e-4
ATOL = 1e-5


@pytest.fixture(scope="module")
def models(small_params):
    return Transformer(small_params), BatchedTransformer(small_params)


@pytest.fixture(scope="module")
def batch(rng_seed=5):
    rng = np.random.default_rng(rng_seed)
    feats = rng.standard_normal((3, 7, 512)).astype(np.float32)
    tokens = rng.integers(0, 31, size=(3, 4))
    return feats, tokens


class TestBatchedEquality:
    def test_encoder_matches_per_sequence(self, models, batch):
        ref, batched = models
        feats, _ = batch
        out = batched.encode(feats)
        for b in range(feats.shape[0]):
            np.testing.assert_allclose(
                out[b], ref.encode(feats[b]), rtol=RTOL, atol=ATOL
            )

    def test_forward_matches_per_sequence(self, models, batch):
        ref, batched = models
        feats, tokens = batch
        logits = batched.forward(feats, tokens)
        for b in range(feats.shape[0]):
            np.testing.assert_allclose(
                logits[b],
                ref.forward(feats[b], tokens[b]),
                rtol=RTOL,
                atol=ATOL,
            )

    def test_batch_of_one(self, models, batch):
        ref, batched = models
        feats, tokens = batch
        logits = batched.forward(feats[:1], tokens[:1])
        np.testing.assert_allclose(
            logits[0], ref.forward(feats[0], tokens[0]), rtol=RTOL, atol=ATOL
        )

    def test_causality_in_batch(self, models, batch):
        """Perturbing a late token must not change earlier positions."""
        _, batched = models
        feats, tokens = batch
        t2 = tokens.copy()
        t2[:, -1] = (t2[:, -1] + 1) % 31
        a = batched.forward(feats, tokens)
        b = batched.forward(feats, t2)
        np.testing.assert_allclose(
            a[:, :-1], b[:, :-1], rtol=RTOL, atol=ATOL
        )

    def test_validation(self, models):
        _, batched = models
        with pytest.raises(ValueError):
            batched.encode(np.zeros((3, 4, 100)))
        with pytest.raises(ValueError):
            batched.decode(np.zeros((3, 4), dtype=np.int64), np.zeros((2, 4, 512)))
        with pytest.raises(ValueError):
            batched.decode(
                np.full((2, 3), 999), np.zeros((2, 4, 512), dtype=np.float32)
            )


class TestBatchedIsFaster:
    def test_amortizes_per_sequence_cost(self, models):
        """Batching 8 sequences should be well under 8x one sequence."""
        import time

        ref, batched = models
        rng = np.random.default_rng(0)
        feats = rng.standard_normal((8, 16, 512)).astype(np.float32)
        tokens = rng.integers(0, 31, size=(8, 8))

        def best_of(fn, n=3):
            times = []
            for _ in range(n):
                start = time.perf_counter()
                fn()
                times.append(time.perf_counter() - start)
            return min(times)

        batched_t = best_of(lambda: batched.forward(feats, tokens))
        single_t = best_of(
            lambda: [ref.forward(feats[b], tokens[b]) for b in range(8)]
        )
        assert batched_t < single_t
