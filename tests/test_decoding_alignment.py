"""Tests for the sclite-style alignment."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.decoding.alignment import EditOp, align, align_words
from repro.decoding.wer import edit_distance, word_error_rate

WORDS = st.lists(st.sampled_from(["a", "b", "c", "dd"]), max_size=7)


class TestAlign:
    def test_perfect_match(self):
        result = align_words("the cat sat", "the cat sat")
        assert result.errors == 0
        assert result.matches == 3
        assert result.wer == 0.0

    def test_substitution(self):
        result = align_words("the cat sat", "the dog sat")
        assert result.substitutions == 1
        assert result.insertions == 0
        assert result.deletions == 0
        sub = [p for p in result.pairs if p.op is EditOp.SUBSTITUTE][0]
        assert (sub.reference, sub.hypothesis) == ("cat", "dog")

    def test_deletion(self):
        result = align_words("the cat sat", "the sat")
        assert result.deletions == 1
        deleted = [p for p in result.pairs if p.op is EditOp.DELETE][0]
        assert deleted.reference == "cat"
        assert deleted.hypothesis is None

    def test_insertion(self):
        result = align_words("the cat", "the big cat")
        assert result.insertions == 1
        inserted = [p for p in result.pairs if p.op is EditOp.INSERT][0]
        assert inserted.hypothesis == "big"

    def test_empty_hypothesis_all_deletions(self):
        result = align_words("a b c", "")
        assert result.deletions == 3
        assert result.errors == 3

    def test_empty_reference_all_insertions(self):
        result = align(["x"], ["x", "y", "z"])
        assert result.insertions == 2

    def test_wer_empty_reference_raises(self):
        with pytest.raises(ValueError):
            align([], ["x"]).wer

    def test_pretty_rendering(self):
        out = align_words("the cat sat", "the dog").pretty()
        lines = out.splitlines()
        assert lines[0].startswith("REF:")
        assert lines[1].startswith("HYP:")
        assert "S" in lines[2] and "D" in lines[2]
        assert "***" in lines[1]  # deletion placeholder

    @given(WORDS, WORDS)
    @settings(max_examples=60, deadline=None)
    def test_errors_equal_edit_distance(self, ref, hyp):
        assert align(ref, hyp).errors == edit_distance(ref, hyp)

    @given(WORDS, WORDS)
    @settings(max_examples=40, deadline=None)
    def test_wer_matches_metric(self, ref, hyp):
        if not ref:
            return
        result = align(ref, hyp)
        assert result.wer == pytest.approx(
            word_error_rate(" ".join(ref), " ".join(hyp))
        )

    @given(WORDS, WORDS)
    @settings(max_examples=40, deadline=None)
    def test_alignment_reconstructs_both_strings(self, ref, hyp):
        result = align(ref, hyp)
        rebuilt_ref = [p.reference for p in result.pairs if p.reference is not None]
        rebuilt_hyp = [p.hypothesis for p in result.pairs if p.hypothesis is not None]
        assert rebuilt_ref == ref
        assert rebuilt_hyp == hyp
