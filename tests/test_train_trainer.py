"""Tests for the trainer: loss decreases and WER drops on a tiny task."""

import numpy as np
import pytest

from repro.asr.dataset import LibriSpeechLikeDataset
from repro.config import ModelConfig
from repro.decoding.vocab import CharVocabulary
from repro.frontend.features import FrontendConfig, LogMelFrontend
from repro.train.layers import TrainableTransformer
from repro.train.trainer import Trainer, TrainingConfig

VOCAB = CharVocabulary()
TOY = ModelConfig(
    d_model=24,
    num_heads=2,
    d_ff=48,
    num_encoders=1,
    num_decoders=1,
    vocab_size=len(VOCAB),
    feature_dim=20,
)


def make_feature_fn(seed: int = 0):
    """Cheap feature path: 20-dim log-mel, mean-pooled by 4, projected."""
    frontend = LogMelFrontend(
        FrontendConfig(num_mel_filters=TOY.feature_dim)
    )
    rng = np.random.default_rng(seed)
    proj = rng.standard_normal((TOY.feature_dim, TOY.d_model)) / np.sqrt(
        TOY.feature_dim
    )

    def feature_fn(waveform: np.ndarray) -> np.ndarray:
        feats = frontend(waveform)
        pooled = feats[: feats.shape[0] // 4 * 4].reshape(-1, 4, TOY.feature_dim)
        return pooled.mean(axis=1) @ proj

    return feature_fn


@pytest.fixture(scope="module")
def tiny_corpus():
    ds = LibriSpeechLikeDataset(seed=5, lexicon=("the", "cat", "sat", "on"))
    return ds.generate(6, min_words=1, max_words=2)


@pytest.fixture(scope="module")
def trained(tiny_corpus):
    model = TrainableTransformer(TOY, seed=1)
    trainer = Trainer(
        model,
        VOCAB,
        make_feature_fn(),
        TrainingConfig(epochs=40, learning_rate=3e-3),
    )
    history = trainer.train(tiny_corpus)
    return trainer, history


class TestTraining:
    def test_loss_decreases(self, trained):
        _, history = trained
        assert history[-1] < history[0] / 2

    def test_memorizes_training_set(self, trained, tiny_corpus):
        trainer, _ = trained
        wer = trainer.evaluate_wer(tiny_corpus)
        assert wer < 0.5  # far below the ~1.0 of an untrained model

    def test_untrained_model_is_bad(self, tiny_corpus):
        model = TrainableTransformer(TOY, seed=2)
        trainer = Trainer(model, VOCAB, make_feature_fn())
        wer = trainer.evaluate_wer(tiny_corpus[:2])
        assert wer > 0.5

    def test_greedy_transcribe_returns_text(self, trained, tiny_corpus):
        trainer, _ = trained
        feats = trainer.feature_fn(tiny_corpus[0].waveform)
        assert isinstance(trainer.greedy_transcribe(feats), str)


class TestPreparation:
    def test_prepare_shapes(self, tiny_corpus):
        model = TrainableTransformer(TOY, seed=0)
        trainer = Trainer(model, VOCAB, make_feature_fn())
        ex = trainer.prepare(tiny_corpus[0])
        n = len(tiny_corpus[0].transcript)
        assert ex.decoder_input.shape == (n + 1,)
        assert ex.targets.shape == (n + 1,)
        assert ex.decoder_input[0] == VOCAB.sos_id
        assert ex.targets[-1] == VOCAB.eos_id
        # Shifted alignment: input[1:] == targets[:-1].
        np.testing.assert_array_equal(ex.decoder_input[1:], ex.targets[:-1])


class TestValidation:
    def test_config_validation(self):
        with pytest.raises(ValueError):
            TrainingConfig(epochs=0)
        with pytest.raises(ValueError):
            TrainingConfig(learning_rate=0)

    def test_vocab_mismatch(self):
        bad_cfg = ModelConfig(
            d_model=8, num_heads=1, d_ff=16, num_encoders=1,
            num_decoders=1, vocab_size=5,
        )
        with pytest.raises(ValueError):
            Trainer(TrainableTransformer(bad_cfg), VOCAB, make_feature_fn())

    def test_empty_corpus_rejected(self):
        model = TrainableTransformer(TOY, seed=0)
        trainer = Trainer(model, VOCAB, make_feature_fn())
        with pytest.raises(ValueError):
            trainer.train([])
        with pytest.raises(ValueError):
            trainer.evaluate_wer([])


class TestEarlyStopping:
    def test_stops_before_epoch_budget(self, tiny_corpus):
        model = TrainableTransformer(TOY, seed=3)
        trainer = Trainer(
            model,
            VOCAB,
            make_feature_fn(),
            TrainingConfig(
                epochs=200,
                learning_rate=3e-3,
                early_stop_patience=5,
                early_stop_delta=1e-3,
            ),
        )
        history = trainer.train(tiny_corpus)
        assert len(history) < 200

    def test_patience_zero_runs_full_budget(self, tiny_corpus):
        model = TrainableTransformer(TOY, seed=3)
        trainer = Trainer(
            model, VOCAB, make_feature_fn(), TrainingConfig(epochs=5)
        )
        assert len(trainer.train(tiny_corpus)) == 5

    def test_config_validation(self):
        with pytest.raises(ValueError):
            TrainingConfig(early_stop_patience=-1)
        with pytest.raises(ValueError):
            TrainingConfig(early_stop_delta=-0.5)
