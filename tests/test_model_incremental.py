"""Tests: the KV-cached incremental decoder must match the full
teacher-forced decoder exactly (same ops per position)."""

import numpy as np
import pytest

from repro.decoding.greedy import greedy_decode
from repro.model.incremental import IncrementalDecoder
from repro.model.transformer import Transformer

RTOL = 1e-4
ATOL = 1e-5


@pytest.fixture(scope="module")
def setup(small_params):
    rng = np.random.default_rng(3)
    feats = rng.standard_normal((9, 512)).astype(np.float32)
    ref = Transformer(small_params)
    memory = ref.encode(feats)
    return small_params, ref, feats, memory


class TestIncrementalEquality:
    def test_stepwise_matches_full_recompute(self, setup):
        params, ref, feats, memory = setup
        tokens = [0, 4, 9, 2, 7]
        inc = IncrementalDecoder(params, memory)
        for t in range(1, len(tokens) + 1):
            prefix = np.asarray(tokens[:t])
            full_lp = ref.log_probs(feats, prefix)[-1]
            inc_lp = inc.step(tokens[t - 1])
            np.testing.assert_allclose(inc_lp, full_lp, rtol=RTOL, atol=ATOL)

    def test_greedy_decode_identical(self, setup):
        params, ref, feats, memory = setup

        def full_step(tokens):
            return ref.log_probs(feats, tokens)[-1]

        inc = IncrementalDecoder(params, memory)
        out_full = greedy_decode(full_step, sos_id=0, eos_id=1, max_len=6)
        out_inc = greedy_decode(inc.step_fn(), sos_id=0, eos_id=1, max_len=6)
        np.testing.assert_array_equal(out_full, out_inc)

    def test_length_tracks_steps(self, setup):
        params, _, _, memory = setup
        inc = IncrementalDecoder(params, memory)
        assert inc.length == 0
        inc.step(0)
        inc.step(3)
        assert inc.length == 2

    def test_step_fn_requires_growth(self, setup):
        params, _, _, memory = setup
        inc = IncrementalDecoder(params, memory)
        step = inc.step_fn()
        step(np.array([0, 2]))
        with pytest.raises(ValueError):
            step(np.array([0, 2]))  # same length again

    def test_token_validation(self, setup):
        params, _, _, memory = setup
        inc = IncrementalDecoder(params, memory)
        with pytest.raises(ValueError):
            inc.step(10**6)

    def test_memory_validation(self, setup):
        params, _, _, _ = setup
        with pytest.raises(ValueError):
            IncrementalDecoder(params, np.zeros((4, 7)))


class TestIncrementalIsFaster:
    def test_fewer_flops_asymptotically(self, setup):
        """The cached path touches O(1) rows per step; sanity-check by
        timing a longer decode (generously, 1.5x faster at t=24)."""
        import time

        params, ref, feats, memory = setup

        def time_it(fn):
            start = time.perf_counter()
            fn()
            return time.perf_counter() - start

        tokens = list(np.random.default_rng(0).integers(0, 30, size=24))

        def run_full():
            for t in range(1, len(tokens) + 1):
                ref.log_probs(feats, np.asarray(tokens[:t]))

        def run_inc():
            inc = IncrementalDecoder(params, memory)
            for tok in tokens:
                inc.step(int(tok))

        full_t = time_it(run_full)
        inc_t = time_it(run_inc)
        assert inc_t < full_t
