"""Scenario runner, snapshot round-trip, and bottleneck attribution."""

import math

import pytest

from repro.bench import (
    SNAPSHOT_SCHEMA,
    Scenario,
    build_attribution_report,
    build_snapshot,
    compare_snapshots,
    default_scenarios,
    latest_snapshot_path,
    load_snapshot,
    next_snapshot_path,
    run_scenario,
    run_suite,
    write_snapshot,
)
from repro.bench import scenarios as scenarios_mod
from repro.hw.controller import LatencyModel


class TestScenarioDeclarations:
    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="unknown scenario kind"):
            Scenario("x", "no_such_kind")

    def test_repeats_must_be_positive(self):
        with pytest.raises(ValueError):
            Scenario("x", "arch_sweep", repeats=0)

    def test_default_suite_names_are_unique_and_cover_archs(self):
        suite = default_scenarios()
        names = [s.name for s in suite]
        assert len(set(names)) == len(names)
        for arch in ("a1", "a2", "a3"):
            assert any(f"sweep_{arch}" in n for n in names)
        kinds = {s.kind for s in suite}
        assert {"arch_sweep", "encoder_prefill", "kv_decode",
                "e2e_transcribe", "streaming"} <= kinds

    def test_quick_suite_is_single_repeat_and_model_only(self):
        suite = default_scenarios(quick=True)
        assert all(s.repeats == 1 for s in suite)
        assert {s.kind for s in suite} == {
            "arch_sweep", "encoder_prefill", "kv_decode", "serving_load"
        }


class TestScenarioRunner:
    def test_arch_sweep_matches_latency_model(self):
        result = run_scenario(
            Scenario("s", "arch_sweep", {"arch": "A3", "s": 8}, repeats=2)
        )
        report = LatencyModel().latency_report(8, "A3")
        assert result.cycles["total_cycles"] == report.total_cycles
        assert result.cycles["stall_cycles"] == report.schedule.stall_cycles
        assert len(result.wall.samples) == 2
        assert result.wall.invalid == 0
        assert math.isfinite(result.wall.median)

    def test_encoder_prefill_accounts_are_consistent(self):
        result = run_scenario(
            Scenario("p", "encoder_prefill", {"arch": "A3", "s": 8})
        )
        # Per-channel HBM bytes total the program's load bytes, and the
        # trace makespan equals the schedule total (same scheduling pass).
        channel_bytes = sum(
            v for k, v in result.cycles.items() if k.startswith("hbm_bytes_ch")
        )
        assert channel_bytes == result.cycles["load_bytes"]
        assert (result.cycles["trace_makespan_cycles"]
                == result.cycles["schedule_total_cycles"])

    def test_kv_decode_is_data_free_and_deterministic(self):
        a = run_scenario(Scenario("d", "kv_decode", {"num_tokens": 3, "s": 8}))
        b = run_scenario(Scenario("d", "kv_decode", {"num_tokens": 3, "s": 8}))
        assert a.cycles == b.cycles

    def test_nondeterministic_cycles_are_rejected(self, monkeypatch):
        calls = {"n": 0}

        def flaky(params, session):
            calls["n"] += 1
            return {"cycles": float(calls["n"])}, {}

        monkeypatch.setitem(scenarios_mod.RUNNERS, "flaky", flaky)
        with pytest.raises(RuntimeError, match="nondeterministic"):
            run_scenario(Scenario("f", "flaky", repeats=2))

    def test_duplicate_scenario_names_rejected(self):
        dup = Scenario("same", "arch_sweep", {"s": 4})
        with pytest.raises(ValueError, match="unique"):
            run_suite([dup, dup])

    def test_traced_runners_embed_a_conservative_profile(self):
        from repro.obs.diffprof import RunProfile

        result = run_scenario(
            Scenario("s", "arch_sweep", {"arch": "A3", "s": 8}, repeats=2)
        )
        prof = RunProfile.from_dict(result.profile)  # verifies conservation
        # The profile captures the scheduled pass; total_cycles adds
        # the host IO transfers on top of it.
        assert prof.makespan == result.cycles["schedule_cycles"]
        assert prof.makespan < result.cycles["total_cycles"]
        assert prof.architecture == "A3"

    def test_untraced_runners_carry_no_profile(self):
        result = run_scenario(
            Scenario("d", "kv_decode", {"num_tokens": 3, "s": 8})
        )
        assert result.profile is None

    def test_nondeterministic_profile_is_rejected(self, monkeypatch):
        calls = {"n": 0}

        def flaky(params, session):
            calls["n"] += 1
            return {"cycles": 1.0}, {}, {"wobble": calls["n"]}

        monkeypatch.setitem(scenarios_mod.RUNNERS, "flaky", flaky)
        with pytest.raises(RuntimeError, match="nondeterministic run profile"):
            run_scenario(Scenario("f", "flaky", repeats=2))


class TestSnapshotRoundTrip:
    def test_quick_suite_snapshot_roundtrip(self, tmp_path):
        results = run_suite(default_scenarios(quick=True))
        snapshot = build_snapshot(results, config={"quick": True})
        assert snapshot["schema"] == SNAPSHOT_SCHEMA
        assert snapshot["env"]["python"]
        path = write_snapshot(snapshot, tmp_path)
        assert path.name == "BENCH_1.json"
        loaded = load_snapshot(path)
        assert loaded["scenarios"].keys() == snapshot["scenarios"].keys()
        # A snapshot always passes against itself.
        assert compare_snapshots(loaded, snapshot).passed
        # Traced scenarios embed their run profile; the self-diff of
        # the round-tripped snapshot is empty.
        from repro.bench.delta import diff_snapshots

        embedded = [
            name for name, sc in loaded["scenarios"].items()
            if "profile" in sc
        ]
        assert embedded  # the quick suite traces the arch sweep
        assert not diff_snapshots(loaded, snapshot).changed

    def test_snapshot_numbering_monotonic(self, tmp_path):
        (tmp_path / "BENCH_3.json").write_text("{}")
        (tmp_path / "BENCH_10.json").write_text("{}")
        assert next_snapshot_path(tmp_path).name == "BENCH_11.json"
        assert latest_snapshot_path(tmp_path).name == "BENCH_10.json"

    def test_latest_of_empty_dir_is_none(self, tmp_path):
        assert latest_snapshot_path(tmp_path) is None


class TestAttribution:
    def test_crossover_matches_fig_5_2(self):
        report = build_attribution_report(s=32)
        # Fig 5.2: compute exceeds load for s > 18 (model says 19); at
        # the deployed s=32 every block runs compute-bound.
        assert report.crossover_s == 19
        assert report.block_bound("enc1") == "compute"
        assert not report.load_bound_blocks

    def test_short_sequences_are_load_bound(self):
        report = build_attribution_report(s=8)
        assert report.block_bound("enc1") == "load"
        assert report.compute_bound_blocks == []
        assert all(b.ratio > 1 for b in report.blocks)

    def test_a3_splits_decoders_a1_merges_them(self):
        a3 = build_attribution_report(s=16, architecture="A3")
        a1 = build_attribution_report(s=16, architecture="A1")
        a3_labels = {b.label for b in a3.blocks}
        a1_labels = {b.label for b in a1.blocks}
        assert "dec1m" in a3_labels and "dec1f" in a3_labels
        assert "dec1" in a1_labels and "dec1m" not in a1_labels

    def test_roofline_rows_cover_mm1_to_mm6(self):
        report = build_attribution_report(s=32)
        names = [m.name for m in report.matmuls]
        assert names == ["MM1", "MM2", "MM3", "MM4", "MM5", "MM6"]
        by_name = {m.name: m for m in report.matmuls}
        # §4.2: weight matmuls are memory-bound (intensity scales with
        # s/2 FLOP per weight byte, far below the ridge).
        for name in ("MM1", "MM4", "MM5", "MM6"):
            mm = by_name[name]
            assert mm.bound == "memory"
            assert mm.intensity == pytest.approx(32 / 2)
            assert mm.attainable_gflops == pytest.approx(
                report.roofline.bandwidth_gbps * mm.intensity
            )
        # MM2/MM3 multiply on-chip activations: no HBM traffic.
        for name in ("MM2", "MM3"):
            assert by_name[name].bound == "on-chip"
            assert by_name[name].hbm_bytes == 0
            assert by_name[name].intensity is None

    def test_report_text_names_crossover_and_bounds(self):
        text = build_attribution_report(s=32).format()
        assert "s = 19" in text
        assert "compute-bound" in text
        assert "MM6" in text and "ridge" in text

    def test_invalid_s_rejected(self):
        with pytest.raises(ValueError):
            build_attribution_report(s=0)
