"""Tests for elementary ops, layer norm and masks."""

import numpy as np
import pytest

from repro.model.layernorm import add_norm, layer_norm
from repro.model.masks import (
    NEG_INF,
    apply_mask,
    causal_mask,
    combine_masks,
    padding_mask,
)
from repro.model.ops import linear, log_softmax, relu, softmax


class TestLinear:
    def test_matches_numpy(self, rng):
        x = rng.standard_normal((3, 4))
        w = rng.standard_normal((4, 5))
        b = rng.standard_normal(5)
        np.testing.assert_allclose(linear(x, w, b), x @ w + b)

    def test_no_bias(self, rng):
        x = rng.standard_normal((3, 4))
        w = rng.standard_normal((4, 5))
        np.testing.assert_allclose(linear(x, w), x @ w)

    def test_dim_mismatch(self):
        with pytest.raises(ValueError):
            linear(np.zeros((3, 4)), np.zeros((5, 6)))

    def test_bad_bias_shape(self):
        with pytest.raises(ValueError):
            linear(np.zeros((3, 4)), np.zeros((4, 5)), np.zeros(4))


class TestActivations:
    def test_relu(self):
        np.testing.assert_array_equal(
            relu(np.array([-1.0, 0.0, 2.0])), [0.0, 0.0, 2.0]
        )

    def test_softmax_sums_to_one(self, rng):
        x = rng.standard_normal((4, 7))
        np.testing.assert_allclose(softmax(x).sum(axis=-1), 1.0, rtol=1e-12)

    def test_softmax_stability(self):
        x = np.array([1e4, 1e4 + 1.0])
        out = softmax(x)
        assert np.all(np.isfinite(out))
        assert out[1] > out[0]

    def test_softmax_shift_invariance(self, rng):
        x = rng.standard_normal(10)
        np.testing.assert_allclose(softmax(x), softmax(x + 100.0), rtol=1e-10)

    def test_log_softmax_consistent(self, rng):
        x = rng.standard_normal((3, 5))
        np.testing.assert_allclose(
            np.exp(log_softmax(x)), softmax(x), rtol=1e-10
        )


class TestLayerNorm:
    def test_zero_mean_unit_var(self, rng):
        x = rng.standard_normal((4, 16)) * 3 + 2
        out = layer_norm(x, np.ones(16), np.zeros(16))
        np.testing.assert_allclose(out.mean(axis=-1), 0.0, atol=1e-10)
        np.testing.assert_allclose(out.std(axis=-1), 1.0, atol=1e-6)

    def test_affine_params(self, rng):
        x = rng.standard_normal((2, 8))
        w = np.full(8, 2.0)
        b = np.full(8, -1.0)
        base = layer_norm(x, np.ones(8), np.zeros(8))
        np.testing.assert_allclose(layer_norm(x, w, b), 2 * base - 1, rtol=1e-12)

    def test_shape_validation(self):
        with pytest.raises(ValueError):
            layer_norm(np.zeros((2, 8)), np.ones(4), np.zeros(8))

    def test_add_norm_includes_residual(self, rng):
        a = rng.standard_normal((3, 8))
        b = rng.standard_normal((3, 8))
        w, bias = np.ones(8), np.zeros(8)
        np.testing.assert_allclose(
            add_norm(a, b, w, bias), layer_norm(a + b, w, bias)
        )

    def test_add_norm_shape_mismatch(self):
        with pytest.raises(ValueError):
            add_norm(np.zeros((2, 8)), np.zeros((3, 8)), np.ones(8), np.zeros(8))


class TestMasks:
    def test_causal_lower_triangular(self):
        m = causal_mask(4)
        assert m[0, 0] and not m[0, 1]
        assert np.all(m == np.tril(np.ones((4, 4), dtype=bool)))

    def test_causal_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            causal_mask(0)

    def test_padding_mask(self):
        m = padding_mask([2, 0, 3], 3)
        np.testing.assert_array_equal(
            m, [[True, True, False], [False, False, False], [True, True, True]]
        )

    def test_padding_mask_rejects_overlong(self):
        with pytest.raises(ValueError):
            padding_mask([5], 3)

    def test_combine_masks(self):
        a = causal_mask(3)
        b = padding_mask([2], 3)  # (1, 3) broadcast
        combined = combine_masks(a, b)
        assert combined[2, 2] == False  # noqa: E712  (padded key)
        assert combined[1, 0] == True  # noqa: E712

    def test_combine_none(self):
        assert combine_masks(None, None) is None
        m = causal_mask(2)
        np.testing.assert_array_equal(combine_masks(None, m), m)

    def test_apply_mask(self):
        scores = np.zeros((2, 2))
        masked = apply_mask(scores, np.array([[True, False], [True, True]]))
        assert masked[0, 1] == NEG_INF
        assert masked[0, 0] == 0.0

    def test_apply_mask_none(self):
        scores = np.ones((2, 2))
        assert apply_mask(scores, None) is scores

    def test_apply_mask_bad_broadcast(self):
        with pytest.raises(ValueError):
            apply_mask(np.zeros((2, 3)), np.zeros((4, 5), dtype=bool))

    def test_masked_softmax_zeroes_blocked(self):
        scores = np.zeros((1, 4))
        mask = np.array([[True, True, False, False]])
        w = softmax(apply_mask(scores, mask))
        np.testing.assert_allclose(w[0, 2:], 0.0, atol=1e-12)
        np.testing.assert_allclose(w[0, :2], 0.5, rtol=1e-9)
