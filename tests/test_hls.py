"""Tests for the miniature HLS scheduling model and Algorithm 1."""

import pytest

from repro.hls.designs import matmul_nest, psa_design_report
from repro.hls.ir import Array, Loop, Op, Partition, Region
from repro.hls.schedule import schedule_loop, schedule_region


def _op(**kw):
    defaults = dict(name="op", latency=1)
    defaults.update(kw)
    return Op(**defaults)


class TestIrValidation:
    def test_loop_needs_body(self):
        with pytest.raises(ValueError):
            Loop("empty", trip=4)

    def test_pipelined_loop_rejects_children(self):
        inner = Loop("inner", trip=2, body_ops=(_op(),))
        with pytest.raises(ValueError):
            Loop("outer", trip=4, children=(inner,), pipeline_ii=1)

    def test_bad_trip(self):
        with pytest.raises(ValueError):
            Loop("l", trip=0, body_ops=(_op(),))

    def test_array_validation(self):
        with pytest.raises(ValueError):
            Array("a", depth=0)
        with pytest.raises(ValueError):
            Array("a", depth=4, factor=2)  # NONE partition, factor > 1

    def test_unique_array_names(self):
        loop = Loop("l", trip=1, body_ops=(_op(),))
        with pytest.raises(ValueError):
            Region("r", arrays=(Array("a", 4), Array("a", 4)), loops=(loop,))

    def test_op_copies_validation(self):
        with pytest.raises(ValueError):
            Op("mac", copies=0)


class TestScheduling:
    def test_pipelined_loop_latency(self):
        loop = Loop("k", trip=100, body_ops=(_op(latency=8),), pipeline_ii=1)
        report = schedule_loop(loop)
        assert report.latency == 8 + 99  # depth + II*(trip-1)
        assert report.achieved_ii == 1

    def test_rolled_loop_latency(self):
        loop = Loop("k", trip=10, body_ops=(_op(latency=5),))
        report = schedule_loop(loop)
        assert report.latency == 10 * 6  # (body + control) per iter

    def test_unroll_cuts_trips_and_multiplies_resources(self):
        loop = Loop(
            "k", trip=16, body_ops=(_op(latency=1, dsp=1),), unroll=4
        )
        report = schedule_loop(loop)
        assert report.latency == 4 * 2
        assert report.resources.dsp == 4

    def test_copies_multiply_resources_not_depth(self):
        loop = Loop(
            "k", trip=10,
            body_ops=(_op(latency=8, dsp=1, copies=64),),
            pipeline_ii=1,
        )
        report = schedule_loop(loop)
        assert report.resources.dsp == 64
        assert report.latency == 8 + 9

    def test_port_pressure_raises_ii(self):
        arrays = (Array("buf", depth=64),)  # dual-port BRAM
        loop = Loop(
            "k", trip=100,
            body_ops=(_op(latency=2, reads=("buf",), copies=8),),
            pipeline_ii=1,
        )
        report = schedule_loop(loop, arrays)
        assert report.achieved_ii == 4  # 8 accesses / 2 ports
        assert report.port_bounds == {"buf": 4}

    def test_complete_partition_removes_bound(self):
        arrays = (Array("buf", depth=64, partition=Partition.COMPLETE),)
        loop = Loop(
            "k", trip=100,
            body_ops=(_op(latency=2, reads=("buf",), copies=8),),
            pipeline_ii=1,
        )
        assert schedule_loop(loop, arrays).achieved_ii == 1

    def test_cyclic_partition_scales_ports(self):
        arrays = (
            Array("buf", depth=64, partition=Partition.CYCLIC, factor=4),
        )
        loop = Loop(
            "k", trip=100,
            body_ops=(_op(latency=2, reads=("buf",), copies=8),),
            pipeline_ii=1,
        )
        assert schedule_loop(loop, arrays).achieved_ii == 1  # 8 ports

    def test_dataflow_region_takes_max(self):
        a = Loop("a", trip=100, body_ops=(_op(),), pipeline_ii=1)
        b = Loop("b", trip=10, body_ops=(_op(),), pipeline_ii=1)
        seq = Region("seq", loops=(a, b))
        par = Region("par", loops=(a, b), dataflow=True)
        assert schedule_region(seq).latency > schedule_region(par).latency
        assert schedule_region(par).latency == schedule_region(
            Region("only_a", loops=(a,))
        ).latency


class TestAlgorithm1:
    def test_tracks_analytic_psa_model(self):
        """The HLS schedule of Algorithm 1 must agree with the
        simulator's SystolicArray cycle model up to loop overhead."""
        for point in psa_design_report():
            assert point.latency == pytest.approx(
                point.analytic_cycles, rel=0.10
            )
            assert point.latency >= point.analytic_cycles  # overhead adds

    def test_partial_unroll_tradeoff(self):
        """Section 4.4: 2-row unroll is ~16x slower than 32-row but
        ~16x cheaper in MAC resources."""
        points = {p.row_unroll: p for p in psa_design_report()}
        ratio_latency = points[2].latency / points[32].latency
        ratio_dsp = points[32].dsp / points[2].dsp
        assert 10 < ratio_latency <= 16.5
        assert ratio_dsp == pytest.approx(16.0)

    def test_partition_pragma_is_load_bearing(self):
        """Dropping ARRAY_PARTITION wrecks the pipeline (the trap the
        paper's Section 2.2.6 pragma discussion is about)."""
        good = schedule_region(matmul_nest(32, 64, 64, partitioned=True))
        bad = schedule_region(matmul_nest(32, 64, 64, partitioned=False))
        assert bad.latency > 50 * good.latency
        assert bad.port_bounds  # the report names the guilty arrays

    def test_matches_deployed_psa_resources(self):
        """The 2x64 design point's MAC resources equal the per-PSA
        share of the fitted Table 5.2 model (128 PEs)."""
        region = matmul_nest(32, 64, 64, row_unroll=2, col_unroll=64)
        report = schedule_region(region)
        assert report.resources.dsp == 128  # 2 x 64 PEs x 1 DSP
        assert report.resources.lut == 128 * 640

    def test_dimension_validation(self):
        with pytest.raises(ValueError):
            matmul_nest(0, 4, 4)
        with pytest.raises(ValueError):
            matmul_nest(4, 4, 4, row_unroll=0)
