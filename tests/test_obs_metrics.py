"""Tests for the telemetry core: registry, instruments, spans, and the
session context manager."""

import math
import threading

import pytest

from repro import obs
from repro.obs.metrics import (
    METRIC_HELP,
    NULL_REGISTRY,
    Histogram,
    MetricsRegistry,
)
from repro.obs.spans import NULL_TRACER, Tracer


class TestCounter:
    def test_starts_at_zero_and_accumulates(self):
        reg = MetricsRegistry()
        c = reg.counter("repro.test.hits")
        assert c.value == 0.0
        c.inc()
        c.inc(2.5)
        assert c.value == 3.5

    def test_rejects_negative_increment(self):
        c = MetricsRegistry().counter("repro.test.hits")
        with pytest.raises(ValueError):
            c.inc(-1)

    def test_same_name_same_instrument(self):
        reg = MetricsRegistry()
        assert reg.counter("repro.test.hits") is reg.counter("repro.test.hits")

    def test_labels_separate_series(self):
        reg = MetricsRegistry()
        reg.counter("repro.test.ops", kind="load").inc()
        reg.counter("repro.test.ops", kind="matmul").inc(3)
        assert reg.value("repro.test.ops", kind="load") == 1
        assert reg.value("repro.test.ops", kind="matmul") == 3


class TestGauge:
    def test_set_and_add(self):
        g = MetricsRegistry().gauge("repro.test.depth")
        g.set(5)
        g.add(-2)
        assert g.value == 3.0


class TestHistogram:
    def test_observations_land_in_buckets(self):
        h = Histogram("repro.test.ms", buckets=(1.0, 10.0, 100.0))
        for v in (0.5, 5.0, 50.0, 500.0):
            h.observe(v)
        assert h.count == 4
        assert h.sum == pytest.approx(555.5)
        cumulative = h.cumulative_buckets()
        assert cumulative == [(1.0, 1), (10.0, 2), (100.0, 3), (math.inf, 4)]

    def test_boundary_value_is_le(self):
        # Prometheus buckets are <= upper bound.
        h = Histogram("repro.test.ms", buckets=(1.0, 10.0))
        h.observe(10.0)
        assert h.cumulative_buckets()[1] == (10.0, 1)

    def test_rejects_bad_buckets(self):
        with pytest.raises(ValueError):
            Histogram("repro.test.ms", buckets=())
        with pytest.raises(ValueError):
            Histogram("repro.test.ms", buckets=(5.0, 1.0))
        with pytest.raises(ValueError):
            Histogram("repro.test.ms", buckets=(1.0, math.inf))


class TestHistogramQuantile:
    def test_empty_histogram_is_nan(self):
        h = Histogram("repro.test.ms", buckets=(1.0, 10.0))
        assert math.isnan(h.quantile(0.5))

    def test_interpolates_inside_bucket(self):
        # Four observations, all in the (0, 10] bucket: Prometheus-style
        # linear interpolation puts the median halfway through it.
        h = Histogram("repro.test.ms", buckets=(10.0, 100.0))
        for v in (1.0, 2.0, 3.0, 4.0):
            h.observe(v)
        assert h.quantile(0.5) == pytest.approx(5.0)
        assert h.quantile(1.0) == pytest.approx(10.0)

    def test_lower_edge_uses_previous_bound(self):
        h = Histogram("repro.test.ms", buckets=(1.0, 10.0))
        h.observe(0.5)   # (0, 1]
        h.observe(5.0)   # (1, 10]
        # p75: rank 1.5 lands halfway into the second bucket.
        assert h.quantile(0.75) == pytest.approx(1.0 + 9.0 * 0.5)

    def test_overflow_bucket_clamps_to_last_bound(self):
        h = Histogram("repro.test.ms", buckets=(1.0, 10.0))
        h.observe(500.0)
        assert h.quantile(0.99) == 10.0

    def test_rejects_out_of_range_q(self):
        h = Histogram("repro.test.ms", buckets=(1.0,))
        with pytest.raises(ValueError):
            h.quantile(-0.1)
        with pytest.raises(ValueError):
            h.quantile(1.5)

    def test_as_dict_exposes_standard_quantiles(self):
        reg = MetricsRegistry()
        h = reg.histogram("repro.test.ms", buckets=(1.0, 10.0))
        for v in (0.5, 2.0, 3.0):
            h.observe(v)
        entry = reg.as_dict()["repro.test.ms"]
        assert set(entry["quantiles"]) == {"p50", "p95", "p99"}
        assert entry["quantiles"]["p50"] == pytest.approx(h.quantile(0.5))

    def test_null_histogram_quantile_is_zero(self):
        assert NULL_REGISTRY.histogram("repro.test.ms").quantile(0.99) == 0.0


class TestRegistry:
    def test_rejects_malformed_names(self):
        reg = MetricsRegistry()
        for bad in ("Repro.x", "repro..x", "repro.x-", "1repro", ""):
            with pytest.raises(ValueError):
                reg.counter(bad)

    def test_type_collision_rejected(self):
        reg = MetricsRegistry()
        reg.counter("repro.test.x")
        with pytest.raises(ValueError):
            reg.gauge("repro.test.x")

    def test_collect_is_sorted_and_stable(self):
        reg = MetricsRegistry()
        reg.counter("repro.z")
        reg.counter("repro.a")
        assert [i.name for i in reg.collect()] == ["repro.a", "repro.z"]

    def test_as_dict_renders_labels_and_histograms(self):
        reg = MetricsRegistry()
        reg.counter("repro.test.ops", kind="load").inc(2)
        reg.histogram("repro.test.ms", buckets=(1.0,)).observe(0.5)
        d = reg.as_dict()
        assert d["repro.test.ops{kind=load}"] == 2
        assert d["repro.test.ms"]["count"] == 1

    def test_thread_safety_of_counter(self):
        reg = MetricsRegistry()

        def work():
            for _ in range(1000):
                reg.counter("repro.test.hits").inc()

        threads = [threading.Thread(target=work) for _ in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert reg.value("repro.test.hits") == 4000


class TestNullRegistry:
    def test_disabled_and_inert(self):
        assert not NULL_REGISTRY.enabled
        c = NULL_REGISTRY.counter("repro.test.hits")
        c.inc()
        NULL_REGISTRY.gauge("repro.test.depth").set(9)
        NULL_REGISTRY.histogram("repro.test.ms").observe(1.0)
        assert c.value == 0.0
        assert NULL_REGISTRY.collect() == []

    def test_shared_instrument(self):
        a = NULL_REGISTRY.counter("repro.a")
        b = NULL_REGISTRY.gauge("repro.b")
        assert a is b


class TestSpans:
    def test_nesting_depth_and_attrs(self):
        tr = Tracer()
        with tr.span("outer") as outer:
            outer.set(s=32)
            with tr.span("inner"):
                pass
        names = {r.name: r for r in tr.records}
        assert names["outer"].depth == 0
        assert names["inner"].depth == 1
        assert names["outer"].attrs == {"s": 32}
        # children complete (and record) before their parents
        assert [r.name for r in tr.records] == ["inner", "outer"]
        assert names["outer"].duration_us >= names["inner"].duration_us

    def test_null_tracer_records_nothing(self):
        with NULL_TRACER.span("x") as span:
            span.set(a=1)  # must not leak state into the shared span
        with NULL_TRACER.span("y") as span:
            assert span.attrs == {}
        assert NULL_TRACER.records == []

    def test_span_records_failure(self):
        tr = Tracer()
        with pytest.raises(KeyError):
            with tr.span("will.fail", s=32):
                raise KeyError("boom")
        (rec,) = tr.records
        assert rec.attrs["error"] is True
        assert rec.attrs["exc_type"] == "KeyError"
        assert rec.attrs["s"] == 32  # user attrs survive alongside

    def test_span_success_has_no_error_attr(self):
        tr = Tracer()
        with tr.span("fine"):
            pass
        (rec,) = tr.records
        assert "error" not in rec.attrs
        assert "exc_type" not in rec.attrs

    def test_null_tracer_failure_path(self):
        # The exception still propagates and the shared null span stays
        # stateless — no record, no attrs.
        with pytest.raises(ValueError):
            with NULL_TRACER.span("x"):
                raise ValueError("boom")
        assert NULL_TRACER.records == []
        with NULL_TRACER.span("y") as span:
            assert span.attrs == {}


class TestTelemetrySession:
    def test_installs_and_restores_globals(self):
        assert not obs.enabled()
        with obs.telemetry() as session:
            assert obs.enabled()
            assert obs.registry() is session.metrics
            assert obs.tracer() is session.spans
        assert not obs.enabled()
        assert obs.registry() is NULL_REGISTRY

    def test_restores_on_exception(self):
        with pytest.raises(RuntimeError):
            with obs.telemetry():
                raise RuntimeError("boom")
        assert not obs.enabled()

    def test_nested_sessions_restore_outer(self):
        with obs.telemetry() as outer:
            with obs.telemetry() as inner:
                assert obs.registry() is inner.metrics
            assert obs.registry() is outer.metrics


class TestMetricHelpSchema:
    def test_all_names_valid(self):
        reg = MetricsRegistry()
        for name in METRIC_HELP:
            reg.gauge(name)  # raises if any schema name is malformed

    def test_help_strings_non_empty(self):
        assert all(text.strip() for text in METRIC_HELP.values())
