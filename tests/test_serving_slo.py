"""Tests for the serving SLO monitor: the closed goodput boundary,
attainment/error-budget/burn-rate arithmetic, multi-window alerts, and
the per-violation macro-phase + micro-stall-cause drill-down."""

import pytest

import repro.obs as obs
from repro.hw.introspect import STALL_CAUSES
from repro.obs.vtrace import VSampler, VTraceRecorder
from repro.serving import (
    ContinuousBatchingScheduler,
    ModeledExecutor,
    RequestState,
    ServingConfig,
    ServingResult,
    SloObjective,
    SloWindow,
    UtteranceRequest,
    evaluate_slo,
    make_arrival_model,
    meets_slo,
    phase_stall_report,
    render_slo_dashboard,
    synthesize_requests,
)
from repro.serving.request import RequestRecord
from repro.serving.slo import MACRO_PHASES


def _pressured_run(slo_ms=1500.0):
    """The seed-11 poisson run at 8 req/s: known to preempt and to
    produce at least one SLO miss at 1500 ms."""
    config = ServingConfig(s=32, max_batch=4, slo_ms=slo_ms)
    requests = synthesize_requests(
        make_arrival_model("poisson", 8.0, seed=11), 16, seed=11
    )
    vt, sm = VTraceRecorder(), VSampler(cadence_cycles=100_000)
    result = ContinuousBatchingScheduler(config, vtrace=vt, sampler=sm).run(
        requests
    )
    return result, vt, sm


def _synthetic_result(latencies_ms, clock_hz=1.0e6, slo_ms=100.0):
    """A hand-built run: request i completes at virtual second i * 0.5
    with the given end-to-end latency.  Lets the burn/alert arithmetic
    be tested against exact numbers."""
    records, events = [], []
    vt = VTraceRecorder()
    for i, lat in enumerate(latencies_ms):
        finish_s = 0.5 * (i + 1)
        req = UtteranceRequest(i, arrival_s=finish_s - lat / 1e3,
                               decode_tokens=1)
        rec = RequestRecord(request=req, state=RequestState.COMPLETED,
                            admitted_s=req.arrival_s, finished_s=finish_s)
        records.append(rec)
        vt.emit("complete", int(finish_s * clock_hz), i, e2e_ms=lat)
    result = ServingResult(
        config=ServingConfig(s=32, max_batch=4, slo_ms=slo_ms),
        records=records,
        device_end_cycles=int(0.5 * len(latencies_ms) * clock_hz),
        prefill_cycles_total=0, decode_cycles_total=1,
        replay_cycles_total=0, idle_cycles_total=0,
        prefills=0, decode_iterations=0, preemptions=0, replayed_steps=0,
        peak_kv_bytes=0, peak_queue_depth=0, peak_batch=0,
        clock_hz=clock_hz,
    )
    return result, vt


class TestSloBoundary:
    def test_boundary_is_closed(self):
        # Exactly-on-the-objective counts as good: <=, not <.  Pinned
        # because an off-by-one here shifts every goodput curve.
        assert meets_slo(1500.0, 1500.0) is True
        assert meets_slo(1500.0000001, 1500.0) is False

    def test_goodput_counts_exact_boundary_request(self):
        requests = [UtteranceRequest(0, arrival_s=0.001, decode_tokens=4)]
        probe = ContinuousBatchingScheduler(_cfg()).run(list(requests))
        e2e = probe.completed[0].e2e_ms
        at_boundary = ContinuousBatchingScheduler(_cfg(slo_ms=e2e)).run(
            list(requests)
        )
        assert at_boundary.goodput_rps == at_boundary.throughput_rps > 0
        below = ContinuousBatchingScheduler(
            _cfg(slo_ms=e2e * (1 - 1e-9))
        ).run(list(requests))
        assert below.goodput_rps == 0.0

    def test_attainment_counts_exact_boundary_completion(self):
        result, vt = _synthetic_result([100.0, 100.0])
        report = evaluate_slo(result, vt.events,
                              SloObjective(latency_ms=100.0, target=0.5))
        assert report.attainment == 1.0
        assert report.violations == []


def _cfg(**kw):
    defaults = dict(s=32, max_batch=4, slo_ms=1e9)
    defaults.update(kw)
    return ServingConfig(**defaults)


class TestSloArithmetic:
    def test_attainment_and_error_budget(self):
        # 8 good, 2 bad at target 0.8 -> attainment 0.8, budget exactly
        # consumed (2 misses allowed, 2 spent).
        result, vt = _synthetic_result([50.0] * 8 + [200.0] * 2)
        report = evaluate_slo(result, vt.events,
                              SloObjective(latency_ms=100.0, target=0.8))
        assert report.total == 10 and report.good == 8
        assert report.attainment == pytest.approx(0.8)
        assert report.error_budget_consumed == pytest.approx(1.0)

    def test_empty_run_is_vacuously_attained(self):
        result, vt = _synthetic_result([50.0])
        report = evaluate_slo(result, [], SloObjective(latency_ms=100.0))
        assert report.total == 0
        assert report.attainment == 1.0
        assert report.error_budget_consumed == 0.0
        assert report.alerts == []

    def test_alert_fires_once_on_rising_edge(self):
        # Every completion misses: burn = 1/(1-0.9) = 10x in every
        # window from the first completion on -> exactly one alert
        # (rising edge), carried back into the recorder's event stream.
        result, vt = _synthetic_result([500.0] * 6)
        report = evaluate_slo(
            result, vt.events,
            SloObjective(latency_ms=100.0, target=0.9), recorder=vt,
        )
        assert len(report.alerts) == 1
        assert report.alerts[0].burn["fast"] == pytest.approx(10.0)
        slo_events = [e for e in vt.events if e.kind == "slo_alert"]
        assert len(slo_events) == 1
        assert slo_events[0].cycle == report.alerts[0].cycle

    def test_no_alert_when_within_budget(self):
        result, vt = _synthetic_result([50.0] * 10)
        report = evaluate_slo(result, vt.events,
                              SloObjective(latency_ms=100.0, target=0.9))
        assert report.alerts == []
        assert all(v == 0.0 for v in report.burn.values())

    def test_all_windows_must_agree(self):
        # A miss burst older than the fast window but inside the slow
        # one: the slow window still burns, the fast one has recovered,
        # so no alert fires at the later completions.
        result, vt = _synthetic_result(
            [500.0, 500.0] + [50.0] * 8,
            slo_ms=100.0,
        )
        objective = SloObjective(
            latency_ms=100.0, target=0.9,
            windows=(SloWindow("fast", 1.0, 4.0),
                     SloWindow("slow", 60.0, 2.0)),
        )
        report = evaluate_slo(result, vt.events, objective)
        # the opening burst alerts once; recovery never re-alerts
        assert len(report.alerts) == 1
        assert report.alerts[0].cycle == vt.events[0].cycle

    def test_attainment_series_is_rolling(self):
        result, vt = _synthetic_result([500.0, 50.0, 50.0])
        report = evaluate_slo(result, vt.events,
                              SloObjective(latency_ms=100.0, target=0.5))
        assert [round(v, 3) for _, v in report.attainment_series] == [
            0.0, 0.5, pytest.approx(0.667, abs=1e-3)
        ]

    def test_objective_validation(self):
        with pytest.raises(ValueError):
            SloObjective(latency_ms=0.0)
        with pytest.raises(ValueError):
            SloObjective(latency_ms=100.0, target=1.0)
        with pytest.raises(ValueError):
            SloObjective(latency_ms=100.0, windows=())
        with pytest.raises(ValueError):
            SloWindow("w", window_s=0.0, burn_threshold=1.0)


class TestViolationDrilldown:
    def test_names_phase_and_stall_cause(self):
        result, vt, _ = _pressured_run(slo_ms=1500.0)
        report = evaluate_slo(
            result, vt.events, SloObjective(latency_ms=1500.0, target=0.9)
        )
        assert report.violations, "expected at least one SLO miss"
        for v in report.violations:
            assert v.macro in MACRO_PHASES
            assert v.micro == "none" or v.micro in STALL_CAUSES
            assert v.stall_program.startswith(("full_pass", "decode_step"))
            assert v.e2e_ms > 1500.0
            # phase decomposition covers the whole latency
            assert sum(v.phase_ms.values()) == pytest.approx(
                v.e2e_ms, rel=1e-6
            )

    def test_phase_stall_report_matches_analysis_labels(self):
        lm = ModeledExecutor(_cfg()).lm
        label, report = phase_stall_report(lm, "prefill", 32, "A3")
        assert label == "full_pass(s=32)"
        report.verify_conservation()
        label, _ = phase_stall_report(lm, "decode", 32, "A3")
        assert label == "decode_step(t=16, s=32)"
        with pytest.raises(ValueError):
            phase_stall_report(lm, "queueing", 32, "A3")

    def test_metrics_emitted_when_telemetry_enabled(self):
        result, vt, _ = _pressured_run(slo_ms=1500.0)
        with obs.telemetry() as session:
            report = evaluate_slo(
                result, vt.events,
                SloObjective(latency_ms=1500.0, target=0.9),
            )
        values = session.metrics.as_dict()
        assert values["repro.serving.slo.attainment"] == pytest.approx(
            report.attainment
        )
        assert values["repro.serving.slo.violations"] == report.violated
        assert 'repro.serving.slo.burn_rate{window=fast}' in values

    def test_dashboard_renders(self):
        result, vt, _ = _pressured_run(slo_ms=1500.0)
        report = evaluate_slo(
            result, vt.events, SloObjective(latency_ms=1500.0, target=0.9)
        )
        text = render_slo_dashboard(report)
        assert "attainment" in text and "burn[fast" in text
        assert report.violations[0].macro in text

    def test_report_as_dict_round_trips(self):
        import json

        result, vt, _ = _pressured_run()
        report = evaluate_slo(
            result, vt.events, SloObjective(latency_ms=1500.0, target=0.9)
        )
        payload = json.loads(json.dumps(report.as_dict()))
        assert payload["total"] == report.total
        assert payload["objective"]["target"] == 0.9


class TestRejection:
    def _budgeted(self, reject):
        ex = ModeledExecutor(_cfg())
        budget = ex.resident_bytes(8)
        config = _cfg(kv_budget_bytes=budget, reject_oversized=reject)
        requests = [
            UtteranceRequest(0, 0.001, decode_tokens=4),
            UtteranceRequest(1, 0.002, decode_tokens=16),  # cannot ever fit
        ]
        return config, requests

    def test_raises_without_reject_oversized(self):
        config, requests = self._budgeted(reject=False)
        with pytest.raises(ValueError, match="cannot hold even one"):
            ContinuousBatchingScheduler(config).run(requests)

    def test_rejects_and_completes_the_rest(self):
        config, requests = self._budgeted(reject=True)
        vt = VTraceRecorder()
        result = ContinuousBatchingScheduler(config, vtrace=vt).run(requests)
        assert result.rejections == 1
        assert result.records[1].state is RequestState.REJECTED
        assert result.records[0].state is RequestState.COMPLETED
        (reject,) = [e for e in vt.events if e.kind == "reject"]
        assert reject.request_id == 1
        assert reject.attrs["needed_bytes"] > reject.attrs["kv_budget_bytes"]
