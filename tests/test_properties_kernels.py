"""Property-based tests on the MM kernels, quantization and the
OpenCL runtime — the invariants that must hold for *any* shapes."""

import numpy as np
import pytest
from hypothesis import assume, given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.hw.kernels import Fabric, mm1, mm2, mm3, mm4
from repro.quant.schemes import INT8, INT16, dequantize, quantize_symmetric

FABRIC = Fabric()
SMALL = st.floats(min_value=-4, max_value=4, allow_nan=False, allow_infinity=False)


def _arr(shape):
    return arrays(np.float32, shape, elements=SMALL)


class TestKernelFunctionalProperties:
    @given(st.integers(1, 24), st.data())
    @settings(max_examples=25, deadline=None)
    def test_mm1_equals_plain_matmul(self, s, data):
        x = data.draw(_arr((s, 512)))
        w = data.draw(_arr((512, 64)))
        res = mm1(FABRIC, x, w)
        np.testing.assert_allclose(
            res.output, x @ w, rtol=2e-3, atol=2e-3
        )
        assert res.cycles > 0

    @given(st.integers(1, 32), st.integers(1, 32), st.data())
    @settings(max_examples=25, deadline=None)
    def test_mm2_mm3_shapes_and_values(self, s_q, s_k, data):
        q = data.draw(_arr((s_q, 64)))
        k = data.draw(_arr((s_k, 64)))
        scores = mm2(FABRIC, q, k)
        assert scores.output.shape == (s_q, s_k)
        np.testing.assert_allclose(
            scores.output, q @ k.T, rtol=2e-3, atol=2e-3
        )
        attn = data.draw(_arr((s_q, s_k)))
        v = data.draw(_arr((s_k, 64)))
        out = mm3(FABRIC, attn, v)
        np.testing.assert_allclose(
            out.output, attn @ v, rtol=2e-3, atol=2e-3
        )

    @given(st.integers(1, 12), st.data())
    @settings(max_examples=15, deadline=None)
    def test_mm4_head_striping(self, s, data):
        heads = [data.draw(_arr((s, 64))) for _ in range(8)]
        wo = data.draw(_arr((512, 512)))
        res = mm4(FABRIC, heads, wo)
        expected = np.concatenate(heads, axis=1) @ wo
        np.testing.assert_allclose(res.output, expected, rtol=3e-3, atol=5e-3)

    @given(st.integers(1, 40), st.integers(1, 8))
    @settings(max_examples=40, deadline=None)
    def test_mm1_cycles_monotone_and_concurrency_helps(self, s, c):
        from repro.hw.kernels import mm1_cycles

        base = mm1_cycles(FABRIC, s, 512, 64, 1)
        conc = mm1_cycles(FABRIC, s, 512, 64, c)
        assert conc <= base
        assert mm1_cycles(FABRIC, s + 2, 512, 64, 1) >= base


class TestQuantizationProperties:
    @given(
        arrays(np.float64, (6, 5), elements=SMALL),
        st.sampled_from([INT8, INT16]),
        st.sampled_from([None, 1]),
    )
    @settings(max_examples=50, deadline=None)
    def test_roundtrip_error_within_half_step(self, x, precision, axis):
        q, scale = quantize_symmetric(x, precision, axis=axis)
        err = np.abs(dequantize(q, scale) - x)
        step = np.broadcast_to(np.asarray(scale), x.shape)
        assert np.all(err <= step / 2 + 1e-12)

    @given(arrays(np.float64, (4, 4), elements=SMALL))
    @settings(max_examples=30, deadline=None)
    def test_quantization_idempotent(self, x):
        q1, s1 = quantize_symmetric(x, INT8)
        roundtrip = dequantize(q1, s1)
        q2, s2 = quantize_symmetric(roundtrip, INT8)
        np.testing.assert_allclose(
            dequantize(q2, s2), roundtrip, atol=1e-9
        )

    @given(
        arrays(np.float64, (8,), elements=SMALL),
        st.floats(min_value=0.1, max_value=10, allow_nan=False),
    )
    @settings(max_examples=30, deadline=None)
    def test_scale_equivariance(self, x, factor):
        """Quantizing c*x has the same codes as x (symmetric scheme).

        Equivariance only holds while the scale tracks the peak; below
        the 1e-12 underflow clamp in ``_scales`` the scale goes flat and
        the codes legitimately diverge, so that regime is excluded.
        """
        assume(np.max(np.abs(x)) * min(factor, 1.0) > 1e-9)
        q1, _ = quantize_symmetric(x, INT8)
        q2, _ = quantize_symmetric(x * factor, INT8)
        np.testing.assert_array_equal(q1, q2)


class TestHostQueueProperties:
    @given(st.lists(st.integers(1, 10**6), min_size=1, max_size=12))
    @settings(max_examples=30, deadline=None)
    def test_in_order_queue_never_overlaps(self, durations):
        from repro.host.opencl import CommandQueue, Context, Device, Kernel

        ctx = Context(Device())
        q = CommandQueue(ctx, "q")
        for i, d in enumerate(durations):
            q.enqueue_kernel(Kernel(f"k{i}", 0), d)
        ctx.timeline.validate_no_engine_overlap()
        total = sum(durations) / (ctx.device.hardware.clock_mhz * 1e6)
        assert q.finish() == pytest.approx(total)

    @given(st.lists(st.integers(1, 1 << 20), min_size=1, max_size=10))
    @settings(max_examples=30, deadline=None)
    def test_memory_accounting_balances(self, sizes):
        from repro.host.opencl import Context, Device

        ctx = Context(Device())
        buffers = [ctx.alloc(s, f"b{i}") for i, s in enumerate(sizes)]
        assert ctx.allocated_bytes == sum(sizes)
        for b in buffers:
            ctx.free(b)
        assert ctx.allocated_bytes == 0


class TestStreamingProperties:
    @given(st.integers(5_000, 300_000))
    @settings(max_examples=25, deadline=None)
    def test_chunks_cover_and_fit(self, small_params, num_samples):
        from repro.asr.pipeline import AsrPipeline
        from repro.asr.streaming import StreamingTranscriber

        pipeline = AsrPipeline(small_params, hw_seq_len=32)
        t = StreamingTranscriber(pipeline)
        wav = np.zeros(num_samples)
        chunks = t.chunk(wav)
        assert chunks
        # Every sample index is inside some chunk.
        covered = max(len(c) for c in chunks) if len(chunks) == 1 else None
        if len(chunks) == 1:
            assert covered == num_samples
        else:
            assert all(len(c) == t.chunk_samples for c in chunks)
            # Last chunk flush-to-end covers the tail.
            assert num_samples - t.chunk_samples >= 0
        for c in chunks:
            assert len(c) <= t.chunk_samples
