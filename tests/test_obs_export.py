"""Tests for the telemetry exporters, plus the pinned metric-name
schema that downstream dashboards rely on."""

import json

import pytest

from repro.hw.trace import Timeline
from repro.obs import chrome_trace, chrome_trace_json, jsonl_lines, prometheus_text
from repro.obs.export import prometheus_name
from repro.obs.metrics import METRIC_HELP, MetricsRegistry
from repro.obs.spans import Tracer

#: The exported metric-name schema.  This list is a contract: renaming
#: or removing a metric breaks dashboards and scrapers, so changes here
#: must be deliberate (update docs/ARCHITECTURE.md §7 alongside).
PINNED_METRIC_NAMES = frozenset({
    "repro.e2e_ms",
    "repro.asr.utterances",
    "repro.asr.tokens",
    "repro.asr.decode_steps",
    "repro.asr.host_ms",
    "repro.asr.host_measured_ms",
    "repro.asr.accel_ms",
    "repro.asr.decode_ms",
    "repro.asr.rtf",
    "repro.asr.frames_per_s",
    "repro.asr.throughput_seq_per_s",
    "repro.asr.streaming.chunks",
    "repro.asr.streaming.utterances",
    "repro.asr.streaming.rtf",
    "repro.hw.program.executions",
    "repro.hw.program.ops",
    "repro.hw.program.trace_ops",
    "repro.hw.program.lower.cache_hits",
    "repro.hw.program.lower.cache_misses",
    "repro.hw.hbm.bytes_streamed",
    "repro.hw.hbm.bytes",
    "repro.hw.engine.busy_cycles",
    "repro.hw.psa.occupancy",
    "repro.hw.schedule.total_cycles",
    "repro.hw.schedule.stall_cycles",
    "repro.hw.stall.cycles",
    "repro.hw.decode.steps",
    "repro.hw.kv_cache.prefills",
    "repro.hw.kv_cache.appends",
    "repro.hw.kv_cache.rewinds",
    "repro.hw.kv_cache.resident_bytes",
    "repro.decoding.beam.hypotheses_expanded",
    "repro.decoding.beam.early_stops",
    "repro.decoding.beam.finished",
    "repro.serving.requests",
    "repro.serving.completions",
    "repro.serving.prefills",
    "repro.serving.decode_iterations",
    "repro.serving.preemptions",
    "repro.serving.replayed_steps",
    "repro.serving.queue_depth",
    "repro.serving.batch_size",
    "repro.serving.kv_resident_bytes",
    "repro.serving.e2e_ms",
    "repro.serving.queue_ms",
    "repro.serving.slo.attainment",
    "repro.serving.slo.violations",
    "repro.serving.slo.error_budget_consumed",
    "repro.serving.slo.burn_rate",
    "repro.serving.slo.alerts",
    "repro.serving.cost.attributed_cycles",
    "repro.serving.cost.unattributed_cycles",
    "repro.serving.cost.hbm_bytes",
    "repro.serving.cost.kv_byte_cycles",
    "repro.serving.cost.requests",
    "repro.serving.cost.jain_index",
})


class TestMetricSchemaPin:
    def test_schema_is_pinned(self):
        assert set(METRIC_HELP) == PINNED_METRIC_NAMES

    def test_prometheus_names_unique_after_sanitization(self):
        sanitized = {prometheus_name(n) for n in METRIC_HELP}
        assert len(sanitized) == len(METRIC_HELP)


class TestPrometheusText:
    def test_name_sanitization(self):
        assert prometheus_name("repro.hw.hbm.bytes") == "repro_hw_hbm_bytes"

    def test_counter_exposition(self):
        reg = MetricsRegistry()
        reg.counter("repro.asr.utterances").inc(2)
        text = prometheus_text(reg)
        assert "# HELP repro_asr_utterances repro.asr.utterances " in text
        assert "# TYPE repro_asr_utterances counter" in text
        assert "repro_asr_utterances 2" in text

    def test_labels_rendered(self):
        reg = MetricsRegistry()
        reg.gauge("repro.hw.hbm.bytes", channel="0").set(1024)
        assert 'repro_hw_hbm_bytes{channel="0"} 1024' in prometheus_text(reg)

    def test_histogram_exposition(self):
        reg = MetricsRegistry()
        reg.histogram("repro.e2e_ms", buckets=(1.0, 10.0)).observe(5.0)
        text = prometheus_text(reg)
        assert 'repro_e2e_ms_bucket{le="1"} 0' in text
        assert 'repro_e2e_ms_bucket{le="10"} 1' in text
        assert 'repro_e2e_ms_bucket{le="+Inf"} 1' in text
        assert "repro_e2e_ms_sum 5" in text
        assert "repro_e2e_ms_count 1" in text

    def test_help_text_from_schema(self):
        reg = MetricsRegistry()
        reg.histogram("repro.e2e_ms").observe(1.0)
        assert METRIC_HELP["repro.e2e_ms"] in prometheus_text(reg)

    def test_help_text_escaped_per_exposition_format(self, monkeypatch):
        # A HELP string carrying a backslash or newline must render as
        # \\ and \n (Prometheus exposition format), never break the line.
        monkeypatch.setitem(
            METRIC_HELP, "repro.asr.tokens", "line one\nback\\slash"
        )
        reg = MetricsRegistry()
        reg.counter("repro.asr.tokens").inc()
        text = prometheus_text(reg)
        assert (
            "# HELP repro_asr_tokens repro.asr.tokens line one\\nback\\\\slash"
            in text
        )
        help_lines = [l for l in text.splitlines() if l.startswith("# HELP")]
        assert len(help_lines) == 1

    def test_label_values_escaped_per_exposition_format(self):
        # Label values escape backslash, double-quote, and newline —
        # in that order, so the backslashes introduced by the quote and
        # newline escapes are not themselves re-escaped.  A raw quote
        # or newline in a label value would corrupt the whole scrape.
        reg = MetricsRegistry()
        reg.gauge(
            "repro.hw.hbm.bytes", channel='a\\b"c\nd'
        ).set(1)
        text = prometheus_text(reg)
        assert 'channel="a\\\\b\\"c\\nd"' in text
        # The sample must still be a single well-formed line.
        sample_lines = [
            l for l in text.splitlines()
            if l.startswith("repro_hw_hbm_bytes{")
        ]
        assert len(sample_lines) == 1
        assert sample_lines[0].endswith(" 1")

    def test_deterministic_output(self):
        def build():
            reg = MetricsRegistry()
            reg.counter("repro.asr.tokens").inc(3)
            reg.gauge("repro.hw.hbm.bytes", channel="1").set(7)
            reg.gauge("repro.hw.hbm.bytes", channel="0").set(9)
            return prometheus_text(reg)

        assert build() == build()


class TestChromeTrace:
    def _timeline(self) -> Timeline:
        tl = Timeline()
        tl.add("hbm0", "LW:enc1", 0, 100, kind="load")
        tl.add("slr0.psa0", "mm1", 100, 300)
        tl.add("host", "disp:enc1", 300, 320, kind="overhead")
        return tl

    def test_events_and_lanes(self):
        trace = chrome_trace(self._timeline(), clock_mhz=100.0)
        events = trace["traceEvents"]
        lanes = {
            e["args"]["name"] for e in events if e.get("name") == "thread_name"
        }
        assert {"hbm0", "slr0.psa0", "host"} <= lanes
        durations = [e for e in events if e["ph"] == "X"]
        assert len(durations) == 3
        # cycles -> microseconds at the given clock
        load = next(e for e in durations if e["name"] == "LW:enc1")
        assert load["ts"] == pytest.approx(0.0)
        assert load["dur"] == pytest.approx(1.0)  # 100 cycles @ 100 MHz

    def test_spans_on_host_process(self):
        tr = Tracer()
        with tr.span("asr.transcribe"):
            pass
        trace = chrome_trace(None, tr.records)
        durs = [e for e in trace["traceEvents"] if e["ph"] == "X"]
        assert len(durs) == 1
        accel_pids = {
            e["pid"] for e in trace["traceEvents"]
            if e.get("name") == "process_name"
            and "accelerator" in e["args"]["name"]
        }
        assert durs[0]["pid"] not in accel_pids

    def test_rejects_bad_clock(self):
        with pytest.raises(ValueError):
            chrome_trace(self._timeline(), clock_mhz=0)

    def test_json_round_trip(self):
        parsed = json.loads(chrome_trace_json(self._timeline()))
        assert parsed["displayTimeUnit"] == "ms"
        assert parsed["otherData"]["clock_mhz"] == 300.0

    def test_counter_tracks(self):
        trace = chrome_trace(
            self._timeline(),
            clock_mhz=100.0,
            counters={"utilization:slr0.psa0": [(0, 0.0), (100, 1.0)]},
        )
        counters = [e for e in trace["traceEvents"] if e["ph"] == "C"]
        assert len(counters) == 2
        assert all(e["name"] == "utilization:slr0.psa0" for e in counters)
        # cycle timestamps scale by the clock like duration events
        assert counters[1]["ts"] == pytest.approx(1.0)
        assert counters[1]["args"]["value"] == pytest.approx(1.0)

    def test_extra_events_merged_verbatim(self):
        lane = {
            "name": "queued",
            "ph": "X",
            "pid": 3,
            "tid": 1,
            "ts": 0.0,
            "dur": 5.0,
            "args": {"request_id": 0},
        }
        trace = chrome_trace(self._timeline(), extra_events=[lane])
        merged = [
            e for e in trace["traceEvents"]
            if e["ph"] == "X" and e["pid"] == 3
        ]
        assert merged == [lane]
        # device lanes are still present alongside
        assert any(
            e["ph"] == "X" and e["pid"] != 3 for e in trace["traceEvents"]
        )

    def test_counter_tracks_without_timeline(self):
        trace = chrome_trace(counters={"bandwidth:hbm0": [(0, 0.5)]})
        events = trace["traceEvents"]
        assert any(e["ph"] == "C" for e in events)
        # the accelerator process is still named for the counter rows
        assert any(
            e.get("name") == "process_name"
            and "accelerator" in e["args"]["name"]
            for e in events
        )


class TestJsonl:
    def test_metric_and_span_lines(self):
        reg = MetricsRegistry()
        reg.counter("repro.asr.tokens").inc(4)
        reg.histogram("repro.e2e_ms", buckets=(1.0,)).observe(0.5)
        tr = Tracer()
        with tr.span("asr.transcribe"):
            pass
        lines = [json.loads(line) for line in jsonl_lines(reg, tr.records)]
        types = [rec["type"] for rec in lines]
        assert types.count("metric") == 2
        assert types.count("span") == 1
        counter = next(r for r in lines if r.get("name") == "repro.asr.tokens")
        assert counter["value"] == 4
        span = next(r for r in lines if r["type"] == "span")
        assert span["name"] == "asr.transcribe"
        assert span["duration_us"] >= 0
