"""Tests for the accelerator facade: padding, masking, and end-to-end
equivalence with the reference Transformer."""

import numpy as np
import pytest

from repro.hw.accelerator import TransformerAccelerator
from repro.model.transformer import Transformer

RTOL = 2e-3
ATOL = 2e-3


@pytest.fixture(scope="module")
def accel(small_params):
    return TransformerAccelerator(small_params, hw_seq_len=16)


@pytest.fixture(scope="module")
def reference(small_params):
    return Transformer(small_params)


class TestPaddingEquivalence:
    """The padded + masked accelerator must match the reference model
    run on the *unpadded* input."""

    @pytest.mark.parametrize("s", [3, 8, 16])
    def test_logits_match_reference(self, accel, reference, s):
        rng = np.random.default_rng(s)
        feats = rng.standard_normal((s, 512)).astype(np.float32)
        toks = rng.integers(0, accel.config.vocab_size, size=min(s, 5))
        ref = reference.forward(feats, toks)
        out = accel.forward(feats, toks)
        assert out.logits.shape == ref.shape
        np.testing.assert_allclose(out.logits, ref, rtol=RTOL, atol=ATOL)

    def test_memory_matches_reference_encoder(self, accel, reference, rng):
        feats = rng.standard_normal((10, 512)).astype(np.float32)
        ref_memory = reference.encode(feats)
        out = accel.forward(feats, np.array([0]))
        np.testing.assert_allclose(out.memory, ref_memory, rtol=RTOL, atol=ATOL)

    def test_log_probs_normalized(self, accel, rng):
        feats = rng.standard_normal((6, 512)).astype(np.float32)
        lp = accel.log_probs(feats, np.array([0, 4]))
        np.testing.assert_allclose(np.exp(lp).sum(axis=-1), 1.0, rtol=1e-4)

    def test_padding_does_not_change_result(self, accel, rng):
        """Same input at different amounts of padding -> same logits."""
        feats = rng.standard_normal((5, 512)).astype(np.float32)
        toks = np.array([0, 3])
        wide = TransformerAccelerator(accel.params, hw_seq_len=16)
        wider = TransformerAccelerator(accel.params, hw_seq_len=12)
        np.testing.assert_allclose(
            wide.forward(feats, toks).logits,
            wider.forward(feats, toks).logits,
            rtol=1e-4,
            atol=1e-4,
        )


class TestStepFn:
    def test_step_matches_forward(self, accel, rng):
        feats = rng.standard_normal((6, 512)).astype(np.float32)
        toks = np.array([0, 7, 9])
        step = accel.step_fn(feats)
        lp_step = step(toks)
        lp_fwd = accel.log_probs(feats, toks)[-1]
        np.testing.assert_allclose(lp_step, lp_fwd, rtol=1e-4, atol=1e-5)

    def test_step_returns_1d(self, accel, rng):
        feats = rng.standard_normal((4, 512)).astype(np.float32)
        step = accel.step_fn(feats)
        assert step(np.array([0])).shape == (accel.config.vocab_size,)


class TestValidation:
    def test_rejects_too_long_input(self, accel, rng):
        feats = rng.standard_normal((17, 512)).astype(np.float32)
        with pytest.raises(ValueError):
            accel.forward(feats, np.array([0]))

    def test_rejects_wrong_feature_dim(self, accel):
        with pytest.raises(ValueError):
            accel.forward(np.zeros((4, 100), dtype=np.float32), np.array([0]))

    def test_rejects_empty_tokens(self, accel, rng):
        feats = rng.standard_normal((4, 512)).astype(np.float32)
        with pytest.raises(ValueError):
            accel.forward(feats, np.array([], dtype=np.int64))

    def test_rejects_out_of_vocab_tokens(self, accel, rng):
        feats = rng.standard_normal((4, 512)).astype(np.float32)
        with pytest.raises(ValueError):
            accel.forward(feats, np.array([999]))

    def test_rejects_bad_hw_seq_len(self, small_params):
        with pytest.raises(ValueError):
            TransformerAccelerator(small_params, hw_seq_len=0)


class TestLatencyIntegration:
    def test_report_architecture_override(self, accel, rng):
        feats = rng.standard_normal((4, 512)).astype(np.float32)
        out1 = accel.forward(feats, np.array([0]), architecture="A1")
        out3 = accel.forward(feats, np.array([0]), architecture="A3")
        assert out1.report.total_cycles > out3.report.total_cycles

    def test_latency_report_uses_hw_seq_len(self, accel):
        r = accel.latency_report()
        r16 = accel.latency_model.latency_report(16, accel.architecture)
        assert r.total_cycles == r16.total_cycles
