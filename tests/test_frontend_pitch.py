"""Tests for the pitch tracker (the make_fbank_pitch stage)."""

import numpy as np
import pytest

from repro.frontend.pitch import (
    PitchConfig,
    fbank_pitch_features,
    nccf,
    pitch_features,
    track_pitch,
)


def tone(freq: float, seconds: float = 0.5, sr: int = 16000) -> np.ndarray:
    t = np.arange(int(seconds * sr)) / sr
    return np.sin(2 * np.pi * freq * t)


class TestConfig:
    def test_lag_range(self):
        cfg = PitchConfig()
        assert cfg.min_lag == 16000 // 400
        assert cfg.max_lag == int(np.ceil(16000 / 60))

    def test_validation(self):
        with pytest.raises(ValueError):
            PitchConfig(min_f0_hz=500, max_f0_hz=400)
        with pytest.raises(ValueError):
            PitchConfig(max_f0_hz=9000)
        with pytest.raises(ValueError):
            PitchConfig(min_f0_hz=10)  # period longer than the frame


class TestNccf:
    def test_periodic_signal_peaks_at_period(self):
        period = 80  # 200 Hz at 16 kHz
        x = np.sin(2 * np.pi * np.arange(400) / period)
        scores = nccf(x, 40, 120)
        assert 40 + int(np.argmax(scores)) == pytest.approx(period, abs=1)

    def test_bounded_in_unit_interval(self):
        rng = np.random.default_rng(0)
        scores = nccf(rng.standard_normal(400), 40, 120)
        assert np.all(scores <= 1.0 + 1e-12)
        assert np.all(scores >= -1.0 - 1e-12)

    def test_silence_returns_zero(self):
        scores = nccf(np.zeros(400), 40, 120)
        np.testing.assert_array_equal(scores, 0.0)

    def test_lag_validation(self):
        with pytest.raises(ValueError):
            nccf(np.zeros(100), 50, 200)


class TestTrackPitch:
    @pytest.mark.parametrize("f0", [100.0, 150.0, 220.0, 300.0])
    def test_recovers_pure_tone_f0(self, f0):
        tracked = track_pitch(tone(f0))
        voiced = tracked[tracked[:, 0] > 0.8]
        assert voiced.shape[0] > 0
        median_f0 = np.median(voiced[:, 1])
        assert median_f0 == pytest.approx(f0, rel=0.05)

    def test_noise_is_low_voicing(self):
        rng = np.random.default_rng(1)
        tracked = track_pitch(rng.standard_normal(8000) * 0.1)
        assert np.median(tracked[:, 0]) < 0.5

    def test_tone_is_high_voicing(self):
        tracked = track_pitch(tone(200))
        assert np.median(tracked[:, 0]) > 0.9


class TestPitchFeatures:
    def test_shape(self):
        feats = pitch_features(tone(150))
        assert feats.shape[1] == 3

    def test_delta_of_constant_pitch_near_zero(self):
        feats = pitch_features(tone(200))
        assert np.abs(feats[2:, 2]).max() < 0.2

    def test_log_f0_tracks_frequency(self):
        low = np.median(pitch_features(tone(100))[:, 1])
        high = np.median(pitch_features(tone(300))[:, 1])
        assert high - low == pytest.approx(np.log(3.0), rel=0.1)

    def test_empty_waveform(self):
        assert pitch_features(np.zeros(10)).shape == (0, 3)


class TestFbankPitch:
    def test_83_dims(self):
        feats = fbank_pitch_features(tone(180, seconds=1.0))
        assert feats.shape[1] == 83  # 80 mel + 3 pitch

    def test_frame_counts_align(self):
        feats = fbank_pitch_features(tone(180, seconds=0.7))
        assert feats.shape[0] > 0
        assert np.all(np.isfinite(feats))

    def test_too_short_rejected(self):
        with pytest.raises(ValueError):
            fbank_pitch_features(np.zeros(100))

    def test_on_synthetic_utterance(self):
        from repro.frontend.audio import synthesize_utterance

        wav = synthesize_utterance(np.arange(8))
        feats = fbank_pitch_features(wav)
        assert feats.shape[1] == 83
        # The synthesizer's formants lie in the trackable band, so a
        # decent share of frames should read as voiced.
        assert np.mean(feats[:, 80] > 0.5) > 0.3
