"""Tests for the end-to-end ASR pipeline."""

import numpy as np
import pytest

from repro.asr.dataset import LibriSpeechLikeDataset
from repro.asr.pipeline import AsrPipeline, HostPreprocessor, HostTimingModel
from repro.config import ModelConfig
from repro.decoding.vocab import CharVocabulary
from repro.model.params import init_transformer_params


@pytest.fixture(scope="module")
def pipeline(small_params):
    return AsrPipeline(small_params, hw_seq_len=32)


@pytest.fixture(scope="module")
def utterance():
    return LibriSpeechLikeDataset(seed=3).generate(1, min_words=2, max_words=2)[0]


class TestHostTimingModel:
    def test_paper_budget_at_s32(self):
        """Section 5.1.6: host preprocessing is ~36.3 ms for an s=32
        utterance (~1.36 s of audio)."""
        timing = HostTimingModel()
        assert timing.host_ms(1.36) == pytest.approx(36.3, rel=0.02)

    def test_monotone_in_duration(self):
        timing = HostTimingModel()
        assert timing.host_ms(2.0) > timing.host_ms(1.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            HostTimingModel(fixed_ms=-1)
        with pytest.raises(ValueError):
            HostTimingModel().host_ms(-1)


class TestHostPreprocessor:
    def test_produces_model_dim_features(self, utterance):
        prep = HostPreprocessor(ModelConfig())
        feats = prep(utterance.waveform)
        assert feats.ndim == 2
        assert feats.shape[1] == 512

    def test_sequence_length_prediction(self, utterance):
        prep = HostPreprocessor(ModelConfig())
        feats = prep(utterance.waveform)
        assert feats.shape[0] == prep.sequence_length(utterance.waveform.size)

    def test_rejects_too_short(self):
        prep = HostPreprocessor(ModelConfig())
        with pytest.raises(ValueError):
            prep(np.zeros(1000))


class TestPipeline:
    def test_transcribe_returns_result(self, pipeline, utterance):
        result = pipeline.transcribe(utterance.waveform)
        assert isinstance(result.text, str)
        assert result.sequence_length <= 32
        assert result.measured_host_ms > 0
        assert result.accelerator_ms > 0
        assert result.e2e_ms == pytest.approx(
            result.modeled_host_ms
            + result.accelerator_ms
            + result.decode_total_ms
        )
        assert result.throughput_seq_per_s == pytest.approx(
            1e3 / result.accelerator_ms
        )

    def test_decode_latency_modeled(self, pipeline, utterance):
        """The result exposes per-token and total autoregressive decode
        latency, round-tripped through the report's details."""
        result = pipeline.transcribe(utterance.waveform)
        report = result.decode_report
        assert report is not None
        assert result.decode_total_ms > 0
        assert result.decode_per_token_ms > 0
        steps = report.details["decode_tokens"]
        assert steps == result.details["decode_steps"]
        assert steps == min(result.tokens.size + 1, pipeline.max_output_chars)
        assert report.details["decode_total_cycles"] == report.total_cycles
        assert result.decode_per_token_ms * steps == pytest.approx(
            result.decode_total_ms
        )

    def test_espnet_style_text(self, pipeline, utterance):
        result = pipeline.transcribe(utterance.waveform)
        assert " " not in result.espnet_text
        assert result.espnet_text == result.text.upper().replace(" ", "_")

    def test_beam_transcription_runs(self, pipeline, utterance):
        result = pipeline.transcribe(utterance.waveform, beam_size=2)
        assert isinstance(result.text, str)

    def test_rejects_overlong_utterance(self, small_params):
        tight = AsrPipeline(small_params, hw_seq_len=4)
        long_utt = LibriSpeechLikeDataset(seed=0).generate(
            1, min_words=5, max_words=5
        )[0]
        with pytest.raises(ValueError):
            tight.transcribe(long_utt.waveform)

    def test_vocab_size_mismatch_rejected(self):
        params = init_transformer_params(
            ModelConfig(num_encoders=1, num_decoders=1, vocab_size=10), seed=0
        )
        with pytest.raises(ValueError):
            AsrPipeline(params, vocab=CharVocabulary())

    def test_zero_beam_size_rejected(self, pipeline, utterance):
        """beam_size=0 must raise, not silently fall through to greedy."""
        with pytest.raises(ValueError, match="beam_size"):
            pipeline.transcribe(utterance.waveform, beam_size=0)

    def test_negative_beam_size_rejected(self, pipeline, utterance):
        with pytest.raises(ValueError, match="beam_size"):
            pipeline.transcribe(utterance.waveform, beam_size=-2)

    def test_zero_max_output_chars_rejected(self, small_params):
        """max_output_chars=0 must raise, not silently become
        hw_seq_len - 1."""
        with pytest.raises(ValueError, match="max_output_chars"):
            AsrPipeline(small_params, hw_seq_len=32, max_output_chars=0)

    def test_negative_max_output_chars_rejected(self, small_params):
        with pytest.raises(ValueError, match="max_output_chars"):
            AsrPipeline(small_params, hw_seq_len=32, max_output_chars=-1)

    def test_default_max_output_chars(self, small_params):
        assert AsrPipeline(small_params, hw_seq_len=32).max_output_chars == 31


class TestDecodeEngines:
    def test_incremental_matches_hw_engine_transcript(
        self, small_params, utterance
    ):
        hw = AsrPipeline(small_params, hw_seq_len=32)
        inc = AsrPipeline(small_params, hw_seq_len=32, decode_engine="incremental")
        r_hw = hw.transcribe(utterance.waveform)
        r_inc = inc.transcribe(utterance.waveform)
        assert r_hw.text == r_inc.text
        np.testing.assert_array_equal(r_hw.tokens, r_inc.tokens)

    def test_legacy_full_prefix_matches_cached(self, small_params, utterance):
        """'hw' (KV-cached) and 'hw-full' (legacy full-prefix) are the
        same computation at different cost."""
        cached = AsrPipeline(small_params, hw_seq_len=32)
        full = AsrPipeline(small_params, hw_seq_len=32, decode_engine="hw-full")
        r_cached = cached.transcribe(utterance.waveform)
        r_full = full.transcribe(utterance.waveform)
        assert r_cached.text == r_full.text
        np.testing.assert_array_equal(r_cached.tokens, r_full.tokens)

    def test_beam_search_on_cached_engine(self, small_params, utterance):
        """Beam search drives the KV-cached session via rewinds; it
        must agree with the stateless legacy path."""
        cached = AsrPipeline(small_params, hw_seq_len=32)
        full = AsrPipeline(small_params, hw_seq_len=32, decode_engine="hw-full")
        r_cached = cached.transcribe(utterance.waveform, beam_size=2)
        r_full = full.transcribe(utterance.waveform, beam_size=2)
        np.testing.assert_array_equal(r_cached.tokens, r_full.tokens)

    def test_beam_rejected_on_incremental(self, small_params, utterance):
        inc = AsrPipeline(small_params, hw_seq_len=32, decode_engine="incremental")
        with pytest.raises(ValueError):
            inc.transcribe(utterance.waveform, beam_size=2)

    def test_unknown_engine_rejected(self, small_params):
        with pytest.raises(ValueError):
            AsrPipeline(small_params, decode_engine="magic")
