"""Tests for pre-emphasis, framing, windows and the STFT."""

import numpy as np
import pytest

from repro.frontend.framing import (
    frame_signal,
    hamming_window,
    hann_window,
    ms_to_samples,
    num_frames,
)
from repro.frontend.preemphasis import deemphasis, preemphasis
from repro.frontend.stft import (
    magnitude_spectrogram,
    next_power_of_two,
    power_spectrogram,
    stft,
)


class TestPreemphasis:
    def test_formula(self):
        x = np.array([1.0, 2.0, 3.0])
        y = preemphasis(x, alpha=0.5)
        np.testing.assert_allclose(y, [1.0, 1.5, 2.0])

    def test_first_sample_passthrough(self):
        x = np.array([0.7, 0.1])
        assert preemphasis(x)[0] == pytest.approx(0.7)

    def test_empty_signal(self):
        assert preemphasis(np.array([])).size == 0

    def test_roundtrip_with_deemphasis(self):
        rng = np.random.default_rng(0)
        x = rng.standard_normal(200)
        np.testing.assert_allclose(deemphasis(preemphasis(x)), x, atol=1e-10)

    def test_rejects_bad_alpha(self):
        with pytest.raises(ValueError):
            preemphasis(np.zeros(4), alpha=1.0)

    def test_rejects_2d(self):
        with pytest.raises(ValueError):
            preemphasis(np.zeros((2, 2)))

    def test_boosts_high_frequencies(self):
        t = np.arange(1600) / 16000
        low = np.sin(2 * np.pi * 100 * t)
        high = np.sin(2 * np.pi * 6000 * t)
        gain_low = np.std(preemphasis(low)) / np.std(low)
        gain_high = np.std(preemphasis(high)) / np.std(high)
        assert gain_high > gain_low


class TestWindows:
    def test_hann_endpoints(self):
        w = hann_window(16)
        assert w[0] == pytest.approx(0.0)
        assert w.max() <= 1.0

    def test_hamming_floor(self):
        w = hamming_window(16)
        assert w.min() >= 0.08 - 1e-9

    def test_rejects_nonpositive_length(self):
        with pytest.raises(ValueError):
            hann_window(0)
        with pytest.raises(ValueError):
            hamming_window(-1)


class TestFraming:
    def test_num_frames(self):
        assert num_frames(400, 400, 160) == 1
        assert num_frames(560, 400, 160) == 2
        assert num_frames(399, 400, 160) == 0

    def test_frame_contents(self):
        x = np.arange(10, dtype=float)
        frames = frame_signal(x, frame_length=4, frame_shift=2)
        np.testing.assert_array_equal(frames[0], [0, 1, 2, 3])
        np.testing.assert_array_equal(frames[1], [2, 3, 4, 5])

    def test_windowed_framing(self):
        x = np.ones(8)
        w = np.array([0.5, 1.0, 1.0, 0.5])
        frames = frame_signal(x, 4, 4, window=w)
        np.testing.assert_array_equal(frames[0], w)

    def test_short_signal_returns_empty(self):
        frames = frame_signal(np.zeros(3), 4, 2)
        assert frames.shape == (0, 4)

    def test_window_shape_mismatch(self):
        with pytest.raises(ValueError):
            frame_signal(np.zeros(10), 4, 2, window=np.ones(5))

    def test_ms_to_samples(self):
        assert ms_to_samples(25.0, 16000) == 400
        assert ms_to_samples(10.0, 16000) == 160

    def test_ms_to_samples_rejects_bad(self):
        with pytest.raises(ValueError):
            ms_to_samples(0, 16000)


class TestStft:
    def test_next_power_of_two(self):
        assert next_power_of_two(400) == 512
        assert next_power_of_two(512) == 512
        assert next_power_of_two(1) == 1

    def test_output_shape(self):
        x = np.random.default_rng(0).standard_normal(1600)
        spec = stft(x, 400, 160)
        assert spec.shape == (num_frames(1600, 400, 160), 257)
        assert np.iscomplexobj(spec)

    def test_pure_tone_peak_bin(self):
        sr, n_fft = 16000, 512
        freq = 1000.0
        t = np.arange(4000) / sr
        x = np.sin(2 * np.pi * freq * t)
        mag = magnitude_spectrogram(x, 400, 160, n_fft=n_fft)
        peak_bin = np.argmax(mag.mean(axis=0))
        expected = round(freq * n_fft / sr)
        assert abs(peak_bin - expected) <= 1

    def test_power_nonnegative(self):
        x = np.random.default_rng(1).standard_normal(800)
        assert np.all(power_spectrogram(x, 400, 160) >= 0)

    def test_nfft_too_small(self):
        with pytest.raises(ValueError):
            stft(np.zeros(800), 400, 160, n_fft=256)

    def test_parseval_energy_scale(self):
        # Power of a unit-amplitude tone should be finite and positive.
        t = np.arange(1600) / 16000
        x = np.sin(2 * np.pi * 440 * t)
        p = power_spectrogram(x, 400, 160)
        assert p.sum() > 0
