"""Tests for FLOP accounting and operational intensity (Section 4.2)."""

import pytest

from repro.config import ModelConfig
from repro.model.flops import (
    decoder_layer_flops,
    encoder_layer_flops,
    matmul_flops,
    operational_intensity,
    transformer_flops,
    weight_bytes,
)


class TestMatmulFlops:
    def test_basic(self):
        assert matmul_flops(2, 3, 4) == 48

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            matmul_flops(-1, 2, 3)


class TestPaperNumbers:
    """The headline analytic claims of Section 4.2."""

    def test_four_gflop_per_sequence(self):
        # "requires 4 Giga floating-point operations to process a
        # single input sequence" (s = 32, the paper's max length).
        gflop = transformer_flops(32, ModelConfig()) / 1e9
        assert gflop == pytest.approx(4.0, rel=0.05)

    def test_operational_intensity_quarter_mac_per_byte(self):
        # "approximately 0.25 FLOPS/B" in the short-sequence limit.
        oi = operational_intensity(1, ModelConfig(), count_macs=True)
        assert oi == pytest.approx(0.25, rel=0.01)

    def test_weight_stream_252_mb(self):
        # 12 encoders + 6 decoders of fp32 weights.
        assert weight_bytes(ModelConfig()) / 1e6 == pytest.approx(252.2, rel=0.01)


class TestScaling:
    def test_flops_increase_with_s(self):
        cfg = ModelConfig()
        flops = [transformer_flops(s, cfg) for s in (4, 8, 16, 32)]
        assert flops == sorted(flops)
        assert flops[-1] > flops[0]

    def test_encoder_flops_dominated_by_ffn(self):
        cfg = ModelConfig()
        from repro.model.flops import ffn_flops, mha_flops

        s = 32
        assert ffn_flops(s, cfg) > mha_flops(s, s, cfg)

    def test_decoder_has_more_flops_than_encoder(self):
        cfg = ModelConfig()
        assert decoder_layer_flops(32, 32, cfg) > encoder_layer_flops(32, cfg)

    def test_transformer_flops_layer_additivity(self):
        cfg = ModelConfig()
        one = transformer_flops(16, cfg.with_depth(1, 0))
        twelve = transformer_flops(16, cfg.with_depth(12, 0))
        assert twelve == 12 * one

    def test_rejects_nonpositive_s(self):
        with pytest.raises(ValueError):
            transformer_flops(0)

    def test_intensity_grows_with_s(self):
        cfg = ModelConfig()
        assert operational_intensity(32, cfg) > operational_intensity(4, cfg)
