"""Tests for the mel filterbank, CMVN and the full log-mel frontend."""

import numpy as np
import pytest

from repro.frontend.cmvn import CmvnStats, apply_cmvn, compute_cmvn
from repro.frontend.features import FrontendConfig, LogMelFrontend
from repro.frontend.mel import (
    apply_filterbank,
    hz_to_mel,
    log_energies,
    mel_filterbank,
    mel_to_hz,
)


class TestMelScale:
    def test_roundtrip(self):
        hz = np.array([20.0, 440.0, 4000.0, 8000.0])
        np.testing.assert_allclose(mel_to_hz(hz_to_mel(hz)), hz, rtol=1e-12)

    def test_monotone(self):
        hz = np.linspace(10, 8000, 100)
        mel = np.asarray(hz_to_mel(hz))
        assert np.all(np.diff(mel) > 0)

    def test_known_value(self):
        # 1000 Hz is ~999.99 mel under the HTK formula.
        assert hz_to_mel(1000.0) == pytest.approx(999.9855, abs=1e-3)


class TestMelFilterbank:
    def test_shape(self):
        bank = mel_filterbank(80, 512, 16000)
        assert bank.shape == (80, 257)

    def test_nonnegative_and_bounded(self):
        bank = mel_filterbank(40, 512, 16000)
        assert np.all(bank >= 0)
        assert np.all(bank <= 1.0 + 1e-12)

    def test_each_filter_has_support(self):
        bank = mel_filterbank(80, 512, 16000)
        assert np.all(bank.sum(axis=1) > 0)

    def test_triangular_single_peak(self):
        bank = mel_filterbank(20, 1024, 16000)
        for row in bank:
            support = np.flatnonzero(row)
            peak = np.argmax(row)
            assert support[0] <= peak <= support[-1]
            # Rises before the peak, falls after (triangular).
            assert np.all(np.diff(row[support[0] : peak + 1]) >= -1e-12)
            assert np.all(np.diff(row[peak : support[-1] + 1]) <= 1e-12)

    def test_rejects_bad_freq_range(self):
        with pytest.raises(ValueError):
            mel_filterbank(10, 512, 16000, low_freq=5000, high_freq=4000)
        with pytest.raises(ValueError):
            mel_filterbank(10, 512, 16000, high_freq=9000)

    def test_apply_filterbank_shapes(self):
        bank = mel_filterbank(8, 64, 16000)
        power = np.abs(np.random.default_rng(0).standard_normal((5, 33)))
        out = apply_filterbank(power, bank)
        assert out.shape == (5, 8)

    def test_apply_filterbank_bin_mismatch(self):
        bank = mel_filterbank(8, 64, 16000)
        with pytest.raises(ValueError):
            apply_filterbank(np.zeros((5, 17)), bank)

    def test_log_energies_floor(self):
        out = log_energies(np.zeros((2, 3)), floor=1e-10)
        np.testing.assert_allclose(out, np.log(1e-10))


class TestCmvn:
    def test_normalizes_to_zero_mean_unit_var(self):
        rng = np.random.default_rng(0)
        feats = [3.0 + 2.0 * rng.standard_normal((50, 4)) for _ in range(5)]
        stats = compute_cmvn(feats)
        normed = np.concatenate([apply_cmvn(f, stats) for f in feats])
        np.testing.assert_allclose(normed.mean(axis=0), 0.0, atol=1e-8)
        np.testing.assert_allclose(normed.std(axis=0), 1.0, atol=1e-6)

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            compute_cmvn([])

    def test_rejects_dim_mismatch(self):
        with pytest.raises(ValueError):
            compute_cmvn([np.zeros((3, 4)), np.zeros((3, 5))])

    def test_stats_validation(self):
        with pytest.raises(ValueError):
            CmvnStats(mean=np.zeros(3), std=np.zeros(3))

    def test_apply_checks_dim(self):
        stats = CmvnStats(mean=np.zeros(4), std=np.ones(4))
        with pytest.raises(ValueError):
            apply_cmvn(np.zeros((2, 5)), stats)


class TestLogMelFrontend:
    def test_output_shape(self):
        fe = LogMelFrontend()
        wav = np.random.default_rng(0).standard_normal(16000) * 0.1
        feats = fe(wav)
        assert feats.shape[1] == 80
        assert feats.shape[0] == fe.num_output_frames(16000)

    def test_frame_count_formula(self):
        fe = LogMelFrontend()
        # 1 s at 16 kHz, 400-sample frames, 160-sample hop.
        assert fe.num_output_frames(16000) == 1 + (16000 - 400) // 160

    def test_too_short_signal(self):
        fe = LogMelFrontend()
        assert fe.num_output_frames(100) == 0

    def test_config_validation(self):
        with pytest.raises(ValueError):
            FrontendConfig(frame_shift_ms=30.0)  # > frame_length_ms

    def test_features_finite(self):
        fe = LogMelFrontend()
        wav = np.zeros(16000)
        assert np.all(np.isfinite(fe(wav)))

    def test_louder_signal_higher_energy(self):
        fe = LogMelFrontend()
        rng = np.random.default_rng(0)
        wav = rng.standard_normal(8000) * 0.05
        quiet = fe(wav).mean()
        loud = fe(wav * 10).mean()
        assert loud > quiet

    def test_filterbank_copy_is_defensive(self):
        fe = LogMelFrontend()
        bank = fe.filterbank
        bank[:] = 0
        assert fe.filterbank.sum() > 0
