"""Tests for the vector adders and non-linear function units."""

import numpy as np
import pytest

from repro.hw.adder import VectorAdder
from repro.hw.nonlinear import (
    NonlinearUnits,
    add_norm_unit,
    bias_unit,
    relu_unit,
    scale_scores,
    softmax_unit,
)
from repro.model.layernorm import add_norm
from repro.model.masks import causal_mask
from repro.model.ops import softmax


class TestVectorAdder:
    def test_add_functional(self, rng):
        a = rng.standard_normal((3, 4)).astype(np.float32)
        b = rng.standard_normal((3, 4)).astype(np.float32)
        np.testing.assert_array_equal(VectorAdder.add(a, b), a + b)

    def test_add_shape_check(self):
        with pytest.raises(ValueError):
            VectorAdder.add(np.zeros((2, 3)), np.zeros((3, 2)))

    def test_accumulate_order_is_left_fold(self, rng):
        parts = [rng.standard_normal((2, 2)).astype(np.float32) for _ in range(4)]
        acc = VectorAdder.accumulate(parts)
        expected = ((parts[0] + parts[1]) + parts[2]) + parts[3]
        np.testing.assert_array_equal(acc, expected)

    def test_accumulate_empty_rejected(self):
        with pytest.raises(ValueError):
            VectorAdder.accumulate([])

    def test_add_cycles_scale_with_rows(self):
        adder = VectorAdder(width=64)
        assert adder.add_cycles(64, 64) > adder.add_cycles(4, 64)

    def test_add_cycles_wide_matrix(self):
        adder = VectorAdder(width=64, pipeline_depth=8)
        # 512 columns -> 8 chunks per row.
        assert adder.add_cycles(4, 512) == 4 * 8 + 8

    def test_accumulate_cycles_pipelined(self):
        adder = VectorAdder(width=64)
        # Only the final fold is exposed, independent of partial count.
        assert adder.accumulate_cycles(8, 4, 64) == adder.accumulate_cycles(2, 4, 64)
        assert adder.accumulate_cycles(1, 4, 64) == 0

    def test_validation(self):
        with pytest.raises(ValueError):
            VectorAdder(width=0)
        with pytest.raises(ValueError):
            VectorAdder().add_cycles(0, 4)
        with pytest.raises(ValueError):
            VectorAdder().accumulate_cycles(0, 4, 4)


class TestNonlinearFunctional:
    def test_scale_scores(self, rng):
        s = rng.standard_normal((3, 3)).astype(np.float32)
        np.testing.assert_allclose(
            scale_scores(s, 64), s / 8.0, rtol=1e-6
        )

    def test_scale_rejects_bad_dk(self):
        with pytest.raises(ValueError):
            scale_scores(np.zeros((2, 2)), 0)

    def test_softmax_unit_matches_reference(self, rng):
        s = rng.standard_normal((4, 4)).astype(np.float32)
        np.testing.assert_allclose(
            softmax_unit(s), softmax(s), rtol=1e-6, atol=1e-7
        )

    def test_softmax_unit_masked(self):
        s = np.zeros((3, 3), dtype=np.float32)
        out = softmax_unit(s, mask=causal_mask(3))
        np.testing.assert_allclose(out[0], [1, 0, 0], atol=1e-7)
        np.testing.assert_allclose(out[2], [1 / 3] * 3, rtol=1e-6)

    def test_relu_unit(self):
        np.testing.assert_array_equal(
            relu_unit(np.array([-1.0, 2.0])), [0.0, 2.0]
        )

    def test_bias_unit_broadcast(self, rng):
        x = rng.standard_normal((3, 4)).astype(np.float32)
        b = rng.standard_normal(4).astype(np.float32)
        np.testing.assert_allclose(bias_unit(x, b), x + b, rtol=1e-7)

    def test_bias_unit_shape_check(self):
        with pytest.raises(ValueError):
            bias_unit(np.zeros((3, 4)), np.zeros(3))

    def test_add_norm_unit_matches_golden(self, rng):
        a = rng.standard_normal((3, 8)).astype(np.float32)
        r = rng.standard_normal((3, 8)).astype(np.float32)
        w = rng.standard_normal(8).astype(np.float32)
        b = rng.standard_normal(8).astype(np.float32)
        np.testing.assert_allclose(
            add_norm_unit(a, r, w, b), add_norm(a, r, w, b), rtol=1e-5, atol=1e-6
        )


class TestNonlinearCycles:
    def test_softmax_slower_than_scale(self):
        u = NonlinearUnits()
        assert u.softmax_cycles(32, 32) > u.scale_cycles(32, 32)

    def test_sc_sm_hides_under_mm1(self, fabric):
        """Fig 4.13: t_Sc + t_Sm < t_MM1 so they overlap MM1(V)."""
        from repro.hw.kernels import mm1_cycles

        u = fabric.units
        for s in (4, 8, 16, 32):
            sc_sm = u.scale_cycles(s, s) + u.softmax_cycles(s, s)
            assert sc_sm < mm1_cycles(fabric, s, 512, 64)

    def test_cycles_scale_with_size(self):
        u = NonlinearUnits()
        assert u.add_norm_cycles(32, 512) > u.add_norm_cycles(4, 512)
        assert u.bias_cycles(4, 2048) > u.bias_cycles(4, 512)

    def test_validation(self):
        with pytest.raises(ValueError):
            NonlinearUnits(lanes=0)
        with pytest.raises(ValueError):
            NonlinearUnits().bias_cycles(0, 4)
