"""Tests for the cost-attribution primitives: the largest-remainder
split, the fairness index, the ledger rollups, and the Perfetto flow
events that tie request lanes to device slices."""

import pytest

from repro.obs.costs import (
    CostLedger,
    RequestCost,
    cost_flow_events,
    jain_index,
    largest_remainder_split,
)
from repro.obs.export import ACCEL_PID
from repro.obs.vtrace import REQUEST_PID, VTraceRecorder


class TestLargestRemainderSplit:
    def test_shares_sum_exactly(self):
        for total in (0, 1, 7, 10, 999, 10**12 + 7):
            for weights in ([1], [1, 1, 1], [3, 3, 1], [5, 2, 9, 4]):
                shares = largest_remainder_split(total, weights)
                assert sum(shares) == total
                assert all(s >= 0 for s in shares)

    def test_known_splits(self):
        assert largest_remainder_split(10, [1, 1, 1]) == [4, 3, 3]
        assert largest_remainder_split(7, [3, 3, 1]) == [3, 3, 1]
        assert largest_remainder_split(100, [1, 3]) == [25, 75]

    def test_ties_go_to_lowest_index(self):
        # equal weights, one leftover unit -> first member gets it
        assert largest_remainder_split(5, [1, 1]) == [3, 2]

    def test_all_zero_weights_degrade_to_equal_split(self):
        assert largest_remainder_split(9, [0, 0, 0]) == [3, 3, 3]
        assert largest_remainder_split(10, [0, 0, 0]) == [4, 3, 3]

    def test_proportionality(self):
        shares = largest_remainder_split(1000, [1, 9])
        assert shares == [100, 900]

    def test_validation(self):
        with pytest.raises(ValueError, match="non-negative"):
            largest_remainder_split(-1, [1])
        with pytest.raises(ValueError, match="non-empty"):
            largest_remainder_split(5, [])
        with pytest.raises(ValueError, match="non-negative"):
            largest_remainder_split(5, [1, -1])

    def test_deterministic(self):
        args = (12345, [7, 11, 13, 17])
        assert largest_remainder_split(*args) == largest_remainder_split(*args)


class TestJainIndex:
    def test_even_split_is_one(self):
        assert jain_index([5, 5, 5]) == pytest.approx(1.0)

    def test_single_holder_is_one_over_n(self):
        assert jain_index([10, 0, 0, 0]) == pytest.approx(0.25)

    def test_all_zero_is_vacuously_fair(self):
        assert jain_index([0, 0]) == 1.0

    def test_validation(self):
        with pytest.raises(ValueError):
            jain_index([])
        with pytest.raises(ValueError):
            jain_index([1, -1])


def _ledger():
    """Two tenants, three requests, hand-built for exact arithmetic."""
    r0 = RequestCost(request_id=0, tenant=0, prefill_cycles=100,
                     decode_cycles=50, hbm_load_bytes=1000,
                     kv_byte_cycles=400, completed=True, good=True)
    r1 = RequestCost(request_id=1, tenant=0, prefill_cycles=60,
                     decode_cycles=40, replay_cycles=10, queue_cycles=5,
                     hbm_load_bytes=600, kv_byte_cycles=300,
                     preemptions=1, completed=True, good=False)
    r2 = RequestCost(request_id=2, tenant=1, prefill_cycles=80,
                     decode_cycles=20, hbm_load_bytes=500,
                     kv_byte_cycles=100, completed=True, good=True)
    return CostLedger(requests=[r0, r1, r2], makespan_cycles=400,
                      unattributed_cycles=50, clock_hz=300e6)


class TestCostLedger:
    def test_conservation_holds(self):
        led = _ledger()
        assert led.attributed_cycles == 350
        led.verify_conservation()  # no raise

    def test_conservation_violation_reports_offset(self):
        led = _ledger()
        led.unattributed_cycles = 60  # 350 + 60 != 400
        with pytest.raises(ValueError, match=r"off by 10"):
            led.verify_conservation()

    def test_request_lookup(self):
        led = _ledger()
        assert led.request(1).replay_cycles == 10
        with pytest.raises(KeyError):
            led.request(99)

    def test_totals_are_exact_integers(self):
        t = _ledger().totals()
        assert t["attributed_cycles"] == 350
        assert t["prefill_cycles"] == 240
        assert t["decode_cycles"] == 110
        assert t["replay_cycles"] == 10
        assert t["hbm_load_bytes"] == 2100
        assert all(isinstance(v, int) for v in t.values())

    def test_per_tenant_rollup_sums_to_global(self):
        led = _ledger()
        tenants = led.per_tenant()
        assert [tc.tenant for tc in tenants] == [0, 1]
        assert sum(tc.attributed_cycles for tc in tenants) == 350
        assert sum(tc.hbm_load_bytes for tc in tenants) == 2100
        assert sum(tc.kv_byte_cycles for tc in tenants) == 800
        assert sum(tc.requests for tc in tenants) == 3
        t0 = tenants[0]
        assert (t0.requests, t0.completed, t0.good) == (2, 2, 1)
        assert t0.attributed_cycles == 250

    def test_goodput_shares(self):
        shares = _ledger().goodput_shares()
        assert shares == {0: 0.5, 1: 0.5}

    def test_dominant_resource_shares(self):
        drf = _ledger().dominant_resource_shares()
        # tenant 0 dominates kv residency: 700/800
        assert drf[0]["resource"] == "kv_byte_cycles"
        assert drf[0]["share"] == pytest.approx(700 / 800)
        assert 0.0 < drf[1]["share"] < drf[0]["share"]

    def test_jain_fairness(self):
        # per-tenant attributed cycles: 250 vs 100
        expected = jain_index([250, 100])
        assert _ledger().jain_fairness() == pytest.approx(expected)

    def test_as_dict_round_trips_rows(self):
        d = _ledger().as_dict()
        assert len(d["requests"]) == 3
        assert len(d["tenants"]) == 2
        assert d["totals"]["makespan_cycles"] == 400
        assert d["fairness"]["jain_index"] == pytest.approx(
            _ledger().jain_fairness()
        )
        # tenant rows reproduce global totals
        assert sum(t["attributed_cycles"] for t in d["tenants"]) == (
            d["totals"]["attributed_cycles"]
        )


def _flow_source_events():
    """Two requests sharing decode iterations (schema v2 attrs)."""
    vt = VTraceRecorder()
    for rid in (0, 1):
        vt.emit("arrive", 0, rid, tenant=rid)
        vt.emit("admit", 0, rid, tenant=rid)
    vt.emit("prefill_start", 0, 0, tenant=0, cycles=90, replay=False)
    vt.emit("prefill_end", 90, 0, tenant=0, replay=False)
    vt.emit("prefill_start", 90, 1, tenant=1, cycles=90, replay=False)
    vt.emit("prefill_end", 180, 1, tenant=1, replay=False)
    for i in range(4):
        vt.emit("decode_iter", 180 + 50 * i, None, cycles=50, batch=2,
                prefix_lengths=[i + 1, i + 1], request_ids=[0, 1],
                tenants=[0, 1])
    vt.emit("complete", 380, 0, tenant=0, e2e_ms=1.0)
    vt.emit("complete", 380, 1, tenant=1, e2e_ms=1.0)
    return vt.events


class TestCostFlowEvents:
    def test_start_finish_pairs_share_id_and_name(self):
        flows = cost_flow_events(_flow_source_events(), clock_mhz=100.0)
        starts = [e for e in flows if e["ph"] == "s"]
        finishes = [e for e in flows if e["ph"] == "f"]
        assert len(starts) == len(finishes) > 0
        by_id = {}
        for e in flows:
            by_id.setdefault(e["id"], []).append(e)
        for pair in by_id.values():
            assert len(pair) == 2
            s, f = sorted(pair, key=lambda e: e["ph"], reverse=True)
            assert (s["ph"], f["ph"]) == ("s", "f")
            assert s["name"] == f["name"]
            assert s["ts"] == f["ts"]

    def test_pids_bind_request_lane_to_device_lane(self):
        flows = cost_flow_events(_flow_source_events(), clock_mhz=100.0)
        assert all(e["pid"] == REQUEST_PID for e in flows if e["ph"] == "s")
        assert all(e["pid"] == ACCEL_PID for e in flows if e["ph"] == "f")
        # finish side uses enclosing-slice binding
        assert all(e["bp"] == "e" for e in flows if e["ph"] == "f")

    def test_decode_flows_capped_per_request(self):
        flows = cost_flow_events(
            _flow_source_events(), clock_mhz=100.0, max_decode_flows=2
        )
        decode_starts = [
            e for e in flows if e["ph"] == "s" and ":decode" in e["name"]
        ]
        # 2 requests x cap 2, despite 4 shared iterations
        assert len(decode_starts) == 4
        prefill_starts = [
            e for e in flows if e["ph"] == "s" and ":prefill" in e["name"]
        ]
        assert len(prefill_starts) == 2

    def test_timestamps_scaled_by_clock(self):
        flows = cost_flow_events(_flow_source_events(), clock_mhz=100.0)
        first_prefill = next(
            e for e in flows if e["name"] == "cost:r1:prefill"
        )
        assert first_prefill["ts"] == pytest.approx(0.9)  # 90 cyc @ 100 MHz

    def test_schema_v1_stream_yields_prefill_flows_only(self):
        vt = VTraceRecorder()
        vt.emit("arrive", 0, 0)
        vt.emit("prefill_start", 0, 0, cycles=90, replay=False)
        vt.emit("prefill_end", 90, 0, replay=False)
        vt.emit("decode_iter", 90, None, cycles=50, batch=1)  # no request_ids
        flows = cost_flow_events(vt.events, clock_mhz=100.0)
        assert all(":prefill" in e["name"] for e in flows)

    def test_rejects_bad_clock(self):
        with pytest.raises(ValueError):
            cost_flow_events(_flow_source_events(), clock_mhz=0.0)
