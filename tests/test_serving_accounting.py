"""Tests for the serving cost ledger: the exact-integer conservation
invariant across architectures and offered loads (preemption/replay
included), per-tenant rollups, capacity extrapolation, the metric
family, and the dashboard."""

import pytest

import repro.obs as obs
from repro.hw.controller import LatencyModel
from repro.hw.kv_cache import modeled_resident_bytes
from repro.obs.vtrace import VTraceRecorder
from repro.serving import (
    ModeledExecutor,
    PoissonArrivals,
    ServingConfig,
    UtteranceRequest,
    build_cost_ledger,
    estimate_capacity,
    record_cost_metrics,
    render_cost_dashboard,
    simulate,
    synthesize_requests,
)


@pytest.fixture(scope="module")
def lm():
    """One latency model so program/step caches warm once."""
    return LatencyModel()


def _run(lm, arch="A3", load_rps=4.0, num_requests=8, tenant_classes=2,
         seed=3, **cfg_kw):
    """Simulate a run with the vtrace recorder installed and build its
    ledger; returns (result, events, ledger)."""
    reqs = synthesize_requests(
        PoissonArrivals(load_rps, seed=seed), num_requests, seed=seed,
        tenant_classes=tenant_classes,
    )
    defaults = dict(s=32, max_batch=4, architecture=arch, slo_ms=1e9)
    defaults.update(cfg_kw)
    cfg = ServingConfig(**defaults)
    ex = ModeledExecutor(cfg, lm)
    vt = VTraceRecorder()
    result = simulate(reqs, cfg, ex, vtrace=vt)
    ledger = build_cost_ledger(result, vt.events, lm)
    return result, vt.events, ledger


class TestConservation:
    """The acceptance criterion: sum(attributed) + unattributed ==
    makespan, in exact integer arithmetic, across architectures and
    offered loads."""

    @pytest.mark.parametrize("arch", ["A1", "A2", "A3"])
    @pytest.mark.parametrize("load_rps", [2.0, 8.0])
    def test_exact_across_arch_and_load(self, lm, arch, load_rps):
        result, _, ledger = _run(lm, arch=arch, load_rps=load_rps)
        assert (
            ledger.attributed_cycles + ledger.unattributed_cycles
            == ledger.makespan_cycles
        )
        assert ledger.makespan_cycles == result.device_end_cycles
        totals = ledger.totals()
        # cross-check the split against the scheduler's own account
        assert totals["prefill_cycles"] == result.prefill_cycles_total
        assert totals["decode_cycles"] == result.decode_cycles_total
        assert ledger.unattributed_cycles == result.idle_cycles_total

    def test_exact_under_preemption_and_replay(self, lm):
        """Conservation must survive the messy path: eviction, rewind,
        re-prefill and replayed decode iterations."""
        budget = modeled_resident_bytes(lm.model, 32, 16)
        cfg = ServingConfig(
            s=32, max_batch=4, kv_budget_bytes=budget, preemption=True,
            slo_ms=1e9,
        )
        ex = ModeledExecutor(cfg, lm)
        clock = ex.clock_hz
        mid_decode_s = (
            ex.prefill_cycles(None) + 3 * ex.iteration_cycles([1])
        ) / clock * 1.01
        reqs = [
            UtteranceRequest(0, 0.0, 12, priority=1, tenant=0),
            UtteranceRequest(1, mid_decode_s, 6, priority=0, tenant=1),
        ]
        vt = VTraceRecorder()
        result = simulate(reqs, cfg, ex, vtrace=vt)
        assert result.preemptions == 1  # the scenario actually preempted
        ledger = build_cost_ledger(result, vt.events, lm)
        assert (
            ledger.attributed_cycles + ledger.unattributed_cycles
            == ledger.makespan_cycles
        )
        victim = ledger.request(0)
        assert victim.preemptions == 1
        assert victim.replay_cycles > 0
        # replay is a subset of the victim's attributed work
        assert victim.replay_cycles < victim.attributed_cycles
        # and the run-level replay account matches the scheduler's
        assert (
            ledger.totals()["replay_cycles"] >= result.replay_cycles_total
        )

    def test_unshared_weights_also_conserve(self, lm):
        _, _, ledger = _run(lm, share_weights=False)
        assert (
            ledger.attributed_cycles + ledger.unattributed_cycles
            == ledger.makespan_cycles
        )


class TestTenantRollup:
    def test_tenant_totals_sum_to_global(self, lm):
        _, _, ledger = _run(lm, tenant_classes=3, num_requests=12)
        tenants = ledger.per_tenant()
        assert len(tenants) > 1  # the mix actually spread
        totals = ledger.totals()
        assert sum(tc.attributed_cycles for tc in tenants) == (
            totals["attributed_cycles"]
        )
        assert sum(tc.hbm_load_bytes for tc in tenants) == (
            totals["hbm_load_bytes"]
        )
        assert sum(tc.kv_byte_cycles for tc in tenants) == (
            totals["kv_byte_cycles"]
        )
        assert sum(tc.requests for tc in tenants) == len(ledger.requests)

    def test_tenants_carried_from_requests(self, lm):
        _, _, ledger = _run(lm, tenant_classes=2)
        assert {rc.tenant for rc in ledger.requests} <= {0, 1}

    def test_residency_and_bytes_are_positive(self, lm):
        _, _, ledger = _run(lm)
        completed = [rc for rc in ledger.requests if rc.completed]
        assert completed
        for rc in completed:
            assert rc.hbm_load_bytes > 0
            assert rc.kv_byte_cycles > 0


class TestCapacityEstimate:
    def test_arithmetic(self, lm):
        _, _, ledger = _run(lm)
        cap = estimate_capacity(ledger, target_rps=100.0, utilization_cap=0.5)
        completed = sum(1 for rc in ledger.requests if rc.completed)
        assert cap.cycles_per_request == pytest.approx(
            ledger.attributed_cycles / completed
        )
        assert cap.utterances_per_s_per_card == pytest.approx(
            ledger.clock_hz / cap.cycles_per_request
        )
        # headroom can only ever add cards
        assert cap.cards_needed >= cap.cards_at_full_utilization >= 1

    def test_validation(self, lm):
        _, _, ledger = _run(lm)
        with pytest.raises(ValueError):
            estimate_capacity(ledger, target_rps=0.0)
        with pytest.raises(ValueError):
            estimate_capacity(ledger, target_rps=1.0, utilization_cap=1.5)
        # a ledger with no completions cannot extrapolate
        for rc in ledger.requests:
            rc.completed = False
        with pytest.raises(ValueError, match="completed"):
            estimate_capacity(ledger, target_rps=1.0)


class TestErrorPaths:
    def test_empty_event_stream_rejected(self, lm):
        result, events, _ = _run(lm)
        with pytest.raises(ValueError, match="event stream"):
            build_cost_ledger(result, [], lm)

    def test_schema_v1_decode_iter_rejected(self, lm):
        result, events, _ = _run(lm)
        stripped = []
        for ev in events:
            if ev.kind == "decode_iter":
                attrs = {
                    k: v for k, v in ev.attrs.items()
                    if k not in ("request_ids", "tenants")
                }
                ev = type(ev)(ev.cycle, ev.kind, ev.request_id,
                              ev.tenant, attrs)
            stripped.append(ev)
        with pytest.raises(ValueError, match="request_ids"):
            build_cost_ledger(result, stripped, lm)


class TestMetricsAndDashboard:
    def test_cost_metric_family_recorded(self, lm):
        _, _, ledger = _run(lm)
        with obs.telemetry() as tel:
            record_cost_metrics(ledger)
            names = tel.metrics.names()
        assert "repro.serving.cost.attributed_cycles" in names
        assert "repro.serving.cost.unattributed_cycles" in names
        assert "repro.serving.cost.jain_index" in names

    def test_null_cost_identity(self, lm):
        """With telemetry disabled, recording costs is a no-op and the
        ledger itself is untouched — instrumentation never perturbs
        the account."""
        _, _, ledger = _run(lm)
        before = ledger.as_dict()
        assert not obs.metrics.enabled()
        record_cost_metrics(ledger)  # no registry installed
        assert ledger.as_dict() == before

    def test_ledger_independent_of_telemetry(self, lm):
        """The cycle account is identical whether or not a metrics
        registry is active during the run."""
        _, _, plain = _run(lm)
        with obs.telemetry():
            _, _, instrumented = _run(lm)
        assert plain.totals() == instrumented.totals()

    def test_dashboard_renders_tenants_and_capacity(self, lm):
        _, _, ledger = _run(lm, tenant_classes=2, num_requests=10)
        cap = estimate_capacity(ledger, target_rps=50.0)
        text = render_cost_dashboard(ledger, cap, by_tenant=True)
        assert "cost attribution (exact integer conservation)" in text
        assert "jain fairness index" in text
        assert "capacity extrapolation" in text
        assert "cards @" in text

    def test_dashboard_single_tenant_hides_table(self, lm):
        _, _, ledger = _run(lm, tenant_classes=1)
        text = render_cost_dashboard(ledger)
        assert "jain fairness index" not in text
        assert "attributed" in text
