"""End-to-end integration: reference model vs accelerator on the full
pipeline, trained-model deployment onto the accelerator, and config
round trips."""

import numpy as np
import pytest

from repro.asr.dataset import LibriSpeechLikeDataset
from repro.asr.pipeline import AsrPipeline
from repro.config import ModelConfig
from repro.decoding.greedy import greedy_decode
from repro.decoding.vocab import CharVocabulary
from repro.hw.accelerator import TransformerAccelerator
from repro.model.transformer import Transformer


class TestFullPipelineIntegration:
    def test_pipeline_is_deterministic(self, small_params):
        utt = LibriSpeechLikeDataset(seed=1).generate(1, 2, 2)[0]
        pipe = AsrPipeline(small_params, hw_seq_len=32)
        r1 = pipe.transcribe(utt.waveform)
        r2 = pipe.transcribe(utt.waveform)
        assert r1.text == r2.text
        np.testing.assert_array_equal(r1.tokens, r2.tokens)

    def test_pipeline_latency_matches_paper_budget_shape(self, small_params):
        utt = LibriSpeechLikeDataset(seed=1).generate(1, 2, 2)[0]
        pipe = AsrPipeline(small_params, hw_seq_len=32)
        result = pipe.transcribe(utt.waveform)
        # Host + accelerator compose; accelerator dominates the E2E.
        assert result.e2e_ms > result.modeled_host_ms
        assert result.e2e_ms > result.accelerator_ms

    def test_greedy_matches_reference_decode(self, small_params, rng):
        """Decoding through the accelerator's step function must equal
        decoding through the reference model."""
        vocab = CharVocabulary()
        feats = rng.standard_normal((8, 512)).astype(np.float32)
        accel = TransformerAccelerator(small_params, hw_seq_len=16)
        ref = Transformer(small_params)

        def ref_step(tokens):
            return ref.log_probs(feats, tokens)[-1]

        hw_tokens = greedy_decode(
            accel.step_fn(feats), vocab.sos_id, vocab.eos_id, max_len=8
        )
        ref_tokens = greedy_decode(
            ref_step, vocab.sos_id, vocab.eos_id, max_len=8
        )
        np.testing.assert_array_equal(hw_tokens, ref_tokens)


class TestTrainedModelDeployment:
    """Train a toy model, export it, and run it on the accelerator."""

    def test_trained_weights_run_on_accelerator(self, rng):
        from repro.train.layers import TrainableTransformer

        vocab = CharVocabulary()
        cfg = ModelConfig(
            d_model=64,
            num_heads=1,
            d_ff=128,
            num_encoders=1,
            num_decoders=1,
            vocab_size=len(vocab),
        )
        model = TrainableTransformer(cfg, seed=3)
        params = model.export_params()
        accel = TransformerAccelerator(params, hw_seq_len=8)

        feats = rng.standard_normal((4, 64))
        toks = np.array([vocab.sos_id, 5])
        train_logits = model.forward(feats, toks).data
        hw_logits = accel.forward(
            model.project_features(feats), toks
        ).logits
        np.testing.assert_allclose(train_logits, hw_logits, rtol=2e-3, atol=2e-3)


class TestConfigIntegration:
    def test_scaled_config(self):
        cfg = ModelConfig().scaled(8)
        assert cfg.d_model == 64
        assert cfg.d_ff == 256
        assert cfg.num_heads == 8

    def test_scaled_validation(self):
        with pytest.raises(ValueError):
            ModelConfig().scaled(3)  # does not divide 512... (512/3)

    def test_with_depth(self):
        cfg = ModelConfig().with_depth(2, 1)
        assert cfg.num_encoders == 2
        assert cfg.num_decoders == 1

    def test_hardware_cycle_conversions(self, hardware):
        ms = hardware.cycles_to_ms(300_000)
        assert ms == pytest.approx(1.0)
        assert hardware.ms_to_cycles(ms) == pytest.approx(300_000)

    def test_config_validation_messages(self):
        with pytest.raises(ValueError):
            ModelConfig(d_model=100, num_heads=3)
        with pytest.raises(ValueError):
            ModelConfig(vocab_size=1)
