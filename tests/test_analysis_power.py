"""Tests for the time-resolved power model and quantized serialization."""

import numpy as np
import pytest

from repro.analysis.power import (
    STATIC_POWER_W,
    PowerTrace,
    inference_power_report,
    power_trace,
)
from repro.hw.controller import LatencyModel
from repro.hw.trace import Timeline


@pytest.fixture(scope="module")
def lm():
    return LatencyModel()


class TestPowerTrace:
    def test_average_matches_board_power_at_operating_point(self, lm):
        """A3 @ s=32 must average the 34.2 W the §5.1.6 energy number
        implies (that's how the activity split was calibrated)."""
        trace = inference_power_report(lm, 32, "A3")
        assert trace.average_power_w == pytest.approx(
            lm.hardware.board_power_w, rel=0.02
        )

    def test_a1_lower_power_higher_energy(self, lm):
        """Stalled fabric draws less power but wastes more energy."""
        a1 = inference_power_report(lm, 32, "A1")
        a3 = inference_power_report(lm, 32, "A3")
        assert a1.average_power_w < a3.average_power_w
        assert a1.energy_joules > a3.energy_joules

    def test_energy_equals_power_times_time(self, lm):
        trace = inference_power_report(lm, 16, "A2")
        assert trace.energy_joules == pytest.approx(
            trace.average_power_w * trace.duration_s, rel=1e-9
        )

    def test_power_never_below_static(self, lm):
        for arch in ("A1", "A2", "A3"):
            trace = inference_power_report(lm, 8, arch)
            assert np.all(trace.power_w >= STATIC_POWER_W - 1e-9)

    def test_peak_bounded_by_all_engines_active(self, lm):
        trace = inference_power_report(lm, 8, "A3")
        ceiling = STATIC_POWER_W + 21.6 + 2.0 * 2
        assert trace.peak_power_w <= ceiling + 1e-9

    def test_empty_timeline_rejected(self):
        with pytest.raises(ValueError):
            power_trace(Timeline())

    def test_trace_shape_validation(self):
        with pytest.raises(ValueError):
            PowerTrace(
                times=np.array([0.0, 1.0]),
                power_w=np.array([1.0, 2.0]),
                clock_mhz=300.0,
            )

    def test_manual_timeline_integration(self):
        tl = Timeline()
        tl.add("compute", "c", 0, 300_000)  # 1 ms busy
        tl.add("hbm0", "l", 0, 150_000)  # 0.5 ms busy
        trace = power_trace(tl)
        # First half: static + compute + hbm; second: static + compute.
        expected = (
            (STATIC_POWER_W + 21.6 + 2.0) * 0.5e-3
            + (STATIC_POWER_W + 21.6) * 0.5e-3
        )
        assert trace.energy_joules == pytest.approx(expected, rel=1e-6)


class TestQuantizedSerialization:
    def test_roundtrip(self, tmp_path):
        from repro.config import ModelConfig
        from repro.model.params import init_transformer_params
        from repro.quant.params import (
            dequantize_params,
            load_quantized,
            quantize_params,
            save_quantized,
        )
        from repro.quant.schemes import INT8

        params = init_transformer_params(
            ModelConfig(num_encoders=1, num_decoders=1), seed=2
        )
        quantized = quantize_params(params, INT8)
        path = tmp_path / "model_int8.npz"
        save_quantized(quantized, path)
        loaded = load_quantized(path)
        assert loaded.precision.name == "int8"
        assert loaded.config == params.config
        a = dequantize_params(quantized)
        b = dequantize_params(loaded)
        np.testing.assert_array_equal(
            a.encoders[0].ffn.w1, b.encoders[0].ffn.w1
        )
        np.testing.assert_array_equal(a.embedding, b.embedding)

    def test_file_is_compact(self, tmp_path):
        """The int8 file should be well under half the fp32 footprint."""
        from repro.config import ModelConfig
        from repro.model.params import init_transformer_params, save_params
        from repro.quant.params import quantize_params, save_quantized
        from repro.quant.schemes import INT8

        params = init_transformer_params(
            ModelConfig(num_encoders=1, num_decoders=1), seed=2
        )
        fp32_path = tmp_path / "fp32.npz"
        int8_path = tmp_path / "int8.npz"
        save_params(params, fp32_path)
        save_quantized(quantize_params(params, INT8), int8_path)
        assert int8_path.stat().st_size < fp32_path.stat().st_size / 2
