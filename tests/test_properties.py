"""Property-based tests (hypothesis) on the core invariants:
systolic-array correctness, scheduler ordering, softmax/layernorm
properties, WER metric axioms, and autograd-vs-finite-difference."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.decoding.wer import edit_distance
from repro.hw.scheduler import BlockWork, schedule_a1, schedule_a2, schedule_a3
from repro.hw.systolic import SystolicArray
from repro.model.layernorm import layer_norm
from repro.model.ops import softmax

SMALL_FLOATS = st.floats(
    min_value=-10, max_value=10, allow_nan=False, allow_infinity=False
)


@st.composite
def matmul_operands(draw):
    l = draw(st.integers(1, 6))
    m = draw(st.integers(1, 6))
    n = draw(st.integers(1, 6))
    a = draw(arrays(np.float64, (l, m), elements=SMALL_FLOATS))
    b = draw(arrays(np.float64, (m, n), elements=SMALL_FLOATS))
    return a, b


class TestSystolicProperties:
    @given(matmul_operands(), st.integers(1, 3), st.integers(1, 4))
    @settings(max_examples=40, deadline=None)
    def test_exact_emulation_equals_numpy(self, operands, rows, cols):
        a, b = operands
        psa = SystolicArray(rows=rows, cols=cols)
        np.testing.assert_allclose(psa.simulate_exact(a, b), a @ b, atol=1e-9)

    @given(st.integers(1, 64), st.integers(1, 128), st.integers(1, 128))
    @settings(max_examples=50, deadline=None)
    def test_cycles_positive_and_monotone_in_m(self, l, m, n):
        psa = SystolicArray()
        assert psa.pass_cycles(l, m, n) > 0
        assert psa.pass_cycles(l, m + 1, n) >= psa.pass_cycles(l, m, n)


@st.composite
def block_lists(draw):
    n = draw(st.integers(1, 20))
    return [
        BlockWork(
            f"b{i}",
            draw(st.integers(0, 1000)),
            draw(st.integers(0, 1000)),
        )
        for i in range(n)
    ]


class TestSchedulerProperties:
    @given(block_lists(), st.integers(0, 100))
    @settings(max_examples=60, deadline=None)
    def test_architecture_ordering(self, blocks, overhead):
        t1 = schedule_a1(blocks, overhead).total_cycles
        t2 = schedule_a2(blocks, overhead).total_cycles
        t3 = schedule_a3(blocks, overhead).total_cycles
        assert t3 <= t2 <= t1

    @given(block_lists())
    @settings(max_examples=40, deadline=None)
    def test_lower_bounds(self, blocks):
        """No schedule beats max(total compute, slowest chain bound)."""
        total_compute = sum(b.compute_cycles for b in blocks)
        first_load = blocks[0].load_cycles
        for fn in (schedule_a1, schedule_a2, schedule_a3):
            result = fn(blocks)
            assert result.total_cycles >= total_compute
            assert result.total_cycles >= first_load + blocks[0].compute_cycles

    @given(block_lists(), st.integers(0, 50))
    @settings(max_examples=40, deadline=None)
    def test_no_engine_overlap_and_load_before_compute(self, blocks, overhead):
        for fn in (schedule_a1, schedule_a2, schedule_a3):
            result = fn(blocks, overhead)
            result.timeline.validate_no_engine_overlap()
            load_end = {}
            for eng in result.timeline.engines():
                if eng.startswith("hbm"):
                    for e in result.timeline.on_engine(eng):
                        load_end[e.label[3:]] = e.end
            for e in result.timeline.on_engine("compute"):
                assert e.start >= load_end[e.label[2:]] - 1e-9

    @given(block_lists())
    @settings(max_examples=30, deadline=None)
    def test_a1_is_exact_sum(self, blocks):
        expected = sum(b.load_cycles + b.compute_cycles for b in blocks)
        assert schedule_a1(blocks).total_cycles == expected


class TestNumericProperties:
    @given(arrays(np.float64, (4, 7), elements=SMALL_FLOATS))
    @settings(max_examples=50, deadline=None)
    def test_softmax_simplex(self, x):
        out = softmax(x)
        assert np.all(out >= 0)
        np.testing.assert_allclose(out.sum(axis=-1), 1.0, rtol=1e-9)

    @given(
        arrays(np.float64, (3, 8), elements=SMALL_FLOATS),
        st.floats(min_value=-5, max_value=5, allow_nan=False),
    )
    @settings(max_examples=50, deadline=None)
    def test_softmax_shift_invariance(self, x, c):
        np.testing.assert_allclose(softmax(x), softmax(x + c), atol=1e-9)

    @given(arrays(np.float64, (3, 8), elements=SMALL_FLOATS))
    @settings(max_examples=50, deadline=None)
    def test_layernorm_statistics(self, x):
        out = layer_norm(x, np.ones(8), np.zeros(8))
        np.testing.assert_allclose(out.mean(axis=-1), 0.0, atol=1e-7)
        # Rows with spread get unit variance; constant rows stay ~0.
        # Rows need spread well above the norm's eps=1e-12 floor for
        # the unit-variance property to hold to tight tolerance.
        spread = x.std(axis=-1) > 1e-3
        if spread.any():
            np.testing.assert_allclose(
                out[spread].std(axis=-1), 1.0, atol=1e-5
            )

    @given(
        arrays(np.float64, (2, 6), elements=SMALL_FLOATS),
        st.floats(min_value=0.1, max_value=10),
    )
    @settings(max_examples=40, deadline=None)
    def test_layernorm_scale_invariance(self, x, scale):
        w, b = np.ones(6), np.zeros(6)
        base = layer_norm(x, w, b)
        scaled = layer_norm(x * scale, w, b)
        # Only rows whose variance dwarfs the eps floor at both scales.
        rows = x.std(axis=-1) * min(scale, 1.0) > 1e-2
        np.testing.assert_allclose(base[rows], scaled[rows], atol=1e-6)


WORDS = st.lists(st.sampled_from(["a", "b", "c", "d"]), max_size=8)


class TestWerProperties:
    @given(WORDS)
    def test_identity(self, ref):
        assert edit_distance(ref, ref) == 0

    @given(WORDS, WORDS)
    def test_symmetry(self, a, b):
        assert edit_distance(a, b) == edit_distance(b, a)

    @given(WORDS, WORDS, WORDS)
    @settings(max_examples=60, deadline=None)
    def test_triangle_inequality(self, a, b, c):
        assert edit_distance(a, c) <= edit_distance(a, b) + edit_distance(b, c)

    @given(WORDS, WORDS)
    def test_bounded_by_max_length(self, a, b):
        assert edit_distance(a, b) <= max(len(a), len(b))

    @given(WORDS, WORDS)
    def test_length_difference_lower_bound(self, a, b):
        assert edit_distance(a, b) >= abs(len(a) - len(b))


class TestAutogradProperties:
    @given(
        arrays(np.float64, (3, 3), elements=SMALL_FLOATS),
        arrays(np.float64, (3, 3), elements=SMALL_FLOATS),
    )
    @settings(max_examples=30, deadline=None)
    def test_matmul_grad_matches_finite_difference(self, a_data, b_data):
        from repro.train.autograd import Tensor

        a = Tensor(a_data, requires_grad=True)
        b = Tensor(b_data)
        ((a @ b) * (a @ b)).sum().backward()
        # Analytic: d/dA sum((AB)^2) = 2 (AB) B^T
        expected = 2 * (a_data @ b_data) @ b_data.T
        np.testing.assert_allclose(a.grad, expected, atol=1e-8)

    @given(arrays(np.float64, (5,), elements=SMALL_FLOATS))
    @settings(max_examples=30, deadline=None)
    def test_softmax_grad_sums_to_zero(self, x_data):
        """Softmax output is shift-invariant, so its gradient must be
        orthogonal to the all-ones direction."""
        from repro.train.autograd import Tensor

        x = Tensor(x_data, requires_grad=True)
        (x.softmax() ** 2).sum().backward()
        assert abs(x.grad.sum()) < 1e-9


class TestFrontendProperties:
    @given(st.integers(0, 5000))
    @settings(max_examples=30, deadline=None)
    def test_frame_count_never_negative(self, n):
        from repro.frontend.framing import num_frames

        assert num_frames(n, 400, 160) >= 0

    @given(st.integers(1, 400))
    @settings(max_examples=30, deadline=None)
    def test_subsampling_monotone(self, n):
        from repro.frontend.subsampling import Conv2dSubsampling

        assert Conv2dSubsampling.output_time_dim(
            n + 4
        ) >= Conv2dSubsampling.output_time_dim(n)
