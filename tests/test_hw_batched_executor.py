"""Batched functional executor: the leading batch dimension through
kernels, encoder prefill, KV-cached decode steps and the serving
executor must be bit-identical to the member-wise loops it replaces."""

from __future__ import annotations

import numpy as np
import pytest

from repro.hw.accelerator import TransformerAccelerator, step_sessions
from repro.hw.controller import AcceleratorController
from repro.hw.kernels import mm1, mm2, mm3, mm4, mm5, mm6
from repro.hw.kv_cache import batch_layer_caches
from repro.serving.request import UtteranceRequest
from repro.serving.scheduler import (
    ContinuousBatchingScheduler,
    FunctionalExecutor,
    ServingConfig,
)


def _rng(seed=0):
    return np.random.default_rng(seed)


def _f32(rng, *shape):
    return rng.normal(size=shape).astype(np.float32)


class TestBatchedKernels:
    """MM1-MM6 accept a leading batch axis; outputs must equal the
    member-wise 2-D calls bit for bit (the flattened GEMM preserves each
    row's fp32 contraction order, and single-row batches recurse
    member-wise to dodge the gemv/sgemm accumulation-order split)."""

    B = 3

    def test_mm1_batched_bit_identical(self, fabric):
        rng = _rng(1)
        x, w = _f32(rng, self.B, 4, 128), _f32(rng, 128, 32)
        got = mm1(fabric, x, w)
        for i in range(self.B):
            np.testing.assert_array_equal(got.output[i], mm1(fabric, x[i], w).output)
        assert got.cycles > 0

    def test_mm1_single_row_batch(self, fabric):
        """(B, 1, d) decode-step activations: per-member gemv results,
        summed cycles."""
        rng = _rng(2)
        x, w = _f32(rng, self.B, 1, 128), _f32(rng, 128, 32)
        got = mm1(fabric, x, w)
        members = [mm1(fabric, x[i], w) for i in range(self.B)]
        for i, m in enumerate(members):
            np.testing.assert_array_equal(got.output[i], m.output)
        assert got.cycles == sum(m.cycles for m in members)

    def test_mm2_mm3_batched_member_wise(self, fabric):
        rng = _rng(3)
        q, k = _f32(rng, self.B, 4, 16), _f32(rng, self.B, 5, 16)
        scores = mm2(fabric, q, k)
        for i in range(self.B):
            np.testing.assert_array_equal(
                scores.output[i], mm2(fabric, q[i], k[i]).output
            )
        attn, v = _f32(rng, self.B, 4, 5), _f32(rng, self.B, 5, 16)
        ctx = mm3(fabric, attn, v)
        for i in range(self.B):
            np.testing.assert_array_equal(
                ctx.output[i], mm3(fabric, attn[i], v[i]).output
            )

    def test_mm2_rejects_mismatched_batch(self, fabric):
        rng = _rng(4)
        with pytest.raises(ValueError):
            mm2(fabric, _f32(rng, 2, 4, 16), _f32(rng, 3, 5, 16))
        with pytest.raises(ValueError):
            mm2(fabric, _f32(rng, 2, 4, 16), _f32(rng, 5, 16))

    @pytest.mark.parametrize("s", [1, 4])
    def test_mm4_batched_bit_identical(self, fabric, s):
        rng = _rng(5)
        heads = [_f32(rng, self.B, s, 16) for _ in range(2)]
        wo = _f32(rng, 32, 64)
        got = mm4(fabric, heads, wo)
        for i in range(self.B):
            want = mm4(fabric, [h[i] for h in heads], wo)
            np.testing.assert_array_equal(got.output[i], want.output)

    @pytest.mark.parametrize("s", [1, 4])
    def test_mm5_mm6_batched_bit_identical(self, fabric, s):
        rng = _rng(6)
        x, w1 = _f32(rng, self.B, s, 128), _f32(rng, 128, 256)
        h = mm5(fabric, x, w1)
        for i in range(self.B):
            np.testing.assert_array_equal(h.output[i], mm5(fabric, x[i], w1).output)
        w2 = _f32(rng, 256, 128)
        y = mm6(fabric, h.output, w2)
        for i in range(self.B):
            np.testing.assert_array_equal(
                y.output[i], mm6(fabric, h.output[i], w2).output
            )


class TestBatchedEncoderStack:
    def test_batched_prefill_bit_identical(self, small_params):
        ctrl = AcceleratorController(small_params)
        rng = _rng(7)
        xs = _f32(rng, 2, 6, small_params.config.d_model)
        batched, cycles_b = ctrl.run_encoder_stack(xs)
        for i in range(2):
            solo, cycles_s = ctrl.run_encoder_stack(xs[i])
            np.testing.assert_array_equal(batched[i], solo)
            # The per-block cycle model is static in the batch size:
            # one batched pass records the same per-step cycles.
            assert cycles_s == cycles_b


class TestBatchedDecodeStep:
    def _prefill(self, ctrl, rng, batch):
        d = ctrl.params.config.d_model
        memories = [ctrl.run_encoder_stack(_f32(rng, 8, d))[0] for _ in range(batch)]
        return memories

    def test_step_batch_matches_scalar_steps_and_caches(self, small_params):
        ctrl = AcceleratorController(small_params)
        rng = _rng(8)
        memories = self._prefill(ctrl, rng, 3)
        caches = [ctrl.build_kv_cache(m) for m in memories]
        refs = [ctrl.build_kv_cache(m) for m in memories]
        for step in range(3):
            xs = _f32(rng, 3, small_params.config.d_model)
            outs, cycles_b = ctrl.run_decoder_step_batch(xs, caches)
            for i in range(3):
                want, cycles_s = ctrl.run_decoder_step(xs[i], refs[i])
                np.testing.assert_array_equal(outs[i], want)
                assert cycles_s == cycles_b
        # The fanned-out cache appends left every member's cache
        # bit-identical to its scalar twin.
        for cache, ref in zip(caches, refs):
            assert cache.length == ref.length == 3
            for layer, ref_layer in zip(cache.layers, ref.layers):
                for h in range(len(layer.self_k)):
                    np.testing.assert_array_equal(
                        layer.self_k[h], ref_layer.self_k[h]
                    )
                    np.testing.assert_array_equal(
                        layer.self_v[h], ref_layer.self_v[h]
                    )

    def test_batch_layer_caches_validation(self, small_params):
        ctrl = AcceleratorController(small_params)
        rng = _rng(9)
        memories = self._prefill(ctrl, rng, 2)
        caches = [ctrl.build_kv_cache(m) for m in memories]
        ctrl.run_decoder_step(
            _f32(rng, small_params.config.d_model), caches[0]
        )
        with pytest.raises(ValueError, match="prefix length"):
            batch_layer_caches(caches)
        with pytest.raises(ValueError):
            batch_layer_caches([])

    def test_step_batch_rejects_ragged_group(self, small_params):
        ctrl = AcceleratorController(small_params)
        rng = _rng(10)
        memories = self._prefill(ctrl, rng, 2)
        caches = [ctrl.build_kv_cache(m) for m in memories]
        ctrl.run_decoder_step(
            _f32(rng, small_params.config.d_model), caches[0]
        )
        with pytest.raises(ValueError):
            ctrl.run_decoder_step_batch(
                _f32(rng, 2, small_params.config.d_model), caches
            )


class TestBatchedSessions:
    def test_decode_sessions_batch_bit_identical(self, small_params):
        accel = TransformerAccelerator(small_params, hw_seq_len=8)
        rng = _rng(11)
        feats = [
            _f32(rng, n, small_params.config.d_model) for n in (5, 8, 6)
        ]
        batched = accel.decode_sessions_batch(feats)
        solo = [accel.decode_session(f) for f in feats]
        for b, s in zip(batched, solo):
            np.testing.assert_array_equal(b.memory, s.memory)
            np.testing.assert_array_equal(b.step(1), s.step(1))
            np.testing.assert_array_equal(b.step(2), s.step(2))
            assert b.step_compute_cycles == s.step_compute_cycles

    def test_step_sessions_groups_by_prefix_length(self, small_params):
        accel = TransformerAccelerator(small_params, hw_seq_len=8)
        rng = _rng(12)
        feats = [
            _f32(rng, 6, small_params.config.d_model) for _ in range(3)
        ]
        batch = [accel.decode_session(f) for f in feats]
        refs = [accel.decode_session(f) for f in feats]
        # Desynchronize: member 0 is one token ahead, so one iteration
        # spans a singleton group and a batched pair.
        batch[0].step(1)
        refs[0].step(1)
        tokens = [2, 1, 1]
        outs = step_sessions(batch, tokens)
        for got, ref, tok in zip(outs, refs, tokens):
            np.testing.assert_array_equal(got, ref.step(tok))
        for b, r in zip(batch, refs):
            assert b.tokens == r.tokens
            assert b.step_compute_cycles == r.step_compute_cycles

    def test_step_sessions_validates_lengths(self, small_params):
        accel = TransformerAccelerator(small_params, hw_seq_len=8)
        rng = _rng(13)
        session = accel.decode_session(
            _f32(rng, 6, small_params.config.d_model)
        )
        with pytest.raises(ValueError):
            step_sessions([session], [1, 2])


class TestServingBatchedSteps:
    def test_batched_executor_matches_loop(self, small_params):
        """The scheduler's whole-iteration step_many through the batched
        fabric path must emit the exact tokens (and bill the exact
        device cycles) of the per-session loop."""
        config = small_params.config
        rng = _rng(14)
        feats = {
            i: _f32(rng, 10, config.d_model) for i in range(3)
        }
        scfg = ServingConfig(s=16, max_batch=4, slo_ms=1e9)
        reqs = [UtteranceRequest(i, 0.0, 4) for i in range(3)]

        def run(batched):
            accel = TransformerAccelerator(small_params, hw_seq_len=16)
            ex = FunctionalExecutor(
                scfg,
                accel,
                lambda r: feats[r.request_id],
                batched_steps=batched,
            )
            result = ContinuousBatchingScheduler(scfg, ex).run(list(reqs))
            return ex.emitted, result

        emitted_loop, res_loop = run(batched=False)
        emitted_batch, res_batch = run(batched=True)
        assert emitted_batch == emitted_loop
        assert res_batch.decode_cycles_total == res_loop.decode_cycles_total
        assert res_batch.prefill_cycles_total == res_loop.prefill_cycles_total
        assert res_batch.peak_batch == res_loop.peak_batch
