"""Tests for the virtual-time tracing layer: recorder, sampler, phase
rebuilds, Perfetto exports and the schema-versioned JSONL event log."""

import json

import pytest

from repro.obs.vtrace import (
    EVENT_KINDS,
    EVENT_SCHEMA_VERSION,
    NULL_SAMPLER,
    NULL_VTRACE,
    TimeSeries,
    VSampler,
    VTraceRecorder,
    device_timeline,
    rate_series,
    request_lane_tids,
    request_phases,
    request_track_events,
    vtrace_jsonl_lines,
)


def _lifecycle_events():
    """One request's full lifecycle plus a preemption round trip."""
    vt = VTraceRecorder()
    vt.emit("arrive", 0, 0, decode_tokens=4, priority=0)
    vt.emit("queue_wait", 10, 0, wait_cycles=10)
    vt.emit("admit", 10, 0, reserved_bytes=128, queue_depth=0)
    vt.emit("prefill_start", 10, 0, cycles=90, replay=False)
    vt.emit("prefill_end", 100, 0, replay=False)
    vt.emit("decode_iter", 100, None, cycles=50, batch=1, prefix_lengths=[1])
    vt.emit("preempt", 150, 0, evicted_steps=1, by_request=1)
    vt.emit("prefill_start", 200, 0, cycles=90, replay=True)
    vt.emit("prefill_end", 290, 0, replay=True)
    vt.emit("replay", 290, 0, cycles=50, step=0)
    vt.emit("decode_iter", 290, None, cycles=50, batch=1, prefix_lengths=[1])
    vt.emit("complete", 400, 0, e2e_ms=1.5)
    return vt.events


class TestRecorder:
    def test_emission_order_and_counts(self):
        vt = VTraceRecorder()
        vt.emit("arrive", 5, 1)
        vt.emit("arrive", 3, 2)
        assert [e.cycle for e in vt.events] == [5, 3]  # emission order kept
        assert vt.counts() == {"arrive": 2}

    def test_rejects_unknown_kind_and_negative_cycle(self):
        vt = VTraceRecorder()
        with pytest.raises(ValueError, match="unknown vtrace event kind"):
            vt.emit("teleport", 0, 1)
        with pytest.raises(ValueError, match="non-negative"):
            vt.emit("arrive", -1, 1)

    def test_null_recorder_is_disabled_and_stateless(self):
        assert NULL_VTRACE.enabled is False
        NULL_VTRACE.emit("arrive", 0, 1)
        assert NULL_VTRACE.events == []
        assert NULL_VTRACE.counts() == {}

    def test_events_are_copies(self):
        vt = VTraceRecorder()
        vt.emit("arrive", 0, 1)
        vt.events.clear()
        assert len(vt.events) == 1


class TestTimeSeriesAndSampler:
    def test_ring_buffer_drops_oldest(self):
        ts = TimeSeries("x", capacity=3)
        for i in range(5):
            ts.append(i, float(i))
        assert ts.samples == [(2, 2.0), (3, 3.0), (4, 4.0)]
        assert ts.dropped == 2

    def test_sampler_cadence_is_bucket_aligned(self):
        sm = VSampler(cadence_cycles=100)
        assert sm.sample(0, {"g": 1}) is True       # bucket [0, 100)
        assert sm.sample(50, {"g": 2}) is False     # same bucket
        assert sm.sample(130, {"g": 3}) is True     # bucket [100, 200)
        assert sm.sample(199, {"g": 4}) is False
        assert sm.sample(450, {"g": 5}) is True     # jumps are fine
        assert sm.get("g").samples == [(0, 1.0), (130, 3.0), (450, 5.0)]

    def test_counter_tracks_shape(self):
        sm = VSampler(cadence_cycles=10)
        sm.sample(0, {"queue_depth": 2, "batch_size": 1})
        tracks = sm.counter_tracks()
        assert set(tracks) == {"serving:queue_depth", "serving:batch_size"}
        assert tracks["serving:queue_depth"] == [(0, 2.0)]

    def test_null_sampler_is_disabled(self):
        assert NULL_SAMPLER.enabled is False
        assert NULL_SAMPLER.sample(0, {"g": 1}) is False
        assert NULL_SAMPLER.series() == {}

    def test_rate_series_from_cumulative(self):
        ts = TimeSeries("cum")
        ts.append(0, 0.0)
        ts.append(100, 50.0)
        ts.append(300, 150.0)
        assert rate_series(ts) == [(0, 0.5), (100, 0.5)]

    def test_rate_series_empty_and_single_sample(self):
        empty = TimeSeries("cum")
        assert rate_series(empty) == []
        single = TimeSeries("cum")
        single.append(50, 7.0)
        assert rate_series(single) == []  # one sample defines no window

    def test_rate_series_duplicate_cycle_folds_into_next_window(self):
        ts = TimeSeries("cum")
        ts.append(0, 0.0)
        ts.append(100, 40.0)
        ts.append(100, 60.0)  # same cycle: no zero-width window emitted
        ts.append(200, 160.0)
        # the duplicate becomes the next window's starting value (60),
        # so [100, 200) rates (160-60)/100
        assert rate_series(ts) == [(0, 0.4), (100, 1.0)]

    def test_rate_series_all_duplicates_yield_nothing(self):
        ts = TimeSeries("cum")
        ts.append(10, 1.0)
        ts.append(10, 2.0)
        ts.append(10, 3.0)
        assert rate_series(ts) == []


class TestPhaseRebuild:
    def test_full_lifecycle_phases(self):
        phases = request_phases(_lifecycle_events())[0]
        assert phases == [
            ("queued", 0, 10),
            ("prefill", 10, 100),
            ("decode", 100, 150),
            ("preempted", 150, 200),
            ("prefill", 200, 290),
            ("decode", 290, 400),
        ]

    def test_reject_is_zero_length_marker(self):
        vt = VTraceRecorder()
        vt.emit("arrive", 0, 3)
        vt.emit("reject", 0, 3, needed_bytes=999)
        phases = request_phases(vt.events)[3]
        assert phases[-1] == ("rejected", 0, 0)
        # no wall-clock time is attributed to a rejected request
        assert all(end == start for _, start, end in phases)

    def test_dangling_phase_closed_at_last_cycle(self):
        vt = VTraceRecorder()
        vt.emit("arrive", 0, 1)
        vt.emit("decode_iter", 500, None, cycles=10, batch=1)
        assert request_phases(vt.events)[1] == [("queued", 0, 500)]

    def test_stream_ending_mid_preemption(self):
        """A request evicted and never readmitted before the stream
        ends: the open `preempted` phase closes at the last observed
        cycle instead of dangling."""
        vt = VTraceRecorder()
        vt.emit("arrive", 0, 0)
        vt.emit("admit", 0, 0)
        vt.emit("prefill_start", 0, 0, cycles=100, replay=False)
        vt.emit("prefill_end", 100, 0, replay=False)
        vt.emit("decode_iter", 100, None, cycles=50, batch=1,
                prefix_lengths=[1])
        vt.emit("preempt", 150, 0, evicted_steps=1, by_request=1)
        # another request's work moves the clock past the eviction
        vt.emit("decode_iter", 250, None, cycles=50, batch=1,
                prefix_lengths=[1])
        phases = request_phases(vt.events)[0]
        assert phases == [
            ("queued", 0, 0),
            ("prefill", 0, 100),
            ("decode", 100, 150),
            ("preempted", 150, 250),
        ]


class TestPerfettoExport:
    def test_request_tracks_scaled_and_named(self):
        out = request_track_events(_lifecycle_events(), clock_mhz=100.0)
        procs = [
            e for e in out
            if e["ph"] == "M" and e["name"] == "process_name"
        ]
        assert procs[0]["args"]["name"] == "serving requests (virtual)"
        slices = [e for e in out if e["ph"] == "X"]
        assert {e["name"] for e in slices} == {
            "queued", "prefill", "decode", "preempted"
        }
        queued = next(e for e in slices if e["name"] == "queued")
        assert queued["ts"] == pytest.approx(0.0)
        assert queued["dur"] == pytest.approx(0.1)  # 10 cycles @ 100 MHz
        instants = {e["name"] for e in out if e["ph"] == "i"}
        assert {"arrive", "preempt", "complete"} <= instants

    def test_slo_alert_lane(self):
        vt = VTraceRecorder()
        vt.emit("arrive", 0, 0)
        vt.emit("slo_alert", 123, None, burn_fast=8.0)
        out = request_track_events(vt.events, clock_mhz=100.0)
        alert = next(e for e in out if e.get("name") == "slo_alert" and e["ph"] == "i")
        assert alert["args"] == {"burn_fast": 8.0}
        lanes = [
            e["args"]["name"] for e in out
            if e["ph"] == "M" and e["name"] == "thread_name"
        ]
        assert "slo alerts" in lanes

    def test_device_timeline_reconstruction(self):
        tl = device_timeline(_lifecycle_events())
        assert set(tl.engines()) == {"device.prefill", "device.decode"}
        prefills = tl.busy_intervals("device.prefill")
        assert len(prefills) == 2
        assert tl.makespan == 340  # last decode_iter at 290 + 50 cycles

    def test_rejects_bad_clock(self):
        with pytest.raises(ValueError):
            request_track_events([], clock_mhz=0.0)

    def test_request_lane_tids_are_stable_and_shared(self):
        vt = VTraceRecorder()
        vt.emit("arrive", 5, 7)
        vt.emit("arrive", 0, 2)
        vt.emit("decode_iter", 10, None, cycles=1, batch=1)
        # sorted request ids, numbered from 1; rid-less events ignored
        assert request_lane_tids(vt.events) == {2: 1, 7: 2}
        out = request_track_events(vt.events, clock_mhz=100.0)
        lanes = {
            e["args"]["name"]: e["tid"] for e in out
            if e["ph"] == "M" and e["name"] == "thread_name"
        }
        assert lanes["req 2"] == 1
        assert lanes["req 7"] == 2

    def test_tenant_shown_in_lane_name(self):
        vt = VTraceRecorder()
        vt.emit("arrive", 0, 0, tenant=3)
        vt.emit("arrive", 0, 1)  # tenant unknown -> plain lane name
        out = request_track_events(vt.events, clock_mhz=100.0)
        lanes = {
            e["args"]["name"] for e in out
            if e["ph"] == "M" and e["name"] == "thread_name"
        }
        assert "req 0 (tenant 3)" in lanes
        assert "req 1" in lanes


class TestJsonlLog:
    def test_header_schema_and_round_trip(self):
        lines = vtrace_jsonl_lines(_lifecycle_events(), metadata={"seed": 1})
        header = json.loads(lines[0])
        assert header["type"] == "vtrace_header"
        assert header["schema"] == EVENT_SCHEMA_VERSION
        assert header["events"] == len(lines) - 1
        assert header["metadata"] == {"seed": 1}
        body = [json.loads(line) for line in lines[1:]]
        assert all(rec["type"] == "vtrace_event" for rec in body)
        assert all(rec["kind"] in EVENT_KINDS for rec in body)

    def test_bit_identical_across_builds(self):
        a = vtrace_jsonl_lines(_lifecycle_events())
        b = vtrace_jsonl_lines(_lifecycle_events())
        assert a == b

    def test_schema_v2_tenant_field(self):
        """Schema 2: events carry `tenant` when known, omit it when
        not — v1 logs therefore parse unchanged as v2."""
        assert EVENT_SCHEMA_VERSION == 2
        vt = VTraceRecorder()
        vt.emit("arrive", 0, 0, tenant=1)
        vt.emit("arrive", 0, 1)
        lines = vtrace_jsonl_lines(vt.events)
        with_tenant, without = (json.loads(l) for l in lines[1:])
        assert with_tenant["tenant"] == 1
        assert "tenant" not in without

    def test_schema_v2_decode_iter_membership(self):
        vt = VTraceRecorder()
        vt.emit("decode_iter", 10, None, cycles=5, batch=2,
                prefix_lengths=[1, 2], request_ids=[0, 1], tenants=[0, 1])
        rec = json.loads(vtrace_jsonl_lines(vt.events)[1])
        assert rec["attrs"]["request_ids"] == [0, 1]
        assert rec["attrs"]["tenants"] == [0, 1]
