"""Tests for the virtual-time tracing layer: recorder, sampler, phase
rebuilds, Perfetto exports and the schema-versioned JSONL event log."""

import json

import pytest

from repro.obs.vtrace import (
    EVENT_KINDS,
    EVENT_SCHEMA_VERSION,
    NULL_SAMPLER,
    NULL_VTRACE,
    TimeSeries,
    VSampler,
    VTraceRecorder,
    device_timeline,
    rate_series,
    request_phases,
    request_track_events,
    vtrace_jsonl_lines,
)


def _lifecycle_events():
    """One request's full lifecycle plus a preemption round trip."""
    vt = VTraceRecorder()
    vt.emit("arrive", 0, 0, decode_tokens=4, priority=0)
    vt.emit("queue_wait", 10, 0, wait_cycles=10)
    vt.emit("admit", 10, 0, reserved_bytes=128, queue_depth=0)
    vt.emit("prefill_start", 10, 0, cycles=90, replay=False)
    vt.emit("prefill_end", 100, 0, replay=False)
    vt.emit("decode_iter", 100, None, cycles=50, batch=1, prefix_lengths=[1])
    vt.emit("preempt", 150, 0, evicted_steps=1, by_request=1)
    vt.emit("prefill_start", 200, 0, cycles=90, replay=True)
    vt.emit("prefill_end", 290, 0, replay=True)
    vt.emit("replay", 290, 0, cycles=50, step=0)
    vt.emit("decode_iter", 290, None, cycles=50, batch=1, prefix_lengths=[1])
    vt.emit("complete", 400, 0, e2e_ms=1.5)
    return vt.events


class TestRecorder:
    def test_emission_order_and_counts(self):
        vt = VTraceRecorder()
        vt.emit("arrive", 5, 1)
        vt.emit("arrive", 3, 2)
        assert [e.cycle for e in vt.events] == [5, 3]  # emission order kept
        assert vt.counts() == {"arrive": 2}

    def test_rejects_unknown_kind_and_negative_cycle(self):
        vt = VTraceRecorder()
        with pytest.raises(ValueError, match="unknown vtrace event kind"):
            vt.emit("teleport", 0, 1)
        with pytest.raises(ValueError, match="non-negative"):
            vt.emit("arrive", -1, 1)

    def test_null_recorder_is_disabled_and_stateless(self):
        assert NULL_VTRACE.enabled is False
        NULL_VTRACE.emit("arrive", 0, 1)
        assert NULL_VTRACE.events == []
        assert NULL_VTRACE.counts() == {}

    def test_events_are_copies(self):
        vt = VTraceRecorder()
        vt.emit("arrive", 0, 1)
        vt.events.clear()
        assert len(vt.events) == 1


class TestTimeSeriesAndSampler:
    def test_ring_buffer_drops_oldest(self):
        ts = TimeSeries("x", capacity=3)
        for i in range(5):
            ts.append(i, float(i))
        assert ts.samples == [(2, 2.0), (3, 3.0), (4, 4.0)]
        assert ts.dropped == 2

    def test_sampler_cadence_is_bucket_aligned(self):
        sm = VSampler(cadence_cycles=100)
        assert sm.sample(0, {"g": 1}) is True       # bucket [0, 100)
        assert sm.sample(50, {"g": 2}) is False     # same bucket
        assert sm.sample(130, {"g": 3}) is True     # bucket [100, 200)
        assert sm.sample(199, {"g": 4}) is False
        assert sm.sample(450, {"g": 5}) is True     # jumps are fine
        assert sm.get("g").samples == [(0, 1.0), (130, 3.0), (450, 5.0)]

    def test_counter_tracks_shape(self):
        sm = VSampler(cadence_cycles=10)
        sm.sample(0, {"queue_depth": 2, "batch_size": 1})
        tracks = sm.counter_tracks()
        assert set(tracks) == {"serving:queue_depth", "serving:batch_size"}
        assert tracks["serving:queue_depth"] == [(0, 2.0)]

    def test_null_sampler_is_disabled(self):
        assert NULL_SAMPLER.enabled is False
        assert NULL_SAMPLER.sample(0, {"g": 1}) is False
        assert NULL_SAMPLER.series() == {}

    def test_rate_series_from_cumulative(self):
        ts = TimeSeries("cum")
        ts.append(0, 0.0)
        ts.append(100, 50.0)
        ts.append(300, 150.0)
        assert rate_series(ts) == [(0, 0.5), (100, 0.5)]


class TestPhaseRebuild:
    def test_full_lifecycle_phases(self):
        phases = request_phases(_lifecycle_events())[0]
        assert phases == [
            ("queued", 0, 10),
            ("prefill", 10, 100),
            ("decode", 100, 150),
            ("preempted", 150, 200),
            ("prefill", 200, 290),
            ("decode", 290, 400),
        ]

    def test_reject_is_zero_length_marker(self):
        vt = VTraceRecorder()
        vt.emit("arrive", 0, 3)
        vt.emit("reject", 0, 3, needed_bytes=999)
        phases = request_phases(vt.events)[3]
        assert phases[-1] == ("rejected", 0, 0)
        # no wall-clock time is attributed to a rejected request
        assert all(end == start for _, start, end in phases)

    def test_dangling_phase_closed_at_last_cycle(self):
        vt = VTraceRecorder()
        vt.emit("arrive", 0, 1)
        vt.emit("decode_iter", 500, None, cycles=10, batch=1)
        assert request_phases(vt.events)[1] == [("queued", 0, 500)]


class TestPerfettoExport:
    def test_request_tracks_scaled_and_named(self):
        out = request_track_events(_lifecycle_events(), clock_mhz=100.0)
        procs = [
            e for e in out
            if e["ph"] == "M" and e["name"] == "process_name"
        ]
        assert procs[0]["args"]["name"] == "serving requests (virtual)"
        slices = [e for e in out if e["ph"] == "X"]
        assert {e["name"] for e in slices} == {
            "queued", "prefill", "decode", "preempted"
        }
        queued = next(e for e in slices if e["name"] == "queued")
        assert queued["ts"] == pytest.approx(0.0)
        assert queued["dur"] == pytest.approx(0.1)  # 10 cycles @ 100 MHz
        instants = {e["name"] for e in out if e["ph"] == "i"}
        assert {"arrive", "preempt", "complete"} <= instants

    def test_slo_alert_lane(self):
        vt = VTraceRecorder()
        vt.emit("arrive", 0, 0)
        vt.emit("slo_alert", 123, None, burn_fast=8.0)
        out = request_track_events(vt.events, clock_mhz=100.0)
        alert = next(e for e in out if e.get("name") == "slo_alert" and e["ph"] == "i")
        assert alert["args"] == {"burn_fast": 8.0}
        lanes = [
            e["args"]["name"] for e in out
            if e["ph"] == "M" and e["name"] == "thread_name"
        ]
        assert "slo alerts" in lanes

    def test_device_timeline_reconstruction(self):
        tl = device_timeline(_lifecycle_events())
        assert set(tl.engines()) == {"device.prefill", "device.decode"}
        prefills = tl.busy_intervals("device.prefill")
        assert len(prefills) == 2
        assert tl.makespan == 340  # last decode_iter at 290 + 50 cycles

    def test_rejects_bad_clock(self):
        with pytest.raises(ValueError):
            request_track_events([], clock_mhz=0.0)


class TestJsonlLog:
    def test_header_schema_and_round_trip(self):
        lines = vtrace_jsonl_lines(_lifecycle_events(), metadata={"seed": 1})
        header = json.loads(lines[0])
        assert header["type"] == "vtrace_header"
        assert header["schema"] == EVENT_SCHEMA_VERSION
        assert header["events"] == len(lines) - 1
        assert header["metadata"] == {"seed": 1}
        body = [json.loads(line) for line in lines[1:]]
        assert all(rec["type"] == "vtrace_event" for rec in body)
        assert all(rec["kind"] in EVENT_KINDS for rec in body)

    def test_bit_identical_across_builds(self):
        a = vtrace_jsonl_lines(_lifecycle_events())
        b = vtrace_jsonl_lines(_lifecycle_events())
        assert a == b
