"""Tests for batch transcription with amortized accounting."""

import pytest

from repro.asr.batch import BatchTranscriber
from repro.asr.dataset import LibriSpeechLikeDataset
from repro.asr.pipeline import AsrPipeline


@pytest.fixture(scope="module")
def transcriber(small_params):
    pipeline = AsrPipeline(
        small_params, hw_seq_len=32, decode_engine="incremental"
    )
    return BatchTranscriber(pipeline)


@pytest.fixture(scope="module")
def batch_waveforms():
    utts = LibriSpeechLikeDataset(seed=9).generate(3, min_words=2, max_words=2)
    return [u.waveform for u in utts]


class TestBatchTranscriber:
    def test_all_utterances_transcribed(self, transcriber, batch_waveforms):
        result = transcriber.transcribe_batch(batch_waveforms)
        assert result.num_utterances == 3
        assert len(result.texts) == 3

    def test_pipelining_never_hurts(self, transcriber, batch_waveforms):
        result = transcriber.transcribe_batch(batch_waveforms)
        assert result.pipelined_ms <= result.single_shot_ms + 1e-9
        assert result.pipelining_gain >= 1.0

    def test_single_utterance_no_gain(self, transcriber, batch_waveforms):
        result = transcriber.transcribe_batch(batch_waveforms[:1])
        assert result.pipelining_gain == pytest.approx(1.0)

    def test_matches_individual_transcripts(
        self, transcriber, batch_waveforms
    ):
        batch = transcriber.transcribe_batch(batch_waveforms)
        singles = [
            transcriber.pipeline.transcribe(w).text for w in batch_waveforms
        ]
        assert batch.texts == singles

    def test_throughput_positive(self, transcriber, batch_waveforms):
        result = transcriber.transcribe_batch(batch_waveforms)
        assert result.throughput_seq_per_s > 0

    def test_empty_batch_rejected(self, transcriber):
        with pytest.raises(ValueError):
            transcriber.transcribe_batch([])

    def test_nonpositive_pipelined_ms_raises_clearly(self):
        """Regression: a zero/negative pipelined time used to surface as
        a ZeroDivisionError (or a misleading "empty batch" message) from
        the throughput property; both accessors must name the actual
        invariant instead."""
        from repro.asr.batch import BatchResult

        broken = BatchResult(results=(), single_shot_ms=1.0, pipelined_ms=0.0)
        with pytest.raises(ValueError, match="pipelined_ms must be positive"):
            broken.throughput_seq_per_s
        with pytest.raises(ValueError, match="pipelined_ms must be positive"):
            broken.pipelining_gain

    def test_single_shot_reuses_per_result_reports(
        self, transcriber, batch_waveforms
    ):
        """The naive accounting must be exactly the sum of the per-result
        accelerator latencies — it used to recompute the report and
        could drift from what each TranscriptionResult carries."""
        result = transcriber.transcribe_batch(batch_waveforms)
        assert result.single_shot_ms == pytest.approx(
            sum(r.accelerator_ms for r in result.results), abs=0.0
        )
