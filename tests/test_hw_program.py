"""The block-program IR: one lowering, three executors in lock-step.

The drift-lock sweep in ``test_hw_block_trace.py`` pins the cycle
numbers against the analytic estimators; this file pins the *structure*
of the program and the agreement between the executors — plus fault
injection as a program transform.
"""

import numpy as np
import pytest

from repro.config import ModelConfig
from repro.hw.faults import FaultSpec, inject_faults, program_fault_hook
from repro.hw.program import (
    OpKind,
    block_compute_cycles,
    execute_program,
    lower_decode_step,
    lower_encoder_stack,
    lower_full_pass,
    program_block_work,
    resolve_head_parallelism,
    schedule_program,
    trace_block,
    trace_program,
)

MODEL = ModelConfig(num_encoders=2, num_decoders=2)


@pytest.fixture(scope="module")
def program(fabric):
    return lower_full_pass(MODEL, fabric, 8)


class TestLoweringStructure:
    def test_lowering_is_cached(self, fabric):
        assert lower_full_pass(MODEL, fabric, 8) is lower_full_pass(
            MODEL, fabric, 8
        )

    def test_rejects_nonpositive_lengths(self, fabric):
        with pytest.raises(ValueError):
            lower_full_pass(MODEL, fabric, 0)
        with pytest.raises(ValueError):
            lower_decode_step(MODEL, fabric, 0, 8)

    def test_rejects_bad_head_parallelism(self, fabric):
        with pytest.raises(ValueError):
            lower_full_pass(MODEL, fabric, 8, parallel_heads=99)
        assert resolve_head_parallelism(fabric, 8, 2) == (2, 4)

    def test_blocks_partition_ops(self, program):
        seen: set[int] = set()
        for block in program.blocks:
            ids = set(block.op_ids)
            assert not ids & seen, f"{block.label} shares ops"
            seen |= ids
        assert seen == set(range(program.num_ops))

    def test_block_labels_follow_layers(self, program):
        labels = [b.label for b in program.blocks]
        assert labels == ["enc1", "enc2", "dec1m", "dec1f", "dec2m", "dec2f"]
        for b in program.blocks:
            if b.label.startswith("dec"):
                assert b.merge_group == b.label[:-1]

    def test_every_compute_op_is_engine_placed(self, program):
        for op in program.ops:
            assert op.engines
            if op.kind is OpKind.LOAD:
                assert op.engines == ("hbm",)

    def test_op_count_invariant_across_head_parallelism(self, fabric):
        counts = {
            lower_full_pass(MODEL, fabric, 8, parallel_heads=ph).num_ops
            for ph in (1, 2, 4, 8)
        }
        assert len(counts) == 1


class TestCycleExecutor:
    def test_a3_splits_decoders_a1_merges_them(self, program):
        a3 = program_block_work(program, "A3")
        a1 = program_block_work(program, "A1")
        assert len(a3) == MODEL.num_encoders + 2 * MODEL.num_decoders
        assert len(a1) == MODEL.num_encoders + MODEL.num_decoders
        # A3 pins decoder MHA and FFN parts to different HBM channels
        # (Fig 4.11 two-channel prefetch).
        channels = {
            w.label: w.channel_hint for w in a3 if w.label.startswith("dec")
        }
        assert channels["dec1m"] != channels["dec1f"]

    def test_merged_load_is_one_bundle_not_a_sum(self, program):
        a3 = {w.label: w for w in program_block_work(program, "A3")}
        a1 = {w.label: w for w in program_block_work(program, "A1")}
        parts = a3["dec1m"].load_cycles + a3["dec1f"].load_cycles
        merged = a1["dec1"].load_cycles
        # One contiguous HBM transfer of the whole decoder bundle: the
        # per-burst rounding never makes it slower than two transfers.
        assert 0 < merged <= parts

    def test_merged_compute_spans_both_parts(self, program):
        a1 = {w.label: w for w in program_block_work(program, "A1")}
        assert a1["dec1"].compute_cycles == (
            block_compute_cycles(program, "dec1m")
            + block_compute_cycles(program, "dec1f")
        )


class TestTraceExecutor:
    def test_trace_block_makespan_matches_cycle_executor(self, fabric):
        program = lower_encoder_stack(MODEL, fabric, 8)
        timeline = trace_block(program, "enc1")
        assert timeline.makespan == block_compute_cycles(program, "enc1")

    @pytest.mark.parametrize("architecture", ["A1", "A2", "A3"])
    def test_trace_program_agrees_with_schedule(self, program, architecture):
        total = schedule_program(program, architecture).total_cycles
        timeline = trace_program(program, architecture)
        assert timeline.makespan == total
        timeline.validate_no_engine_overlap()

    def test_a3_uses_both_hbm_channels(self, program):
        timeline = trace_program(program, "A3")
        load_engines = {
            e.engine for e in timeline.events if e.kind == "load"
        }
        assert {"hbm0", "hbm1"} <= load_engines


class TestFunctionalExecutor:
    def test_missing_input_raises(self, fabric, small_params):
        program = lower_encoder_stack(small_params.config, fabric, 4)
        with pytest.raises(KeyError):
            execute_program(program, root=small_params, inputs={})

    def test_fault_hook_equals_param_injection(self, fabric, small_params, rng):
        """Fault injection as a program transform: hooking the weight
        reads of the clean program produces bit-identical outputs to
        running the clean program over deep-copied corrupted params."""
        cfg = small_params.config
        s = 4
        program = lower_encoder_stack(cfg, fabric, s)
        x = rng.standard_normal((s, cfg.d_model)).astype(np.float32)
        inputs = {"x": x, "enc_mask": None}
        faults = [
            FaultSpec("enc0.ffn.w1", index=3, bit=30),
            FaultSpec("enc1.mha.wq", index=7, bit=22),
        ]
        clean = execute_program(program, root=small_params, inputs=inputs)
        hooked = execute_program(
            program,
            root=small_params,
            inputs=inputs,
            weight_hook=program_fault_hook(faults),
        )
        injected = execute_program(
            program, root=inject_faults(small_params, faults), inputs=inputs
        )
        np.testing.assert_array_equal(
            hooked.outputs["output"], injected.outputs["output"]
        )
        assert not np.array_equal(
            hooked.outputs["output"], clean.outputs["output"]
        )

    def test_fault_hook_leaves_params_clean(self, fabric, small_params, rng):
        cfg = small_params.config
        program = lower_encoder_stack(cfg, fabric, 4)
        x = rng.standard_normal((4, cfg.d_model)).astype(np.float32)
        before = small_params.encoders[0].ffn.w1.copy()
        execute_program(
            program,
            root=small_params,
            inputs={"x": x, "enc_mask": None},
            weight_hook=program_fault_hook(
                [FaultSpec("enc0.ffn.w1", index=0, bit=31)]
            ),
        )
        np.testing.assert_array_equal(small_params.encoders[0].ffn.w1, before)
