"""Tests for chunked/streaming transcription."""

import numpy as np
import pytest

from repro.asr.dataset import LibriSpeechLikeDataset
from repro.asr.pipeline import AsrPipeline
from repro.asr.streaming import StreamingTranscriber


@pytest.fixture(scope="module")
def pipeline(small_params):
    return AsrPipeline(small_params, hw_seq_len=32)


@pytest.fixture(scope="module")
def transcriber(pipeline):
    return StreamingTranscriber(pipeline)


class TestChunking:
    def test_chunk_size_fits_hardware(self, transcriber, pipeline):
        prep = pipeline.preprocessor
        assert (
            prep.sequence_length(transcriber.chunk_samples)
            <= pipeline.accelerator.hw_seq_len
        )
        # One more hop of samples would overflow.
        assert (
            prep.sequence_length(transcriber.chunk_samples + 200)
            > pipeline.accelerator.hw_seq_len
        )

    def test_chunks_cover_waveform(self, transcriber):
        wav = np.zeros(transcriber.chunk_samples * 3 + 1234)
        chunks = transcriber.chunk(wav)
        assert sum(c.size for c in chunks) >= wav.size

    def test_short_waveform_single_chunk(self, transcriber):
        wav = np.zeros(transcriber.chunk_samples // 2)
        assert len(transcriber.chunk(wav)) == 1

    def test_rejects_empty(self, transcriber):
        with pytest.raises(ValueError):
            transcriber.chunk(np.array([]))

    def test_rejects_2d(self, transcriber):
        with pytest.raises(ValueError):
            transcriber.chunk(np.zeros((2, 100)))

    def test_overlap_validation(self, pipeline):
        with pytest.raises(ValueError):
            StreamingTranscriber(pipeline, overlap_s=-1.0)
        with pytest.raises(ValueError):
            StreamingTranscriber(pipeline, overlap_s=100.0)


class TestStreamingTranscription:
    def test_long_utterance_multi_chunk(self, transcriber):
        # ~3.4 s of audio: several chunks through the s=32 hardware.
        utt = LibriSpeechLikeDataset(seed=4).generate(
            1, min_words=9, max_words=9
        )[0]
        result = transcriber.transcribe(utt.waveform)
        assert result.num_chunks >= 2
        assert result.audio_seconds == pytest.approx(utt.duration_s)
        assert result.total_e2e_ms > result.chunk_results[0].e2e_ms

    def test_real_time_factor_below_one(self, transcriber):
        """The abstract's real-time claim: processing keeps up with
        audio (modeled host + accelerator per ~1.4 s chunk)."""
        utt = LibriSpeechLikeDataset(seed=5).generate(
            1, min_words=8, max_words=8
        )[0]
        result = transcriber.transcribe(utt.waveform)
        assert result.real_time_factor < 1.0

    def test_each_chunk_within_hw_limit(self, transcriber, pipeline):
        utt = LibriSpeechLikeDataset(seed=6).generate(
            1, min_words=10, max_words=10
        )[0]
        result = transcriber.transcribe(utt.waveform)
        for chunk_result in result.chunk_results:
            assert (
                chunk_result.sequence_length
                <= pipeline.accelerator.hw_seq_len
            )

    def test_too_short_rejected(self, transcriber):
        with pytest.raises(ValueError):
            transcriber.transcribe(np.zeros(10))
