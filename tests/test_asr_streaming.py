"""Tests for chunked/streaming transcription."""

import numpy as np
import pytest

from types import SimpleNamespace

from repro.asr.dataset import LibriSpeechLikeDataset
from repro.asr.pipeline import AsrPipeline
from repro.asr.streaming import StreamingTranscriber, dedup_join


@pytest.fixture(scope="module")
def pipeline(small_params):
    return AsrPipeline(small_params, hw_seq_len=32)


@pytest.fixture(scope="module")
def transcriber(pipeline):
    return StreamingTranscriber(pipeline)


class TestChunking:
    def test_chunk_size_fits_hardware(self, transcriber, pipeline):
        prep = pipeline.preprocessor
        assert (
            prep.sequence_length(transcriber.chunk_samples)
            <= pipeline.accelerator.hw_seq_len
        )
        # One more hop of samples would overflow.
        assert (
            prep.sequence_length(transcriber.chunk_samples + 200)
            > pipeline.accelerator.hw_seq_len
        )

    def test_chunks_cover_waveform(self, transcriber):
        wav = np.zeros(transcriber.chunk_samples * 3 + 1234)
        chunks = transcriber.chunk(wav)
        assert sum(c.size for c in chunks) >= wav.size

    def test_short_waveform_single_chunk(self, transcriber):
        wav = np.zeros(transcriber.chunk_samples // 2)
        assert len(transcriber.chunk(wav)) == 1

    def test_rejects_empty(self, transcriber):
        with pytest.raises(ValueError):
            transcriber.chunk(np.array([]))

    def test_rejects_2d(self, transcriber):
        with pytest.raises(ValueError):
            transcriber.chunk(np.zeros((2, 100)))

    def test_overlap_validation(self, pipeline):
        with pytest.raises(ValueError):
            StreamingTranscriber(pipeline, overlap_s=-1.0)
        with pytest.raises(ValueError):
            StreamingTranscriber(pipeline, overlap_s=100.0)


class TestDedupJoin:
    def test_overlap_duplicate_trimmed(self):
        text, trimmed = dedup_join(
            ["alpha bravo charlie delta", "charlie delta echo"], [0.0, 0.5]
        )
        assert text == "alpha bravo charlie delta echo"
        assert trimmed == 2

    def test_no_overlap_keeps_genuine_repetition(self):
        """Repetition in non-overlapping audio is real speech."""
        text, trimmed = dedup_join(["the cat", "the cat"], [0.0, 0.0])
        assert text == "the cat the cat"
        assert trimmed == 0

    def test_cap_limits_trim_to_overlap_fraction(self):
        """A repeat longer than the overlap can explain is kept."""
        text, trimmed = dedup_join(["a b c d", "a b c d"], [0.0, 0.25])
        assert text == "a b c d a b c d"
        assert trimmed == 0

    def test_empty_chunk_skipped(self):
        text, trimmed = dedup_join(["hello", "", "world"], [0.0, 0.5, 0.5])
        assert text == "hello world"
        assert trimmed == 0

    def test_mismatched_lengths_rejected(self):
        with pytest.raises(ValueError):
            dedup_join(["a"], [0.0, 0.5])


class TestFinalFlushDedup:
    """Regression for the transcript-duplication bug: the final chunk is
    flushed to the end of the waveform, re-covering the tail of its
    predecessor, and the old naive join emitted the re-recognized words
    twice."""

    def test_final_flush_overlaps_predecessor(self, transcriber):
        wav = np.zeros(int(transcriber.chunk_samples * 1.5))
        spans = transcriber.chunk_spans(wav)
        assert len(spans) == 2
        assert spans[1][0] < spans[0][1]  # re-covered samples
        assert spans[1][1] == wav.size  # no dropped tail

    def test_overlap_words_not_duplicated(self, transcriber, monkeypatch):
        wav = np.zeros(int(transcriber.chunk_samples * 1.5))
        spans = transcriber.chunk_spans(wav)
        assert len(spans) == 2
        # The final flush re-recognizes its predecessor's tail words;
        # exactly what a fixed-window recognizer emits on re-covered
        # audio.  The old " ".join of chunk texts fails this test with
        # "... charlie delta charlie delta echo".
        texts = iter(["alpha bravo charlie delta", "charlie delta echo"])
        monkeypatch.setattr(
            transcriber.pipeline,
            "transcribe",
            lambda chunk: SimpleNamespace(text=next(texts)),
        )
        result = transcriber.transcribe(wav)
        assert result.text == "alpha bravo charlie delta echo"
        assert result.details["dedup_words"] == 2.0
        assert result.details["overlap_samples_total"] == float(
            spans[0][1] - spans[1][0]
        )


class TestStreamingTranscription:
    def test_long_utterance_multi_chunk(self, transcriber):
        # ~3.4 s of audio: several chunks through the s=32 hardware.
        utt = LibriSpeechLikeDataset(seed=4).generate(
            1, min_words=9, max_words=9
        )[0]
        result = transcriber.transcribe(utt.waveform)
        assert result.num_chunks >= 2
        assert result.audio_seconds == pytest.approx(utt.duration_s)
        assert result.total_e2e_ms > result.chunk_results[0].e2e_ms

    def test_real_time_factor_below_one(self, transcriber):
        """The abstract's real-time claim: processing keeps up with
        audio (modeled host + accelerator per ~1.4 s chunk)."""
        utt = LibriSpeechLikeDataset(seed=5).generate(
            1, min_words=8, max_words=8
        )[0]
        result = transcriber.transcribe(utt.waveform)
        assert result.real_time_factor < 1.0

    def test_each_chunk_within_hw_limit(self, transcriber, pipeline):
        utt = LibriSpeechLikeDataset(seed=6).generate(
            1, min_words=10, max_words=10
        )[0]
        result = transcriber.transcribe(utt.waveform)
        for chunk_result in result.chunk_results:
            assert (
                chunk_result.sequence_length
                <= pipeline.accelerator.hw_seq_len
            )

    def test_too_short_rejected(self, transcriber):
        with pytest.raises(ValueError):
            transcriber.transcribe(np.zeros(10))
