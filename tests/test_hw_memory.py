"""Tests for the HBM/PCIe/BRAM models and weight sizing."""

import pytest

from repro.config import CalibrationConfig, HardwareConfig, ModelConfig
from repro.hw.memory import (
    BramModel,
    HbmModel,
    PcieModel,
    decoder_ffn_weight_bytes,
    decoder_load_bytes,
    decoder_mha_weight_bytes,
    decoder_weight_bytes,
    encoder_load_bytes,
    encoder_weight_bytes,
)
from repro.model.flops import weight_bytes
from repro.model.params import init_transformer_params


@pytest.fixture(scope="module")
def hbm():
    return HbmModel(HardwareConfig(), CalibrationConfig())


class TestHbm:
    def test_zero_bytes_zero_cycles(self, hbm):
        assert hbm.transfer_cycles(0) == 0

    def test_channels_divide_time(self, hbm):
        one = hbm.transfer_cycles(1 << 20, channels=1)
        two = hbm.transfer_cycles(1 << 20, channels=2)
        assert two == pytest.approx(one / 2, rel=0.01)

    def test_linear_in_bytes(self, hbm):
        assert hbm.transfer_cycles(2 << 20) == pytest.approx(
            2 * hbm.transfer_cycles(1 << 20), rel=0.01
        )

    def test_load_efficiency_multiplier(self):
        fast = HbmModel(HardwareConfig(), CalibrationConfig(load_efficiency=1.0))
        slow = HbmModel(HardwareConfig(), CalibrationConfig(load_efficiency=1.5))
        assert slow.transfer_cycles(1 << 20) > fast.transfer_cycles(1 << 20)

    def test_validation(self, hbm):
        with pytest.raises(ValueError):
            hbm.transfer_cycles(-1)
        with pytest.raises(ValueError):
            hbm.transfer_cycles(10, channels=0)


class TestPcie:
    def test_seconds(self):
        pcie = PcieModel(HardwareConfig(pcie_gbps=12.0))
        assert pcie.transfer_seconds(12_000_000_000) == pytest.approx(1.0)

    def test_cycles(self):
        pcie = PcieModel(HardwareConfig(pcie_gbps=12.0, clock_mhz=300.0))
        # 12 GB/s at 300 MHz -> 40 bytes per cycle.
        assert pcie.transfer_cycles(40_000) == pytest.approx(1000, abs=1)


class TestWeightSizing:
    def test_analytic_matches_instantiated_params(self, small_config, small_params):
        analytic = encoder_weight_bytes(small_config)
        actual = encoder_load_bytes(small_params.encoders[0])
        assert analytic == actual

    def test_decoder_parts_sum(self, small_config, small_params):
        layer = small_params.decoders[0]
        assert decoder_load_bytes(layer) == decoder_weight_bytes(small_config)
        assert (
            decoder_mha_weight_bytes(small_config)
            + decoder_ffn_weight_bytes(small_config)
            == decoder_weight_bytes(small_config)
        )

    def test_paper_scale_sizes(self):
        """Encoder ~12.6 MB, decoder ~16.8 MB of fp32 weights."""
        cfg = ModelConfig()
        assert encoder_weight_bytes(cfg) / 1e6 == pytest.approx(12.6, rel=0.02)
        assert decoder_weight_bytes(cfg) / 1e6 == pytest.approx(16.8, rel=0.02)

    def test_totals_match_flops_module(self):
        cfg = ModelConfig()
        total = (
            cfg.num_encoders * encoder_weight_bytes(cfg)
            + cfg.num_decoders * decoder_weight_bytes(cfg)
        )
        assert total == weight_bytes(cfg)

    def test_decoder_mha_part_heavier_than_ffn_part(self):
        """Two attention blocks outweigh one FFN in bytes."""
        cfg = ModelConfig()
        assert decoder_mha_weight_bytes(cfg) > decoder_ffn_weight_bytes(cfg)


class TestBram:
    def test_capacity(self):
        bram = BramModel(HardwareConfig())
        assert bram.capacity_bytes() == 2688 * 2304

    def test_blocks_for_bytes(self):
        bram = BramModel(HardwareConfig())
        assert bram.blocks_for_bytes(0) == 0
        assert bram.blocks_for_bytes(1) == 1
        assert bram.blocks_for_bytes(2304) == 1
        assert bram.blocks_for_bytes(2305) == 2

    def test_check_fits(self):
        bram = BramModel(HardwareConfig())
        bram.check_fits(1000)  # no raise
        with pytest.raises(ValueError):
            bram.check_fits(bram.capacity_bytes() + 1, what="weights")

    def test_full_encoder_exceeds_bram(self):
        """A whole encoder's 12.6 MB cannot sit in 6 MB of BRAM — the
        design must stream weight panels (which it does)."""
        bram = BramModel(HardwareConfig())
        with pytest.raises(ValueError):
            bram.check_fits(encoder_weight_bytes(ModelConfig()))
