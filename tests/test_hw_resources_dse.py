"""Tests for the resource model (Table 5.2) and the DSE (Table 5.3)."""

import pytest

from repro.config import HardwareConfig
from repro.hw.dse import (
    best_synthesizable,
    head_parallelism_sweep,
    psa_dimension_sweep,
)
from repro.hw.resources import check_synthesizable, estimate_resources


class TestResourceModel:
    def test_reproduces_table_5_2(self):
        """Paper @ s=32: BRAM 1202, DSP 1348, FF 1191892, LUT 765828."""
        est = estimate_resources(seq_len=32)
        assert est.dsp == pytest.approx(1348, rel=0.02)
        assert est.ff == pytest.approx(1191892, rel=0.02)
        assert est.lut == pytest.approx(765828, rel=0.02)
        assert est.bram_18k == pytest.approx(1202, rel=0.05)

    def test_design_fits_device(self):
        est = estimate_resources(seq_len=32)
        assert est.fits()
        check_synthesizable(est)  # no raise

    def test_lut_is_binding_resource(self):
        """Section 5.1.3: 'the architecture is limited by the LUTs'."""
        est = estimate_resources(seq_len=32)
        assert est.binding_resource() == "LUT"
        util = est.utilization()
        assert util["DSP"] < 0.25  # 'DSP utilization is relatively low'
        assert util["LUT"] > 0.8

    def test_resources_grow_with_psa_rows(self):
        small = estimate_resources(HardwareConfig(psa_rows=2))
        big = estimate_resources(HardwareConfig(psa_rows=8))
        assert big.lut > small.lut
        assert big.dsp > small.dsp

    def test_bram_grows_with_seq_len(self):
        assert (
            estimate_resources(seq_len=64).bram_18k
            > estimate_resources(seq_len=8).bram_18k
        )

    def test_oversized_design_rejected(self):
        est = estimate_resources(HardwareConfig(psa_rows=16))
        assert not est.fits()
        with pytest.raises(ValueError):
            check_synthesizable(est)

    def test_rejects_bad_seq_len(self):
        with pytest.raises(ValueError):
            estimate_resources(seq_len=0)

    def test_as_dict_keys(self):
        est = estimate_resources()
        assert set(est.as_dict()) == {"BRAM_18K", "DSP", "FF", "LUT"}


class TestHeadParallelismSweep:
    def test_reproduces_table_5_3_ordering(self):
        """(8,1) fastest .. (1,8) slowest; magnitudes near the paper."""
        points = head_parallelism_sweep(s=32)
        assert [p.parallel_heads for p in points] == [8, 4, 2, 1]
        assert [p.concurrent_psas_per_head for p in points] == [1, 2, 4, 8]
        latencies = [p.latency_ms for p in points]
        assert latencies == sorted(latencies)
        # Paper: 84.15 .. 92.03 ms.  The tail point runs hot in our
        # model (it serializes MM2/MM3 across head waves, where the
        # paper's static HLS schedule overlaps part of that work) —
        # see EXPERIMENTS.md.
        assert latencies[0] == pytest.approx(84.15, rel=0.10)
        assert latencies[-1] == pytest.approx(92.03, rel=0.20)

    def test_spread_is_modest(self):
        """The paper's DSE spread is < 10% end to end; ours stays < 30%."""
        points = head_parallelism_sweep(s=32)
        assert points[-1].latency_ms / points[0].latency_ms < 1.30


class TestPsaDimensionSweep:
    def test_larger_arrays_faster_but_infeasible(self):
        points = psa_dimension_sweep(rows_options=(1, 2, 4, 8, 16), s=32)
        lat = [p.latency_ms for p in points]
        assert lat == sorted(lat, reverse=True)  # more rows -> faster
        assert points[-1].synthesizable is False  # 16 rows blows LUTs

    def test_paper_design_point_is_best_feasible(self):
        points = psa_dimension_sweep(rows_options=(1, 2, 4, 8, 16), s=32)
        best = best_synthesizable(points)
        # The paper settled on 2x64; our resource model allows up to 2.
        assert best.psa_rows == 2

    def test_best_synthesizable_raises_when_none(self):
        points = psa_dimension_sweep(rows_options=(64,), s=32)
        with pytest.raises(ValueError):
            best_synthesizable(points)

    def test_rejects_bad_rows(self):
        with pytest.raises(ValueError):
            psa_dimension_sweep(rows_options=(0,))


class TestPsaGridSweep:
    @pytest.fixture(scope="class")
    def grid(self):
        from repro.hw.dse import psa_grid_sweep

        return psa_grid_sweep()

    def test_grid_covers_all_combinations(self, grid):
        assert len(grid) == 16
        assert {(p.psa_rows, p.psa_cols) for p in grid} == {
            (r, c) for r in (1, 2, 4, 8) for c in (16, 32, 64, 128)
        }

    def test_more_pes_never_slower(self, grid):
        by_dims = {(p.psa_rows, p.psa_cols): p for p in grid}
        assert (
            by_dims[(2, 64)].latency_ms <= by_dims[(1, 64)].latency_ms
        )
        assert (
            by_dims[(4, 64)].latency_ms <= by_dims[(2, 64)].latency_ms
        )

    def test_pareto_frontier_is_sorted_and_feasible(self, grid):
        from repro.hw.dse import pareto_frontier

        front = pareto_frontier(grid)
        assert front
        latencies = [p.latency_ms for p in front]
        assert latencies == sorted(latencies)
        luts = [p.resources.lut for p in front]
        # Along the frontier, faster points cost more LUTs.
        assert luts == sorted(luts, reverse=True)
        assert all(p.synthesizable for p in front)

    def test_no_frontier_point_dominated(self, grid):
        from repro.hw.dse import pareto_frontier

        front = pareto_frontier(grid)
        feasible = [p for p in grid if p.synthesizable]
        for p in front:
            for q in feasible:
                dominates = (
                    q.latency_ms <= p.latency_ms
                    and q.resources.lut <= p.resources.lut
                    and (
                        q.latency_ms < p.latency_ms
                        or q.resources.lut < p.resources.lut
                    )
                )
                assert not dominates

    def test_paper_design_point_near_frontier(self, grid):
        """The paper's 2x64 point and the model's equal-PE alternatives
        (e.g. 4x32) agree within ~10% — consistent with the paper
        choosing among near-equivalent grids experimentally."""
        from repro.hw.dse import best_synthesizable

        by_dims = {(p.psa_rows, p.psa_cols): p for p in grid}
        paper = by_dims[(2, 64)]
        best = best_synthesizable(grid)
        assert paper.synthesizable
        assert best.latency_ms <= paper.latency_ms
        assert paper.latency_ms / best.latency_ms < 1.12
