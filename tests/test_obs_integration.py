"""Telemetry wired through the simulator stack: deterministic op/byte
accounting, functional-vs-trace agreement, KV-cache and beam counters,
and the guarantee that disabled telemetry changes nothing."""

import numpy as np
import pytest

from repro import obs
from repro.config import ModelConfig
from repro.hw.accelerator import TransformerAccelerator
from repro.hw.controller import LatencyModel
from repro.hw.program import (
    execute_program,
    lower_full_pass,
    program_hbm_bytes,
    program_load_bytes,
    program_op_counts,
    trace_program,
)
from repro.model.params import init_transformer_params

SOS, EOS = 1, 2


@pytest.fixture(scope="module")
def params():
    cfg = ModelConfig(
        d_model=64,
        num_heads=2,
        d_ff=128,
        num_encoders=1,
        num_decoders=2,
        vocab_size=31,
    )
    return init_transformer_params(cfg, seed=11)


@pytest.fixture(scope="module")
def accel(params):
    return TransformerAccelerator(params, hw_seq_len=8)


def _features(accel) -> np.ndarray:
    rng = np.random.default_rng(5)
    d = accel.config.d_model
    return (0.5 * rng.standard_normal((accel.hw_seq_len, d))).astype(np.float32)


def _run_full_pass(accel, params):
    program = accel.program()
    s = accel.hw_seq_len
    rng = np.random.default_rng(0)
    inputs = {
        "x": rng.standard_normal((s, params.config.d_model)).astype(np.float32),
        "dec_in": rng.standard_normal((s, params.config.d_model)).astype(
            np.float32
        ),
        "enc_mask": None,
        "dec_self_mask": None,
        "dec_memory_mask": None,
    }
    execute_program(program, root=params, inputs=inputs)
    return program


class TestExecutorAccounting:
    def test_op_and_byte_counters_deterministic(self, accel, params):
        def one_run() -> dict:
            with obs.telemetry() as session:
                _run_full_pass(accel, params)
            return {
                k: v
                for k, v in session.metrics.as_dict().items()
                if k.startswith("repro.hw.program.ops")
                or k == "repro.hw.hbm.bytes_streamed"
            }

        first, second = one_run(), one_run()
        assert first == second
        assert any(v > 0 for v in first.values())

    def test_functional_and_trace_agree_on_ops(self, accel, params):
        """The functional executor's op counters and the trace probe's
        op gauges come from the same lowering and must agree exactly."""
        with obs.telemetry() as session:
            program = _run_full_pass(accel, params)
            obs.record_program_metrics(program)
        metrics = session.metrics.as_dict()
        kinds = program_op_counts(program)
        assert kinds  # load + matmul + vector at minimum
        for kind, count in kinds.items():
            assert metrics[f"repro.hw.program.ops{{kind={kind}}}"] == count
            assert metrics[f"repro.hw.program.trace_ops{{kind={kind}}}"] == count

    def test_trace_event_count_matches_op_account(self, accel):
        """Every non-zero-cycle compute/stream op appears on each of
        its engines in the trace executor's timeline; weight movement
        shows up as the scheduled HBM loads plus the host dispatch
        overheads — nothing else."""
        from repro.hw.program import OpKind

        program = accel.program()
        timeline = trace_program(program, "A3")
        op_events = sum(
            len(op.engines)
            for op in program.ops
            if op.cycles > 0 and op.kind is not OpKind.LOAD
        )
        other = sum(
            1 for e in timeline.events if e.kind in ("load", "overhead")
        )
        assert op_events > 0
        assert len(timeline.events) == op_events + other

    @pytest.mark.parametrize("arch", ["A1", "A2", "A3"])
    def test_hbm_channel_bytes_total_to_load_bytes(self, params, arch):
        lm = LatencyModel(model=params.config)
        program = lm.full_pass_program(16)
        per_channel = program_hbm_bytes(program, arch)
        assert sum(per_channel.values()) == program_load_bytes(program)
        assert program_load_bytes(program) > 0
        if arch == "A3":
            # Fig 4.11: decoder MHA on channel 0, FFN on channel 1.
            assert set(per_channel) == {0, 1}

    def test_bytes_streamed_counter_matches_program(self, accel, params):
        with obs.telemetry() as session:
            program = _run_full_pass(accel, params)
        assert session.metrics.value(
            "repro.hw.hbm.bytes_streamed"
        ) == program_load_bytes(program)

    def test_lowering_cache_metrics_present(self, accel, params):
        with obs.telemetry() as session:
            _run_full_pass(accel, params)
        hits = [
            k
            for k in session.metrics.as_dict()
            if k.startswith("repro.hw.program.lower.cache_hits")
        ]
        assert any("lowering=lower_full_pass" in k for k in hits)


class TestProbeMetrics:
    def test_engine_and_schedule_gauges(self, accel):
        with obs.telemetry() as session:
            timeline = obs.record_program_metrics(accel.program())
        assert timeline is not None
        metrics = session.metrics.as_dict()
        engine_keys = [
            k for k in metrics if k.startswith("repro.hw.engine.busy_cycles")
        ]
        assert any("engine=hbm0" in k for k in engine_keys)
        assert any(".psa" in k for k in engine_keys)
        assert 0 < metrics["repro.hw.psa.occupancy"] <= 1
        assert metrics["repro.hw.schedule.total_cycles"] > 0

    def test_probe_disabled_returns_none(self, accel):
        assert obs.record_program_metrics(accel.program()) is None

    def test_schedule_gauges_come_from_the_traced_pass(self, accel):
        # The probe schedules the program exactly once: the schedule
        # gauges must agree with an independent schedule_program() call
        # and with the traced makespan.
        from repro.hw.program import schedule_program

        program = accel.program()
        overhead = program.fabric.calibration.block_overhead_cycles
        with obs.telemetry() as session:
            timeline = obs.record_program_metrics(program)
        sched = schedule_program(program, "A3", block_overhead=overhead)
        metrics = session.metrics.as_dict()
        assert metrics["repro.hw.schedule.total_cycles"] == sched.total_cycles
        assert metrics["repro.hw.schedule.stall_cycles"] == sched.stall_cycles
        assert timeline.makespan == sched.total_cycles

    def test_trace_with_schedule_matches_plain_trace(self, accel):
        from repro.hw.program import trace_program_with_schedule

        program = accel.program()
        timeline, sched = trace_program_with_schedule(program, "A3")
        assert timeline.makespan == trace_program(program, "A3").makespan
        assert sched.total_cycles == timeline.makespan


class TestKvCacheCounters:
    def test_prefill_append_rewind_account(self, accel, params):
        cfg = params.config
        with obs.telemetry() as session:
            sess = accel.decode_session(_features(accel))
            step = sess.step_fn()
            step(np.array([SOS, 4, 9], dtype=np.int64))
            resident_full = session.metrics.value(
                "repro.hw.kv_cache.resident_bytes"
            )
            sess.rewind(1)
        m = session.metrics.as_dict()
        assert m["repro.hw.kv_cache.prefills"] == 1
        # 3 steps x num_decoders layers x num_heads heads x (K + V)
        assert m["repro.hw.kv_cache.appends"] == (
            3 * cfg.num_decoders * cfg.num_heads * 2
        )
        assert m["repro.hw.kv_cache.rewinds"] == 1
        assert m["repro.hw.decode.steps"] == 3
        assert 0 < m["repro.hw.kv_cache.resident_bytes"] < resident_full


class TestBeamCounters:
    def test_expansions_and_early_stop(self):
        from repro.decoding.beam import beam_search

        def step_fn(tokens):
            # eos strongly preferred: finishes fast and triggers the
            # early-stop bound once the beam fills with finished hyps.
            lp = np.full(8, -10.0)
            lp[EOS] = -0.1
            lp[3] = -1.0
            return lp

        with obs.telemetry() as session:
            beam_search(step_fn, SOS, EOS, max_len=6, beam_size=2,
                        length_penalty=1.0)
        m = session.metrics.as_dict()
        assert m["repro.decoding.beam.hypotheses_expanded"] >= 1
        assert m["repro.decoding.beam.finished"] >= 2
        assert m["repro.decoding.beam.early_stops"] == 1


class TestDisabledTelemetryUnchanged:
    def test_latency_model_numbers_identical(self):
        lm = LatencyModel()
        baseline = lm.latency_ms(32, "A3")
        with obs.telemetry():
            instrumented = LatencyModel().latency_ms(32, "A3")
        assert instrumented == baseline
        assert lm.latency_ms(32, "A3") == baseline

    def test_functional_outputs_identical(self, accel, params):
        program = accel.program()
        s = accel.hw_seq_len
        rng = np.random.default_rng(1)
        inputs = {
            "x": rng.standard_normal((s, params.config.d_model)).astype(
                np.float32
            ),
            "dec_in": rng.standard_normal((s, params.config.d_model)).astype(
                np.float32
            ),
            "enc_mask": None,
            "dec_self_mask": None,
            "dec_memory_mask": None,
        }
        plain = execute_program(program, root=params, inputs=inputs)
        with obs.telemetry():
            traced = execute_program(program, root=params, inputs=inputs)
        for name, arr in plain.outputs.items():
            np.testing.assert_array_equal(arr, traced.outputs[name])

    def test_no_registry_writes_when_disabled(self, accel):
        assert not obs.enabled()
        reg = obs.registry()
        trace_program(accel.program(), "A3")  # exercises the hw layer
        assert reg.collect() == []
