"""Tests for the SEU fault-injection machinery."""

import numpy as np
import pytest

from repro.config import ModelConfig
from repro.hw.faults import (
    FaultSpec,
    flip_bit,
    inject_faults,
    measure_impact,
    random_fault,
)
from repro.model.params import init_transformer_params

PARAMS = init_transformer_params(
    ModelConfig(num_encoders=1, num_decoders=1), seed=4
)


class TestFlipBit:
    def test_flip_is_involution(self):
        arr = np.array([1.5, -2.25], dtype=np.float32)
        original = arr.copy()
        flip_bit(arr, 1, 12)
        assert arr[1] != original[1]
        assert arr[0] == original[0]
        flip_bit(arr, 1, 12)
        np.testing.assert_array_equal(arr, original)

    def test_sign_bit(self):
        arr = np.array([3.0], dtype=np.float32)
        flip_bit(arr, 0, 31)
        assert arr[0] == -3.0

    def test_mantissa_lsb_is_tiny(self):
        arr = np.array([1.0], dtype=np.float32)
        flip_bit(arr, 0, 0)
        assert arr[0] == pytest.approx(1.0, rel=1e-6)
        assert arr[0] != 1.0

    def test_exponent_bit_is_huge(self):
        arr = np.array([1.0], dtype=np.float32)
        flip_bit(arr, 0, 30)  # top exponent bit
        assert abs(arr[0]) > 1e30 or arr[0] == 0  # saturates the exponent

    def test_validation(self):
        with pytest.raises(ValueError):
            flip_bit(np.zeros(2, dtype=np.float64), 0, 0)
        with pytest.raises(ValueError):
            flip_bit(np.zeros(2, dtype=np.float32), 5, 0)
        with pytest.raises(ValueError):
            FaultSpec("enc0.ffn.w1", 0, 99)


class TestInjection:
    def test_original_untouched(self):
        fault = FaultSpec("enc0.ffn.w1", index=7, bit=30)
        before = PARAMS.encoders[0].ffn.w1.copy()
        corrupted = inject_faults(PARAMS, [fault])
        np.testing.assert_array_equal(PARAMS.encoders[0].ffn.w1, before)
        assert not np.array_equal(corrupted.encoders[0].ffn.w1, before)

    def test_bad_path_rejected(self):
        with pytest.raises((ValueError, AttributeError, IndexError)):
            inject_faults(PARAMS, [FaultSpec("enc0.nothing", 0, 1)])


class TestImpact:
    def test_mantissa_tail_flip_is_benign(self):
        impact = measure_impact(
            PARAMS, [FaultSpec("enc0.ffn.w1", index=100, bit=0)]
        )
        assert impact.max_abs_logit_delta < 1e-2
        assert impact.top1_flips == 0
        assert not impact.produced_nonfinite

    def test_exponent_flip_is_catastrophic(self):
        impact = measure_impact(
            PARAMS, [FaultSpec("enc0.ffn.w1", index=100, bit=30)]
        )
        assert (
            impact.produced_nonfinite
            or impact.max_abs_logit_delta > 1.0
            or impact.top1_flips > 0
        )

    def test_exponent_worse_than_mantissa(self):
        low = measure_impact(PARAMS, [FaultSpec("enc0.ffn.w1", 500, 2)])
        high = measure_impact(PARAMS, [FaultSpec("enc0.ffn.w1", 500, 30)])
        assert (
            high.produced_nonfinite
            or high.max_abs_logit_delta > low.max_abs_logit_delta
        )

    def test_no_faults_no_impact(self):
        impact = measure_impact(PARAMS, [])
        assert impact.max_abs_logit_delta == 0.0
        assert impact.top1_flips == 0

    def test_random_fault_in_range(self):
        rng = np.random.default_rng(0)
        for _ in range(10):
            fault = random_fault(PARAMS, rng)
            assert 0 <= fault.bit <= 31
            corrupted = inject_faults(PARAMS, [fault])  # must not raise
            assert corrupted is not PARAMS
