"""Tests for parameter containers, initialization and (de)serialization."""

import numpy as np
import pytest

from repro.config import ModelConfig
from repro.model.params import (
    AttentionParams,
    LayerNormParams,
    init_transformer_params,
    load_params,
    save_params,
)


class TestInit:
    def test_counts_match_config(self, small_config, small_params):
        assert len(small_params.encoders) == small_config.num_encoders
        assert len(small_params.decoders) == small_config.num_decoders

    def test_shapes_match_table_4_1(self, small_params, small_config):
        mha = small_params.encoders[0].mha
        assert mha.wq.shape == (
            small_config.num_heads,
            small_config.d_model,
            small_config.d_k,
        )
        ffn = small_params.encoders[0].ffn
        assert ffn.w1.shape == (small_config.d_model, small_config.d_ff)
        assert ffn.w2.shape == (small_config.d_ff, small_config.d_model)

    def test_deterministic_seed(self, small_config):
        a = init_transformer_params(small_config, seed=3)
        b = init_transformer_params(small_config, seed=3)
        np.testing.assert_array_equal(a.encoders[0].mha.wq, b.encoders[0].mha.wq)

    def test_different_seeds_differ(self, small_config):
        a = init_transformer_params(small_config, seed=3)
        b = init_transformer_params(small_config, seed=4)
        assert not np.array_equal(a.encoders[0].mha.wq, b.encoders[0].mha.wq)

    def test_dtype_is_fp32(self, small_params):
        assert small_params.encoders[0].mha.wq.dtype == np.float32
        assert small_params.embedding.dtype == np.float32

    def test_element_count_matches_flops_module(self, paper_config):
        from repro.model.flops import weight_bytes

        params = init_transformer_params(
            paper_config.with_depth(1, 1), seed=0
        )
        per_layer = (
            params.encoders[0].num_elements + params.decoders[0].num_elements
        )
        expected = weight_bytes(paper_config.with_depth(1, 1)) // 4
        assert per_layer == expected


class TestValidation:
    def test_layernorm_shape_check(self):
        with pytest.raises(ValueError):
            LayerNormParams(weight=np.ones((2, 2)), bias=np.ones(2))

    def test_attention_head_consistency(self):
        with pytest.raises(ValueError):
            AttentionParams(
                wq=np.zeros((2, 8, 3)),  # 2 * 3 != 8
                bq=np.zeros((2, 3)),
                wk=np.zeros((2, 8, 3)),
                bk=np.zeros((2, 3)),
                wv=np.zeros((2, 8, 3)),
                bv=np.zeros((2, 3)),
                wo=np.zeros((8, 8)),
                bo=np.zeros(8),
            )

    def test_wrong_layer_count_rejected(self, small_config, small_params):
        from repro.model.params import TransformerParams

        with pytest.raises(ValueError):
            TransformerParams(
                config=small_config,
                encoders=small_params.encoders[:1],
                decoders=small_params.decoders,
                embedding=small_params.embedding,
                output_w=small_params.output_w,
                output_b=small_params.output_b,
            )


class TestSerialization:
    def test_roundtrip(self, tmp_path, small_params):
        path = tmp_path / "model.npz"
        save_params(small_params, path)
        loaded = load_params(path)
        assert loaded.config == small_params.config
        np.testing.assert_array_equal(
            loaded.encoders[1].ffn.w1, small_params.encoders[1].ffn.w1
        )
        np.testing.assert_array_equal(
            loaded.decoders[0].cross_mha.wo, small_params.decoders[0].cross_mha.wo
        )
        np.testing.assert_array_equal(loaded.embedding, small_params.embedding)

    def test_roundtrip_preserves_inference(self, tmp_path, small_params, rng):
        from repro.model.transformer import Transformer

        path = tmp_path / "model.npz"
        save_params(small_params, path)
        loaded = load_params(path)
        feats = rng.standard_normal((4, 512)).astype(np.float32)
        toks = np.array([0, 5])
        np.testing.assert_array_equal(
            Transformer(small_params).forward(feats, toks),
            Transformer(loaded).forward(feats, toks),
        )

    def test_num_elements_property(self, small_params):
        # embedding + output proj + per-layer sums, all positive.
        assert small_params.num_elements > 0
