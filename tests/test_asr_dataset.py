"""Tests for the synthetic LibriSpeech-like corpus."""

import numpy as np
import pytest

from repro.asr.dataset import DEFAULT_LEXICON, LibriSpeechLikeDataset


class TestDataset:
    def test_generate_count(self):
        ds = LibriSpeechLikeDataset(seed=1)
        utts = ds.generate(5)
        assert len(utts) == 5

    def test_deterministic(self):
        a = LibriSpeechLikeDataset(seed=2).generate(3)
        b = LibriSpeechLikeDataset(seed=2).generate(3)
        for u, v in zip(a, b):
            assert u.transcript == v.transcript
            np.testing.assert_array_equal(u.waveform, v.waveform)

    def test_different_seeds_differ(self):
        a = LibriSpeechLikeDataset(seed=1).generate(3)
        b = LibriSpeechLikeDataset(seed=9).generate(3)
        assert any(u.transcript != v.transcript for u, v in zip(a, b))

    def test_transcripts_from_lexicon(self):
        utts = LibriSpeechLikeDataset(seed=0).generate(10)
        for u in utts:
            for word in u.transcript.split():
                assert word in DEFAULT_LEXICON

    def test_word_count_bounds(self):
        ds = LibriSpeechLikeDataset(seed=0)
        utts = ds.generate(20, min_words=2, max_words=4)
        for u in utts:
            assert 2 <= len(u.transcript.split()) <= 4

    def test_waveform_duration_matches_transcript(self):
        ds = LibriSpeechLikeDataset(seed=0)
        utts = ds.generate(3)
        for u in utts:
            chars = len(u.transcript)
            expected = chars * ds.synthesis.samples_per_char
            assert u.waveform.size == expected
            assert u.duration_s == pytest.approx(expected / 16000)

    def test_utterance_ids_unique(self):
        utts = LibriSpeechLikeDataset(seed=0).generate(25)
        ids = [u.utterance_id for u in utts]
        assert len(set(ids)) == len(ids)

    def test_train_test_split(self):
        train, test = LibriSpeechLikeDataset(seed=0).train_test_split(
            10, test_fraction=0.2
        )
        assert len(train) == 8 and len(test) == 2

    def test_validation(self):
        ds = LibriSpeechLikeDataset()
        with pytest.raises(ValueError):
            ds.generate(0)
        with pytest.raises(ValueError):
            ds.train_test_split(10, test_fraction=1.5)
        with pytest.raises(ValueError):
            LibriSpeechLikeDataset(lexicon=())
        rng = np.random.default_rng(0)
        with pytest.raises(ValueError):
            ds.make_transcript(rng, min_words=3, max_words=2)
