# Developer entry points.

.PHONY: install test bench examples verify all

install:
	pip install -e . --no-build-isolation || python setup.py develop

test:
	pytest tests/

test-fast:
	pytest tests/ -m "not slow"

bench:
	pytest benchmarks/ --benchmark-only

verify:
	python -m repro.cli verify

examples:
	python examples/quickstart.py
	python examples/latency_exploration.py
	python examples/design_space_exploration.py
	python examples/batch_transcription.py
	python examples/schedule_gallery.py
	python examples/quantization_study.py
	python examples/retargetability.py
	python examples/hls_pragma_study.py
	python examples/streaming_asr.py

all: test bench
