"""CPU baseline (Table 5.4).

Two baselines are provided:

* :class:`CpuLatencyModel` — a calibrated model of the paper's testbed
  (Intel Xeon E5-2640 @ 2.5 GHz, 24 cores, wav2vec/PyTorch software
  stack).  It interpolates monotonically through the six anchor
  latencies the paper reports, so Table 5.4 reproduces exactly and
  intermediate sequence lengths are sensible.
* :class:`MeasuredCpuBaseline` — actually runs the reference NumPy
  Transformer on the local machine and reports wall-clock time.  Useful
  for grounding, but not comparable to the paper's absolute numbers.
"""

from __future__ import annotations

import time

import numpy as np
from scipy.interpolate import PchipInterpolator

from repro.config import ModelConfig
from repro.model.params import TransformerParams, init_transformer_params
from repro.model.transformer import Transformer

#: Sequence length -> seconds, from Table 5.4 of the paper.
CPU_ANCHORS: dict[int, float] = {4: 0.4, 8: 1.1, 16: 3.1, 20: 3.4, 24: 3.8, 32: 4.5}


class _AnchoredLatencyModel:
    """Monotone interpolation through published (s, seconds) anchors."""

    def __init__(self, anchors: dict[int, float], name: str) -> None:
        if len(anchors) < 2:
            raise ValueError("need at least two anchor points")
        items = sorted(anchors.items())
        self._s = np.array([k for k, _ in items], dtype=np.float64)
        self._lat = np.array([v for _, v in items], dtype=np.float64)
        if np.any(np.diff(self._lat) <= 0):
            raise ValueError("anchor latencies must be strictly increasing")
        self._interp = PchipInterpolator(self._s, self._lat, extrapolate=False)
        self.name = name

    def latency_s(self, s: int) -> float:
        """Predicted latency (seconds) at sequence length ``s``."""
        if s <= 0:
            raise ValueError("s must be positive")
        if s <= self._s[0]:
            # Below the published range: scale the first anchor linearly.
            return float(self._lat[0] * s / self._s[0])
        if s >= self._s[-1]:
            # Beyond the published range: extend with the final slope.
            slope = (self._lat[-1] - self._lat[-2]) / (self._s[-1] - self._s[-2])
            return float(self._lat[-1] + slope * (s - self._s[-1]))
        return float(self._interp(s))

    def latency_ms(self, s: int) -> float:
        return self.latency_s(s) * 1e3

    def speedup_over(self, s: int, accelerator_latency_s: float) -> float:
        """How much faster the accelerator is than this baseline."""
        if accelerator_latency_s <= 0:
            raise ValueError("accelerator latency must be positive")
        return self.latency_s(s) / accelerator_latency_s


class CpuLatencyModel(_AnchoredLatencyModel):
    """Calibrated Intel Xeon E5-2640 latency model (Table 5.4)."""

    def __init__(self, anchors: dict[int, float] | None = None) -> None:
        super().__init__(anchors or CPU_ANCHORS, name="Intel Xeon E5-2640")


class MeasuredCpuBaseline:
    """Wall-clock measurement of the reference NumPy implementation."""

    def __init__(
        self,
        config: ModelConfig | None = None,
        params: TransformerParams | None = None,
        seed: int = 0,
    ) -> None:
        if params is None:
            params = init_transformer_params(config or ModelConfig(), seed=seed)
        self.model = Transformer(params)

    def run_once(self, s: int, rng: np.random.Generator | None = None) -> float:
        """Time one full inference at sequence length ``s`` (seconds)."""
        if s <= 0:
            raise ValueError("s must be positive")
        rng = rng or np.random.default_rng(0)
        cfg = self.model.config
        features = rng.standard_normal((s, cfg.d_model)).astype(np.float32)
        tokens = rng.integers(0, cfg.vocab_size, size=s)
        start = time.perf_counter()
        self.model.forward(features, tokens)
        return time.perf_counter() - start

    def median_latency_s(self, s: int, repeats: int = 3) -> float:
        """Median of several timed runs."""
        if repeats < 1:
            raise ValueError("repeats must be >= 1")
        times = sorted(self.run_once(s) for _ in range(repeats))
        return times[len(times) // 2]

    def batched_latency_s(
        self, s: int, batch: int = 8, rng: np.random.Generator | None = None
    ) -> float:
        """Per-sequence latency of a vectorized batch-``batch`` run.

        Real CPU serving batches; the vectorized path
        (:class:`repro.model.batched.BatchedTransformer`) amortizes the
        per-layer overheads and lets BLAS see large contractions.
        """
        if s <= 0 or batch <= 0:
            raise ValueError("s and batch must be positive")
        from repro.model.batched import BatchedTransformer

        rng = rng or np.random.default_rng(0)
        cfg = self.model.config
        feats = rng.standard_normal((batch, s, cfg.d_model)).astype(np.float32)
        tokens = rng.integers(0, cfg.vocab_size, size=(batch, s))
        engine = BatchedTransformer(self.model.params)
        start = time.perf_counter()
        engine.forward(feats, tokens)
        return (time.perf_counter() - start) / batch
