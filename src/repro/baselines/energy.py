"""Energy-efficiency model (Section 5.1.6).

The paper reports 1.38 GFLOPs/J for the FPGA versus ~0.055 GFLOPs/J
for the GPU.  Efficiency is GFLOPs-per-second divided by watts; the
FPGA board power follows from the paper's own numbers
(47.23 GFLOPs/s / 1.38 GFLOPs/J = 34.2 W), and the GPU's effective
inference power likewise (3.03 GFLOPs/s / 0.055 = 55.1 W).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.config import HardwareConfig, ModelConfig
from repro.model.flops import transformer_flops

#: Effective power of the RTX 3080 Ti during the paper's inference runs,
#: implied by its reported 0.055 GFLOPs/J.
GPU_EFFECTIVE_POWER_W = 55.1


@dataclass(frozen=True)
class EnergyModel:
    """GFLOPs/s and GFLOPs/J for a device running the model."""

    power_w: float
    model: ModelConfig = None  # type: ignore[assignment]

    def __post_init__(self) -> None:
        if self.power_w <= 0:
            raise ValueError("power_w must be positive")
        if self.model is None:
            object.__setattr__(self, "model", ModelConfig())

    def gflops_per_second(self, s: int, latency_s: float) -> float:
        if latency_s <= 0:
            raise ValueError("latency_s must be positive")
        return transformer_flops(s, self.model) / 1e9 / latency_s

    def gflops_per_joule(self, s: int, latency_s: float) -> float:
        return self.gflops_per_second(s, latency_s) / self.power_w

    def energy_joules(self, latency_s: float) -> float:
        if latency_s <= 0:
            raise ValueError("latency_s must be positive")
        return self.power_w * latency_s


def fpga_energy_model(
    hardware: HardwareConfig | None = None, model: ModelConfig | None = None
) -> EnergyModel:
    """Energy model of the accelerator card (defaults to the U50)."""
    hw = hardware or HardwareConfig()
    return EnergyModel(power_w=hw.board_power_w, model=model or ModelConfig())


def gpu_energy_model(model: ModelConfig | None = None) -> EnergyModel:
    """Energy model of the paper's GPU baseline."""
    return EnergyModel(power_w=GPU_EFFECTIVE_POWER_W, model=model or ModelConfig())
