"""GPU baseline (Table 5.5): calibrated NVIDIA GeForce RTX 3080 Ti
latency model (PyTorch + CUDA 10.1 software stack), interpolating the
paper's six published anchors.
"""

from __future__ import annotations

from repro.baselines.cpu import _AnchoredLatencyModel

#: Sequence length -> seconds, from Table 5.5 of the paper.
GPU_ANCHORS: dict[int, float] = {
    4: 0.34,
    8: 0.46,
    16: 0.55,
    20: 0.79,
    24: 1.03,
    32: 1.32,
}


class GpuLatencyModel(_AnchoredLatencyModel):
    """Calibrated RTX 3080 Ti latency model (Table 5.5)."""

    def __init__(self, anchors: dict[int, float] | None = None) -> None:
        super().__init__(anchors or GPU_ANCHORS, name="NVIDIA RTX 3080 Ti")
