"""Roofline analysis backing the operational-intensity discussion
(Section 4.2): with ~0.25 ops/byte the design is firmly memory-bound,
which is why the paper invests everything in (a) streaming efficiency
and (b) matmul throughput on what does arrive.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.config import HardwareConfig, ModelConfig
from repro.model.flops import operational_intensity, transformer_flops, weight_bytes


@dataclass(frozen=True)
class RooflineModel:
    """Classic roofline: attainable = min(peak, bandwidth * intensity)."""

    peak_gflops: float
    bandwidth_gbps: float

    def __post_init__(self) -> None:
        if self.peak_gflops <= 0 or self.bandwidth_gbps <= 0:
            raise ValueError("peak and bandwidth must be positive")

    @property
    def ridge_point(self) -> float:
        """Operational intensity where the design turns compute-bound."""
        return self.peak_gflops / self.bandwidth_gbps

    def attainable_gflops(self, intensity: float) -> float:
        if intensity <= 0:
            raise ValueError("intensity must be positive")
        return min(self.peak_gflops, self.bandwidth_gbps * intensity)

    def is_memory_bound(self, intensity: float) -> bool:
        return intensity < self.ridge_point


def accelerator_roofline(hardware: HardwareConfig | None = None) -> RooflineModel:
    """Roofline of the simulated accelerator.

    Peak = PEs x 2 FLOP x clock; bandwidth = the calibrated effective
    HBM streaming rate over all channels.
    """
    hw = hardware or HardwareConfig()
    pes = hw.total_psas * hw.psa_rows * hw.psa_cols
    peak = pes * 2 * hw.clock_mhz * 1e6 / 1e9
    bandwidth = hw.num_slrs * hw.hbm_channels_per_slr * hw.hbm_channel_gbps
    return RooflineModel(peak_gflops=peak, bandwidth_gbps=bandwidth)


def model_intensity_profile(
    model: ModelConfig | None = None, seq_lens: tuple[int, ...] = (1, 4, 8, 16, 32)
) -> list[dict[str, float]]:
    """Operational intensity and traffic per sequence length."""
    model = model or ModelConfig()
    rows = []
    for s in seq_lens:
        rows.append(
            {
                "s": s,
                "gflops": transformer_flops(s, model) / 1e9,
                "weight_mb": weight_bytes(model) / 1e6,
                "intensity_flops_per_byte": operational_intensity(s, model),
                "intensity_macs_per_byte": operational_intensity(
                    s, model, count_macs=True
                ),
            }
        )
    return rows
