"""Comparison baselines: calibrated CPU/GPU latency models, a real
NumPy CPU runner, the roofline/energy models and the related-work table.
"""

from repro.baselines.cpu import CPU_ANCHORS, CpuLatencyModel, MeasuredCpuBaseline
from repro.baselines.energy import (
    EnergyModel,
    GPU_EFFECTIVE_POWER_W,
    fpga_energy_model,
    gpu_energy_model,
)
from repro.baselines.gpu import GPU_ANCHORS, GpuLatencyModel
from repro.baselines.related import (
    REFERENCE_WORKS,
    RelatedWorkEntry,
    comparison_table,
    our_entry,
)
from repro.baselines.roofline import (
    RooflineModel,
    accelerator_roofline,
    model_intensity_profile,
)

__all__ = [
    "CPU_ANCHORS",
    "CpuLatencyModel",
    "MeasuredCpuBaseline",
    "EnergyModel",
    "GPU_EFFECTIVE_POWER_W",
    "fpga_energy_model",
    "gpu_energy_model",
    "GPU_ANCHORS",
    "GpuLatencyModel",
    "REFERENCE_WORKS",
    "RelatedWorkEntry",
    "comparison_table",
    "our_entry",
    "RooflineModel",
    "accelerator_roofline",
    "model_intensity_profile",
]
