"""Related-work comparison (Table 5.6).

The paper compares GFLOPs-per-second against three published reference
points: the HAT CPU measurement [34], and the GPU and FPGA results of
Qi et al. [29] (a 2-encoder / 1-decoder pruned NLP transformer on an
8x Quadro RTX 6000 node and an Alveo U200).  Their numbers are static
literature values; our row is recomputed from the simulator.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.config import ModelConfig
from repro.hw.controller import LatencyModel
from repro.hw.scheduler import Architecture
from repro.model.flops import transformer_flops


@dataclass(frozen=True)
class RelatedWorkEntry:
    """One column of Table 5.6."""

    name: str
    platform: str
    gflops: float
    latency_s: float

    def __post_init__(self) -> None:
        if self.gflops <= 0 or self.latency_s <= 0:
            raise ValueError("gflops and latency_s must be positive")

    @property
    def gflops_per_second(self) -> float:
        return self.gflops / self.latency_s


#: Published reference points, exactly as tabulated in the paper.
REFERENCE_WORKS: tuple[RelatedWorkEntry, ...] = (
    RelatedWorkEntry("HAT [34]", "ARM CPU", gflops=1.1, latency_s=2.1),
    RelatedWorkEntry("Qi et al. [29]", "GPU (8x RTX 6000)", gflops=1.1, latency_s=0.147),
    RelatedWorkEntry("Qi et al. [29]", "FPGA (Alveo U200)", gflops=0.114, latency_s=0.00785),
)


def our_entry(
    s: int = 32,
    latency_model: LatencyModel | None = None,
    architecture: Architecture | str = Architecture.A3,
    model: ModelConfig | None = None,
) -> RelatedWorkEntry:
    """Our work's column, computed from the simulator at length ``s``."""
    model = model or ModelConfig()
    lm = latency_model or LatencyModel(model=model)
    latency_s = lm.latency_report(s, architecture).latency_ms / 1e3
    gflops = transformer_flops(s, model) / 1e9
    return RelatedWorkEntry(
        "This work", "FPGA (Alveo U50, simulated)", gflops=gflops, latency_s=latency_s
    )


def comparison_table(
    s: int = 32,
    latency_model: LatencyModel | None = None,
    architecture: Architecture | str = Architecture.A3,
) -> list[dict[str, float | str]]:
    """Table 5.6: GFLOPs, latency, GFLOPs/s and improvement vs [34]."""
    entries = list(REFERENCE_WORKS) + [
        our_entry(s=s, latency_model=latency_model, architecture=architecture)
    ]
    baseline = entries[0].gflops_per_second
    return [
        {
            "name": e.name,
            "platform": e.platform,
            "gflops": e.gflops,
            "latency_s": e.latency_s,
            "gflops_per_s": e.gflops_per_second,
            "improvement": e.gflops_per_second / baseline,
        }
        for e in entries
    ]
