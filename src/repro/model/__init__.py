"""Reference NumPy implementation of the E2E ASR Transformer.

This is the *functional golden model*: a 12-encoder / 6-decoder
attention encoder-decoder with d_model=512, 8 heads and d_ff=2048
(Section 3.4 of the paper).  The hardware simulator in :mod:`repro.hw`
must agree numerically with this implementation.
"""

from repro.model.batched import BatchedTransformer
from repro.model.incremental import IncrementalDecoder
from repro.model.attention import (
    attention_head,
    multi_head_attention,
    scaled_dot_product_attention,
)
from repro.model.decoder import decoder_layer
from repro.model.encoder import encoder_layer
from repro.model.ffn import feed_forward
from repro.model.flops import (
    decoder_layer_flops,
    encoder_layer_flops,
    matmul_flops,
    transformer_flops,
)
from repro.model.layernorm import add_norm, layer_norm
from repro.model.masks import causal_mask, combine_masks, padding_mask
from repro.model.ops import linear, log_softmax, relu, softmax
from repro.model.params import (
    AttentionParams,
    DecoderLayerParams,
    EncoderLayerParams,
    FeedForwardParams,
    LayerNormParams,
    TransformerParams,
    init_transformer_params,
    load_params,
    save_params,
)
from repro.model.transformer import Transformer

__all__ = [
    "BatchedTransformer",
    "IncrementalDecoder",
    "attention_head",
    "multi_head_attention",
    "scaled_dot_product_attention",
    "decoder_layer",
    "encoder_layer",
    "feed_forward",
    "decoder_layer_flops",
    "encoder_layer_flops",
    "matmul_flops",
    "transformer_flops",
    "add_norm",
    "layer_norm",
    "causal_mask",
    "combine_masks",
    "padding_mask",
    "linear",
    "log_softmax",
    "relu",
    "softmax",
    "AttentionParams",
    "DecoderLayerParams",
    "EncoderLayerParams",
    "FeedForwardParams",
    "LayerNormParams",
    "TransformerParams",
    "init_transformer_params",
    "load_params",
    "save_params",
    "Transformer",
]
