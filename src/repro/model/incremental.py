"""Incremental (KV-cached) autoregressive decoding.

The naive decode loop re-runs the whole decoder stack over the full
prefix at every step — O(t^2) attention work per token.  An
incremental decoder caches each layer's self-attention keys/values and
each layer's cross-attention K/V projections of the (fixed) encoder
memory, so step t only projects and attends for the newest position.
Numerically identical to the full recomputation (same fp32 ops in the
same order per position), which the tests pin.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.model.attention import scaled_dot_product_attention
from repro.model.ffn import feed_forward
from repro.model.layernorm import add_norm
from repro.model.ops import MODEL_DTYPE, linear, log_softmax
from repro.model.params import AttentionParams, TransformerParams


@dataclass
class _LayerCache:
    """Per-decoder-layer state."""

    #: Self-attention K/V per head: lists of (t, d_k) arrays.
    self_k: list[np.ndarray] = field(default_factory=list)
    self_v: list[np.ndarray] = field(default_factory=list)
    #: Cross-attention K/V per head, projected once from the memory.
    cross_k: list[np.ndarray] = field(default_factory=list)
    cross_v: list[np.ndarray] = field(default_factory=list)


def _project_heads(
    x: np.ndarray, params: AttentionParams
) -> tuple[list[np.ndarray], list[np.ndarray]]:
    """K/V projections of ``x`` for every head."""
    ks = [
        linear(x, params.wk[h], params.bk[h]) for h in range(params.num_heads)
    ]
    vs = [
        linear(x, params.wv[h], params.bv[h]) for h in range(params.num_heads)
    ]
    return ks, vs


def _attend_one(
    x_row: np.ndarray,
    params: AttentionParams,
    keys: list[np.ndarray],
    values: list[np.ndarray],
) -> np.ndarray:
    """MHA output for a single query row against cached keys/values."""
    heads = []
    for h in range(params.num_heads):
        q = linear(x_row[None, :], params.wq[h], params.bq[h])
        heads.append(scaled_dot_product_attention(q, keys[h], values[h]))
    concat = np.concatenate(heads, axis=-1)
    return linear(concat, params.wo, params.bo)[0]


class IncrementalDecoder:
    """Step-wise decoder over a fixed encoder memory."""

    def __init__(self, params: TransformerParams, memory: np.ndarray) -> None:
        memory = np.asarray(memory, dtype=MODEL_DTYPE)
        if memory.ndim != 2 or memory.shape[1] != params.config.d_model:
            raise ValueError(
                f"memory must be (s, {params.config.d_model}); got {memory.shape}"
            )
        self.params = params
        self.memory = memory
        self._caches = [_LayerCache() for _ in params.decoders]
        for layer, cache in zip(params.decoders, self._caches):
            cache.cross_k, cache.cross_v = _project_heads(
                memory, layer.cross_mha
            )
        self._length = 0

    @property
    def length(self) -> int:
        """Positions decoded so far."""
        return self._length

    def step(self, token: int) -> np.ndarray:
        """Feed one token; returns log-probs over the next position."""
        cfg = self.params.config
        if not 0 <= token < cfg.vocab_size:
            raise ValueError(f"token {token} out of range")
        x = (
            self.params.embedding[token]
            * np.sqrt(np.float32(cfg.d_model))
        ).astype(MODEL_DTYPE)

        for layer, cache in zip(self.params.decoders, self._caches):
            # Masked self-attention: extend the cache with this
            # position's K/V, then attend over positions <= t (the
            # causal mask is implicit in the cache's extent).
            for h in range(layer.self_mha.num_heads):
                k_row = linear(
                    x[None, :], layer.self_mha.wk[h], layer.self_mha.bk[h]
                )
                v_row = linear(
                    x[None, :], layer.self_mha.wv[h], layer.self_mha.bv[h]
                )
                if self._length == 0:
                    cache.self_k.append(k_row)
                    cache.self_v.append(v_row)
                else:
                    cache.self_k[h] = np.concatenate(
                        [cache.self_k[h], k_row], axis=0
                    )
                    cache.self_v[h] = np.concatenate(
                        [cache.self_v[h], v_row], axis=0
                    )
            attn = _attend_one(x, layer.self_mha, cache.self_k, cache.self_v)
            x = add_norm(
                attn[None, :], x[None, :], layer.norm1.weight, layer.norm1.bias
            )[0]
            cross = _attend_one(
                x, layer.cross_mha, cache.cross_k, cache.cross_v
            )
            x = add_norm(
                cross[None, :], x[None, :], layer.norm2.weight, layer.norm2.bias
            )[0]
            ffn_out = feed_forward(x[None, :], layer.ffn)
            x = add_norm(
                ffn_out, x[None, :], layer.norm3.weight, layer.norm3.bias
            )[0]

        self._length += 1
        logits = linear(x, self.params.output_w, self.params.output_b)
        return log_softmax(logits, axis=-1)

    def step_fn(self):
        """Adapter for :mod:`repro.decoding`: prefix -> next log-probs.

        Feeds only the *new* suffix of the prefix into the cache, so
        repeated greedy/beam extension costs O(1) decoder passes per
        token instead of O(t).  Prefixes must grow monotonically
        (beam search with branching needs one decoder per hypothesis).
        """

        def step(tokens: np.ndarray) -> np.ndarray:
            tokens = np.asarray(tokens, dtype=np.int64)
            if tokens.size <= self._length:
                raise ValueError(
                    "incremental step_fn needs a strictly growing prefix"
                )
            out: np.ndarray | None = None
            for token in tokens[self._length :]:
                out = self.step(int(token))
            assert out is not None
            return out

        return step
