"""One Transformer decoder layer: M-MHA, cross MHA, FFN (Section 3.4)."""

from __future__ import annotations

import numpy as np

from repro.model.attention import multi_head_attention
from repro.model.ffn import feed_forward
from repro.model.layernorm import add_norm
from repro.model.masks import causal_mask, combine_masks
from repro.model.params import DecoderLayerParams


def decoder_layer(
    x: np.ndarray,
    memory: np.ndarray,
    params: DecoderLayerParams,
    self_mask: np.ndarray | None = None,
    memory_mask: np.ndarray | None = None,
) -> np.ndarray:
    """Masked self-attention, cross-attention over ``memory``, then FFN.

    ``x`` is the ``(t, d_model)`` decoder-side sequence; ``memory`` is
    the ``(s, d_model)`` encoder-stack output.  The look-ahead mask is
    always applied to the self-attention (the M-MHA of the paper) and is
    AND-combined with any extra ``self_mask``.
    """
    x = np.asarray(x)
    look_ahead = causal_mask(x.shape[0])
    mask = combine_masks(look_ahead, self_mask)
    self_attn = multi_head_attention(x, x, params.self_mha, mask=mask)
    x = add_norm(self_attn, x, params.norm1.weight, params.norm1.bias)
    cross = multi_head_attention(x, memory, params.cross_mha, mask=memory_mask)
    x = add_norm(cross, x, params.norm2.weight, params.norm2.bias)
    ffn_out = feed_forward(x, params.ffn)
    return add_norm(ffn_out, x, params.norm3.weight, params.norm3.bias)
