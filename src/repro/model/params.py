"""Parameter containers for the Transformer, matching Table 4.1.

Weights are stored *per attention head* as ``(h, d_model, d_k)`` stacks
of 512x64 matrices — exactly the granularity at which the accelerator
streams them from HBM (Table 4.1 counts 576 separate W_{Q/K/V} matrices
of shape 512x64 for the full 12-encoder / 6-decoder stack).
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path

import numpy as np

from repro.config import ModelConfig
from repro.model.ops import MODEL_DTYPE


def _check(shape_ok: bool, what: str, got: tuple[int, ...]) -> None:
    if not shape_ok:
        raise ValueError(f"bad shape for {what}: {got}")


@dataclass(frozen=True)
class LayerNormParams:
    """Scale and shift of one Add-Norm layer (two 1x512 vectors)."""

    weight: np.ndarray
    bias: np.ndarray

    def __post_init__(self) -> None:
        _check(self.weight.ndim == 1, "layernorm weight", self.weight.shape)
        _check(self.bias.shape == self.weight.shape, "layernorm bias", self.bias.shape)

    @property
    def num_elements(self) -> int:
        return self.weight.size + self.bias.size


@dataclass(frozen=True)
class AttentionParams:
    """One MHA block: per-head Q/K/V projections plus the output linear.

    Shapes: ``wq/wk/wv`` are ``(h, d_model, d_k)``, ``bq/bk/bv`` are
    ``(h, d_k)``, ``wo`` is ``(d_model, d_model)`` (the W_A of Eq. 3.2)
    and ``bo`` is ``(d_model,)``.
    """

    wq: np.ndarray
    bq: np.ndarray
    wk: np.ndarray
    bk: np.ndarray
    wv: np.ndarray
    bv: np.ndarray
    wo: np.ndarray
    bo: np.ndarray

    def __post_init__(self) -> None:
        h, d_model, d_k = self.wq.shape
        for name in ("wq", "wk", "wv"):
            _check(getattr(self, name).shape == (h, d_model, d_k), name, getattr(self, name).shape)
        for name in ("bq", "bk", "bv"):
            _check(getattr(self, name).shape == (h, d_k), name, getattr(self, name).shape)
        _check(self.wo.shape == (d_model, d_model), "wo", self.wo.shape)
        _check(self.bo.shape == (d_model,), "bo", self.bo.shape)
        if h * d_k != d_model:
            raise ValueError(
                f"head dims inconsistent: h={h}, d_k={d_k}, d_model={d_model}"
            )

    @property
    def num_heads(self) -> int:
        return self.wq.shape[0]

    @property
    def d_model(self) -> int:
        return self.wq.shape[1]

    @property
    def d_k(self) -> int:
        return self.wq.shape[2]

    @property
    def num_elements(self) -> int:
        return sum(
            getattr(self, name).size
            for name in ("wq", "bq", "wk", "bk", "wv", "bv", "wo", "bo")
        )


@dataclass(frozen=True)
class FeedForwardParams:
    """FFN weights (Eq. 3.3): W_1F (512x2048), W_2F (2048x512) + biases."""

    w1: np.ndarray
    b1: np.ndarray
    w2: np.ndarray
    b2: np.ndarray

    def __post_init__(self) -> None:
        d_model, d_ff = self.w1.shape
        _check(self.b1.shape == (d_ff,), "b1", self.b1.shape)
        _check(self.w2.shape == (d_ff, d_model), "w2", self.w2.shape)
        _check(self.b2.shape == (d_model,), "b2", self.b2.shape)

    @property
    def d_model(self) -> int:
        return self.w1.shape[0]

    @property
    def d_ff(self) -> int:
        return self.w1.shape[1]

    @property
    def num_elements(self) -> int:
        return self.w1.size + self.b1.size + self.w2.size + self.b2.size


@dataclass(frozen=True)
class EncoderLayerParams:
    """MHA -> Add-Norm -> FFN -> Add-Norm."""

    mha: AttentionParams
    norm1: LayerNormParams
    ffn: FeedForwardParams
    norm2: LayerNormParams

    @property
    def num_elements(self) -> int:
        return (
            self.mha.num_elements
            + self.norm1.num_elements
            + self.ffn.num_elements
            + self.norm2.num_elements
        )


@dataclass(frozen=True)
class DecoderLayerParams:
    """M-MHA -> Add-Norm -> cross MHA -> Add-Norm -> FFN -> Add-Norm."""

    self_mha: AttentionParams
    norm1: LayerNormParams
    cross_mha: AttentionParams
    norm2: LayerNormParams
    ffn: FeedForwardParams
    norm3: LayerNormParams

    @property
    def num_elements(self) -> int:
        return (
            self.self_mha.num_elements
            + self.norm1.num_elements
            + self.cross_mha.num_elements
            + self.norm2.num_elements
            + self.ffn.num_elements
            + self.norm3.num_elements
        )


@dataclass(frozen=True)
class TransformerParams:
    """All weights of the E2E model, plus embedding/output projections."""

    config: ModelConfig
    encoders: tuple[EncoderLayerParams, ...]
    decoders: tuple[DecoderLayerParams, ...]
    #: Token embedding table (vocab_size, d_model) for the decoder input.
    embedding: np.ndarray
    #: Output projection (d_model, vocab_size) + bias producing logits.
    output_w: np.ndarray
    output_b: np.ndarray

    def __post_init__(self) -> None:
        cfg = self.config
        if len(self.encoders) != cfg.num_encoders:
            raise ValueError(
                f"expected {cfg.num_encoders} encoder layers; got {len(self.encoders)}"
            )
        if len(self.decoders) != cfg.num_decoders:
            raise ValueError(
                f"expected {cfg.num_decoders} decoder layers; got {len(self.decoders)}"
            )
        _check(
            self.embedding.shape == (cfg.vocab_size, cfg.d_model),
            "embedding",
            self.embedding.shape,
        )
        _check(
            self.output_w.shape == (cfg.d_model, cfg.vocab_size),
            "output_w",
            self.output_w.shape,
        )
        _check(
            self.output_b.shape == (cfg.vocab_size,), "output_b", self.output_b.shape
        )

    @property
    def num_elements(self) -> int:
        total = self.embedding.size + self.output_w.size + self.output_b.size
        total += sum(layer.num_elements for layer in self.encoders)
        total += sum(layer.num_elements for layer in self.decoders)
        return total


def _init_layernorm(d_model: int) -> LayerNormParams:
    return LayerNormParams(
        weight=np.ones(d_model, dtype=MODEL_DTYPE),
        bias=np.zeros(d_model, dtype=MODEL_DTYPE),
    )


def _init_attention(
    config: ModelConfig, rng: np.random.Generator
) -> AttentionParams:
    h, d_model, d_k = config.num_heads, config.d_model, config.d_k
    scale_qkv = 1.0 / np.sqrt(d_model)
    scale_o = 1.0 / np.sqrt(d_model)

    def mat(shape: tuple[int, ...], scale: float) -> np.ndarray:
        return (scale * rng.standard_normal(shape)).astype(MODEL_DTYPE)

    return AttentionParams(
        wq=mat((h, d_model, d_k), scale_qkv),
        bq=np.zeros((h, d_k), dtype=MODEL_DTYPE),
        wk=mat((h, d_model, d_k), scale_qkv),
        bk=np.zeros((h, d_k), dtype=MODEL_DTYPE),
        wv=mat((h, d_model, d_k), scale_qkv),
        bv=np.zeros((h, d_k), dtype=MODEL_DTYPE),
        wo=mat((d_model, d_model), scale_o),
        bo=np.zeros(d_model, dtype=MODEL_DTYPE),
    )


def _init_ffn(config: ModelConfig, rng: np.random.Generator) -> FeedForwardParams:
    d_model, d_ff = config.d_model, config.d_ff
    return FeedForwardParams(
        w1=(rng.standard_normal((d_model, d_ff)) / np.sqrt(d_model)).astype(
            MODEL_DTYPE
        ),
        b1=np.zeros(d_ff, dtype=MODEL_DTYPE),
        w2=(rng.standard_normal((d_ff, d_model)) / np.sqrt(d_ff)).astype(
            MODEL_DTYPE
        ),
        b2=np.zeros(d_model, dtype=MODEL_DTYPE),
    )


def init_transformer_params(
    config: ModelConfig | None = None, seed: int = 0
) -> TransformerParams:
    """Randomly initialize a full parameter set (Xavier-style scales)."""
    config = config or ModelConfig()
    rng = np.random.default_rng(seed)
    encoders = tuple(
        EncoderLayerParams(
            mha=_init_attention(config, rng),
            norm1=_init_layernorm(config.d_model),
            ffn=_init_ffn(config, rng),
            norm2=_init_layernorm(config.d_model),
        )
        for _ in range(config.num_encoders)
    )
    decoders = tuple(
        DecoderLayerParams(
            self_mha=_init_attention(config, rng),
            norm1=_init_layernorm(config.d_model),
            cross_mha=_init_attention(config, rng),
            norm2=_init_layernorm(config.d_model),
            ffn=_init_ffn(config, rng),
            norm3=_init_layernorm(config.d_model),
        )
        for _ in range(config.num_decoders)
    )
    embedding = (
        rng.standard_normal((config.vocab_size, config.d_model))
        / np.sqrt(config.d_model)
    ).astype(MODEL_DTYPE)
    output_w = (
        rng.standard_normal((config.d_model, config.vocab_size))
        / np.sqrt(config.d_model)
    ).astype(MODEL_DTYPE)
    output_b = np.zeros(config.vocab_size, dtype=MODEL_DTYPE)
    return TransformerParams(
        config=config,
        encoders=encoders,
        decoders=decoders,
        embedding=embedding,
        output_w=output_w,
        output_b=output_b,
    )


_ATTN_FIELDS = ("wq", "bq", "wk", "bk", "wv", "bv", "wo", "bo")
_FFN_FIELDS = ("w1", "b1", "w2", "b2")


def _flatten(params: TransformerParams) -> dict[str, np.ndarray]:
    arrays: dict[str, np.ndarray] = {
        "embedding": params.embedding,
        "output_w": params.output_w,
        "output_b": params.output_b,
    }
    for i, enc in enumerate(params.encoders):
        for f in _ATTN_FIELDS:
            arrays[f"enc{i}.mha.{f}"] = getattr(enc.mha, f)
        for f in _FFN_FIELDS:
            arrays[f"enc{i}.ffn.{f}"] = getattr(enc.ffn, f)
        for j, norm in enumerate((enc.norm1, enc.norm2), start=1):
            arrays[f"enc{i}.norm{j}.weight"] = norm.weight
            arrays[f"enc{i}.norm{j}.bias"] = norm.bias
    for i, dec in enumerate(params.decoders):
        for tag, attn in (("self_mha", dec.self_mha), ("cross_mha", dec.cross_mha)):
            for f in _ATTN_FIELDS:
                arrays[f"dec{i}.{tag}.{f}"] = getattr(attn, f)
        for f in _FFN_FIELDS:
            arrays[f"dec{i}.ffn.{f}"] = getattr(dec.ffn, f)
        for j, norm in enumerate((dec.norm1, dec.norm2, dec.norm3), start=1):
            arrays[f"dec{i}.norm{j}.weight"] = norm.weight
            arrays[f"dec{i}.norm{j}.bias"] = norm.bias
    return arrays


def save_params(params: TransformerParams, path: str | Path) -> None:
    """Serialize parameters (plus config) to a compressed ``.npz``."""
    cfg = params.config
    meta = np.array(
        [
            cfg.d_model,
            cfg.num_heads,
            cfg.d_ff,
            cfg.num_encoders,
            cfg.num_decoders,
            cfg.vocab_size,
            cfg.max_seq_len,
            cfg.feature_dim,
        ],
        dtype=np.int64,
    )
    np.savez_compressed(Path(path), __config__=meta, **_flatten(params))


def load_params(path: str | Path) -> TransformerParams:
    """Load parameters saved by :func:`save_params`."""
    with np.load(Path(path)) as data:
        meta = data["__config__"]
        config = ModelConfig(
            d_model=int(meta[0]),
            num_heads=int(meta[1]),
            d_ff=int(meta[2]),
            num_encoders=int(meta[3]),
            num_decoders=int(meta[4]),
            vocab_size=int(meta[5]),
            max_seq_len=int(meta[6]),
            feature_dim=int(meta[7]),
        )

        def attn(prefix: str) -> AttentionParams:
            return AttentionParams(
                **{f: data[f"{prefix}.{f}"] for f in _ATTN_FIELDS}
            )

        def ffn(prefix: str) -> FeedForwardParams:
            return FeedForwardParams(
                **{f: data[f"{prefix}.{f}"] for f in _FFN_FIELDS}
            )

        def norm(prefix: str) -> LayerNormParams:
            return LayerNormParams(
                weight=data[f"{prefix}.weight"], bias=data[f"{prefix}.bias"]
            )

        encoders = tuple(
            EncoderLayerParams(
                mha=attn(f"enc{i}.mha"),
                norm1=norm(f"enc{i}.norm1"),
                ffn=ffn(f"enc{i}.ffn"),
                norm2=norm(f"enc{i}.norm2"),
            )
            for i in range(config.num_encoders)
        )
        decoders = tuple(
            DecoderLayerParams(
                self_mha=attn(f"dec{i}.self_mha"),
                norm1=norm(f"dec{i}.norm1"),
                cross_mha=attn(f"dec{i}.cross_mha"),
                norm2=norm(f"dec{i}.norm2"),
                ffn=ffn(f"dec{i}.ffn"),
                norm3=norm(f"dec{i}.norm3"),
            )
            for i in range(config.num_decoders)
        )
        return TransformerParams(
            config=config,
            encoders=encoders,
            decoders=decoders,
            embedding=data["embedding"],
            output_w=data["output_w"],
            output_b=data["output_b"],
        )
