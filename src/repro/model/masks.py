"""Attention masks.

The decoder's Masked MHA uses a binary look-ahead mask so that position
``i`` only attends to positions ``<= i`` (Section 3.4).  Padding masks
hide the zero-padding the accelerator appends to reach its fixed
sequence length ``s`` (Section 5.1.5: inputs of length ``i < s`` are
padded up to ``s``).

Masks use the convention ``True = attend, False = blocked``.
"""

from __future__ import annotations

import numpy as np

#: Additive score applied to blocked positions before the softmax.
NEG_INF = -1e9


def causal_mask(size: int) -> np.ndarray:
    """(size, size) look-ahead mask; entry [i, j] is True iff j <= i."""
    if size <= 0:
        raise ValueError("size must be positive")
    return np.tril(np.ones((size, size), dtype=bool))


def padding_mask(lengths: np.ndarray | list[int], size: int) -> np.ndarray:
    """Key-padding mask of shape (batch, size).

    Entry [b, j] is True iff position j is a real (non-padded) key of
    sequence b.
    """
    lens = np.asarray(lengths, dtype=np.int64)
    if lens.ndim != 1:
        raise ValueError("lengths must be 1-D")
    if np.any(lens < 0) or np.any(lens > size):
        raise ValueError("lengths must lie in [0, size]")
    return np.arange(size)[None, :] < lens[:, None]


def combine_masks(*masks: np.ndarray | None) -> np.ndarray | None:
    """Logical AND of broadcastable masks; None entries are ignored."""
    present = [np.asarray(m, dtype=bool) for m in masks if m is not None]
    if not present:
        return None
    out = present[0]
    for m in present[1:]:
        out = np.logical_and(out, m)
    return out


def apply_mask(scores: np.ndarray, mask: np.ndarray | None) -> np.ndarray:
    """Add NEG_INF to blocked entries of an attention-score matrix."""
    if mask is None:
        return scores
    mask = np.asarray(mask, dtype=bool)
    scores = np.asarray(scores)
    try:
        np.broadcast_shapes(scores.shape, mask.shape)
    except ValueError as exc:
        raise ValueError(
            f"mask shape {mask.shape} is not broadcastable to "
            f"scores shape {scores.shape}"
        ) from exc
    return np.where(mask, scores, scores + NEG_INF)
