"""Layer normalization and the Add-Norm residual block (Eq. 3.4)."""

from __future__ import annotations

import numpy as np


def layer_norm(
    x: np.ndarray,
    weight: np.ndarray,
    bias: np.ndarray,
    eps: float = 1e-12,
) -> np.ndarray:
    """Normalize the last axis to zero mean / unit variance, then scale.

    Implements ``N = w * (x - mu) / sigma + b`` per Eq. 3.4 of the paper
    (population variance, i.e. divide by D).
    """
    x = np.asarray(x, dtype=np.float64)
    weight = np.asarray(weight, dtype=np.float64)
    bias = np.asarray(bias, dtype=np.float64)
    d = x.shape[-1]
    if weight.shape != (d,) or bias.shape != (d,):
        raise ValueError(
            f"weight/bias must have shape ({d},); "
            f"got {weight.shape} and {bias.shape}"
        )
    mu = x.mean(axis=-1, keepdims=True)
    var = x.var(axis=-1, keepdims=True)
    normalized = (x - mu) / np.sqrt(var + eps)
    return normalized * weight + bias


def add_norm(
    sublayer_out: np.ndarray,
    residual: np.ndarray,
    weight: np.ndarray,
    bias: np.ndarray,
    eps: float = 1e-12,
) -> np.ndarray:
    """Residual add followed by layer normalization.

    ``X`` in Eq. 3.4 is "the sum of MHA/FFN output and Add-Norm input".
    """
    a = np.asarray(sublayer_out)
    b = np.asarray(residual)
    if a.shape != b.shape:
        raise ValueError(
            f"shape mismatch in residual add: {a.shape} vs {b.shape}"
        )
    return layer_norm(a + b, weight, bias, eps=eps)
