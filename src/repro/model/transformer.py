"""The full encoder-decoder Transformer (golden functional model)."""

from __future__ import annotations

import numpy as np

from repro.model.decoder import decoder_layer
from repro.model.encoder import encoder_layer
from repro.model.ops import linear, log_softmax
from repro.model.params import TransformerParams, init_transformer_params


class Transformer:
    """Reference inference engine for the 12-encoder / 6-decoder model.

    The hardware simulator (:mod:`repro.hw`) re-implements exactly these
    computations with the paper's tiling/striping dataflow; the two must
    agree numerically.
    """

    def __init__(self, params: TransformerParams | None = None) -> None:
        self.params = params or init_transformer_params()

    @property
    def config(self):
        return self.params.config

    def encode(
        self, features: np.ndarray, mask: np.ndarray | None = None
    ) -> np.ndarray:
        """Run the encoder stack over an (s, d_model) feature sequence."""
        x = np.asarray(features)
        if x.ndim != 2 or x.shape[1] != self.config.d_model:
            raise ValueError(
                f"encoder input must be (s, {self.config.d_model}); got {x.shape}"
            )
        for layer in self.params.encoders:
            x = encoder_layer(x, layer, mask=mask)
        return x

    def embed_tokens(self, tokens: np.ndarray) -> np.ndarray:
        """Look up decoder-input token embeddings, scaled by sqrt(d)."""
        t = np.asarray(tokens, dtype=np.int64)
        if t.ndim != 1:
            raise ValueError("tokens must be a 1-D index array")
        if t.size and (t.min() < 0 or t.max() >= self.config.vocab_size):
            raise ValueError("token index out of vocabulary range")
        return self.params.embedding[t] * np.sqrt(float(self.config.d_model))

    def decode(
        self,
        tokens: np.ndarray,
        memory: np.ndarray,
        memory_mask: np.ndarray | None = None,
    ) -> np.ndarray:
        """Run the decoder stack; returns (t, d_model) hidden states."""
        x = self.embed_tokens(tokens)
        for layer in self.params.decoders:
            x = decoder_layer(x, memory, layer, memory_mask=memory_mask)
        return x

    def output_logits(self, decoder_out: np.ndarray) -> np.ndarray:
        """Project decoder hidden states to vocabulary logits."""
        return linear(decoder_out, self.params.output_w, self.params.output_b)

    def forward(
        self,
        features: np.ndarray,
        tokens: np.ndarray,
        memory_mask: np.ndarray | None = None,
    ) -> np.ndarray:
        """Full teacher-forced pass: features + tokens -> (t, vocab) logits."""
        memory = self.encode(features)
        hidden = self.decode(tokens, memory, memory_mask=memory_mask)
        return self.output_logits(hidden)

    def log_probs(self, features: np.ndarray, tokens: np.ndarray) -> np.ndarray:
        """Log posterior over the vocabulary at each decoder position."""
        return log_softmax(self.forward(features, tokens), axis=-1)
