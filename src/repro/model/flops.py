"""FLOP accounting for the Transformer (Section 4.2).

The paper states the deployed architecture requires ~4 GFLOP per input
sequence and has an operational intensity of ~0.25 ops/byte.  The 0.25
figure corresponds to the short-sequence limit counting one MAC per
weight element streamed (each fp32 weight is 4 bytes and is used once
per sequence position): MACs/bytes -> s * N / (4 N) -> 0.25 at s=1.
Both conventions are implemented here; see EXPERIMENTS.md.
"""

from __future__ import annotations

from repro.config import ModelConfig


def matmul_flops(l: int, m: int, n: int) -> int:
    """FLOPs of an (l x m) @ (m x n) product: one multiply + one add."""
    if min(l, m, n) < 0:
        raise ValueError("dimensions must be non-negative")
    return 2 * l * m * n


def mha_flops(s_q: int, s_k: int, config: ModelConfig) -> int:
    """FLOPs of one MHA block with s_q queries and s_k keys/values."""
    h, d_model, d_k = config.num_heads, config.d_model, config.d_k
    per_head = (
        matmul_flops(s_q, d_model, d_k)  # MM1(Q)
        + 2 * matmul_flops(s_k, d_model, d_k)  # MM1(K), MM1(V)
        + matmul_flops(s_q, d_k, s_k)  # MM2 = Q K^T
        + matmul_flops(s_q, s_k, d_k)  # MM3 = Sm V
    )
    return h * per_head + matmul_flops(s_q, d_model, d_model)  # + MM4


def ffn_flops(s: int, config: ModelConfig) -> int:
    """FLOPs of one FFN block (MM5 + MM6)."""
    return matmul_flops(s, config.d_model, config.d_ff) + matmul_flops(
        s, config.d_ff, config.d_model
    )


def encoder_layer_flops(s: int, config: ModelConfig) -> int:
    """Matmul FLOPs of one encoder layer (MHA + FFN)."""
    return mha_flops(s, s, config) + ffn_flops(s, config)


def decoder_layer_flops(t: int, s: int, config: ModelConfig) -> int:
    """Matmul FLOPs of one decoder layer (M-MHA + cross MHA + FFN).

    ``t`` is the decoder-side length, ``s`` the encoder memory length.
    """
    return (
        mha_flops(t, t, config)  # masked self-attention
        + mha_flops(t, s, config)  # cross attention over encoder memory
        + ffn_flops(t, config)
    )


def transformer_flops(s: int, config: ModelConfig | None = None, t: int | None = None) -> int:
    """Total matmul FLOPs of one full inference pass.

    By default the decoder length equals the encoder length (the
    accelerator pads both to the fixed hardware sequence length).
    """
    config = config or ModelConfig()
    if s <= 0:
        raise ValueError("s must be positive")
    t = s if t is None else t
    total = config.num_encoders * encoder_layer_flops(s, config)
    total += config.num_decoders * decoder_layer_flops(t, s, config)
    return total


def weight_bytes(config: ModelConfig | None = None, bytes_per_element: int = 4) -> int:
    """Bytes of weights streamed for one full encoder-decoder pass."""
    config = config or ModelConfig()
    h, d_model, d_k, d_ff = (
        config.num_heads,
        config.d_model,
        config.d_k,
        config.d_ff,
    )
    attn = h * (3 * d_model * d_k + 3 * d_k) + d_model * d_model + d_model
    norm = 2 * d_model
    ffn = d_model * d_ff + d_ff + d_ff * d_model + d_model
    enc = attn + 2 * norm + ffn
    dec = 2 * attn + 3 * norm + ffn
    total = config.num_encoders * enc + config.num_decoders * dec
    return total * bytes_per_element


def operational_intensity(
    s: int,
    config: ModelConfig | None = None,
    count_macs: bool = False,
    bytes_per_element: int = 4,
) -> float:
    """Ops per byte of weight traffic for one inference at length ``s``.

    With ``count_macs=True`` this reproduces the paper's ~0.25 ops/B in
    the short-sequence limit (one MAC per 4-byte weight streamed).
    """
    config = config or ModelConfig()
    flops = transformer_flops(s, config)
    ops = flops // 2 if count_macs else flops
    return ops / weight_bytes(config, bytes_per_element)
