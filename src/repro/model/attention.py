"""Multi-head attention (Eqs. 3.1 and 3.2)."""

from __future__ import annotations

import numpy as np

from repro.model.masks import apply_mask
from repro.model.ops import linear, softmax
from repro.model.params import AttentionParams


def scaled_dot_product_attention(
    q: np.ndarray,
    k: np.ndarray,
    v: np.ndarray,
    mask: np.ndarray | None = None,
) -> np.ndarray:
    """``softmax(Q K^T / sqrt(d_k)) V`` for one head (Eq. 3.1).

    ``q`` is ``(s_q, d_k)``, ``k`` and ``v`` are ``(s_k, d_k)``; ``mask``
    broadcasts against the ``(s_q, s_k)`` score matrix with True=attend.
    """
    q = np.asarray(q)
    k = np.asarray(k)
    v = np.asarray(v)
    if q.shape[-1] != k.shape[-1]:
        raise ValueError("q and k must share the key dimension")
    if k.shape[0] != v.shape[0]:
        raise ValueError("k and v must share the sequence dimension")
    d_k = q.shape[-1]
    scores = (q @ k.T) / np.sqrt(float(d_k))
    weights = softmax(apply_mask(scores, mask), axis=-1)
    return weights @ v


def attention_head(
    x_q: np.ndarray,
    x_kv: np.ndarray,
    params: AttentionParams,
    head: int,
    mask: np.ndarray | None = None,
) -> np.ndarray:
    """One attention head: project, attend, return ``(s_q, d_k)``."""
    if not 0 <= head < params.num_heads:
        raise ValueError(f"head must be in [0, {params.num_heads}); got {head}")
    q = linear(x_q, params.wq[head], params.bq[head])
    k = linear(x_kv, params.wk[head], params.bk[head])
    v = linear(x_kv, params.wv[head], params.bv[head])
    return scaled_dot_product_attention(q, k, v, mask=mask)


def multi_head_attention(
    x_q: np.ndarray,
    x_kv: np.ndarray,
    params: AttentionParams,
    mask: np.ndarray | None = None,
) -> np.ndarray:
    """Full MHA (Eq. 3.2): heads in parallel, concat, output linear.

    ``x_q`` is ``(s_q, d_model)`` (queries); ``x_kv`` is ``(s_k, d_model)``
    (keys/values — equal to ``x_q`` for self-attention, the encoder
    output for the decoder's cross-attention).
    """
    x_q = np.asarray(x_q)
    x_kv = np.asarray(x_kv)
    if x_q.ndim != 2 or x_kv.ndim != 2:
        raise ValueError("inputs must be (s, d_model) matrices")
    if x_q.shape[1] != params.d_model or x_kv.shape[1] != params.d_model:
        raise ValueError(
            f"inputs must have d_model={params.d_model} columns; "
            f"got {x_q.shape} and {x_kv.shape}"
        )
    heads = [
        attention_head(x_q, x_kv, params, h, mask=mask)
        for h in range(params.num_heads)
    ]
    concat = np.concatenate(heads, axis=-1)
    return linear(concat, params.wo, params.bo)
