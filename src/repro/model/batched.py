"""Vectorized batched inference for the CPU baseline.

The per-sequence reference implementation loops over attention heads
and sequences; a software CPU baseline worth comparing against batches:
one ``(B, s, d_model)`` tensor sweep per layer with all heads stacked
into a single einsum (per the scientific-Python guidance: vectorize the
hot loops, let BLAS see big contractions).  Numerically equivalent to
running the per-sequence model B times, which the tests pin.
"""

from __future__ import annotations

import numpy as np

from repro.model.layernorm import layer_norm
from repro.model.masks import NEG_INF, causal_mask
from repro.model.ops import linear, relu, softmax
from repro.model.params import (
    AttentionParams,
    FeedForwardParams,
    TransformerParams,
)


def _batched_mha(
    x_q: np.ndarray,
    x_kv: np.ndarray,
    params: AttentionParams,
    mask: np.ndarray | None = None,
) -> np.ndarray:
    """MHA over (B, s, d) tensors with all heads in one contraction."""
    # Projections for all heads at once: (B, s, d) x (h, d, k) -> (B, h, s, k)
    q = np.einsum("bsd,hdk->bhsk", x_q, params.wq, optimize=True) + params.bq[:, None, :]
    k = np.einsum("bsd,hdk->bhsk", x_kv, params.wk, optimize=True) + params.bk[:, None, :]
    v = np.einsum("bsd,hdk->bhsk", x_kv, params.wv, optimize=True) + params.bv[:, None, :]
    d_k = params.d_k
    scores = np.einsum("bhqk,bhsk->bhqs", q, k, optimize=True) / np.sqrt(
        np.float32(d_k)
    )
    if mask is not None:
        scores = np.where(mask, scores, scores + NEG_INF)
    weights = softmax(scores, axis=-1)
    heads = np.einsum("bhqs,bhsk->bhqk", weights, v, optimize=True)
    # (B, h, s, k) -> (B, s, h*k)
    b, h, s, kdim = heads.shape
    concat = heads.transpose(0, 2, 1, 3).reshape(b, s, h * kdim)
    return concat @ params.wo + params.bo


def _batched_ffn(x: np.ndarray, params: FeedForwardParams) -> np.ndarray:
    return relu(x @ params.w1 + params.b1) @ params.w2 + params.b2


def _batched_add_norm(a, b, weight, bias):
    return layer_norm(a + b, weight, bias)


class BatchedTransformer:
    """Batched teacher-forced inference over (B, s, d) inputs."""

    def __init__(self, params: TransformerParams) -> None:
        self.params = params

    @property
    def config(self):
        return self.params.config

    def encode(self, features: np.ndarray) -> np.ndarray:
        x = np.asarray(features)
        if x.ndim != 3 or x.shape[2] != self.config.d_model:
            raise ValueError(
                f"features must be (B, s, {self.config.d_model}); got {x.shape}"
            )
        for layer in self.params.encoders:
            attn = _batched_mha(x, x, layer.mha)
            x = _batched_add_norm(attn, x, layer.norm1.weight, layer.norm1.bias)
            ffn = _batched_ffn(x, layer.ffn)
            x = _batched_add_norm(ffn, x, layer.norm2.weight, layer.norm2.bias)
        return x

    def decode(self, tokens: np.ndarray, memory: np.ndarray) -> np.ndarray:
        t = np.asarray(tokens, dtype=np.int64)
        if t.ndim != 2:
            raise ValueError("tokens must be (B, t)")
        if memory.ndim != 3 or memory.shape[0] != t.shape[0]:
            raise ValueError("memory must be (B, s, d) aligned with tokens")
        cfg = self.config
        if t.size and (t.min() < 0 or t.max() >= cfg.vocab_size):
            raise ValueError("token index out of range")
        x = self.params.embedding[t] * np.sqrt(np.float32(cfg.d_model))
        mask = causal_mask(t.shape[1])  # broadcasts over (B, h, q, s)
        for layer in self.params.decoders:
            attn = _batched_mha(x, x, layer.self_mha, mask=mask)
            x = _batched_add_norm(attn, x, layer.norm1.weight, layer.norm1.bias)
            cross = _batched_mha(x, memory, layer.cross_mha)
            x = _batched_add_norm(cross, x, layer.norm2.weight, layer.norm2.bias)
            ffn = _batched_ffn(x, layer.ffn)
            x = _batched_add_norm(ffn, x, layer.norm3.weight, layer.norm3.bias)
        return x

    def forward(self, features: np.ndarray, tokens: np.ndarray) -> np.ndarray:
        """(B, s, d) features + (B, t) tokens -> (B, t, vocab) logits."""
        memory = self.encode(features)
        hidden = self.decode(tokens, memory)
        return linear(hidden, self.params.output_w, self.params.output_b)
