"""Position-wise feed-forward network (Eq. 3.3)."""

from __future__ import annotations

import numpy as np

from repro.model.ops import linear, relu
from repro.model.params import FeedForwardParams


def feed_forward(x: np.ndarray, params: FeedForwardParams) -> np.ndarray:
    """``FFN(x) = ReLU(x W_1F + B_1F) W_2F + B_2F``."""
    x = np.asarray(x)
    if x.ndim != 2 or x.shape[1] != params.d_model:
        raise ValueError(
            f"input must be (s, {params.d_model}); got shape {x.shape}"
        )
    hidden = relu(linear(x, params.w1, params.b1))
    return linear(hidden, params.w2, params.b2)
