"""One Transformer encoder layer (Fig 3.2 / 3.3)."""

from __future__ import annotations

import numpy as np

from repro.model.attention import multi_head_attention
from repro.model.ffn import feed_forward
from repro.model.layernorm import add_norm
from repro.model.params import EncoderLayerParams


def encoder_layer(
    x: np.ndarray,
    params: EncoderLayerParams,
    mask: np.ndarray | None = None,
) -> np.ndarray:
    """MHA -> Add-Norm -> FFN -> Add-Norm over an (s, d_model) input."""
    attn = multi_head_attention(x, x, params.mha, mask=mask)
    x = add_norm(attn, x, params.norm1.weight, params.norm1.bias)
    ffn_out = feed_forward(x, params.ffn)
    return add_norm(ffn_out, x, params.norm2.weight, params.norm2.bias)
