"""Elementary tensor operations shared by the model and the simulator."""

from __future__ import annotations

import numpy as np

#: The paper evaluates a 32-bit single-precision floating point model.
MODEL_DTYPE = np.float32


def as_model_dtype(x: np.ndarray) -> np.ndarray:
    """View/convert an array to the model precision (fp32)."""
    return np.asarray(x, dtype=MODEL_DTYPE)


def linear(x: np.ndarray, weight: np.ndarray, bias: np.ndarray | None = None) -> np.ndarray:
    """Affine map ``x @ weight + bias``.

    ``x`` is ``(..., in)``; ``weight`` is ``(in, out)``; ``bias`` is
    ``(out,)`` or None.
    """
    x = np.asarray(x)
    weight = np.asarray(weight)
    if x.shape[-1] != weight.shape[0]:
        raise ValueError(
            f"inner-dimension mismatch: x has {x.shape[-1]}, "
            f"weight expects {weight.shape[0]}"
        )
    out = x @ weight
    if bias is not None:
        bias = np.asarray(bias)
        if bias.shape != (weight.shape[1],):
            raise ValueError(
                f"bias must have shape ({weight.shape[1]},); got {bias.shape}"
            )
        out = out + bias
    return out


def relu(x: np.ndarray) -> np.ndarray:
    """Rectified linear unit."""
    return np.maximum(np.asarray(x), 0)


def softmax(x: np.ndarray, axis: int = -1) -> np.ndarray:
    """Numerically stable softmax along ``axis``."""
    x = np.asarray(x, dtype=np.float64)
    shifted = x - np.max(x, axis=axis, keepdims=True)
    exp = np.exp(shifted)
    return (exp / np.sum(exp, axis=axis, keepdims=True)).astype(x.dtype)


def log_softmax(x: np.ndarray, axis: int = -1) -> np.ndarray:
    """Numerically stable log-softmax along ``axis``."""
    x = np.asarray(x, dtype=np.float64)
    shifted = x - np.max(x, axis=axis, keepdims=True)
    log_z = np.log(np.sum(np.exp(shifted), axis=axis, keepdims=True))
    return (shifted - log_z).astype(x.dtype)
