"""Beam-search decoding over a step function."""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.decoding.greedy import StepFn
from repro.obs import metrics as obs_metrics


@dataclass(order=True)
class BeamHypothesis:
    """A partial hypothesis ordered by total log-probability."""

    score: float
    tokens: list[int] = field(compare=False)
    finished: bool = field(default=False, compare=False)

    def normalized_score(self, length_penalty: float = 0.0) -> float:
        """Score divided by length**penalty (0 disables normalization)."""
        n = max(len(self.tokens) - 1, 1)  # exclude sos
        return self.score / (n**length_penalty) if length_penalty else self.score

    def best_achievable_score(self, length_penalty: float, max_len: int) -> float:
        """Upper bound on the normalized score any continuation of this
        hypothesis can reach.

        Log-prob increments are non-positive, so the raw score can only
        fall; a negative score normalized at the longest possible
        length ``max_len`` is therefore the best case.  (A non-negative
        score — only possible with an improper step function — is
        returned un-normalized, which disables early stopping.)
        """
        if not length_penalty or self.score >= 0:
            return self.score
        return self.score / (max(max_len, 1) ** length_penalty)


def beam_search(
    step_fn: StepFn,
    sos_id: int,
    eos_id: int,
    max_len: int,
    beam_size: int = 4,
    length_penalty: float = 0.0,
) -> list[BeamHypothesis]:
    """Standard beam search; returns finished hypotheses, best first.

    Hypothesis tokens include the leading sos but not the eos.  If no
    hypothesis finishes within ``max_len`` steps, the live beams are
    returned instead.
    """
    if beam_size <= 0:
        raise ValueError("beam_size must be positive")
    if max_len <= 0:
        raise ValueError("max_len must be positive")

    reg = obs_metrics.registry()
    live = [BeamHypothesis(score=0.0, tokens=[sos_id])]
    finished: list[BeamHypothesis] = []

    for _ in range(max_len):
        candidates: list[BeamHypothesis] = []
        for hyp in live:
            reg.counter("repro.decoding.beam.hypotheses_expanded").inc()
            log_probs = np.asarray(
                step_fn(np.asarray(hyp.tokens, dtype=np.int64))
            )
            top = np.argsort(log_probs)[::-1][:beam_size]
            for tok in top:
                tok = int(tok)
                score = hyp.score + float(log_probs[tok])
                if tok == eos_id:
                    candidates.append(
                        BeamHypothesis(score=score, tokens=list(hyp.tokens), finished=True)
                    )
                else:
                    candidates.append(
                        BeamHypothesis(score=score, tokens=hyp.tokens + [tok])
                    )
        candidates.sort(key=lambda h: h.score, reverse=True)
        live = []
        for cand in candidates:
            if cand.finished:
                finished.append(cand)
            else:
                live.append(cand)
            if len(live) >= beam_size:
                break
        if not live:
            break
        if len(finished) >= beam_size:
            # Compare on one scale: the best finished normalized score
            # against the best normalized score any live beam could
            # still achieve.  (Comparing raw live scores to normalized
            # finished ones breaks down whenever length_penalty > 0.)
            best_finished = max(
                h.normalized_score(length_penalty) for h in finished
            )
            best_live = max(
                h.best_achievable_score(length_penalty, max_len) for h in live
            )
            if best_live < best_finished:
                reg.counter("repro.decoding.beam.early_stops").inc()
                break

    reg.counter("repro.decoding.beam.finished").inc(len(finished))
    result = finished if finished else live
    result.sort(key=lambda h: h.normalized_score(length_penalty), reverse=True)
    return result
