"""Beam-search decoding over a step function."""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.decoding.greedy import StepFn


@dataclass(order=True)
class BeamHypothesis:
    """A partial hypothesis ordered by total log-probability."""

    score: float
    tokens: list[int] = field(compare=False)
    finished: bool = field(default=False, compare=False)

    def normalized_score(self, length_penalty: float = 0.0) -> float:
        """Score divided by length**penalty (0 disables normalization)."""
        n = max(len(self.tokens) - 1, 1)  # exclude sos
        return self.score / (n**length_penalty) if length_penalty else self.score


def beam_search(
    step_fn: StepFn,
    sos_id: int,
    eos_id: int,
    max_len: int,
    beam_size: int = 4,
    length_penalty: float = 0.0,
) -> list[BeamHypothesis]:
    """Standard beam search; returns finished hypotheses, best first.

    Hypothesis tokens include the leading sos but not the eos.  If no
    hypothesis finishes within ``max_len`` steps, the live beams are
    returned instead.
    """
    if beam_size <= 0:
        raise ValueError("beam_size must be positive")
    if max_len <= 0:
        raise ValueError("max_len must be positive")

    live = [BeamHypothesis(score=0.0, tokens=[sos_id])]
    finished: list[BeamHypothesis] = []

    for _ in range(max_len):
        candidates: list[BeamHypothesis] = []
        for hyp in live:
            log_probs = np.asarray(
                step_fn(np.asarray(hyp.tokens, dtype=np.int64))
            )
            top = np.argsort(log_probs)[::-1][:beam_size]
            for tok in top:
                tok = int(tok)
                score = hyp.score + float(log_probs[tok])
                if tok == eos_id:
                    candidates.append(
                        BeamHypothesis(score=score, tokens=list(hyp.tokens), finished=True)
                    )
                else:
                    candidates.append(
                        BeamHypothesis(score=score, tokens=hyp.tokens + [tok])
                    )
        candidates.sort(key=lambda h: h.score, reverse=True)
        live = []
        for cand in candidates:
            if cand.finished:
                finished.append(cand)
            else:
                live.append(cand)
            if len(live) >= beam_size:
                break
        if not live:
            break
        if len(finished) >= beam_size:
            best_finished = max(
                h.normalized_score(length_penalty) for h in finished
            )
            best_live = max(h.score for h in live)
            if best_live < best_finished:
                break

    result = finished if finished else live
    result.sort(key=lambda h: h.normalized_score(length_penalty), reverse=True)
    return result
