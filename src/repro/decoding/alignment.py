"""Word-level alignment between reference and hypothesis transcripts.

WER alone says *how much* went wrong; an alignment says *what*:
substitutions, insertions, deletions, in order.  This is the standard
sclite-style error breakdown ASR papers tabulate alongside WER.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import Sequence


class EditOp(str, Enum):
    MATCH = "match"
    SUBSTITUTE = "sub"
    INSERT = "ins"
    DELETE = "del"


@dataclass(frozen=True)
class AlignedPair:
    """One step of the alignment path."""

    op: EditOp
    reference: str | None  # None for insertions
    hypothesis: str | None  # None for deletions


@dataclass(frozen=True)
class AlignmentResult:
    """Full alignment plus the error breakdown."""

    pairs: tuple[AlignedPair, ...]

    @property
    def substitutions(self) -> int:
        return sum(p.op is EditOp.SUBSTITUTE for p in self.pairs)

    @property
    def insertions(self) -> int:
        return sum(p.op is EditOp.INSERT for p in self.pairs)

    @property
    def deletions(self) -> int:
        return sum(p.op is EditOp.DELETE for p in self.pairs)

    @property
    def matches(self) -> int:
        return sum(p.op is EditOp.MATCH for p in self.pairs)

    @property
    def errors(self) -> int:
        return self.substitutions + self.insertions + self.deletions

    @property
    def reference_length(self) -> int:
        return self.matches + self.substitutions + self.deletions

    @property
    def wer(self) -> float:
        if self.reference_length == 0:
            raise ValueError("empty reference")
        return self.errors / self.reference_length

    def pretty(self) -> str:
        """Three-line sclite-style rendering (REF / HYP / ops)."""
        ref_row, hyp_row, op_row = [], [], []
        marks = {
            EditOp.MATCH: " ",
            EditOp.SUBSTITUTE: "S",
            EditOp.INSERT: "I",
            EditOp.DELETE: "D",
        }
        for p in self.pairs:
            ref = p.reference if p.reference is not None else "***"
            hyp = p.hypothesis if p.hypothesis is not None else "***"
            width = max(len(ref), len(hyp), 1)
            ref_row.append(ref.ljust(width))
            hyp_row.append(hyp.ljust(width))
            op_row.append(marks[p.op].ljust(width))
        return (
            "REF: " + " ".join(ref_row) + "\n"
            "HYP: " + " ".join(hyp_row) + "\n"
            "     " + " ".join(op_row)
        )


def align(reference: Sequence[str], hypothesis: Sequence[str]) -> AlignmentResult:
    """Levenshtein alignment with backtrace (uniform costs)."""
    ref = list(reference)
    hyp = list(hypothesis)
    n, m = len(ref), len(hyp)
    # dp[i][j] = distance between ref[:i] and hyp[:j].
    dp = [[0] * (m + 1) for _ in range(n + 1)]
    for i in range(n + 1):
        dp[i][0] = i
    for j in range(m + 1):
        dp[0][j] = j
    for i in range(1, n + 1):
        for j in range(1, m + 1):
            cost = 0 if ref[i - 1] == hyp[j - 1] else 1
            dp[i][j] = min(
                dp[i - 1][j] + 1,  # deletion
                dp[i][j - 1] + 1,  # insertion
                dp[i - 1][j - 1] + cost,
            )
    # Backtrace, preferring diagonal moves for stable alignments.
    pairs: list[AlignedPair] = []
    i, j = n, m
    while i > 0 or j > 0:
        if i > 0 and j > 0:
            cost = 0 if ref[i - 1] == hyp[j - 1] else 1
            if dp[i][j] == dp[i - 1][j - 1] + cost:
                op = EditOp.MATCH if cost == 0 else EditOp.SUBSTITUTE
                pairs.append(AlignedPair(op, ref[i - 1], hyp[j - 1]))
                i -= 1
                j -= 1
                continue
        if i > 0 and dp[i][j] == dp[i - 1][j] + 1:
            pairs.append(AlignedPair(EditOp.DELETE, ref[i - 1], None))
            i -= 1
            continue
        pairs.append(AlignedPair(EditOp.INSERT, None, hyp[j - 1]))
        j -= 1
    pairs.reverse()
    return AlignmentResult(pairs=tuple(pairs))


def align_words(reference: str, hypothesis: str) -> AlignmentResult:
    """Word-level alignment of two transcripts."""
    return align(reference.split(), hypothesis.split())
