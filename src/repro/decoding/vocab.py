"""Character-level vocabulary for the E2E ASR model.

The ESPnet recipe used in the paper is character-level ("The
character-level-based E2E speech processing...", Section 3.1) and its
output, shown in Fig 5.1, uses ``_`` as the word separator.  The default
vocabulary is: sos, eos, unk, space, apostrophe, a..z = 31 tokens.
"""

from __future__ import annotations

import numpy as np

DEFAULT_CHARACTERS = " '" + "abcdefghijklmnopqrstuvwxyz"


class CharVocabulary:
    """Bidirectional character <-> index mapping with specials."""

    SOS = "<sos>"
    EOS = "<eos>"
    UNK = "<unk>"

    def __init__(self, characters: str = DEFAULT_CHARACTERS) -> None:
        if len(set(characters)) != len(characters):
            raise ValueError("characters must be unique")
        for special_like in "<>":
            if special_like in characters:
                raise ValueError("'<' and '>' are reserved for special tokens")
        self._specials = (self.SOS, self.EOS, self.UNK)
        self._tokens = list(self._specials) + list(characters)
        self._index = {tok: i for i, tok in enumerate(self._tokens)}

    def __len__(self) -> int:
        return len(self._tokens)

    @property
    def sos_id(self) -> int:
        return self._index[self.SOS]

    @property
    def eos_id(self) -> int:
        return self._index[self.EOS]

    @property
    def unk_id(self) -> int:
        return self._index[self.UNK]

    @property
    def tokens(self) -> list[str]:
        return list(self._tokens)

    def encode(self, text: str, add_sos: bool = False, add_eos: bool = False) -> np.ndarray:
        """Map text to token indices; unknown characters become UNK."""
        ids = [self._index.get(ch.lower(), self.unk_id) for ch in text]
        if add_sos:
            ids.insert(0, self.sos_id)
        if add_eos:
            ids.append(self.eos_id)
        return np.asarray(ids, dtype=np.int64)

    def decode(self, ids: np.ndarray | list[int], stop_at_eos: bool = True) -> str:
        """Map token indices back to text, skipping special tokens."""
        chars: list[str] = []
        for i in np.asarray(ids, dtype=np.int64):
            tok = self._tokens[int(i)]
            if tok == self.EOS and stop_at_eos:
                break
            if tok in self._specials:
                continue
            chars.append(tok)
        return "".join(chars)

    def decode_espnet_style(self, ids: np.ndarray | list[int]) -> str:
        """Decode with '_' word separators, as in the Fig 5.1 output."""
        return self.decode(ids).upper().replace(" ", "_")
