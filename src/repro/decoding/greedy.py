"""Greedy autoregressive decoding."""

from __future__ import annotations

from typing import Callable

import numpy as np

#: A step function maps the current token prefix (1-D int array,
#: starting with sos) to log-probabilities over the vocabulary for the
#: next position (1-D float array).  Both the reference Transformer and
#: the accelerator facade provide one.
StepFn = Callable[[np.ndarray], np.ndarray]


def greedy_decode(
    step_fn: StepFn,
    sos_id: int,
    eos_id: int,
    max_len: int,
) -> np.ndarray:
    """Repeatedly pick the argmax token until eos or ``max_len``.

    Returns the generated ids *excluding* sos and eos.
    """
    if max_len <= 0:
        raise ValueError("max_len must be positive")
    tokens = [sos_id]
    for _ in range(max_len):
        log_probs = np.asarray(step_fn(np.asarray(tokens, dtype=np.int64)))
        if log_probs.ndim != 1:
            raise ValueError("step_fn must return a 1-D log-prob vector")
        next_id = int(np.argmax(log_probs))
        if next_id == eos_id:
            break
        tokens.append(next_id)
    return np.asarray(tokens[1:], dtype=np.int64)
