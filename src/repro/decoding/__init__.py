"""Character-level decoding: vocabulary, greedy/beam search, WER."""

from repro.decoding.alignment import (
    AlignmentResult,
    EditOp,
    align,
    align_words,
)
from repro.decoding.beam import BeamHypothesis, beam_search
from repro.decoding.greedy import greedy_decode
from repro.decoding.vocab import CharVocabulary
from repro.decoding.wer import (
    character_error_rate,
    corpus_word_error_rate,
    edit_distance,
    word_error_rate,
)

__all__ = [
    "AlignmentResult",
    "EditOp",
    "align",
    "align_words",
    "BeamHypothesis",
    "beam_search",
    "greedy_decode",
    "CharVocabulary",
    "character_error_rate",
    "corpus_word_error_rate",
    "edit_distance",
    "word_error_rate",
]
