"""Word / character error rate (Section 5.1.1 reports WER ~9.5%)."""

from __future__ import annotations

from typing import Sequence

import numpy as np


def edit_distance(reference: Sequence, hypothesis: Sequence) -> int:
    """Levenshtein distance (substitutions/insertions/deletions = 1)."""
    ref = list(reference)
    hyp = list(hypothesis)
    if not ref:
        return len(hyp)
    if not hyp:
        return len(ref)
    # Single rolling row keeps memory at O(len(hyp)).
    prev = np.arange(len(hyp) + 1, dtype=np.int64)
    curr = np.empty_like(prev)
    for i, r in enumerate(ref, start=1):
        curr[0] = i
        for j, h in enumerate(hyp, start=1):
            cost = 0 if r == h else 1
            curr[j] = min(prev[j] + 1, curr[j - 1] + 1, prev[j - 1] + cost)
        prev, curr = curr, prev
    return int(prev[len(hyp)])


def word_error_rate(reference: str, hypothesis: str) -> float:
    """WER = edit_distance(words) / len(reference words).

    Raises on an empty reference — WER is undefined there.
    """
    ref_words = reference.split()
    if not ref_words:
        raise ValueError("reference transcript is empty")
    return edit_distance(ref_words, hypothesis.split()) / len(ref_words)


def character_error_rate(reference: str, hypothesis: str) -> float:
    """CER over raw characters (whitespace included)."""
    if not reference:
        raise ValueError("reference transcript is empty")
    return edit_distance(reference, hypothesis) / len(reference)


def corpus_word_error_rate(
    references: Sequence[str], hypotheses: Sequence[str]
) -> float:
    """Corpus-level WER: total edits / total reference words."""
    if len(references) != len(hypotheses):
        raise ValueError("references and hypotheses must align")
    if not references:
        raise ValueError("empty corpus")
    edits = 0
    words = 0
    for ref, hyp in zip(references, hypotheses):
        ref_words = ref.split()
        if not ref_words:
            raise ValueError("reference transcript is empty")
        edits += edit_distance(ref_words, hyp.split())
        words += len(ref_words)
    return edits / words
