"""Bandwidth and engine-utilization analysis of a scheduled run.

Turns a scheduler timeline into the quantities architects actually
argue about: how busy each HBM channel and the compute fabric were,
the effective weight-streaming bandwidth achieved, and what fraction
of the roofline-attainable rate the run sustained.  This is the
quantitative backing for the paper's narrative that A3 exists to keep
the compute fabric from starving (Section 4.5).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.config import ModelConfig
from repro.hw.controller import LatencyModel
from repro.hw.scheduler import Architecture
from repro.model.flops import transformer_flops, weight_bytes


@dataclass(frozen=True)
class UtilizationReport:
    """Engine utilization of one scheduled inference."""

    architecture: Architecture
    s: int
    total_cycles: int
    #: Busy fraction per engine ("hbm0", "hbm1", "compute").
    busy_fraction: dict[str, float]
    #: Fraction of the makespan the compute fabric sat stalled.
    compute_stall_fraction: float
    #: Weight bytes moved divided by wall time (GB/s).
    effective_load_gbps: float
    #: Sustained GFLOPs/s over the whole inference.
    sustained_gflops: float

    @property
    def compute_busy_fraction(self) -> float:
        return self.busy_fraction.get("compute", 0.0)


def utilization_report(
    latency_model: LatencyModel | None = None,
    s: int = 32,
    architecture: Architecture | str = Architecture.A3,
) -> UtilizationReport:
    """Analyze one scheduled inference."""
    lm = latency_model or LatencyModel()
    arch = Architecture(architecture)
    report = lm.latency_report(s, arch)
    schedule = report.schedule
    timeline = schedule.timeline
    makespan = timeline.makespan
    if makespan <= 0:
        raise ValueError("empty schedule")

    busy = {
        engine: timeline.busy_time(engine) / makespan
        for engine in timeline.engines()
    }
    model: ModelConfig = lm.model
    seconds = report.total_cycles / (lm.hardware.clock_mhz * 1e6)
    bytes_moved = weight_bytes(model, lm.hardware.bytes_per_element)
    return UtilizationReport(
        architecture=arch,
        s=s,
        total_cycles=report.total_cycles,
        busy_fraction=busy,
        compute_stall_fraction=schedule.stall_cycles / makespan,
        effective_load_gbps=bytes_moved / seconds / 1e9,
        sustained_gflops=transformer_flops(s, model) / 1e9 / seconds,
    )


def architecture_utilization_table(
    latency_model: LatencyModel | None = None, s: int = 32
) -> list[UtilizationReport]:
    """Compare engine utilization across A1/A2/A3."""
    lm = latency_model or LatencyModel()
    return [
        utilization_report(lm, s, arch) for arch in ("A1", "A2", "A3")
    ]
