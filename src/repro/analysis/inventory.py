"""Weight-matrix inventory (Table 4.1).

For the full 12-encoder / 6-decoder stack the paper counts, per weight
class, how many matrices are streamed and at what dimensions — e.g.
576 W_{Q/K/V} matrices of 512 x 64 (12 encoders x 1 MHA x 3 projections
x 8 heads + 6 decoders x 2 MHAs x 3 x 8).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.config import ModelConfig


@dataclass(frozen=True)
class WeightMatrixClass:
    """One row of Table 4.1."""

    name: str
    count: int
    rows: int
    cols: int

    @property
    def dims(self) -> str:
        return f"{self.rows} x {self.cols}"

    @property
    def elements(self) -> int:
        return self.count * self.rows * self.cols


def weight_inventory(config: ModelConfig | None = None) -> list[WeightMatrixClass]:
    """Compute Table 4.1 from the model configuration."""
    cfg = config or ModelConfig()
    num_mha = cfg.num_encoders + 2 * cfg.num_decoders  # MHA blocks total
    qkv_count = num_mha * 3 * cfg.num_heads
    #: Add-Norm layers: 2 per encoder, 3 per decoder; each has a weight
    #: and a bias vector (hence the x2).
    norm_layers = 2 * cfg.num_encoders + 3 * cfg.num_decoders
    num_ffn = cfg.num_encoders + cfg.num_decoders
    return [
        WeightMatrixClass("W_Q/K/V", qkv_count, cfg.d_model, cfg.d_k),
        WeightMatrixClass("B_Q/K/V", qkv_count, 1, cfg.d_k),
        WeightMatrixClass("W_A", num_mha, cfg.d_model, cfg.d_model),
        WeightMatrixClass("B_A", num_mha, 1, cfg.d_model),
        WeightMatrixClass("L_N", 2 * norm_layers, 1, cfg.d_model),
        WeightMatrixClass("W_1F", num_ffn, cfg.d_model, cfg.d_ff),
        WeightMatrixClass("B_1F", num_ffn, 1, cfg.d_ff),
        WeightMatrixClass("W_2F", num_ffn, cfg.d_ff, cfg.d_model),
        WeightMatrixClass("B_2F", num_ffn, 1, cfg.d_model),
    ]


def total_weight_elements(config: ModelConfig | None = None) -> int:
    """Total float elements across the inventory."""
    return sum(row.elements for row in weight_inventory(config))
