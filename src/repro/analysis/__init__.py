"""Static analyses and report formatting (Tables 4.1 / 4.2)."""

from repro.analysis.bandwidth import (
    UtilizationReport,
    architecture_utilization_table,
    utilization_report,
)
from repro.analysis.inventory import WeightMatrixClass, weight_inventory
from repro.analysis.power import PowerTrace, inference_power_report, power_trace
from repro.analysis.report import format_table
from repro.analysis.retarget import RetargetPoint, TARGET_CONFIGS, retarget_study

__all__ = [
    "UtilizationReport",
    "architecture_utilization_table",
    "utilization_report",
    "WeightMatrixClass",
    "PowerTrace",
    "inference_power_report",
    "power_trace",
    "weight_inventory",
    "format_table",
    "RetargetPoint",
    "TARGET_CONFIGS",
    "retarget_study",
]
