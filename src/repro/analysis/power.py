"""Time-resolved power and energy from a schedule timeline.

The §5.1.6 energy numbers use a flat board power; this module refines
that into static + per-engine activity power, integrated over the
schedule's Gantt events.  The activity split is chosen so the average
draw of the paper's operating point (A3, s=32: compute ~97% busy, two
HBM channels ~30% each) reproduces the 34.2 W board power implied by
the paper's 1.38 GFLOPs/J — and then predicts how power *shifts* for
other architectures and sequence lengths (A1 idles the fabric, so it
draws less power but burns more energy per inference).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.config import HardwareConfig
from repro.hw.controller import LatencyModel
from repro.hw.scheduler import Architecture
from repro.hw.trace import Timeline

#: Activity-power split (watts), calibrated as described above.
STATIC_POWER_W = 12.0
COMPUTE_ACTIVE_W = 21.6
HBM_CHANNEL_ACTIVE_W = 2.0


@dataclass(frozen=True)
class PowerTrace:
    """Step-function power over one scheduled inference."""

    #: Breakpoint times (cycles), length n+1.
    times: np.ndarray
    #: Power (W) on each [times[i], times[i+1]) interval, length n.
    power_w: np.ndarray
    clock_mhz: float

    def __post_init__(self) -> None:
        if self.times.ndim != 1 or self.power_w.ndim != 1:
            raise ValueError("times and power_w must be 1-D")
        if self.times.size != self.power_w.size + 1:
            raise ValueError("need one more breakpoint than intervals")

    @property
    def duration_s(self) -> float:
        return float(self.times[-1] - self.times[0]) / (self.clock_mhz * 1e6)

    @property
    def energy_joules(self) -> float:
        dt = np.diff(self.times) / (self.clock_mhz * 1e6)
        return float(np.sum(self.power_w * dt))

    @property
    def average_power_w(self) -> float:
        if self.duration_s <= 0:
            raise ValueError("empty trace")
        return self.energy_joules / self.duration_s

    @property
    def peak_power_w(self) -> float:
        return float(self.power_w.max())


def _engine_power(engine: str) -> float:
    if engine == "compute":
        return COMPUTE_ACTIVE_W
    if engine.startswith("hbm"):
        return HBM_CHANNEL_ACTIVE_W
    return 0.0


def power_trace(
    timeline: Timeline, hardware: HardwareConfig | None = None
) -> PowerTrace:
    """Integrate engine activity into a power step function."""
    hw = hardware or HardwareConfig()
    if not timeline.events:
        raise ValueError("empty timeline")
    breakpoints = sorted(
        {e.start for e in timeline.events} | {e.end for e in timeline.events}
    )
    times = np.asarray(breakpoints, dtype=np.float64)
    power = np.full(times.size - 1, STATIC_POWER_W)
    mids = (times[:-1] + times[1:]) / 2
    for event in timeline.events:
        active = (mids >= event.start) & (mids < event.end)
        power[active] += _engine_power(event.engine)
    return PowerTrace(times=times, power_w=power, clock_mhz=hw.clock_mhz)


def inference_power_report(
    latency_model: LatencyModel | None = None,
    s: int = 32,
    architecture: Architecture | str = Architecture.A3,
) -> PowerTrace:
    """Power trace of one scheduled inference."""
    lm = latency_model or LatencyModel()
    report = lm.latency_report(s, architecture)
    return power_trace(report.schedule.timeline, lm.hardware)
