"""Plain-text table formatting for benchmark and example output."""

from __future__ import annotations

from typing import Any, Sequence


def format_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[Any]],
    float_fmt: str = "{:.2f}",
) -> str:
    """Render rows as an aligned ASCII table."""
    if not headers:
        raise ValueError("need at least one header")

    def render(cell: Any) -> str:
        if isinstance(cell, float):
            return float_fmt.format(cell)
        return str(cell)

    str_rows = [[render(c) for c in row] for row in rows]
    for i, row in enumerate(str_rows):
        if len(row) != len(headers):
            raise ValueError(
                f"row {i} has {len(row)} cells; expected {len(headers)}"
            )
    widths = [
        max(len(h), *(len(r[i]) for r in str_rows)) if str_rows else len(h)
        for i, h in enumerate(headers)
    ]
    sep = "-+-".join("-" * w for w in widths)
    lines = [" | ".join(h.ljust(w) for h, w in zip(headers, widths)), sep]
    for row in str_rows:
        lines.append(" | ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)
