"""Retargetability study (Section 1.1's flexibility claim).

The paper: "It is possible to retarget the hardware accelerator to
process different transformer networks with varying configurations,
such as the number of encoders, decoders, and attention heads."  This
module runs the cycle model over a portfolio of published transformer
configurations — no re-synthesis, only different host schedules — and
reports latency and sustained GFLOPs/s for each.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.config import HardwareConfig, ModelConfig
from repro.hw.controller import LatencyModel
from repro.hw.scheduler import Architecture
from repro.model.flops import transformer_flops, weight_bytes

#: Named transformer configurations from the paper and its related work.
TARGET_CONFIGS: dict[str, ModelConfig] = {
    # The deployed ESPnet transformer_base (Section 3.4).
    "espnet_base (paper)": ModelConfig(),
    # Qi et al. [29]: 2 encoders, 1 decoder, hidden 400, FFN 200, 4 heads.
    "qi_2021 [29]": ModelConfig(
        d_model=400, num_heads=4, d_ff=200, num_encoders=2, num_decoders=1
    ),
    # Vaswani et al. base (6 + 6, 512/2048/8).
    "vaswani_base": ModelConfig(num_encoders=6, num_decoders=6),
    # Vaswani et al. big (6 + 6, 1024/4096/16).
    "vaswani_big": ModelConfig(
        d_model=1024, num_heads=16, d_ff=4096, num_encoders=6, num_decoders=6
    ),
    # An encoder-only BERT-base-like stack (12 x 768/3072/12).
    "bert_base_like": ModelConfig(
        d_model=768, num_heads=12, d_ff=3072, num_encoders=12, num_decoders=0
    ),
}


@dataclass(frozen=True)
class RetargetPoint:
    """Predicted behaviour of one configuration on the same fabric."""

    name: str
    config: ModelConfig
    latency_ms: float
    gflops: float
    weight_mb: float
    crossover_s: int | None

    @property
    def gflops_per_second(self) -> float:
        return self.gflops / (self.latency_ms / 1e3)


def retarget_study(
    s: int = 32,
    hardware: HardwareConfig | None = None,
    architecture: Architecture | str = Architecture.A3,
    configs: dict[str, ModelConfig] | None = None,
) -> list[RetargetPoint]:
    """Run the cycle model over each configuration."""
    configs = configs or TARGET_CONFIGS
    hardware = hardware or HardwareConfig()
    points = []
    for name, cfg in configs.items():
        lm = LatencyModel(model=cfg, hardware=hardware)
        try:
            crossover = lm.crossover_sequence_length()
        except ValueError:
            crossover = None
        points.append(
            RetargetPoint(
                name=name,
                config=cfg,
                latency_ms=lm.latency_ms(s, architecture),
                gflops=transformer_flops(s, cfg) / 1e9,
                weight_mb=weight_bytes(cfg) / 1e6,
                crossover_s=crossover,
            )
        )
    return points
