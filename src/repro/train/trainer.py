"""Trainer for the toy WER study (Section 5.1.1 substitution).

Trains a scaled-down Transformer on the synthetic grapheme-acoustics
corpus with teacher forcing + label-smoothed CE, then evaluates WER
with the same greedy decoding and scoring used by the full pipeline.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import numpy as np

from repro.asr.dataset import Utterance
from repro.decoding.greedy import greedy_decode
from repro.decoding.vocab import CharVocabulary
from repro.decoding.wer import corpus_word_error_rate
from repro.train.autograd import no_grad
from repro.train.layers import TrainableTransformer
from repro.train.losses import label_smoothing_cross_entropy
from repro.train.optim import Adam

#: Maps a waveform to an (s, d_model) feature matrix.
FeatureFn = Callable[[np.ndarray], np.ndarray]


@dataclass(frozen=True)
class TrainingConfig:
    """Hyper-parameters of the toy training run."""

    epochs: int = 30
    learning_rate: float = 2e-3
    #: Per-epoch multiplicative learning-rate decay (1.0 = constant).
    lr_decay: float = 1.0
    label_smoothing: float = 0.05
    grad_clip: float = 5.0
    shuffle_seed: int = 0
    log_every: int = 0  # 0 disables progress printing
    #: Stop when the mean epoch loss fails to improve by at least
    #: ``early_stop_delta`` for this many consecutive epochs (0 = off).
    early_stop_patience: int = 0
    early_stop_delta: float = 1e-4

    def __post_init__(self) -> None:
        if self.epochs < 1:
            raise ValueError("epochs must be >= 1")
        if self.learning_rate <= 0:
            raise ValueError("learning_rate must be positive")
        if not 0 < self.lr_decay <= 1:
            raise ValueError("lr_decay must be in (0, 1]")
        if not 0 <= self.label_smoothing < 1:
            raise ValueError("label_smoothing must be in [0, 1)")
        if self.early_stop_patience < 0:
            raise ValueError("early_stop_patience must be >= 0")
        if self.early_stop_delta < 0:
            raise ValueError("early_stop_delta must be >= 0")


@dataclass(frozen=True)
class PreparedExample:
    """Features plus teacher-forcing input/target token streams."""

    features: np.ndarray
    decoder_input: np.ndarray  # [sos, c1, ..., cn]
    targets: np.ndarray  # [c1, ..., cn, eos]
    transcript: str


class Trainer:
    """Teacher-forced training + greedy-decode evaluation."""

    def __init__(
        self,
        model: TrainableTransformer,
        vocab: CharVocabulary,
        feature_fn: FeatureFn,
        config: TrainingConfig | None = None,
    ) -> None:
        if len(vocab) != model.config.vocab_size:
            raise ValueError(
                f"vocab size {len(vocab)} != model vocab_size "
                f"{model.config.vocab_size}"
            )
        self.model = model
        self.vocab = vocab
        self.feature_fn = feature_fn
        self.config = config or TrainingConfig()
        self.optimizer = Adam(
            model.parameters(),
            lr=self.config.learning_rate,
            grad_clip=self.config.grad_clip,
        )

    # ------------------------------------------------------------ data
    def prepare(self, utterance: Utterance) -> PreparedExample:
        features = self.feature_fn(utterance.waveform)
        char_ids = self.vocab.encode(utterance.transcript)
        decoder_input = np.concatenate(([self.vocab.sos_id], char_ids))
        targets = np.concatenate((char_ids, [self.vocab.eos_id]))
        return PreparedExample(
            features=features,
            decoder_input=decoder_input.astype(np.int64),
            targets=targets.astype(np.int64),
            transcript=utterance.transcript,
        )

    # ------------------------------------------------------- training
    def train_step(self, example: PreparedExample) -> float:
        """One gradient step on one utterance; returns the loss."""
        self.optimizer.zero_grad()
        logits = self.model.forward(example.features, example.decoder_input)
        loss = label_smoothing_cross_entropy(
            logits, example.targets, smoothing=self.config.label_smoothing
        )
        loss.backward()
        self.optimizer.step()
        return loss.item()

    def train(self, utterances: list[Utterance]) -> list[float]:
        """Full training run; returns per-epoch mean losses."""
        if not utterances:
            raise ValueError("need at least one training utterance")
        examples = [self.prepare(u) for u in utterances]
        rng = np.random.default_rng(self.config.shuffle_seed)
        history: list[float] = []
        base_lr = self.config.learning_rate
        best_loss = float("inf")
        stale_epochs = 0
        for epoch in range(self.config.epochs):
            self.optimizer.lr = base_lr * self.config.lr_decay**epoch
            order = rng.permutation(len(examples))
            losses = [self.train_step(examples[i]) for i in order]
            mean_loss = float(np.mean(losses))
            history.append(mean_loss)
            if self.config.log_every and (epoch + 1) % self.config.log_every == 0:
                print(f"epoch {epoch + 1:3d}: loss {mean_loss:.4f}")
            if self.config.early_stop_patience:
                if mean_loss < best_loss - self.config.early_stop_delta:
                    best_loss = mean_loss
                    stale_epochs = 0
                else:
                    stale_epochs += 1
                    if stale_epochs >= self.config.early_stop_patience:
                        break
        return history

    # ------------------------------------------------------ evaluation
    def greedy_transcribe(self, features: np.ndarray, max_len: int = 64) -> str:
        """Greedy autoregressive decode with the trainable model."""
        with no_grad():
            memory = self.model.encode(features)

            def step(tokens: np.ndarray) -> np.ndarray:
                with no_grad():
                    hidden = self.model.decode(tokens, memory)
                    logits = (
                        hidden[-1] @ self.model.output_w + self.model.output_b
                    )
                    return logits.log_softmax(axis=-1).data

            ids = greedy_decode(
                step, self.vocab.sos_id, self.vocab.eos_id, max_len=max_len
            )
        return self.vocab.decode(ids)

    def evaluate_wer(self, utterances: list[Utterance]) -> float:
        """Corpus WER of greedy transcriptions against the references."""
        if not utterances:
            raise ValueError("need at least one evaluation utterance")
        refs, hyps = [], []
        for utt in utterances:
            features = self.feature_fn(utt.waveform)
            refs.append(utt.transcript)
            hyps.append(self.greedy_transcribe(features))
        return corpus_word_error_rate(refs, hyps)
