"""Training losses: label-smoothed cross entropy (the ESPnet default
for attention-based E2E ASR)."""

from __future__ import annotations

import numpy as np

from repro.train.autograd import Tensor


def label_smoothing_cross_entropy(
    logits: Tensor,
    targets: np.ndarray,
    smoothing: float = 0.1,
) -> Tensor:
    """Mean label-smoothed CE over a (t, vocab) logits matrix.

    With smoothing ``e`` the target distribution puts ``1 - e`` on the
    gold label and ``e / (V - 1)`` on everything else.
    """
    if not 0.0 <= smoothing < 1.0:
        raise ValueError("smoothing must be in [0, 1)")
    targets = np.asarray(targets, dtype=np.int64)
    if targets.ndim != 1:
        raise ValueError("targets must be 1-D")
    t, vocab = logits.shape
    if targets.shape[0] != t:
        raise ValueError(
            f"targets length {targets.shape[0]} != logits rows {t}"
        )
    if targets.size and (targets.min() < 0 or targets.max() >= vocab):
        raise ValueError("target index out of range")

    log_probs = logits.log_softmax(axis=-1)
    one_hot = np.zeros((t, vocab))
    one_hot[np.arange(t), targets] = 1.0
    if smoothing:
        smooth = np.full((t, vocab), smoothing / (vocab - 1))
        smooth[np.arange(t), targets] = 1.0 - smoothing
        target_dist = smooth
    else:
        target_dist = one_hot
    return -(log_probs * Tensor(target_dist)).sum() * (1.0 / t)


def cross_entropy(logits: Tensor, targets: np.ndarray) -> Tensor:
    """Plain mean cross entropy."""
    return label_smoothing_cross_entropy(logits, targets, smoothing=0.0)
