"""Optimizers for the autograd engine."""

from __future__ import annotations

import numpy as np

from repro.train.autograd import Tensor


class Adam:
    """Adam with optional gradient clipping (Kingma & Ba, 2015)."""

    def __init__(
        self,
        params: list[Tensor],
        lr: float = 1e-3,
        betas: tuple[float, float] = (0.9, 0.999),
        eps: float = 1e-8,
        grad_clip: float | None = 5.0,
    ) -> None:
        if lr <= 0:
            raise ValueError("lr must be positive")
        if not (0 <= betas[0] < 1 and 0 <= betas[1] < 1):
            raise ValueError("betas must lie in [0, 1)")
        if grad_clip is not None and grad_clip <= 0:
            raise ValueError("grad_clip must be positive when set")
        if not params:
            raise ValueError("optimizer needs at least one parameter")
        self.params = params
        self.lr = lr
        self.betas = betas
        self.eps = eps
        self.grad_clip = grad_clip
        self._m = [np.zeros_like(p.data) for p in params]
        self._v = [np.zeros_like(p.data) for p in params]
        self._t = 0

    def zero_grad(self) -> None:
        for p in self.params:
            p.zero_grad()

    def _global_norm(self) -> float:
        total = 0.0
        for p in self.params:
            if p.grad is not None:
                total += float(np.sum(p.grad**2))
        return float(np.sqrt(total))

    def step(self) -> None:
        """Apply one update using the accumulated gradients."""
        self._t += 1
        b1, b2 = self.betas
        scale = 1.0
        if self.grad_clip is not None:
            norm = self._global_norm()
            if norm > self.grad_clip:
                scale = self.grad_clip / (norm + 1e-12)
        bias1 = 1.0 - b1**self._t
        bias2 = 1.0 - b2**self._t
        for p, m, v in zip(self.params, self._m, self._v):
            if p.grad is None:
                continue
            g = p.grad * scale
            m *= b1
            m += (1 - b1) * g
            v *= b2
            v += (1 - b2) * g * g
            m_hat = m / bias1
            v_hat = v / bias2
            p.data -= self.lr * m_hat / (np.sqrt(v_hat) + self.eps)
