"""A minimal reverse-mode automatic-differentiation engine on NumPy.

Supports exactly the operations the Transformer needs: broadcasting
arithmetic, matmul, transpose/reshape/slicing, index select (embedding
lookup), concatenate, reductions, exp/log/sqrt/tanh/relu, masked fill,
softmax/log-softmax.  Gradients flow through a topologically sorted
tape; broadcasting is undone by summing over the broadcast axes.
"""

from __future__ import annotations

import contextlib
from typing import Callable, Iterable

import numpy as np

_GRAD_ENABLED = True


@contextlib.contextmanager
def no_grad():
    """Disable graph construction inside the context (inference mode)."""
    global _GRAD_ENABLED
    previous = _GRAD_ENABLED
    _GRAD_ENABLED = False
    try:
        yield
    finally:
        _GRAD_ENABLED = previous


def _unbroadcast(grad: np.ndarray, shape: tuple[int, ...]) -> np.ndarray:
    """Reduce a gradient back to ``shape`` after NumPy broadcasting."""
    if grad.shape == shape:
        return grad
    # Sum away leading axes added by broadcasting.
    while grad.ndim > len(shape):
        grad = grad.sum(axis=0)
    # Sum over axes that were size-1 in the original.
    for axis, size in enumerate(shape):
        if size == 1 and grad.shape[axis] != 1:
            grad = grad.sum(axis=axis, keepdims=True)
    return grad


class Tensor:
    """An ndarray node in the autograd graph."""

    __slots__ = ("data", "grad", "requires_grad", "_backward", "_parents")
    __array_priority__ = 100  # prefer Tensor.__r*__ over ndarray ops

    def __init__(
        self,
        data: np.ndarray | float | int | list,
        requires_grad: bool = False,
    ) -> None:
        self.data = np.asarray(data, dtype=np.float64)
        self.requires_grad = bool(requires_grad) and _GRAD_ENABLED
        self.grad: np.ndarray | None = None
        self._backward: Callable[[np.ndarray], None] | None = None
        self._parents: tuple[Tensor, ...] = ()

    # ----------------------------------------------------------- infra
    @property
    def shape(self) -> tuple[int, ...]:
        return self.data.shape

    @property
    def ndim(self) -> int:
        return self.data.ndim

    def __repr__(self) -> str:
        return f"Tensor(shape={self.shape}, requires_grad={self.requires_grad})"

    def item(self) -> float:
        return float(self.data)

    def zero_grad(self) -> None:
        self.grad = None

    @staticmethod
    def _lift(value: "Tensor | np.ndarray | float | int") -> "Tensor":
        return value if isinstance(value, Tensor) else Tensor(value)

    @staticmethod
    def _make(
        data: np.ndarray,
        parents: Iterable["Tensor"],
        backward: Callable[[np.ndarray], None],
    ) -> "Tensor":
        parents = tuple(parents)
        out = Tensor(data)
        if _GRAD_ENABLED and any(p.requires_grad for p in parents):
            out.requires_grad = True
            out._parents = parents
            out._backward = backward
        return out

    def _accumulate(self, grad: np.ndarray) -> None:
        grad = _unbroadcast(np.asarray(grad, dtype=np.float64), self.data.shape)
        self.grad = grad if self.grad is None else self.grad + grad

    def backward(self, grad: np.ndarray | None = None) -> None:
        """Backpropagate from this node through the whole graph."""
        if not self.requires_grad:
            raise RuntimeError("called backward on a non-differentiable tensor")
        if grad is None:
            if self.data.size != 1:
                raise RuntimeError("backward() without grad needs a scalar")
            grad = np.ones_like(self.data)
        # Topological order over the tape.
        order: list[Tensor] = []
        seen: set[int] = set()
        stack: list[tuple[Tensor, bool]] = [(self, False)]
        while stack:
            node, processed = stack.pop()
            if processed:
                order.append(node)
                continue
            if id(node) in seen:
                continue
            seen.add(id(node))
            stack.append((node, True))
            for parent in node._parents:
                if parent.requires_grad and id(parent) not in seen:
                    stack.append((parent, False))
        self._accumulate(grad)
        for node in reversed(order):
            if node._backward is not None and node.grad is not None:
                node._backward(node.grad)

    # ------------------------------------------------------ arithmetic
    def __add__(self, other):
        other = self._lift(other)

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad)
            if other.requires_grad:
                other._accumulate(grad)

        return self._make(self.data + other.data, (self, other), backward)

    __radd__ = __add__

    def __neg__(self):
        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(-grad)

        return self._make(-self.data, (self,), backward)

    def __sub__(self, other):
        return self + (-self._lift(other))

    def __rsub__(self, other):
        return self._lift(other) + (-self)

    def __mul__(self, other):
        other = self._lift(other)

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad * other.data)
            if other.requires_grad:
                other._accumulate(grad * self.data)

        return self._make(self.data * other.data, (self, other), backward)

    __rmul__ = __mul__

    def __truediv__(self, other):
        other = self._lift(other)

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad / other.data)
            if other.requires_grad:
                other._accumulate(-grad * self.data / (other.data**2))

        return self._make(self.data / other.data, (self, other), backward)

    def __rtruediv__(self, other):
        return self._lift(other) / self

    def __pow__(self, exponent: float):
        if not isinstance(exponent, (int, float)):
            raise TypeError("only scalar exponents are supported")

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad * exponent * self.data ** (exponent - 1))

        return self._make(self.data**exponent, (self,), backward)

    def __matmul__(self, other):
        other = self._lift(other)

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad @ np.swapaxes(other.data, -1, -2))
            if other.requires_grad:
                other._accumulate(np.swapaxes(self.data, -1, -2) @ grad)

        return self._make(self.data @ other.data, (self, other), backward)

    # ------------------------------------------------------ structure
    @property
    def T(self) -> "Tensor":
        return self.transpose()

    def transpose(self, axes: tuple[int, ...] | None = None) -> "Tensor":
        if axes is None:
            axes = tuple(reversed(range(self.ndim)))
        inverse = np.argsort(axes)

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad.transpose(inverse))

        return self._make(self.data.transpose(axes), (self,), backward)

    def reshape(self, *shape: int) -> "Tensor":
        original = self.data.shape

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad.reshape(original))

        return self._make(self.data.reshape(*shape), (self,), backward)

    def __getitem__(self, key) -> "Tensor":
        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                full = np.zeros_like(self.data)
                np.add.at(full, key, grad)
                self._accumulate(full)

        return self._make(self.data[key], (self,), backward)

    def index_select(self, indices: np.ndarray) -> "Tensor":
        """Row lookup (embedding): out[i] = self[indices[i]]."""
        indices = np.asarray(indices, dtype=np.int64)
        if indices.ndim != 1:
            raise ValueError("indices must be 1-D")

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                full = np.zeros_like(self.data)
                np.add.at(full, indices, grad)
                self._accumulate(full)

        return self._make(self.data[indices], (self,), backward)

    @staticmethod
    def concatenate(tensors: list["Tensor"], axis: int = -1) -> "Tensor":
        if not tensors:
            raise ValueError("need at least one tensor")
        sizes = [t.data.shape[axis] for t in tensors]
        offsets = np.cumsum([0] + sizes)

        def backward(grad: np.ndarray) -> None:
            for t, start, end in zip(tensors, offsets[:-1], offsets[1:]):
                if t.requires_grad:
                    sl = [slice(None)] * grad.ndim
                    sl[axis] = slice(start, end)
                    t._accumulate(grad[tuple(sl)])

        data = np.concatenate([t.data for t in tensors], axis=axis)
        return Tensor._make(data, tensors, backward)

    # ------------------------------------------------------ reductions
    def sum(self, axis: int | tuple[int, ...] | None = None, keepdims: bool = False):
        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                g = grad
                if axis is not None and not keepdims:
                    g = np.expand_dims(g, axis)
                self._accumulate(np.broadcast_to(g, self.data.shape))

        return self._make(
            self.data.sum(axis=axis, keepdims=keepdims), (self,), backward
        )

    def mean(self, axis: int | None = None, keepdims: bool = False):
        count = self.data.size if axis is None else self.data.shape[axis]
        return self.sum(axis=axis, keepdims=keepdims) * (1.0 / count)

    # ---------------------------------------------------- elementwise
    def exp(self) -> "Tensor":
        out_data = np.exp(self.data)

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad * out_data)

        return self._make(out_data, (self,), backward)

    def log(self) -> "Tensor":
        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad / self.data)

        return self._make(np.log(self.data), (self,), backward)

    def sqrt(self) -> "Tensor":
        out_data = np.sqrt(self.data)

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad * 0.5 / out_data)

        return self._make(out_data, (self,), backward)

    def tanh(self) -> "Tensor":
        out_data = np.tanh(self.data)

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad * (1.0 - out_data**2))

        return self._make(out_data, (self,), backward)

    def relu(self) -> "Tensor":
        mask = self.data > 0

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad * mask)

        return self._make(self.data * mask, (self,), backward)

    def masked_fill(self, mask: np.ndarray, value: float) -> "Tensor":
        """Set entries where ``mask`` is False to ``value`` (no gradient
        flows into the filled entries)."""
        keep = np.broadcast_to(np.asarray(mask, dtype=bool), self.data.shape)

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad * keep)

        return self._make(np.where(keep, self.data, value), (self,), backward)

    # --------------------------------------------------------- softmax
    def log_softmax(self, axis: int = -1) -> "Tensor":
        shifted = self.data - self.data.max(axis=axis, keepdims=True)
        log_z = np.log(np.exp(shifted).sum(axis=axis, keepdims=True))
        out_data = shifted - log_z
        softmax = np.exp(out_data)

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(
                    grad - softmax * grad.sum(axis=axis, keepdims=True)
                )

        return self._make(out_data, (self,), backward)

    def softmax(self, axis: int = -1) -> "Tensor":
        shifted = self.data - self.data.max(axis=axis, keepdims=True)
        exp = np.exp(shifted)
        out_data = exp / exp.sum(axis=axis, keepdims=True)

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                dot = (grad * out_data).sum(axis=axis, keepdims=True)
                self._accumulate(out_data * (grad - dot))

        return self._make(out_data, (self,), backward)


def parameter(shape: tuple[int, ...], rng: np.random.Generator, scale: float) -> Tensor:
    """A trainable tensor with Gaussian init."""
    return Tensor(scale * rng.standard_normal(shape), requires_grad=True)


def zeros_parameter(shape: tuple[int, ...]) -> Tensor:
    return Tensor(np.zeros(shape), requires_grad=True)


def ones_parameter(shape: tuple[int, ...]) -> Tensor:
    return Tensor(np.ones(shape), requires_grad=True)
