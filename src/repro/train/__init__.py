"""Training substrate: a from-scratch reverse-mode autograd engine on
NumPy, a trainable Transformer built on it, Adam, and a trainer loop.

The paper evaluates an ESPnet-trained LibriSpeech model (WER ~9.5%).
Training that model is out of scope on a CPU, so the WER experiment is
reproduced *in spirit*: a scaled-down Transformer with the identical
architecture is trained here on the synthetic grapheme-acoustics corpus
of :mod:`repro.asr.dataset` and evaluated with the same decoding + WER
machinery the full-size system uses (see DESIGN.md, substitutions).
"""

from repro.train.autograd import Tensor, no_grad
from repro.train.layers import TrainableTransformer
from repro.train.losses import label_smoothing_cross_entropy
from repro.train.optim import Adam
from repro.train.trainer import Trainer, TrainingConfig

__all__ = [
    "Tensor",
    "no_grad",
    "TrainableTransformer",
    "label_smoothing_cross_entropy",
    "Adam",
    "Trainer",
    "TrainingConfig",
]
