"""Trainable Transformer built on the autograd engine.

Architecturally identical to the inference model in :mod:`repro.model`
(per-head Q/K/V projections, Add-Norm, ReLU FFN, look-ahead masking);
:meth:`TrainableTransformer.export_params` converts the trained weights
into a :class:`repro.model.params.TransformerParams`, so a model
trained here runs unchanged on both the reference engine and the
accelerator simulator.
"""

from __future__ import annotations

import numpy as np

from repro.config import ModelConfig
from repro.model.masks import NEG_INF, causal_mask
from repro.model.ops import MODEL_DTYPE
from repro.model.params import (
    AttentionParams,
    DecoderLayerParams,
    EncoderLayerParams,
    FeedForwardParams,
    LayerNormParams,
    TransformerParams,
)
from repro.train.autograd import (
    Tensor,
    ones_parameter,
    parameter,
    zeros_parameter,
)


class Module:
    """Minimal parameter-container base class."""

    def parameters(self) -> list[Tensor]:
        params: list[Tensor] = []
        for value in self.__dict__.values():
            if isinstance(value, Tensor) and value.requires_grad:
                params.append(value)
            elif isinstance(value, Module):
                params.extend(value.parameters())
            elif isinstance(value, (list, tuple)):
                for item in value:
                    if isinstance(item, Module):
                        params.extend(item.parameters())
        return params

    def zero_grad(self) -> None:
        for p in self.parameters():
            p.zero_grad()


class LayerNorm(Module):
    """Trainable layer normalization (Eq. 3.4)."""

    def __init__(self, dim: int, eps: float = 1e-12) -> None:
        self.weight = ones_parameter((dim,))
        self.bias = zeros_parameter((dim,))
        self.eps = eps

    def __call__(self, x: Tensor) -> Tensor:
        mu = x.mean(axis=-1, keepdims=True)
        centered = x - mu
        var = (centered * centered).mean(axis=-1, keepdims=True)
        normed = centered / (var + self.eps).sqrt()
        return normed * self.weight + self.bias

    def export(self) -> LayerNormParams:
        return LayerNormParams(
            weight=self.weight.data.astype(MODEL_DTYPE),
            bias=self.bias.data.astype(MODEL_DTYPE),
        )


class MultiHeadAttention(Module):
    """Per-head projected attention with the (h, d_model, d_k) layout."""

    def __init__(self, config: ModelConfig, rng: np.random.Generator) -> None:
        h, d, dk = config.num_heads, config.d_model, config.d_k
        scale = 1.0 / np.sqrt(d)
        self.num_heads = h
        self.d_k = dk
        self.wq = parameter((h, d, dk), rng, scale)
        self.bq = zeros_parameter((h, dk))
        self.wk = parameter((h, d, dk), rng, scale)
        self.bk = zeros_parameter((h, dk))
        self.wv = parameter((h, d, dk), rng, scale)
        self.bv = zeros_parameter((h, dk))
        self.wo = parameter((d, d), rng, scale)
        self.bo = zeros_parameter((d,))

    def __call__(
        self, x_q: Tensor, x_kv: Tensor, mask: np.ndarray | None = None
    ) -> Tensor:
        heads = []
        inv_sqrt_dk = 1.0 / np.sqrt(self.d_k)
        for h in range(self.num_heads):
            q = x_q @ self.wq[h] + self.bq[h]
            k = x_kv @ self.wk[h] + self.bk[h]
            v = x_kv @ self.wv[h] + self.bv[h]
            scores = (q @ k.T) * inv_sqrt_dk
            if mask is not None:
                scores = scores.masked_fill(mask, NEG_INF)
            heads.append(scores.softmax(axis=-1) @ v)
        concat = Tensor.concatenate(heads, axis=-1)
        return concat @ self.wo + self.bo

    def export(self) -> AttentionParams:
        to = lambda t: t.data.astype(MODEL_DTYPE)  # noqa: E731
        return AttentionParams(
            wq=to(self.wq), bq=to(self.bq),
            wk=to(self.wk), bk=to(self.bk),
            wv=to(self.wv), bv=to(self.bv),
            wo=to(self.wo), bo=to(self.bo),
        )


class FeedForward(Module):
    """ReLU FFN (Eq. 3.3)."""

    def __init__(self, config: ModelConfig, rng: np.random.Generator) -> None:
        d, f = config.d_model, config.d_ff
        self.w1 = parameter((d, f), rng, 1.0 / np.sqrt(d))
        self.b1 = zeros_parameter((f,))
        self.w2 = parameter((f, d), rng, 1.0 / np.sqrt(f))
        self.b2 = zeros_parameter((d,))

    def __call__(self, x: Tensor) -> Tensor:
        return (x @ self.w1 + self.b1).relu() @ self.w2 + self.b2

    def export(self) -> FeedForwardParams:
        to = lambda t: t.data.astype(MODEL_DTYPE)  # noqa: E731
        return FeedForwardParams(w1=to(self.w1), b1=to(self.b1), w2=to(self.w2), b2=to(self.b2))


class EncoderLayer(Module):
    def __init__(self, config: ModelConfig, rng: np.random.Generator) -> None:
        self.mha = MultiHeadAttention(config, rng)
        self.norm1 = LayerNorm(config.d_model)
        self.ffn = FeedForward(config, rng)
        self.norm2 = LayerNorm(config.d_model)

    def __call__(self, x: Tensor, mask: np.ndarray | None = None) -> Tensor:
        x = self.norm1(self.mha(x, x, mask=mask) + x)
        return self.norm2(self.ffn(x) + x)

    def export(self) -> EncoderLayerParams:
        return EncoderLayerParams(
            mha=self.mha.export(),
            norm1=self.norm1.export(),
            ffn=self.ffn.export(),
            norm2=self.norm2.export(),
        )


class DecoderLayer(Module):
    def __init__(self, config: ModelConfig, rng: np.random.Generator) -> None:
        self.self_mha = MultiHeadAttention(config, rng)
        self.norm1 = LayerNorm(config.d_model)
        self.cross_mha = MultiHeadAttention(config, rng)
        self.norm2 = LayerNorm(config.d_model)
        self.ffn = FeedForward(config, rng)
        self.norm3 = LayerNorm(config.d_model)

    def __call__(
        self,
        x: Tensor,
        memory: Tensor,
        self_mask: np.ndarray,
        memory_mask: np.ndarray | None = None,
    ) -> Tensor:
        x = self.norm1(self.self_mha(x, x, mask=self_mask) + x)
        x = self.norm2(self.cross_mha(x, memory, mask=memory_mask) + x)
        return self.norm3(self.ffn(x) + x)

    def export(self) -> DecoderLayerParams:
        return DecoderLayerParams(
            self_mha=self.self_mha.export(),
            norm1=self.norm1.export(),
            cross_mha=self.cross_mha.export(),
            norm2=self.norm2.export(),
            ffn=self.ffn.export(),
            norm3=self.norm3.export(),
        )


class TrainableTransformer(Module):
    """The full encoder-decoder with embedding and output projection.

    ``use_positional=True`` adds *learned* positional embeddings to the
    encoder and decoder inputs.  The paper's deployed model has no
    sinusoidal positional encoding — its 2D conv subsampling block
    injects position instead (Section 1.1); in the scaled-down training
    study, where that conv front-end is replaced by cheap pooling,
    learned positional embeddings are the equivalent substitute.  With
    ``use_positional=False`` the exported weights are drop-in
    compatible with the inference engine / accelerator.
    """

    def __init__(
        self,
        config: ModelConfig,
        seed: int = 0,
        use_positional: bool = False,
        max_positions: int = 256,
    ) -> None:
        rng = np.random.default_rng(seed)
        self.config = config
        self.use_positional = use_positional
        self.encoders = [EncoderLayer(config, rng) for _ in range(config.num_encoders)]
        self.decoders = [DecoderLayer(config, rng) for _ in range(config.num_decoders)]
        d = config.d_model
        self.embedding = parameter((config.vocab_size, d), rng, 1.0 / np.sqrt(d))
        self.input_proj = parameter((d, d), rng, 1.0 / np.sqrt(d))
        self.input_bias = zeros_parameter((d,))
        self.output_w = parameter((d, config.vocab_size), rng, 1.0 / np.sqrt(d))
        self.output_b = zeros_parameter((config.vocab_size,))
        if use_positional:
            if max_positions <= 0:
                raise ValueError("max_positions must be positive")
            self.enc_pos = parameter((max_positions, d), rng, 0.1)
            self.dec_pos = parameter((max_positions, d), rng, 0.1)

    def encode(self, features: np.ndarray) -> Tensor:
        x = Tensor(np.asarray(features, dtype=np.float64))
        x = x @ self.input_proj + self.input_bias
        if self.use_positional:
            x = x + self.enc_pos[: x.shape[0]]
        for layer in self.encoders:
            x = layer(x)
        return x

    def decode(self, tokens: np.ndarray, memory: Tensor) -> Tensor:
        tokens = np.asarray(tokens, dtype=np.int64)
        x = self.embedding.index_select(tokens) * np.sqrt(self.config.d_model)
        if self.use_positional:
            x = x + self.dec_pos[: tokens.shape[0]]
        mask = causal_mask(tokens.shape[0])
        for layer in self.decoders:
            x = layer(x, memory, self_mask=mask)
        return x

    def forward(self, features: np.ndarray, tokens: np.ndarray) -> Tensor:
        """Teacher-forced logits over the vocabulary at each position."""
        memory = self.encode(features)
        hidden = self.decode(tokens, memory)
        return hidden @ self.output_w + self.output_b

    def export_params(self) -> TransformerParams:
        """Freeze the trained weights into an inference parameter set.

        Note: the trainable model applies an extra input projection
        before the encoder stack; fold it into the features before
        feeding the exported model (see Trainer.project_features).
        """
        return TransformerParams(
            config=self.config,
            encoders=tuple(layer.export() for layer in self.encoders),
            decoders=tuple(layer.export() for layer in self.decoders),
            embedding=self.embedding.data.astype(MODEL_DTYPE),
            output_w=self.output_w.data.astype(MODEL_DTYPE),
            output_b=self.output_b.data.astype(MODEL_DTYPE),
        )

    def project_features(self, features: np.ndarray) -> np.ndarray:
        """Apply the input projection outside the graph (for export)."""
        f = np.asarray(features, dtype=np.float64)
        return (f @ self.input_proj.data + self.input_bias.data).astype(MODEL_DTYPE)
