"""Request arrival models for the serving simulator.

Three open-loop traffic shapes cover the load regimes a transcription
service sees:

* :class:`PoissonArrivals` — memoryless steady-state traffic; the
  M/·/1 baseline every queueing result is stated against.
* :class:`BurstyArrivals` — a two-state Markov-modulated Poisson
  process (quiet/burst), the "everyone hits enter at once" shape that
  stresses admission control far harder than its mean rate suggests.
* :class:`DiurnalArrivals` — a sinusoidally rate-modulated process
  (thinning construction) approximating the day/night cycle of a
  user-facing service, compressed to simulation scale.

All models draw from :class:`random.Random`, whose sequence is
guaranteed reproducible across Python versions and platforms — the
bench harness gates the serving scenario's cycle metrics exactly, so
the arrival trace must be bit-stable (NumPy generators make no such
cross-version promise).
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass

__all__ = [
    "ArrivalModel",
    "PoissonArrivals",
    "BurstyArrivals",
    "DiurnalArrivals",
    "make_arrival_model",
]


class ArrivalModel:
    """Base: a seeded generator of monotone arrival times (seconds)."""

    #: Mean offered load, requests/second (subclasses must set).
    rate_per_s: float

    def times(self, n: int) -> list[float]:
        """The first ``n`` arrival times, seconds from simulation start."""
        raise NotImplementedError

    def _check(self, n: int) -> None:
        if n < 0:
            raise ValueError("n must be non-negative")


@dataclass(frozen=True)
class PoissonArrivals(ArrivalModel):
    """Homogeneous Poisson process: i.i.d. exponential gaps."""

    rate_per_s: float
    seed: int = 0

    def __post_init__(self) -> None:
        if self.rate_per_s <= 0:
            raise ValueError("rate_per_s must be positive")

    def times(self, n: int) -> list[float]:
        self._check(n)
        rng = random.Random(self.seed)
        t = 0.0
        out: list[float] = []
        for _ in range(n):
            t += rng.expovariate(self.rate_per_s)
            out.append(t)
        return out


@dataclass(frozen=True)
class BurstyArrivals(ArrivalModel):
    """Two-state MMPP: quiet periods punctuated by high-rate bursts.

    ``rate_per_s`` is the *mean* rate; during a burst the instantaneous
    rate is ``burst_factor`` times the quiet rate.  ``burst_fraction``
    is the long-run fraction of time spent bursting, and
    ``mean_burst_s`` the expected burst dwell time.
    """

    rate_per_s: float
    burst_factor: float = 8.0
    burst_fraction: float = 0.2
    mean_burst_s: float = 2.0
    seed: int = 0

    def __post_init__(self) -> None:
        if self.rate_per_s <= 0:
            raise ValueError("rate_per_s must be positive")
        if self.burst_factor < 1:
            raise ValueError("burst_factor must be >= 1")
        if not 0 < self.burst_fraction < 1:
            raise ValueError("burst_fraction must be in (0, 1)")
        if self.mean_burst_s <= 0:
            raise ValueError("mean_burst_s must be positive")

    def times(self, n: int) -> list[float]:
        self._check(n)
        rng = random.Random(self.seed)
        # Solve the quiet rate so the time-weighted mean matches
        # rate_per_s: mean = q * (1 - f + f * factor).
        quiet_rate = self.rate_per_s / (
            1.0 - self.burst_fraction + self.burst_fraction * self.burst_factor
        )
        burst_rate = quiet_rate * self.burst_factor
        mean_quiet_s = self.mean_burst_s * (1 - self.burst_fraction) / self.burst_fraction
        t = 0.0
        bursting = False
        phase_end = rng.expovariate(1.0 / mean_quiet_s)
        out: list[float] = []
        while len(out) < n:
            rate = burst_rate if bursting else quiet_rate
            gap = rng.expovariate(rate)
            if t + gap >= phase_end:
                # Phase flips before the next arrival; restart the
                # (memoryless) arrival draw from the phase boundary.
                t = phase_end
                bursting = not bursting
                dwell = self.mean_burst_s if bursting else mean_quiet_s
                phase_end = t + rng.expovariate(1.0 / dwell)
                continue
            t += gap
            out.append(t)
        return out


@dataclass(frozen=True)
class DiurnalArrivals(ArrivalModel):
    """Sinusoidally modulated Poisson process via Lewis-Shedler thinning.

    Instantaneous rate ``rate_per_s * (1 + amplitude * sin(2*pi*t /
    period_s))``, so the mean over a full period is ``rate_per_s``.
    """

    rate_per_s: float
    amplitude: float = 0.6
    period_s: float = 60.0
    seed: int = 0

    def __post_init__(self) -> None:
        if self.rate_per_s <= 0:
            raise ValueError("rate_per_s must be positive")
        if not 0 <= self.amplitude < 1:
            raise ValueError("amplitude must be in [0, 1)")
        if self.period_s <= 0:
            raise ValueError("period_s must be positive")

    def rate_at(self, t: float) -> float:
        return self.rate_per_s * (
            1.0 + self.amplitude * math.sin(2.0 * math.pi * t / self.period_s)
        )

    def times(self, n: int) -> list[float]:
        self._check(n)
        rng = random.Random(self.seed)
        rate_max = self.rate_per_s * (1.0 + self.amplitude)
        t = 0.0
        out: list[float] = []
        while len(out) < n:
            t += rng.expovariate(rate_max)
            if rng.random() * rate_max <= self.rate_at(t):
                out.append(t)
        return out


def make_arrival_model(kind: str, rate_per_s: float, seed: int = 0) -> ArrivalModel:
    """Factory keyed by the CLI/scenario ``--arrival`` name."""
    if kind == "poisson":
        return PoissonArrivals(rate_per_s, seed=seed)
    if kind == "bursty":
        return BurstyArrivals(rate_per_s, seed=seed)
    if kind == "diurnal":
        return DiurnalArrivals(rate_per_s, seed=seed)
    raise ValueError(
        f"unknown arrival model '{kind}'; expected poisson, bursty or diurnal"
    )
