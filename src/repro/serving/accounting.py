"""Builds the per-request / per-tenant cost ledger of a serving run.

The scheduler already accounts device time exactly — every cycle of
``device_end_cycles`` is a prefill pass, a decode iteration, or an
idle jump to the next arrival — but only in aggregate.  This module
replays the vtrace event stream and assigns every one of those cycles
to the request that caused it:

* a **prefill** pass (and a re-prefill after preemption) is one
  request's alone — full cycles, full program HBM bytes;
* a **decode iteration** is split across its batch members by
  largest-remainder integer apportionment
  (:func:`repro.obs.costs.largest_remainder_split`), weighted by each
  member's stand-alone step cost — the same rule as
  :meth:`repro.hw.controller.LatencyModel.per_member_cycle_shares`,
  applied to the *scheduled* iteration total from the event, so shares
  sum exactly to what the device actually spent;
* **idle** cycles are attributable to no request and stay
  unattributed.

That makes the conservation invariant

    sum(per-request attributed cycles) + unattributed == makespan

hold in exact integer arithmetic (:meth:`repro.obs.costs.CostLedger.
verify_conservation` — checked eagerly at build time), including runs
with preemption and replay: replayed work is charged to the preempted
request as ``replay_cycles``, a *subset* of its attributed total, just
as the scheduler's ``replay_cycles_total`` is a subset of decode
cycles.

Beyond cycles, each request accumulates its HBM weight-stream bytes
(from the lowered program IR via :func:`repro.hw.program.
program_load_bytes`) and a KV-cache residency integral in byte-cycles
(modeled resident bytes held from admission to completion or
preemption, sized per :func:`repro.hw.kv_cache.modeled_resident_bytes`
at the rows banked by the end of each iteration).

:func:`estimate_capacity` turns the ledger into the capacity
extrapolation ROADMAP item 5 asks for: mean attributed cycles per
completed request -> utterances/s one card sustains -> cards needed
for a target offered load at a utilization cap.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.hw.controller import LatencyModel
from repro.hw.kv_cache import modeled_resident_bytes
from repro.hw.program import program_load_bytes
from repro.obs import metrics as obs_metrics
from repro.obs.costs import CostLedger, RequestCost, largest_remainder_split
from repro.obs.vtrace import VEvent, _sorted_events
from repro.serving.scheduler import ServingResult, meets_slo

__all__ = [
    "build_cost_ledger",
    "CapacityEstimate",
    "estimate_capacity",
    "record_cost_metrics",
    "render_cost_dashboard",
]


def build_cost_ledger(
    result: ServingResult,
    events: list[VEvent],
    latency_model: LatencyModel | None = None,
) -> CostLedger:
    """Attribute every device cycle, HBM byte and KV byte-cycle of a
    serving run to the request (hence tenant) that caused it.

    ``events`` must be the :class:`~repro.obs.vtrace.VTraceRecorder`
    stream of the *same* run as ``result`` (schema >= 2, whose
    ``decode_iter`` events carry batch membership).  The returned
    ledger has already passed :meth:`~repro.obs.costs.CostLedger.
    verify_conservation` plus cross-checks against the scheduler's own
    prefill/decode totals, so a mis-split cannot escape silently.
    """
    if not events:
        raise ValueError(
            "build_cost_ledger needs the vtrace event stream; run the "
            "scheduler with a VTraceRecorder installed"
        )
    cfg = result.config
    lm = latency_model or LatencyModel()
    s, arch = cfg.s, cfg.architecture

    costs: dict[int, RequestCost] = {
        r.request.request_id: RequestCost(
            request_id=r.request.request_id, tenant=r.request.tenant
        )
        for r in result.records
    }

    # Per-prefix-length caches: the weight basis (stand-alone step
    # cycles), the step program's HBM bytes, and the modeled resident
    # bytes — each computed once per distinct t.
    step_cycles: dict[int, int] = {}
    step_bytes: dict[int, int] = {}
    resident: dict[int, int] = {}
    prefill_bytes = program_load_bytes(lm.full_pass_program(s))

    def weight_of(t: int) -> int:
        c = step_cycles.get(t)
        if c is None:
            c = step_cycles[t] = lm.decode_step_cycles(t, s, arch)
        return c

    def bytes_of(t: int) -> int:
        b = step_bytes.get(t)
        if b is None:
            b = step_bytes[t] = program_load_bytes(lm.decode_step_program(t, s))
        return b

    def resident_of(t: int) -> int:
        b = resident.get(t)
        if b is None:
            b = resident[t] = modeled_resident_bytes(lm.model, s, t)
        return b

    # Sweep state for the KV residency integral: requests holding a
    # cache right now -> rows banked (t).  A request opens at admission
    # (its reservation is taken and the cross-attention K/V will land),
    # grows by one row per iteration, and closes at completion or
    # preemption (rewind evicts the rows).
    holding: dict[int, int] = {}
    sweep_cycle = 0
    # The decode iteration just processed, for associating the replay
    # events that follow it at the same cycle with their shares.
    last_iter: tuple[int, dict[int, int]] | None = None

    def charge_residency(until: int) -> None:
        nonlocal sweep_cycle
        span = until - sweep_cycle
        if span > 0:
            for rid, t in holding.items():
                costs[rid].kv_byte_cycles += resident_of(t) * span
        sweep_cycle = max(sweep_cycle, until)

    for ev in _sorted_events(events):
        charge_residency(ev.cycle)
        rid = ev.request_id
        if ev.kind == "queue_wait":
            costs[rid].queue_cycles += int(ev.attrs["wait_cycles"])
        elif ev.kind == "admit":
            holding[rid] = 0
        elif ev.kind == "prefill_start":
            cycles = int(ev.attrs["cycles"])
            costs[rid].prefill_cycles += cycles
            costs[rid].hbm_load_bytes += prefill_bytes
            if ev.attrs.get("replay"):
                costs[rid].replay_cycles += cycles
        elif ev.kind == "decode_iter":
            rids = ev.attrs.get("request_ids")
            if rids is None:
                raise ValueError(
                    "decode_iter event lacks request_ids (event schema "
                    "< 2); re-run the scheduler to produce an "
                    "attributable stream"
                )
            lengths = [int(t) for t in ev.attrs["prefix_lengths"]]
            cycles = int(ev.attrs["cycles"])
            weights = [weight_of(t) for t in lengths]
            shares = largest_remainder_split(cycles, weights)
            if cfg.share_weights:
                # The panels streamed once for the whole batch (the
                # iteration's loads are member 0's chain); apportion
                # those bytes by the same weight basis as the cycles.
                byte_shares = largest_remainder_split(
                    bytes_of(lengths[0]), weights
                )
            else:
                byte_shares = [bytes_of(t) for t in lengths]
            iter_shares: dict[int, int] = {}
            for member, t, share, bshare in zip(
                rids, lengths, shares, byte_shares
            ):
                costs[member].decode_cycles += share
                costs[member].hbm_load_bytes += bshare
                iter_shares[member] = share
                holding[member] = t
            last_iter = (ev.cycle, iter_shares)
        elif ev.kind == "replay":
            if last_iter is not None and last_iter[0] == ev.cycle:
                costs[rid].replay_cycles += last_iter[1].get(rid, 0)
        elif ev.kind == "preempt":
            costs[rid].preemptions += 1
            holding.pop(rid, None)
        elif ev.kind == "complete":
            holding.pop(rid, None)
            rc = costs[rid]
            rc.completed = True
            rc.e2e_ms = float(ev.attrs["e2e_ms"])
            rc.good = meets_slo(rc.e2e_ms, cfg.slo_ms)
        elif ev.kind == "reject":
            costs[rid].rejected = True
    charge_residency(result.device_end_cycles)

    ledger = CostLedger(
        requests=[costs[rid] for rid in sorted(costs)],
        makespan_cycles=result.device_end_cycles,
        unattributed_cycles=result.idle_cycles_total,
        clock_hz=result.clock_hz,
        metadata={
            "architecture": cfg.architecture,
            "s": cfg.s,
            "max_batch": cfg.max_batch,
            "share_weights": cfg.share_weights,
            "slo_ms": cfg.slo_ms,
        },
    )
    # Cross-check against the scheduler's own aggregate account before
    # the conservation identity: a mis-split that happened to cancel
    # out between phases would still be caught here.
    totals = ledger.totals()
    if totals["prefill_cycles"] != result.prefill_cycles_total:
        raise ValueError(
            f"prefill attribution drifted: ledger "
            f"{totals['prefill_cycles']} != scheduler "
            f"{result.prefill_cycles_total}"
        )
    if totals["decode_cycles"] != result.decode_cycles_total:
        raise ValueError(
            f"decode attribution drifted: ledger "
            f"{totals['decode_cycles']} != scheduler "
            f"{result.decode_cycles_total}"
        )
    ledger.verify_conservation()
    return ledger


# -------------------------------------------------- capacity extrapolation
@dataclass(frozen=True)
class CapacityEstimate:
    """Cycles/request -> utterances/s/card -> cards for a target load.

    The seed of ROADMAP item 5: a deliberately simple steady-state
    model (mean attributed cycles per completed request, one card =
    one modeled accelerator at its fabric clock) whose inputs are the
    exactly-conserved ledger totals rather than wall-clock guesses.
    """

    #: Mean attributed device cycles per completed request (all
    #: attributed work divided by completions, so preemption overhead
    #: and abandoned work are charged, not dropped).
    cycles_per_request: float
    #: Steady-state completions one card sustains at 100% device time.
    utterances_per_s_per_card: float
    target_rps: float
    #: Fraction of a card the plan may actually load (headroom for
    #: queueing transients keeps the SLO attainable at the knee).
    utilization_cap: float
    cards_needed: int
    cards_at_full_utilization: int


def estimate_capacity(
    ledger: CostLedger,
    target_rps: float,
    utilization_cap: float = 0.7,
) -> CapacityEstimate:
    """Extrapolate fleet size from the ledger's exact per-request costs."""
    if target_rps <= 0:
        raise ValueError("target_rps must be positive")
    if not 0 < utilization_cap <= 1:
        raise ValueError("utilization_cap must be in (0, 1]")
    completed = sum(1 for rc in ledger.requests if rc.completed)
    if completed == 0:
        raise ValueError("capacity extrapolation needs completed requests")
    cycles_per_request = ledger.attributed_cycles / completed
    per_card = ledger.clock_hz / cycles_per_request
    return CapacityEstimate(
        cycles_per_request=cycles_per_request,
        utterances_per_s_per_card=per_card,
        target_rps=float(target_rps),
        utilization_cap=float(utilization_cap),
        cards_needed=math.ceil(target_rps / (utilization_cap * per_card)),
        cards_at_full_utilization=math.ceil(target_rps / per_card),
    )


# ----------------------------------------------------------- metrics
def record_cost_metrics(ledger: CostLedger) -> None:
    """Publish the ledger as the ``repro.serving.cost.*`` metric
    family (per-tenant series labeled ``tenant``).  A no-op unless
    telemetry is enabled, like every other instrumented layer."""
    if not obs_metrics.enabled():
        return
    reg = obs_metrics.registry()
    reg.counter("repro.serving.cost.unattributed_cycles").inc(
        ledger.unattributed_cycles
    )
    reg.gauge("repro.serving.cost.jain_index").set(ledger.jain_fairness())
    for tc in ledger.per_tenant():
        label = str(tc.tenant)
        reg.counter(
            "repro.serving.cost.attributed_cycles", tenant=label
        ).inc(tc.attributed_cycles)
        reg.counter("repro.serving.cost.hbm_bytes", tenant=label).inc(
            tc.hbm_load_bytes
        )
        reg.counter("repro.serving.cost.kv_byte_cycles", tenant=label).inc(
            tc.kv_byte_cycles
        )
        reg.counter("repro.serving.cost.requests", tenant=label).inc(
            tc.requests
        )


# --------------------------------------------------------- dashboard
def render_cost_dashboard(
    ledger: CostLedger,
    capacity: CapacityEstimate | None = None,
    by_tenant: bool = False,
) -> str:
    """Human-readable cost report: conserved totals, optional
    per-tenant breakdown with fairness readouts, and the capacity
    extrapolation."""
    totals = ledger.totals()
    makespan = totals["makespan_cycles"]
    util = totals["attributed_cycles"] / makespan if makespan else 0.0
    lines = [
        "cost attribution (exact integer conservation)",
        f"  makespan       {makespan:>14,} cycles",
        f"  attributed     {totals['attributed_cycles']:>14,} cycles "
        f"({util:.1%} of device time)",
        f"    prefill      {totals['prefill_cycles']:>14,} cycles",
        f"    decode       {totals['decode_cycles']:>14,} cycles",
        f"    replay tax   {totals['replay_cycles']:>14,} cycles (subset)",
        f"  unattributed   {totals['unattributed_cycles']:>14,} cycles (idle)",
        f"  hbm streamed   {totals['hbm_load_bytes']:>14,} bytes",
        f"  kv residency   {totals['kv_byte_cycles']:>14,} byte-cycles",
        f"  queue waiting  {totals['queue_cycles']:>14,} cycles (overlapped)",
    ]
    tenants = ledger.per_tenant()
    if by_tenant or len(tenants) > 1:
        lines.append("")
        lines.append(
            "  tenant  requests  done  good   cycles           hbm bytes"
            "        kv byte-cycles   cycle share"
        )
        attributed = totals["attributed_cycles"]
        for tc in tenants:
            share = tc.attributed_cycles / attributed if attributed else 0.0
            lines.append(
                f"  {tc.tenant:>6}  {tc.requests:>8}  {tc.completed:>4}  "
                f"{tc.good:>4}   {tc.attributed_cycles:>14,}  "
                f"{tc.hbm_load_bytes:>14,}  {tc.kv_byte_cycles:>20,}   "
                f"{share:>6.1%}"
            )
        lines.append(
            f"  jain fairness index (cycles): {ledger.jain_fairness():.4f}"
        )
        for tenant, dom in sorted(ledger.dominant_resource_shares().items()):
            lines.append(
                f"  tenant {tenant} dominant resource: {dom['resource']} "
                f"({dom['share']:.1%})"
            )
    if capacity is not None:
        lines += [
            "",
            "capacity extrapolation",
            f"  cycles/request          {capacity.cycles_per_request:>14,.0f}",
            f"  utterances/s per card   "
            f"{capacity.utterances_per_s_per_card:>14.2f}",
            f"  target load             {capacity.target_rps:>14.2f} req/s",
            f"  cards @ {capacity.utilization_cap:.0%} utilization "
            f"  {capacity.cards_needed:>10}",
            f"  cards @ 100% (no headroom) {capacity.cards_at_full_utilization:>7}",
        ]
    return "\n".join(lines)
