"""Multi-tenant serving simulator over the modeled accelerator.

Virtual-time, request-level scheduling of the transformer ASR
accelerator: open-loop arrivals (:mod:`repro.serving.arrival`),
continuous batching with cache-pressure admission control and priority
preemption (:mod:`repro.serving.scheduler`), latency-vs-load sweeps
with saturation attribution (:mod:`repro.serving.analysis`), and
declarative latency SLOs with burn-rate alerting and per-violation
drill-down (:mod:`repro.serving.slo`), and exact per-request /
per-tenant cost attribution with capacity extrapolation
(:mod:`repro.serving.accounting`).
"""

from repro.serving.accounting import (
    CapacityEstimate,
    build_cost_ledger,
    estimate_capacity,
    record_cost_metrics,
    render_cost_dashboard,
)
from repro.serving.arrival import (
    ArrivalModel,
    BurstyArrivals,
    DiurnalArrivals,
    PoissonArrivals,
    make_arrival_model,
)
from repro.serving.analysis import (
    LoadPoint,
    ServingSweep,
    SweepDelta,
    attribute_saturation,
    diff_sweeps,
    find_saturation,
    render_sweep,
    render_sweep_delta,
    sweep_offered_load,
)
from repro.serving.request import (
    RequestRecord,
    RequestState,
    UtteranceRequest,
    synthesize_requests,
)
from repro.serving.scheduler import (
    ContinuousBatchingScheduler,
    FunctionalExecutor,
    ModeledExecutor,
    ServingConfig,
    ServingResult,
    meets_slo,
    simulate,
)
from repro.serving.slo import (
    SloAlert,
    SloObjective,
    SloReport,
    SloWindow,
    ViolationAttribution,
    evaluate_slo,
    phase_stall_report,
    render_slo_dashboard,
)

__all__ = [
    "ArrivalModel",
    "PoissonArrivals",
    "BurstyArrivals",
    "DiurnalArrivals",
    "make_arrival_model",
    "RequestState",
    "UtteranceRequest",
    "RequestRecord",
    "synthesize_requests",
    "ServingConfig",
    "ServingResult",
    "ModeledExecutor",
    "FunctionalExecutor",
    "ContinuousBatchingScheduler",
    "meets_slo",
    "simulate",
    "SloWindow",
    "SloObjective",
    "SloAlert",
    "SloReport",
    "ViolationAttribution",
    "phase_stall_report",
    "evaluate_slo",
    "render_slo_dashboard",
    "LoadPoint",
    "ServingSweep",
    "sweep_offered_load",
    "find_saturation",
    "SweepDelta",
    "diff_sweeps",
    "render_sweep_delta",
    "attribute_saturation",
    "render_sweep",
    "CapacityEstimate",
    "build_cost_ledger",
    "estimate_capacity",
    "record_cost_metrics",
    "render_cost_dashboard",
]
