"""Multi-tenant serving simulator over the modeled accelerator.

Virtual-time, request-level scheduling of the transformer ASR
accelerator: open-loop arrivals (:mod:`repro.serving.arrival`),
continuous batching with cache-pressure admission control and priority
preemption (:mod:`repro.serving.scheduler`), and latency-vs-load
sweeps with saturation attribution (:mod:`repro.serving.analysis`).
"""

from repro.serving.arrival import (
    ArrivalModel,
    BurstyArrivals,
    DiurnalArrivals,
    PoissonArrivals,
    make_arrival_model,
)
from repro.serving.analysis import (
    LoadPoint,
    ServingSweep,
    attribute_saturation,
    find_saturation,
    render_sweep,
    sweep_offered_load,
)
from repro.serving.request import (
    RequestRecord,
    RequestState,
    UtteranceRequest,
    synthesize_requests,
)
from repro.serving.scheduler import (
    ContinuousBatchingScheduler,
    FunctionalExecutor,
    ModeledExecutor,
    ServingConfig,
    ServingResult,
    simulate,
)

__all__ = [
    "ArrivalModel",
    "PoissonArrivals",
    "BurstyArrivals",
    "DiurnalArrivals",
    "make_arrival_model",
    "RequestState",
    "UtteranceRequest",
    "RequestRecord",
    "synthesize_requests",
    "ServingConfig",
    "ServingResult",
    "ModeledExecutor",
    "FunctionalExecutor",
    "ContinuousBatchingScheduler",
    "simulate",
    "LoadPoint",
    "ServingSweep",
    "sweep_offered_load",
    "find_saturation",
    "attribute_saturation",
    "render_sweep",
]
