"""Request and session lifecycle of the serving simulator.

A request is one utterance to transcribe: it arrives at a virtual
time, waits in the admission queue, runs its prefill (encoder pass +
cross-attention K/V projection, the padded single-shot accelerator
pass the pipeline already accounts as ``accelerator_ms``), then joins
the in-flight decode batch and advances one KV-cached step per
iteration until its token budget is decoded.  Under cache pressure a
low-priority request can be *preempted*: its K/V state is evicted
(rewind to zero) and, once readmitted, the evicted steps replay before
new tokens decode — functionally exact, paid for in replayed cycles.
"""

from __future__ import annotations

import enum
import random
from dataclasses import dataclass, field
from typing import Sequence

from repro.serving.arrival import ArrivalModel

__all__ = [
    "RequestState",
    "UtteranceRequest",
    "RequestRecord",
    "synthesize_requests",
]


class RequestState(enum.Enum):
    QUEUED = "queued"
    PREFILLING = "prefilling"
    DECODING = "decoding"
    PREEMPTED = "preempted"
    COMPLETED = "completed"
    #: Admission control refused the request outright (its worst-case
    #: cache can never fit the K/V budget; see
    #: ``ServingConfig.reject_oversized``).
    REJECTED = "rejected"


@dataclass(frozen=True)
class UtteranceRequest:
    """One utterance entering the service."""

    request_id: int
    #: Virtual arrival time, seconds from simulation start.
    arrival_s: float
    #: Decode steps this utterance needs (its transcript length).
    decode_tokens: int
    #: Lower is more important; preemption evicts the highest value.
    priority: int = 0
    #: Owning tenant for cost attribution and fairness accounting
    #: (:mod:`repro.serving.accounting`).  Purely an accounting label:
    #: scheduling never looks at it, so tenanted and untenanted runs
    #: are cycle-identical.
    tenant: int = 0

    def __post_init__(self) -> None:
        if self.arrival_s < 0:
            raise ValueError("arrival_s must be non-negative")
        if self.decode_tokens <= 0:
            raise ValueError("decode_tokens must be positive")
        if self.tenant < 0:
            raise ValueError("tenant must be non-negative")


@dataclass
class RequestRecord:
    """Everything that happened to one request, in virtual seconds."""

    request: UtteranceRequest
    state: RequestState = RequestState.QUEUED
    admitted_s: float | None = None
    prefill_done_s: float | None = None
    finished_s: float | None = None
    decoded_tokens: int = 0
    preemptions: int = 0
    replayed_steps: int = 0
    #: Per-iteration virtual end times of this request's decode steps.
    step_end_s: list[float] = field(default_factory=list)

    @property
    def queue_ms(self) -> float:
        """Arrival -> admission (first admission, virtual ms)."""
        if self.admitted_s is None:
            raise ValueError(f"request {self.request.request_id} never admitted")
        return (self.admitted_s - self.request.arrival_s) * 1e3

    @property
    def e2e_ms(self) -> float:
        """Arrival -> last decode step (virtual ms)."""
        if self.finished_s is None:
            raise ValueError(f"request {self.request.request_id} never finished")
        return (self.finished_s - self.request.arrival_s) * 1e3

    @property
    def service_ms(self) -> float:
        """Admission -> completion (virtual ms)."""
        if self.admitted_s is None or self.finished_s is None:
            raise ValueError(f"request {self.request.request_id} incomplete")
        return (self.finished_s - self.admitted_s) * 1e3


def synthesize_requests(
    arrival: ArrivalModel,
    num_requests: int,
    min_tokens: int = 4,
    max_tokens: int = 16,
    priority_classes: int = 2,
    seed: int = 0,
    tenant_classes: int = 1,
    tenant_weights: Sequence[float] | None = None,
) -> list[UtteranceRequest]:
    """A deterministic request trace: arrival times from the arrival
    model, token budgets and priorities from a separate seeded stream
    (``random.Random`` for cross-platform bit-stability).

    ``tenant_classes`` > 1 assigns each request a tenant id drawn from
    its *own* seeded stream, optionally weighted by ``tenant_weights``
    (a skewed mix makes the fairness readouts interesting).  The
    tenant stream is independent of the token/priority stream, so the
    default single-tenant trace is byte-identical to what earlier
    revisions produced — tenanting never moves a pinned cycle count.
    """
    if num_requests <= 0:
        raise ValueError("num_requests must be positive")
    if not 0 < min_tokens <= max_tokens:
        raise ValueError("need 0 < min_tokens <= max_tokens")
    if priority_classes < 1:
        raise ValueError("priority_classes must be >= 1")
    if tenant_classes < 1:
        raise ValueError("tenant_classes must be >= 1")
    if tenant_weights is not None:
        if len(tenant_weights) != tenant_classes:
            raise ValueError("tenant_weights must have one entry per class")
        if any(w < 0 for w in tenant_weights) or sum(tenant_weights) <= 0:
            raise ValueError("tenant_weights must be non-negative, sum > 0")
    rng = random.Random(seed ^ 0x5EEDED)
    trng = random.Random(seed ^ 0x7E7A47)
    times = arrival.times(num_requests)
    if tenant_classes == 1:
        tenants = [0] * num_requests
    else:
        tenants = trng.choices(
            range(tenant_classes), weights=tenant_weights, k=num_requests
        )
    return [
        UtteranceRequest(
            request_id=i,
            arrival_s=t,
            decode_tokens=rng.randint(min_tokens, max_tokens),
            priority=rng.randrange(priority_classes),
            tenant=tenants[i],
        )
        for i, t in enumerate(times)
    ]
