"""Continuous-batching scheduler over the simulated accelerator.

The simulator models an asynchronous multi-tenant transcription
service in *virtual time*: requests arrive open-loop from an
:mod:`arrival <repro.serving.arrival>` model while one simulated
accelerator serves them.  Scheduling is iteration-level (Orca-style):

* the device alternates between **prefill** passes (the padded
  single-shot accelerator pass the pipeline accounts as
  ``accelerator_ms``, which fills the encoder memory and projects the
  cross-attention K/V) and **decode iterations**, in which every
  in-flight request advances one KV-cached step;
* requests join the in-flight decode batch at step boundaries the
  moment their prefill completes — *continuous batching* — and leave
  the moment their last token decodes, instead of waiting for a full
  batch to drain;
* a decode iteration streams each decoder's weight panels from HBM
  once for the whole batch (:meth:`repro.hw.controller.LatencyModel.
  decode_iteration_cycles`), so per-request decode cost falls as the
  batch fills — the throughput lever continuous batching exists for.

Admission control is **cache-pressure-aware**: a request is admitted
only when the K/V bytes the whole batch could grow to (every member
decoded to its full token budget, the
:func:`repro.hw.kv_cache.modeled_resident_bytes` arithmetic that a
live :class:`~repro.hw.kv_cache.DecoderKVCache` reports as
``resident_bytes()``) fit the configured budget.  A higher-priority
arrival that cannot reserve may **preempt** lower-priority in-flight
requests: their self-attention rows are evicted through the existing
rewind support and replayed after readmission — functionally exact,
paid for in replayed steps.

Everything is deterministic: virtual time advances in integer fabric
cycles, arrival traces come from ``random.Random``, and the bench
harness gates the cycle totals exactly.
"""

from __future__ import annotations

import heapq
import math
from dataclasses import dataclass, field

import numpy as np

from repro.hw.controller import LatencyModel
from repro.hw.kv_cache import modeled_resident_bytes
from repro.hw.scheduler import Architecture
from repro.obs import metrics as obs_metrics
from repro.obs import spans as obs_spans
from repro.obs.vtrace import NULL_SAMPLER, NULL_VTRACE, VSampler, VTraceRecorder
from repro.serving.request import RequestRecord, RequestState, UtteranceRequest

__all__ = [
    "ServingConfig",
    "ServingResult",
    "ModeledExecutor",
    "FunctionalExecutor",
    "ContinuousBatchingScheduler",
    "meets_slo",
    "simulate",
]


def meets_slo(latency_ms: float, slo_ms: float) -> bool:
    """The SLO boundary, in one place.

    The boundary is **closed**: a request whose latency lands exactly
    on the objective counts as good (``latency_ms <= slo_ms``), the
    convention of "complete *within* X ms".  Goodput accounting here
    and attainment/burn accounting in :mod:`repro.serving.slo` both
    route through this predicate so they can never disagree; the
    choice is pinned by a regression test because an off-by-one here
    silently shifts every goodput curve.
    """
    return latency_ms <= slo_ms


@dataclass(frozen=True)
class ServingConfig:
    """Knobs of the serving simulator."""

    #: Hardware sequence length (prefill pass and cross-attention span).
    s: int = 32
    architecture: str = "A3"
    #: Iteration width: max requests decoding (or awaiting prefill).
    max_batch: int = 8
    #: K/V BRAM budget the whole batch must fit, bytes.  ``None``
    #: sizes it for ``max_batch`` full-length caches (no pressure).
    kv_budget_bytes: int | None = None
    #: Stream decoder panels once per iteration (continuous-batching
    #: amortization) instead of once per member.
    share_weights: bool = True
    #: Allow priority preemption of in-flight requests.
    preemption: bool = True
    #: Latency SLO used for goodput accounting, virtual ms.
    slo_ms: float = 3000.0
    #: Reject (rather than raise on) requests whose worst-case cache
    #: can never fit ``kv_budget_bytes``; they complete the lifecycle
    #: as ``RequestState.REJECTED`` with a ``reject`` trace event.
    reject_oversized: bool = False

    def __post_init__(self) -> None:
        if self.s <= 0:
            raise ValueError("s must be positive")
        if self.max_batch < 1:
            raise ValueError("max_batch must be >= 1")
        if self.kv_budget_bytes is not None and self.kv_budget_bytes <= 0:
            raise ValueError("kv_budget_bytes must be positive")
        if self.slo_ms <= 0:
            raise ValueError("slo_ms must be positive")
        Architecture(self.architecture)


class ModeledExecutor:
    """Data-free costs from the cycle model (the serving default).

    Prefill and iteration costs are pure arithmetic over the
    configuration, so a whole load sweep runs in milliseconds and its
    cycle totals gate exactly in the bench harness.
    """

    def __init__(self, config: ServingConfig, latency_model: LatencyModel | None = None):
        self.config = config
        self.lm = latency_model or LatencyModel()
        self._prefill = self.lm.latency_report(
            config.s, config.architecture
        ).total_cycles
        self._iteration_cache: dict[tuple[int, ...], int] = {}

    def prefill_cycles(self, record: RequestRecord) -> int:
        return self._prefill

    def iteration_cycles(self, prefix_lengths: list[int]) -> int:
        key = tuple(prefix_lengths)
        cycles = self._iteration_cache.get(key)
        if cycles is None:
            cycles = self.lm.decode_iteration_cycles(
                prefix_lengths,
                self.config.s,
                self.config.architecture,
                share_weights=self.config.share_weights,
            )
            self._iteration_cache[key] = cycles
        return cycles

    def resident_bytes(self, t: int) -> int:
        return modeled_resident_bytes(self.lm.model, self.config.s, t)

    @property
    def clock_hz(self) -> float:
        return self.lm.hardware.clock_mhz * 1e6

    # Functional hooks are no-ops in the modeled executor.
    def open_session(self, record: RequestRecord) -> None:
        return None

    def step(self, record: RequestRecord, replay: bool) -> None:
        return None

    def step_many(self, items: list[tuple[RequestRecord, bool]]) -> None:
        """One decode iteration over the whole active batch.  The
        modeled executor has no state to advance; the functional
        executor overrides this with a batched fabric step."""
        for record, replay in items:
            self.step(record, replay)

    def preempt(self, record: RequestRecord) -> None:
        return None


class FunctionalExecutor(ModeledExecutor):
    """Costs from the cycle model, *state* from the real fabric.

    Each request opens a live :class:`repro.hw.accelerator.
    HwDecodeSession` over its features and decodes greedily, so
    preemption/rewind correctness is observable: the emitted token
    sequence must be identical with and without preemption.
    """

    def __init__(
        self,
        config,
        accelerator,
        features_of,
        start_token: int = 1,
        batched_steps: bool = True,
    ):
        super().__init__(config, accelerator.latency_model)
        self.accelerator = accelerator
        self.features_of = features_of
        self.start_token = int(start_token)
        #: Route decode iterations through the batched fabric executor
        #: (bit-identical to the loop; ``False`` keeps the per-session
        #: loop for wall-clock A/B comparison in the bench).
        self.batched_steps = bool(batched_steps)
        self.emitted: dict[int, list[int]] = {}
        self._sessions: dict[int, object] = {}

    def open_session(self, record: RequestRecord) -> None:
        rid = record.request.request_id
        self._sessions[rid] = self.accelerator.decode_session(
            self.features_of(record.request)
        )
        self.emitted.setdefault(rid, [])

    def _feed_token(self, rid: int) -> int:
        session = self._sessions[rid]
        t = len(session.tokens)
        return self.start_token if t == 0 else self.emitted[rid][t - 1]

    def step(self, record: RequestRecord, replay: bool) -> None:
        rid = record.request.request_id
        out = self._sessions[rid].step(int(self._feed_token(rid)))
        if not replay:
            self.emitted[rid].append(int(np.argmax(out)))

    def step_many(self, items: list[tuple[RequestRecord, bool]]) -> None:
        """One decode iteration through the batched fabric executor.

        Same-prefix-length sessions advance as one batched program run
        (:func:`repro.hw.accelerator.step_sessions` — bit-identical to
        per-session steps), then the greedy/bookkeeping logic of
        :meth:`step` applies per member.
        """
        from repro.hw.accelerator import step_sessions

        if not items:
            return
        if not self.batched_steps:
            for record, replay in items:
                self.step(record, replay)
            return
        rids = [record.request.request_id for record, _ in items]
        sessions = [self._sessions[rid] for rid in rids]
        feeds = [self._feed_token(rid) for rid in rids]
        outs = step_sessions(sessions, feeds)
        for (record, replay), rid, out in zip(items, rids, outs):
            if not replay:
                self.emitted[rid].append(int(np.argmax(out)))

    def preempt(self, record: RequestRecord) -> None:
        self._sessions[record.request.request_id].preempt()


@dataclass
class ServingResult:
    """One simulated run: per-request records plus device accounting."""

    config: ServingConfig
    records: list[RequestRecord]
    #: Virtual time at which the device finished its last event, cycles.
    device_end_cycles: int
    prefill_cycles_total: int
    decode_cycles_total: int
    replay_cycles_total: int
    idle_cycles_total: int
    prefills: int
    decode_iterations: int
    preemptions: int
    replayed_steps: int
    peak_kv_bytes: int
    peak_queue_depth: int
    peak_batch: int
    clock_hz: float
    rejections: int = 0
    details: dict[str, float] = field(default_factory=dict)

    @property
    def completed(self) -> list[RequestRecord]:
        return [r for r in self.records if r.state is RequestState.COMPLETED]

    @property
    def duration_s(self) -> float:
        """Virtual span from first arrival to last device event."""
        if not self.records:
            return 0.0
        start = min(r.request.arrival_s for r in self.records)
        return max(self.device_end_cycles / self.clock_hz - start, 0.0)

    @property
    def throughput_rps(self) -> float:
        """Completed requests per virtual second."""
        d = self.duration_s
        return len(self.completed) / d if d > 0 else 0.0

    @property
    def goodput_rps(self) -> float:
        """Completions meeting the latency SLO, per virtual second."""
        d = self.duration_s
        if d <= 0:
            return 0.0
        good = sum(
            1 for r in self.completed if meets_slo(r.e2e_ms, self.config.slo_ms)
        )
        return good / d

    def latency_quantile(self, q: float, which: str = "e2e") -> float:
        """Linear-interpolated quantile of per-request virtual latency."""
        if not 0.0 <= q <= 1.0:
            raise ValueError("quantile must be in [0, 1]")
        values = sorted(
            r.e2e_ms if which == "e2e" else r.queue_ms for r in self.completed
        )
        if not values:
            raise ValueError("no completed requests")
        if len(values) == 1:
            return values[0]
        pos = q * (len(values) - 1)
        lo = int(pos)
        hi = min(lo + 1, len(values) - 1)
        return values[lo] + (values[hi] - values[lo]) * (pos - lo)


class ContinuousBatchingScheduler:
    """The virtual-time event loop (see module docstring)."""

    def __init__(
        self,
        config: ServingConfig | None = None,
        executor: ModeledExecutor | None = None,
        vtrace: VTraceRecorder | None = None,
        sampler: VSampler | None = None,
    ) -> None:
        self.config = config or ServingConfig()
        self.executor = executor or ModeledExecutor(self.config)
        #: Lifecycle event sink; the shared null recorder costs one
        #: ``enabled`` check per hook and keeps the run bit-identical.
        self.vtrace = vtrace or NULL_VTRACE
        self.sampler = sampler or NULL_SAMPLER
        budget = self.config.kv_budget_bytes
        if budget is None:
            budget = self.config.max_batch * self.executor.resident_bytes(
                self.config.s
            )
        self.kv_budget_bytes = int(budget)

    # ----------------------------------------------------------- helpers
    def _reservation(self, record: RequestRecord) -> int:
        """Worst-case K/V bytes this request can grow to (its budget
        decoded in full) — what admission must reserve."""
        return self.executor.resident_bytes(record.request.decode_tokens)

    def run(self, requests: list[UtteranceRequest]) -> ServingResult:
        cfg = self.config
        ex = self.executor
        vt = self.vtrace
        sampler = self.sampler
        if not requests:
            raise ValueError("need at least one request")
        clock_hz = ex.clock_hz
        records = [RequestRecord(request=r) for r in sorted(
            requests, key=lambda r: (r.arrival_s, r.request_id)
        )]
        reg = obs_metrics.registry()
        tr = obs_spans.tracer()

        rejections = 0
        oversized = [
            r for r in records
            if ex.resident_bytes(r.request.decode_tokens) > self.kv_budget_bytes
        ]
        if oversized and not cfg.reject_oversized:
            worst = max(
                ex.resident_bytes(r.request.decode_tokens) for r in oversized
            )
            raise ValueError(
                f"kv_budget_bytes={self.kv_budget_bytes} cannot hold even one "
                f"request's cache (needs {worst}); raise the budget"
            )
        for record in oversized:
            record.state = RequestState.REJECTED
            rejections += 1
            if vt.enabled:
                vt.emit(
                    "reject",
                    math.ceil(record.request.arrival_s * clock_hz),
                    record.request.request_id,
                    tenant=record.request.tenant,
                    needed_bytes=ex.resident_bytes(record.request.decode_tokens),
                    kv_budget_bytes=self.kv_budget_bytes,
                )

        pending = [r for r in records if r.state is not RequestState.REJECTED]
        #: Admission pool: (priority, arrival_s, request_id) min-heap.
        queue: list[tuple[float, float, int, RequestRecord]] = []
        prefill_fifo: list[RequestRecord] = []
        active: list[_Active] = []
        now = 0  # device time, cycles
        reserved = 0  # K/V bytes reserved by admitted requests
        #: Cycle each request last (re-)entered the admission pool —
        #: arrival, or the preemption instant — for queue_wait events.
        queued_since: dict[int, int] = {}

        prefills = decode_iterations = preemptions = replayed_steps = 0
        prefill_cycles_total = decode_cycles_total = replay_cycles_total = 0
        idle_cycles_total = 0
        peak_kv = peak_queue = peak_batch = 0

        def push(record: RequestRecord) -> None:
            heapq.heappush(queue, (
                record.request.priority,
                record.request.arrival_s,
                record.request.request_id,
                record,
            ))

        def admitted_count() -> int:
            return len(active) + len(prefill_fifo)

        def resident_now() -> int:
            return sum(ex.resident_bytes(a.t) for a in active) + sum(
                ex.resident_bytes(0) for _ in prefill_fifo
            )

        def try_preempt_for(record: RequestRecord) -> bool:
            """Evict strictly-lower-priority members until ``record``'s
            reservation fits; returns True on success.  Feasibility is
            checked *before* evicting anything, so no request pays a
            rewind for an admission that cannot happen anyway."""
            nonlocal reserved, preemptions
            if not cfg.preemption:
                return False
            need = self._reservation(record)
            # Lowest priority first (highest value), then latest arrival.
            victims = sorted(
                (a for a in active
                 if a.record.request.priority > record.request.priority),
                key=lambda a: (-a.record.request.priority,
                               -a.record.request.arrival_s),
            )
            plan: list[_Active] = []
            freed = 0
            for victim in victims:
                if (reserved - freed + need <= self.kv_budget_bytes
                        and admitted_count() - len(plan) < cfg.max_batch):
                    break
                plan.append(victim)
                freed += self._reservation(victim.record)
            if (reserved - freed + need > self.kv_budget_bytes
                    or admitted_count() - len(plan) >= cfg.max_batch):
                return False
            for victim in plan:
                active.remove(victim)
                reserved -= self._reservation(victim.record)
                victim.record.state = RequestState.PREEMPTED
                victim.record.preemptions += 1
                victim.record.replayed_steps += victim.t
                ex.preempt(victim.record)
                push(victim.record)
                preemptions += 1
                reg.counter("repro.serving.preemptions").inc()
                if vt.enabled:
                    rid = victim.record.request.request_id
                    queued_since[rid] = now
                    vt.emit(
                        "preempt",
                        now,
                        rid,
                        tenant=victim.record.request.tenant,
                        evicted_steps=victim.t,
                        by_request=record.request.request_id,
                    )
            return bool(plan)

        while pending or queue or prefill_fifo or active:
            # 1. arrivals up to the current device time enter the pool.
            now_s = now / clock_hz
            while pending and pending[0].request.arrival_s <= now_s:
                record = pending.pop(0)
                push(record)
                reg.counter("repro.serving.requests").inc()
                if vt.enabled:
                    rid = record.request.request_id
                    arrive_cycle = math.ceil(
                        record.request.arrival_s * clock_hz
                    )
                    queued_since[rid] = arrive_cycle
                    vt.emit(
                        "arrive",
                        arrive_cycle,
                        rid,
                        tenant=record.request.tenant,
                        decode_tokens=record.request.decode_tokens,
                        priority=record.request.priority,
                    )

            # 2. admission at the step boundary: reserve worst-case K/V.
            while queue:
                _, _, _, head = queue[0]
                fits = (
                    admitted_count() < cfg.max_batch
                    and reserved + self._reservation(head) <= self.kv_budget_bytes
                )
                if not fits and not try_preempt_for(head):
                    break
                heapq.heappop(queue)
                reserved += self._reservation(head)
                if head.admitted_s is None:
                    head.admitted_s = now_s
                # Preempted requests re-run prefill too: the rewound
                # cache rebuilds through replay, but the cross K/V must
                # be re-projected first.
                head.state = RequestState.PREFILLING
                prefill_fifo.append(head)
                if vt.enabled:
                    rid = head.request.request_id
                    vt.emit(
                        "queue_wait",
                        now,
                        rid,
                        tenant=head.request.tenant,
                        wait_cycles=now - queued_since.pop(rid, now),
                    )
                    vt.emit(
                        "admit",
                        now,
                        rid,
                        tenant=head.request.tenant,
                        reserved_bytes=self._reservation(head),
                        queue_depth=len(queue),
                    )

            peak_queue = max(peak_queue, len(queue))
            reg.gauge("repro.serving.queue_depth").set(len(queue))

            # 3. pick work: prefill first (it unblocks batching), else
            #    one decode iteration over every in-flight request.
            if prefill_fifo:
                record = prefill_fifo.pop(0)
                cycles = ex.prefill_cycles(record)
                if vt.enabled:
                    vt.emit(
                        "prefill_start",
                        now,
                        record.request.request_id,
                        tenant=record.request.tenant,
                        cycles=cycles,
                        replay=bool(record.preemptions),
                    )
                now += cycles
                prefills += 1
                prefill_cycles_total += cycles
                record.prefill_done_s = now / clock_hz
                record.state = RequestState.DECODING
                entry = _Active(record=record, t=0)
                if record.preemptions:
                    entry.replay_until = record.decoded_tokens
                ex.open_session(record)
                active.append(entry)
                reg.counter("repro.serving.prefills").inc()
                if vt.enabled:
                    vt.emit(
                        "prefill_end",
                        now,
                        record.request.request_id,
                        tenant=record.request.tenant,
                        replay=bool(record.preemptions),
                    )
            elif active:
                lengths = [a.t + 1 for a in active]
                cycles = ex.iteration_cycles(lengths)
                is_replay = [a.t < a.replay_until for a in active]
                if vt.enabled:
                    # Batch membership rides on the iteration event so
                    # the cost ledger can apportion the shared cycles
                    # to exactly the members that ran (schema v2).
                    vt.emit(
                        "decode_iter",
                        now,
                        None,
                        cycles=cycles,
                        batch=len(active),
                        prefix_lengths=lengths,
                        request_ids=[
                            a.record.request.request_id for a in active
                        ],
                        tenants=[a.record.request.tenant for a in active],
                    )
                    for entry, replay in zip(active, is_replay):
                        if replay:
                            vt.emit(
                                "replay",
                                now,
                                entry.record.request.request_id,
                                tenant=entry.record.request.tenant,
                                cycles=cycles,
                                step=entry.t,
                            )
                now += cycles
                decode_iterations += 1
                decode_cycles_total += cycles
                if any(is_replay):
                    replay_cycles_total += cycles
                now_s = now / clock_hz
                finished: list[_Active] = []
                snapshot = list(active)
                # One executor call for the whole iteration: the
                # functional executor batches same-length sessions
                # through the fabric instead of stepping one by one.
                ex.step_many(
                    [(e.record, r) for e, r in zip(snapshot, is_replay)]
                )
                for entry, replay in zip(snapshot, is_replay):
                    entry.t += 1
                    if replay:
                        replayed_steps += 1
                        reg.counter("repro.serving.replayed_steps").inc()
                    else:
                        entry.record.decoded_tokens = max(
                            entry.record.decoded_tokens, entry.t
                        )
                    entry.record.step_end_s.append(now_s)
                    if entry.t >= entry.record.request.decode_tokens:
                        finished.append(entry)
                for entry in finished:
                    active.remove(entry)
                    reserved -= self._reservation(entry.record)
                    entry.record.state = RequestState.COMPLETED
                    entry.record.finished_s = now_s
                    reg.counter("repro.serving.completions").inc()
                    reg.histogram("repro.serving.e2e_ms").observe(
                        entry.record.e2e_ms
                    )
                    reg.histogram("repro.serving.queue_ms").observe(
                        entry.record.queue_ms
                    )
                    tr.record_span(
                        "serving.request",
                        start_us=entry.record.request.arrival_s * 1e6,
                        duration_us=entry.record.e2e_ms * 1e3,
                        request_id=entry.record.request.request_id,
                        priority=entry.record.request.priority,
                        preemptions=entry.record.preemptions,
                    )
                    if vt.enabled:
                        vt.emit(
                            "complete",
                            now,
                            entry.record.request.request_id,
                            tenant=entry.record.request.tenant,
                            e2e_ms=entry.record.e2e_ms,
                            queue_ms=entry.record.queue_ms,
                            preemptions=entry.record.preemptions,
                        )
                reg.counter("repro.serving.decode_iterations").inc()
                reg.gauge("repro.serving.batch_size").set(len(active))
            elif pending:
                # Nothing runnable: the device idles to the next arrival.
                # Ceil, not round: idling must land at-or-after the
                # arrival instant or the loop would spin in place.
                next_cycles = math.ceil(pending[0].request.arrival_s * clock_hz)
                idle_cycles_total += max(next_cycles - now, 0)
                now = max(now, next_cycles)
            else:
                raise RuntimeError(
                    "scheduler wedged: queued requests but nothing runnable"
                )  # pragma: no cover - admission validation prevents this

            kv_now = resident_now()
            peak_kv = max(peak_kv, kv_now)
            peak_batch = max(peak_batch, len(active))
            reg.gauge("repro.serving.kv_resident_bytes").set(kv_now)
            if sampler.enabled:
                sampler.sample(now, {
                    "batch_size": len(active),
                    "queue_depth": len(queue),
                    "kv_resident_bytes": kv_now,
                    "kv_reserved_bytes": reserved,
                    "kv_budget_bytes": self.kv_budget_bytes,
                    # Cumulative device-cycle accounts; rate_series()
                    # turns these into busy/idle fractions over time.
                    "prefill_cycles": prefill_cycles_total,
                    "decode_cycles": decode_cycles_total,
                    "replay_cycles": replay_cycles_total,
                    "idle_cycles": idle_cycles_total,
                })

        return ServingResult(
            config=cfg,
            records=records,
            device_end_cycles=now,
            prefill_cycles_total=prefill_cycles_total,
            decode_cycles_total=decode_cycles_total,
            replay_cycles_total=replay_cycles_total,
            idle_cycles_total=idle_cycles_total,
            prefills=prefills,
            decode_iterations=decode_iterations,
            preemptions=preemptions,
            replayed_steps=replayed_steps,
            peak_kv_bytes=peak_kv,
            peak_queue_depth=peak_queue,
            peak_batch=peak_batch,
            clock_hz=clock_hz,
            rejections=rejections,
            details={"kv_budget_bytes": float(self.kv_budget_bytes)},
        )


@dataclass
class _Active:
    """One in-flight decode-batch member."""

    record: RequestRecord
    #: Self-attention rows currently banked (prefix length).
    t: int
    #: Rows below this replay previously-decoded positions.
    replay_until: int = 0


def simulate(
    requests: list[UtteranceRequest],
    config: ServingConfig | None = None,
    executor: ModeledExecutor | None = None,
    vtrace: VTraceRecorder | None = None,
    sampler: VSampler | None = None,
) -> ServingResult:
    """Convenience: run one trace through a fresh scheduler."""
    config = config or ServingConfig()
    return ContinuousBatchingScheduler(config, executor, vtrace, sampler).run(
        requests
    )
