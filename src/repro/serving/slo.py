"""Declarative latency SLOs over the virtual-time serving simulator.

An :class:`SloObjective` states the promise — "``target`` of requests
complete within ``latency_ms``" — and :func:`evaluate_slo` holds one
simulated run to it using the lifecycle events the scheduler emitted
(:mod:`repro.obs.vtrace`):

* **attainment** — the fraction of completions meeting the latency
  bound (the boundary itself is *closed*:
  :func:`repro.serving.scheduler.meets_slo`, shared with the
  scheduler's goodput accounting so the two can never disagree);
* **error budget** — the miss allowance ``(1 - target) * total`` and
  how much of it the run consumed;
* **burn rate** — per :class:`SloWindow`, the rolling bad fraction
  divided by the allowance.  A burn of 1.0 spends the budget exactly
  at the promised pace; the classic multi-window alert fires on the
  rising edge where *every* window burns past its threshold (a short
  window for responsiveness, a long one to suppress blips), and the
  alert is emitted back into the event stream as ``slo_alert`` so it
  lands in the merged Perfetto trace;
* **violation drill-down** — each missed request is attributed
  *macro* (which lifecycle phase ate the latency: queueing, prefill,
  decode, or preemption+replay) from its rebuilt phase timeline, and
  *micro* (which PR-5 stall cause bounds that phase's block program:
  :func:`phase_stall_report` over :func:`repro.hw.introspect.
  classify_stalls`).

Everything is arithmetic over integer-cycle events — deterministic,
so the bench harness exact-gates alert and violation counts.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.hw.controller import LatencyModel
from repro.hw.introspect import StallReport, classify_stalls
from repro.obs import metrics as obs_metrics
from repro.obs.vtrace import VEvent, VTraceRecorder, request_phases
from repro.serving.scheduler import ServingResult, meets_slo

__all__ = [
    "SloWindow",
    "SloObjective",
    "ViolationAttribution",
    "SloAlert",
    "SloReport",
    "phase_stall_report",
    "evaluate_slo",
    "render_slo_dashboard",
]

#: Macro attribution buckets, in tie-break priority order.
MACRO_PHASES = ("queueing", "prefill", "decode", "preemption")


@dataclass(frozen=True)
class SloWindow:
    """One burn-rate evaluation window."""

    name: str
    #: Rolling window span, virtual seconds.
    window_s: float
    #: Burn rate at or above which this window votes to alert.
    burn_threshold: float

    def __post_init__(self) -> None:
        if self.window_s <= 0:
            raise ValueError("window_s must be positive")
        if self.burn_threshold <= 0:
            raise ValueError("burn_threshold must be positive")


@dataclass(frozen=True)
class SloObjective:
    """A latency promise: ``target`` of requests within ``latency_ms``."""

    latency_ms: float
    #: Attainment target in (0, 1); the error budget is ``1 - target``.
    target: float = 0.95
    name: str = "e2e_latency"
    #: Multi-window burn-rate alert policy: ALL windows must exceed
    #: their threshold simultaneously (fast window reacts, slow window
    #: confirms the burn is sustained).
    windows: tuple[SloWindow, ...] = (
        SloWindow("fast", window_s=2.0, burn_threshold=4.0),
        SloWindow("slow", window_s=10.0, burn_threshold=2.0),
    )

    def __post_init__(self) -> None:
        if self.latency_ms <= 0:
            raise ValueError("latency_ms must be positive")
        if not 0.0 < self.target < 1.0:
            raise ValueError("target must be in (0, 1)")
        if not self.windows:
            raise ValueError("need at least one burn-rate window")


@dataclass(frozen=True)
class SloAlert:
    """One rising-edge multi-window burn alert (carried in the trace)."""

    cycle: int
    #: Burn rate per window name at the moment of firing.
    burn: dict

    def as_dict(self) -> dict:
        return {"cycle": self.cycle, "burn": dict(self.burn)}


@dataclass(frozen=True)
class ViolationAttribution:
    """Why one request missed the SLO: macro phase + micro stall cause."""

    request_id: int
    e2e_ms: float
    #: Virtual milliseconds spent per macro bucket.
    phase_ms: dict
    #: Dominant bucket from :data:`MACRO_PHASES`.
    macro: str
    #: Dominant PSA stall cause of the phase's block program
    #: (PR-5 taxonomy), or ``"none"``.
    micro: str
    #: Which block program the micro verdict was classified over.
    stall_program: str

    def as_dict(self) -> dict:
        return {
            "request_id": self.request_id,
            "e2e_ms": round(self.e2e_ms, 3),
            "phase_ms": {k: round(v, 3) for k, v in self.phase_ms.items()},
            "macro": self.macro,
            "micro": self.micro,
            "stall_program": self.stall_program,
        }


@dataclass
class SloReport:
    """One run held against one objective."""

    objective: SloObjective
    total: int
    good: int
    attainment: float
    #: Fraction of the error budget consumed (can exceed 1.0).
    error_budget_consumed: float
    #: Final burn rate per window name (over each window's span ending
    #: at the last completion).
    burn: dict
    alerts: list[SloAlert]
    violations: list[ViolationAttribution]
    #: Rolling attainment over the slowest window, per completion:
    #: ``(cycle, attainment)``.
    attainment_series: list[tuple[int, float]] = field(default_factory=list)

    @property
    def violated(self) -> int:
        return self.total - self.good

    def as_dict(self) -> dict:
        return {
            "objective": {
                "name": self.objective.name,
                "latency_ms": self.objective.latency_ms,
                "target": self.objective.target,
                "windows": [
                    {
                        "name": w.name,
                        "window_s": w.window_s,
                        "burn_threshold": w.burn_threshold,
                    }
                    for w in self.objective.windows
                ],
            },
            "total": self.total,
            "good": self.good,
            "violated": self.violated,
            "attainment": round(self.attainment, 6),
            "error_budget_consumed": round(self.error_budget_consumed, 6),
            "burn": {k: round(v, 6) for k, v in self.burn.items()},
            "alerts": [a.as_dict() for a in self.alerts],
            "violations": [v.as_dict() for v in self.violations],
            "attainment_series": [
                [cycle, round(value, 6)] for cycle, value in self.attainment_series
            ],
        }


def phase_stall_report(
    lm: LatencyModel, phase: str, s: int, architecture: str
) -> tuple[str, StallReport]:
    """The PR-5 stall taxonomy for one serving phase's block program.

    ``prefill`` classifies the full padded pass; ``decode`` (and the
    replay work of ``preemption``, which re-runs decode steps) a
    representative mid-sequence decode step.  Shared by the saturation
    attribution (:func:`repro.serving.analysis.attribute_saturation`)
    and the per-violation drill-down here, so both name stall causes
    over identical programs.  Conservation is verified on every call.
    """
    if phase == "prefill":
        program = lm.full_pass_program(s)
        label = f"full_pass(s={s})"
    elif phase in ("decode", "preemption"):
        t_repr = max(s // 2, 1)
        program = lm.decode_step_program(t_repr, s)
        label = f"decode_step(t={t_repr}, s={s})"
    else:
        raise ValueError(
            f"no block program for phase '{phase}'; "
            "expected prefill/decode/preemption"
        )
    report = classify_stalls(program, architecture)
    report.verify_conservation()
    return label, report


def _macro_phase_ms(
    phases: list[tuple[str, int, int]], replay_cycles: int, clock_hz: float
) -> dict:
    """Fold a request's phase timeline into the macro buckets,
    reassigning replayed decode work from ``decode`` to ``preemption``
    (replay is decode cycles the request only needed because it was
    evicted)."""
    to_ms = 1e3 / clock_hz
    out = {name: 0.0 for name in MACRO_PHASES}
    for name, start, end in phases:
        span = (end - start) * to_ms
        if name == "queued":
            out["queueing"] += span
        elif name == "prefill":
            out["prefill"] += span
        elif name == "decode":
            out["decode"] += span
        elif name == "preempted":
            out["preemption"] += span
    replay_ms = replay_cycles * to_ms
    shift = min(out["decode"], replay_ms)
    out["decode"] -= shift
    out["preemption"] += shift
    return out


def evaluate_slo(
    result: ServingResult,
    events: list[VEvent],
    objective: SloObjective | None = None,
    latency_model: LatencyModel | None = None,
    recorder: VTraceRecorder | None = None,
) -> SloReport:
    """Hold one simulated run to one objective (module docstring).

    ``events`` is the lifecycle stream the scheduler emitted for this
    run; ``recorder`` (usually the same one) receives ``slo_alert``
    events so alerts travel with the trace.  When telemetry is enabled
    the ``repro.serving.slo.*`` metric family is populated.
    """
    objective = objective or SloObjective(latency_ms=result.config.slo_ms)
    lm = latency_model or LatencyModel()
    clock_hz = result.clock_hz
    records = {r.request.request_id: r for r in result.records}

    completions = sorted(
        (
            (ev.cycle, ev.request_id)
            for ev in events
            if ev.kind == "complete" and ev.request_id is not None
        ),
        key=lambda t: t[0],
    )
    flags = [
        (cycle, rid, meets_slo(records[rid].e2e_ms, objective.latency_ms))
        for cycle, rid in completions
    ]

    total = len(flags)
    good = sum(1 for _, _, ok in flags if ok)
    attainment = good / total if total else 1.0
    budget = (1.0 - objective.target) * total
    error_budget_consumed = (total - good) / budget if budget > 0 else 0.0

    # Multi-window burn: evaluated at every completion instant.
    def window_burn(window: SloWindow, upto_idx: int) -> float:
        end_cycle = flags[upto_idx][0]
        start_cycle = end_cycle - window.window_s * clock_hz
        in_window = [
            ok for cycle, _, ok in flags[: upto_idx + 1] if cycle > start_cycle
        ]
        if not in_window:
            return 0.0
        bad_frac = sum(1 for ok in in_window if not ok) / len(in_window)
        return bad_frac / (1.0 - objective.target)

    alerts: list[SloAlert] = []
    attainment_series: list[tuple[int, float]] = []
    slowest = max(objective.windows, key=lambda w: w.window_s)
    firing = False
    final_burn = {w.name: 0.0 for w in objective.windows}
    for i, (cycle, _, _) in enumerate(flags):
        burns = {w.name: window_burn(w, i) for w in objective.windows}
        final_burn = burns
        start_cycle = cycle - slowest.window_s * clock_hz
        rolled = [ok for c, _, ok in flags[: i + 1] if c > start_cycle]
        attainment_series.append((cycle, sum(rolled) / len(rolled)))
        now_firing = all(
            burns[w.name] >= w.burn_threshold for w in objective.windows
        )
        if now_firing and not firing:
            alerts.append(SloAlert(cycle=cycle, burn=burns))
            if recorder is not None and recorder.enabled:
                recorder.emit(
                    "slo_alert",
                    cycle,
                    **{f"burn_{k}": round(v, 4) for k, v in burns.items()},
                )
        firing = now_firing

    # Per-violation drill-down: macro phase from the rebuilt timeline,
    # micro stall cause from that phase's block program.
    phases_by_rid = request_phases(events)
    replay_cycles_by_rid: dict[int, int] = {}
    for ev in events:
        if ev.kind == "replay" and ev.request_id is not None:
            replay_cycles_by_rid[ev.request_id] = replay_cycles_by_rid.get(
                ev.request_id, 0
            ) + int(ev.attrs.get("cycles", 0))

    s = result.config.s
    arch = result.config.architecture
    stall_cache: dict[str, tuple[str, str]] = {}

    def micro_for(macro: str) -> tuple[str, str]:
        # Queueing delay is caused by whatever the device was busy
        # with; attribute it to the run's dominant device phase.
        phase = macro
        if macro == "queueing":
            phase = (
                "prefill"
                if result.prefill_cycles_total >= result.decode_cycles_total
                else "decode"
            )
        cached = stall_cache.get(phase)
        if cached is None:
            label, report = phase_stall_report(lm, phase, s, arch)
            cached = stall_cache[phase] = (
                label,
                report.dominant_cause(".psa") or "none",
            )
        return cached

    violations: list[ViolationAttribution] = []
    for cycle, rid, ok in flags:
        if ok:
            continue
        record = records[rid]
        phase_ms = _macro_phase_ms(
            phases_by_rid.get(rid, []),
            replay_cycles_by_rid.get(rid, 0),
            clock_hz,
        )
        macro = max(MACRO_PHASES, key=lambda name: phase_ms[name])
        label, cause = micro_for(macro)
        violations.append(
            ViolationAttribution(
                request_id=rid,
                e2e_ms=record.e2e_ms,
                phase_ms=phase_ms,
                macro=macro,
                micro=cause,
                stall_program=label,
            )
        )

    report = SloReport(
        objective=objective,
        total=total,
        good=good,
        attainment=attainment,
        error_budget_consumed=error_budget_consumed,
        burn=final_burn,
        alerts=alerts,
        violations=violations,
        attainment_series=attainment_series,
    )

    if obs_metrics.enabled():
        reg = obs_metrics.registry()
        reg.gauge("repro.serving.slo.attainment").set(report.attainment)
        reg.gauge("repro.serving.slo.error_budget_consumed").set(
            report.error_budget_consumed
        )
        for name, value in report.burn.items():
            reg.gauge("repro.serving.slo.burn_rate", window=name).set(value)
        if report.violated:
            reg.counter("repro.serving.slo.violations").inc(report.violated)
        if report.alerts:
            reg.counter("repro.serving.slo.alerts").inc(len(report.alerts))

    return report


def render_slo_dashboard(report: SloReport) -> str:
    """Fixed-width SLO dashboard (the ``repro-asr slo`` surface)."""
    obj = report.objective
    lines = [
        f"SLO [{obj.name}]: {obj.target:.1%} of requests within "
        f"{obj.latency_ms:.0f} ms (virtual)",
        f"  attainment        : {report.attainment:.1%} "
        f"({report.good}/{report.total} good)",
        f"  error budget used : {report.error_budget_consumed:.1%}",
    ]
    for window in obj.windows:
        burn = report.burn.get(window.name, 0.0)
        flag = " **" if burn >= window.burn_threshold else ""
        lines.append(
            f"  burn[{window.name:<5}] ({window.window_s:>4.1f} s) : "
            f"{burn:>6.2f}x (alert >= {window.burn_threshold:.1f}x){flag}"
        )
    lines.append(
        f"  alerts fired      : {len(report.alerts)}"
        + (
            " at cycles "
            + ", ".join(str(a.cycle) for a in report.alerts[:8])
            if report.alerts
            else ""
        )
    )
    if report.violations:
        lines.append(
            f"{'request':>9} {'e2e ms':>10} {'macro':>10} "
            f"{'queue ms':>10} {'prefill ms':>11} {'decode ms':>10} "
            f"{'preempt ms':>11}  micro (stall cause)"
        )
        for v in report.violations:
            lines.append(
                f"{v.request_id:>9d} {v.e2e_ms:>10.1f} {v.macro:>10} "
                f"{v.phase_ms['queueing']:>10.1f} {v.phase_ms['prefill']:>11.1f} "
                f"{v.phase_ms['decode']:>10.1f} {v.phase_ms['preemption']:>11.1f}  "
                f"{v.micro} [{v.stall_program}]"
            )
    else:
        lines.append("  no violating requests")
    return "\n".join(lines)
