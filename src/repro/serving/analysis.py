"""Load sweeps, saturation detection and bottleneck attribution.

The serving question the paper's accelerator ultimately has to answer
is *"how much traffic can one card carry before latency collapses?"*.
:func:`sweep_offered_load` replays the same request population at a
ladder of offered loads, :func:`find_saturation` locates the knee
(first load whose goodput falls measurably short of what was offered),
and :func:`attribute_saturation` explains the knee twice over:

* **macro**: how the device spent its cycles at the knee (prefill vs
  decode vs idle) plus the cache-pressure counters (peak resident
  bytes against budget, preemptions, replayed steps);
* **micro**: the PR-5 stall taxonomy (:func:`repro.hw.introspect.
  classify_stalls`) run over the dominant phase's block program, naming
  the cycle-level cause (``load_starved``, ``dependency``, ...) that
  bounds the phase the device spends most of its time in.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.serving.arrival import make_arrival_model
from repro.serving.request import synthesize_requests
from repro.serving.scheduler import (
    ContinuousBatchingScheduler,
    ModeledExecutor,
    ServingConfig,
    ServingResult,
)
from repro.serving.slo import phase_stall_report

__all__ = [
    "LoadPoint",
    "ServingSweep",
    "sweep_offered_load",
    "find_saturation",
    "attribute_saturation",
    "render_sweep",
]


@dataclass(frozen=True)
class LoadPoint:
    """One offered-load level of a sweep, fully aggregated."""

    offered_rps: float
    completed: int
    throughput_rps: float
    goodput_rps: float
    p50_ms: float
    p95_ms: float
    p99_ms: float
    queue_p95_ms: float
    preemptions: int
    replayed_steps: int
    peak_kv_bytes: int
    peak_queue_depth: int
    peak_batch: int
    device_cycles: int
    prefill_frac: float
    decode_frac: float
    idle_frac: float

    @classmethod
    def from_result(cls, offered_rps: float, result: ServingResult) -> "LoadPoint":
        span = max(result.device_end_cycles, 1)
        return cls(
            offered_rps=offered_rps,
            completed=len(result.completed),
            throughput_rps=result.throughput_rps,
            goodput_rps=result.goodput_rps,
            p50_ms=result.latency_quantile(0.50),
            p95_ms=result.latency_quantile(0.95),
            p99_ms=result.latency_quantile(0.99),
            queue_p95_ms=result.latency_quantile(0.95, which="queue"),
            preemptions=result.preemptions,
            replayed_steps=result.replayed_steps,
            peak_kv_bytes=result.peak_kv_bytes,
            peak_queue_depth=result.peak_queue_depth,
            peak_batch=result.peak_batch,
            device_cycles=result.device_end_cycles,
            prefill_frac=result.prefill_cycles_total / span,
            decode_frac=result.decode_cycles_total / span,
            idle_frac=result.idle_cycles_total / span,
        )


@dataclass
class ServingSweep:
    """A full latency-vs-load curve plus its saturation attribution."""

    config: ServingConfig
    arrival_kind: str
    num_requests: int
    seed: int
    points: list[LoadPoint]
    attribution: dict = field(default_factory=dict)

    @property
    def saturation_rps(self) -> float | None:
        return self.attribution.get("saturation_rps")


def sweep_offered_load(
    loads_rps: list[float],
    num_requests: int = 24,
    arrival_kind: str = "poisson",
    config: ServingConfig | None = None,
    seed: int = 0,
    executor: ModeledExecutor | None = None,
) -> ServingSweep:
    """Replay the same request population at each offered load.

    The token budgets and priorities are drawn once (same ``seed``), so
    the only thing that changes along the sweep is arrival spacing —
    the curve isolates load, not workload."""
    if not loads_rps:
        raise ValueError("need at least one offered load")
    if sorted(loads_rps) != list(loads_rps):
        raise ValueError("offered loads must be sorted ascending")
    config = config or ServingConfig()
    points: list[LoadPoint] = []
    for rate in loads_rps:
        arrival = make_arrival_model(arrival_kind, rate, seed=seed)
        requests = synthesize_requests(arrival, num_requests, seed=seed)
        sched = ContinuousBatchingScheduler(config, executor)
        result = sched.run(requests)
        points.append(LoadPoint.from_result(rate, result))
    sweep = ServingSweep(
        config=config,
        arrival_kind=arrival_kind,
        num_requests=num_requests,
        seed=seed,
        points=points,
    )
    sweep.attribution = attribute_saturation(sweep, executor)
    return sweep


def find_saturation(
    points: list[LoadPoint], goodput_ratio: float = 0.95
) -> LoadPoint | None:
    """First point whose goodput falls below ``goodput_ratio`` of the
    offered load — the knee of the latency-vs-load curve."""
    if not 0 < goodput_ratio <= 1:
        raise ValueError("goodput_ratio must be in (0, 1]")
    for point in points:
        if point.goodput_rps < goodput_ratio * point.offered_rps:
            return point
    return None


def attribute_saturation(
    sweep: ServingSweep, executor: ModeledExecutor | None = None
) -> dict:
    """Explain the saturation knee (or its absence) of a sweep.

    Returns a plain dict (bench-info friendly) with the macro split at
    the knee, the cache-pressure counters, and the stall-taxonomy
    verdict for the dominant device phase."""
    ex = executor or ModeledExecutor(sweep.config)
    knee = find_saturation(sweep.points)
    out: dict = {"saturated": knee is not None}
    point = knee or sweep.points[-1]
    out["at_rps"] = point.offered_rps
    if knee is not None:
        out["saturation_rps"] = knee.offered_rps

    # Macro: where did the device cycles go at (or nearest) the knee?
    out["prefill_frac"] = round(point.prefill_frac, 4)
    out["decode_frac"] = round(point.decode_frac, 4)
    out["idle_frac"] = round(point.idle_frac, 4)
    kv_budget = sweep.config.kv_budget_bytes
    if kv_budget is None:
        kv_budget = sweep.config.max_batch * ex.resident_bytes(sweep.config.s)
    kv_pressured = (
        point.preemptions > 0
        or (point.peak_queue_depth > 0 and point.peak_batch < sweep.config.max_batch
            and point.peak_kv_bytes > 0.8 * kv_budget)
    )
    if knee is None:
        bottleneck = "arrival_bound"
    elif kv_pressured:
        bottleneck = "kv_pressure"
    elif point.idle_frac > max(point.prefill_frac, point.decode_frac):
        # Goodput fell short of the offered rate while the device sat
        # mostly idle: the arrival draws (bursty/diurnal quiet spells)
        # never delivered the nominal load, so the knee is not a
        # device limit.
        bottleneck = "arrival_bound"
    elif point.prefill_frac >= point.decode_frac:
        bottleneck = "prefill_bound"
    else:
        bottleneck = "decode_bound"
    out["bottleneck"] = bottleneck

    # Micro: the stall taxonomy of the dominant phase's block program
    # (same program/label contract as the per-violation SLO drill-down).
    phase = "prefill" if point.prefill_frac >= point.decode_frac else "decode"
    label, report = phase_stall_report(
        ex.lm, phase, sweep.config.s, sweep.config.architecture
    )
    out["stall_program"] = label
    totals = report.totals(".psa")
    out["psa_dominant_cause"] = report.dominant_cause(".psa") or "none"
    out["psa_stall_cycles"] = {k: v for k, v in totals.items() if v > 0}
    return out


def render_sweep(sweep: ServingSweep) -> str:
    """A fixed-width latency-vs-load table plus the attribution verdict."""
    lines = [
        f"serving sweep: {sweep.arrival_kind} arrivals, "
        f"{sweep.num_requests} requests/level, arch {sweep.config.architecture}, "
        f"batch<={sweep.config.max_batch}",
        f"{'offered':>9} {'goodput':>9} {'p50 ms':>10} {'p95 ms':>10} "
        f"{'p99 ms':>10} {'preempt':>8} {'peak kv':>12}",
    ]
    for p in sweep.points:
        lines.append(
            f"{p.offered_rps:>9.3f} {p.goodput_rps:>9.3f} {p.p50_ms:>10.1f} "
            f"{p.p95_ms:>10.1f} {p.p99_ms:>10.1f} {p.preemptions:>8d} "
            f"{p.peak_kv_bytes:>12d}"
        )
    att = sweep.attribution
    if att.get("saturated"):
        lines.append(
            f"saturates at {att['saturation_rps']:.3f} req/s: "
            f"{att['bottleneck']} (prefill {att['prefill_frac']:.0%} / "
            f"decode {att['decode_frac']:.0%} / idle {att['idle_frac']:.0%})"
        )
    else:
        lines.append(
            f"no saturation up to {att['at_rps']:.3f} req/s "
            f"(idle {att['idle_frac']:.0%})"
        )
    lines.append(
        f"stall taxonomy [{att['stall_program']}]: PSA lanes dominated by "
        f"{att['psa_dominant_cause']}"
    )
    return "\n".join(lines)
