"""Load sweeps, saturation detection and bottleneck attribution.

The serving question the paper's accelerator ultimately has to answer
is *"how much traffic can one card carry before latency collapses?"*.
:func:`sweep_offered_load` replays the same request population at a
ladder of offered loads, :func:`find_saturation` locates the knee
(first load whose goodput falls measurably short of what was offered),
and :func:`attribute_saturation` explains the knee twice over:

* **macro**: how the device spent its cycles at the knee (prefill vs
  decode vs idle) plus the cache-pressure counters (peak resident
  bytes against budget, preemptions, replayed steps);
* **micro**: the PR-5 stall taxonomy (:func:`repro.hw.introspect.
  classify_stalls`) run over the dominant phase's block program, naming
  the cycle-level cause (``load_starved``, ``dependency``, ...) that
  bounds the phase the device spends most of its time in.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.serving.arrival import make_arrival_model
from repro.serving.request import synthesize_requests
from repro.serving.scheduler import (
    ContinuousBatchingScheduler,
    ModeledExecutor,
    ServingConfig,
    ServingResult,
)
from repro.serving.slo import phase_stall_report

__all__ = [
    "LoadPoint",
    "ServingSweep",
    "sweep_offered_load",
    "find_saturation",
    "attribute_saturation",
    "render_sweep",
    "SweepDelta",
    "diff_sweeps",
    "render_sweep_delta",
]


@dataclass(frozen=True)
class LoadPoint:
    """One offered-load level of a sweep, fully aggregated."""

    offered_rps: float
    completed: int
    throughput_rps: float
    goodput_rps: float
    p50_ms: float
    p95_ms: float
    p99_ms: float
    queue_p95_ms: float
    preemptions: int
    replayed_steps: int
    peak_kv_bytes: int
    peak_queue_depth: int
    peak_batch: int
    device_cycles: int
    prefill_frac: float
    decode_frac: float
    idle_frac: float

    @classmethod
    def from_result(cls, offered_rps: float, result: ServingResult) -> "LoadPoint":
        span = max(result.device_end_cycles, 1)
        return cls(
            offered_rps=offered_rps,
            completed=len(result.completed),
            throughput_rps=result.throughput_rps,
            goodput_rps=result.goodput_rps,
            p50_ms=result.latency_quantile(0.50),
            p95_ms=result.latency_quantile(0.95),
            p99_ms=result.latency_quantile(0.99),
            queue_p95_ms=result.latency_quantile(0.95, which="queue"),
            preemptions=result.preemptions,
            replayed_steps=result.replayed_steps,
            peak_kv_bytes=result.peak_kv_bytes,
            peak_queue_depth=result.peak_queue_depth,
            peak_batch=result.peak_batch,
            device_cycles=result.device_end_cycles,
            prefill_frac=result.prefill_cycles_total / span,
            decode_frac=result.decode_cycles_total / span,
            idle_frac=result.idle_cycles_total / span,
        )


@dataclass
class ServingSweep:
    """A full latency-vs-load curve plus its saturation attribution."""

    config: ServingConfig
    arrival_kind: str
    num_requests: int
    seed: int
    points: list[LoadPoint]
    attribution: dict = field(default_factory=dict)

    @property
    def saturation_rps(self) -> float | None:
        return self.attribution.get("saturation_rps")


def sweep_offered_load(
    loads_rps: list[float],
    num_requests: int = 24,
    arrival_kind: str = "poisson",
    config: ServingConfig | None = None,
    seed: int = 0,
    executor: ModeledExecutor | None = None,
) -> ServingSweep:
    """Replay the same request population at each offered load.

    The token budgets and priorities are drawn once (same ``seed``), so
    the only thing that changes along the sweep is arrival spacing —
    the curve isolates load, not workload."""
    if not loads_rps:
        raise ValueError("need at least one offered load")
    if sorted(loads_rps) != list(loads_rps):
        raise ValueError("offered loads must be sorted ascending")
    config = config or ServingConfig()
    points: list[LoadPoint] = []
    for rate in loads_rps:
        arrival = make_arrival_model(arrival_kind, rate, seed=seed)
        requests = synthesize_requests(arrival, num_requests, seed=seed)
        sched = ContinuousBatchingScheduler(config, executor)
        result = sched.run(requests)
        points.append(LoadPoint.from_result(rate, result))
    sweep = ServingSweep(
        config=config,
        arrival_kind=arrival_kind,
        num_requests=num_requests,
        seed=seed,
        points=points,
    )
    sweep.attribution = attribute_saturation(sweep, executor)
    return sweep


def find_saturation(
    points: list[LoadPoint], goodput_ratio: float = 0.95
) -> LoadPoint | None:
    """First point whose goodput falls below ``goodput_ratio`` of the
    offered load — the knee of the latency-vs-load curve."""
    if not 0 < goodput_ratio <= 1:
        raise ValueError("goodput_ratio must be in (0, 1]")
    for point in points:
        if point.goodput_rps < goodput_ratio * point.offered_rps:
            return point
    return None


def attribute_saturation(
    sweep: ServingSweep, executor: ModeledExecutor | None = None
) -> dict:
    """Explain the saturation knee (or its absence) of a sweep.

    Returns a plain dict (bench-info friendly) with the macro split at
    the knee, the cache-pressure counters, and the stall-taxonomy
    verdict for the dominant device phase."""
    ex = executor or ModeledExecutor(sweep.config)
    knee = find_saturation(sweep.points)
    out: dict = {"saturated": knee is not None}
    point = knee or sweep.points[-1]
    out["at_rps"] = point.offered_rps
    if knee is not None:
        out["saturation_rps"] = knee.offered_rps

    # Macro: where did the device cycles go at (or nearest) the knee?
    out["prefill_frac"] = round(point.prefill_frac, 4)
    out["decode_frac"] = round(point.decode_frac, 4)
    out["idle_frac"] = round(point.idle_frac, 4)
    kv_budget = sweep.config.kv_budget_bytes
    if kv_budget is None:
        kv_budget = sweep.config.max_batch * ex.resident_bytes(sweep.config.s)
    kv_pressured = (
        point.preemptions > 0
        or (point.peak_queue_depth > 0 and point.peak_batch < sweep.config.max_batch
            and point.peak_kv_bytes > 0.8 * kv_budget)
    )
    if knee is None:
        bottleneck = "arrival_bound"
    elif kv_pressured:
        bottleneck = "kv_pressure"
    elif point.idle_frac > max(point.prefill_frac, point.decode_frac):
        # Goodput fell short of the offered rate while the device sat
        # mostly idle: the arrival draws (bursty/diurnal quiet spells)
        # never delivered the nominal load, so the knee is not a
        # device limit.
        bottleneck = "arrival_bound"
    elif point.prefill_frac >= point.decode_frac:
        bottleneck = "prefill_bound"
    else:
        bottleneck = "decode_bound"
    out["bottleneck"] = bottleneck

    # Micro: the stall taxonomy of the dominant phase's block program
    # (same program/label contract as the per-violation SLO drill-down).
    phase = "prefill" if point.prefill_frac >= point.decode_frac else "decode"
    label, report = phase_stall_report(
        ex.lm, phase, sweep.config.s, sweep.config.architecture
    )
    out["stall_program"] = label
    totals = report.totals(".psa")
    out["psa_dominant_cause"] = report.dominant_cause(".psa") or "none"
    out["psa_stall_cycles"] = {k: v for k, v in totals.items() if v > 0}
    return out


@dataclass
class SweepDelta:
    """The serving-side differential profile: two sweeps over the same
    offered-load ladder, compared point-for-point.

    ``points`` carries, per offered load, the candidate-minus-base
    deltas of the latency quantiles, goodput, and the exact integer
    device-cycle counters.  The knee movement comes straight from
    :func:`find_saturation` on each side; ``None`` means that side
    never saturated within the swept ladder.
    """

    base_desc: str
    cand_desc: str
    points: list[dict]
    base_saturation_rps: float | None
    cand_saturation_rps: float | None
    base_bottleneck: str
    cand_bottleneck: str

    @property
    def knee_moved(self) -> bool:
        return self.base_saturation_rps != self.cand_saturation_rps

    def as_dict(self) -> dict:
        return {
            "base": self.base_desc,
            "cand": self.cand_desc,
            "points": list(self.points),
            "saturation_rps": {
                "base": self.base_saturation_rps,
                "cand": self.cand_saturation_rps,
            },
            "bottleneck": {
                "base": self.base_bottleneck,
                "cand": self.cand_bottleneck,
            },
        }


def _describe(sweep: ServingSweep) -> str:
    cfg = sweep.config
    return (f"{cfg.architecture} s={cfg.s} batch<={cfg.max_batch} "
            f"slo={cfg.slo_ms:g}ms ({sweep.arrival_kind})")


def diff_sweeps(base: ServingSweep, cand: ServingSweep) -> SweepDelta:
    """Compare two sweeps point-for-point.

    Both sweeps must cover the same offered-load ladder (otherwise the
    per-point deltas would compare different traffic) — a mismatch is a
    usage error and raises ``ValueError``.
    """
    base_loads = [p.offered_rps for p in base.points]
    cand_loads = [p.offered_rps for p in cand.points]
    if base_loads != cand_loads:
        raise ValueError(
            f"sweeps cover different offered-load ladders: "
            f"{base_loads} vs {cand_loads}"
        )
    points = []
    for a, b in zip(base.points, cand.points):
        points.append({
            "offered_rps": a.offered_rps,
            "d_p50_ms": b.p50_ms - a.p50_ms,
            "d_p95_ms": b.p95_ms - a.p95_ms,
            "d_p99_ms": b.p99_ms - a.p99_ms,
            "d_goodput_rps": b.goodput_rps - a.goodput_rps,
            "d_completed": b.completed - a.completed,
            "d_device_cycles": b.device_cycles - a.device_cycles,
            "d_preemptions": b.preemptions - a.preemptions,
            "d_replayed_steps": b.replayed_steps - a.replayed_steps,
            "d_peak_kv_bytes": b.peak_kv_bytes - a.peak_kv_bytes,
        })
    base_knee = find_saturation(base.points)
    cand_knee = find_saturation(cand.points)
    return SweepDelta(
        base_desc=_describe(base),
        cand_desc=_describe(cand),
        points=points,
        base_saturation_rps=base_knee.offered_rps if base_knee else None,
        cand_saturation_rps=cand_knee.offered_rps if cand_knee else None,
        base_bottleneck=str(base.attribution.get("bottleneck", "?")),
        cand_bottleneck=str(cand.attribution.get("bottleneck", "?")),
    )


def render_sweep_delta(delta: SweepDelta) -> str:
    """Fixed-width table of per-load deltas plus the knee verdict."""
    lines = [
        f"serving diff: {delta.base_desc}  ->  {delta.cand_desc}",
        f"{'offered':>9} {'Δp50 ms':>10} {'Δp95 ms':>10} {'Δp99 ms':>10} "
        f"{'Δgoodput':>10} {'Δcycles':>14} {'Δpreempt':>9}",
    ]
    for p in delta.points:
        lines.append(
            f"{p['offered_rps']:>9.3f} {p['d_p50_ms']:>+10.1f} "
            f"{p['d_p95_ms']:>+10.1f} {p['d_p99_ms']:>+10.1f} "
            f"{p['d_goodput_rps']:>+10.3f} {p['d_device_cycles']:>+14,d} "
            f"{p['d_preemptions']:>+9d}"
        )

    def _knee(rps: float | None) -> str:
        return f"{rps:g} req/s" if rps is not None else "none (in ladder)"

    lines.append(
        f"saturation knee: {_knee(delta.base_saturation_rps)} -> "
        f"{_knee(delta.cand_saturation_rps)}"
        + ("  [moved]" if delta.knee_moved else "  [unchanged]")
    )
    lines.append(
        f"bottleneck: {delta.base_bottleneck} -> {delta.cand_bottleneck}"
    )
    return "\n".join(lines)


def render_sweep(sweep: ServingSweep) -> str:
    """A fixed-width latency-vs-load table plus the attribution verdict."""
    lines = [
        f"serving sweep: {sweep.arrival_kind} arrivals, "
        f"{sweep.num_requests} requests/level, arch {sweep.config.architecture}, "
        f"batch<={sweep.config.max_batch}",
        f"{'offered':>9} {'goodput':>9} {'p50 ms':>10} {'p95 ms':>10} "
        f"{'p99 ms':>10} {'preempt':>8} {'peak kv':>12}",
    ]
    for p in sweep.points:
        lines.append(
            f"{p.offered_rps:>9.3f} {p.goodput_rps:>9.3f} {p.p50_ms:>10.1f} "
            f"{p.p95_ms:>10.1f} {p.p99_ms:>10.1f} {p.preemptions:>8d} "
            f"{p.peak_kv_bytes:>12d}"
        )
    att = sweep.attribution
    if att.get("saturated"):
        lines.append(
            f"saturates at {att['saturation_rps']:.3f} req/s: "
            f"{att['bottleneck']} (prefill {att['prefill_frac']:.0%} / "
            f"decode {att['decode_frac']:.0%} / idle {att['idle_frac']:.0%})"
        )
    else:
        lines.append(
            f"no saturation up to {att['at_rps']:.3f} req/s "
            f"(idle {att['idle_frac']:.0%})"
        )
    lines.append(
        f"stall taxonomy [{att['stall_program']}]: PSA lanes dominated by "
        f"{att['psa_dominant_cause']}"
    )
    return "\n".join(lines)
