"""End-to-end load/compute overlap architectures A1, A2, A3 (Section 4.5).

The encoder/decoder stack is a chain of *blocks*; each block needs its
weights loaded from HBM (``LW_i``) before its compute (``C_i``) can run,
and each compute depends on the previous block's output:

* **A1** — naive: LW1, C1, LW2, C2, ... strictly sequential (Fig 4.8).
* **A2** — double-buffered prefetch: ``LW_{i+1}`` overlaps ``C_i`` on a
  single load channel; two weight buffers, so ``LW_i`` may not start
  before ``C_{i-2}`` has released its buffer (Fig 4.9).
* **A3** — two HBM channels: ``LW_{i+2}`` is issued as soon as ``C_i``
  completes, halving the exposed stall from ``LW - C`` to
  ``(LW - C) / 2`` when load-bound (Fig 4.10).  Decoders split their
  load into an MHA part and an FFN part fetched concurrently on the two
  channels (Fig 4.11).

All times are in fabric cycles.  Each block additionally pays a fixed
host-orchestration overhead serialized with its compute (the OpenCL
dispatch of Section 2.2.7), which no architecture can hide.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum

from repro.hw.trace import Timeline


class Architecture(str, Enum):
    """The three end-to-end architectures compared in Table 5.1."""

    A1 = "A1"
    A2 = "A2"
    A3 = "A3"


@dataclass(frozen=True)
class BlockWork:
    """One schedulable unit: a weight load followed by a compute."""

    label: str
    load_cycles: int
    compute_cycles: int
    #: Preferred HBM channel in A3 (encoders alternate; decoder MHA
    #: parts pin to 0 and FFN parts to 1, per Fig 4.11).
    channel_hint: int | None = None
    #: Host-dispatch overhead override; None means "use the scheduler's
    #: global block overhead".  A3 decoder sub-blocks set the FFN part
    #: to 0 so a decoder pays one dispatch, like under A1/A2.
    overhead_override: int | None = None

    def __post_init__(self) -> None:
        if self.load_cycles < 0 or self.compute_cycles < 0:
            raise ValueError("cycle counts must be non-negative")
        if self.overhead_override is not None and self.overhead_override < 0:
            raise ValueError("overhead_override must be non-negative")

    def overhead(self, default: int) -> int:
        return self.overhead_override if self.overhead_override is not None else default


@dataclass
class ScheduleResult:
    """Outcome of scheduling a block chain under one architecture."""

    architecture: Architecture
    total_cycles: int
    timeline: Timeline
    load_cycles_total: int
    compute_cycles_total: int
    #: Cycles the compute engine sat idle waiting for weights.
    stall_cycles: int
    block_overhead_cycles: int = 0
    extra: dict[str, float] = field(default_factory=dict)


def _finalize(
    arch: Architecture,
    timeline: Timeline,
    blocks: list[BlockWork],
    compute_end: float,
    compute_busy: float,
    first_compute_start: float,
    overhead: int,
) -> ScheduleResult:
    total_load = sum(b.load_cycles for b in blocks)
    total_compute = sum(b.compute_cycles for b in blocks)
    span = compute_end - first_compute_start
    stall = int(round(span - compute_busy)) if blocks else 0
    timeline.validate_no_engine_overlap()
    return ScheduleResult(
        architecture=arch,
        total_cycles=int(round(compute_end)),
        timeline=timeline,
        load_cycles_total=total_load,
        compute_cycles_total=total_compute,
        stall_cycles=max(stall, 0),
        block_overhead_cycles=sum(b.overhead(overhead) for b in blocks),
    )


def schedule_a1(blocks: list[BlockWork], block_overhead: int = 0) -> ScheduleResult:
    """Naive sequential load-then-compute (Fig 4.8)."""
    _validate(blocks, block_overhead)
    timeline = Timeline()
    t = 0.0
    compute_busy = 0.0
    first_compute = 0.0
    for i, b in enumerate(blocks):
        timeline.add("hbm0", f"LW:{b.label}", t, t + b.load_cycles, kind="load")
        t += b.load_cycles
        if i == 0:
            first_compute = t
        dur = b.compute_cycles + b.overhead(block_overhead)
        timeline.add("compute", f"C:{b.label}", t, t + dur)
        t += dur
        compute_busy += dur
    return _finalize(
        Architecture.A1, timeline, blocks, t, compute_busy, first_compute, block_overhead
    )


def schedule_a2(
    blocks: list[BlockWork],
    block_overhead: int = 0,
    num_weight_buffers: int = 2,
) -> ScheduleResult:
    """Double-buffered prefetch on one load channel (Fig 4.9).

    ``num_weight_buffers=1`` degrades to load-after-compute (the
    ablation baseline, nearly A1); larger values allow deeper prefetch.
    """
    _validate(blocks, block_overhead)
    if num_weight_buffers < 1:
        raise ValueError("num_weight_buffers must be >= 1")
    nb = num_weight_buffers
    timeline = Timeline()
    load_end = [0.0] * len(blocks)
    comp_end = [0.0] * len(blocks)
    chan_free = 0.0
    compute_busy = 0.0
    first_compute = None
    prev_comp = 0.0
    for i, b in enumerate(blocks):
        # Buffer (i mod nb) frees when compute i-nb finishes.
        buffer_free = comp_end[i - nb] if i >= nb else 0.0
        start = max(chan_free, buffer_free)
        load_end[i] = start + b.load_cycles
        timeline.add("hbm0", f"LW:{b.label}", start, load_end[i], kind="load")
        chan_free = load_end[i]

        c_start = max(load_end[i], prev_comp)
        if first_compute is None:
            first_compute = c_start
        dur = b.compute_cycles + b.overhead(block_overhead)
        comp_end[i] = c_start + dur
        timeline.add("compute", f"C:{b.label}", c_start, comp_end[i])
        prev_comp = comp_end[i]
        compute_busy += dur
    return _finalize(
        Architecture.A2,
        timeline,
        blocks,
        prev_comp,
        compute_busy,
        first_compute or 0.0,
        block_overhead,
    )


def schedule_a3(
    blocks: list[BlockWork],
    block_overhead: int = 0,
    num_channels: int = 2,
    num_weight_buffers: int | None = None,
) -> ScheduleResult:
    """Multi-channel overlapped prefetch (Figs 4.10 / 4.11).

    Block ``i`` loads on its hinted channel (default: round-robin);
    the load may start once the previous load on that channel finished
    *and* block ``i - num_weight_buffers``'s compute released its
    weight buffer.  The paper's A3 uses two channels with one buffer
    per channel (``num_weight_buffers = num_channels``, the default);
    more buffers model deeper prefetch on the same ports, more channels
    the natural extension onto additional HBM ports.
    """
    _validate(blocks, block_overhead)
    if num_channels < 1:
        raise ValueError("num_channels must be >= 1")
    nb = num_channels if num_weight_buffers is None else num_weight_buffers
    if nb < num_channels:
        raise ValueError(
            "num_weight_buffers must be >= num_channels (each in-flight "
            f"load needs a buffer); got {nb} < {num_channels}"
        )
    timeline = Timeline()
    load_end = [0.0] * len(blocks)
    comp_end = [0.0] * len(blocks)
    chan_free = [0.0] * num_channels
    compute_busy = 0.0
    first_compute = None
    prev_comp = 0.0
    for i, b in enumerate(blocks):
        chan = b.channel_hint if b.channel_hint is not None else i % num_channels
        if not 0 <= chan < num_channels:
            raise ValueError(
                f"channel_hint must be in [0, {num_channels}); got {chan}"
            )
        buffer_free = comp_end[i - nb] if i >= nb else 0.0
        start = max(chan_free[chan], buffer_free)
        load_end[i] = start + b.load_cycles
        timeline.add(f"hbm{chan}", f"LW:{b.label}", start, load_end[i], kind="load")
        chan_free[chan] = load_end[i]

        c_start = max(load_end[i], prev_comp)
        if first_compute is None:
            first_compute = c_start
        dur = b.compute_cycles + b.overhead(block_overhead)
        comp_end[i] = c_start + dur
        timeline.add("compute", f"C:{b.label}", c_start, comp_end[i])
        prev_comp = comp_end[i]
        compute_busy += dur
    return _finalize(
        Architecture.A3,
        timeline,
        blocks,
        prev_comp,
        compute_busy,
        first_compute or 0.0,
        block_overhead,
    )


_SCHEDULERS = {
    Architecture.A1: schedule_a1,
    Architecture.A2: schedule_a2,
    Architecture.A3: schedule_a3,
}


def schedule(
    architecture: Architecture | str,
    blocks: list[BlockWork],
    block_overhead: int = 0,
    **params: int,
) -> ScheduleResult:
    """Dispatch to the scheduler for the requested architecture.

    Extra keyword ``params`` forward to the architecture's scheduler
    (A2: ``num_weight_buffers``; A3: ``num_channels`` and
    ``num_weight_buffers``); parameters a scheduler does not accept
    raise ``TypeError``, so callers with architecture-agnostic
    parameter sets must filter first (see
    ``repro.hw.program.schedule_params_for``).
    """
    arch = Architecture(architecture)
    return _SCHEDULERS[arch](blocks, block_overhead, **params)


def _validate(blocks: list[BlockWork], block_overhead: int) -> None:
    if block_overhead < 0:
        raise ValueError("block_overhead must be non-negative")
    if not blocks:
        raise ValueError("need at least one block to schedule")
