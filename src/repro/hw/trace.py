"""Execution traces for the simulator (Gantt-style event records).

Every scheduler/controller run can emit :class:`TraceEvent` intervals
tagged with the engine they ran on (an HBM channel, a PSA, the compute
fabric).  The visualizer renders these as ASCII Gantt charts mirroring
Figs 4.8-4.11 and 4.13 of the paper.
"""

from __future__ import annotations

from dataclasses import dataclass, field


#: Every lane style the renderers and exporters know how to draw.
#: ("stream" covers KV-cache rows fed from BRAM banks into a PSA.)
VALID_EVENT_KINDS = frozenset({"load", "compute", "store", "overhead", "stream"})


@dataclass(frozen=True)
class TraceEvent:
    """A half-open interval [start, end) of work on one engine."""

    engine: str
    label: str
    start: float
    end: float
    kind: str = "compute"  # one of VALID_EVENT_KINDS

    def __post_init__(self) -> None:
        if self.end < self.start:
            raise ValueError(
                f"event '{self.label}' ends ({self.end}) before it "
                f"starts ({self.start})"
            )
        if self.kind not in VALID_EVENT_KINDS:
            raise ValueError(
                f"event '{self.label}' has unknown kind '{self.kind}'; "
                f"expected one of {sorted(VALID_EVENT_KINDS)}"
            )

    @property
    def duration(self) -> float:
        return self.end - self.start

    def overlaps(self, other: "TraceEvent") -> bool:
        """True when the two intervals intersect on the time axis."""
        return self.start < other.end and other.start < self.end


@dataclass
class Timeline:
    """An append-only collection of trace events."""

    events: list[TraceEvent] = field(default_factory=list)

    def add(
        self,
        engine: str,
        label: str,
        start: float,
        end: float,
        kind: str = "compute",
    ) -> TraceEvent:
        event = TraceEvent(engine=engine, label=label, start=start, end=end, kind=kind)
        self.events.append(event)
        return event

    def extend(self, other: "Timeline") -> None:
        self.events.extend(other.events)

    @property
    def makespan(self) -> float:
        """End time of the latest event (0 when empty)."""
        return max((e.end for e in self.events), default=0.0)

    def engines(self) -> list[str]:
        """Engine names in first-appearance order."""
        seen: dict[str, None] = {}
        for e in self.events:
            seen.setdefault(e.engine, None)
        return list(seen)

    def on_engine(self, engine: str) -> list[TraceEvent]:
        """Events on one engine, sorted by start time."""
        return sorted(
            (e for e in self.events if e.engine == engine),
            key=lambda e: (e.start, e.end),
        )

    def busy_time(self, engine: str) -> float:
        """Total busy time on an engine (assumes no self-overlap)."""
        return sum(e.duration for e in self.events if e.engine == engine)

    def validate_no_engine_overlap(self) -> None:
        """Raise if any engine executes two events simultaneously."""
        for engine in self.engines():
            events = self.on_engine(engine)
            for prev, nxt in zip(events, events[1:]):
                if prev.overlaps(nxt):
                    raise ValueError(
                        f"engine '{engine}' double-booked: "
                        f"'{prev.label}' [{prev.start}, {prev.end}) overlaps "
                        f"'{nxt.label}' [{nxt.start}, {nxt.end})"
                    )
