"""Execution traces for the simulator (Gantt-style event records).

Every scheduler/controller run can emit :class:`TraceEvent` intervals
tagged with the engine they ran on (an HBM channel, a PSA, the compute
fabric).  The visualizer renders these as ASCII Gantt charts mirroring
Figs 4.8-4.11 and 4.13 of the paper.
"""

from __future__ import annotations

from dataclasses import dataclass, field


#: Every lane style the renderers and exporters know how to draw.
#: ("stream" covers KV-cache rows fed from BRAM banks into a PSA.)
VALID_EVENT_KINDS = frozenset({"load", "compute", "store", "overhead", "stream"})


@dataclass(frozen=True)
class TraceEvent:
    """A half-open interval [start, end) of work on one engine."""

    engine: str
    label: str
    start: float
    end: float
    kind: str = "compute"  # one of VALID_EVENT_KINDS

    def __post_init__(self) -> None:
        if self.end < self.start:
            raise ValueError(
                f"event '{self.label}' ends ({self.end}) before it "
                f"starts ({self.start})"
            )
        if self.kind not in VALID_EVENT_KINDS:
            raise ValueError(
                f"event '{self.label}' has unknown kind '{self.kind}'; "
                f"expected one of {sorted(VALID_EVENT_KINDS)}"
            )

    @property
    def duration(self) -> float:
        return self.end - self.start

    def overlaps(self, other: "TraceEvent") -> bool:
        """True when the two intervals intersect on the time axis."""
        return self.start < other.end and other.start < self.end


@dataclass
class Timeline:
    """An append-only collection of trace events."""

    events: list[TraceEvent] = field(default_factory=list)

    def add(
        self,
        engine: str,
        label: str,
        start: float,
        end: float,
        kind: str = "compute",
    ) -> TraceEvent:
        event = TraceEvent(engine=engine, label=label, start=start, end=end, kind=kind)
        self.events.append(event)
        return event

    def extend(self, other: "Timeline") -> None:
        self.events.extend(other.events)

    @property
    def makespan(self) -> float:
        """End time of the latest event (0 when empty)."""
        return max((e.end for e in self.events), default=0.0)

    def engines(self) -> list[str]:
        """Engine names in first-appearance order."""
        seen: dict[str, None] = {}
        for e in self.events:
            seen.setdefault(e.engine, None)
        return list(seen)

    def on_engine(self, engine: str) -> list[TraceEvent]:
        """Events on one engine, sorted by start time."""
        return sorted(
            (e for e in self.events if e.engine == engine),
            key=lambda e: (e.start, e.end),
        )

    def busy_intervals(self, engine: str) -> list[tuple[float, float]]:
        """Coalesced [start, end) busy intervals on one engine.

        Overlapping and touching events merge into one interval;
        zero-duration events occupy nothing and are dropped.  This is
        the occupancy the stall classifier and ``busy_time`` reason
        over, so a double-booked engine can never count the same cycle
        twice.
        """
        merged: list[list[float]] = []
        for e in self.on_engine(engine):
            if e.end <= e.start:
                continue
            if merged and e.start <= merged[-1][1]:
                merged[-1][1] = max(merged[-1][1], e.end)
            else:
                merged.append([e.start, e.end])
        return [(s, e) for s, e in merged]

    def busy_time(self, engine: str) -> float:
        """Total busy time on an engine (self-overlap coalesced)."""
        return sum(e - s for s, e in self.busy_intervals(engine))

    def idle_gaps(
        self, engine: str, until: float | None = None
    ) -> list[tuple[float, float]]:
        """Idle [start, end) intervals on one engine, from cycle 0.

        Includes the lead-in before the engine's first event; pass
        ``until`` (e.g. the timeline makespan) to also include the tail
        after its last event.  An engine with no (positive-duration)
        events is idle for the whole ``[0, until)`` window.
        """
        gaps: list[tuple[float, float]] = []
        cursor = 0.0
        for start, end in self.busy_intervals(engine):
            if start > cursor:
                gaps.append((cursor, start))
            cursor = end
        if until is not None and until > cursor:
            gaps.append((cursor, until))
        return gaps

    def utilization(self, engine: str) -> float:
        """Busy fraction of one engine over the timeline makespan
        (0.0 for an empty timeline)."""
        span = self.makespan
        if span <= 0:
            return 0.0
        return self.busy_time(engine) / span

    def validate_no_engine_overlap(self) -> None:
        """Raise if any engine executes two events simultaneously."""
        for engine in self.engines():
            events = self.on_engine(engine)
            for prev, nxt in zip(events, events[1:]):
                if prev.overlaps(nxt):
                    raise ValueError(
                        f"engine '{engine}' double-booked: "
                        f"'{prev.label}' [{prev.start}, {prev.end}) overlaps "
                        f"'{nxt.label}' [{nxt.start}, {nxt.end})"
                    )
