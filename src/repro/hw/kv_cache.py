"""Per-layer K/V caches for autoregressive decode on the fabric.

The naive hardware decode loop re-runs the full padded decoder stack
for every emitted token — O(max_chars) passes at ``t = hw_seq_len``.
The cached path banks each decoder layer's self-attention keys/values
as they are produced and projects the cross-attention K/V *once* from
the (fixed) encoder memory, so step ``t`` only projects and attends
for the newest position (the incremental-state reuse of streaming
Transformer ASR and of FPGA attention accelerators that keep per-layer
projections resident).

The cache lives in on-chip BRAM banks next to the PSAs; feeding the
``t`` cached rows of one head into the array costs one 512-bit flit
(16 fp32 values) per cycle, which :func:`kv_stream_cycles` accounts.
All projections run through the :mod:`repro.hw.kernels` MM1 kernel so
the functional values match the full-prefix path row for row.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.hw.kernels import Fabric, mm1
from repro.hw.nonlinear import bias_unit
from repro.hw.systolic import ceil_div
from repro.model.params import AttentionParams, TransformerParams
from repro.obs import metrics as obs_metrics


def kv_stream_cycles(t: int, d_k: int) -> int:
    """Cycles to stream ``t`` cached (d_k,) rows from a cache bank into
    the PSA: one 512-bit flit (16 fp32) per cycle."""
    if t < 0 or d_k <= 0:
        raise ValueError("t must be non-negative and d_k positive")
    if t == 0:
        return 0
    return ceil_div(t * d_k, 16)


def modeled_resident_bytes(config, s: int, t: int, bytes_per_element: int = 4) -> int:
    """Bytes a :class:`DecoderKVCache` holds at memory length ``s`` and
    prefix length ``t`` — the same arithmetic as
    :meth:`DecoderKVCache.resident_bytes`, but data-free.

    Cross-attention K/V are fixed at ``(s, d_k)`` per head; the
    self-attention banks hold ``t`` rows.  The serving scheduler uses
    this as its cache-pressure admission signal without materializing
    caches (a test pins it against a live cache).
    """
    if s < 0 or t < 0:
        raise ValueError("s and t must be non-negative")
    d_k = config.d_model // config.num_heads
    per_layer = 2 * config.num_heads * d_k * (s + t) * bytes_per_element
    return config.num_decoders * per_layer


@dataclass
class LayerKVCache:
    """Cached state of one decoder layer.

    Self-attention K/V grow one row per step; cross-attention K/V are
    projected once from the encoder memory and stay fixed.
    """

    #: Per-head (t, d_k) self-attention keys/values.
    self_k: list[np.ndarray] = field(default_factory=list)
    self_v: list[np.ndarray] = field(default_factory=list)
    #: Per-head (s, d_k) cross-attention keys/values.
    cross_k: list[np.ndarray] = field(default_factory=list)
    cross_v: list[np.ndarray] = field(default_factory=list)

    @staticmethod
    def _validate_append(bank: list[np.ndarray], head: int, row: np.ndarray, what: str) -> None:
        if not 0 <= head <= len(bank):
            raise ValueError(
                f"cannot append {what} row for head {head}: banks must be "
                f"appended in order and only {len(bank)} head bank(s) exist"
            )
        if row.ndim != 2 or row.shape[0] != 1:
            raise ValueError(
                f"{what} row must have shape (1, d_k); got {row.shape}"
            )
        if head < len(bank) and row.shape[1] != bank[head].shape[1]:
            raise ValueError(
                f"{what} row width {row.shape[1]} does not match head "
                f"{head}'s bank width {bank[head].shape[1]}"
            )

    def append_self_k(self, head: int, k_row: np.ndarray) -> None:
        """Bank this step's key row for one head (the program IR's
        ``cache_append_k`` op lands here)."""
        k_row = np.asarray(k_row)
        self._validate_append(self.self_k, head, k_row, "key")
        if head == len(self.self_k):
            self.self_k.append(k_row)
        else:
            self.self_k[head] = np.concatenate([self.self_k[head], k_row], axis=0)
        obs_metrics.registry().counter("repro.hw.kv_cache.appends").inc()

    def append_self_v(self, head: int, v_row: np.ndarray) -> None:
        """Bank this step's value row for one head."""
        v_row = np.asarray(v_row)
        self._validate_append(self.self_v, head, v_row, "value")
        if head == len(self.self_v):
            self.self_v.append(v_row)
        else:
            self.self_v[head] = np.concatenate([self.self_v[head], v_row], axis=0)
        obs_metrics.registry().counter("repro.hw.kv_cache.appends").inc()

    def append_self(self, head: int, k_row: np.ndarray, v_row: np.ndarray) -> None:
        """Bank this step's K/V row for one head."""
        self.append_self_k(head, k_row)
        self.append_self_v(head, v_row)

    def rewind(self, length: int) -> None:
        """Drop cached self-attention rows beyond ``length``."""
        self.self_k = [k[:length] for k in self.self_k]
        self.self_v = [v[:length] for v in self.self_v]


class _StackedBank:
    """Read view that presents one head's bank across a batch of
    member caches as a single stacked ``(B, t, d_k)`` array."""

    def __init__(self, members: list[LayerKVCache], which: str) -> None:
        self._members = members
        self._which = which

    def __len__(self) -> int:
        return min(len(getattr(m, self._which)) for m in self._members)

    def __getitem__(self, head: int) -> np.ndarray:
        return np.stack([getattr(m, self._which)[head] for m in self._members])


class BatchedLayerKVCache:
    """Batch adapter over one decoder layer's caches across sessions.

    The program executor is batch-agnostic: it reads
    ``caches[layer].self_k[head]`` and calls ``append_self_k(head, row)``
    without caring about leading dimensions.  This adapter makes a group
    of per-session :class:`LayerKVCache` objects look like one cache
    whose banks carry a leading batch axis — reads stack the members'
    ``(t, d_k)`` banks into ``(B, t, d_k)`` (every member must therefore
    sit at the same prefix length; ``np.stack`` enforces it), and
    appends split the executor's ``(B, 1, d_k)`` rows back out to the
    members, so the underlying per-session caches stay bit-identical to
    what individual :meth:`~repro.hw.controller.AcceleratorController.
    run_decoder_step` calls would have banked.
    """

    def __init__(self, members: list[LayerKVCache]) -> None:
        if not members:
            raise ValueError("need at least one member cache")
        self.members = list(members)

    @property
    def self_k(self) -> _StackedBank:
        return _StackedBank(self.members, "self_k")

    @property
    def self_v(self) -> _StackedBank:
        return _StackedBank(self.members, "self_v")

    @property
    def cross_k(self) -> _StackedBank:
        return _StackedBank(self.members, "cross_k")

    @property
    def cross_v(self) -> _StackedBank:
        return _StackedBank(self.members, "cross_v")

    def _split_rows(self, rows: np.ndarray, what: str) -> np.ndarray:
        rows = np.asarray(rows)
        if rows.ndim != 3 or rows.shape[0] != len(self.members) or rows.shape[1] != 1:
            raise ValueError(
                f"batched {what} rows must have shape ({len(self.members)}, 1, d_k); "
                f"got {rows.shape}"
            )
        return rows

    def append_self_k(self, head: int, k_rows: np.ndarray) -> None:
        for member, row in zip(self.members, self._split_rows(k_rows, "key")):
            member.append_self_k(head, row)

    def append_self_v(self, head: int, v_rows: np.ndarray) -> None:
        for member, row in zip(self.members, self._split_rows(v_rows, "value")):
            member.append_self_v(head, row)


def project_cross_kv(
    fabric: Fabric,
    memory: np.ndarray,
    params: AttentionParams,
    concurrent_psas: int = 1,
) -> tuple[list[np.ndarray], list[np.ndarray], int]:
    """Project the cross-attention K/V of every head from the memory.

    Runs the same MM1 + bias kernels as the full-prefix decoder, so the
    cached values are identical to what a per-step recomputation would
    produce.  Returns (keys, values, cycles); the cycles are the
    one-time prefill cost of filling the cache.
    """
    keys: list[np.ndarray] = []
    values: list[np.ndarray] = []
    cycles = 0
    for h in range(params.num_heads):
        k_res = mm1(fabric, memory, params.wk[h], concurrent_psas)
        v_res = mm1(fabric, memory, params.wv[h], concurrent_psas)
        keys.append(bias_unit(k_res.output, params.bk[h]))
        values.append(bias_unit(v_res.output, params.bv[h]))
        s, d_k = keys[-1].shape
        cycles += (
            k_res.cycles
            + v_res.cycles
            + 2 * fabric.units.bias_cycles(s, d_k)
        )
    return keys, values, cycles


class DecoderKVCache:
    """K/V caches of the whole decoder stack for one utterance.

    Built once per utterance from the (padded) encoder memory; the
    cross-attention projections happen at construction, the
    self-attention rows accumulate as :meth:`repro.hw.controller.
    AcceleratorController.run_decoder_step` feeds tokens.
    """

    def __init__(
        self,
        fabric: Fabric,
        params: TransformerParams,
        memory: np.ndarray,
        concurrent_psas: int = 1,
    ) -> None:
        memory = np.asarray(memory)
        d_model = params.config.d_model
        if memory.ndim != 2 or memory.shape[1] != d_model:
            raise ValueError(
                f"memory must be (s, {d_model}); got {memory.shape}"
            )
        self.memory_len = memory.shape[0]
        self.layers = [LayerKVCache() for _ in params.decoders]
        self.prefill_cycles = 0
        for layer, cache in zip(params.decoders, self.layers):
            cache.cross_k, cache.cross_v, cyc = project_cross_kv(
                fabric, memory, layer.cross_mha, concurrent_psas
            )
            self.prefill_cycles += cyc
        self._length = 0
        reg = obs_metrics.registry()
        if reg.enabled:
            reg.counter("repro.hw.kv_cache.prefills").inc()
            reg.gauge("repro.hw.kv_cache.resident_bytes").set(self.resident_bytes())

    @property
    def length(self) -> int:
        """Decoder positions banked so far."""
        return self._length

    def resident_bytes(self) -> int:
        """Bytes currently held in the BRAM cache banks (self + cross)."""
        total = 0
        for cache in self.layers:
            for bank in (cache.self_k, cache.self_v, cache.cross_k, cache.cross_v):
                total += sum(arr.nbytes for arr in bank)
        return total

    def advance(self) -> None:
        """Record that one position's K/V rows were banked everywhere."""
        self._length += 1
        reg = obs_metrics.registry()
        if reg.enabled:
            reg.gauge("repro.hw.kv_cache.resident_bytes").set(self.resident_bytes())

    def rewind(self, length: int) -> None:
        """Truncate all self-attention caches back to ``length``
        positions (beam search branching to a shorter shared prefix)."""
        if length < 0 or length > self._length:
            raise ValueError(
                f"cannot rewind to {length}; cache holds {self._length}"
            )
        if length == self._length:
            return
        for cache in self.layers:
            cache.rewind(length)
        self._length = length
        reg = obs_metrics.registry()
        if reg.enabled:
            reg.counter("repro.hw.kv_cache.rewinds").inc()
            reg.gauge("repro.hw.kv_cache.resident_bytes").set(self.resident_bytes())


def batch_layer_caches(caches: list[DecoderKVCache]) -> list[BatchedLayerKVCache]:
    """Zip whole-stack caches of a step group into per-layer adapters.

    Every member must sit at the same prefix length and memory length —
    a batched decode step runs one program for the whole group, so the
    group must be shape-homogeneous (the scheduler groups by ``t``).
    """
    if not caches:
        raise ValueError("need at least one cache to batch")
    first = caches[0]
    for cache in caches[1:]:
        if len(cache.layers) != len(first.layers):
            raise ValueError("caches span different decoder depths")
        if cache.length != first.length:
            raise ValueError(
                "all caches in a batched step must share the prefix length; "
                f"got {cache.length} vs {first.length}"
            )
        if cache.memory_len != first.memory_len:
            raise ValueError("caches span different memory lengths")
    return [
        BatchedLayerKVCache([cache.layers[i] for cache in caches])
        for i in range(len(first.layers))
    ]
