"""Block-level execution: attention heads, MHA, FFN, encoder, decoder.

Implements the block-wise scheduling of Fig 4.13:

* The eight attention heads run concurrently, four per SLR (or in
  ``8 / parallel_heads`` sequential waves for the Table 5.3 design
  points).
* Within a head the three MM1s share one PSA group sequentially;
  ``B(K)`` overlaps ``MM1(Q)``; the scale + softmax of the attention
  scores overlap ``MM1(V)`` (their combined latency is below one MM1).
* MM4/MM5/MM6 are spread across all eight PSAs of both SLRs.
* Add-Norm splits the residual add over both SLRs, then normalizes.

Each function returns the functional output (fp32, hardware dataflow)
and the block's compute-cycle count.

The functional bodies are façades over :mod:`repro.hw.program`: each
block lowers (once, cached) to the op-level block program and runs
through its functional executor, so the dataflow, the cycle counts, and
the Gantt trace all come from the same encoding of the schedule.  The
analytic estimators below remain the closed-form reference that the
program's ASAP makespans are pinned against.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.hw.kernels import (
    Fabric,
    mm1_cycles,
    mm2_cycles,
    mm3_cycles,
    mm4_cycles,
    mm5_cycles,
    mm6_cycles,
)
from repro.hw.nonlinear import add_norm_unit
from repro.hw.program import (
    execute_program,
    lower_attention_head_program,
    lower_decoder_layer_program,
    lower_decoder_step_layer_program,
    lower_encoder_layer_program,
    lower_ffn_program,
    lower_mha_program,
    lower_mha_step_program,
)
from repro.hw.systolic import ceil_div
from repro.model.params import (
    AttentionParams,
    DecoderLayerParams,
    EncoderLayerParams,
    FeedForwardParams,
)


@dataclass(frozen=True)
class BlockResult:
    """Functional output and compute cycles of one block."""

    output: np.ndarray
    cycles: int

    def __post_init__(self) -> None:
        if self.cycles < 0:
            raise ValueError("cycles must be non-negative")


# --------------------------------------------------------------- cycles
# Pure cycle estimators sharing the kernel formulas; the functional
# blocks below delegate to these so data-free latency sweeps (Table 5.1,
# Fig 5.2) agree exactly with the functional simulation.
def attention_head_cycles(
    fabric: Fabric,
    s_q: int,
    s_k: int,
    d_model: int,
    d_k: int,
    concurrent_psas: int = 1,
) -> int:
    """Latency of one attention head per the Fig 4.13 schedule."""
    units = fabric.units
    t_mm1_q = mm1_cycles(fabric, s_q, d_model, d_k, concurrent_psas)
    t_mm1_kv = mm1_cycles(fabric, s_k, d_model, d_k, concurrent_psas)
    sc_sm = units.scale_cycles(s_q, s_k) + units.softmax_cycles(s_q, s_k)
    return (
        t_mm1_kv  # MM1(K)
        + max(units.bias_cycles(s_k, d_k), t_mm1_q)  # B(K) || MM1(Q)
        + units.bias_cycles(s_q, d_k)  # B(Q)
        + mm2_cycles(fabric, s_q, s_k, d_k)
        + max(sc_sm, t_mm1_kv)  # Sc+Sm || MM1(V)
        + units.bias_cycles(s_k, d_k)  # B(V)
        + mm3_cycles(fabric, s_q, s_k, d_k)
    )


def mha_cycles(
    fabric: Fabric,
    s_q: int,
    s_k: int,
    num_heads: int,
    d_model: int,
    parallel_heads: int | None = None,
) -> int:
    """Latency of a full MHA block: head waves + MM4 + B_A."""
    total_psas = fabric.hardware.total_psas
    if parallel_heads is None:
        parallel_heads = min(num_heads, total_psas)
    if parallel_heads < 1 or parallel_heads > total_psas:
        raise ValueError(
            f"parallel_heads must be in [1, {total_psas}]; got {parallel_heads}"
        )
    concurrent_psas = max(total_psas // parallel_heads, 1)
    waves = ceil_div(num_heads, parallel_heads)
    d_k = d_model // num_heads
    head = attention_head_cycles(fabric, s_q, s_k, d_model, d_k, concurrent_psas)
    return (
        waves * head
        + mm4_cycles(fabric, s_q, num_heads, d_k, d_model)
        + fabric.units.bias_cycles(s_q, d_model)
    )


def ffn_cycles(fabric: Fabric, s: int, d_model: int, d_ff: int) -> int:
    """Latency of the FFN block (MM5 + bias/ReLU + MM6 + bias)."""
    units = fabric.units
    return (
        mm5_cycles(fabric, s, d_model, d_ff)
        + units.bias_cycles(s, d_ff)
        + units.relu_cycles(s, d_ff)
        + mm6_cycles(fabric, s, d_ff, d_model)
        + units.bias_cycles(s, d_model)
    )


def add_norm_cycles(fabric: Fabric, s: int, d_model: int) -> int:
    """Latency of the split-Add + Norm block."""
    add = fabric.units.bias_cycles(s, d_model // fabric.hardware.num_slrs)
    return add + fabric.units.add_norm_cycles(s, d_model)


def encoder_cycles(
    fabric: Fabric,
    s: int,
    num_heads: int,
    d_model: int,
    d_ff: int,
    parallel_heads: int | None = None,
) -> int:
    """Compute latency of one encoder layer."""
    return (
        mha_cycles(fabric, s, s, num_heads, d_model, parallel_heads)
        + add_norm_cycles(fabric, s, d_model)
        + ffn_cycles(fabric, s, d_model, d_ff)
        + add_norm_cycles(fabric, s, d_model)
    )


def decoder_cycles(
    fabric: Fabric,
    t: int,
    s: int,
    num_heads: int,
    d_model: int,
    d_ff: int,
    parallel_heads: int | None = None,
) -> tuple[int, int]:
    """Compute latency of one decoder layer as (mha_part, ffn_part).

    The split matches the Fig 4.11 load schedule: the M-MHA + cross MHA
    (with their Add-Norms) form the m-part; the FFN and its Add-Norm
    form the f-part.
    """
    mha_part = (
        mha_cycles(fabric, t, t, num_heads, d_model, parallel_heads)
        + add_norm_cycles(fabric, t, d_model)
        + mha_cycles(fabric, t, s, num_heads, d_model, parallel_heads)
        + add_norm_cycles(fabric, t, d_model)
    )
    ffn_part = ffn_cycles(fabric, t, d_model, d_ff) + add_norm_cycles(
        fabric, t, d_model
    )
    return mha_part, ffn_part


# ------------------------------------------------------ step variants
# Cycle estimators for one KV-cached decode step: a single query row
# (s_q = 1) attends over cached keys/values.  Self-attention projects
# and banks only the newest K/V row; cross-attention reuses the K/V
# projected once from the encoder memory and skips MM1(K)/MM1(V)
# entirely.  Streaming the cached rows out of their BRAM banks costs
# kv_stream_cycles per matrix (one 512-bit flit per cycle).
def attention_step_cycles(
    fabric: Fabric,
    t_keys: int,
    d_model: int,
    d_k: int,
    concurrent_psas: int = 1,
    project_kv: bool = True,
) -> int:
    """Latency of one attention head for a 1-row query over ``t_keys``
    cached keys (the Fig 4.13 schedule collapsed to s_q = 1)."""
    from repro.hw.kv_cache import kv_stream_cycles

    if t_keys <= 0:
        raise ValueError("t_keys must be positive")
    units = fabric.units
    t_mm1_q = mm1_cycles(fabric, 1, d_model, d_k, concurrent_psas)
    stream = kv_stream_cycles(t_keys, d_k)
    sc_sm = units.scale_cycles(1, t_keys) + units.softmax_cycles(1, t_keys)
    cycles = 0
    if project_kv:
        t_mm1_row = mm1_cycles(fabric, 1, d_model, d_k, concurrent_psas)
        cycles += t_mm1_row  # MM1(K row)
        cycles += max(units.bias_cycles(1, d_k), t_mm1_q)  # B(K) || MM1(Q)
    else:
        cycles += t_mm1_q  # MM1(Q) alone; K/V already banked
    cycles += units.bias_cycles(1, d_k)  # B(Q)
    cycles += stream + mm2_cycles(fabric, 1, t_keys, d_k)
    if project_kv:
        t_mm1_row = mm1_cycles(fabric, 1, d_model, d_k, concurrent_psas)
        cycles += max(sc_sm, t_mm1_row)  # Sc+Sm || MM1(V row)
        cycles += units.bias_cycles(1, d_k)  # B(V row)
    else:
        cycles += sc_sm
    cycles += stream + mm3_cycles(fabric, 1, t_keys, d_k)
    return cycles


def mha_step_cycles(
    fabric: Fabric,
    t_keys: int,
    num_heads: int,
    d_model: int,
    parallel_heads: int | None = None,
    project_kv: bool = True,
) -> int:
    """Latency of a full MHA block for one cached decode step."""
    total_psas = fabric.hardware.total_psas
    if parallel_heads is None:
        parallel_heads = min(num_heads, total_psas)
    if parallel_heads < 1 or parallel_heads > total_psas:
        raise ValueError(
            f"parallel_heads must be in [1, {total_psas}]; got {parallel_heads}"
        )
    concurrent_psas = max(total_psas // parallel_heads, 1)
    waves = ceil_div(num_heads, parallel_heads)
    d_k = d_model // num_heads
    head = attention_step_cycles(
        fabric, t_keys, d_model, d_k, concurrent_psas, project_kv
    )
    return (
        waves * head
        + mm4_cycles(fabric, 1, num_heads, d_k, d_model)
        + fabric.units.bias_cycles(1, d_model)
    )


def decoder_step_cycles(
    fabric: Fabric,
    t: int,
    s: int,
    num_heads: int,
    d_model: int,
    d_ff: int,
    parallel_heads: int | None = None,
) -> tuple[int, int]:
    """Compute latency of one decoder layer for the cached step at
    prefix length ``t`` over an ``s``-row memory, as (mha_part,
    ffn_part) — the same Fig 4.11 split as :func:`decoder_cycles`."""
    mha_part = (
        mha_step_cycles(fabric, t, num_heads, d_model, parallel_heads)
        + add_norm_cycles(fabric, 1, d_model)
        + mha_step_cycles(
            fabric, s, num_heads, d_model, parallel_heads, project_kv=False
        )
        + add_norm_cycles(fabric, 1, d_model)
    )
    ffn_part = ffn_cycles(fabric, 1, d_model, d_ff) + add_norm_cycles(
        fabric, 1, d_model
    )
    return mha_part, ffn_part


def attention_head_block(
    fabric: Fabric,
    x_q: np.ndarray,
    x_kv: np.ndarray,
    params: AttentionParams,
    head: int,
    mask: np.ndarray | None = None,
    concurrent_psas: int = 1,
) -> BlockResult:
    """One attention head on one PSA group, scheduled per Fig 4.13.

    Sequence: MM1(K); B(K) || MM1(Q); B(Q); MM2; Sc+Sm || MM1(V); B(V);
    MM3.  Overlapped stages contribute ``max`` of their latencies.
    """
    if not 0 <= head < params.num_heads:
        raise ValueError(f"head must be in [0, {params.num_heads})")
    program = lower_attention_head_program(
        fabric,
        x_q.shape[-2],
        x_kv.shape[-2],
        params.d_model,
        params.d_k,
        head=head,
        concurrent_psas=concurrent_psas,
    )
    run = execute_program(
        program,
        root=params,
        inputs={"x_q": x_q, "x_kv": x_kv, "mask": mask},
    )
    return BlockResult(
        output=run.outputs["output"],
        cycles=run.block_compute_cycles["attn_head"],
    )


def mha_block(
    fabric: Fabric,
    x_q: np.ndarray,
    x_kv: np.ndarray,
    params: AttentionParams,
    mask: np.ndarray | None = None,
    parallel_heads: int | None = None,
) -> BlockResult:
    """Full MHA: heads in parallel waves, concat, MM4 + B_A.

    ``parallel_heads`` defaults to all PSAs hosting one head each
    (8 in the paper's primary design); smaller values give each head
    ``total_psas / parallel_heads`` concurrent PSAs for its MM1s and run
    the heads in waves (Table 5.3 design points).
    """
    program = lower_mha_program(
        fabric,
        x_q.shape[-2],
        x_kv.shape[-2],
        params.num_heads,
        params.d_model,
        parallel_heads,
    )
    run = execute_program(
        program,
        root=params,
        inputs={"x_q": x_q, "x_kv": x_kv, "mask": mask},
    )
    return BlockResult(
        output=run.outputs["output"], cycles=run.block_compute_cycles["mha"]
    )


def ffn_block(
    fabric: Fabric, x: np.ndarray, params: FeedForwardParams
) -> BlockResult:
    """FFN: MM5 + B_1F + ReLU (streamed) + MM6 + B_2F."""
    program = lower_ffn_program(fabric, x.shape[-2], params.d_model, params.d_ff)
    run = execute_program(program, root=params, inputs={"x": x})
    return BlockResult(
        output=run.outputs["output"], cycles=run.block_compute_cycles["ffn"]
    )


def add_norm_block(
    fabric: Fabric,
    sublayer_out: np.ndarray,
    residual: np.ndarray,
    weight: np.ndarray,
    bias: np.ndarray,
) -> BlockResult:
    """Add-Norm: residual add split over both SLRs, then Norm."""
    out = add_norm_unit(sublayer_out, residual, weight, bias)
    s, d = sublayer_out.shape[-2:]
    return BlockResult(output=out, cycles=add_norm_cycles(fabric, s, d))


def encoder_block(
    fabric: Fabric,
    x: np.ndarray,
    params: EncoderLayerParams,
    mask: np.ndarray | None = None,
    parallel_heads: int | None = None,
) -> BlockResult:
    """One encoder layer on the fabric: MHA, Add-Norm, FFN, Add-Norm."""
    program = lower_encoder_layer_program(
        fabric,
        x.shape[-2],
        params.mha.num_heads,
        params.mha.d_model,
        params.ffn.d_ff,
        parallel_heads,
    )
    run = execute_program(program, root=params, inputs={"x": x, "mask": mask})
    return BlockResult(
        output=run.outputs["output"], cycles=run.block_compute_cycles["enc1"]
    )


@dataclass(frozen=True)
class DecoderBlockResult:
    """Decoder output with the MHA-part / FFN-part cycle split needed
    by the A3 decoder schedule (Fig 4.11)."""

    output: np.ndarray
    mha_cycles: int
    ffn_cycles: int

    @property
    def cycles(self) -> int:
        return self.mha_cycles + self.ffn_cycles


def decoder_block(
    fabric: Fabric,
    x: np.ndarray,
    memory: np.ndarray,
    params: DecoderLayerParams,
    self_mask: np.ndarray | None = None,
    memory_mask: np.ndarray | None = None,
    parallel_heads: int | None = None,
) -> DecoderBlockResult:
    """One decoder layer: M-MHA, Add-Norm, cross MHA, Add-Norm, FFN,
    Add-Norm.  ``self_mask`` must already include the look-ahead mask
    (the controller owns mask construction)."""
    program = lower_decoder_layer_program(
        fabric,
        x.shape[-2],
        memory.shape[-2],
        params.self_mha.num_heads,
        params.self_mha.d_model,
        params.ffn.d_ff,
        parallel_heads,
    )
    run = execute_program(
        program,
        root=params,
        inputs={
            "x": x,
            "memory": memory,
            "self_mask": self_mask,
            "memory_mask": memory_mask,
        },
    )
    return DecoderBlockResult(
        output=run.outputs["output"],
        mha_cycles=run.block_compute_cycles["dec1m"],
        ffn_cycles=run.block_compute_cycles["dec1f"],
    )


def _resolve_head_parallelism(
    fabric: Fabric, num_heads: int, parallel_heads: int | None
) -> int:
    """Concurrent PSAs each head gets under ``parallel_heads``."""
    from repro.hw.program import resolve_head_parallelism

    return resolve_head_parallelism(fabric, num_heads, parallel_heads)[1]


def mha_self_step_block(
    fabric: Fabric,
    x: np.ndarray,
    params: AttentionParams,
    cache,
    parallel_heads: int | None = None,
) -> BlockResult:
    """Masked self-MHA for one cached step: project and bank this
    position's K/V rows, then attend the single query row over the
    cache.  The causal mask is implicit in the cache's extent.

    ``x`` is the (1, d_model) decoder activation; ``cache`` a
    :class:`repro.hw.kv_cache.LayerKVCache` that is extended in place.
    """
    t_keys = (cache.self_k[0].shape[0] + 1) if cache.self_k else 1
    program = lower_mha_step_program(
        fabric, t_keys, params.num_heads, params.d_model, parallel_heads
    )
    run = execute_program(
        program, root=params, inputs={"x": x}, caches=[cache]
    )
    return BlockResult(
        output=run.outputs["output"],
        cycles=run.block_compute_cycles["mha_step"],
    )


def mha_cross_step_block(
    fabric: Fabric,
    x: np.ndarray,
    params: AttentionParams,
    cache,
    memory_mask: np.ndarray | None = None,
    parallel_heads: int | None = None,
) -> BlockResult:
    """Cross MHA for one cached step: the K/V projections of the
    encoder memory were banked at prefill, so only the query row is
    projected and attended over the fixed cache."""
    s_keys = cache.cross_k[0].shape[0]
    program = lower_mha_step_program(
        fabric,
        s_keys,
        params.num_heads,
        params.d_model,
        parallel_heads,
        project_kv=False,
    )
    run = execute_program(
        program,
        root=params,
        inputs={"x": x, "memory_mask": memory_mask},
        caches=[cache],
    )
    return BlockResult(
        output=run.outputs["output"],
        cycles=run.block_compute_cycles["mha_step"],
    )


def decoder_step_block(
    fabric: Fabric,
    x: np.ndarray,
    params: DecoderLayerParams,
    cache,
    memory_mask: np.ndarray | None = None,
    parallel_heads: int | None = None,
) -> DecoderBlockResult:
    """One decoder layer for one cached step: M-MHA over the growing
    self cache, Add-Norm, cross MHA over the prefilled memory cache,
    Add-Norm, FFN, Add-Norm — all on a single (1, d_model) row."""
    t_keys = (cache.self_k[0].shape[0] + 1) if cache.self_k else 1
    s_keys = cache.cross_k[0].shape[0]
    program = lower_decoder_step_layer_program(
        fabric,
        t_keys,
        s_keys,
        params.self_mha.num_heads,
        params.self_mha.d_model,
        params.ffn.d_ff,
        parallel_heads,
    )
    run = execute_program(
        program,
        root=params,
        inputs={"x": x, "memory_mask": memory_mask},
        caches=[cache],
    )
    return DecoderBlockResult(
        output=run.outputs["output"],
        mha_cycles=run.block_compute_cycles["dec1m"],
        ffn_cycles=run.block_compute_cycles["dec1f"],
    )
