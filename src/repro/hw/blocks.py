"""Block-level execution: attention heads, MHA, FFN, encoder, decoder.

Implements the block-wise scheduling of Fig 4.13:

* The eight attention heads run concurrently, four per SLR (or in
  ``8 / parallel_heads`` sequential waves for the Table 5.3 design
  points).
* Within a head the three MM1s share one PSA group sequentially;
  ``B(K)`` overlaps ``MM1(Q)``; the scale + softmax of the attention
  scores overlap ``MM1(V)`` (their combined latency is below one MM1).
* MM4/MM5/MM6 are spread across all eight PSAs of both SLRs.
* Add-Norm splits the residual add over both SLRs, then normalizes.

Each function returns the functional output (fp32, hardware dataflow)
and the block's compute-cycle count.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.hw.kernels import (
    Fabric,
    mm1,
    mm1_cycles,
    mm2,
    mm2_cycles,
    mm3,
    mm3_cycles,
    mm4,
    mm4_cycles,
    mm5,
    mm5_cycles,
    mm6,
    mm6_cycles,
)
from repro.hw.nonlinear import (
    add_norm_unit,
    bias_unit,
    relu_unit,
    scale_scores,
    softmax_unit,
)
from repro.hw.systolic import ceil_div
from repro.model.params import (
    AttentionParams,
    DecoderLayerParams,
    EncoderLayerParams,
    FeedForwardParams,
)


@dataclass(frozen=True)
class BlockResult:
    """Functional output and compute cycles of one block."""

    output: np.ndarray
    cycles: int

    def __post_init__(self) -> None:
        if self.cycles < 0:
            raise ValueError("cycles must be non-negative")


# --------------------------------------------------------------- cycles
# Pure cycle estimators sharing the kernel formulas; the functional
# blocks below delegate to these so data-free latency sweeps (Table 5.1,
# Fig 5.2) agree exactly with the functional simulation.
def attention_head_cycles(
    fabric: Fabric,
    s_q: int,
    s_k: int,
    d_model: int,
    d_k: int,
    concurrent_psas: int = 1,
) -> int:
    """Latency of one attention head per the Fig 4.13 schedule."""
    units = fabric.units
    t_mm1_q = mm1_cycles(fabric, s_q, d_model, d_k, concurrent_psas)
    t_mm1_kv = mm1_cycles(fabric, s_k, d_model, d_k, concurrent_psas)
    sc_sm = units.scale_cycles(s_q, s_k) + units.softmax_cycles(s_q, s_k)
    return (
        t_mm1_kv  # MM1(K)
        + max(units.bias_cycles(s_k, d_k), t_mm1_q)  # B(K) || MM1(Q)
        + units.bias_cycles(s_q, d_k)  # B(Q)
        + mm2_cycles(fabric, s_q, s_k, d_k)
        + max(sc_sm, t_mm1_kv)  # Sc+Sm || MM1(V)
        + units.bias_cycles(s_k, d_k)  # B(V)
        + mm3_cycles(fabric, s_q, s_k, d_k)
    )


def mha_cycles(
    fabric: Fabric,
    s_q: int,
    s_k: int,
    num_heads: int,
    d_model: int,
    parallel_heads: int | None = None,
) -> int:
    """Latency of a full MHA block: head waves + MM4 + B_A."""
    total_psas = fabric.hardware.total_psas
    if parallel_heads is None:
        parallel_heads = min(num_heads, total_psas)
    if parallel_heads < 1 or parallel_heads > total_psas:
        raise ValueError(
            f"parallel_heads must be in [1, {total_psas}]; got {parallel_heads}"
        )
    concurrent_psas = max(total_psas // parallel_heads, 1)
    waves = ceil_div(num_heads, parallel_heads)
    d_k = d_model // num_heads
    head = attention_head_cycles(fabric, s_q, s_k, d_model, d_k, concurrent_psas)
    return (
        waves * head
        + mm4_cycles(fabric, s_q, num_heads, d_k, d_model)
        + fabric.units.bias_cycles(s_q, d_model)
    )


def ffn_cycles(fabric: Fabric, s: int, d_model: int, d_ff: int) -> int:
    """Latency of the FFN block (MM5 + bias/ReLU + MM6 + bias)."""
    units = fabric.units
    return (
        mm5_cycles(fabric, s, d_model, d_ff)
        + units.bias_cycles(s, d_ff)
        + units.relu_cycles(s, d_ff)
        + mm6_cycles(fabric, s, d_ff, d_model)
        + units.bias_cycles(s, d_model)
    )


def add_norm_cycles(fabric: Fabric, s: int, d_model: int) -> int:
    """Latency of the split-Add + Norm block."""
    add = fabric.units.bias_cycles(s, d_model // fabric.hardware.num_slrs)
    return add + fabric.units.add_norm_cycles(s, d_model)


def encoder_cycles(
    fabric: Fabric,
    s: int,
    num_heads: int,
    d_model: int,
    d_ff: int,
    parallel_heads: int | None = None,
) -> int:
    """Compute latency of one encoder layer."""
    return (
        mha_cycles(fabric, s, s, num_heads, d_model, parallel_heads)
        + add_norm_cycles(fabric, s, d_model)
        + ffn_cycles(fabric, s, d_model, d_ff)
        + add_norm_cycles(fabric, s, d_model)
    )


def decoder_cycles(
    fabric: Fabric,
    t: int,
    s: int,
    num_heads: int,
    d_model: int,
    d_ff: int,
    parallel_heads: int | None = None,
) -> tuple[int, int]:
    """Compute latency of one decoder layer as (mha_part, ffn_part).

    The split matches the Fig 4.11 load schedule: the M-MHA + cross MHA
    (with their Add-Norms) form the m-part; the FFN and its Add-Norm
    form the f-part.
    """
    mha_part = (
        mha_cycles(fabric, t, t, num_heads, d_model, parallel_heads)
        + add_norm_cycles(fabric, t, d_model)
        + mha_cycles(fabric, t, s, num_heads, d_model, parallel_heads)
        + add_norm_cycles(fabric, t, d_model)
    )
    ffn_part = ffn_cycles(fabric, t, d_model, d_ff) + add_norm_cycles(
        fabric, t, d_model
    )
    return mha_part, ffn_part


# ------------------------------------------------------ step variants
# Cycle estimators for one KV-cached decode step: a single query row
# (s_q = 1) attends over cached keys/values.  Self-attention projects
# and banks only the newest K/V row; cross-attention reuses the K/V
# projected once from the encoder memory and skips MM1(K)/MM1(V)
# entirely.  Streaming the cached rows out of their BRAM banks costs
# kv_stream_cycles per matrix (one 512-bit flit per cycle).
def attention_step_cycles(
    fabric: Fabric,
    t_keys: int,
    d_model: int,
    d_k: int,
    concurrent_psas: int = 1,
    project_kv: bool = True,
) -> int:
    """Latency of one attention head for a 1-row query over ``t_keys``
    cached keys (the Fig 4.13 schedule collapsed to s_q = 1)."""
    from repro.hw.kv_cache import kv_stream_cycles

    if t_keys <= 0:
        raise ValueError("t_keys must be positive")
    units = fabric.units
    t_mm1_q = mm1_cycles(fabric, 1, d_model, d_k, concurrent_psas)
    stream = kv_stream_cycles(t_keys, d_k)
    sc_sm = units.scale_cycles(1, t_keys) + units.softmax_cycles(1, t_keys)
    cycles = 0
    if project_kv:
        t_mm1_row = mm1_cycles(fabric, 1, d_model, d_k, concurrent_psas)
        cycles += t_mm1_row  # MM1(K row)
        cycles += max(units.bias_cycles(1, d_k), t_mm1_q)  # B(K) || MM1(Q)
    else:
        cycles += t_mm1_q  # MM1(Q) alone; K/V already banked
    cycles += units.bias_cycles(1, d_k)  # B(Q)
    cycles += stream + mm2_cycles(fabric, 1, t_keys, d_k)
    if project_kv:
        t_mm1_row = mm1_cycles(fabric, 1, d_model, d_k, concurrent_psas)
        cycles += max(sc_sm, t_mm1_row)  # Sc+Sm || MM1(V row)
        cycles += units.bias_cycles(1, d_k)  # B(V row)
    else:
        cycles += sc_sm
    cycles += stream + mm3_cycles(fabric, 1, t_keys, d_k)
    return cycles


def mha_step_cycles(
    fabric: Fabric,
    t_keys: int,
    num_heads: int,
    d_model: int,
    parallel_heads: int | None = None,
    project_kv: bool = True,
) -> int:
    """Latency of a full MHA block for one cached decode step."""
    total_psas = fabric.hardware.total_psas
    if parallel_heads is None:
        parallel_heads = min(num_heads, total_psas)
    if parallel_heads < 1 or parallel_heads > total_psas:
        raise ValueError(
            f"parallel_heads must be in [1, {total_psas}]; got {parallel_heads}"
        )
    concurrent_psas = max(total_psas // parallel_heads, 1)
    waves = ceil_div(num_heads, parallel_heads)
    d_k = d_model // num_heads
    head = attention_step_cycles(
        fabric, t_keys, d_model, d_k, concurrent_psas, project_kv
    )
    return (
        waves * head
        + mm4_cycles(fabric, 1, num_heads, d_k, d_model)
        + fabric.units.bias_cycles(1, d_model)
    )


def decoder_step_cycles(
    fabric: Fabric,
    t: int,
    s: int,
    num_heads: int,
    d_model: int,
    d_ff: int,
    parallel_heads: int | None = None,
) -> tuple[int, int]:
    """Compute latency of one decoder layer for the cached step at
    prefix length ``t`` over an ``s``-row memory, as (mha_part,
    ffn_part) — the same Fig 4.11 split as :func:`decoder_cycles`."""
    mha_part = (
        mha_step_cycles(fabric, t, num_heads, d_model, parallel_heads)
        + add_norm_cycles(fabric, 1, d_model)
        + mha_step_cycles(
            fabric, s, num_heads, d_model, parallel_heads, project_kv=False
        )
        + add_norm_cycles(fabric, 1, d_model)
    )
    ffn_part = ffn_cycles(fabric, 1, d_model, d_ff) + add_norm_cycles(
        fabric, 1, d_model
    )
    return mha_part, ffn_part


def attention_head_block(
    fabric: Fabric,
    x_q: np.ndarray,
    x_kv: np.ndarray,
    params: AttentionParams,
    head: int,
    mask: np.ndarray | None = None,
    concurrent_psas: int = 1,
) -> BlockResult:
    """One attention head on one PSA group, scheduled per Fig 4.13.

    Sequence: MM1(K); B(K) || MM1(Q); B(Q); MM2; Sc+Sm || MM1(V); B(V);
    MM3.  Overlapped stages contribute ``max`` of their latencies.
    """
    if not 0 <= head < params.num_heads:
        raise ValueError(f"head must be in [0, {params.num_heads})")
    s_q = x_q.shape[0]
    s_k = x_kv.shape[0]
    d_k = params.d_k

    k_res = mm1(fabric, x_kv, params.wk[head], concurrent_psas)
    k = bias_unit(k_res.output, params.bk[head])
    q_res = mm1(fabric, x_q, params.wq[head], concurrent_psas)
    q = bias_unit(q_res.output, params.bq[head])
    scores_res = mm2(fabric, q, k)
    scaled = scale_scores(scores_res.output, d_k)
    weights = softmax_unit(scaled, mask=mask)
    v_res = mm1(fabric, x_kv, params.wv[head], concurrent_psas)
    v = bias_unit(v_res.output, params.bv[head])
    out_res = mm3(fabric, weights, v)

    cycles = attention_head_cycles(
        fabric, s_q, s_k, params.d_model, d_k, concurrent_psas
    )
    return BlockResult(output=out_res.output, cycles=cycles)


def mha_block(
    fabric: Fabric,
    x_q: np.ndarray,
    x_kv: np.ndarray,
    params: AttentionParams,
    mask: np.ndarray | None = None,
    parallel_heads: int | None = None,
) -> BlockResult:
    """Full MHA: heads in parallel waves, concat, MM4 + B_A.

    ``parallel_heads`` defaults to all PSAs hosting one head each
    (8 in the paper's primary design); smaller values give each head
    ``total_psas / parallel_heads`` concurrent PSAs for its MM1s and run
    the heads in waves (Table 5.3 design points).
    """
    total_psas = fabric.hardware.total_psas
    if parallel_heads is None:
        parallel_heads = min(params.num_heads, total_psas)
    if parallel_heads < 1 or parallel_heads > total_psas:
        raise ValueError(
            f"parallel_heads must be in [1, {total_psas}]; got {parallel_heads}"
        )
    concurrent_psas = max(total_psas // parallel_heads, 1)
    waves = ceil_div(params.num_heads, parallel_heads)

    head_results = [
        attention_head_block(
            fabric, x_q, x_kv, params, h, mask=mask, concurrent_psas=concurrent_psas
        )
        for h in range(params.num_heads)
    ]
    out_res = mm4(fabric, [r.output for r in head_results], params.wo)
    out = bias_unit(out_res.output, params.bo)
    cycles = mha_cycles(
        fabric,
        x_q.shape[0],
        x_kv.shape[0],
        params.num_heads,
        params.d_model,
        parallel_heads,
    )
    return BlockResult(output=out, cycles=cycles)


def ffn_block(
    fabric: Fabric, x: np.ndarray, params: FeedForwardParams
) -> BlockResult:
    """FFN: MM5 + B_1F + ReLU (streamed) + MM6 + B_2F."""
    s = x.shape[0]
    h_res = mm5(fabric, x, params.w1)
    hidden = relu_unit(bias_unit(h_res.output, params.b1))
    out_res = mm6(fabric, hidden, params.w2)
    out = bias_unit(out_res.output, params.b2)
    cycles = ffn_cycles(fabric, s, params.d_model, params.d_ff)
    return BlockResult(output=out, cycles=cycles)


def add_norm_block(
    fabric: Fabric,
    sublayer_out: np.ndarray,
    residual: np.ndarray,
    weight: np.ndarray,
    bias: np.ndarray,
) -> BlockResult:
    """Add-Norm: residual add split over both SLRs, then Norm."""
    out = add_norm_unit(sublayer_out, residual, weight, bias)
    s, d = sublayer_out.shape
    return BlockResult(output=out, cycles=add_norm_cycles(fabric, s, d))


def encoder_block(
    fabric: Fabric,
    x: np.ndarray,
    params: EncoderLayerParams,
    mask: np.ndarray | None = None,
    parallel_heads: int | None = None,
) -> BlockResult:
    """One encoder layer on the fabric: MHA, Add-Norm, FFN, Add-Norm."""
    mha = mha_block(fabric, x, x, params.mha, mask=mask, parallel_heads=parallel_heads)
    norm1 = add_norm_block(
        fabric, mha.output, x, params.norm1.weight, params.norm1.bias
    )
    ffn = ffn_block(fabric, norm1.output, params.ffn)
    norm2 = add_norm_block(
        fabric, ffn.output, norm1.output, params.norm2.weight, params.norm2.bias
    )
    cycles = mha.cycles + norm1.cycles + ffn.cycles + norm2.cycles
    return BlockResult(output=norm2.output, cycles=cycles)


@dataclass(frozen=True)
class DecoderBlockResult:
    """Decoder output with the MHA-part / FFN-part cycle split needed
    by the A3 decoder schedule (Fig 4.11)."""

    output: np.ndarray
    mha_cycles: int
    ffn_cycles: int

    @property
    def cycles(self) -> int:
        return self.mha_cycles + self.ffn_cycles


def decoder_block(
    fabric: Fabric,
    x: np.ndarray,
    memory: np.ndarray,
    params: DecoderLayerParams,
    self_mask: np.ndarray | None = None,
    memory_mask: np.ndarray | None = None,
    parallel_heads: int | None = None,
) -> DecoderBlockResult:
    """One decoder layer: M-MHA, Add-Norm, cross MHA, Add-Norm, FFN,
    Add-Norm.  ``self_mask`` must already include the look-ahead mask
    (the controller owns mask construction)."""
    m_mha = mha_block(
        fabric, x, x, params.self_mha, mask=self_mask, parallel_heads=parallel_heads
    )
    norm1 = add_norm_block(
        fabric, m_mha.output, x, params.norm1.weight, params.norm1.bias
    )
    cross = mha_block(
        fabric,
        norm1.output,
        memory,
        params.cross_mha,
        mask=memory_mask,
        parallel_heads=parallel_heads,
    )
    norm2 = add_norm_block(
        fabric, cross.output, norm1.output, params.norm2.weight, params.norm2.bias
    )
    ffn = ffn_block(fabric, norm2.output, params.ffn)
    norm3 = add_norm_block(
        fabric, ffn.output, norm2.output, params.norm3.weight, params.norm3.bias
    )
    mha_cycles = m_mha.cycles + norm1.cycles + cross.cycles + norm2.cycles
    ffn_cycles = ffn.cycles + norm3.cycles
    return DecoderBlockResult(
        output=norm3.output, mha_cycles=mha_cycles, ffn_cycles=ffn_cycles
    )


def _resolve_head_parallelism(
    fabric: Fabric, num_heads: int, parallel_heads: int | None
) -> int:
    """Concurrent PSAs each head gets under ``parallel_heads``."""
    total_psas = fabric.hardware.total_psas
    if parallel_heads is None:
        parallel_heads = min(num_heads, total_psas)
    if parallel_heads < 1 or parallel_heads > total_psas:
        raise ValueError(
            f"parallel_heads must be in [1, {total_psas}]; got {parallel_heads}"
        )
    return max(total_psas // parallel_heads, 1)


def mha_self_step_block(
    fabric: Fabric,
    x: np.ndarray,
    params: AttentionParams,
    cache,
    parallel_heads: int | None = None,
) -> BlockResult:
    """Masked self-MHA for one cached step: project and bank this
    position's K/V rows, then attend the single query row over the
    cache.  The causal mask is implicit in the cache's extent.

    ``x`` is the (1, d_model) decoder activation; ``cache`` a
    :class:`repro.hw.kv_cache.LayerKVCache` that is extended in place.
    """
    concurrent_psas = _resolve_head_parallelism(
        fabric, params.num_heads, parallel_heads
    )
    head_outputs: list[np.ndarray] = []
    for h in range(params.num_heads):
        k_row = bias_unit(
            mm1(fabric, x, params.wk[h], concurrent_psas).output, params.bk[h]
        )
        v_row = bias_unit(
            mm1(fabric, x, params.wv[h], concurrent_psas).output, params.bv[h]
        )
        cache.append_self(h, k_row, v_row)
        q = bias_unit(
            mm1(fabric, x, params.wq[h], concurrent_psas).output, params.bq[h]
        )
        scores = mm2(fabric, q, cache.self_k[h]).output
        weights = softmax_unit(scale_scores(scores, params.d_k))
        head_outputs.append(mm3(fabric, weights, cache.self_v[h]).output)
    out = bias_unit(mm4(fabric, head_outputs, params.wo).output, params.bo)
    t_keys = cache.self_k[0].shape[0]
    cycles = mha_step_cycles(
        fabric, t_keys, params.num_heads, params.d_model, parallel_heads
    )
    return BlockResult(output=out, cycles=cycles)


def mha_cross_step_block(
    fabric: Fabric,
    x: np.ndarray,
    params: AttentionParams,
    cache,
    memory_mask: np.ndarray | None = None,
    parallel_heads: int | None = None,
) -> BlockResult:
    """Cross MHA for one cached step: the K/V projections of the
    encoder memory were banked at prefill, so only the query row is
    projected and attended over the fixed cache."""
    concurrent_psas = _resolve_head_parallelism(
        fabric, params.num_heads, parallel_heads
    )
    head_outputs: list[np.ndarray] = []
    for h in range(params.num_heads):
        q = bias_unit(
            mm1(fabric, x, params.wq[h], concurrent_psas).output, params.bq[h]
        )
        scores = mm2(fabric, q, cache.cross_k[h]).output
        weights = softmax_unit(scale_scores(scores, params.d_k), mask=memory_mask)
        head_outputs.append(mm3(fabric, weights, cache.cross_v[h]).output)
    out = bias_unit(mm4(fabric, head_outputs, params.wo).output, params.bo)
    s_keys = cache.cross_k[0].shape[0]
    cycles = mha_step_cycles(
        fabric,
        s_keys,
        params.num_heads,
        params.d_model,
        parallel_heads,
        project_kv=False,
    )
    return BlockResult(output=out, cycles=cycles)


def decoder_step_block(
    fabric: Fabric,
    x: np.ndarray,
    params: DecoderLayerParams,
    cache,
    memory_mask: np.ndarray | None = None,
    parallel_heads: int | None = None,
) -> DecoderBlockResult:
    """One decoder layer for one cached step: M-MHA over the growing
    self cache, Add-Norm, cross MHA over the prefilled memory cache,
    Add-Norm, FFN, Add-Norm — all on a single (1, d_model) row."""
    m_mha = mha_self_step_block(
        fabric, x, params.self_mha, cache, parallel_heads=parallel_heads
    )
    norm1 = add_norm_block(
        fabric, m_mha.output, x, params.norm1.weight, params.norm1.bias
    )
    cross = mha_cross_step_block(
        fabric,
        norm1.output,
        params.cross_mha,
        cache,
        memory_mask=memory_mask,
        parallel_heads=parallel_heads,
    )
    norm2 = add_norm_block(
        fabric, cross.output, norm1.output, params.norm2.weight, params.norm2.bias
    )
    ffn = ffn_block(fabric, norm2.output, params.ffn)
    norm3 = add_norm_block(
        fabric, ffn.output, norm2.output, params.norm3.weight, params.norm3.bias
    )
    t_keys = cache.self_k[0].shape[0]
    s_keys = cache.cross_k[0].shape[0]
    step_mha, step_ffn = decoder_step_cycles(
        fabric,
        t_keys,
        s_keys,
        params.self_mha.num_heads,
        params.self_mha.d_model,
        params.ffn.d_ff,
        parallel_heads,
    )
    return DecoderBlockResult(
        output=norm3.output, mha_cycles=step_mha, ffn_cycles=step_ffn
    )
