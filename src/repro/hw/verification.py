"""Self-verification: sweep the accelerator against the golden model.

A downstream user changing the fabric (PSA dims, SLR count, precision)
needs a one-call check that the functional path still matches the
reference Transformer.  ``verify_equivalence`` runs a battery of
configurations and sequence lengths, comparing logits and encoder
memories, and returns a structured report (also exposed as
``repro-asr verify``).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.config import HardwareConfig, ModelConfig
from repro.hw.accelerator import TransformerAccelerator
from repro.model.params import init_transformer_params
from repro.model.transformer import Transformer

#: Relative/absolute tolerance for fp32 accumulation-order differences.
DEFAULT_RTOL = 2e-3
DEFAULT_ATOL = 2e-3


@dataclass(frozen=True)
class EquivalenceCase:
    """One verification configuration."""

    name: str
    model: ModelConfig
    hw_seq_len: int
    input_len: int
    token_len: int


@dataclass(frozen=True)
class EquivalenceResult:
    """Outcome of one case."""

    case: EquivalenceCase
    max_abs_error: float
    max_rel_error: float
    passed: bool


def default_cases() -> list[EquivalenceCase]:
    """A battery covering padding, head counts, and odd dimensions."""
    return [
        EquivalenceCase(
            "paper-dims-2layer",
            ModelConfig(num_encoders=2, num_decoders=2),
            hw_seq_len=16,
            input_len=10,
            token_len=4,
        ),
        EquivalenceCase(
            "no-padding",
            ModelConfig(num_encoders=1, num_decoders=1),
            hw_seq_len=8,
            input_len=8,
            token_len=8,
        ),
        EquivalenceCase(
            "heavy-padding",
            ModelConfig(num_encoders=1, num_decoders=1),
            hw_seq_len=32,
            input_len=3,
            token_len=2,
        ),
        EquivalenceCase(
            "single-head",
            ModelConfig(
                d_model=64, num_heads=1, d_ff=128,
                num_encoders=1, num_decoders=1, vocab_size=7,
            ),
            hw_seq_len=4,
            input_len=4,
            token_len=2,
        ),
        EquivalenceCase(
            "odd-dims-qi2021",
            ModelConfig(
                d_model=400, num_heads=4, d_ff=200,
                num_encoders=2, num_decoders=1, vocab_size=12,
            ),
            hw_seq_len=8,
            input_len=5,
            token_len=3,
        ),
    ]


def verify_case(
    case: EquivalenceCase,
    hardware: HardwareConfig | None = None,
    rtol: float = DEFAULT_RTOL,
    atol: float = DEFAULT_ATOL,
    seed: int = 0,
) -> EquivalenceResult:
    """Run one case: accelerator logits vs reference logits."""
    params = init_transformer_params(case.model, seed=seed)
    accel = TransformerAccelerator(
        params, hw_seq_len=case.hw_seq_len, hardware=hardware
    )
    reference = Transformer(params)
    rng = np.random.default_rng(seed + 1)
    feats = rng.standard_normal((case.input_len, case.model.d_model)).astype(
        np.float32
    )
    tokens = rng.integers(0, case.model.vocab_size, size=case.token_len)

    hw_logits = accel.forward(feats, tokens).logits.astype(np.float64)
    ref_logits = reference.forward(feats, tokens).astype(np.float64)
    abs_err = np.abs(hw_logits - ref_logits)
    denom = np.maximum(np.abs(ref_logits), 1e-6)
    max_abs = float(abs_err.max())
    max_rel = float((abs_err / denom).max())
    passed = bool(np.allclose(hw_logits, ref_logits, rtol=rtol, atol=atol))
    return EquivalenceResult(
        case=case, max_abs_error=max_abs, max_rel_error=max_rel, passed=passed
    )


def verify_equivalence(
    cases: list[EquivalenceCase] | None = None,
    hardware: HardwareConfig | None = None,
    rtol: float = DEFAULT_RTOL,
    atol: float = DEFAULT_ATOL,
) -> list[EquivalenceResult]:
    """Run the full battery; returns per-case results."""
    return [
        verify_case(case, hardware=hardware, rtol=rtol, atol=atol)
        for case in (cases or default_cases())
    ]
