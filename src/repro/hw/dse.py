"""Design-space exploration (Table 5.3 and Section 5.1.4).

Two axes are explored, exactly as in the thesis:

* **Head parallelism** — eight parallel heads with one PSA each, four
  heads with two concurrent PSAs, two with four, one with eight
  (Table 5.3).  Latency degrades slightly as head parallelism drops
  because the small MM2/MM3/softmax stages stop overlapping across
  heads.
* **PSA dimensions** — the number of unrolled rows per systolic array;
  larger arrays cut latency but blow the LUT budget (the paper settled
  on 2 x 64 after evaluating alternatives, and notes a ~2.5x DSP-bound
  headroom that LUTs prevent from being realized).
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from functools import lru_cache

from repro.config import CalibrationConfig, HardwareConfig, ModelConfig
from repro.hw.controller import LatencyModel
from repro.hw.resources import ResourceEstimate, estimate_resources
from repro.hw.scheduler import Architecture


@dataclass(frozen=True)
class DesignPoint:
    """One explored configuration and its predicted metrics."""

    parallel_heads: int
    concurrent_psas_per_head: int
    psa_rows: int
    psa_cols: int
    latency_ms: float
    resources: ResourceEstimate
    #: Op count of the lowered block program behind the latency figure.
    #: Head parallelism reshapes the dependency waves and engine
    #: placement but not the op count, so this stays constant across a
    #: sweep — a structural invariant the DSE tests pin.
    num_program_ops: int = 0

    @property
    def synthesizable(self) -> bool:
        return self.resources.fits()


def head_parallelism_sweep(
    s: int = 32,
    model: ModelConfig | None = None,
    hardware: HardwareConfig | None = None,
    calibration: CalibrationConfig | None = None,
    architecture: Architecture | str = Architecture.A3,
) -> list[DesignPoint]:
    """Reproduce Table 5.3: (8,1), (4,2), (2,4), (1,8) head/PSA splits."""
    model = model or ModelConfig()
    hardware = hardware or HardwareConfig()
    points = []
    parallel = hardware.total_psas
    while parallel >= 1:
        lm = LatencyModel(
            model=model,
            hardware=hardware,
            calibration=calibration,
            parallel_heads=parallel,
        )
        latency = lm.latency_ms(s, architecture)
        points.append(
            DesignPoint(
                parallel_heads=parallel,
                concurrent_psas_per_head=hardware.total_psas // parallel,
                psa_rows=hardware.psa_rows,
                psa_cols=hardware.psa_cols,
                latency_ms=latency,
                resources=estimate_resources(
                    hardware, seq_len=s, d_model=model.d_model, d_ff=model.d_ff,
                    num_softmax_units=model.num_heads,
                ),
                num_program_ops=lm.full_pass_program(s).num_ops,
            )
        )
        parallel //= 2
    return points


def psa_dimension_sweep(
    rows_options: tuple[int, ...] = (1, 2, 4, 8),
    s: int = 32,
    model: ModelConfig | None = None,
    hardware: HardwareConfig | None = None,
    calibration: CalibrationConfig | None = None,
    architecture: Architecture | str = Architecture.A3,
) -> list[DesignPoint]:
    """Explore PSA row unrolling: latency vs. resource pressure.

    Points that exceed the device are still reported (marked not
    synthesizable), mirroring the paper's finding that wider unrolling
    is LUT-infeasible.
    """
    model = model or ModelConfig()
    base_hw = hardware or HardwareConfig()
    points = []
    for rows in rows_options:
        if rows <= 0:
            raise ValueError("psa rows must be positive")
        hw = replace(base_hw, psa_rows=rows)
        lm = LatencyModel(model=model, hardware=hw, calibration=calibration)
        points.append(
            DesignPoint(
                parallel_heads=hw.total_psas,
                concurrent_psas_per_head=1,
                psa_rows=rows,
                psa_cols=hw.psa_cols,
                latency_ms=lm.latency_ms(s, architecture),
                resources=estimate_resources(
                    hw, seq_len=s, d_model=model.d_model, d_ff=model.d_ff,
                    num_softmax_units=model.num_heads,
                ),
                num_program_ops=lm.full_pass_program(s).num_ops,
            )
        )
    return points


def psa_grid_sweep(
    rows_options: tuple[int, ...] = (1, 2, 4, 8),
    cols_options: tuple[int, ...] = (16, 32, 64, 128),
    s: int = 32,
    model: ModelConfig | None = None,
    hardware: HardwareConfig | None = None,
    calibration: CalibrationConfig | None = None,
    architecture: Architecture | str = Architecture.A3,
) -> list[DesignPoint]:
    """Full 2-D PSA dimension exploration (Section 5.1.4: "we have
    experimented with various dimensions of the PSA block with
    different unroll factors")."""
    model = model or ModelConfig()
    base_hw = hardware or HardwareConfig()
    points = []
    for rows in rows_options:
        for cols in cols_options:
            if rows <= 0 or cols <= 0:
                raise ValueError("PSA dims must be positive")
            hw = replace(base_hw, psa_rows=rows, psa_cols=cols)
            lm = LatencyModel(model=model, hardware=hw, calibration=calibration)
            points.append(
                DesignPoint(
                    parallel_heads=hw.total_psas,
                    concurrent_psas_per_head=1,
                    psa_rows=rows,
                    psa_cols=cols,
                    latency_ms=lm.latency_ms(s, architecture),
                    resources=estimate_resources(
                        hw, seq_len=s, d_model=model.d_model, d_ff=model.d_ff,
                        num_softmax_units=model.num_heads,
                    ),
                    num_program_ops=lm.full_pass_program(s).num_ops,
                )
            )
    return points


def pareto_frontier(points: list[DesignPoint]) -> list[DesignPoint]:
    """Latency/LUT Pareto-optimal synthesizable points, by latency.

    A point is dominated if another synthesizable point is at least as
    good on both axes and strictly better on one.
    """
    feasible = [p for p in points if p.synthesizable]
    frontier = []
    for p in feasible:
        dominated = any(
            (q.latency_ms <= p.latency_ms and q.resources.lut <= p.resources.lut)
            and (q.latency_ms < p.latency_ms or q.resources.lut < p.resources.lut)
            for q in feasible
        )
        if not dominated:
            frontier.append(p)
    return sorted(frontier, key=lambda p: p.latency_ms)


def best_synthesizable(points: list[DesignPoint]) -> DesignPoint:
    """Lowest-latency point that fits the device."""
    feasible = [p for p in points if p.synthesizable]
    if not feasible:
        raise ValueError("no synthesizable design point in the sweep")
    return min(feasible, key=lambda p: p.latency_ms)


# --------------------------------------------------- A4 pass synthesis
@dataclass(frozen=True)
class A4Result:
    """The winning pass pipeline over A3 and its exact cycle evidence.

    "A4" is not a fourth hand-written architecture: it is whatever the
    optimizer found — an A3 schedule rewritten by the pass pipeline that
    minimized exact simulated cycles over the searched space.
    """

    s: int
    architecture: str
    pipeline: object  # PassPipeline (typed loosely to avoid an import cycle)
    baseline_cycles: int
    optimized_cycles: int
    #: PSA-lane stall attribution (cause -> cycles) before/after, from
    #: ``hw.introspect.classify_stalls`` — the evidence that the win
    #: comes out of ``load_starved``/``channel_contention``.
    psa_stalls_before: dict[str, float]
    psa_stalls_after: dict[str, float]
    report: object  # PipelineReport for the winning pipeline
    program: object  # optimized BlockProgram
    baseline_program: object
    candidates_tried: int

    @property
    def cycles_saved(self) -> int:
        return self.baseline_cycles - self.optimized_cycles

    @property
    def improvement_pct(self) -> float:
        if self.baseline_cycles == 0:
            return 0.0
        return 100.0 * self.cycles_saved / self.baseline_cycles

    def as_dict(self) -> dict:
        """JSON-ready report (programs omitted) — the artifact behind
        ``repro-asr optimize`` and the CI pass-report upload."""
        return {
            "s": self.s,
            "architecture": self.architecture,
            "pipeline": list(self.pipeline.names),
            "candidates_tried": self.candidates_tried,
            "baseline_cycles": self.baseline_cycles,
            "optimized_cycles": self.optimized_cycles,
            "cycles_saved": self.cycles_saved,
            "improvement_pct": self.improvement_pct,
            "psa_stalls_before": dict(self.psa_stalls_before),
            "psa_stalls_after": dict(self.psa_stalls_after),
            "report": self.report.as_dict(),
        }


def a4_candidate_pipelines(architecture: str = "A3") -> list:
    """The bounded pipeline grid :func:`synthesize_a4` searches: every
    combination of split depth x coalescing x prefetch depth x
    reordering over :func:`repro.hw.passes.default_pipeline`."""
    from repro.hw.passes import default_pipeline

    return [
        default_pipeline(
            split_limit=split_limit,
            coalesce=coalesce,
            num_weight_buffers=num_weight_buffers,
            reorder=reorder,
            architecture=architecture,
        )
        for split_limit in (0, 1, 2)
        for coalesce in (False, True)
        for num_weight_buffers in (None, 4)
        for reorder in (False, True)
    ]


@lru_cache(maxsize=8)
def synthesize_a4(
    model: ModelConfig | None = None,
    hardware: HardwareConfig | None = None,
    calibration: CalibrationConfig | None = None,
    s: int = 32,
    t: int | None = None,
    parallel_heads: int | None = None,
    architecture: str = "A3",
) -> A4Result:
    """Search the pass/parameter space for the cheapest schedule of the
    full prefill pass and call the winner "A4".

    Every candidate pipeline is semantics-preserving by construction
    (the passes are individually verified bit-identical); the search
    therefore only has to compare exact simulated cycles.  The winner
    must *strictly* beat the untransformed A3 schedule — if nothing
    does (e.g. a degenerate configuration with no exposed stalls), a
    ``ValueError`` is raised, mirroring :func:`best_synthesizable`.

    Cached: bench scenarios call this once per process and re-read the
    result on every repeat.
    """
    from repro.hw.introspect import classify_stalls
    from repro.hw.kernels import Fabric
    from repro.hw.program import lower_full_pass, schedule_program

    model = model or ModelConfig()
    hardware = hardware or HardwareConfig()
    calibration = calibration or CalibrationConfig()
    fabric = Fabric(hardware, calibration)
    overhead = calibration.block_overhead_cycles
    base = lower_full_pass(model, fabric, s, t, parallel_heads)
    baseline_cycles = schedule_program(base, architecture, overhead).total_cycles

    best_pipeline = None
    best_cycles = baseline_cycles
    candidates = a4_candidate_pipelines(architecture)
    for pipeline in candidates:
        optimized = pipeline.apply_program(base)
        cycles = schedule_program(optimized, architecture, overhead).total_cycles
        # Strictly better wins; on a tie, prefer the shorter pipeline
        # (deterministic because the grid order is fixed).
        if cycles < best_cycles or (
            best_pipeline is not None
            and cycles == best_cycles
            and len(pipeline.passes) < len(best_pipeline.passes)
        ):
            best_pipeline = pipeline
            best_cycles = cycles
    if best_pipeline is None:
        raise ValueError(
            f"no candidate pipeline strictly improves on {architecture} "
            f"at s={s} ({baseline_cycles} cycles)"
        )

    program, report = best_pipeline.apply(base, collect_stalls=False)
    stalls_before = classify_stalls(base, architecture, overhead).totals(".psa")
    stalls_after = classify_stalls(program, architecture, overhead).totals(".psa")
    return A4Result(
        s=s,
        architecture=architecture,
        pipeline=best_pipeline,
        baseline_cycles=baseline_cycles,
        optimized_cycles=best_cycles,
        psa_stalls_before=stalls_before,
        psa_stalls_after=stalls_after,
        report=report,
        program=program,
        baseline_program=base,
        candidates_tried=len(candidates),
    )
