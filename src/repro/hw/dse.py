"""Design-space exploration (Table 5.3 and Section 5.1.4).

Two axes are explored, exactly as in the thesis:

* **Head parallelism** — eight parallel heads with one PSA each, four
  heads with two concurrent PSAs, two with four, one with eight
  (Table 5.3).  Latency degrades slightly as head parallelism drops
  because the small MM2/MM3/softmax stages stop overlapping across
  heads.
* **PSA dimensions** — the number of unrolled rows per systolic array;
  larger arrays cut latency but blow the LUT budget (the paper settled
  on 2 x 64 after evaluating alternatives, and notes a ~2.5x DSP-bound
  headroom that LUTs prevent from being realized).
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.config import CalibrationConfig, HardwareConfig, ModelConfig
from repro.hw.controller import LatencyModel
from repro.hw.resources import ResourceEstimate, estimate_resources
from repro.hw.scheduler import Architecture


@dataclass(frozen=True)
class DesignPoint:
    """One explored configuration and its predicted metrics."""

    parallel_heads: int
    concurrent_psas_per_head: int
    psa_rows: int
    psa_cols: int
    latency_ms: float
    resources: ResourceEstimate
    #: Op count of the lowered block program behind the latency figure.
    #: Head parallelism reshapes the dependency waves and engine
    #: placement but not the op count, so this stays constant across a
    #: sweep — a structural invariant the DSE tests pin.
    num_program_ops: int = 0

    @property
    def synthesizable(self) -> bool:
        return self.resources.fits()


def head_parallelism_sweep(
    s: int = 32,
    model: ModelConfig | None = None,
    hardware: HardwareConfig | None = None,
    calibration: CalibrationConfig | None = None,
    architecture: Architecture | str = Architecture.A3,
) -> list[DesignPoint]:
    """Reproduce Table 5.3: (8,1), (4,2), (2,4), (1,8) head/PSA splits."""
    model = model or ModelConfig()
    hardware = hardware or HardwareConfig()
    points = []
    parallel = hardware.total_psas
    while parallel >= 1:
        lm = LatencyModel(
            model=model,
            hardware=hardware,
            calibration=calibration,
            parallel_heads=parallel,
        )
        latency = lm.latency_ms(s, architecture)
        points.append(
            DesignPoint(
                parallel_heads=parallel,
                concurrent_psas_per_head=hardware.total_psas // parallel,
                psa_rows=hardware.psa_rows,
                psa_cols=hardware.psa_cols,
                latency_ms=latency,
                resources=estimate_resources(
                    hardware, seq_len=s, d_model=model.d_model, d_ff=model.d_ff,
                    num_softmax_units=model.num_heads,
                ),
                num_program_ops=lm.full_pass_program(s).num_ops,
            )
        )
        parallel //= 2
    return points


def psa_dimension_sweep(
    rows_options: tuple[int, ...] = (1, 2, 4, 8),
    s: int = 32,
    model: ModelConfig | None = None,
    hardware: HardwareConfig | None = None,
    calibration: CalibrationConfig | None = None,
    architecture: Architecture | str = Architecture.A3,
) -> list[DesignPoint]:
    """Explore PSA row unrolling: latency vs. resource pressure.

    Points that exceed the device are still reported (marked not
    synthesizable), mirroring the paper's finding that wider unrolling
    is LUT-infeasible.
    """
    model = model or ModelConfig()
    base_hw = hardware or HardwareConfig()
    points = []
    for rows in rows_options:
        if rows <= 0:
            raise ValueError("psa rows must be positive")
        hw = replace(base_hw, psa_rows=rows)
        lm = LatencyModel(model=model, hardware=hw, calibration=calibration)
        points.append(
            DesignPoint(
                parallel_heads=hw.total_psas,
                concurrent_psas_per_head=1,
                psa_rows=rows,
                psa_cols=hw.psa_cols,
                latency_ms=lm.latency_ms(s, architecture),
                resources=estimate_resources(
                    hw, seq_len=s, d_model=model.d_model, d_ff=model.d_ff,
                    num_softmax_units=model.num_heads,
                ),
                num_program_ops=lm.full_pass_program(s).num_ops,
            )
        )
    return points


def psa_grid_sweep(
    rows_options: tuple[int, ...] = (1, 2, 4, 8),
    cols_options: tuple[int, ...] = (16, 32, 64, 128),
    s: int = 32,
    model: ModelConfig | None = None,
    hardware: HardwareConfig | None = None,
    calibration: CalibrationConfig | None = None,
    architecture: Architecture | str = Architecture.A3,
) -> list[DesignPoint]:
    """Full 2-D PSA dimension exploration (Section 5.1.4: "we have
    experimented with various dimensions of the PSA block with
    different unroll factors")."""
    model = model or ModelConfig()
    base_hw = hardware or HardwareConfig()
    points = []
    for rows in rows_options:
        for cols in cols_options:
            if rows <= 0 or cols <= 0:
                raise ValueError("PSA dims must be positive")
            hw = replace(base_hw, psa_rows=rows, psa_cols=cols)
            lm = LatencyModel(model=model, hardware=hw, calibration=calibration)
            points.append(
                DesignPoint(
                    parallel_heads=hw.total_psas,
                    concurrent_psas_per_head=1,
                    psa_rows=rows,
                    psa_cols=cols,
                    latency_ms=lm.latency_ms(s, architecture),
                    resources=estimate_resources(
                        hw, seq_len=s, d_model=model.d_model, d_ff=model.d_ff,
                        num_softmax_units=model.num_heads,
                    ),
                    num_program_ops=lm.full_pass_program(s).num_ops,
                )
            )
    return points


def pareto_frontier(points: list[DesignPoint]) -> list[DesignPoint]:
    """Latency/LUT Pareto-optimal synthesizable points, by latency.

    A point is dominated if another synthesizable point is at least as
    good on both axes and strictly better on one.
    """
    feasible = [p for p in points if p.synthesizable]
    frontier = []
    for p in feasible:
        dominated = any(
            (q.latency_ms <= p.latency_ms and q.resources.lut <= p.resources.lut)
            and (q.latency_ms < p.latency_ms or q.resources.lut < p.resources.lut)
            for q in feasible
        )
        if not dominated:
            frontier.append(p)
    return sorted(frontier, key=lambda p: p.latency_ms)


def best_synthesizable(points: list[DesignPoint]) -> DesignPoint:
    """Lowest-latency point that fits the device."""
    feasible = [p for p in points if p.synthesizable]
    if not feasible:
        raise ValueError("no synthesizable design point in the sweep")
    return min(feasible, key=lambda p: p.latency_ms)
