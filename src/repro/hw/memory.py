"""Memory-system models: HBM weight streaming, PCIe host transfers,
BRAM capacity accounting (Sections 2.2.4, 4.1, 4.5, 5.1.6).

The host writes weights/inputs into HBM over PCIe Gen3 x16; each SLR
kernel then burst-reads weight panels from its HBM channels through
M-AXI.  Architecture A3 overlaps loads on two channels per kernel to
hide the communication latency.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.config import CalibrationConfig, HardwareConfig
from repro.model.params import (
    AttentionParams,
    DecoderLayerParams,
    EncoderLayerParams,
    FeedForwardParams,
    LayerNormParams,
)


@dataclass(frozen=True)
class HbmModel:
    """Sustained-bandwidth model of HBM weight streaming."""

    hardware: HardwareConfig
    calibration: CalibrationConfig

    def channel_bytes_per_cycle(self) -> float:
        """Effective bytes one HBM channel delivers per fabric cycle."""
        hw = self.hardware
        bytes_per_second = hw.hbm_channel_gbps * 1e9
        return bytes_per_second / (hw.clock_mhz * 1e6)

    def transfer_cycles(self, num_bytes: int, channels: int = 1) -> int:
        """Cycles to stream ``num_bytes`` over ``channels`` channels."""
        if num_bytes < 0:
            raise ValueError("num_bytes must be non-negative")
        if channels < 1:
            raise ValueError("channels must be >= 1")
        if num_bytes == 0:
            return 0
        raw = num_bytes / (channels * self.channel_bytes_per_cycle())
        return int(round(raw * self.calibration.load_efficiency))


@dataclass(frozen=True)
class PcieModel:
    """Host <-> device transfer model (PCIe Gen3 x16)."""

    hardware: HardwareConfig

    def transfer_seconds(self, num_bytes: int) -> float:
        if num_bytes < 0:
            raise ValueError("num_bytes must be non-negative")
        return num_bytes / (self.hardware.pcie_gbps * 1e9)

    def transfer_cycles(self, num_bytes: int) -> int:
        """Same transfer expressed in fabric cycles."""
        seconds = self.transfer_seconds(num_bytes)
        return int(round(seconds * self.hardware.clock_mhz * 1e6))


# -------------------------------------------------------------- weights
def attention_weight_elements(params: AttentionParams) -> int:
    """Float elements of one MHA block's weights (Q/K/V/A + biases)."""
    return params.num_elements


def ffn_weight_elements(params: FeedForwardParams) -> int:
    return params.num_elements


def layernorm_weight_elements(params: LayerNormParams) -> int:
    return params.num_elements


def encoder_load_bytes(layer: EncoderLayerParams, bytes_per_element: int = 4) -> int:
    """Bytes streamed from HBM for one encoder's weights."""
    return layer.num_elements * bytes_per_element


def decoder_mha_load_bytes(
    layer: DecoderLayerParams, bytes_per_element: int = 4
) -> int:
    """Bytes of the decoder's combined M-MHA + MHA weights (the
    ``LWi_m`` sub-load of Fig 4.11)."""
    elements = (
        layer.self_mha.num_elements
        + layer.norm1.num_elements
        + layer.cross_mha.num_elements
        + layer.norm2.num_elements
    )
    return elements * bytes_per_element


def decoder_ffn_load_bytes(
    layer: DecoderLayerParams, bytes_per_element: int = 4
) -> int:
    """Bytes of the decoder's FFN weights (the ``LWi_f`` sub-load)."""
    return (layer.ffn.num_elements + layer.norm3.num_elements) * bytes_per_element


def decoder_load_bytes(layer: DecoderLayerParams, bytes_per_element: int = 4) -> int:
    """Total bytes streamed for one decoder's weights."""
    return decoder_mha_load_bytes(layer, bytes_per_element) + decoder_ffn_load_bytes(
        layer, bytes_per_element
    )


# ---------------------------------------------------- analytic weights
# Byte counts derived from the model configuration alone, so latency
# sweeps never need instantiated weights.
def _attention_elements(cfg) -> int:
    h, d_model, d_k = cfg.num_heads, cfg.d_model, cfg.d_k
    return h * (3 * d_model * d_k + 3 * d_k) + d_model * d_model + d_model


def _ffn_elements(cfg) -> int:
    return 2 * cfg.d_model * cfg.d_ff + cfg.d_ff + cfg.d_model


def _norm_elements(cfg) -> int:
    return 2 * cfg.d_model


def encoder_weight_bytes(cfg, bytes_per_element: int = 4) -> int:
    """Bytes of one encoder layer's weights (MHA + 2 LN + FFN)."""
    return (
        _attention_elements(cfg) + 2 * _norm_elements(cfg) + _ffn_elements(cfg)
    ) * bytes_per_element


def encoder_mha_weight_bytes(cfg, bytes_per_element: int = 4) -> int:
    """Bytes of one encoder's MHA + Norm1 weights — the attention-side
    sub-bundle a load-staging pass can fetch ahead of the FFN panel
    (the encoder analogue of the decoder's ``LWi_m``)."""
    return (_attention_elements(cfg) + _norm_elements(cfg)) * bytes_per_element


def encoder_ffn_weight_bytes(cfg, bytes_per_element: int = 4) -> int:
    """Bytes of one encoder's FFN + Norm2 weights (the ``LWi_f``
    analogue); always ``encoder_weight_bytes - encoder_mha_weight_bytes``."""
    return (_ffn_elements(cfg) + _norm_elements(cfg)) * bytes_per_element


def decoder_mha_weight_bytes(cfg, bytes_per_element: int = 4) -> int:
    """Bytes of one decoder's M-MHA + cross-MHA weights (``LWi_m``)."""
    return (2 * _attention_elements(cfg) + 2 * _norm_elements(cfg)) * bytes_per_element


def decoder_ffn_weight_bytes(cfg, bytes_per_element: int = 4) -> int:
    """Bytes of one decoder's FFN weights (``LWi_f``)."""
    return (_ffn_elements(cfg) + _norm_elements(cfg)) * bytes_per_element


def decoder_weight_bytes(cfg, bytes_per_element: int = 4) -> int:
    return decoder_mha_weight_bytes(cfg, bytes_per_element) + decoder_ffn_weight_bytes(
        cfg, bytes_per_element
    )


@dataclass(frozen=True)
class BramModel:
    """BRAM_18K capacity accounting.

    One BRAM_18K block holds 18 Kib = 2.25 KiB.  The simulator checks
    that the double-buffered weight panels plus activation buffers fit
    the device; the paper's design streams weight *panels* (not whole
    encoder layers) so the working set stays modest.
    """

    hardware: HardwareConfig

    BYTES_PER_BRAM18K = 18 * 1024 // 8

    def blocks_for_bytes(self, num_bytes: int) -> int:
        if num_bytes < 0:
            raise ValueError("num_bytes must be non-negative")
        return -(-num_bytes // self.BYTES_PER_BRAM18K)

    def capacity_bytes(self) -> int:
        return self.hardware.resources["BRAM_18K"] * self.BYTES_PER_BRAM18K

    def check_fits(self, num_bytes: int, what: str = "buffer") -> None:
        if num_bytes > self.capacity_bytes():
            raise ValueError(
                f"{what} needs {num_bytes} bytes but the device holds "
                f"only {self.capacity_bytes()} bytes of BRAM"
            )
