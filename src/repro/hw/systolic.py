"""Partially unrolled systolic array (PSA) model — Section 4.4.

The accelerator's only compute primitive is a ``rows x cols`` (2 x 64 in
the paper) systolic array of MAC processing elements.  A full ``l x n``
array would produce an entire product matrix in Theta(m) time; the
*partially unrolled* variant computes ``rows`` product rows per pass,
trading parallelism for area (Algorithm 1 of the thesis).

Two execution models are provided:

* :meth:`SystolicArray.simulate_exact` — a literal cycle-stepped
  emulation of the PE grid (wavefront dataflow), used by the test suite
  to pin the vectorized model to the hardware semantics.
* :meth:`SystolicArray.matmul` — a fast vectorized functional model
  producing identical results, used by the full-size simulator.

Cycle counting lives in :meth:`SystolicArray.pass_cycles`; calibration
multipliers are applied one level up, in :mod:`repro.hw.kernels`.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.model.ops import MODEL_DTYPE


def ceil_div(a: int, b: int) -> int:
    """Ceiling division for non-negative ints."""
    if b <= 0:
        raise ValueError("divisor must be positive")
    if a < 0:
        raise ValueError("dividend must be non-negative")
    return -(-a // b)


@dataclass(frozen=True)
class SystolicArray:
    """A ``rows x cols`` grid of multiply-accumulate PEs."""

    rows: int = 2
    cols: int = 64

    def __post_init__(self) -> None:
        if self.rows <= 0 or self.cols <= 0:
            raise ValueError("rows and cols must be positive")

    # ----------------------------------------------------------- cycles
    def pass_cycles(self, l: int, m: int, n: int) -> int:
        """Structural cycles to compute an (l x m) @ (m x n) product.

        The array renders ``rows`` product rows and ``cols`` product
        columns per pass; each pass streams the ``m`` inner elements
        plus a (rows + cols) pipeline fill/drain.
        """
        if min(l, m, n) <= 0:
            raise ValueError("matrix dimensions must be positive")
        passes = ceil_div(l, self.rows) * ceil_div(n, self.cols)
        return passes * (m + self.rows + self.cols)

    # ------------------------------------------------------- functional
    def matmul(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        """Functional product in model precision (fp32 accumulate).

        The systolic array accumulates along ``k`` in order, which is
        exactly NumPy's contraction order for a single fp32 matmul, so
        the vectorized form is bit-identical to the exact emulation for
        the same dtype.
        """
        a = np.asarray(a, dtype=MODEL_DTYPE)
        b = np.asarray(b, dtype=MODEL_DTYPE)
        if a.ndim != 2 or b.ndim != 2:
            raise ValueError("operands must be 2-D")
        if a.shape[1] != b.shape[0]:
            raise ValueError(
                f"inner dimensions differ: {a.shape} @ {b.shape}"
            )
        return a @ b

    def simulate_exact(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        """Cycle-stepped emulation of the PE wavefront (slow; tests only).

        Implements the register-transfer behaviour of Algorithm 1: the
        ``a`` operands flow left-to-right across columns, the ``b``
        operands top-to-bottom across rows, and every PE performs one
        MAC per cycle into its ``c`` accumulator.  Output rows are
        produced ``rows`` at a time; output columns ``cols`` at a time.
        """
        a = np.asarray(a, dtype=np.float64)
        b = np.asarray(b, dtype=np.float64)
        if a.ndim != 2 or b.ndim != 2 or a.shape[1] != b.shape[0]:
            raise ValueError("bad operand shapes for matmul")
        l, m = a.shape
        _, n = b.shape
        out = np.zeros((l, n), dtype=np.float64)
        for i0 in range(0, l, self.rows):
            for j0 in range(0, n, self.cols):
                rows = min(self.rows, l - i0)
                cols = min(self.cols, n - j0)
                self._pass_exact(
                    a[i0 : i0 + rows],
                    b[:, j0 : j0 + cols],
                    out[i0 : i0 + rows, j0 : j0 + cols],
                )
        return out

    def _pass_exact(self, a: np.ndarray, b: np.ndarray, out: np.ndarray) -> None:
        """One wavefront pass over a (rows x m) x (m x cols) tile."""
        rows, m = a.shape
        _, cols = b.shape
        # a_reg[i][j]: the `a` operand currently held by PE (i, j);
        # b_reg[i][j]: the `b` operand. Skewed injection: PE (i, j)
        # consumes a[i, k] and b[k, j] at cycle k + i + j.
        acc = np.zeros((rows, cols), dtype=np.float64)
        total_cycles = m + rows + cols  # streaming + fill/drain
        for cycle in range(total_cycles):
            for i in range(rows):
                for j in range(cols):
                    k = cycle - i - j
                    if 0 <= k < m:
                        acc[i, j] += a[i, k] * b[k, j]
        out[...] = acc

    # ------------------------------------------------------- resources
    @property
    def num_pes(self) -> int:
        """Multiply-accumulate processing elements in the grid."""
        return self.rows * self.cols

    def unroll_factor(self, full_rows: int) -> float:
        """Latency multiplier vs. a fully unrolled ``full_rows x cols``
        array (the paper quotes ~16x for 2 rows vs. a 32-row array)."""
        if full_rows <= 0:
            raise ValueError("full_rows must be positive")
        return ceil_div(full_rows, self.rows) / 1.0
