"""Public facade of the accelerator: padding, masking, embedding, and
the host-visible run/transcribe API (the role of the OpenCL host code
in Section 2.2.7).

The synthesized hardware handles a *fixed* sequence length ``s``;
shorter inputs are zero-padded up to ``s`` and masked (Section 5.1.5).
The facade owns that padding, the look-ahead/padding masks, the decoder
token embedding and the final output projection + softmax, then hands
(s x d_model) matrices to the :class:`AcceleratorController`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.config import CalibrationConfig, HardwareConfig
from repro.hw.controller import (
    AcceleratorController,
    ControllerRun,
    LatencyModel,
    LatencyReport,
)
from repro.hw.scheduler import Architecture
from repro.model.masks import causal_mask, combine_masks
from repro.model.ops import MODEL_DTYPE, linear, log_softmax
from repro.model.params import TransformerParams
from repro.obs import spans as obs_spans


@dataclass(frozen=True)
class AcceleratorOutput:
    """Result of one accelerated forward pass."""

    logits: np.ndarray
    memory: np.ndarray
    report: LatencyReport


class TransformerAccelerator:
    """Host-side view of the FPGA accelerator.

    Parameters
    ----------
    params:
        Trained (or randomly initialized) Transformer weights.
    hw_seq_len:
        The fixed sequence length the hardware was "synthesized" for
        (the paper evaluates 4, 8, 16 and 32).  Inputs longer than this
        are rejected; shorter inputs are padded and masked.
    architecture:
        Default load/compute overlap architecture (A1, A2 or A3).
    parallel_heads:
        Attention heads processed concurrently (Table 5.3); default all.
    """

    def __init__(
        self,
        params: TransformerParams,
        hw_seq_len: int = 32,
        architecture: Architecture | str = Architecture.A3,
        hardware: HardwareConfig | None = None,
        calibration: CalibrationConfig | None = None,
        parallel_heads: int | None = None,
    ) -> None:
        if hw_seq_len <= 0:
            raise ValueError("hw_seq_len must be positive")
        self.params = params
        self.hw_seq_len = hw_seq_len
        self.architecture = Architecture(architecture)
        self.controller = AcceleratorController(
            params,
            hardware=hardware,
            calibration=calibration,
            parallel_heads=parallel_heads,
        )

    @property
    def config(self):
        return self.params.config

    @property
    def latency_model(self) -> LatencyModel:
        return self.controller.latency_model

    # -------------------------------------------------------- plumbing
    def _pad_rows(self, x: np.ndarray) -> np.ndarray:
        """Zero-pad an (n, d_model) matrix to (hw_seq_len, d_model)."""
        x = np.asarray(x, dtype=MODEL_DTYPE)
        if x.ndim != 2 or x.shape[1] != self.config.d_model:
            raise ValueError(
                f"input must be (n, {self.config.d_model}); got {x.shape}"
            )
        n = x.shape[0]
        if n > self.hw_seq_len:
            raise ValueError(
                f"sequence length {n} exceeds the hardware length "
                f"{self.hw_seq_len}"
            )
        if n == self.hw_seq_len:
            return x
        padded = np.zeros((self.hw_seq_len, x.shape[1]), dtype=MODEL_DTYPE)
        padded[:n] = x
        return padded

    def _key_mask(self, valid: int) -> np.ndarray:
        """(1, S) broadcastable key-padding mask."""
        return (np.arange(self.hw_seq_len) < valid)[None, :]

    def embed_tokens(self, tokens: np.ndarray) -> np.ndarray:
        """Decoder-input embedding lookup, scaled by sqrt(d_model)."""
        t = np.asarray(tokens, dtype=np.int64)
        if t.ndim != 1:
            raise ValueError("tokens must be a 1-D index array")
        if t.size == 0:
            raise ValueError("tokens must be non-empty")
        if t.min() < 0 or t.max() >= self.config.vocab_size:
            raise ValueError("token index out of vocabulary range")
        emb = self.params.embedding[t] * np.sqrt(
            MODEL_DTYPE(self.config.d_model)
        )
        return emb.astype(MODEL_DTYPE)

    def output_logits(self, decoder_out: np.ndarray) -> np.ndarray:
        """Final fully-connected projection to vocabulary logits."""
        return linear(decoder_out, self.params.output_w, self.params.output_b)

    # ------------------------------------------------------------- run
    def forward(
        self,
        features: np.ndarray,
        tokens: np.ndarray,
        architecture: Architecture | str | None = None,
    ) -> AcceleratorOutput:
        """Teacher-forced pass on the accelerator.

        ``features`` is the (n, d_model) encoder input (n <= hw_seq_len)
        and ``tokens`` the decoder prefix.  Returns vocabulary logits
        for each real decoder position, the un-padded encoder memory and
        the latency report.
        """
        arch = Architecture(architecture) if architecture else self.architecture
        s_valid = np.asarray(features).shape[0]
        dec_embed = self.embed_tokens(tokens)
        t_valid = dec_embed.shape[0]

        enc_in = self._pad_rows(features)
        dec_in = self._pad_rows(dec_embed)
        enc_mask = self._key_mask(s_valid)
        dec_self_mask = combine_masks(
            causal_mask(self.hw_seq_len), self._key_mask(t_valid)
        )
        with obs_spans.tracer().span("hw.forward", s=s_valid, t=t_valid):
            run: ControllerRun = self.controller.run(
                enc_in,
                dec_in,
                enc_mask=enc_mask,
                dec_self_mask=dec_self_mask,
                dec_memory_mask=self._key_mask(s_valid),
                architecture=arch,
            )
        logits = self.output_logits(run.decoder_output[:t_valid])
        return AcceleratorOutput(
            logits=logits,
            memory=run.encoder_output[:s_valid],
            report=run.report,
        )

    def log_probs(self, features: np.ndarray, tokens: np.ndarray) -> np.ndarray:
        """Log posterior over the vocabulary at each decoder position."""
        return log_softmax(self.forward(features, tokens).logits, axis=-1)

    def step_fn(self, features: np.ndarray, use_kv_cache: bool = True):
        """Build a decoding step function (see :mod:`repro.decoding`).

        The encoder memory is computed once and reused.  With
        ``use_kv_cache`` (the default) each step runs the KV-cached
        decoder path — a 1-row query through the fabric, O(1) decoder
        passes per token.  ``use_kv_cache=False`` keeps the legacy
        full-prefix path for A/B comparison: every step re-runs the
        full padded decoder stack at ``t = hw_seq_len``.
        """
        if use_kv_cache:
            return self.decode_session(features).step_fn()
        features = np.asarray(features, dtype=MODEL_DTYPE)
        s_valid = features.shape[0]
        enc_in = self._pad_rows(features)
        enc_mask = self._key_mask(s_valid)
        memory, _ = self.controller.run_encoder_stack(enc_in, mask=enc_mask)
        memory_mask = self._key_mask(s_valid)

        def step(tokens: np.ndarray) -> np.ndarray:
            dec_embed = self.embed_tokens(tokens)
            t_valid = dec_embed.shape[0]
            dec_in = self._pad_rows(dec_embed)
            self_mask = combine_masks(
                causal_mask(self.hw_seq_len), self._key_mask(t_valid)
            )
            dec_out, _ = self.controller.run_decoder_stack(
                dec_in, memory, self_mask=self_mask, memory_mask=memory_mask
            )
            logits = self.output_logits(dec_out[t_valid - 1])
            return log_softmax(logits, axis=-1)

        return step

    def decode_session(self, features: np.ndarray) -> "HwDecodeSession":
        """Open a KV-cached decode session for one utterance: encoder
        prefill plus cross-attention K/V projection, then cheap
        per-token steps."""
        return HwDecodeSession(self, features)

    def decode_sessions_batch(
        self, features_list: Sequence[np.ndarray]
    ) -> list["HwDecodeSession"]:
        """Open decode sessions for several utterances at once.

        The encoder prefill runs as ONE batched (B, S, d_model) pass —
        MM1-MM6 execute as single large GEMMs over the shared weights —
        and each session is then constructed from its slice of the
        batched memory.  Functionally bit-identical to B independent
        :meth:`decode_session` calls (the batched kernels preserve
        per-row fp32 contraction order); the wall-clock win is the
        whole point, which the bench's batched-prefill scenario
        measures.
        """
        if not features_list:
            raise ValueError("need at least one utterance to batch")
        feats = [np.asarray(f, dtype=MODEL_DTYPE) for f in features_list]
        enc_in = np.stack([self._pad_rows(f) for f in feats])
        enc_mask = np.stack([self._key_mask(f.shape[0]) for f in feats])
        with obs_spans.tracer().span(
            "hw.encoder_prefill_batch", batch=len(feats)
        ):
            memory, _ = self.controller.run_encoder_stack(enc_in, mask=enc_mask)
        return [
            HwDecodeSession(self, f, memory=memory[i])
            for i, f in enumerate(feats)
        ]

    def autoregressive_report(
        self,
        num_tokens: int,
        architecture: Architecture | str | None = None,
    ) -> LatencyReport:
        """Modeled latency of KV-cached decode of ``num_tokens`` steps
        (cross-attention spans the padded ``hw_seq_len`` memory)."""
        arch = Architecture(architecture) if architecture else self.architecture
        return self.latency_model.autoregressive_report(
            num_tokens, self.hw_seq_len, arch
        )

    def latency_report(
        self, s: int | None = None, architecture: Architecture | str | None = None
    ) -> LatencyReport:
        """Predicted latency at sequence length ``s`` (default: hw len)."""
        arch = Architecture(architecture) if architecture else self.architecture
        return self.latency_model.latency_report(s or self.hw_seq_len, arch)

    def program(self, s: int | None = None, t: int | None = None):
        """The lowered block program behind this accelerator's numbers
        (the same lowering drives :meth:`forward`, the latency reports
        and the Gantt traces)."""
        return self.latency_model.full_pass_program(s or self.hw_seq_len, t)

    def render_gantt(
        self,
        s: int | None = None,
        architecture: Architecture | str | None = None,
        width: int = 100,
    ) -> str:
        """ASCII Gantt of the full pass under ``architecture``, with
        HBM channel lanes (renders the trace executor's timeline)."""
        from repro.hw.visualize import render_program_gantt

        arch = Architecture(architecture) if architecture else self.architecture
        return render_program_gantt(self.program(s), arch.value, width=width)


class HwDecodeSession:
    """KV-cached autoregressive decode state for one utterance.

    Construction runs the encoder prefill and projects every decoder
    layer's cross-attention K/V from the padded memory; each
    :meth:`step` then feeds one token through the cached decoder path
    (a 1-row query per layer instead of a padded ``hw_seq_len`` pass).

    The :meth:`step_fn` adapter accepts arbitrary prefixes: a prefix
    extending the cached tokens feeds only the new suffix; a diverging
    prefix rewinds the caches to the common stem and replays from
    there, so beam-search branching stays functionally exact (at the
    cost of the replayed steps, which :attr:`steps_executed` counts).
    """

    def __init__(
        self,
        accel: TransformerAccelerator,
        features: np.ndarray,
        *,
        memory: np.ndarray | None = None,
    ) -> None:
        self.accel = accel
        features = np.asarray(features, dtype=MODEL_DTYPE)
        s_valid = features.shape[0]
        if memory is None:
            enc_in = accel._pad_rows(features)
            enc_mask = accel._key_mask(s_valid)
            with obs_spans.tracer().span("hw.encoder_prefill", s=s_valid):
                memory, _ = accel.controller.run_encoder_stack(
                    enc_in, mask=enc_mask
                )
        else:
            # Precomputed padded memory from a batched prefill
            # (:meth:`TransformerAccelerator.decode_sessions_batch`).
            memory = np.asarray(memory, dtype=MODEL_DTYPE)
            if memory.shape != (accel.hw_seq_len, accel.config.d_model):
                raise ValueError(
                    f"memory must be ({accel.hw_seq_len}, "
                    f"{accel.config.d_model}); got {memory.shape}"
                )
        self.memory = memory[:s_valid]
        self.memory_mask = accel._key_mask(s_valid)
        self.cache = accel.controller.build_kv_cache(memory)
        self._tokens: list[int] = []
        #: Fabric compute cycles of every executed step, in order.
        self.step_compute_cycles: list[int] = []
        self.steps_executed = 0

    @property
    def tokens(self) -> list[int]:
        """The prefix currently held by the caches."""
        return list(self._tokens)

    @property
    def prefill_cycles(self) -> int:
        """One-time cycles spent projecting the cross-attention K/V."""
        return self.cache.prefill_cycles

    def _check_capacity(self) -> None:
        if len(self._tokens) + 1 > self.accel.hw_seq_len:
            raise ValueError(
                f"decoder prefix would exceed the hardware length "
                f"{self.accel.hw_seq_len}"
            )

    def _absorb_step(
        self, token: int, out: np.ndarray, compute_cycles: int
    ) -> np.ndarray:
        """Bookkeeping shared by the scalar and batched step paths:
        record the token and cycles, project to log-probs."""
        self._tokens.append(int(token))
        self.step_compute_cycles.append(compute_cycles)
        self.steps_executed += 1
        logits = self.accel.output_logits(out)
        return log_softmax(logits, axis=-1)

    def step(self, token: int) -> np.ndarray:
        """Feed one token; returns log-probs over the next position."""
        self._check_capacity()
        embed = self.accel.embed_tokens(np.array([token]))[0]
        out, cycles = self.accel.controller.run_decoder_step(
            embed, self.cache, memory_mask=self.memory_mask
        )
        return self._absorb_step(token, out, sum(cycles.values()))

    def rewind(self, length: int) -> None:
        """Truncate the cached prefix back to ``length`` tokens."""
        self.cache.rewind(length)
        self._tokens = self._tokens[:length]

    def resident_bytes(self) -> int:
        """Bytes this session's K/V caches hold in the BRAM banks —
        the serving scheduler's cache-pressure admission signal."""
        return self.cache.resident_bytes()

    def preempt(self) -> list[int]:
        """Evict the self-attention state (cache pressure): rewind the
        caches to zero and return the token prefix needed to replay.
        Feeding the returned prefix back through :meth:`step_fn` (or
        :func:`step_batch`) reproduces the evicted state exactly."""
        prefix = self.tokens
        self.rewind(0)
        return prefix

    def step_fn(self):
        """Adapter for :mod:`repro.decoding`: prefix -> next log-probs."""

        def step(tokens: np.ndarray) -> np.ndarray:
            tokens = np.asarray(tokens, dtype=np.int64)
            if tokens.ndim != 1 or tokens.size == 0:
                raise ValueError("tokens must be a non-empty 1-D prefix")
            common = 0
            for common, (have, want) in enumerate(
                zip(self._tokens, tokens.tolist()), start=1
            ):
                if have != want:
                    common -= 1
                    break
            if common < len(self._tokens):
                self.rewind(common)
            out: np.ndarray | None = None
            for token in tokens[common:]:
                out = self.step(int(token))
            if out is None:
                # Prefix already cached in full: replay its last token
                # so the caller still gets the next-position log-probs.
                self.rewind(len(self._tokens) - 1)
                out = self.step(int(tokens[-1]))
            return out

        return step


def step_sessions(
    sessions: Sequence["HwDecodeSession"],
    tokens: Sequence[int],
) -> list[np.ndarray]:
    """Advance every session one KV-cached step, batching where legal.

    Sessions at the same prefix length share one decode-step program,
    so each same-length group executes as a single batched program run
    (:meth:`repro.hw.controller.AcceleratorController.
    run_decoder_step_batch`); singleton groups take the scalar path.
    Outputs, cache contents and per-session cycle bookkeeping are
    bit-identical to per-session :meth:`HwDecodeSession.step` calls —
    only the wall clock changes.
    """
    if len(sessions) != len(tokens):
        raise ValueError("one token per session required")
    outputs: list[np.ndarray | None] = [None] * len(sessions)
    groups: dict[int, list[int]] = {}
    for i, session in enumerate(sessions):
        session._check_capacity()
        groups.setdefault(len(session._tokens), []).append(i)
    for idxs in groups.values():
        if len(idxs) == 1:
            i = idxs[0]
            outputs[i] = sessions[i].step(int(tokens[i]))
            continue
        members = [sessions[i] for i in idxs]
        accel = members[0].accel
        embeds = np.stack(
            [accel.embed_tokens(np.array([int(tokens[i])]))[0] for i in idxs]
        )
        masks = np.stack([m.memory_mask for m in members])
        outs, cycles = accel.controller.run_decoder_step_batch(
            embeds, [m.cache for m in members], memory_mask=masks
        )
        # The batched program is the same lowering as the scalar step's,
        # so each member records the same per-step compute cycles.
        per_member = sum(cycles.values())
        for j, i in enumerate(idxs):
            outputs[i] = members[j]._absorb_step(
                int(tokens[i]), outs[j], per_member
            )
    return outputs  # type: ignore[return-value]


def step_batch(
    sessions: Sequence["HwDecodeSession"],
    tokens: Sequence[int],
    share_weights: bool = True,
) -> tuple[list[np.ndarray], int]:
    """One continuous-batching decode iteration over open sessions.

    Every session advances one KV-cached step at its own prefix length
    (the iteration-level scheduling of Orca-style serving): session
    ``i`` consumes ``tokens[i]`` and the functional outputs are exactly
    the per-session :meth:`HwDecodeSession.step` results — same-length
    sessions run through the batched executor (:func:`step_sessions`),
    which is bit-identical to the scalar loop.  The returned cycle
    count is the *batched* iteration cost from
    :meth:`repro.hw.controller.LatencyModel.decode_iteration_cycles` —
    with ``share_weights``, the decoder panels stream from HBM once for
    the whole batch instead of once per member.
    """
    if not sessions:
        raise ValueError("batch must contain at least one session")
    if len(sessions) != len(tokens):
        raise ValueError("one token per session required")
    accel = sessions[0].accel
    if any(s.accel is not accel for s in sessions):
        raise ValueError("all sessions must share one accelerator")
    outputs = step_sessions(sessions, tokens)
    # Each executed step ran the t = (new prefix length) program, the
    # same length run_decoder_step lowered for it.
    cycles = accel.latency_model.decode_iteration_cycles(
        [len(s.tokens) for s in sessions],
        accel.hw_seq_len,
        accel.architecture,
        share_weights=share_weights,
    )
    return outputs, cycles
