"""ASCII Gantt rendering of schedule timelines (Figs 4.8-4.11).

``render_gantt`` draws one row per engine (HBM channels, compute
fabric) with each event as a labelled bar, scaled to a fixed character
width — enough to eyeball where A2/A3 hide the loads behind computes.
"""

from __future__ import annotations

from repro.hw.trace import Timeline

_KIND_CHARS = {
    "load": "=",
    "compute": "#",
    "store": "~",
    "overhead": ".",
    "stream": "-",
}

#: Idle-gap markers for the classified stall causes (``no_work`` stays
#: blank — a drained lane needs no explanation).
_STALL_CHARS = {
    "load_starved": "L",
    "dependency": "d",
    "channel_contention": "x",
    "overhead": "o",
}

_STALL_LEGEND = (
    "stalls: L=load_starved d=dependency x=channel_contention o=overhead"
)


def render_gantt(
    timeline: Timeline, width: int = 100, annotations=None
) -> str:
    """Render a timeline as an ASCII Gantt chart.

    ``annotations`` is an optional iterable of classified idle
    intervals (objects with ``engine``/``start``/``end``/``cause``
    attributes, e.g. :class:`repro.hw.introspect.StallInterval`);
    their cause markers are drawn into the otherwise-blank idle cells.
    """
    if width < 20:
        raise ValueError("width must be at least 20 characters")
    span = timeline.makespan
    if span <= 0:
        return "(empty timeline)"
    label_pad = max((len(e) for e in timeline.engines()), default=0) + 1
    scale = width / span
    marks: dict[str, list[tuple[int, int, str]]] = {}
    for iv in annotations or ():
        ch = _STALL_CHARS.get(iv.cause)
        if ch is None:
            continue
        start = int(iv.start * scale)
        end = min(max(int(iv.end * scale), start + 1), width)
        marks.setdefault(iv.engine, []).append((start, end, ch))
    lines = []
    for engine in timeline.engines():
        row = [" "] * width
        for event in timeline.on_engine(engine):
            start = int(event.start * scale)
            end = max(int(event.end * scale), start + 1)
            end = min(end, width)
            ch = _KIND_CHARS.get(event.kind, "#")
            for i in range(start, end):
                row[i] = ch
            # Inscribe the label when the bar is wide enough.
            name = event.label
            if end - start >= len(name) + 2:
                for j, c in enumerate(name):
                    row[start + 1 + j] = c
        # Stall markers only claim cells no event bar painted.
        for start, end, ch in marks.get(engine, ()):
            for i in range(start, end):
                if row[i] == " ":
                    row[i] = ch
        lines.append(f"{engine.rjust(label_pad)} |{''.join(row)}|")
    lines.append(
        f"{' ' * label_pad}  0{' ' * (width - 2 - len(f'{span:.0f}'))}"
        f"{span:.0f} cycles"
    )
    if marks:
        lines.append(f"{' ' * label_pad}  {_STALL_LEGEND}")
    return "\n".join(lines)


def render_program_gantt(
    program,
    architecture: str = "A3",
    width: int = 100,
    block_overhead: int | None = None,
    annotate_stalls: bool = False,
) -> str:
    """Gantt of a lowered block program under one architecture.

    Renders the trace executor's timeline: the HBM channel lanes come
    first (A3's two-channel decoder prefetch of Fig 4.11 shows up as
    interleaved ``hbm0``/``hbm1`` bars), then the per-engine op lanes
    and the host dispatch lane.  ``block_overhead`` defaults to the
    calibration value baked into the program's fabric.

    With ``annotate_stalls=True`` every idle gap is marked with its
    classified cause (plus a legend line), turning the chart into the
    Figs 4.8–4.11 narrative: A1's lanes fill with ``L`` between loads,
    A2's with ``x`` where its single channel serializes.
    """
    from repro.hw.program import trace_program_with_schedule

    if block_overhead is None:
        block_overhead = program.fabric.calibration.block_overhead_cycles
    timeline, sched = trace_program_with_schedule(
        program, architecture, block_overhead
    )
    annotations = None
    if annotate_stalls:
        from repro.hw.introspect import classify_stalls

        annotations = classify_stalls(
            program, architecture, block_overhead,
            timeline=timeline, sched=sched,
        ).intervals
    return render_gantt(timeline, width=width, annotations=annotations)


def render_platform_diagram(hardware=None) -> str:
    """ASCII rendition of the Fig 5.3 platform diagram: host and PCIe,
    HBM channels feeding one kernel per SLR, and the inter-SLR stream."""
    from repro.config import HardwareConfig

    hw = hardware or HardwareConfig()
    ch = hw.hbm_channels_per_slr
    lines = [
        "+--------------------- host CPU ----------------------+",
        "|  data prep | fbank features | OpenCL orchestration   |",
        "+---------------------------+--------------------------+",
        f"                            | PCIe Gen3 x16 ({hw.pcie_gbps:.0f} GB/s)",
        "+---------------------------v--------------------------+",
        f"|                HBM2 (8 GB, weights resident)         |",
    ]
    slr_cells = []
    for slr in range(hw.num_slrs):
        chans = " ".join(
            f"ch{slr * ch + c}" for c in range(ch)
        )
        slr_cells.append(
            f"SLR{slr}: {hw.psas_per_slr} x {hw.psa_rows}x{hw.psa_cols} PSA  "
            f"[{chans} @ {hw.hbm_channel_gbps:.1f} GB/s]"
        )
    width = max(len(c) for c in slr_cells) + 4
    lines.append("+" + "-" * (len(lines[0]) - 2) + "+")
    for i, cell in enumerate(slr_cells):
        lines.append(f"|  {cell.ljust(width - 4)}  |")
        if i < len(slr_cells) - 1:
            lines.append(
                "|  " + "~ inter-SLR AXI stream ~".center(width - 4) + "  |"
            )
    lines.append("+" + "-" * (len(lines[0]) - 2) + "+")
    return "\n".join(lines)


def render_comparison(results: dict[str, Timeline], width: int = 100) -> str:
    """Stack several labelled timelines (e.g. A1 vs A2 vs A3)."""
    blocks = []
    for name, timeline in results.items():
        blocks.append(f"--- {name} ---")
        blocks.append(render_gantt(timeline, width=width))
    return "\n".join(blocks)
