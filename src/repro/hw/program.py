"""The block-program IR: one lowering of the Fig 4.13 schedule.

The accelerator executes a single dataflow — MM1..MM6 on the PSAs,
bias/softmax/Add-Norm on the vector units, weight bundles streamed from
HBM — but the repo historically encoded that schedule several times
(analytic estimators, functional blocks, the hand-built block trace,
and the ``BlockWork`` plumbing of the controller).  This module lowers
the model + hardware configuration **once** into a typed op-level
program and derives every execution mode from it:

* :func:`execute_program` — the functional executor: runs the numpy
  dataflow through the :mod:`repro.hw.kernels` / :mod:`repro.hw.
  nonlinear` implementations, bit-identical to the legacy block bodies.
* :func:`program_block_work` / :func:`schedule_program` — the cycle
  executor: per-block makespans fall out of an integer ASAP pass over
  the dependency edges, then the A1/A2/A3 schedulers place the
  load/compute chain exactly as before.
* :func:`trace_block` / :func:`trace_program` — the trace executor:
  emits per-engine :class:`repro.hw.trace.Timeline` events (the Gantt
  view), whose makespan equals the cycle executor's total.

Ops carry their engine placement (PSA group, vector adder, softmax
unit, HBM channel hint), explicit dependency edges, and — for the
functional executor — value references plus parameter paths into a
:class:`repro.model.params.TransformerParams` tree (the same dotted
paths :mod:`repro.hw.faults` targets, so fault injection becomes a
program transform via ``weight_hook``).

Lowerings exist for the full encoder/decoder pass, the per-stack
sub-programs, the single-token KV-cache decode step, and the individual
blocks that :mod:`repro.hw.blocks` exposes as its public API.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from functools import lru_cache
from typing import Any, Callable, Sequence

import numpy as np

from repro.config import ModelConfig
from repro.hw.kernels import (
    Fabric,
    mm1,
    mm1_cycles,
    mm2,
    mm2_cycles,
    mm3,
    mm3_cycles,
    mm4,
    mm4_cycles,
    mm5,
    mm5_cycles,
    mm6,
    mm6_cycles,
)
from repro.hw.kv_cache import kv_stream_cycles
from repro.hw.memory import (
    HbmModel,
    decoder_ffn_weight_bytes,
    decoder_mha_weight_bytes,
    decoder_weight_bytes,
    encoder_weight_bytes,
)
from repro.hw.nonlinear import (
    add_norm_unit,
    bias_unit,
    relu_unit,
    scale_scores,
    softmax_unit,
)
from repro.hw.scheduler import (
    Architecture,
    BlockWork,
    ScheduleResult,
    schedule,
)
from repro.hw.systolic import ceil_div
from repro.hw.trace import Timeline
from repro.obs import metrics as obs_metrics
from repro.obs import spans as obs_spans


class OpKind(str, Enum):
    """Engine class of one program op."""

    LOAD = "load"  # HBM weight-bundle stream
    MATMUL = "matmul"  # a PSA (group) pass
    VECTOR = "vector"  # bias / softmax / ReLU / Add-Norm unit work
    STREAM = "stream"  # KV-cache rows streamed into a PSA
    CACHE = "cache"  # zero-cycle cache bank bookkeeping


@dataclass(frozen=True)
class ValueRef:
    """Reference to a runtime value: an op output (``op``), an external
    program input (``ext``), or a KV-cache tensor (``cache``, keyed by
    (attribute, layer, head))."""

    kind: str
    key: Any

    def __post_init__(self) -> None:
        if self.kind not in ("op", "ext", "cache"):
            raise ValueError(f"unknown ValueRef kind '{self.kind}'")


@dataclass(frozen=True)
class ParamRef:
    """Path into the parameter tree, e.g. ``("encoders", 0, "mha",
    "wq")``.  Per-head stacks are referenced whole — the consuming op's
    ``head`` attribute selects the slice — so the path matches the
    dotted targets of :mod:`repro.hw.faults` exactly."""

    path: tuple

    def resolve(self, root: Any) -> np.ndarray:
        obj = root
        for part in self.path:
            obj = obj[part] if isinstance(part, int) else getattr(obj, part)
        return obj

    @property
    def dotted(self) -> str:
        parts: list[str] = []
        for part in self.path:
            if isinstance(part, int):
                parts[-1] += f"[{part}]"
            else:
                parts.append(str(part))
        return ".".join(parts)


@dataclass(frozen=True)
class Op:
    """One scheduled unit of work with explicit dependency edges."""

    op_id: int
    kind: OpKind
    label: str
    #: Engine names the op occupies (MM4/MM5/MM6 span every PSA group).
    engines: tuple[str, ...]
    cycles: int
    #: Op ids that must finish before this op may start.
    deps: tuple[int, ...]
    #: Label of the BlockIR this op belongs to.
    block: str
    #: Kernel dispatched by the functional executor (None = timing-only).
    semantic: str | None = None
    inputs: tuple[ValueRef, ...] = ()
    params: tuple[ParamRef, ...] = ()
    attrs: dict = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.cycles < 0:
            raise ValueError("op cycles must be non-negative")


@dataclass(frozen=True)
class BlockIR:
    """One schedulable block: a weight bundle plus its compute ops.

    ``merge_group`` names the work unit the block joins under A1/A2
    (decoder m/f parts fuse back into one ``dec{i}`` load+compute);
    ``merged_load_cycles`` carries the whole-bundle load, which is not
    the sum of the part loads because HBM transfer cycles round.
    """

    label: str
    op_ids: tuple[int, ...]
    load_cycles: int = 0
    channel_hint: int | None = None
    overhead_override: int | None = None
    merge_group: str | None = None
    merged_load_cycles: int | None = None
    #: Bytes of the weight bundle behind ``load_cycles`` (exact, from
    #: the model configuration; telemetry accounts HBM traffic with it).
    load_bytes: int = 0


@dataclass(frozen=True)
class BlockProgram:
    """A lowered program: ops, blocks, named outputs, and the fabric
    the cycle formulas were evaluated against."""

    fabric: Fabric
    ops: tuple[Op, ...]
    blocks: tuple[BlockIR, ...]
    outputs: dict[str, ValueRef]
    meta: dict = field(default_factory=dict)

    @property
    def num_ops(self) -> int:
        return len(self.ops)

    def block(self, label: str) -> BlockIR:
        for blk in self.blocks:
            if blk.label == label:
                return blk
        raise KeyError(f"no block labelled '{label}'")


@dataclass
class ProgramRun:
    """Result of one functional execution of a program."""

    outputs: dict[str, np.ndarray]
    #: Per-block ASAP makespans (the cycle executor's block computes).
    block_compute_cycles: dict[str, int]
    #: Every op output, keyed by op id (diagnostics / testing).
    values: dict[int, np.ndarray]


# ------------------------------------------------------------ lowering
def resolve_head_parallelism(
    fabric: Fabric, num_heads: int, parallel_heads: int | None
) -> tuple[int, int]:
    """(parallel_heads, concurrent PSAs per head) after defaulting."""
    total_psas = fabric.hardware.total_psas
    if parallel_heads is None:
        parallel_heads = min(num_heads, total_psas)
    if parallel_heads < 1 or parallel_heads > total_psas:
        raise ValueError(
            f"parallel_heads must be in [1, {total_psas}]; got {parallel_heads}"
        )
    return parallel_heads, max(total_psas // parallel_heads, 1)


def _slot_engines(fabric: Fabric, slot: int, concurrent: int) -> tuple[str, str, str]:
    """PSA group / vector adder / softmax unit names for one head slot."""
    hw = fabric.hardware
    psa_index = slot * concurrent
    slr = psa_index // hw.psas_per_slr
    psa = f"slr{slr}.psa{psa_index}" + (
        f"-{psa_index + concurrent - 1}" if concurrent > 1 else ""
    )
    return psa, f"slr{slr}.adder{psa_index}", f"slr{slr}.sm{slot}"


def _opref(op_id: int) -> ValueRef:
    return ValueRef("op", op_id)


def _ext(name: str) -> ValueRef:
    return ValueRef("ext", name)


def _cacheref(which: str, layer: int, head: int) -> ValueRef:
    return ValueRef("cache", (which, layer, head))


class _Builder:
    """Accumulates ops and blocks during lowering."""

    def __init__(self, fabric: Fabric) -> None:
        self.fabric = fabric
        self.ops: list[Op] = []
        self.blocks: list[BlockIR] = []

    def op(
        self,
        kind: OpKind,
        label: str,
        engines: Sequence[str],
        cycles: int,
        deps: Sequence[int],
        block: str,
        semantic: str | None = None,
        inputs: Sequence[ValueRef] = (),
        params: Sequence[tuple] = (),
        **attrs: Any,
    ) -> int:
        op_id = len(self.ops)
        self.ops.append(
            Op(
                op_id=op_id,
                kind=kind,
                label=label,
                engines=tuple(engines),
                cycles=int(cycles),
                deps=tuple(deps),
                block=block,
                semantic=semantic,
                inputs=tuple(inputs),
                params=tuple(ParamRef(tuple(p)) for p in params),
                attrs=attrs,
            )
        )
        return op_id

    def mark(self) -> int:
        return len(self.ops)

    def close_block(
        self,
        label: str,
        mark: int,
        load_cycles: int = 0,
        channel_hint: int | None = None,
        overhead_override: int | None = None,
        merge_group: str | None = None,
        merged_load_cycles: int | None = None,
        load_bytes: int = 0,
    ) -> BlockIR:
        blk = BlockIR(
            label=label,
            op_ids=tuple(range(mark, len(self.ops))),
            load_cycles=load_cycles,
            channel_hint=channel_hint,
            overhead_override=overhead_override,
            merge_group=merge_group,
            merged_load_cycles=merged_load_cycles,
            load_bytes=load_bytes,
        )
        self.blocks.append(blk)
        return blk

    def finish(
        self, outputs: dict[str, ValueRef | int], **meta: Any
    ) -> BlockProgram:
        return BlockProgram(
            fabric=self.fabric,
            ops=tuple(self.ops),
            blocks=tuple(self.blocks),
            outputs={
                name: _opref(ref) if isinstance(ref, int) else ref
                for name, ref in outputs.items()
            },
            meta=meta,
        )


def _load_op(b: _Builder, block: str, cycles: int, channel_hint: int | None) -> int:
    return b.op(
        OpKind.LOAD,
        f"LW:{block}",
        ("hbm",),
        cycles,
        (),
        block,
        channel_hint=channel_hint,
    )


def _lower_attention_head(
    b: _Builder,
    block: str,
    x_q: ValueRef,
    x_kv: ValueRef,
    prefix: tuple,
    head: int,
    s_q: int,
    s_k: int,
    d_model: int,
    d_k: int,
    concurrent: int,
    engines: tuple[str, str, str],
    mask: str | None,
    entry_deps: tuple[int, ...],
    label_prefix: str,
) -> int:
    """Ops of one attention head per Fig 4.13; returns the MM3 op id.

    The dependency edges reproduce the analytic overlap rules under
    ASAP scheduling: B(K) runs on the adder while MM1(Q) holds the PSA,
    Sc+Sm runs on the softmax unit while MM1(V) holds the PSA.
    """
    fabric = b.fabric
    units = fabric.units
    psa, adder, sm = engines
    lp = label_prefix
    t_q = mm1_cycles(fabric, s_q, d_model, d_k, concurrent)
    t_kv = mm1_cycles(fabric, s_k, d_model, d_k, concurrent)

    mm1_k = b.op(
        OpKind.MATMUL, f"{lp}MM1(K)", (psa,), t_kv, entry_deps, block,
        semantic="mm1", inputs=(x_kv,), params=(prefix + ("wk",),),
        head=head, concurrent_psas=concurrent,
    )
    b_k = b.op(
        OpKind.VECTOR, f"{lp}B(K)", (adder,), units.bias_cycles(s_k, d_k),
        (mm1_k,), block, semantic="bias", inputs=(_opref(mm1_k),),
        params=(prefix + ("bk",),), head=head,
    )
    mm1_q = b.op(
        OpKind.MATMUL, f"{lp}MM1(Q)", (psa,), t_q, (mm1_k,), block,
        semantic="mm1", inputs=(x_q,), params=(prefix + ("wq",),),
        head=head, concurrent_psas=concurrent,
    )
    b_q = b.op(
        OpKind.VECTOR, f"{lp}B(Q)", (adder,), units.bias_cycles(s_q, d_k),
        (b_k, mm1_q), block, semantic="bias", inputs=(_opref(mm1_q),),
        params=(prefix + ("bq",),), head=head,
    )
    mm2_op = b.op(
        OpKind.MATMUL, f"{lp}MM2", (psa,), mm2_cycles(fabric, s_q, s_k, d_k),
        (b_q, b_k), block, semantic="mm2",
        inputs=(_opref(b_q), _opref(b_k)),
    )
    sc_sm = b.op(
        OpKind.VECTOR, f"{lp}Sc+Sm", (sm,),
        units.scale_cycles(s_q, s_k) + units.softmax_cycles(s_q, s_k),
        (mm2_op,), block, semantic="scsm", inputs=(_opref(mm2_op),),
        d_k=d_k, mask=mask,
    )
    mm1_v = b.op(
        OpKind.MATMUL, f"{lp}MM1(V)", (psa,), t_kv, (mm2_op,), block,
        semantic="mm1", inputs=(x_kv,), params=(prefix + ("wv",),),
        head=head, concurrent_psas=concurrent,
    )
    b_v = b.op(
        OpKind.VECTOR, f"{lp}B(V)", (adder,), units.bias_cycles(s_k, d_k),
        (sc_sm, mm1_v), block, semantic="bias", inputs=(_opref(mm1_v),),
        params=(prefix + ("bv",),), head=head,
    )
    return b.op(
        OpKind.MATMUL, f"{lp}MM3", (psa,), mm3_cycles(fabric, s_q, s_k, d_k),
        (b_v, sc_sm), block, semantic="mm3",
        inputs=(_opref(sc_sm), _opref(b_v)),
    )


def _lower_attention_step_head(
    b: _Builder,
    block: str,
    x: ValueRef,
    prefix: tuple,
    layer: int,
    head: int,
    t_keys: int,
    d_model: int,
    d_k: int,
    concurrent: int,
    engines: tuple[str, str, str],
    project_kv: bool,
    mask: str | None,
    entry_deps: tuple[int, ...],
    label_prefix: str,
) -> int:
    """One head of a KV-cached decode step (s_q = 1); returns MM3's id.

    ``project_kv`` lowers the self-attention form — project and bank
    this position's K/V rows, then attend over the grown cache — while
    the cross-attention form streams the prefilled cache directly.
    """
    fabric = b.fabric
    units = fabric.units
    psa, adder, sm = engines
    lp = label_prefix
    t_row = mm1_cycles(fabric, 1, d_model, d_k, concurrent)
    stream = kv_stream_cycles(t_keys, d_k)
    which = "self" if project_kv else "cross"

    if project_kv:
        mm1_k = b.op(
            OpKind.MATMUL, f"{lp}MM1(K)", (psa,), t_row, entry_deps, block,
            semantic="mm1", inputs=(x,), params=(prefix + ("wk",),),
            head=head, concurrent_psas=concurrent,
        )
        b_k = b.op(
            OpKind.VECTOR, f"{lp}B(K)", (adder,), units.bias_cycles(1, d_k),
            (mm1_k,), block, semantic="bias", inputs=(_opref(mm1_k),),
            params=(prefix + ("bk",),), head=head,
        )
        bank_k = b.op(
            OpKind.CACHE, f"{lp}bank(K)", (), 0, (b_k,), block,
            semantic="cache_append_k", inputs=(_opref(b_k),),
            layer=layer, head=head,
        )
        mm1_q = b.op(
            OpKind.MATMUL, f"{lp}MM1(Q)", (psa,), t_row, (mm1_k,), block,
            semantic="mm1", inputs=(x,), params=(prefix + ("wq",),),
            head=head, concurrent_psas=concurrent,
        )
        b_q = b.op(
            OpKind.VECTOR, f"{lp}B(Q)", (adder,), units.bias_cycles(1, d_k),
            (b_k, mm1_q), block, semantic="bias", inputs=(_opref(mm1_q),),
            params=(prefix + ("bq",),), head=head,
        )
        stream_deps: tuple[int, ...] = (b_q, bank_k)
    else:
        mm1_q = b.op(
            OpKind.MATMUL, f"{lp}MM1(Q)", (psa,), t_row, entry_deps, block,
            semantic="mm1", inputs=(x,), params=(prefix + ("wq",),),
            head=head, concurrent_psas=concurrent,
        )
        b_q = b.op(
            OpKind.VECTOR, f"{lp}B(Q)", (adder,), units.bias_cycles(1, d_k),
            (mm1_q,), block, semantic="bias", inputs=(_opref(mm1_q),),
            params=(prefix + ("bq",),), head=head,
        )
        stream_deps = (b_q,)

    st_k = b.op(
        OpKind.STREAM, f"{lp}stream(K)", (psa,), stream, stream_deps, block,
    )
    mm2_op = b.op(
        OpKind.MATMUL, f"{lp}MM2", (psa,), mm2_cycles(fabric, 1, t_keys, d_k),
        (st_k,), block, semantic="mm2",
        inputs=(_opref(b_q), _cacheref(f"{which}_k", layer, head)),
    )
    sc_sm = b.op(
        OpKind.VECTOR, f"{lp}Sc+Sm", (sm,),
        units.scale_cycles(1, t_keys) + units.softmax_cycles(1, t_keys),
        (mm2_op,), block, semantic="scsm", inputs=(_opref(mm2_op),),
        d_k=d_k, mask=mask,
    )
    if project_kv:
        mm1_v = b.op(
            OpKind.MATMUL, f"{lp}MM1(V)", (psa,), t_row, (mm2_op,), block,
            semantic="mm1", inputs=(x,), params=(prefix + ("wv",),),
            head=head, concurrent_psas=concurrent,
        )
        b_v = b.op(
            OpKind.VECTOR, f"{lp}B(V)", (adder,), units.bias_cycles(1, d_k),
            (sc_sm, mm1_v), block, semantic="bias", inputs=(_opref(mm1_v),),
            params=(prefix + ("bv",),), head=head,
        )
        bank_v = b.op(
            OpKind.CACHE, f"{lp}bank(V)", (), 0, (b_v,), block,
            semantic="cache_append_v", inputs=(_opref(b_v),),
            layer=layer, head=head,
        )
        st_v = b.op(
            OpKind.STREAM, f"{lp}stream(V)", (psa,), stream, (b_v, bank_v), block,
        )
    else:
        st_v = b.op(
            OpKind.STREAM, f"{lp}stream(V)", (psa,), stream, (sc_sm,), block,
        )
    return b.op(
        OpKind.MATMUL, f"{lp}MM3", (psa,), mm3_cycles(fabric, 1, t_keys, d_k),
        (st_v, sc_sm), block, semantic="mm3",
        inputs=(_opref(sc_sm), _cacheref(f"{which}_v", layer, head)),
    )


def _lower_mha(
    b: _Builder,
    block: str,
    x_q: ValueRef,
    x_kv: ValueRef,
    prefix: tuple,
    s_q: int,
    s_k: int,
    num_heads: int,
    d_model: int,
    parallel_heads: int | None,
    mask: str | None,
    entry_deps: tuple[int, ...],
    label_extra: str = "",
    step_layer: int | None = None,
    project_kv: bool = True,
    t_keys: int | None = None,
) -> int:
    """Lower a full MHA block (or a cached decode step when
    ``step_layer`` is given): head waves, MM4 across every PSA group,
    B_A.  Returns the B_A op id — the block's (s_q, d_model) output."""
    fabric = b.fabric
    parallel_heads, concurrent = resolve_head_parallelism(
        fabric, num_heads, parallel_heads
    )
    waves = ceil_div(num_heads, parallel_heads)
    d_k = d_model // num_heads

    head_outs: list[int] = []
    prev_wave = entry_deps
    for wave in range(waves):
        wave_outs: list[int] = []
        for slot in range(parallel_heads):
            head = wave * parallel_heads + slot
            if head >= num_heads:
                break
            engines = _slot_engines(fabric, slot, concurrent)
            lp = f"{label_extra}h{head}:"
            if step_layer is None:
                out = _lower_attention_head(
                    b, block, x_q, x_kv, prefix, head, s_q, s_k, d_model,
                    d_k, concurrent, engines, mask, prev_wave, lp,
                )
            else:
                out = _lower_attention_step_head(
                    b, block, x_q, prefix, step_layer, head,
                    t_keys if t_keys is not None else s_k, d_model, d_k,
                    concurrent, engines, project_kv, mask, prev_wave, lp,
                )
            wave_outs.append(out)
        head_outs.extend(wave_outs)
        prev_wave = tuple(wave_outs)

    all_psas = tuple(
        _slot_engines(fabric, slot, concurrent)[0]
        for slot in range(parallel_heads)
    )
    mm4_op = b.op(
        OpKind.MATMUL, f"{label_extra}MM4", all_psas,
        mm4_cycles(fabric, s_q, num_heads, d_k, d_model),
        tuple(head_outs), block, semantic="mm4",
        inputs=tuple(_opref(h) for h in head_outs),
        params=(prefix + ("wo",),),
    )
    return b.op(
        OpKind.VECTOR, f"{label_extra}B_A", ("slr0.adder0",),
        fabric.units.bias_cycles(s_q, d_model), (mm4_op,), block,
        semantic="bias", inputs=(_opref(mm4_op),),
        params=(prefix + ("bo",),),
    )


def _lower_add_norm(
    b: _Builder,
    block: str,
    label: str,
    sub: int,
    residual: ValueRef,
    norm_prefix: tuple,
    s: int,
    d_model: int,
    extra_deps: tuple[int, ...] = (),
) -> int:
    """Residual add split over the SLRs, then Norm, as one vector op."""
    fabric = b.fabric
    units = fabric.units
    cycles = units.bias_cycles(s, d_model // fabric.hardware.num_slrs)
    cycles += units.add_norm_cycles(s, d_model)
    return b.op(
        OpKind.VECTOR, label, ("slr0.norm",), cycles, (sub,) + extra_deps,
        block, semantic="add_norm", inputs=(_opref(sub), residual),
        params=(norm_prefix + ("weight",), norm_prefix + ("bias",)),
    )


def _lower_ffn(
    b: _Builder,
    block: str,
    x: ValueRef,
    prefix: tuple,
    s: int,
    d_model: int,
    d_ff: int,
    num_heads: int,
    parallel_heads: int | None,
    entry_deps: tuple[int, ...],
) -> int:
    """MM5 / B_1F+ReLU / MM6 / B_2F; returns the B_2F op id."""
    fabric = b.fabric
    units = fabric.units
    parallel_heads, concurrent = resolve_head_parallelism(
        fabric, num_heads, parallel_heads
    )
    psas = tuple(
        _slot_engines(fabric, slot, concurrent)[0]
        for slot in range(parallel_heads)
    )
    mm5_op = b.op(
        OpKind.MATMUL, "MM5", psas, mm5_cycles(fabric, s, d_model, d_ff),
        entry_deps, block, semantic="mm5", inputs=(x,),
        params=(prefix + ("w1",),),
    )
    b1 = b.op(
        OpKind.VECTOR, "B_1F+ReLU", ("slr0.adder0",),
        units.bias_cycles(s, d_ff) + units.relu_cycles(s, d_ff),
        (mm5_op,), block, semantic="bias_relu", inputs=(_opref(mm5_op),),
        params=(prefix + ("b1",),),
    )
    mm6_op = b.op(
        OpKind.MATMUL, "MM6", psas, mm6_cycles(fabric, s, d_ff, d_model),
        (b1,), block, semantic="mm6", inputs=(_opref(b1),),
        params=(prefix + ("w2",),),
    )
    return b.op(
        OpKind.VECTOR, "B_2F", ("slr0.adder0",),
        units.bias_cycles(s, d_model), (mm6_op,), block, semantic="bias",
        inputs=(_opref(mm6_op),), params=(prefix + ("b2",),),
    )


def _lower_encoder_layer(
    b: _Builder,
    block: str,
    x: ValueRef,
    prefix: tuple,
    s: int,
    num_heads: int,
    d_model: int,
    d_ff: int,
    parallel_heads: int | None,
    mask: str | None,
    entry_deps: tuple[int, ...],
) -> int:
    """One encoder layer: MHA, Add-Norm, FFN, Add-Norm."""
    b_a = _lower_mha(
        b, block, x, x, prefix + ("mha",), s, s, num_heads, d_model,
        parallel_heads, mask, entry_deps,
    )
    an1 = _lower_add_norm(
        b, block, "Add-Norm1", b_a, x, prefix + ("norm1",), s, d_model
    )
    b2 = _lower_ffn(
        b, block, _opref(an1), prefix + ("ffn",), s, d_model, d_ff,
        num_heads, parallel_heads, (an1,),
    )
    return _lower_add_norm(
        b, block, "Add-Norm2", b2, _opref(an1), prefix + ("norm2",), s,
        d_model, extra_deps=(an1,),
    )


def _lower_decoder_layer(
    b: _Builder,
    m_block: str,
    f_block: str,
    x: ValueRef,
    memory: ValueRef,
    prefix: tuple,
    t: int,
    s: int,
    num_heads: int,
    d_model: int,
    d_ff: int,
    parallel_heads: int | None,
    self_mask: str | None,
    memory_mask: str | None,
    entry_deps: tuple[int, ...],
    mark_m: Callable[[], None] | None = None,
) -> int:
    """One decoder layer split per Fig 4.11: the masked self-MHA +
    cross-MHA (with their Add-Norms) belong to ``m_block``, the FFN and
    its Add-Norm to ``f_block``.  Returns the final Add-Norm op id."""
    self_out = _lower_mha(
        b, m_block, x, x, prefix + ("self_mha",), t, t, num_heads,
        d_model, parallel_heads, self_mask, entry_deps, label_extra="self:",
    )
    an1 = _lower_add_norm(
        b, m_block, "Add-Norm1", self_out, x, prefix + ("norm1",), t, d_model
    )
    cross_out = _lower_mha(
        b, m_block, _opref(an1), memory, prefix + ("cross_mha",), t, s,
        num_heads, d_model, parallel_heads, memory_mask, (an1,),
        label_extra="cross:",
    )
    an2 = _lower_add_norm(
        b, m_block, "Add-Norm2", cross_out, _opref(an1),
        prefix + ("norm2",), t, d_model, extra_deps=(an1,),
    )
    if mark_m is not None:
        mark_m()
    b2 = _lower_ffn(
        b, f_block, _opref(an2), prefix + ("ffn",), t, d_model, d_ff,
        num_heads, parallel_heads, (an2,),
    )
    return _lower_add_norm(
        b, f_block, "Add-Norm3", b2, _opref(an2), prefix + ("norm3",), t,
        d_model, extra_deps=(an2,),
    )


def _lower_decoder_step_layer(
    b: _Builder,
    m_block: str,
    f_block: str,
    x: ValueRef,
    prefix: tuple,
    layer: int,
    t: int,
    s: int,
    num_heads: int,
    d_model: int,
    d_ff: int,
    parallel_heads: int | None,
    memory_mask: str | None,
    entry_deps: tuple[int, ...],
    mark_m: Callable[[], None] | None = None,
) -> int:
    """One decoder layer for a single KV-cached step (1-row query)."""
    self_out = _lower_mha(
        b, m_block, x, x, prefix + ("self_mha",), 1, t, num_heads, d_model,
        parallel_heads, None, entry_deps, label_extra="self:",
        step_layer=layer, project_kv=True, t_keys=t,
    )
    an1 = _lower_add_norm(
        b, m_block, "Add-Norm1", self_out, x, prefix + ("norm1",), 1, d_model
    )
    cross_out = _lower_mha(
        b, m_block, _opref(an1), _opref(an1), prefix + ("cross_mha",), 1, s,
        num_heads, d_model, parallel_heads, memory_mask, (an1,),
        label_extra="cross:", step_layer=layer, project_kv=False, t_keys=s,
    )
    an2 = _lower_add_norm(
        b, m_block, "Add-Norm2", cross_out, _opref(an1),
        prefix + ("norm2",), 1, d_model, extra_deps=(an1,),
    )
    if mark_m is not None:
        mark_m()
    b2 = _lower_ffn(
        b, f_block, _opref(an2), prefix + ("ffn",), 1, d_model, d_ff,
        num_heads, parallel_heads, (an2,),
    )
    return _lower_add_norm(
        b, f_block, "Add-Norm3", b2, _opref(an2), prefix + ("norm3",), 1,
        d_model, extra_deps=(an2,),
    )


def _bundle_load_cycles(fabric: Fabric, num_bytes: int) -> int:
    """Cycles to stream one weight bundle (each SLR kernel pulls its
    half from one HBM channel, matching the LatencyModel)."""
    hbm = HbmModel(fabric.hardware, fabric.calibration)
    return hbm.transfer_cycles(num_bytes, channels=fabric.hardware.num_slrs)


def _lower_encoder_stack_into(
    b: _Builder,
    model: ModelConfig,
    s: int,
    parallel_heads: int | None,
    x: ValueRef,
    mask: str | None,
) -> ValueRef:
    bpe = b.fabric.hardware.bytes_per_element
    enc_bytes = encoder_weight_bytes(model, bpe) if model.num_encoders else 0
    enc_load = _bundle_load_cycles(b.fabric, enc_bytes) if enc_bytes else 0
    prev_out: tuple[int, ...] = ()
    for i in range(model.num_encoders):
        label = f"enc{i + 1}"
        mark = b.mark()
        _load_op(b, label, enc_load, None)
        out = _lower_encoder_layer(
            b, label, x, ("encoders", i), s, model.num_heads,
            model.d_model, model.d_ff, parallel_heads, mask, prev_out,
        )
        b.close_block(label, mark, load_cycles=enc_load, load_bytes=enc_bytes)
        x = _opref(out)
        prev_out = (out,)
    return x


def _lower_decoder_stack_into(
    b: _Builder,
    model: ModelConfig,
    t: int,
    s: int,
    parallel_heads: int | None,
    x: ValueRef,
    memory: ValueRef,
    self_mask: str | None,
    memory_mask: str | None,
    tag: str = "",
) -> ValueRef:
    fabric = b.fabric
    bpe = fabric.hardware.bytes_per_element
    if not model.num_decoders:
        return x
    mha_bytes = decoder_mha_weight_bytes(model, bpe)
    ffn_bytes = decoder_ffn_weight_bytes(model, bpe)
    mha_load = _bundle_load_cycles(fabric, mha_bytes)
    ffn_load = _bundle_load_cycles(fabric, ffn_bytes)
    merged_load = _bundle_load_cycles(fabric, decoder_weight_bytes(model, bpe))
    prev_out: tuple[int, ...] = ()
    for i in range(model.num_decoders):
        m_label = f"{tag}dec{i + 1}m"
        f_label = f"{tag}dec{i + 1}f"
        group = f"{tag}dec{i + 1}"
        mark = b.mark()
        _load_op(b, m_label, mha_load, 0)
        m_end: list[int] = []
        out = _lower_decoder_layer(
            b, m_label, f_label, x, memory, ("decoders", i), t, s,
            model.num_heads, model.d_model, model.d_ff, parallel_heads,
            self_mask, memory_mask, prev_out,
            mark_m=lambda: m_end.append(b.mark()),
        )
        b.blocks.append(
            BlockIR(
                label=m_label,
                op_ids=tuple(range(mark, m_end[0])),
                load_cycles=mha_load,
                channel_hint=0,
                merge_group=group,
                merged_load_cycles=merged_load,
                load_bytes=mha_bytes,
            )
        )
        f_mark = b.mark()
        _load_op(b, f_label, ffn_load, 1)
        # The FFN ops were emitted before this load op by the layer
        # lowering; rebuild the f-part id range to include both.
        b.blocks.append(
            BlockIR(
                label=f_label,
                op_ids=tuple(range(m_end[0], b.mark())),
                load_cycles=ffn_load,
                channel_hint=1,
                overhead_override=0,
                merge_group=group,
                merged_load_cycles=merged_load,
                load_bytes=ffn_bytes,
            )
        )
        del f_mark
        x = _opref(out)
        prev_out = (out,)
    return x


def _lower_decoder_step_stack_into(
    b: _Builder,
    model: ModelConfig,
    t: int,
    s: int,
    parallel_heads: int | None,
    x: ValueRef,
    memory_mask: str | None,
    tag: str = "",
) -> ValueRef:
    fabric = b.fabric
    bpe = fabric.hardware.bytes_per_element
    if not model.num_decoders:
        return x
    mha_bytes = decoder_mha_weight_bytes(model, bpe)
    ffn_bytes = decoder_ffn_weight_bytes(model, bpe)
    mha_load = _bundle_load_cycles(fabric, mha_bytes)
    ffn_load = _bundle_load_cycles(fabric, ffn_bytes)
    merged_load = _bundle_load_cycles(fabric, decoder_weight_bytes(model, bpe))
    prev_out: tuple[int, ...] = ()
    for i in range(model.num_decoders):
        m_label = f"{tag}dec{i + 1}m"
        f_label = f"{tag}dec{i + 1}f"
        group = f"{tag}dec{i + 1}"
        mark = b.mark()
        _load_op(b, m_label, mha_load, 0)
        m_end: list[int] = []
        out = _lower_decoder_step_layer(
            b, m_label, f_label, x, ("decoders", i), i, t, s,
            model.num_heads, model.d_model, model.d_ff, parallel_heads,
            memory_mask, prev_out, mark_m=lambda: m_end.append(b.mark()),
        )
        b.blocks.append(
            BlockIR(
                label=m_label,
                op_ids=tuple(range(mark, m_end[0])),
                load_cycles=mha_load,
                channel_hint=0,
                merge_group=group,
                merged_load_cycles=merged_load,
                load_bytes=mha_bytes,
            )
        )
        _load_op(b, f_label, ffn_load, 1)
        b.blocks.append(
            BlockIR(
                label=f_label,
                op_ids=tuple(range(m_end[0], b.mark())),
                load_cycles=ffn_load,
                channel_hint=1,
                overhead_override=0,
                merge_group=group,
                merged_load_cycles=merged_load,
                load_bytes=ffn_bytes,
            )
        )
        x = _opref(out)
        prev_out = (out,)
    return x


# ------------------------------------------------- program entry points
@lru_cache(maxsize=128)
def lower_full_pass(
    model: ModelConfig,
    fabric: Fabric,
    s: int,
    t: int | None = None,
    parallel_heads: int | None = None,
) -> BlockProgram:
    """Lower the full encoder + decoder pass: the program behind the
    Table 5.1 / Fig 5.2 latency numbers and the teacher-forced run."""
    if s <= 0:
        raise ValueError("s must be positive")
    t = s if t is None else t
    b = _Builder(fabric)
    memory = _lower_encoder_stack_into(
        b, model, s, parallel_heads, _ext("x"), "enc_mask"
    )
    out = _lower_decoder_stack_into(
        b, model, t, s, parallel_heads, _ext("dec_in"), memory,
        "dec_self_mask", "dec_memory_mask",
    )
    return b.finish(
        {"encoder_output": memory, "decoder_output": out},
        kind="full_pass", s=s, t=t, parallel_heads=parallel_heads,
        model=model,
    )


@lru_cache(maxsize=128)
def lower_encoder_stack(
    model: ModelConfig,
    fabric: Fabric,
    s: int,
    parallel_heads: int | None = None,
) -> BlockProgram:
    """Lower the encoder stack alone (prefill / streaming chunks)."""
    b = _Builder(fabric)
    out = _lower_encoder_stack_into(b, model, s, parallel_heads, _ext("x"), "enc_mask")
    return b.finish(
        {"output": out}, kind="encoder_stack", s=s,
        parallel_heads=parallel_heads, model=model,
    )


@lru_cache(maxsize=128)
def lower_decoder_stack(
    model: ModelConfig,
    fabric: Fabric,
    t: int,
    s: int,
    parallel_heads: int | None = None,
) -> BlockProgram:
    """Lower the decoder stack alone (teacher-forced / full-prefix)."""
    b = _Builder(fabric)
    out = _lower_decoder_stack_into(
        b, model, t, s, parallel_heads, _ext("x"), _ext("memory"),
        "self_mask", "memory_mask",
    )
    return b.finish(
        {"output": out}, kind="decoder_stack", t=t, s=s,
        parallel_heads=parallel_heads, model=model,
    )


@lru_cache(maxsize=512)
def lower_decode_step(
    model: ModelConfig,
    fabric: Fabric,
    t: int,
    s: int,
    parallel_heads: int | None = None,
    tag: str = "",
) -> BlockProgram:
    """Lower one KV-cached decode step at prefix length ``t`` over an
    ``s``-row memory: a 1-row query through every decoder layer."""
    if t <= 0 or s <= 0:
        raise ValueError("t and s must be positive")
    b = _Builder(fabric)
    out = _lower_decoder_step_stack_into(
        b, model, t, s, parallel_heads, _ext("x"), "memory_mask", tag=tag
    )
    return b.finish(
        {"output": out}, kind="decode_step", t=t, s=s,
        parallel_heads=parallel_heads, model=model,
    )


@lru_cache(maxsize=256)
def lower_attention_head_program(
    fabric: Fabric,
    s_q: int,
    s_k: int,
    d_model: int,
    d_k: int,
    head: int = 0,
    concurrent_psas: int = 1,
    engines: tuple[str, str, str] | None = None,
    label_prefix: str = "",
) -> BlockProgram:
    """One attention head as a stand-alone program (root:
    :class:`repro.model.params.AttentionParams`)."""
    b = _Builder(fabric)
    mark = b.mark()
    out = _lower_attention_head(
        b, "attn_head", _ext("x_q"), _ext("x_kv"), (), head, s_q, s_k,
        d_model, d_k, concurrent_psas,
        engines or _slot_engines(fabric, 0, concurrent_psas), "mask", (),
        label_prefix,
    )
    b.close_block("attn_head", mark)
    return b.finish({"output": out}, kind="attention_head", s_q=s_q, s_k=s_k)


@lru_cache(maxsize=256)
def lower_mha_program(
    fabric: Fabric,
    s_q: int,
    s_k: int,
    num_heads: int,
    d_model: int,
    parallel_heads: int | None = None,
) -> BlockProgram:
    """A full MHA block as a stand-alone program (root: AttentionParams)."""
    b = _Builder(fabric)
    mark = b.mark()
    out = _lower_mha(
        b, "mha", _ext("x_q"), _ext("x_kv"), (), s_q, s_k, num_heads,
        d_model, parallel_heads, "mask", (),
    )
    b.close_block("mha", mark)
    return b.finish({"output": out}, kind="mha", s_q=s_q, s_k=s_k)


@lru_cache(maxsize=256)
def lower_mha_step_program(
    fabric: Fabric,
    t_keys: int,
    num_heads: int,
    d_model: int,
    parallel_heads: int | None = None,
    project_kv: bool = True,
) -> BlockProgram:
    """An MHA decode step as a stand-alone program (root:
    AttentionParams; cache layer 0 of the bound cache list)."""
    if t_keys <= 0:
        raise ValueError("t_keys must be positive")
    b = _Builder(fabric)
    mark = b.mark()
    out = _lower_mha(
        b, "mha_step", _ext("x"), _ext("x"), (), 1, t_keys, num_heads,
        d_model, parallel_heads, "memory_mask" if not project_kv else None,
        (), step_layer=0, project_kv=project_kv, t_keys=t_keys,
    )
    b.close_block("mha_step", mark)
    return b.finish({"output": out}, kind="mha_step", t_keys=t_keys)


@lru_cache(maxsize=256)
def lower_ffn_program(
    fabric: Fabric,
    s: int,
    d_model: int,
    d_ff: int,
    num_heads: int = 8,
    parallel_heads: int | None = None,
) -> BlockProgram:
    """The FFN block as a stand-alone program (root: FeedForwardParams)."""
    b = _Builder(fabric)
    mark = b.mark()
    out = _lower_ffn(
        b, "ffn", _ext("x"), (), s, d_model, d_ff, num_heads,
        parallel_heads, (),
    )
    b.close_block("ffn", mark)
    return b.finish({"output": out}, kind="ffn", s=s)


@lru_cache(maxsize=256)
def lower_encoder_layer_program(
    fabric: Fabric,
    s: int,
    num_heads: int = 8,
    d_model: int = 512,
    d_ff: int = 2048,
    parallel_heads: int | None = None,
) -> BlockProgram:
    """One encoder layer (root: EncoderLayerParams) — the program the
    legacy :func:`repro.hw.block_trace.trace_encoder_block` renders."""
    b = _Builder(fabric)
    mark = b.mark()
    out = _lower_encoder_layer(
        b, "enc1", _ext("x"), (), s, num_heads, d_model, d_ff,
        parallel_heads, "mask", (),
    )
    b.close_block("enc1", mark)
    return b.finish({"output": out}, kind="encoder_layer", s=s)


@lru_cache(maxsize=256)
def lower_decoder_layer_program(
    fabric: Fabric,
    t: int,
    s: int,
    num_heads: int = 8,
    d_model: int = 512,
    d_ff: int = 2048,
    parallel_heads: int | None = None,
) -> BlockProgram:
    """One decoder layer (root: DecoderLayerParams), m/f split."""
    b = _Builder(fabric)
    out = _lower_decoder_stack_like_layer(
        b, t, s, num_heads, d_model, d_ff, parallel_heads
    )
    return b.finish({"output": out}, kind="decoder_layer", t=t, s=s)


def _lower_decoder_stack_like_layer(
    b: _Builder,
    t: int,
    s: int,
    num_heads: int,
    d_model: int,
    d_ff: int,
    parallel_heads: int | None,
) -> int:
    mark = b.mark()
    m_end: list[int] = []
    out = _lower_decoder_layer(
        b, "dec1m", "dec1f", _ext("x"), _ext("memory"), (), t, s,
        num_heads, d_model, d_ff, parallel_heads, "self_mask",
        "memory_mask", (), mark_m=lambda: m_end.append(b.mark()),
    )
    b.blocks.append(
        BlockIR("dec1m", tuple(range(mark, m_end[0])), channel_hint=0,
                merge_group="dec1")
    )
    b.blocks.append(
        BlockIR("dec1f", tuple(range(m_end[0], b.mark())), channel_hint=1,
                overhead_override=0, merge_group="dec1")
    )
    return out


@lru_cache(maxsize=256)
def lower_decoder_step_layer_program(
    fabric: Fabric,
    t: int,
    s: int,
    num_heads: int = 8,
    d_model: int = 512,
    d_ff: int = 2048,
    parallel_heads: int | None = None,
) -> BlockProgram:
    """One decoder layer's KV-cached step (root: DecoderLayerParams,
    cache layer 0 of the bound cache list), m/f split."""
    if t <= 0 or s <= 0:
        raise ValueError("t and s must be positive")
    b = _Builder(fabric)
    mark = b.mark()
    m_end: list[int] = []
    out = _lower_decoder_step_layer(
        b, "dec1m", "dec1f", _ext("x"), (), 0, t, s, num_heads, d_model,
        d_ff, parallel_heads, "memory_mask", (),
        mark_m=lambda: m_end.append(b.mark()),
    )
    b.blocks.append(
        BlockIR("dec1m", tuple(range(mark, m_end[0])), channel_hint=0,
                merge_group="dec1")
    )
    b.blocks.append(
        BlockIR("dec1f", tuple(range(m_end[0], b.mark())), channel_hint=1,
                overhead_override=0, merge_group="dec1")
    )
    return b.finish({"output": out}, kind="decoder_step_layer", t=t, s=s)


# ------------------------------------------------------- cycle executor
def _asap_times(
    program: BlockProgram, op_ids: Sequence[int]
) -> dict[int, tuple[int, int]]:
    """Integer ASAP (start, end) per compute op over the given id set.

    Dependencies outside the set are treated as ready at time 0 — the
    block-level schedulers serialize whole blocks, so cross-block edges
    are satisfied by construction.
    """
    times: dict[int, tuple[int, int]] = {}
    for op_id in op_ids:
        op = program.ops[op_id]
        if op.kind is OpKind.LOAD:
            continue
        start = max((times[d][1] for d in op.deps if d in times), default=0)
        times[op_id] = (start, start + op.cycles)
    return times


def block_compute_cycles(program: BlockProgram, block: BlockIR | str) -> int:
    """ASAP makespan of one block's compute ops (by label or BlockIR)."""
    if isinstance(block, str):
        block = program.block(block)
    times = _asap_times(program, block.op_ids)
    return max((end for _, end in times.values()), default=0)


#: Every lru_cache'd lowering entry point, for cache-pressure telemetry.
_CACHED_LOWERINGS = [
    lower_full_pass,
    lower_encoder_stack,
    lower_decoder_stack,
    lower_decode_step,
    lower_attention_head_program,
    lower_mha_program,
    lower_mha_step_program,
    lower_ffn_program,
    lower_encoder_layer_program,
    lower_decoder_layer_program,
    lower_decoder_step_layer_program,
]


def register_cached_lowering(fn: Any) -> Any:
    """Register an external ``lru_cache``'d lowering (e.g. the optimized
    lowering in :mod:`repro.hw.passes`) with the cache telemetry;
    usable as a decorator, returns ``fn`` unchanged."""
    if not hasattr(fn, "cache_info"):
        raise TypeError("cached lowering must expose cache_info()")
    if fn not in _CACHED_LOWERINGS:
        _CACHED_LOWERINGS.append(fn)
    return fn


def lowering_cache_info() -> dict[str, Any]:
    """``functools.lru_cache`` statistics per lowering entry point."""
    return {fn.__name__: fn.cache_info() for fn in _CACHED_LOWERINGS}


def record_lowering_cache_metrics(
    registry: "obs_metrics.MetricsRegistry | None" = None,
) -> None:
    """Publish lowering-cache hit/miss gauges to the metrics registry."""
    reg = registry if registry is not None else obs_metrics.registry()
    if not reg.enabled:
        return
    for name, info in lowering_cache_info().items():
        reg.gauge("repro.hw.program.lower.cache_hits", lowering=name).set(info.hits)
        reg.gauge("repro.hw.program.lower.cache_misses", lowering=name).set(
            info.misses
        )


def program_op_counts(program: BlockProgram) -> dict[str, int]:
    """Op count per :class:`OpKind` value, sorted by kind name.

    The same lowering feeds every executor, so this count is exact for
    the functional, cycle and trace views alike.
    """
    counts: dict[str, int] = {}
    for op in program.ops:
        counts[op.kind.value] = counts.get(op.kind.value, 0) + 1
    return dict(sorted(counts.items()))


def program_load_bytes(program: BlockProgram) -> int:
    """Total weight bytes the program streams from HBM."""
    return sum(blk.load_bytes for blk in program.blocks)


def program_hbm_bytes(
    program: BlockProgram, architecture: Architecture | str = Architecture.A3
) -> dict[int, int]:
    """Weight bytes per HBM channel under one architecture's placement.

    Replays the block schedule and attributes each work unit's bytes to
    the channel its load actually landed on, so the per-channel sums
    always total :func:`program_load_bytes`.
    """
    arch = Architecture(architecture)
    units = _work_units(program, arch)
    bytes_by_label = {
        work.label: sum(blk.load_bytes for blk in group) for work, group in units
    }
    sched = schedule(
        arch, [work for work, _ in units], 0, **schedule_params_for(program, arch)
    )
    per_channel: dict[int, int] = {}
    for event in sched.timeline.events:
        if event.kind != "load" or not event.engine.startswith("hbm"):
            continue
        label = event.label[3:] if event.label.startswith("LW:") else event.label
        channel = int(event.engine[len("hbm"):])
        per_channel[channel] = per_channel.get(channel, 0) + bytes_by_label.get(
            label, 0
        )
    return dict(sorted(per_channel.items()))


def _work_units(
    program: BlockProgram, architecture: Architecture | str
) -> list[tuple[BlockWork, tuple[BlockIR, ...]]]:
    """Blocks folded into schedulable BlockWork units.

    Under A3 every block is its own unit (per-part loads on their
    hinted channels); under A1/A2 blocks sharing a ``merge_group`` fuse
    into one unit with the merged load and the union makespan.
    """
    arch = Architecture(architecture)
    units: list[tuple[BlockWork, tuple[BlockIR, ...]]] = []
    blocks = program.blocks
    i = 0
    while i < len(blocks):
        blk = blocks[i]
        group = [blk]
        if arch is not Architecture.A3 and blk.merge_group is not None:
            while (
                i + len(group) < len(blocks)
                and blocks[i + len(group)].merge_group == blk.merge_group
            ):
                group.append(blocks[i + len(group)])
        if len(group) > 1:
            op_ids = [oid for g in group for oid in g.op_ids]
            times = _asap_times(program, op_ids)
            comp = max((end for _, end in times.values()), default=0)
            load = (
                blk.merged_load_cycles
                if blk.merged_load_cycles is not None
                else sum(g.load_cycles for g in group)
            )
            work = BlockWork(blk.merge_group, load, comp)
        else:
            work = BlockWork(
                blk.label,
                blk.load_cycles,
                block_compute_cycles(program, blk),
                channel_hint=blk.channel_hint if arch is Architecture.A3 else None,
                overhead_override=(
                    blk.overhead_override if arch is Architecture.A3 else None
                ),
            )
        units.append((work, tuple(group)))
        i += len(group)
    return units


def program_block_work(
    program: BlockProgram, architecture: Architecture | str
) -> list[BlockWork]:
    """The cycle executor's view: per-unit load/compute work items,
    identical to what the legacy ``LatencyModel.build_blocks`` chained
    by hand."""
    return [work for work, _ in _work_units(program, architecture)]


#: Scheduler keyword parameters each architecture understands; the
#: meta-driven ``schedule_params`` entries outside this set are dropped
#: when scheduling under that architecture (a prefetch-depth choice is
#: meaningless to A1 and must not break A1/A2 equivalence runs).
_ARCH_SCHEDULE_PARAMS = {
    Architecture.A1: frozenset(),
    Architecture.A2: frozenset({"num_weight_buffers"}),
    Architecture.A3: frozenset({"num_channels", "num_weight_buffers"}),
}


def schedule_params_for(
    program: BlockProgram, architecture: Architecture | str
) -> dict[str, int]:
    """The program's ``meta["schedule_params"]`` filtered down to the
    parameters the requested architecture's scheduler accepts.

    Optimizer passes record their prefetch-depth / channel choices in
    program meta; every scheduling entry point funnels through this so
    a transformed program is *self-scheduling* — callers never need to
    thread pass parameters alongside the program.
    """
    arch = Architecture(architecture)
    params = program.meta.get("schedule_params") or {}
    allowed = _ARCH_SCHEDULE_PARAMS[arch]
    return {k: int(v) for k, v in params.items() if k in allowed}


def schedule_program(
    program: BlockProgram,
    architecture: Architecture | str = Architecture.A3,
    block_overhead: int = 0,
) -> ScheduleResult:
    """Run the A1/A2/A3 schedule policy over the program's blocks."""
    return schedule(
        architecture,
        program_block_work(program, architecture),
        block_overhead,
        **schedule_params_for(program, architecture),
    )


# ------------------------------------------------------- trace executor
def _emit_ops(
    program: BlockProgram,
    op_ids: Sequence[int],
    offset: float,
    timeline: Timeline,
) -> int:
    """Emit one work unit's op events at ``offset``; returns its span."""
    times = _asap_times(program, op_ids)
    span = 0
    for op_id, (start, end) in times.items():
        op = program.ops[op_id]
        span = max(span, end)
        if op.cycles <= 0:
            continue
        kind = "stream" if op.kind is OpKind.STREAM else "compute"
        for engine in op.engines:
            timeline.add(engine, op.label, offset + start, offset + end, kind=kind)
    return span


def trace_block(program: BlockProgram, block_label: str | None = None) -> Timeline:
    """Op-level timeline of one block, starting at cycle 0 (the Fig
    4.13 Gantt view; loads and dispatch overheads excluded)."""
    blk = (
        program.blocks[0] if block_label is None else program.block(block_label)
    )
    timeline = Timeline()
    _emit_ops(program, blk.op_ids, 0.0, timeline)
    return timeline


def trace_program_with_schedule(
    program: BlockProgram,
    architecture: Architecture | str = Architecture.A3,
    block_overhead: int = 0,
) -> tuple[Timeline, ScheduleResult]:
    """:func:`trace_program` plus the :class:`ScheduleResult` it is
    built from.  The trace executor already runs the block scheduler to
    place the HBM lanes, so callers needing both views (the telemetry
    probe, ``repro-asr profile``) get them from one scheduling pass
    instead of paying :func:`schedule_program` again."""
    arch = Architecture(architecture)
    units = _work_units(program, arch)
    sched = schedule(
        arch,
        [w for w, _ in units],
        block_overhead,
        **schedule_params_for(program, arch),
    )
    starts: dict[str, float] = {}
    for event in sched.timeline.events:
        if event.engine == "compute" and event.label.startswith("C:"):
            starts[event.label[2:]] = event.start
    timeline = Timeline()
    for event in sched.timeline.events:
        if event.kind == "load":
            timeline.add(event.engine, event.label, event.start, event.end, kind="load")
    for work, group in units:
        op_ids = [oid for blk in group for oid in blk.op_ids]
        start = starts[work.label]
        span = _emit_ops(program, op_ids, start, timeline)
        overhead = work.overhead(block_overhead)
        if overhead > 0:
            timeline.add(
                "host",
                f"disp:{work.label}",
                start + span,
                start + span + overhead,
                kind="overhead",
            )
    timeline.validate_no_engine_overlap()
    return timeline, sched


@dataclass(frozen=True)
class UnitSpan:
    """Where one schedulable work unit landed under an architecture.

    A unit is a :class:`BlockWork` item (one block under A3, a fused
    merge group under A1/A2).  The compute chain is strictly serial, so
    consecutive ``compute_end``/``compute_start`` pairs bound the
    exposed load stalls — the quantities the stall classifier in
    :mod:`repro.hw.introspect` attributes per cause.
    """

    label: str
    #: Labels of the BlockIRs folded into this unit.
    blocks: tuple[str, ...]
    #: When the unit's ops begin executing (global cycle).
    compute_start: float
    #: ASAP makespan of the unit's compute ops.
    compute_span: int
    #: Host dispatch overhead serialized after the ops.
    overhead: int
    #: ``compute_start + compute_span + overhead``.
    compute_end: float
    load_start: float
    load_end: float
    #: HBM lane the unit's weight load ran on ("" when it has no load).
    load_engine: str


def program_unit_spans(
    program: BlockProgram,
    architecture: Architecture | str = Architecture.A3,
    block_overhead: int = 0,
    sched: ScheduleResult | None = None,
) -> tuple[list[UnitSpan], ScheduleResult]:
    """Per-unit placement under one architecture's block schedule.

    Pass an existing ``sched`` (from the same program, architecture and
    overhead) to reuse its scheduling pass instead of paying another.
    """
    arch = Architecture(architecture)
    units = _work_units(program, arch)
    if sched is None:
        sched = schedule(
            arch,
            [w for w, _ in units],
            block_overhead,
            **schedule_params_for(program, arch),
        )
    loads: dict[str, Any] = {}
    comps: dict[str, Any] = {}
    for event in sched.timeline.events:
        label = event.label
        if event.kind == "load":
            loads[label[3:] if label.startswith("LW:") else label] = event
        elif event.engine == "compute" and label.startswith("C:"):
            comps[label[2:]] = event
    spans: list[UnitSpan] = []
    for work, group in units:
        comp = comps[work.label]
        load = loads.get(work.label)
        op_ids = [oid for blk in group for oid in blk.op_ids]
        times = _asap_times(program, op_ids)
        spans.append(
            UnitSpan(
                label=work.label,
                blocks=tuple(blk.label for blk in group),
                compute_start=comp.start,
                compute_span=max((end for _, end in times.values()), default=0),
                overhead=work.overhead(block_overhead),
                compute_end=comp.end,
                load_start=load.start if load is not None else comp.start,
                load_end=load.end if load is not None else comp.start,
                load_engine=load.engine if load is not None else "",
            )
        )
    return spans, sched


def trace_program(
    program: BlockProgram,
    architecture: Architecture | str = Architecture.A3,
    block_overhead: int = 0,
) -> Timeline:
    """Full-program timeline under one architecture: HBM channel lanes
    from the block schedule, op-level engine lanes from the dependency
    ASAP, and host dispatch overheads — with a makespan equal to the
    cycle executor's ``total_cycles``."""
    timeline, _ = trace_program_with_schedule(program, architecture, block_overhead)
    return timeline


# -------------------------------------------------- functional executor
def execute_program(
    program: BlockProgram,
    root: Any = None,
    inputs: dict[str, np.ndarray | None] | None = None,
    caches: Sequence[Any] | None = None,
    weight_hook: Callable[[ParamRef, np.ndarray], np.ndarray] | None = None,
) -> ProgramRun:
    """Run the numpy dataflow of a program.

    ``root`` is the parameter tree the program's :class:`ParamRef`
    paths resolve against; ``inputs`` binds the external names;
    ``caches`` binds per-layer :class:`repro.hw.kv_cache.LayerKVCache`
    objects for step programs.  ``weight_hook`` sees every resolved
    parameter array (with its ref) before use — the fault-injection
    transform plugs in here.
    """
    program_kind = str(program.meta.get("kind", "unknown"))
    with obs_spans.tracer().span("hw.execute_program", kind=program_kind):
        run = _execute_ops(program, root, inputs, caches, weight_hook)
    reg = obs_metrics.registry()
    if reg.enabled:
        reg.counter("repro.hw.program.executions", kind=program_kind).inc()
        for op_kind, count in program_op_counts(program).items():
            reg.counter("repro.hw.program.ops", kind=op_kind).inc(count)
        reg.counter("repro.hw.hbm.bytes_streamed").inc(program_load_bytes(program))
        record_lowering_cache_metrics(reg)
    return run


def _execute_ops(
    program: BlockProgram,
    root: Any,
    inputs: dict[str, np.ndarray | None] | None,
    caches: Sequence[Any] | None,
    weight_hook: Callable[[ParamRef, np.ndarray], np.ndarray] | None,
) -> ProgramRun:
    fabric = program.fabric
    bound = inputs or {}
    values: dict[int, np.ndarray] = {}

    def value(ref: ValueRef) -> np.ndarray:
        if ref.kind == "op":
            return values[ref.key]
        if ref.kind == "ext":
            if ref.key not in bound:
                raise KeyError(f"missing external input '{ref.key}'")
            return bound[ref.key]
        which, layer, head = ref.key
        if caches is None:
            raise ValueError("program references a KV cache but none was bound")
        return getattr(caches[layer], which)[head]

    def weight(op: Op, idx: int, sliced: bool = False) -> np.ndarray:
        ref = op.params[idx]
        arr = ref.resolve(root)
        if weight_hook is not None:
            arr = weight_hook(ref, arr)
        head = op.attrs.get("head") if sliced else None
        return arr if head is None else arr[head]

    for op in program.ops:
        sem = op.semantic
        if sem is None:
            continue
        if sem == "mm1":
            out = mm1(
                fabric, value(op.inputs[0]), weight(op, 0, sliced=True),
                op.attrs.get("concurrent_psas", 1),
            ).output
        elif sem == "bias":
            out = bias_unit(value(op.inputs[0]), weight(op, 0, sliced=True))
        elif sem == "mm2":
            out = mm2(fabric, value(op.inputs[0]), value(op.inputs[1])).output
        elif sem == "scsm":
            mask_name = op.attrs.get("mask")
            mask = bound.get(mask_name) if mask_name else None
            out = softmax_unit(
                scale_scores(value(op.inputs[0]), op.attrs["d_k"]), mask=mask
            )
        elif sem == "mm3":
            out = mm3(fabric, value(op.inputs[0]), value(op.inputs[1])).output
        elif sem == "mm4":
            out = mm4(
                fabric, [value(r) for r in op.inputs], weight(op, 0)
            ).output
        elif sem == "mm5":
            out = mm5(fabric, value(op.inputs[0]), weight(op, 0)).output
        elif sem == "bias_relu":
            out = relu_unit(bias_unit(value(op.inputs[0]), weight(op, 0)))
        elif sem == "mm6":
            out = mm6(fabric, value(op.inputs[0]), weight(op, 0)).output
        elif sem == "add_norm":
            out = add_norm_unit(
                value(op.inputs[0]), value(op.inputs[1]),
                weight(op, 0), weight(op, 1),
            )
        elif sem == "cache_append_k":
            if caches is None:
                raise ValueError("cache op requires a bound cache")
            caches[op.attrs["layer"]].append_self_k(
                op.attrs["head"], value(op.inputs[0])
            )
            continue
        elif sem == "cache_append_v":
            if caches is None:
                raise ValueError("cache op requires a bound cache")
            caches[op.attrs["layer"]].append_self_v(
                op.attrs["head"], value(op.inputs[0])
            )
            continue
        else:
            raise ValueError(f"unknown op semantic '{sem}'")
        values[op.op_id] = out

    outputs = {name: value(ref) for name, ref in program.outputs.items()}
    block_cycles = {
        blk.label: block_compute_cycles(program, blk) for blk in program.blocks
    }
    return ProgramRun(
        outputs=outputs, block_compute_cycles=block_cycles, values=values
    )


__all__ = [
    "OpKind",
    "Op",
    "ValueRef",
    "ParamRef",
    "BlockIR",
    "BlockProgram",
    "ProgramRun",
    "resolve_head_parallelism",
    "lower_full_pass",
    "lower_encoder_stack",
    "lower_decoder_stack",
    "lower_decode_step",
    "lower_attention_head_program",
    "lower_mha_program",
    "lower_mha_step_program",
    "lower_ffn_program",
    "lower_encoder_layer_program",
    "lower_decoder_layer_program",
    "lower_decoder_step_layer_program",
    "block_compute_cycles",
    "program_block_work",
    "program_op_counts",
    "program_load_bytes",
    "program_hbm_bytes",
    "lowering_cache_info",
    "record_lowering_cache_metrics",
    "register_cached_lowering",
    "schedule_params_for",
    "schedule_program",
    "trace_block",
    "trace_program",
    "trace_program_with_schedule",
    "UnitSpan",
    "program_unit_spans",
    "execute_program",
]
