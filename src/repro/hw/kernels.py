"""Matrix-multiplication kernels MM1..MM6 (Section 4.4, Figs 4.3-4.7).

Every matmul of the Transformer is routed onto the eight PSAs using the
paper's stripe decompositions:

* **MM1** (s x 512)(512 x 64): Input1 column-striped / Input2 row-striped
  into eight 64-wide panels; eight partial products folded by an adder
  pipelined with the PSA (Fig 4.3).  Runs on *one* PSA (or ``c``
  concurrent PSAs in the design-space exploration of Table 5.3).
* **MM2/MM3** (s x 64)(64 x s), (s x s)(s x 64): small; padded up to the
  PSA tile and reusing a single PSA (Fig 4.4).
* **MM4** (s x 512)(512 x 512): head-striped over all eight PSAs across
  both SLRs (Fig 4.5).
* **MM5** (s x 512)(512 x 2048): inner dim split in two, output columns
  split across SLRs; all eight PSAs busy (Fig 4.6).
* **MM6** (s x 2048)(2048 x 512): inner dim split in four per SLR; SLR
  partials combined over the inter-SLR interconnect (Fig 4.7).

Each kernel returns both the functional product (fp32, hardware
accumulation order) and its cycle estimate.  Cycle estimates apply the
fitted initiation-interval multipliers from
:class:`repro.config.CalibrationConfig` (attention class for MM1..MM4,
FFN class for MM5/MM6).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.config import CalibrationConfig, HardwareConfig
from repro.hw.adder import VectorAdder
from repro.hw.nonlinear import NonlinearUnits
from repro.hw.systolic import SystolicArray, ceil_div
from repro.model.ops import MODEL_DTYPE


@dataclass(frozen=True)
class KernelResult:
    """Functional output plus the cycles the kernel occupied."""

    output: np.ndarray
    cycles: int

    def __post_init__(self) -> None:
        if self.cycles < 0:
            raise ValueError("cycles must be non-negative")


@dataclass(frozen=True)
class Fabric:
    """The compute fabric shared by all kernels: PSAs, adders, units."""

    hardware: HardwareConfig = field(default_factory=HardwareConfig)
    calibration: CalibrationConfig = field(default_factory=CalibrationConfig)

    @property
    def psa(self) -> SystolicArray:
        return SystolicArray(self.hardware.psa_rows, self.hardware.psa_cols)

    @property
    def adder(self) -> VectorAdder:
        return VectorAdder(width=self.hardware.adder_width)

    @property
    def units(self) -> NonlinearUnits:
        return NonlinearUnits(lanes=self.hardware.psa_cols)

    # --------------------------------------------------------- timing
    def pass_cycles(self, l: int, m: int, n: int, ffn_class: bool = False) -> int:
        """One striped PSA pass with the fitted II multiplier applied."""
        ii = self.calibration.ffn_ii if ffn_class else self.calibration.attention_ii
        return int(round(self.psa.pass_cycles(l, m, n) * ii))

    @property
    def invocation_overhead(self) -> int:
        return self.calibration.invocation_overhead_cycles

    def isc_transfer_cycles(self, rows: int, cols: int) -> int:
        """Inter-SLR AXI-Stream transfer of a (rows x cols) fp32 panel.

        The stream moves one 512-bit flit (16 fp32 values) per cycle.
        """
        elements = rows * cols
        return ceil_div(elements, 16)


def matmul_dims(s: int, d_model: int = 512, d_k: int = 64, d_ff: int = 2048) -> dict[str, tuple[tuple[int, int], tuple[int, int], tuple[int, int]]]:
    """Table 4.2: (Input1, Input2, Output) shapes of MM1..MM6."""
    if s <= 0:
        raise ValueError("s must be positive")
    return {
        "MM1": ((s, d_model), (d_model, d_k), (s, d_k)),
        "MM2": ((s, d_k), (d_k, s), (s, s)),
        "MM3": ((s, s), (s, d_k), (s, d_k)),
        "MM4": ((s, d_model), (d_model, d_model), (s, d_model)),
        "MM5": ((s, d_model), (d_model, d_ff), (s, d_ff)),
        "MM6": ((s, d_ff), (d_ff, d_model), (s, d_model)),
    }


# --------------------------------------------------------------- cycles
# Pure cycle formulas, usable without data (the controller's latency
# estimator and the functional kernels below share these).
def mm1_cycles(
    fabric: Fabric, s: int, d_model: int, d_k: int, concurrent_psas: int = 1
) -> int:
    """Cycles of one MM1 invocation (Fig 4.3 stripe schedule)."""
    if concurrent_psas < 1:
        raise ValueError("concurrent_psas must be >= 1")
    stripe = fabric.hardware.psa_cols
    # A trailing partial stripe costs a full pass (the PSA streams the
    # same tile shape regardless), so round up.
    num_stripes = ceil_div(d_model, stripe)
    serial = ceil_div(num_stripes, concurrent_psas)
    return (
        serial * fabric.pass_cycles(s, stripe, d_k)
        + fabric.invocation_overhead
        + fabric.adder.accumulate_cycles(
            num_stripes, s, d_k, pipelined=fabric.hardware.pipelined_adders
        )
    )


def mm2_cycles(fabric: Fabric, s_q: int, s_k: int, d_k: int) -> int:
    """Cycles of MM2 = Q K^T with tile padding (Fig 4.4, top)."""
    padded_n = max(s_k, fabric.hardware.psa_cols)
    return fabric.pass_cycles(s_q, d_k, padded_n) + fabric.invocation_overhead


def mm3_cycles(fabric: Fabric, s_q: int, s_k: int, d_k: int) -> int:
    """Cycles of MM3 = Sm V with tile padding (Fig 4.4, bottom)."""
    padded_m = max(s_k, fabric.hardware.psa_cols)
    return fabric.pass_cycles(s_q, padded_m, d_k) + fabric.invocation_overhead


def mm4_cycles(fabric: Fabric, s: int, num_heads: int, d_k: int, d_out: int) -> int:
    """Cycles of the head-striped MM4 over all PSAs (Fig 4.5)."""
    waves = ceil_div(num_heads, fabric.hardware.total_psas)
    return (
        waves * fabric.pass_cycles(s, d_k, d_out)
        + fabric.invocation_overhead
        + fabric.adder.accumulate_cycles(
            num_heads, s, d_out, pipelined=fabric.hardware.pipelined_adders
        )
        + fabric.isc_transfer_cycles(s, d_out)
    )


def mm5_cycles(fabric: Fabric, s: int, d_model: int, d_ff: int) -> int:
    """Cycles of the SLR-split MM5 (Fig 4.6)."""
    num_products = 2 * 4
    waves = ceil_div(num_products, fabric.hardware.total_psas)
    mc = ceil_div(d_model, 2)
    nc = ceil_div(d_ff, 4)
    return (
        waves * fabric.pass_cycles(s, mc, nc, ffn_class=True)
        + fabric.invocation_overhead
        + fabric.adder.accumulate_cycles(
            2, s, nc, pipelined=fabric.hardware.pipelined_adders
        )
    )


def mm6_cycles(fabric: Fabric, s: int, d_ff: int, d_model: int) -> int:
    """Cycles of the SLR-split MM6 with the final ISC merge (Fig 4.7)."""
    num_products = 8
    waves = ceil_div(num_products, fabric.hardware.total_psas)
    mc = ceil_div(d_ff, 8)
    return (
        waves * fabric.pass_cycles(s, mc, d_model, ffn_class=True)
        + fabric.invocation_overhead
        + fabric.adder.accumulate_cycles(
            8, s, d_model, pipelined=fabric.hardware.pipelined_adders
        )
        + fabric.isc_transfer_cycles(s, d_model)
    )


def _check_2d(name: str, arr: np.ndarray, cols: int | None = None) -> np.ndarray:
    a = np.asarray(arr, dtype=MODEL_DTYPE)
    if a.ndim != 2:
        raise ValueError(f"{name} must be 2-D; got shape {a.shape}")
    if cols is not None and a.shape[1] != cols:
        raise ValueError(f"{name} must have {cols} columns; got {a.shape}")
    return a


def _check_activation(name: str, arr: np.ndarray) -> np.ndarray:
    """An activation operand: 2-D (s, d) or batched 3-D (B, s, d).

    Weights stay strictly 2-D (:func:`_check_2d`) — a batch shares one
    parameter set, which is exactly why the batched kernels can flatten
    the leading dimension into one large GEMM.
    """
    a = np.asarray(arr, dtype=MODEL_DTYPE)
    if a.ndim not in (2, 3):
        raise ValueError(f"{name} must be 2-D or 3-D; got shape {a.shape}")
    if a.ndim == 3 and a.shape[0] < 1:
        raise ValueError(f"{name} batch dimension must be >= 1; got {a.shape}")
    return a


def _single_row_batch(x: np.ndarray) -> bool:
    """True for a batched activation carrying one row per member
    ((B, 1, d) — a grouped decode step).  These must NOT be flattened
    into a (B, d) GEMM: BLAS dispatches M=1 products to a gemv kernel
    whose contraction order differs from sgemm's, so flattening would
    break bit-identity with the scalar decode path.  M >= 2 row panels
    are contraction-order-stable across M, which the equivalence tests
    pin."""
    return x.ndim == 3 and x.shape[1] == 1


def mm1(
    fabric: Fabric,
    x: np.ndarray,
    w: np.ndarray,
    concurrent_psas: int = 1,
) -> KernelResult:
    """MM1: (s x d_model) @ (d_model x d_k) via eight 64-wide stripes.

    ``concurrent_psas`` > 1 splits the stripes over several PSAs (the
    Table 5.3 design points); the partial products are still folded by
    the pipelined adder, so only the final fold is exposed.

    A 3-D ``x`` of shape (B, s, d_model) runs as a single (B*s, d_model)
    GEMM against the shared weight panel — each output row's fp32
    contraction is unchanged, so the result is bit-identical to B
    independent 2-D calls.
    """
    x = _check_activation("x", x)
    w = _check_2d("w", w)
    if x.shape[-1] != w.shape[0]:
        raise ValueError(f"inner mismatch: {x.shape} @ {w.shape}")
    if concurrent_psas < 1:
        raise ValueError("concurrent_psas must be >= 1")
    if _single_row_batch(x):
        parts = [mm1(fabric, x[i], w, concurrent_psas) for i in range(x.shape[0])]
        return KernelResult(
            output=np.stack([p.output for p in parts]),
            cycles=sum(p.cycles for p in parts),
        )
    batch = x.shape[0] if x.ndim == 3 else None
    if batch is not None:
        x = x.reshape(batch * x.shape[1], x.shape[2])
    s, d_model = x.shape
    d_k = w.shape[1]
    stripe = fabric.hardware.psa_cols
    num_stripes = ceil_div(d_model, stripe)

    psa = fabric.psa
    partials = [
        psa.matmul(
            x[:, i * stripe : (i + 1) * stripe],
            w[i * stripe : (i + 1) * stripe],
        )
        for i in range(num_stripes)
    ]
    out = VectorAdder.accumulate(partials)
    if batch is not None:
        out = out.reshape(batch, -1, d_k)

    cycles = mm1_cycles(fabric, s, d_model, d_k, concurrent_psas)
    return KernelResult(output=out, cycles=cycles)


def _paired_batch(name_a: str, a: np.ndarray, name_b: str, b: np.ndarray) -> int | None:
    """Validate two activation operands batch together; returns B or
    None (both 2-D).  MM2/MM3 take two *per-sequence* activations, so
    batching loops member-wise instead of flattening."""
    if a.ndim != b.ndim:
        raise ValueError(
            f"{name_a} and {name_b} must both be batched or both 2-D; "
            f"got {a.shape} and {b.shape}"
        )
    if a.ndim == 2:
        return None
    if a.shape[0] != b.shape[0]:
        raise ValueError(
            f"{name_a} and {name_b} disagree on batch size: "
            f"{a.shape} vs {b.shape}"
        )
    return a.shape[0]


def mm2(fabric: Fabric, q: np.ndarray, k: np.ndarray) -> KernelResult:
    """MM2: Q @ K^T with the K^T panel padded to the PSA tile width.

    Batched (B, s_q, d_k) x (B, s_k, d_k) operands attend member-wise
    (each sequence has its own keys); one padded pass per member.
    """
    q = _check_activation("q", q)
    k = _check_activation("k", k)
    if q.shape[-1] != k.shape[-1]:
        raise ValueError("q and k must share the key dimension")
    batch = _paired_batch("q", q, "k", k)
    if batch is not None:
        parts = [mm2(fabric, q[i], k[i]) for i in range(batch)]
        return KernelResult(
            output=np.stack([p.output for p in parts]),
            cycles=sum(p.cycles for p in parts),
        )
    s_q, d_k = q.shape
    s_k = k.shape[0]
    out = fabric.psa.matmul(q, k.T)
    return KernelResult(output=out, cycles=mm2_cycles(fabric, s_q, s_k, d_k))


def mm3(fabric: Fabric, attn: np.ndarray, v: np.ndarray) -> KernelResult:
    """MM3: softmaxed scores @ V, inner dim padded to the tile width.

    Batched operands multiply member-wise, mirroring :func:`mm2`.
    """
    attn = _check_activation("attn", attn)
    v = _check_activation("v", v)
    if attn.shape[-1] != v.shape[-2]:
        raise ValueError(f"inner mismatch: {attn.shape} @ {v.shape}")
    batch = _paired_batch("attn", attn, "v", v)
    if batch is not None:
        parts = [mm3(fabric, attn[i], v[i]) for i in range(batch)]
        return KernelResult(
            output=np.stack([p.output for p in parts]),
            cycles=sum(p.cycles for p in parts),
        )
    s_q, s_k = attn.shape
    d_k = v.shape[1]
    out = fabric.psa.matmul(attn, v)
    return KernelResult(output=out, cycles=mm3_cycles(fabric, s_q, s_k, d_k))


def mm4(
    fabric: Fabric, head_outputs: list[np.ndarray], wo: np.ndarray
) -> KernelResult:
    """MM4: concat(heads) @ W_A striped per head over all eight PSAs.

    Head ``h``'s (s x 64) output multiplies rows ``[64h, 64(h+1))`` of
    W_A; the eight (s x 512) partials are folded by the pipelined
    adders, with the two SLR-level partials meeting over the ISC.
    """
    if not head_outputs:
        raise ValueError("need at least one head output")
    wo = _check_2d("wo", wo)
    heads = [_check_activation(f"head[{i}]", h) for i, h in enumerate(head_outputs)]
    shape = heads[0].shape
    for i, h in enumerate(heads):
        if h.shape != shape:
            raise ValueError(f"head[{i}] shape {h.shape} != {shape}")
    if _single_row_batch(heads[0]):
        parts = [
            mm4(fabric, [h[i] for h in heads], wo) for i in range(shape[0])
        ]
        return KernelResult(
            output=np.stack([p.output for p in parts]),
            cycles=sum(p.cycles for p in parts),
        )
    batch = shape[0] if heads[0].ndim == 3 else None
    if batch is not None:
        # Shared W_A: flatten every head to (B*s, d_k) and run the
        # per-head stripes as single large GEMMs (bit-identical rows).
        heads = [h.reshape(batch * h.shape[1], h.shape[2]) for h in heads]
    s, d_k = heads[0].shape
    if wo.shape[0] != d_k * len(heads):
        raise ValueError(
            f"wo must have {d_k * len(heads)} rows; got {wo.shape[0]}"
        )
    d_out = wo.shape[1]
    psa = fabric.psa
    partials = [
        psa.matmul(h, wo[i * d_k : (i + 1) * d_k]) for i, h in enumerate(heads)
    ]
    out = VectorAdder.accumulate(partials)
    if batch is not None:
        out = out.reshape(batch, -1, d_out)

    cycles = mm4_cycles(fabric, s, len(heads), d_k, d_out)
    return KernelResult(output=out, cycles=cycles)


def _split_inner_matmul(
    fabric: Fabric,
    x: np.ndarray,
    w: np.ndarray,
    inner_split: int,
    col_split: int,
) -> tuple[np.ndarray, int]:
    """Shared MM5/MM6 machinery: split the inner dim ``inner_split``
    ways and the output columns ``col_split`` ways; each (chunk, column
    panel) pair maps to one PSA.  Returns (output, parallel psa count).
    """
    s, m = x.shape
    n = w.shape[1]
    inner_split = min(inner_split, m)
    col_split = min(col_split, n)
    row_bounds = np.array_split(np.arange(m), inner_split)
    col_bounds = np.array_split(np.arange(n), col_split)
    psa = fabric.psa
    out = np.zeros((s, n), dtype=MODEL_DTYPE)
    for cols in col_bounds:
        c0, c1 = cols[0], cols[-1] + 1
        partials = [
            psa.matmul(x[:, rows[0] : rows[-1] + 1], w[rows[0] : rows[-1] + 1, c0:c1])
            for rows in row_bounds
        ]
        out[:, c0:c1] = VectorAdder.accumulate(partials)
    return out, inner_split * col_split


def mm5(fabric: Fabric, x: np.ndarray, w1: np.ndarray) -> KernelResult:
    """MM5: (s x 512) @ (512 x 2048) over both SLRs (Fig 4.6).

    Inner dim split in two (s x 256 chunks), output columns split in
    four 512-wide panels (two per SLR); 8 PSAs run one partial each.
    A 3-D input flattens to one (B*s, d_model) GEMM over the shared W1.
    """
    x = _check_activation("x", x)
    w1 = _check_2d("w1", w1)
    if x.shape[-1] != w1.shape[0]:
        raise ValueError(f"inner mismatch: {x.shape} @ {w1.shape}")
    if _single_row_batch(x):
        parts = [mm5(fabric, x[i], w1) for i in range(x.shape[0])]
        return KernelResult(
            output=np.stack([p.output for p in parts]),
            cycles=sum(p.cycles for p in parts),
        )
    batch = x.shape[0] if x.ndim == 3 else None
    if batch is not None:
        x = x.reshape(batch * x.shape[1], x.shape[2])
    s = x.shape[0]
    out, _ = _split_inner_matmul(fabric, x, w1, inner_split=2, col_split=4)
    if batch is not None:
        out = out.reshape(batch, -1, w1.shape[1])
    cycles = mm5_cycles(fabric, s, x.shape[1], w1.shape[1])
    return KernelResult(output=out, cycles=cycles)


def mm6(fabric: Fabric, h: np.ndarray, w2: np.ndarray) -> KernelResult:
    """MM6: (s x 2048) @ (2048 x 512) over both SLRs (Fig 4.7).

    Each SLR holds half the hidden activations and a 1024 x 512 weight
    panel, split into four s x 256 by 256 x 512 products; the two SLR
    partials are added after an ISC transfer.  A 3-D input flattens to
    one (B*s, d_ff) GEMM over the shared W2.
    """
    h = _check_activation("h", h)
    w2 = _check_2d("w2", w2)
    if h.shape[-1] != w2.shape[0]:
        raise ValueError(f"inner mismatch: {h.shape} @ {w2.shape}")
    if _single_row_batch(h):
        parts = [mm6(fabric, h[i], w2) for i in range(h.shape[0])]
        return KernelResult(
            output=np.stack([p.output for p in parts]),
            cycles=sum(p.cycles for p in parts),
        )
    batch = h.shape[0] if h.ndim == 3 else None
    if batch is not None:
        h = h.reshape(batch * h.shape[1], h.shape[2])
    s = h.shape[0]
    out, _ = _split_inner_matmul(fabric, h, w2, inner_split=8, col_split=1)
    if batch is not None:
        out = out.reshape(batch, -1, w2.shape[1])
    cycles = mm6_cycles(fabric, s, h.shape[1], w2.shape[1])
    return KernelResult(output=out, cycles=cycles)
