"""Non-matmul function units: scale, softmax, ReLU, Add-Norm.

The paper schedules the scaling (Sc) and softmax (Sm) of the attention
scores in parallel with MM1(V) because ``t_Sc + t_Sm < t_MM1``
(Fig 4.13); ReLU rides on the MM5 output stream; the Add-Norm block is
executed as independent Add and Norm steps split over the two SLRs.
Each unit provides the functional result plus a cycle estimate.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.model.layernorm import layer_norm
from repro.model.masks import apply_mask
from repro.model.ops import MODEL_DTYPE, softmax


@dataclass(frozen=True)
class NonlinearUnits:
    """Cycle parameters of the scalar/vector function units."""

    #: Lanes of the element-wise units (matches the PSA column width).
    lanes: int = 64
    #: Pipeline depth of the exponential approximation.
    exp_depth: int = 24
    #: Pipeline depth of divide / rsqrt.
    div_depth: int = 28

    def __post_init__(self) -> None:
        if self.lanes <= 0:
            raise ValueError("lanes must be positive")
        if self.exp_depth < 1 or self.div_depth < 1:
            raise ValueError("pipeline depths must be >= 1")

    def _stream_cycles(self, rows: int, cols: int, depth: int) -> int:
        if rows <= 0 or cols <= 0:
            raise ValueError("rows and cols must be positive")
        chunks = rows * -(-cols // self.lanes)
        return chunks + depth

    def scale_cycles(self, rows: int, cols: int) -> int:
        """Multiply a (rows x cols) score matrix by 1/sqrt(d_k)."""
        return self._stream_cycles(rows, cols, self.div_depth)

    def softmax_cycles(self, rows: int, cols: int) -> int:
        """Row-wise softmax: max-scan, exp, sum-scan, divide (4 passes)."""
        return 4 * self._stream_cycles(rows, cols, self.exp_depth)

    def relu_cycles(self, rows: int, cols: int) -> int:
        return self._stream_cycles(rows, cols, 1)

    def bias_cycles(self, rows: int, cols: int) -> int:
        """Broadcast-add a (cols,) bias over a (rows x cols) matrix."""
        return self._stream_cycles(rows, cols, 1)

    def add_norm_cycles(self, rows: int, cols: int) -> int:
        """Residual add + layer norm (mean, var, normalize: 3 passes)."""
        return 4 * self._stream_cycles(rows, cols, self.div_depth)


# ------------------------------------------------------------ functional
def scale_scores(scores: np.ndarray, d_k: int) -> np.ndarray:
    """The Sc unit: divide attention scores by sqrt(d_k)."""
    if d_k <= 0:
        raise ValueError("d_k must be positive")
    return np.asarray(scores, dtype=MODEL_DTYPE) / np.sqrt(
        np.asarray(d_k, dtype=MODEL_DTYPE)
    )


def softmax_unit(scores: np.ndarray, mask: np.ndarray | None = None) -> np.ndarray:
    """The Sm unit: row-wise masked softmax in model precision."""
    masked = apply_mask(np.asarray(scores, dtype=MODEL_DTYPE), mask)
    return softmax(masked, axis=-1).astype(MODEL_DTYPE)


def relu_unit(x: np.ndarray) -> np.ndarray:
    return np.maximum(np.asarray(x, dtype=MODEL_DTYPE), MODEL_DTYPE(0))


def bias_unit(x: np.ndarray, bias: np.ndarray) -> np.ndarray:
    """Broadcast bias add performed by the s x 64 vector adders."""
    x = np.asarray(x, dtype=MODEL_DTYPE)
    bias = np.asarray(bias, dtype=MODEL_DTYPE)
    if bias.shape != (x.shape[-1],):
        raise ValueError(
            f"bias must have shape ({x.shape[-1]},); got {bias.shape}"
        )
    return x + bias


def add_norm_unit(
    sublayer_out: np.ndarray,
    residual: np.ndarray,
    weight: np.ndarray,
    bias: np.ndarray,
) -> np.ndarray:
    """Residual add + layer norm, numerically matching the golden model."""
    a = np.asarray(sublayer_out, dtype=MODEL_DTYPE)
    r = np.asarray(residual, dtype=MODEL_DTYPE)
    if a.shape != r.shape:
        raise ValueError(f"shape mismatch: {a.shape} vs {r.shape}")
    return layer_norm(a + r, weight, bias).astype(MODEL_DTYPE)
