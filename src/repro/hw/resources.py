"""FPGA resource-utilization model (Table 5.2).

Estimates BRAM_18K / DSP / FF / LUT consumption of a design point from
its structure: the PSA grids (fp32 MAC processing elements), the vector
adders, the softmax/layer-norm function units, the double-buffered
weight panels and the activation buffers.  Per-unit costs are fitted
once so the paper's design point (eight 2x64 PSAs, s=32) lands on the
Table 5.2 utilization, then the same constants predict other design
points — in particular they reproduce the paper's observation that the
design is LUT-bound while DSPs stay under 25% (Section 5.1.3/5.1.4).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.config import HardwareConfig
from repro.hw.systolic import ceil_div

#: Usable bytes of one BRAM_18K block (18 Kib).
BYTES_PER_BRAM18K = 18 * 1024 // 8

# Fitted per-unit costs (see module docstring).  An fp32 MAC processing
# element maps its multiplier onto one DSP48 plus LUT fabric for the
# accumulator; the vector-adder lanes are LUT-carry-chain adds.
PE_DSP = 1
PE_FF = 880
PE_LUT = 640
ADDER_LANE_DSP = 0
ADDER_LANE_FF = 260
ADDER_LANE_LUT = 80
SOFTMAX_UNIT_DSP = 30
SOFTMAX_UNIT_FF = 2800
SOFTMAX_UNIT_LUT = 1500
NORM_UNIT_DSP = 30
NORM_UNIT_FF = 2800
NORM_UNIT_LUT = 1500
CONTROL_DSP = 24
CONTROL_FF = 113268
CONTROL_LUT = 46316
CONTROL_BRAM = 110
#: Stream/pipeline registers that scale with the sequence length.
SEQ_FF_PER_ROW = 512
SEQ_LUT_PER_ROW = 256


@dataclass(frozen=True)
class ResourceEstimate:
    """Estimated utilization against the device's available resources."""

    bram_18k: int
    dsp: int
    ff: int
    lut: int
    available: dict[str, int]

    def as_dict(self) -> dict[str, int]:
        return {
            "BRAM_18K": self.bram_18k,
            "DSP": self.dsp,
            "FF": self.ff,
            "LUT": self.lut,
        }

    def utilization(self) -> dict[str, float]:
        """Fraction of each resource consumed."""
        used = self.as_dict()
        return {k: used[k] / self.available[k] for k in used}

    def fits(self) -> bool:
        return all(frac <= 1.0 for frac in self.utilization().values())

    def binding_resource(self) -> str:
        """The resource closest to (or furthest past) its limit."""
        util = self.utilization()
        return max(util, key=util.get)


def estimate_resources(
    hardware: HardwareConfig | None = None,
    seq_len: int = 32,
    d_model: int = 512,
    d_ff: int = 2048,
    num_softmax_units: int = 8,
    num_norm_units: int = 2,
    pe_dsp: float = PE_DSP,
    pe_ff: int = PE_FF,
    pe_lut: int = PE_LUT,
) -> ResourceEstimate:
    """Estimate resources for a design point.

    ``num_softmax_units`` defaults to one per attention head; the
    Add-Norm hardware is instantiated once per SLR.  The per-PE costs
    can be overridden to model narrower arithmetic (see
    :mod:`repro.quant.schemes`).
    """
    hw = hardware or HardwareConfig()
    if seq_len <= 0:
        raise ValueError("seq_len must be positive")
    if pe_dsp < 0 or pe_ff < 0 or pe_lut < 0:
        raise ValueError("per-PE costs must be non-negative")
    bpe = hw.bytes_per_element

    num_pes = hw.total_psas * hw.psa_rows * hw.psa_cols
    num_adder_lanes = hw.total_psas * hw.adder_width

    dsp = (
        num_pes * pe_dsp
        + num_adder_lanes * ADDER_LANE_DSP
        + num_softmax_units * SOFTMAX_UNIT_DSP
        + num_norm_units * NORM_UNIT_DSP
        + CONTROL_DSP
    )
    ff = (
        num_pes * pe_ff
        + num_adder_lanes * ADDER_LANE_FF
        + num_softmax_units * SOFTMAX_UNIT_FF
        + num_norm_units * NORM_UNIT_FF
        + CONTROL_FF
        + seq_len * SEQ_FF_PER_ROW
    )
    lut = (
        num_pes * pe_lut
        + num_adder_lanes * ADDER_LANE_LUT
        + num_softmax_units * SOFTMAX_UNIT_LUT
        + num_norm_units * NORM_UNIT_LUT
        + CONTROL_LUT
        + seq_len * SEQ_LUT_PER_ROW
    )

    # Double-buffered weight panel (psa_cols x d_model rotated through
    # the stripes) per PSA, hidden-activation buffer, in/out activation
    # buffers and per-head score buffers.
    panel_bytes = hw.psa_cols * d_model * bpe
    weight_bufs = hw.total_psas * 2 * ceil_div(panel_bytes, BYTES_PER_BRAM18K)
    hidden_buf = ceil_div(seq_len * d_ff * bpe, BYTES_PER_BRAM18K)
    io_bufs = 2 * ceil_div(seq_len * d_model * bpe, BYTES_PER_BRAM18K)
    score_bufs = num_softmax_units * max(
        ceil_div(seq_len * seq_len * bpe, BYTES_PER_BRAM18K), 1
    )
    bram = weight_bufs + hidden_buf + io_bufs + score_bufs + CONTROL_BRAM

    return ResourceEstimate(
        bram_18k=bram,
        dsp=int(round(dsp)),
        ff=int(round(ff)),
        lut=int(round(lut)),
        available=dict(hw.resources),
    )


def check_synthesizable(estimate: ResourceEstimate) -> None:
    """Raise with a per-resource report if the design exceeds the device."""
    util = estimate.utilization()
    over = {k: f"{v:.1%}" for k, v in util.items() if v > 1.0}
    if over:
        raise ValueError(f"design exceeds device resources: {over}")
