"""Per-engine trace of the block-wise schedule inside one encoder
(Fig 4.13).

This module used to hand-derive the schedule a third time; it is now a
thin wrapper over :mod:`repro.hw.program`'s trace executor, so the
Gantt chart, the functional dataflow, and the latency numbers all come
from the single block-program lowering.  The trace's makespan is pinned
(by tests) to the analytic ``encoder_cycles`` estimate.
"""

from __future__ import annotations

from repro.hw.kernels import Fabric
from repro.hw.program import (
    lower_attention_head_program,
    lower_encoder_layer_program,
    trace_block,
)
from repro.hw.trace import Timeline


def trace_attention_head(
    fabric: Fabric,
    timeline: Timeline,
    start: float,
    psa: str,
    adder: str,
    sm_unit: str,
    s_q: int,
    s_k: int,
    d_model: int,
    d_k: int,
    concurrent_psas: int = 1,
    label_prefix: str = "",
) -> float:
    """Append one head's Fig 4.13 schedule; returns its finish time."""
    program = lower_attention_head_program(
        fabric,
        s_q,
        s_k,
        d_model,
        d_k,
        concurrent_psas=concurrent_psas,
        engines=(psa, adder, sm_unit),
        label_prefix=label_prefix,
    )
    head = trace_block(program)
    for event in head.events:
        timeline.add(
            event.engine,
            event.label,
            start + event.start,
            start + event.end,
            kind=event.kind,
        )
    return start + head.makespan


def trace_encoder_block(
    fabric: Fabric,
    s: int,
    num_heads: int = 8,
    d_model: int = 512,
    d_ff: int = 2048,
    parallel_heads: int | None = None,
) -> Timeline:
    """Full per-engine trace of one encoder (MHA + FFN + Add-Norms)."""
    return trace_block(
        lower_encoder_layer_program(
            fabric, s, num_heads, d_model, d_ff, parallel_heads
        )
    )
