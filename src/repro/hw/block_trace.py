"""Per-engine trace of the block-wise schedule inside one encoder
(Fig 4.13): every MM on its PSA, every bias on its vector adder, the
scale/softmax on the per-head function units, with the exact overlap
rules of :func:`repro.hw.blocks.attention_head_cycles`.

The trace's makespan is pinned (by tests) to the analytic
``encoder_cycles`` estimate — the Gantt chart and the latency numbers
are the same model.
"""

from __future__ import annotations

from repro.hw.kernels import (
    Fabric,
    mm1_cycles,
    mm2_cycles,
    mm3_cycles,
    mm4_cycles,
    mm5_cycles,
    mm6_cycles,
)
from repro.hw.systolic import ceil_div
from repro.hw.trace import Timeline


def trace_attention_head(
    fabric: Fabric,
    timeline: Timeline,
    start: float,
    psa: str,
    adder: str,
    sm_unit: str,
    s_q: int,
    s_k: int,
    d_model: int,
    d_k: int,
    concurrent_psas: int = 1,
    label_prefix: str = "",
) -> float:
    """Append one head's Fig 4.13 schedule; returns its finish time."""
    units = fabric.units
    t_mm1_q = mm1_cycles(fabric, s_q, d_model, d_k, concurrent_psas)
    t_mm1_kv = mm1_cycles(fabric, s_k, d_model, d_k, concurrent_psas)
    t = start

    timeline.add(psa, f"{label_prefix}MM1(K)", t, t + t_mm1_kv)
    t += t_mm1_kv
    # B(K) on the adder, overlapped with MM1(Q) on the PSA.
    bias_k = units.bias_cycles(s_k, d_k)
    timeline.add(adder, f"{label_prefix}B(K)", t, t + bias_k)
    timeline.add(psa, f"{label_prefix}MM1(Q)", t, t + t_mm1_q)
    t += max(bias_k, t_mm1_q)
    bias_q = units.bias_cycles(s_q, d_k)
    timeline.add(adder, f"{label_prefix}B(Q)", t, t + bias_q)
    t += bias_q
    t_mm2 = mm2_cycles(fabric, s_q, s_k, d_k)
    timeline.add(psa, f"{label_prefix}MM2", t, t + t_mm2)
    t += t_mm2
    # Sc + Sm on the function unit, overlapped with MM1(V) on the PSA.
    sc_sm = units.scale_cycles(s_q, s_k) + units.softmax_cycles(s_q, s_k)
    timeline.add(sm_unit, f"{label_prefix}Sc+Sm", t, t + sc_sm)
    timeline.add(psa, f"{label_prefix}MM1(V)", t, t + t_mm1_kv)
    t += max(sc_sm, t_mm1_kv)
    bias_v = units.bias_cycles(s_k, d_k)
    timeline.add(adder, f"{label_prefix}B(V)", t, t + bias_v)
    t += bias_v
    t_mm3 = mm3_cycles(fabric, s_q, s_k, d_k)
    timeline.add(psa, f"{label_prefix}MM3", t, t + t_mm3)
    return t + t_mm3


def trace_encoder_block(
    fabric: Fabric,
    s: int,
    num_heads: int = 8,
    d_model: int = 512,
    d_ff: int = 2048,
    parallel_heads: int | None = None,
) -> Timeline:
    """Full per-engine trace of one encoder (MHA + FFN + Add-Norms)."""
    hw = fabric.hardware
    total_psas = hw.total_psas
    if parallel_heads is None:
        parallel_heads = min(num_heads, total_psas)
    if parallel_heads < 1 or parallel_heads > total_psas:
        raise ValueError(
            f"parallel_heads must be in [1, {total_psas}]; got {parallel_heads}"
        )
    concurrent = max(total_psas // parallel_heads, 1)
    waves = ceil_div(num_heads, parallel_heads)
    d_k = d_model // num_heads
    units = fabric.units
    timeline = Timeline()

    def engines(slot: int) -> tuple[str, str, str]:
        """PSA group / adder / softmax unit names for one head slot."""
        psa_index = slot * concurrent
        slr = psa_index // hw.psas_per_slr
        return (
            f"slr{slr}.psa{psa_index}"
            + (f"-{psa_index + concurrent - 1}" if concurrent > 1 else ""),
            f"slr{slr}.adder{psa_index}",
            f"slr{slr}.sm{slot}",
        )

    # ---- MHA: heads in waves across the PSA groups.
    t = 0.0
    for wave in range(waves):
        wave_end = t
        for slot in range(parallel_heads):
            head = wave * parallel_heads + slot
            if head >= num_heads:
                break
            psa, adder, sm = engines(slot)
            end = trace_attention_head(
                fabric, timeline, t, psa, adder, sm,
                s, s, d_model, d_k, concurrent,
                label_prefix=f"h{head}:",
            )
            wave_end = max(wave_end, end)
        t = wave_end

    # ---- MM4 across all PSAs, bias, Add-Norm.
    t_mm4 = mm4_cycles(fabric, s, num_heads, d_k, d_model)
    for slot in range(parallel_heads):
        psa, _, _ = engines(slot)
        timeline.add(psa, "MM4", t, t + t_mm4)
    t += t_mm4
    bias = units.bias_cycles(s, d_model)
    timeline.add("slr0.adder0", "B_A", t, t + bias)
    t += bias
    add = units.bias_cycles(s, d_model // hw.num_slrs)
    norm = units.add_norm_cycles(s, d_model)
    timeline.add("slr0.norm", "Add-Norm1", t, t + add + norm)
    t += add + norm

    # ---- FFN: MM5, bias + ReLU, MM6, bias, Add-Norm.
    t_mm5 = mm5_cycles(fabric, s, d_model, d_ff)
    for slot in range(parallel_heads):
        psa, _, _ = engines(slot)
        timeline.add(psa, "MM5", t, t + t_mm5)
    t += t_mm5
    b1 = units.bias_cycles(s, d_ff)
    r1 = units.relu_cycles(s, d_ff)
    timeline.add("slr0.adder0", "B_1F+ReLU", t, t + b1 + r1)
    t += b1 + r1
    t_mm6 = mm6_cycles(fabric, s, d_ff, d_model)
    for slot in range(parallel_heads):
        psa, _, _ = engines(slot)
        timeline.add(psa, "MM6", t, t + t_mm6)
    t += t_mm6
    b2 = units.bias_cycles(s, d_model)
    timeline.add("slr0.adder0", "B_2F", t, t + b2)
    t += b2
    timeline.add("slr0.norm", "Add-Norm2", t, t + add + norm)
    return timeline
