"""Fault injection: single-event upsets (SEUs) in the weight store.

FPGA deployments care about soft errors: a bit flip in an HBM-resident
or BRAM-staged weight silently corrupts every inference until the next
refresh.  This module flips chosen bits of the fp32 weight words and
measures the blast radius on the logits — exponent-field flips are
catastrophic, mantissa-tail flips vanish into the noise floor, which is
exactly the asymmetry scrubbing/ECC design trades on.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.model.params import TransformerParams
from repro.model.transformer import Transformer


@dataclass(frozen=True)
class FaultSpec:
    """One injected bit flip."""

    #: Parameter path, e.g. "enc0.ffn.w1".
    target: str
    #: Flat element index within the target array.
    index: int
    #: Bit position within the fp32 word (0 = LSB .. 31 = sign).
    bit: int

    def __post_init__(self) -> None:
        if not 0 <= self.bit <= 31:
            raise ValueError("bit must be in [0, 31]")
        if self.index < 0:
            raise ValueError("index must be non-negative")


def _resolve(params: TransformerParams, path: str) -> np.ndarray:
    obj: object = params
    for part in path.split("."):
        if part.startswith("enc"):
            obj = params.encoders[int(part[3:])]
        elif part.startswith("dec"):
            obj = params.decoders[int(part[3:])]
        else:
            obj = getattr(obj, part)
    if not isinstance(obj, np.ndarray):
        raise ValueError(f"'{path}' does not name an array")
    return obj


def flip_bit(array: np.ndarray, index: int, bit: int) -> None:
    """Flip one bit of one fp32 element, in place."""
    if array.dtype != np.float32:
        raise ValueError("fault injection targets fp32 arrays")
    flat = array.reshape(-1)
    if not 0 <= index < flat.size:
        raise ValueError(f"index {index} out of range for size {flat.size}")
    word = flat[index : index + 1].view(np.uint32)
    word ^= np.uint32(1) << np.uint32(bit)


def inject_faults(
    params: TransformerParams, faults: list[FaultSpec]
) -> TransformerParams:
    """Deep-copy the parameters and apply the bit flips."""
    import copy

    corrupted = copy.deepcopy(params)
    for fault in faults:
        flip_bit(_resolve(corrupted, fault.target), fault.index, fault.bit)
    return corrupted


def _target_path(target: str) -> tuple:
    """Dotted fault target -> block-program ``ParamRef`` path, e.g.
    ``"enc0.ffn.w1"`` -> ``("encoders", 0, "ffn", "w1")``."""
    parts: list = []
    for part in target.split("."):
        if part.startswith("enc") and part[3:].isdigit():
            parts.extend(("encoders", int(part[3:])))
        elif part.startswith("dec") and part[3:].isdigit():
            parts.extend(("decoders", int(part[3:])))
        else:
            parts.append(part)
    return tuple(parts)


def program_fault_hook(faults: list[FaultSpec]):
    """Fault injection as a block-program transform.

    Returns a ``weight_hook`` for :func:`repro.hw.program.
    execute_program`: every resolved parameter array whose path matches
    a fault target comes back with the requested bits flipped (on a
    copy — the clean parameters are never mutated).  The hook sees the
    whole array before any per-head slicing, so the flat element
    indices address the same layout :func:`inject_faults` targets.
    """
    by_path: dict[tuple, list[FaultSpec]] = {}
    for fault in faults:
        by_path.setdefault(_target_path(fault.target), []).append(fault)

    def hook(ref, array: np.ndarray) -> np.ndarray:
        hits = by_path.get(tuple(ref.path))
        if not hits:
            return array
        corrupted = np.array(array, copy=True)
        for fault in hits:
            flip_bit(corrupted, fault.index, fault.bit)
        return corrupted

    return hook


@dataclass(frozen=True)
class FaultImpact:
    """Logit divergence caused by one fault set."""

    faults: tuple[FaultSpec, ...]
    max_abs_logit_delta: float
    top1_flips: int
    produced_nonfinite: bool


def measure_impact(
    params: TransformerParams,
    faults: list[FaultSpec],
    s: int = 8,
    seed: int = 0,
) -> FaultImpact:
    """Compare clean vs faulted logits on a fixed random input."""
    cfg = params.config
    rng = np.random.default_rng(seed)
    feats = rng.standard_normal((s, cfg.d_model)).astype(np.float32)
    tokens = rng.integers(0, cfg.vocab_size, size=max(s // 2, 1))
    clean = Transformer(params).forward(feats, tokens)
    with np.errstate(invalid="ignore", over="ignore"):
        dirty = Transformer(inject_faults(params, faults)).forward(
            feats, tokens
        )
    finite = np.all(np.isfinite(dirty))
    delta = np.abs(
        dirty.astype(np.float64) - clean.astype(np.float64)
    )
    top1_flips = int(
        np.sum(np.argmax(dirty, axis=-1) != np.argmax(clean, axis=-1))
    )
    return FaultImpact(
        faults=tuple(faults),
        max_abs_logit_delta=float(delta.max()) if finite else float("inf"),
        top1_flips=top1_flips,
        produced_nonfinite=not finite,
    )


def random_fault(
    params: TransformerParams,
    rng: np.random.Generator,
    bit: int | None = None,
    target: str | None = None,
) -> FaultSpec:
    """Draw a random weight-bit fault."""
    if target is None:
        enc_or_dec = "enc" if (params.encoders and rng.random() < 0.5 or not params.decoders) else "dec"
        if enc_or_dec == "enc":
            layer = rng.integers(len(params.encoders))
            target = f"enc{layer}.ffn.w1"
        else:
            layer = rng.integers(len(params.decoders))
            target = f"dec{layer}.ffn.w1"
    array = _resolve(params, target)
    return FaultSpec(
        target=target,
        index=int(rng.integers(array.size)),
        bit=int(rng.integers(32)) if bit is None else bit,
    )
