"""Vector adders and the pipelined partial-product accumulator.

The design instantiates one ``s x 64`` vector adder per PSA (eight in
total).  They serve three duties (Section 4.6): bias addition inside
the linear layers, the residual Add of the Add-Norm blocks, and the
accumulation of the partial-product matrices produced by the striped
matmuls MM1/MM4/MM5/MM6.  Pipelining the accumulator with the PSA
reduces an 8-way accumulation from ``8 t_PSA + 7 t_ADD`` to
``8 t_PSA + t_ADD`` (Fig 4.3).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.model.ops import MODEL_DTYPE


@dataclass(frozen=True)
class VectorAdder:
    """A ``width``-lane floating-point vector adder."""

    width: int = 64
    #: Pipeline depth of one fp32 add (cycles before first result).
    pipeline_depth: int = 8

    def __post_init__(self) -> None:
        if self.width <= 0:
            raise ValueError("width must be positive")
        if self.pipeline_depth < 1:
            raise ValueError("pipeline_depth must be >= 1")

    def add_cycles(self, rows: int, cols: int) -> int:
        """Cycles to add two (rows x cols) matrices element-wise.

        One row-chunk of ``width`` lanes per cycle, fully pipelined.
        """
        if rows <= 0 or cols <= 0:
            raise ValueError("rows and cols must be positive")
        chunks_per_row = -(-cols // self.width)
        return rows * chunks_per_row + self.pipeline_depth

    def accumulate_cycles(
        self, num_partials: int, rows: int, cols: int, pipelined: bool = True
    ) -> int:
        """Cycles to fold ``num_partials`` partial products.

        Pipelined behind the PSA that produces them, only the *last*
        addition is exposed — the Fig 4.3 optimization reducing
        ``8 t_PSA + 7 t_ADD`` to ``8 t_PSA + t_ADD``.  With
        ``pipelined=False`` every fold is exposed (the ablation
        baseline).
        """
        if num_partials < 1:
            raise ValueError("need at least one partial product")
        if num_partials == 1:
            return 0
        folds = 1 if pipelined else num_partials - 1
        return folds * self.add_cycles(rows, cols)

    @staticmethod
    def add(a: np.ndarray, b: np.ndarray) -> np.ndarray:
        """Functional element-wise add in model precision."""
        a = np.asarray(a, dtype=MODEL_DTYPE)
        b = np.asarray(b, dtype=MODEL_DTYPE)
        if a.shape != b.shape:
            raise ValueError(f"shape mismatch: {a.shape} vs {b.shape}")
        return a + b

    @staticmethod
    def accumulate(partials: list[np.ndarray]) -> np.ndarray:
        """Left-fold a list of partial products (hardware add order)."""
        if not partials:
            raise ValueError("need at least one partial product")
        acc = np.asarray(partials[0], dtype=MODEL_DTYPE)
        for p in partials[1:]:
            acc = VectorAdder.add(acc, p)
        return acc
