"""Top-level controller (Fig 4.12): orchestrates the encoder and
decoder stacks on the fabric, schedules weight loads against computes,
and produces latency reports.

Two entry points:

* :class:`LatencyModel` — the data-free cycle model.  Given the model
  and hardware configurations it builds the per-block load/compute
  durations and runs the A1/A2/A3 schedulers (Tables 5.1/5.3,
  Fig 5.2).
* :class:`AcceleratorController` — the functional simulator.  It runs
  the actual fp32 dataflow through the block implementations (the same
  cycle numbers fall out) and returns outputs plus a
  :class:`LatencyReport`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

import numpy as np

from repro.config import CalibrationConfig, HardwareConfig, ModelConfig
from repro.hw.blocks import decoder_cycles, decoder_step_cycles, encoder_cycles
from repro.hw.kernels import Fabric
from repro.hw.kv_cache import DecoderKVCache, batch_layer_caches
from repro.hw.memory import (
    HbmModel,
    PcieModel,
    decoder_ffn_weight_bytes,
    decoder_mha_weight_bytes,
    decoder_weight_bytes,
    encoder_weight_bytes,
)
from repro.hw.program import (
    BlockProgram,
    execute_program,
    lower_decode_step,
    lower_decoder_stack,
    lower_encoder_stack,
    lower_full_pass,
    program_block_work,
)
from repro.hw.scheduler import Architecture, BlockWork, ScheduleResult, schedule
from repro.model.params import TransformerParams
from repro.obs import metrics as obs_metrics
from repro.obs import spans as obs_spans


@dataclass(frozen=True)
class LatencyReport:
    """Latency of one end-to-end pass through the accelerator."""

    architecture: Architecture
    #: Fabric cycles spent in the scheduled load/compute chain.
    schedule_cycles: int
    #: Cycles to stream the (s x d_model) input from host to device.
    input_transfer_cycles: int
    #: Cycles to write the final (s x d_model) result back to the host.
    output_transfer_cycles: int
    clock_mhz: float
    schedule: ScheduleResult
    details: dict[str, float] = field(default_factory=dict)

    @property
    def total_cycles(self) -> int:
        return (
            self.input_transfer_cycles
            + self.schedule_cycles
            + self.output_transfer_cycles
        )

    @property
    def latency_ms(self) -> float:
        return self.total_cycles / (self.clock_mhz * 1e3)

    @property
    def latency_s(self) -> float:
        return self.latency_ms / 1e3


class LatencyModel:
    """Data-free cycle model of the full accelerator."""

    def __init__(
        self,
        model: ModelConfig | None = None,
        hardware: HardwareConfig | None = None,
        calibration: CalibrationConfig | None = None,
        parallel_heads: int | None = None,
    ) -> None:
        self.model = model or ModelConfig()
        self.hardware = hardware or HardwareConfig()
        self.calibration = calibration or CalibrationConfig()
        self.fabric = Fabric(self.hardware, self.calibration)
        self.parallel_heads = parallel_heads
        self._hbm = HbmModel(self.hardware, self.calibration)
        self._pcie = PcieModel(self.hardware)

    # ----------------------------------------------------------- loads
    def _load_cycles(self, num_bytes: int) -> int:
        """Cycles to stream one weight bundle: each SLR kernel pulls its
        half from one HBM channel, so the two halves move in parallel."""
        return self._hbm.transfer_cycles(num_bytes, channels=self.hardware.num_slrs)

    def encoder_load_cycles(self) -> int:
        bpe = self.hardware.bytes_per_element
        return self._load_cycles(encoder_weight_bytes(self.model, bpe))

    def decoder_load_cycles(self) -> int:
        bpe = self.hardware.bytes_per_element
        return self._load_cycles(decoder_weight_bytes(self.model, bpe))

    def decoder_part_load_cycles(self) -> tuple[int, int]:
        bpe = self.hardware.bytes_per_element
        return (
            self._load_cycles(decoder_mha_weight_bytes(self.model, bpe)),
            self._load_cycles(decoder_ffn_weight_bytes(self.model, bpe)),
        )

    # --------------------------------------------------------- compute
    def encoder_compute_cycles(self, s: int) -> int:
        cfg = self.model
        return encoder_cycles(
            self.fabric, s, cfg.num_heads, cfg.d_model, cfg.d_ff, self.parallel_heads
        )

    def decoder_compute_cycles(self, s: int, t: int | None = None) -> tuple[int, int]:
        cfg = self.model
        t = s if t is None else t
        return decoder_cycles(
            self.fabric,
            t,
            s,
            cfg.num_heads,
            cfg.d_model,
            cfg.d_ff,
            self.parallel_heads,
        )

    def decoder_step_compute_cycles(self, t: int, s: int) -> tuple[int, int]:
        """(mha_part, ffn_part) cycles of one decoder layer for the
        KV-cached step at prefix length ``t`` over an ``s``-row memory."""
        cfg = self.model
        return decoder_step_cycles(
            self.fabric,
            t,
            s,
            cfg.num_heads,
            cfg.d_model,
            cfg.d_ff,
            self.parallel_heads,
        )

    def mha_ffn_load_compute(self, s: int) -> tuple[float, float]:
        """Load and compute time (ms) of one MHA + FFN block — the
        quantities plotted in Fig 5.2."""
        load = self.encoder_load_cycles()
        compute = self.encoder_compute_cycles(s)
        return (
            self.hardware.cycles_to_ms(load),
            self.hardware.cycles_to_ms(compute),
        )

    def crossover_sequence_length(self, max_s: int = 128) -> int:
        """Smallest s at which encoder compute exceeds its load (the
        paper observes s > 18)."""
        for s in range(1, max_s + 1):
            load, compute = self.mha_ffn_load_compute(s)
            if compute > load:
                return s
        raise ValueError(f"no crossover found up to s={max_s}")

    # -------------------------------------------------------- programs
    def full_pass_program(self, s: int, t: int | None = None) -> BlockProgram:
        """The lowered block program of one full encoder/decoder pass
        (cached; the same lowering feeds blocks, schedules and traces)."""
        return lower_full_pass(self.model, self.fabric, s, t, self.parallel_heads)

    def decode_step_program(self, t: int, s: int) -> BlockProgram:
        """The lowered block program of one KV-cached decode step."""
        return lower_decode_step(self.model, self.fabric, t, s, self.parallel_heads)

    # --------------------------------------------------------- blocks
    def build_blocks(
        self, s: int, architecture: Architecture | str, t: int | None = None
    ) -> list[BlockWork]:
        """Per-block load/compute work items for one architecture,
        derived from the block program.

        Encoders are single units.  Under A3 each decoder splits into
        its MHA part (HBM channel 0) and FFN part (channel 1), per
        Fig 4.11; under A1/A2 a decoder is one unit.
        """
        return program_block_work(self.full_pass_program(s, t), architecture)

    # ---------------------------------------------------------- report
    def io_transfer_cycles(self, s: int) -> tuple[int, int]:
        """(input, output) transfer cycles for the (s x d_model) fp32
        activations crossing PCIe + HBM."""
        bpe = self.hardware.bytes_per_element
        num_bytes = s * self.model.d_model * bpe
        pcie = self._pcie.transfer_cycles(num_bytes)
        hbm = self._hbm.transfer_cycles(num_bytes, channels=1)
        return pcie + hbm, pcie + hbm

    def latency_report(
        self, s: int, architecture: Architecture | str = Architecture.A3
    ) -> LatencyReport:
        """Predicted end-to-end accelerator latency at sequence length s."""
        if s <= 0:
            raise ValueError("s must be positive")
        arch = Architecture(architecture)
        blocks = self.build_blocks(s, arch)
        result = schedule(arch, blocks, self.calibration.block_overhead_cycles)
        t_in, t_out = self.io_transfer_cycles(s)
        return LatencyReport(
            architecture=arch,
            schedule_cycles=result.total_cycles,
            input_transfer_cycles=t_in,
            output_transfer_cycles=t_out,
            clock_mhz=self.hardware.clock_mhz,
            schedule=result,
            details={
                "encoder_load_cycles": self.encoder_load_cycles(),
                "encoder_compute_cycles": self.encoder_compute_cycles(s),
                "decoder_load_cycles": self.decoder_load_cycles(),
                "decoder_compute_cycles": sum(self.decoder_compute_cycles(s)),
                "stall_cycles": result.stall_cycles,
            },
        )

    def latency_ms(
        self, s: int, architecture: Architecture | str = Architecture.A3
    ) -> float:
        return self.latency_report(s, architecture).latency_ms

    # ------------------------------------------------- autoregressive
    def build_decode_step_blocks(
        self,
        t: int,
        s: int,
        architecture: Architecture | str = Architecture.A3,
        tag: str = "",
    ) -> list[BlockWork]:
        """Decoder-only block chain for one KV-cached decode step at
        prefix length ``t``.  The encoder ran at prefill; each step
        still streams every decoder's weights (the device buffers hold
        one block's panels at a time), but computes only a 1-row query.
        """
        if t <= 0 or s <= 0:
            raise ValueError("t and s must be positive")
        blocks = program_block_work(self.decode_step_program(t, s), architecture)
        if not tag:
            return blocks
        return [
            BlockWork(
                f"{tag}{b.label}",
                b.load_cycles,
                b.compute_cycles,
                channel_hint=b.channel_hint,
                overhead_override=b.overhead_override,
            )
            for b in blocks
        ]

    def decode_step_cycles(
        self,
        t: int,
        s: int,
        architecture: Architecture | str = Architecture.A3,
    ) -> int:
        """Scheduled cycles of one stand-alone KV-cached decode step
        (weight loads overlapped per the architecture, plus the 1-row
        host I/O)."""
        arch = Architecture(architecture)
        blocks = self.build_decode_step_blocks(t, s, arch)
        result = schedule(arch, blocks, self.calibration.block_overhead_cycles)
        t_in, t_out = self.io_transfer_cycles(1)
        return result.total_cycles + t_in + t_out

    def decode_iteration_cycles(
        self,
        prefix_lengths: Sequence[int],
        s: int,
        architecture: Architecture | str = Architecture.A3,
        share_weights: bool = True,
    ) -> int:
        """Scheduled cycles of one continuous-batching decode iteration.

        Each member of the batch advances one KV-cached step at its own
        prefix length.  With ``share_weights`` (the serving default) the
        decoder weight panels are streamed from HBM once per iteration
        and every member's 1-row query computes against the resident
        panels — the load amortizes across the batch, which is exactly
        the continuous-batching win.  Without it, each member re-streams
        every panel (the back-to-back chain of
        :meth:`autoregressive_report`).  Per-member host I/O (token in,
        log-probs out) is charged either way.
        """
        lengths = [int(t) for t in prefix_lengths]
        if not lengths:
            raise ValueError("prefix_lengths must be non-empty")
        if any(t <= 0 for t in lengths):
            raise ValueError("prefix lengths must be positive")
        arch = Architecture(architecture)
        chain: list[BlockWork] = []
        for i, t in enumerate(lengths):
            for b in self.build_decode_step_blocks(t, s, arch, tag=f"r{i}:"):
                load = b.load_cycles if (i == 0 or not share_weights) else 0
                chain.append(
                    BlockWork(
                        b.label,
                        load,
                        b.compute_cycles,
                        channel_hint=b.channel_hint,
                        overhead_override=b.overhead_override,
                    )
                )
        result = schedule(arch, chain, self.calibration.block_overhead_cycles)
        t_in, t_out = self.io_transfer_cycles(1)
        return result.total_cycles + (t_in + t_out) * len(lengths)

    def per_member_cycle_shares(
        self,
        prefix_lengths: Sequence[int],
        s: int,
        architecture: Architecture | str = Architecture.A3,
        share_weights: bool = True,
    ) -> list[int]:
        """Exact per-member attribution of one decode iteration's
        cycles — the companion of :meth:`decode_iteration_cycles`.

        The scheduled iteration total charges the whole shared weight
        stream to member 0's blocks (an artifact of how the shared
        chain is built, not a statement of who owes what), so any
        per-request cost readout needs this split instead: each member
        is weighted by its stand-alone step cost
        (:meth:`decode_step_cycles` at its prefix length) and the total
        divides by largest-remainder integer apportionment
        (:func:`repro.obs.costs.largest_remainder_split`).  The shares
        sum *exactly* to ``decode_iteration_cycles(...)`` — no float
        drift — and with ``share_weights`` each member's share is
        strictly below its solo cost: the amortization win, per member.
        """
        # Local import: the hw layer stays importable without obs; the
        # split helper lives there because the serving ledger is its
        # main consumer.
        from repro.obs.costs import largest_remainder_split

        lengths = [int(t) for t in prefix_lengths]
        total = self.decode_iteration_cycles(
            lengths, s, architecture, share_weights=share_weights
        )
        arch = Architecture(architecture)
        weights = [self.decode_step_cycles(t, s, arch) for t in lengths]
        return largest_remainder_split(total, weights)

    def autoregressive_report(
        self,
        num_tokens: int,
        s: int,
        architecture: Architecture | str = Architecture.A3,
    ) -> LatencyReport:
        """Latency of decoding ``num_tokens`` positions step by step
        through the KV-cached decoder path.

        The steps run back to back, so the scheduler overlaps one
        step's tail loads with the next step's computes exactly as it
        does within a single pass.  ``details`` carries the full
        autoregressive account (per-step first/last, mean per token,
        total, steady-state tokens/s) so the report round-trips it.
        """
        if num_tokens <= 0:
            raise ValueError("num_tokens must be positive")
        if s <= 0:
            raise ValueError("s must be positive")
        arch = Architecture(architecture)
        chain: list[BlockWork] = []
        for step in range(1, num_tokens + 1):
            chain.extend(
                self.build_decode_step_blocks(step, s, arch, tag=f"t{step}:")
            )
        result = schedule(arch, chain, self.calibration.block_overhead_cycles)
        t_in, t_out = self.io_transfer_cycles(1)
        first = self.decode_step_cycles(1, s, arch)
        last = self.decode_step_cycles(num_tokens, s, arch)
        io_cycles = (t_in + t_out) * num_tokens
        total = result.total_cycles + io_cycles
        if num_tokens > 1:
            spacing = (total - first) / (num_tokens - 1)
        else:
            spacing = float(total)
        tokens_per_s = (self.hardware.clock_mhz * 1e6) / spacing
        return LatencyReport(
            architecture=arch,
            schedule_cycles=result.total_cycles,
            input_transfer_cycles=t_in * num_tokens,
            output_transfer_cycles=t_out * num_tokens,
            clock_mhz=self.hardware.clock_mhz,
            schedule=result,
            details={
                "decode_tokens": float(num_tokens),
                "decode_total_cycles": float(total),
                "decode_per_token_cycles": total / num_tokens,
                "decode_first_step_cycles": float(first),
                "decode_last_step_cycles": float(last),
                "decode_steady_tokens_per_s": tokens_per_s,
                "decode_stall_cycles": float(result.stall_cycles),
            },
        )

    # ------------------------------------------------- back-to-back
    def steady_state_throughput(
        self,
        s: int,
        architecture: Architecture | str = Architecture.A3,
        num_sequences: int = 6,
    ) -> float:
        """Sequences/second when inferences run back to back.

        The "LW+" bars in Figs 4.8-4.10 show the next sequence's first
        weight load prefetched during the tail of the current one; with
        the block chain simply repeated, the A2/A3 schedulers overlap
        across sequence boundaries exactly as within one, so the
        steady-state spacing is below the single-shot latency.
        """
        if num_sequences < 2:
            raise ValueError("need at least two sequences for steady state")
        arch = Architecture(architecture)
        one = self.build_blocks(s, arch)
        chain: list[BlockWork] = []
        for i in range(num_sequences):
            for b in one:
                chain.append(
                    BlockWork(
                        f"q{i}:{b.label}",
                        b.load_cycles,
                        b.compute_cycles,
                        channel_hint=b.channel_hint,
                        overhead_override=b.overhead_override,
                    )
                )
        result = schedule(arch, chain, self.calibration.block_overhead_cycles)
        single = schedule(arch, one, self.calibration.block_overhead_cycles)
        # Steady-state spacing: amortize the pipeline fill over the tail.
        spacing_cycles = (result.total_cycles - single.total_cycles) / (
            num_sequences - 1
        )
        t_in, t_out = self.io_transfer_cycles(s)
        spacing_cycles += t_in + t_out  # per-sequence host I/O
        seconds = spacing_cycles / (self.hardware.clock_mhz * 1e6)
        return 1.0 / seconds


@dataclass(frozen=True)
class ControllerRun:
    """Functional outputs plus the latency report of one pass."""

    encoder_output: np.ndarray
    decoder_output: np.ndarray
    report: LatencyReport
    #: Per-block compute cycles measured during the functional pass.
    block_compute_cycles: dict[str, int]


class AcceleratorController:
    """Functional simulator of the accelerator running a parameter set.

    Inputs must already be padded to the hardware sequence length and
    embedded to ``d_model`` (the :class:`repro.hw.accelerator` facade
    owns padding, masking and embedding).
    """

    def __init__(
        self,
        params: TransformerParams,
        hardware: HardwareConfig | None = None,
        calibration: CalibrationConfig | None = None,
        parallel_heads: int | None = None,
    ) -> None:
        self.params = params
        self.latency_model = LatencyModel(
            model=params.config,
            hardware=hardware,
            calibration=calibration,
            parallel_heads=parallel_heads,
        )
        self.fabric = self.latency_model.fabric
        self.parallel_heads = parallel_heads

    def run_encoder_stack(
        self, x: np.ndarray, mask: np.ndarray | None = None
    ) -> tuple[np.ndarray, dict[str, int]]:
        """Execute all encoder layers; returns (output, cycles/block).

        ``x`` may be ``(s, d_model)`` or batched ``(B, s, d_model)`` —
        the lowering keys on the sequence length only, and the batched
        kernels run the MM stages as single large GEMMs.
        """
        program = lower_encoder_stack(
            self.params.config, self.fabric, x.shape[-2], self.parallel_heads
        )
        run = execute_program(
            program, root=self.params, inputs={"x": x, "enc_mask": mask}
        )
        return run.outputs["output"], run.block_compute_cycles

    def run_decoder_stack(
        self,
        x: np.ndarray,
        memory: np.ndarray,
        self_mask: np.ndarray | None = None,
        memory_mask: np.ndarray | None = None,
    ) -> tuple[np.ndarray, dict[str, int]]:
        """Execute all decoder layers; returns (output, cycles/block)."""
        program = lower_decoder_stack(
            self.params.config,
            self.fabric,
            x.shape[-2],
            memory.shape[-2],
            self.parallel_heads,
        )
        run = execute_program(
            program,
            root=self.params,
            inputs={
                "x": x,
                "memory": memory,
                "self_mask": self_mask,
                "memory_mask": memory_mask,
            },
        )
        return run.outputs["output"], run.block_compute_cycles

    def build_kv_cache(self, memory: np.ndarray) -> DecoderKVCache:
        """Prefill the decoder K/V cache from the encoder memory: the
        cross-attention projections of every layer run once through the
        MM1 kernels and stay resident for the whole utterance."""
        with obs_spans.tracer().span("hw.kv_prefill"):
            return DecoderKVCache(self.fabric, self.params, memory)

    def run_decoder_step(
        self,
        x: np.ndarray,
        cache: DecoderKVCache,
        memory_mask: np.ndarray | None = None,
    ) -> tuple[np.ndarray, dict[str, int]]:
        """One KV-cached decode step through all decoder layers.

        ``x`` is the (d_model,) embedded token at the newest position;
        the per-layer self-attention caches are extended in place and
        ``cache.length`` advances by one.  Returns the (d_model,)
        decoder output row plus per-block compute cycles.
        """
        x = np.asarray(x)
        d_model = self.params.config.d_model
        if x.shape != (d_model,):
            raise ValueError(f"x must be ({d_model},); got {x.shape}")
        if len(cache.layers) != len(self.params.decoders):
            raise ValueError("cache does not match this parameter set")
        program = lower_decode_step(
            self.params.config,
            self.fabric,
            cache.length + 1,
            cache.memory_len,
            self.parallel_heads,
        )
        with obs_spans.tracer().span("hw.decode_step", t=cache.length + 1):
            run = execute_program(
                program,
                root=self.params,
                inputs={"x": x[None, :], "memory_mask": memory_mask},
                caches=cache.layers,
            )
            cache.advance()
        obs_metrics.registry().counter("repro.hw.decode.steps").inc()
        return run.outputs["output"][0], run.block_compute_cycles

    def run_decoder_step_batch(
        self,
        xs: np.ndarray,
        caches: list[DecoderKVCache],
        memory_mask: np.ndarray | None = None,
    ) -> tuple[np.ndarray, dict[str, int]]:
        """One KV-cached decode step for a whole group of sessions.

        ``xs`` is ``(B, d_model)`` — one embedded token per session —
        and ``caches`` the matching per-session caches, all at the same
        prefix length (:func:`repro.hw.kv_cache.batch_layer_caches`
        enforces this).  The *same* decode-step program as the scalar
        path executes once with a leading batch axis: MM1/MM4-MM6 run
        as single ``(B·1)``-row GEMMs, attention loops member-wise, and
        cache appends fan back out so every session's cache ends up
        bit-identical to B scalar :meth:`run_decoder_step` calls.
        ``memory_mask``, if given, is ``(B, 1, S)`` (stacked per-session
        masks) or a broadcastable ``(1, S)``.  Returns the ``(B,
        d_model)`` output rows plus per-block compute cycles of the one
        batched program execution.
        """
        xs = np.asarray(xs)
        d_model = self.params.config.d_model
        if xs.ndim != 2 or xs.shape[1] != d_model:
            raise ValueError(f"xs must be (B, {d_model}); got {xs.shape}")
        if xs.shape[0] != len(caches):
            raise ValueError(
                f"got {xs.shape[0]} token rows for {len(caches)} caches"
            )
        for cache in caches:
            if len(cache.layers) != len(self.params.decoders):
                raise ValueError("cache does not match this parameter set")
        batched_layers = batch_layer_caches(caches)
        program = lower_decode_step(
            self.params.config,
            self.fabric,
            caches[0].length + 1,
            caches[0].memory_len,
            self.parallel_heads,
        )
        with obs_spans.tracer().span(
            "hw.decode_step_batch", t=caches[0].length + 1, batch=len(caches)
        ):
            run = execute_program(
                program,
                root=self.params,
                inputs={"x": xs[:, None, :], "memory_mask": memory_mask},
                caches=batched_layers,
            )
            for cache in caches:
                cache.advance()
        obs_metrics.registry().counter("repro.hw.decode.steps").inc(len(caches))
        return run.outputs["output"][:, 0, :], run.block_compute_cycles

    def run(
        self,
        enc_input: np.ndarray,
        dec_input: np.ndarray,
        enc_mask: np.ndarray | None = None,
        dec_self_mask: np.ndarray | None = None,
        dec_memory_mask: np.ndarray | None = None,
        architecture: Architecture | str = Architecture.A3,
    ) -> ControllerRun:
        """One full pass: encoder stack, decoder stack, latency report.

        The functional output is identical across architectures — only
        the load/compute schedule (and thus the report) differs.
        """
        enc_input = np.asarray(enc_input)
        dec_input = np.asarray(dec_input)
        d_model = self.params.config.d_model
        if enc_input.ndim not in (2, 3) or enc_input.shape[-1] != d_model:
            raise ValueError(
                f"encoder input must be (s, {d_model}) or (B, s, {d_model}); "
                f"got {enc_input.shape}"
            )
        if dec_input.ndim not in (2, 3) or dec_input.shape[-1] != d_model:
            raise ValueError(
                f"decoder input must be (t, {d_model}) or (B, t, {d_model}); "
                f"got {dec_input.shape}"
            )
        if enc_input.ndim != dec_input.ndim:
            raise ValueError(
                "encoder and decoder inputs must both be batched or both "
                f"unbatched; got {enc_input.shape} vs {dec_input.shape}"
            )
        program = self.latency_model.full_pass_program(
            enc_input.shape[-2], dec_input.shape[-2]
        )
        run = execute_program(
            program,
            root=self.params,
            inputs={
                "x": enc_input,
                "dec_in": dec_input,
                "enc_mask": enc_mask,
                "dec_self_mask": dec_self_mask,
                "dec_memory_mask": dec_memory_mask,
            },
        )
        report = self.latency_model.latency_report(
            enc_input.shape[-2], architecture
        )
        return ControllerRun(
            encoder_output=run.outputs["encoder_output"],
            decoder_output=run.outputs["decoder_output"],
            report=report,
            block_compute_cycles=run.block_compute_cycles,
        )
