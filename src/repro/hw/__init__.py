"""The accelerator simulator — the paper's primary contribution.

Layers (bottom-up):

* :mod:`repro.hw.systolic` / :mod:`repro.hw.adder` /
  :mod:`repro.hw.nonlinear` — the hardware primitives.
* :mod:`repro.hw.memory` — HBM / PCIe / BRAM models and weight sizing.
* :mod:`repro.hw.kernels` — the MM1..MM6 stripe schedules.
* :mod:`repro.hw.program` — the op-level block-program IR: one
  lowering of the Fig 4.13 schedule feeds the functional, cycle and
  trace executors.
* :mod:`repro.hw.blocks` — attention-head / MHA / FFN / encoder /
  decoder execution per Fig 4.13 (facades over the program IR).
* :mod:`repro.hw.scheduler` — the A1/A2/A3 load-compute overlap
  architectures.
* :mod:`repro.hw.controller` — the top-level controller + cycle model.
* :mod:`repro.hw.accelerator` — the host-facing facade.
* :mod:`repro.hw.resources` / :mod:`repro.hw.dse` — resource model and
  design-space exploration.
"""

from repro.hw.accelerator import (
    AcceleratorOutput,
    HwDecodeSession,
    TransformerAccelerator,
    step_batch,
)
from repro.hw.kv_cache import DecoderKVCache, modeled_resident_bytes
from repro.hw.adder import VectorAdder
from repro.hw.block_trace import trace_attention_head, trace_encoder_block
from repro.hw.faults import FaultSpec, inject_faults, measure_impact
from repro.hw.multicard import multicard_throughput, saturation_point, scaling_sweep
from repro.hw.verification import verify_case, verify_equivalence
from repro.hw.controller import (
    AcceleratorController,
    ControllerRun,
    LatencyModel,
    LatencyReport,
)
from repro.hw.dse import (
    DesignPoint,
    head_parallelism_sweep,
    pareto_frontier,
    psa_dimension_sweep,
    psa_grid_sweep,
)
from repro.hw.faults import program_fault_hook
from repro.hw.introspect import (
    STALL_CAUSES,
    EngineStallBreakdown,
    FlightRecorder,
    StallInterval,
    StallReport,
    Watchpoint,
    WatchpointHit,
    classify_stalls,
    counter_tracks,
    default_watchpoints,
    render_stall_dashboard,
    run_watchpoints,
    utilization_counters,
)
from repro.hw.kernels import Fabric, KernelResult, matmul_dims
from repro.hw.program import (
    BlockIR,
    BlockProgram,
    Op,
    OpKind,
    ProgramRun,
    UnitSpan,
    execute_program,
    lower_decode_step,
    lower_full_pass,
    program_block_work,
    program_unit_spans,
    schedule_program,
    trace_program,
    trace_program_with_schedule,
)
from repro.hw.resources import ResourceEstimate, check_synthesizable, estimate_resources
from repro.hw.scheduler import (
    Architecture,
    BlockWork,
    ScheduleResult,
    schedule,
    schedule_a1,
    schedule_a2,
    schedule_a3,
)
from repro.hw.systolic import SystolicArray
from repro.hw.trace import Timeline, TraceEvent
from repro.hw.visualize import (
    render_comparison,
    render_gantt,
    render_platform_diagram,
    render_program_gantt,
)

__all__ = [
    "AcceleratorOutput",
    "DecoderKVCache",
    "HwDecodeSession",
    "TransformerAccelerator",
    "modeled_resident_bytes",
    "step_batch",
    "VectorAdder",
    "trace_attention_head",
    "trace_encoder_block",
    "FaultSpec",
    "inject_faults",
    "measure_impact",
    "multicard_throughput",
    "saturation_point",
    "scaling_sweep",
    "verify_case",
    "verify_equivalence",
    "AcceleratorController",
    "ControllerRun",
    "LatencyModel",
    "LatencyReport",
    "DesignPoint",
    "head_parallelism_sweep",
    "pareto_frontier",
    "psa_dimension_sweep",
    "psa_grid_sweep",
    "program_fault_hook",
    "Fabric",
    "KernelResult",
    "matmul_dims",
    "STALL_CAUSES",
    "EngineStallBreakdown",
    "FlightRecorder",
    "StallInterval",
    "StallReport",
    "Watchpoint",
    "WatchpointHit",
    "classify_stalls",
    "counter_tracks",
    "default_watchpoints",
    "render_stall_dashboard",
    "run_watchpoints",
    "utilization_counters",
    "BlockIR",
    "BlockProgram",
    "Op",
    "OpKind",
    "ProgramRun",
    "UnitSpan",
    "execute_program",
    "lower_decode_step",
    "lower_full_pass",
    "program_block_work",
    "program_unit_spans",
    "schedule_program",
    "trace_program",
    "trace_program_with_schedule",
    "ResourceEstimate",
    "check_synthesizable",
    "estimate_resources",
    "Architecture",
    "BlockWork",
    "ScheduleResult",
    "schedule",
    "schedule_a1",
    "schedule_a2",
    "schedule_a3",
    "SystolicArray",
    "Timeline",
    "TraceEvent",
    "render_comparison",
    "render_gantt",
    "render_platform_diagram",
    "render_program_gantt",
]
