"""Multi-card scale-out model.

A transcription service rarely stops at one U50.  Sequences are
independent, so the natural scale-out is data parallelism: a dispatcher
round-robins utterances over N cards, each running the single-card
schedule.  The only shared resource is the host's PCIe complex — with
one Gen3 x16 link's worth of host bandwidth, input/output DMA
eventually bounds throughput.  This model captures both regimes and
locates the knee.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.config import HardwareConfig, ModelConfig
from repro.hw.controller import LatencyModel
from repro.hw.scheduler import Architecture


@dataclass(frozen=True)
class MultiCardPoint:
    """Predicted service behaviour at one fleet size."""

    num_cards: int
    #: Aggregate sequences/second.
    throughput_seq_per_s: float
    #: Whether the host PCIe link, not the cards, is the bottleneck.
    pcie_bound: bool
    #: Fraction of linear scaling achieved (1.0 = perfect).
    scaling_efficiency: float


def multicard_throughput(
    num_cards: int,
    latency_model: LatencyModel | None = None,
    s: int = 32,
    architecture: Architecture | str = Architecture.A3,
    host_pcie_gbps: float | None = None,
) -> MultiCardPoint:
    """Aggregate throughput of ``num_cards`` cards behind one host.

    The per-card rate is ``LatencyModel.steady_state_throughput``,
    which schedules the lowered block program (:mod:`repro.hw.program`)
    under the chosen architecture — the same program every other
    latency figure in the repo is derived from.
    """
    if num_cards < 1:
        raise ValueError("num_cards must be >= 1")
    lm = latency_model or LatencyModel()
    per_card = lm.steady_state_throughput(s, architecture)
    cards_rate = num_cards * per_card

    # Host-side DMA per sequence: input + output activations.
    hw: HardwareConfig = lm.hardware
    model: ModelConfig = lm.model
    io_bytes = 2 * s * model.d_model * hw.bytes_per_element
    pcie_gbps = host_pcie_gbps if host_pcie_gbps is not None else hw.pcie_gbps
    if pcie_gbps <= 0:
        raise ValueError("host_pcie_gbps must be positive")
    pcie_rate = pcie_gbps * 1e9 / io_bytes

    throughput = min(cards_rate, pcie_rate)
    ideal = num_cards * per_card
    return MultiCardPoint(
        num_cards=num_cards,
        throughput_seq_per_s=throughput,
        pcie_bound=pcie_rate < cards_rate,
        scaling_efficiency=throughput / ideal,
    )


def scaling_sweep(
    card_counts: tuple[int, ...] = (1, 2, 4, 8, 16, 32),
    latency_model: LatencyModel | None = None,
    s: int = 32,
    architecture: Architecture | str = Architecture.A3,
    host_pcie_gbps: float | None = None,
) -> list[MultiCardPoint]:
    """Throughput across fleet sizes.

    The sweep is validated up front: an empty ``card_counts`` or a
    non-positive fleet size is a caller bug, and surfacing it before
    any card is modeled beats a partial result or a confusing error
    from deep inside the throughput math.
    """
    counts = tuple(card_counts)
    if not counts:
        raise ValueError("card_counts must not be empty")
    bad = [n for n in counts if n < 1]
    if bad:
        raise ValueError(f"card_counts must all be >= 1, got {bad}")
    lm = latency_model or LatencyModel()
    return [
        multicard_throughput(
            n, lm, s=s, architecture=architecture, host_pcie_gbps=host_pcie_gbps
        )
        for n in counts
    ]


def saturation_point(
    latency_model: LatencyModel | None = None,
    s: int = 32,
    architecture: Architecture | str = Architecture.A3,
    host_pcie_gbps: float | None = None,
    max_cards: int = 4096,
) -> int:
    """Smallest fleet size at which the host PCIe link binds.

    ``pcie_bound`` is monotone in the fleet size (per-card rate is
    fixed, the host link is shared), so the knee is found by bisection
    rather than a linear scan over thousands of candidate fleets.
    """
    if max_cards < 1:
        raise ValueError("max_cards must be >= 1")
    lm = latency_model or LatencyModel()

    def bound(n: int) -> bool:
        return multicard_throughput(
            n, lm, s=s, architecture=architecture, host_pcie_gbps=host_pcie_gbps
        ).pcie_bound

    if not bound(max_cards):
        raise ValueError(f"no PCIe saturation up to {max_cards} cards")
    lo, hi = 1, max_cards
    while lo < hi:
        mid = (lo + hi) // 2
        if bound(mid):
            hi = mid
        else:
            lo = mid + 1
    return lo
